package p4auth

import (
	"errors"
	"testing"

	"p4auth/internal/crypto"
	"p4auth/internal/switchos"
)

// TestFacadeEndToEnd exercises the library exactly as the README's
// quickstart does, through the re-exported facade.
func TestFacadeEndToEnd(t *testing.T) {
	sw, err := BuildSwitch(SwitchSpec{
		Name:  "f1",
		Ports: 4,
		Registers: []*RegisterDef{
			{Name: "lat", Width: 32, Entries: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(crypto.NewSeededRand(1))
	if err := ctrl.Register("f1", sw.Host, sw.Cfg, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.LocalKeyInit("f1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.WriteRegister("f1", "lat", 0, 42); err != nil {
		t.Fatal(err)
	}
	v, _, err := ctrl.ReadRegister("f1", "lat", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("read %d", v)
	}

	// Attack through the facade-visible Hooks type.
	var hooks Hooks
	hooks.OnPacketIn = func(data []byte) []byte {
		if len(data) > 20 {
			data[len(data)-1] ^= 0xFF // corrupt the payload tail
		}
		return data
	}
	if err := sw.Host.Install(switchos.BoundaryAgentSDK, &hooks); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ctrl.ReadRegister("f1", "lat", 0); !errors.Is(err, ErrTampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
}

func TestFacadeProfilesAndConfig(t *testing.T) {
	tp, bp := TofinoProfile(), BMv2Profile()
	if tp.Name != "tofino" || bp.Name != "bmv2" {
		t.Error("profile names")
	}
	cfg := DefaultConfig(4, DigestCRC32)
	if cfg.Ports != 4 {
		t.Error("config ports")
	}
	if _, err := cfg.Digester(); err != nil {
		t.Error(err)
	}
	cfg2 := DefaultConfig(4, DigestHalfSipHash)
	d, err := cfg2.Digester()
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "halfsiphash-2-4" {
		t.Errorf("digester = %s", d.Name())
	}
}
