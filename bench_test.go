package p4auth

import (
	"testing"
	"time"

	"p4auth/internal/bench"
	"p4auth/internal/crypto"
)

// One benchmark per table and figure of the paper's evaluation (§IX) plus
// the §XI ablation. Each iteration regenerates the artifact end to end;
// run `go test -bench=. -benchmem` at the repository root, or
// `go run ./cmd/p4auth-bench` for the formatted tables.

func benchReport(b *testing.B, run func() (*bench.Report, error)) {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping evaluation benchmark in -short mode")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TableI() })
}

func BenchmarkFig16RouteScout(b *testing.B) {
	opts := bench.DefaultFig16Opts()
	opts.Duration = 600 * time.Millisecond // virtual
	benchReport(b, func() (*bench.Report, error) { return bench.Fig16(opts) })
}

func BenchmarkFig17Hula(b *testing.B) {
	opts := bench.DefaultFig17Opts()
	opts.Duration = 60 * time.Millisecond // virtual
	benchReport(b, func() (*bench.Report, error) { return bench.Fig17(opts) })
}

func BenchmarkFig18RegisterRCT(b *testing.B) {
	opts := bench.RegRWOpts{Requests: 50}
	benchReport(b, func() (*bench.Report, error) { return bench.Fig18(opts) })
}

func BenchmarkFig19RegisterThroughput(b *testing.B) {
	opts := bench.RegRWOpts{Requests: 50}
	benchReport(b, func() (*bench.Report, error) { return bench.Fig19(opts) })
}

func BenchmarkTableIIResources(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.TableII() })
}

func BenchmarkFig20KMPRTT(b *testing.B) {
	opts := bench.DefaultFig20Opts()
	opts.Samples = 10
	benchReport(b, func() (*bench.Report, error) { return bench.Fig20(opts) })
}

func BenchmarkFig21ProbeTraversal(b *testing.B) {
	opts := bench.DefaultFig21Opts()
	opts.Hops = []int{2, 6, 10}
	opts.Samples = 3
	benchReport(b, func() (*bench.Report, error) { return bench.Fig21(opts) })
}

func BenchmarkTableIIIScalability(b *testing.B) {
	opts := bench.TableIIIOpts{Switches: 8, Links: 12}
	benchReport(b, func() (*bench.Report, error) { return bench.TableIII(opts) })
}

func BenchmarkAblationDigestWidth(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.AblationDigest() })
}

// Full-pipeline Table I extensions.

func BenchmarkNetCacheExt(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.NetCacheExt() })
}

func BenchmarkSilkRoadExt(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.SilkRoadExt() })
}

func BenchmarkNetwardenExt(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.NetwardenExt() })
}

func BenchmarkFlowRadarExt(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.FlowRadarExt() })
}

func BenchmarkBlinkExt(b *testing.B) {
	benchReport(b, func() (*bench.Report, error) { return bench.BlinkExt() })
}

// Micro-benchmarks of the primitives behind the figures.

func BenchmarkAuthenticatedWrite(b *testing.B) {
	variantsSetup := func() (*Controller, error) {
		sw, err := BuildSwitch(SwitchSpec{
			Name:  "b1",
			Ports: 4,
			Registers: []*RegisterDef{
				{Name: "r", Width: 64, Entries: 64},
			},
		})
		if err != nil {
			return nil, err
		}
		c := NewController(crypto.NewSeededRand(9))
		if err := c.Register("b1", sw.Host, sw.Cfg, 0); err != nil {
			return nil, err
		}
		if _, err := c.LocalKeyInit("b1"); err != nil {
			return nil, err
		}
		return c, nil
	}
	c, err := variantsSetup()
	if err != nil {
		b.Fatal(err)
	}
	// Warm the handle scratch and the agent's response cache so the
	// steady state (0 allocs/op) is what gets measured.
	for i := 0; i < 64; i++ {
		if _, err := c.WriteRegister("b1", "r", uint32(i%64), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.WriteRegister("b1", "r", uint32(i%64), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig19Pipelined regenerates the windowed-transport throughput
// sweep (serial baseline through window 32) once per iteration.
func BenchmarkFig19Pipelined(b *testing.B) {
	opts := bench.DefaultFig19PipelinedOpts()
	opts.Requests = 128
	benchReport(b, func() (*bench.Report, error) { return bench.Fig19Pipelined(opts) })
}

func BenchmarkLocalKeyRollover(b *testing.B) {
	sw, err := BuildSwitch(SwitchSpec{
		Name:  "b2",
		Ports: 4,
		Registers: []*RegisterDef{
			{Name: "r", Width: 64, Entries: 4},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	c := NewController(crypto.NewSeededRand(10))
	if err := c.Register("b2", sw.Host, sw.Cfg, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := c.LocalKeyInit("b2"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LocalKeyUpdate("b2"); err != nil {
			b.Fatal(err)
		}
	}
}
