package core

// Tests for the KeyStore's transactional rollover staging and its safety
// under concurrent access (run with -race).

import (
	"sync"
	"testing"
)

const txnSeed = 0x5eed

func TestKeyStorePrepareInvisibleUntilCommit(t *testing.T) {
	ks := NewKeyStore(2, txnSeed)
	if err := ks.Prepare(KeyIndexLocal, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if !ks.Pending(KeyIndexLocal) {
		t.Fatal("Pending=false after Prepare")
	}

	// The staged key must not leak into Current or At: messages in flight
	// keep verifying under the established versions.
	key, ver, err := ks.Current(KeyIndexLocal)
	if err != nil || key != txnSeed || ver != 0 {
		t.Fatalf("Current=(%#x,%d,%v) during prepare, want seed at v0", key, ver, err)
	}
	if k, err := ks.At(KeyIndexLocal, 0); err != nil || k != txnSeed {
		t.Fatalf("At(0)=(%#x,%v) during prepare, want seed", k, err)
	}
	if k, err := ks.At(KeyIndexLocal, 1); err != nil || k == 0xAAAA {
		t.Fatalf("At(1)=(%#x,%v) — prepared key visible before commit", k, err)
	}

	newVer, err := ks.Commit(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if newVer != 1 {
		t.Fatalf("Commit returned version %d, want 1", newVer)
	}
	if ks.Pending(KeyIndexLocal) {
		t.Fatal("Pending=true after Commit")
	}
	key, ver, err = ks.Current(KeyIndexLocal)
	if err != nil || key != 0xAAAA || ver != 1 {
		t.Fatalf("Current=(%#x,%d,%v) after commit, want prepared key at v1", key, ver, err)
	}
	// The two-version table still serves the pre-rollover key.
	if k, _ := ks.At(KeyIndexLocal, 0); k != txnSeed {
		t.Fatalf("At(0)=%#x after commit, want old seed retained", k)
	}
}

func TestKeyStoreCommitWithoutPrepare(t *testing.T) {
	ks := NewKeyStore(2, txnSeed)
	if _, err := ks.Commit(KeyIndexLocal); err == nil {
		t.Fatal("Commit with nothing prepared must fail")
	}
	// The failed commit must not disturb the slot.
	if key, ver, err := ks.Current(KeyIndexLocal); err != nil || key != txnSeed || ver != 0 {
		t.Fatalf("Current=(%#x,%d,%v) after failed commit", key, ver, err)
	}
}

func TestKeyStoreAbortDiscardsPrepared(t *testing.T) {
	ks := NewKeyStore(2, txnSeed)
	if err := ks.Prepare(KeyIndexLocal, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	if err := ks.Abort(KeyIndexLocal); err != nil {
		t.Fatal(err)
	}
	if ks.Pending(KeyIndexLocal) {
		t.Fatal("Pending=true after Abort")
	}
	if _, err := ks.Commit(KeyIndexLocal); err == nil {
		t.Fatal("Commit after Abort must fail")
	}
	// Abort with nothing prepared is a safe no-op (resync calls it
	// unconditionally before inspecting switch state).
	if err := ks.Abort(KeyIndexLocal); err != nil {
		t.Fatal(err)
	}
	if key, ver, err := ks.Current(KeyIndexLocal); err != nil || key != txnSeed || ver != 0 {
		t.Fatalf("Current=(%#x,%d,%v) after abort, want untouched seed", key, ver, err)
	}
}

func TestKeyStoreInstallDiscardsPrepared(t *testing.T) {
	ks := NewKeyStore(2, txnSeed)
	if err := ks.Prepare(KeyIndexLocal, 0xCCCC); err != nil {
		t.Fatal(err)
	}
	// Install is the non-transactional path; it must clear the staging so
	// a later Commit can't resurrect a stale derived key.
	if _, err := ks.Install(KeyIndexLocal, 0xDDDD); err != nil {
		t.Fatal(err)
	}
	if ks.Pending(KeyIndexLocal) {
		t.Fatal("Pending=true after Install")
	}
	if _, err := ks.Commit(KeyIndexLocal); err == nil {
		t.Fatal("Commit after Install must fail (staged key discarded)")
	}
}

// TestKeyStoreOldVersionVerifiesMidRollover walks a full signed-message
// round trip across a rollover: a message signed under version N must keep
// verifying after version N+1 is installed, because the receiver selects
// the key by the message's version tag.
func TestKeyStoreOldVersionVerifiesMidRollover(t *testing.T) {
	cfg := DefaultConfig(2, DigestHalfSipHash)
	dig, err := cfg.Digester()
	if err != nil {
		t.Fatal(err)
	}
	ks := NewKeyStore(2, cfg.Seed)

	key, ver, err := ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{Header: Header{HdrType: HdrRegister, MsgType: MsgReadReq, SeqNum: 9, KeyVersion: ver}}
	if err := m.Sign(dig, key); err != nil {
		t.Fatal(err)
	}

	// Rollover happens while m is in flight.
	if _, err := ks.Install(KeyIndexLocal, 0x1234); err != nil {
		t.Fatal(err)
	}

	old, err := ks.At(KeyIndexLocal, m.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Verify(dig, old) {
		t.Fatal("message signed pre-rollover failed to verify via At")
	}

	// One more rollover reuses the old slot — now the in-flight message is
	// genuinely unverifiable, which is why the window is exactly one.
	if _, err := ks.Install(KeyIndexLocal, 0x5678); err != nil {
		t.Fatal(err)
	}
	gone, err := ks.At(KeyIndexLocal, m.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	if m.Verify(dig, gone) {
		t.Fatal("message verified after its key slot was recycled twice")
	}
}

// TestKeyStoreConcurrentAccess hammers Install/Current/At/Prepare/Commit/
// Abort from many goroutines; run under -race this checks the store's
// locking. Readers assert they only ever observe values a writer actually
// stored.
func TestKeyStoreConcurrentAccess(t *testing.T) {
	const (
		goroutines = 8
		iterations = 500
	)
	ks := NewKeyStore(4, txnSeed)
	valid := func(k uint64) bool {
		// Writers only store txnSeed or values with the 0xK000 pattern below.
		return k == txnSeed || (k&0xFFFF0000) == 0xABCD0000
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slot := g % 3 // overlap slots across goroutines
			for i := 0; i < iterations; i++ {
				switch i % 6 {
				case 0:
					if _, err := ks.Install(slot, 0xABCD0000|uint64(g)<<8|uint64(i%256)); err != nil {
						t.Errorf("Install: %v", err)
						return
					}
				case 1:
					key, _, err := ks.Current(slot)
					if err == nil && !valid(key) {
						t.Errorf("Current returned torn value %#x", key)
						return
					}
				case 2:
					for v := uint8(0); v < 2; v++ {
						key, err := ks.At(slot, v)
						if err == nil && key != 0 && !valid(key) {
							t.Errorf("At returned torn value %#x", key)
							return
						}
					}
				case 3:
					if err := ks.Prepare(slot, 0xABCD0000|uint64(g)); err != nil {
						t.Errorf("Prepare: %v", err)
						return
					}
				case 4:
					// Commit may legitimately race with another goroutine's
					// Install/Abort clearing the staging; only the error path
					// is asserted elsewhere.
					if v, err := ks.Commit(slot); err == nil && v == 0 && slot == KeyIndexLocal {
						t.Errorf("Commit returned version 0 on an established slot")
						return
					}
				case 5:
					if err := ks.Abort(slot); err != nil {
						t.Errorf("Abort: %v", err)
						return
					}
				}
				ks.Pending(slot)
				ks.Established(slot)
			}
		}(g)
	}
	wg.Wait()
}
