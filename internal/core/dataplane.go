package core

import (
	"fmt"

	"p4auth/internal/crypto"
	"p4auth/internal/p4rt"
	"p4auth/internal/pisa"
)

// Register, table, and metadata names the generated data plane uses.
const (
	RegKeysV0   = "pa_keys_v0"    // ingress key table, version 0
	RegKeysV1   = "pa_keys_v1"    // ingress key table, version 1
	RegVer      = "pa_ver"        // current key version per slot
	RegSeq      = "pa_seq"        // highest seen seqNum per slot (replay)
	RegSeqOut   = "pa_seq_out"    // outgoing seq per port (initiator kx)
	RegAlert    = "pa_alert"      // alert counter (DoS threshold)
	RegKxR      = "pa_kx_r"       // initiator private secrets per port
	RegKxS      = "pa_kx_s"       // initiator salts per port
	RegEgKeysV0 = "pa_eg_keys_v0" // egress key table, version 0
	RegEgKeysV1 = "pa_eg_keys_v1" // egress key table, version 1
	RegEgVer    = "pa_eg_ver"     // egress current version per port
	RegEgSeq    = "pa_eg_seq"     // outgoing probe seq per port
	RegFbOK     = "pa_fb_ok"      // accepted feedback per ingress port (LinkTelemetry)
	RegFbBad    = "pa_fb_bad"     // rejected feedback per ingress port (LinkTelemetry)

	TableRegMap   = "pa_reg_map"
	ActionRegMiss = "pa_reg_miss"
)

// Metadata field names (under the "meta" pseudo-header).
const (
	MAuthOK   = "pa_ok" // 1 after successful DP-DP feedback verification
	mKeyIdx   = "pa_key_idx"
	mKey      = "pa_key"
	mDig      = "pa_dig"
	mVBit     = "pa_vbit"
	mNewVer   = "pa_newver"
	mNewBit   = "pa_newbit"
	mAlertRsn = "pa_alert_rsn"
	mAlertOld = "pa_alert_old"
	mSeqOld   = "pa_seq_old"
	mInPhase  = "pa_inphase"
	mMiss     = "pa_miss"
	mR        = "pa_r"
	mT1       = "pa_t1"
	mT2       = "pa_t2"
	mS        = "pa_s"
	mLo       = "pa_lo"
	mHi       = "pa_hi"
	mPrk      = "pa_prk"
	mOut      = "pa_out"
	mVerCur   = "pa_ver_cur"
	mMsgIn    = "pa_msg_in"
	mSeqIdx   = "pa_seq_idx"
	mSeqOut   = "pa_seqout"
	mEgVer    = "pa_eg_ver_m"
	mEgBit    = "pa_eg_bit"
	mEgKey    = "pa_eg_key"
	mEgDig    = "pa_eg_dig"
	mEgSeq    = "pa_eg_seq_m"
	mEncLo    = "pa_enc_lo"
	mEncHi    = "pa_enc_hi"
	mEncKS    = "pa_enc_ks"
	mFbOld    = "pa_fb_old"
)

// AuxPayload registers a host-protocol header (e.g. a HULA probe) as a
// DP-DP feedback body: its fields join the digest input, its parser state
// hangs off pa_h's hdrType=HdrFeedback transition, and egress re-signs it
// per replica with the egress port key.
type AuxPayload struct {
	// Header is the host header name carrying the feedback body.
	Header string
	// ParserState is the host parser state that extracts it; pa_h's
	// HdrFeedback transition will point here.
	ParserState string
}

// Integration describes how P4Auth attaches to a host program.
type Integration struct {
	// Exposed lists host registers reachable through authenticated
	// register read/write requests (each costs two reg-map entries, §VII).
	Exposed []string
	// Aux lists DP-DP feedback payloads to authenticate.
	Aux []AuxPayload
	// GeneratorPort is the port self-originated feedback enters on (the
	// hardware packet generator); packets from it bypass verification and
	// get signed on egress. 0 disables.
	GeneratorPort int
	// LinkTelemetry adds per-ingress-port feedback verification counters
	// (pa_fb_ok / pa_fb_bad, exposed for authenticated reads) — the
	// data-plane evidence a link-health supervisor polls to tell a quiet
	// link from one shedding forged or stale feedback. Opt-in so baseline
	// builds keep the paper's Table II resource footprint.
	LinkTelemetry bool
}

func mf(name string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, name) }

// mDigX holds the extra digest words of the §XI ablation; chaining them
// through one destination serializes the hash calls, modeling the extra
// compute cycles the paper describes for wider digests.
const mDigX = "pa_dig_x"

// digestOps emits the digest computation: one keyed hash for the standard
// 32-bit digest, plus DigestWords-1 chained hashes when the ablation
// widens it. Each extra word mixes the previous word back in (a
// Merkle-Damgård-style extension), so the words cannot be computed in
// parallel — matching the paper's "compute cycles multiplied" discussion.
func digestOps(cfg Config, alg pisa.HashAlg, dst pisa.FieldRef, key pisa.Operand, inputs []pisa.Operand) []pisa.Op {
	ops := []pisa.Op{pisa.KeyedHash(dst, alg, key, inputs...)}
	for w := 1; w < cfg.DigestWords; w++ {
		chained := append([]pisa.Operand{pisa.R(dst), pisa.C(uint64(0xD160_0000 + w))}, inputs...)
		ops = append(ops, pisa.KeyedHash(mf(mDigX), alg, key, chained...))
		// Fold the word back so the chain depends on every stage.
		ops = append(ops, pisa.Xor(dst, pisa.R(dst), pisa.R(mf(mDigX))))
	}
	return ops
}

func hdrDigestOperands() []pisa.Operand {
	return []pisa.Operand{
		pisa.R(pisa.F(HdrAuth, "hdrType")),
		pisa.R(pisa.F(HdrAuth, "msgType")),
		pisa.R(pisa.F(HdrAuth, "seqNum")),
		pisa.R(pisa.F(HdrAuth, "keyVersion")),
	}
}

func regDigestOperands() []pisa.Operand {
	return append(hdrDigestOperands(),
		pisa.R(pisa.F(HdrReg, "regid")),
		pisa.R(pisa.F(HdrReg, "index")),
		pisa.R(pisa.F(HdrReg, "value")),
	)
}

func kxDigestOperands() []pisa.Operand {
	return append(hdrDigestOperands(),
		pisa.R(pisa.F(HdrKx, "port")),
		pisa.R(pisa.F(HdrKx, "pk")),
		pisa.R(pisa.F(HdrKx, "salt")),
	)
}

func auxDigestOperands(prog *pisa.Program, header string) ([]pisa.Operand, error) {
	def := prog.Header(header)
	if def == nil {
		return nil, fmt.Errorf("core: aux payload header %q not found in program", header)
	}
	ops := hdrDigestOperands()
	for _, f := range def.Fields {
		ops = append(ops, pisa.R(pisa.F(header, f.Name)))
	}
	return ops, nil
}

// AddToProgram weaves the P4Auth data plane into a host program: headers,
// parser states, registers, the register-map table, and the ingress and
// egress control blocks. The host program must already have a start parser
// state extracting the shared ptype header; P4Auth claims the PTypeP4Auth
// transition. P4Auth's ingress block is prepended to the host control (so
// the host sees MAuthOK), and its egress block is appended after the
// host's (so it signs final field values).
func AddToProgram(prog *pisa.Program, cfg Config, integ Integration) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	alg, err := cfg.HashAlg()
	if err != nil {
		return err
	}
	if prog.Header(HdrPType) == nil {
		return fmt.Errorf("core: host program must declare the %q header (use PTypeHeader)", HdrPType)
	}
	for _, ex := range integ.Exposed {
		if prog.Register(ex) == nil {
			return fmt.Errorf("core: exposed register %q not found in host program", ex)
		}
	}

	// Headers.
	prog.Headers = append(prog.Headers, AuthHeader(), RegPayloadHeader(), KxPayloadHeader(), IntHeader())

	// Parser: claim the ptype transition, add our states.
	if err := attachParser(prog, integ); err != nil {
		return err
	}

	// Deparse order: our headers immediately after ptype.
	prog.DeparseOrder = spliceAfter(prog.DeparseOrder, HdrPType, HdrAuth, HdrReg, HdrKx, HdrInt)

	// Metadata.
	prog.Metadata = append(prog.Metadata,
		pisa.FieldDef{Name: MAuthOK, Width: 8},
		pisa.FieldDef{Name: mKeyIdx, Width: 16},
		pisa.FieldDef{Name: mKey, Width: 64},
		pisa.FieldDef{Name: mDig, Width: 32},
		pisa.FieldDef{Name: mVBit, Width: 8},
		pisa.FieldDef{Name: mNewVer, Width: 8},
		pisa.FieldDef{Name: mNewBit, Width: 8},
		pisa.FieldDef{Name: mAlertRsn, Width: 8},
		pisa.FieldDef{Name: mAlertOld, Width: 32},
		pisa.FieldDef{Name: mSeqOld, Width: 32},
		pisa.FieldDef{Name: mInPhase, Width: 8},
		pisa.FieldDef{Name: mMiss, Width: 8},
		pisa.FieldDef{Name: mR, Width: 64},
		pisa.FieldDef{Name: mT1, Width: 64},
		pisa.FieldDef{Name: mT2, Width: 64},
		pisa.FieldDef{Name: mS, Width: 64},
		pisa.FieldDef{Name: mLo, Width: 32},
		pisa.FieldDef{Name: mHi, Width: 32},
		pisa.FieldDef{Name: mPrk, Width: 64},
		pisa.FieldDef{Name: mOut, Width: 64},
		pisa.FieldDef{Name: mVerCur, Width: 8},
		pisa.FieldDef{Name: mMsgIn, Width: 8},
		pisa.FieldDef{Name: mSeqIdx, Width: 16},
		pisa.FieldDef{Name: mDigX, Width: 32},
		pisa.FieldDef{Name: mSeqOut, Width: 32},
		pisa.FieldDef{Name: mEgVer, Width: 8},
		pisa.FieldDef{Name: mEgBit, Width: 8},
		pisa.FieldDef{Name: mEgKey, Width: 64},
		pisa.FieldDef{Name: mEgDig, Width: 32},
		pisa.FieldDef{Name: mEgSeq, Width: 32},
	)
	if cfg.Encrypt {
		prog.Metadata = append(prog.Metadata,
			pisa.FieldDef{Name: mEncLo, Width: 32},
			pisa.FieldDef{Name: mEncHi, Width: 32},
			pisa.FieldDef{Name: mEncKS, Width: 64},
		)
	}
	if integ.LinkTelemetry {
		prog.Metadata = append(prog.Metadata, pisa.FieldDef{Name: mFbOld, Width: 32})
	}

	// Registers. Slot space is 0 (local) plus ports 1..Ports.
	n := cfg.Ports + 1
	prog.Registers = append(prog.Registers,
		&pisa.RegisterDef{Name: RegKeysV0, Width: 64, Entries: n},
		&pisa.RegisterDef{Name: RegKeysV1, Width: 64, Entries: n},
		&pisa.RegisterDef{Name: RegVer, Width: 8, Entries: n},
		// Two replay high-water marks per slot: feedback probes and key
		// exchange ride distinct sequence streams on the same port.
		&pisa.RegisterDef{Name: RegSeq, Width: 32, Entries: 2 * n},
		&pisa.RegisterDef{Name: RegSeqOut, Width: 32, Entries: n},
		&pisa.RegisterDef{Name: RegAlert, Width: 32, Entries: 1},
		&pisa.RegisterDef{Name: RegKxR, Width: 64, Entries: n},
		&pisa.RegisterDef{Name: RegKxS, Width: 32, Entries: n},
		&pisa.RegisterDef{Name: RegEgKeysV0, Width: 64, Entries: n},
		&pisa.RegisterDef{Name: RegEgKeysV1, Width: 64, Entries: n},
		&pisa.RegisterDef{Name: RegEgVer, Width: 8, Entries: n},
		&pisa.RegisterDef{Name: RegEgSeq, Width: 32, Entries: n},
	)
	if integ.LinkTelemetry {
		// Per-ingress-port feedback verdict counters, slot-indexed like the
		// key tables (0 = controller channel, 1..Ports = network ports).
		prog.Registers = append(prog.Registers,
			&pisa.RegisterDef{Name: RegFbOK, Width: 32, Entries: n},
			&pisa.RegisterDef{Name: RegFbBad, Width: 32, Entries: n},
		)
	}

	// Register-map table and per-register actions (§VII, Fig. 15). The
	// alert counter is always exposed for authenticated window resets, and
	// the ingress key-version counter for key-state resync: the controller
	// reads it to detect a half-completed rollover and writes it to roll
	// the local slot back to the last mutually-known version (reachable
	// only through digest-verified requests, i.e. by a legitimate
	// controller). The egress counter stays in lockstep with the ingress
	// one by construction (both bump once per install pass), so it needs no
	// exposure — and cannot have any, being an egress-pipeline register.
	regMapped := append(append([]string(nil), integ.Exposed...), RegAlert, RegVer, RegSeq, RegSeqOut)
	if integ.LinkTelemetry {
		regMapped = append(regMapped, RegFbOK, RegFbBad)
	}
	if err := addRegMap(prog, regMapped); err != nil {
		return err
	}

	// Ingress control.
	ingress, err := buildIngress(prog, cfg, integ, alg)
	if err != nil {
		return err
	}
	prog.Control = append(ingress, prog.Control...)

	// Egress control.
	egress, err := buildEgress(prog, cfg, integ, alg)
	if err != nil {
		return err
	}
	prog.EgressControl = append(prog.EgressControl, egress...)
	return nil
}

func spliceAfter(order []string, after string, add ...string) []string {
	out := make([]string, 0, len(order)+len(add))
	inserted := false
	for _, name := range order {
		out = append(out, name)
		if name == after {
			out = append(out, add...)
			inserted = true
		}
	}
	if !inserted {
		// ptype not in deparse order: prepend everything.
		return append(append([]string{after}, add...), order...)
	}
	return out
}

func attachParser(prog *pisa.Program, integ Integration) error {
	var start *pisa.ParserState
	for i := range prog.Parser {
		if prog.Parser[i].Name == pisa.ParserStart {
			start = &prog.Parser[i]
		}
	}
	if start == nil || start.Extract != HdrPType {
		return fmt.Errorf("core: host parser must start by extracting %q", HdrPType)
	}
	if start.Select == "" {
		start.Select = pisa.F(HdrPType, "v")
	}
	if start.Transitions == nil {
		start.Transitions = make(map[uint64]string)
	}
	if _, taken := start.Transitions[PTypeP4Auth]; taken {
		return fmt.Errorf("core: ptype value %#x already claimed by the host parser", PTypeP4Auth)
	}
	start.Transitions[PTypeP4Auth] = "pa_h_state"

	authState := pisa.ParserState{
		Name:    "pa_h_state",
		Extract: HdrAuth,
		Select:  pisa.F(HdrAuth, "hdrType"),
		Transitions: map[uint64]string{
			HdrRegister: "pa_reg_state",
			HdrAlert:    "pa_reg_state",
			HdrKeyExch:  "pa_kx_state",
		},
	}
	if len(integ.Aux) > 0 {
		// All feedback bodies share hdrType=HdrFeedback; the host decides
		// which header follows via its registered state.
		authState.Transitions[HdrFeedback] = integ.Aux[0].ParserState
		if len(integ.Aux) > 1 {
			return fmt.Errorf("core: at most one aux payload parser chain is supported (got %d)", len(integ.Aux))
		}
	}
	prog.Parser = append(prog.Parser,
		authState,
		pisa.ParserState{Name: "pa_reg_state", Extract: HdrReg},
		pisa.ParserState{
			Name:    "pa_kx_state",
			Extract: HdrKx,
			Select:  pisa.F(HdrKx, "phase"),
			Transitions: map[uint64]string{
				PhaseInstall: "pa_int_state",
				PhaseForward: "pa_int_skip", // forward phase carries no pa_int
			},
		},
		pisa.ParserState{Name: "pa_int_state", Extract: HdrInt},
		pisa.ParserState{Name: "pa_int_skip"},
	)
	return nil
}

// ReadActionName names the generated per-register read action.
func ReadActionName(reg string) string { return "pa_read_" + reg }

// WriteActionName names the generated per-register write action.
func WriteActionName(reg string) string { return "pa_write_" + reg }

func addRegMap(prog *pisa.Program, exposed []string) error {
	actions := []string{ActionRegMiss}
	prog.Actions = append(prog.Actions, &pisa.Action{
		Name: ActionRegMiss,
		Body: []pisa.Op{pisa.Set(mf(mMiss), pisa.C(1))},
	})
	for _, reg := range exposed {
		prog.Actions = append(prog.Actions,
			&pisa.Action{Name: ReadActionName(reg), Body: []pisa.Op{
				pisa.RegRead(pisa.F(HdrReg, "value"), reg, pisa.R(pisa.F(HdrReg, "index"))),
				pisa.Set(mf(mMiss), pisa.C(0)),
			}},
			&pisa.Action{Name: WriteActionName(reg), Body: []pisa.Op{
				pisa.RegWrite(reg, pisa.R(pisa.F(HdrReg, "index")), pisa.R(pisa.F(HdrReg, "value"))),
				pisa.Set(mf(mMiss), pisa.C(0)),
			}},
		)
		actions = append(actions, ReadActionName(reg), WriteActionName(reg))
	}
	size := 2*len(exposed) + 2
	prog.Tables = append(prog.Tables, &pisa.Table{
		Name: TableRegMap,
		Keys: []pisa.TableKey{
			{Field: pisa.F(HdrReg, "regid"), Match: pisa.MatchExact},
			{Field: pisa.F(HdrAuth, "msgType"), Match: pisa.MatchExact},
		},
		Size:    size,
		Actions: actions,
		Default: ActionRegMiss,
	})
	return nil
}

// InstallRegMap populates the register-map table from p4info: two entries
// per exposed register (read and write), as §VII describes. The alert
// counter is always exposed so the controller can reset the DoS window
// (§VIII) with an authenticated write, the ingress key-version counter so
// the controller can resync key state after an interrupted rollover, and
// the sequencing registers (replay floors and outbound counters) so
// crash recovery can audit floors and re-pair DP-DP sequencing on links
// whose ends rebooted. Every access still rides the authenticated
// channel; exposure adds no capability an adversary without K_local
// lacks.
func InstallRegMap(sw *pisa.Switch, info *p4rt.P4Info, exposed []string) error {
	exposed = append(append([]string(nil), exposed...), RegAlert, RegVer, RegSeq, RegSeqOut)
	for _, reg := range exposed {
		ri, err := info.RegisterByName(reg)
		if err != nil {
			return err
		}
		if err := sw.InsertEntry(TableRegMap, pisa.Entry{
			Key:    []pisa.KeyMatch{pisa.EKey(uint64(ri.ID)), pisa.EKey(MsgReadReq)},
			Action: ReadActionName(reg),
		}); err != nil {
			return err
		}
		if err := sw.InsertEntry(TableRegMap, pisa.Entry{
			Key:    []pisa.KeyMatch{pisa.EKey(uint64(ri.ID)), pisa.EKey(MsgWriteReq)},
			Action: WriteActionName(reg),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Boot loads the compile-time seed key into the data plane's key register,
// modeling the P4 binary shipping K_seed (§VI-A).
func Boot(sw *pisa.Switch, cfg Config) error {
	return sw.RegisterWrite(RegKeysV0, KeyIndexLocal, cfg.Seed)
}

// FactoryReset zeroes all P4Auth state registers and re-seeds the key
// table — the operator "reload the switch" recovery path for the one
// liveness gap the protocol (as published) has: if a key-exchange
// response is lost and the exchange retried, the two sides' version
// counters can drift until the tag bit no longer selects a shared key.
func FactoryReset(sw *pisa.Switch, cfg Config) error {
	prog := sw.Compiled().Program
	for _, name := range []string{
		RegKeysV0, RegKeysV1, RegVer, RegSeq, RegSeqOut, RegAlert,
		RegKxR, RegKxS, RegEgKeysV0, RegEgKeysV1, RegEgVer, RegEgSeq,
		RegFbOK, RegFbBad,
	} {
		def := prog.Register(name)
		if def == nil {
			continue // insecure builds carry no key-exchange state
		}
		for i := 0; i < def.Entries; i++ {
			if err := sw.RegisterWrite(name, i, 0); err != nil {
				return err
			}
		}
	}
	return Boot(sw, cfg)
}

func buildIngress(prog *pisa.Program, cfg Config, integ Integration, alg pisa.HashAlg) ([]pisa.Op, error) {
	verifyBlock, err := buildVerifyDispatch(prog, cfg, integ, alg)
	if err != nil {
		return nil, err
	}
	phaseBlock := buildPhases(cfg, alg)

	inner := []pisa.Op{
		pisa.Set(mf(mInPhase), pisa.C(0)),
		pisa.If(pisa.Valid(HdrKx), []pisa.Op{
			pisa.Set(mf(mInPhase), pisa.R(pisa.F(HdrKx, "phase"))),
		}),
		pisa.If(pisa.Eq(pisa.R(mf(mInPhase)), pisa.C(PhaseVerify)),
			verifyBlock,
			phaseBlock,
		),
	}
	return []pisa.Op{pisa.If(pisa.Valid(HdrAuth), inner)}, nil
}

func buildVerifyDispatch(prog *pisa.Program, cfg Config, integ Integration, alg pisa.HashAlg) ([]pisa.Op, error) {
	hdrAuth := func(f string) pisa.FieldRef { return pisa.F(HdrAuth, f) }

	// Key slot: 0 for the controller channel, ingress port otherwise.
	ops := []pisa.Op{
		pisa.Set(mf(mKeyIdx), pisa.R(mf(pisa.MetaIngressPort))),
		pisa.If(pisa.Eq(pisa.R(mf(pisa.MetaIngressPort)), pisa.C(pisa.CPUPort)), []pisa.Op{
			pisa.Set(mf(mKeyIdx), pisa.C(KeyIndexLocal)),
		}),
	}

	// Insecure baseline (DP-Reg-RW): skip all digest work, process
	// register requests directly.
	if cfg.Insecure {
		ops = append(ops, pisa.If(pisa.Valid(HdrReg), buildRegDispatch(cfg, alg)))
		return ops, nil
	}

	// Load the verification key for the message's tagged version.
	ops = append(ops,
		pisa.And(mf(mVBit), pisa.R(hdrAuth("keyVersion")), pisa.C(1)),
		pisa.If(pisa.Eq(pisa.R(mf(mVBit)), pisa.C(0)),
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV0, pisa.R(mf(mKeyIdx)))},
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV1, pisa.R(mf(mKeyIdx)))},
		),
	)

	// Recompute the digest per payload kind.
	ops = append(ops,
		pisa.If(pisa.Valid(HdrReg), digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), regDigestOperands())),
		pisa.If(pisa.Valid(HdrKx), digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), kxDigestOperands())),
	)
	for _, aux := range integ.Aux {
		inputs, err := auxDigestOperands(prog, aux.Header)
		if err != nil {
			return nil, err
		}
		ops = append(ops, pisa.If(pisa.Valid(aux.Header), digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), inputs)))
	}

	// Verified path: replay check, then dispatch. Key-exchange messages
	// use the odd replay slot, everything else the even one, so the two
	// per-port sequence streams never collide.
	verified := []pisa.Op{
		pisa.Shl(mf(mSeqIdx), pisa.R(mf(mKeyIdx)), pisa.C(1)),
		pisa.If(pisa.Valid(HdrKx), []pisa.Op{
			pisa.Add(mf(mSeqIdx), pisa.R(mf(mSeqIdx)), pisa.C(1)),
		}),
		pisa.RegRMW(mf(mSeqOld), RegSeq, pisa.R(mf(mSeqIdx)), pisa.RMWMax, pisa.R(hdrAuth("seqNum"))),
		pisa.If(pisa.Cond{L: pisa.R(hdrAuth("seqNum")), R: pisa.R(mf(mSeqOld)), Cmp: pisa.CmpLe},
			[]pisa.Op{pisa.Set(mf(mAlertRsn), pisa.C(AlertReplay))},
			buildDispatch(cfg, integ, alg),
		),
	}

	ops = append(ops,
		pisa.Set(mf(mAlertRsn), pisa.C(0)),
		pisa.If(pisa.Ne(pisa.R(mf(mDig)), pisa.R(hdrAuth("digest"))),
			[]pisa.Op{pisa.Set(mf(mAlertRsn), pisa.C(AlertBadDigest))},
			verified,
		),
	)

	// Generator-port feedback bypasses verification entirely (hardware
	// packet generator originating probes): mark OK so the host forwards
	// it; egress will sign each replica.
	if integ.GeneratorPort != 0 {
		full := ops
		bypass := []pisa.Op{pisa.Set(mf(MAuthOK), pisa.C(1))}
		ops = []pisa.Op{
			pisa.If(pisa.Eq(pisa.R(mf(pisa.MetaIngressPort)), pisa.C(uint64(integ.GeneratorPort))),
				bypass, full),
		}
	}

	// Alert path (shared by digest and replay failures): threshold-capped
	// authenticated alert to the controller (§VIII DoS mitigation).
	var alert []pisa.Op
	if integ.LinkTelemetry {
		// Charge the failed feedback to its ingress port before the alert
		// threshold can swallow it — the supervisor's evidence must count
		// every rejection, not just the alerted ones.
		for _, aux := range integ.Aux {
			alert = append(alert, pisa.If(pisa.Valid(aux.Header), []pisa.Op{
				pisa.RegRMW(mf(mFbOld), RegFbBad, pisa.R(mf(mKeyIdx)), pisa.RMWAdd, pisa.C(1)),
			}))
		}
	}
	alert = append(alert,
		pisa.RegRMW(mf(mAlertOld), RegAlert, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
		pisa.If(pisa.Lt(pisa.R(mf(mAlertOld)), pisa.C(cfg.AlertThreshold)),
			buildAlertEmit(cfg, integ, alg),
			[]pisa.Op{pisa.Drop()},
		),
	)
	ops = append(ops, pisa.If(pisa.Ne(pisa.R(mf(mAlertRsn)), pisa.C(0)), alert))
	return ops, nil
}

func buildAlertEmit(cfg Config, integ Integration, alg pisa.HashAlg) []pisa.Op {
	ops := []pisa.Op{
		pisa.Set(pisa.F(HdrAuth, "hdrType"), pisa.C(HdrAlert)),
		pisa.Set(pisa.F(HdrAuth, "msgType"), pisa.R(mf(mAlertRsn))),
		pisa.If(pisa.NotValid(HdrReg), []pisa.Op{pisa.SetValid(HdrReg)}),
		pisa.SetInvalid(HdrKx),
		pisa.SetInvalid(HdrInt),
	}
	for _, aux := range integ.Aux {
		ops = append(ops, pisa.SetInvalid(aux.Header))
	}
	ops = append(ops, digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), regDigestOperands())...)
	ops = append(ops,
		pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mDig))),
		pisa.ToCPU(),
	)
	return ops
}

// buildDispatch routes a verified message by payload kind.
func buildDispatch(cfg Config, integ Integration, alg pisa.HashAlg) []pisa.Op {
	ops := []pisa.Op{
		pisa.If(pisa.Valid(HdrReg), buildRegDispatch(cfg, alg)),
		pisa.If(pisa.Valid(HdrKx), buildKxDispatch(cfg, alg)),
	}
	for _, aux := range integ.Aux {
		accepted := []pisa.Op{pisa.Set(mf(MAuthOK), pisa.C(1))}
		if integ.LinkTelemetry {
			accepted = append(accepted,
				pisa.RegRMW(mf(mFbOld), RegFbOK, pisa.R(mf(mKeyIdx)), pisa.RMWAdd, pisa.C(1)))
		}
		ops = append(ops, pisa.If(pisa.Valid(aux.Header), accepted))
	}
	return ops
}

func buildRegDispatch(cfg Config, alg pisa.HashAlg) []pisa.Op {
	var ops []pisa.Op
	if cfg.Encrypt && !cfg.Insecure {
		// §XI extension: the digest (already verified) covered the
		// ciphertext; decrypt write payloads before they reach a register.
		ops = append(ops, pisa.If(pisa.Eq(pisa.R(pisa.F(HdrAuth, "msgType")), pisa.C(MsgWriteReq)),
			encryptOps(alg, EncLabelReqLo, EncLabelReqHi)))
	}
	ops = append(ops,
		pisa.Set(mf(mMiss), pisa.C(1)),
		pisa.Apply(TableRegMap),
		pisa.If(pisa.Eq(pisa.R(mf(mMiss)), pisa.C(0)),
			[]pisa.Op{pisa.Set(pisa.F(HdrAuth, "msgType"), pisa.C(MsgAck))},
			[]pisa.Op{pisa.Set(pisa.F(HdrAuth, "msgType"), pisa.C(MsgNAck))},
		),
	)
	if cfg.Encrypt && !cfg.Insecure {
		// Encrypt the (possibly read) value before the response digest.
		ops = append(ops, encryptOps(alg, EncLabelRespLo, EncLabelRespHi)...)
	}
	if !cfg.Insecure {
		ops = append(ops, digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), regDigestOperands())...)
		ops = append(ops, pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mDig))))
	}
	ops = append(ops, pisa.ToCPU())
	return ops
}

func buildKxDispatch(cfg Config, alg pisa.HashAlg) []pisa.Op {
	hk := func(f string) pisa.FieldRef { return pisa.F(HdrKx, f) }
	hi := func(f string) pisa.FieldRef { return pisa.F(HdrInt, f) }
	msgType := pisa.F(HdrAuth, "msgType")

	// Common pa_int setup used by the responder branches.
	intSetup := []pisa.Op{
		pisa.SetValid(HdrInt),
		pisa.Set(hi("s1"), pisa.R(hk("salt"))),
		pisa.Set(hi("inport"), pisa.R(mf(pisa.MetaIngressPort))),
		pisa.Set(hi("idx"), pisa.R(mf(mKeyIdx))),
		pisa.If(pisa.Ne(pisa.R(hk("port")), pisa.C(0)), []pisa.Op{
			pisa.Set(hi("idx"), pisa.R(hk("port"))),
		}),
	}

	eak := append(append([]pisa.Op{}, intSetup...),
		pisa.Set(hi("newkey"), pisa.C(cfg.Seed)), // KDF secret = K_seed
		pisa.Set(hi("resp"), pisa.C(1)),
		pisa.Random(hk("salt")), // S2
		pisa.Set(msgType, pisa.C(MsgEAKSalt2)),
		pisa.Set(hk("phase"), pisa.C(PhaseInstall)),
		pisa.Recirculate(),
	)

	adhkd1 := append(append([]pisa.Op{}, intSetup...),
		pisa.Set(hi("resp"), pisa.C(1)),
		pisa.Random(mf(mR)), // R2
		// K_pms = (PK1 AND R2) XOR P — before overwriting pk.
		pisa.And(hi("newkey"), pisa.R(hk("pk")), pisa.R(mf(mR))),
		pisa.Xor(hi("newkey"), pisa.R(hi("newkey")), pisa.C(cfg.DH.P)),
		// PK2 = (G AND R2) XOR (P AND R2).
		pisa.And(mf(mT1), pisa.C(cfg.DH.G), pisa.R(mf(mR))),
		pisa.And(mf(mT2), pisa.C(cfg.DH.P), pisa.R(mf(mR))),
		pisa.Xor(hk("pk"), pisa.R(mf(mT1)), pisa.R(mf(mT2))),
		pisa.Random(hk("salt")), // S2
		pisa.Set(msgType, pisa.C(MsgADHKD2)),
		pisa.Set(hk("phase"), pisa.C(PhaseInstall)),
		pisa.Recirculate(),
	)

	adhkd2 := append(append([]pisa.Op{}, intSetup...),
		pisa.Set(hi("resp"), pisa.C(0)),
		// Recover initiator state: R1 and S1 stashed at the slot index.
		// R1 is consumed (zeroed) on read so a replayed ADHKD2 cannot
		// reinstall or corrupt the key.
		pisa.RegRMW(mf(mR), RegKxR, pisa.R(hi("idx")), pisa.RMWWrite, pisa.C(0)),
		pisa.RegRead(hi("s1"), RegKxS, pisa.R(hi("idx"))),
		pisa.If(pisa.Eq(pisa.R(mf(mR)), pisa.C(0)),
			[]pisa.Op{
				pisa.SetInvalid(HdrInt),
				pisa.Set(mf(mAlertRsn), pisa.C(AlertReplay)),
			},
			[]pisa.Op{
				// K_pms = (PK2 AND R1) XOR P.
				pisa.And(hi("newkey"), pisa.R(hk("pk")), pisa.R(mf(mR))),
				pisa.Xor(hi("newkey"), pisa.R(hi("newkey")), pisa.C(cfg.DH.P)),
				pisa.Set(hk("phase"), pisa.C(PhaseInstall)),
				pisa.Recirculate(),
			},
		),
	)

	// Shared initiator start: generate R1/S1, stash them, emit ADHKD1
	// fields. portKeyInit responds via the controller; portKeyUpdate
	// recirculates to sign with the port key and sends directly.
	initStart := []pisa.Op{
		pisa.Random(mf(mR)),
		pisa.RegWrite(RegKxR, pisa.R(hk("port")), pisa.R(mf(mR))),
		pisa.Random(mf(mLo)),
		pisa.RegWrite(RegKxS, pisa.R(hk("port")), pisa.R(mf(mLo))),
		pisa.Set(hk("salt"), pisa.R(mf(mLo))),
		pisa.And(mf(mT1), pisa.C(cfg.DH.G), pisa.R(mf(mR))),
		pisa.And(mf(mT2), pisa.C(cfg.DH.P), pisa.R(mf(mR))),
		pisa.Xor(hk("pk"), pisa.R(mf(mT1)), pisa.R(mf(mT2))),
		pisa.Set(msgType, pisa.C(MsgADHKD1)),
	}

	portInit := append(append([]pisa.Op{}, initStart...), digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), kxDigestOperands())...)
	portInit = append(portInit,
		// Respond to the controller under the same local key (the
		// initKeyExch redirection of Fig. 14(c)).
		pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mDig))),
		pisa.ToCPU(),
	)

	portUpdate := append(append([]pisa.Op{}, initStart...),
		// Tag with the current port-key version and a fresh per-port seq,
		// then recirculate: the forward pass loads the port key (a second
		// pa_keys access is illegal in this pass) and sends on the port.
		pisa.RegRead(mf(mVerCur), RegVer, pisa.R(hk("port"))),
		pisa.Set(pisa.F(HdrAuth, "keyVersion"), pisa.R(mf(mVerCur))),
		pisa.RegRMW(mf(mSeqOut), RegSeqOut, pisa.R(hk("port")), pisa.RMWAdd, pisa.C(1)),
		pisa.Add(mf(mSeqOut), pisa.R(mf(mSeqOut)), pisa.C(1)),
		pisa.Set(pisa.F(HdrAuth, "seqNum"), pisa.R(mf(mSeqOut))),
		pisa.Set(hk("phase"), pisa.C(PhaseForward)),
		pisa.Recirculate(),
	)

	// Dispatch on a snapshot: branches rewrite msgType into the response
	// type, which must not re-trigger later branches.
	in := pisa.R(mf(mMsgIn))
	return []pisa.Op{
		pisa.Set(mf(mMsgIn), pisa.R(msgType)),
		pisa.If(pisa.Eq(in, pisa.C(MsgEAKSalt1)), eak),
		pisa.If(pisa.Eq(in, pisa.C(MsgADHKD1)), adhkd1),
		pisa.If(pisa.Eq(in, pisa.C(MsgADHKD2)), adhkd2),
		pisa.If(pisa.Eq(in, pisa.C(MsgPortKeyInit)), portInit),
		pisa.If(pisa.Eq(in, pisa.C(MsgPortKeyUpdate)), portUpdate),
	}
}

// buildPhases handles recirculated key-exchange passes: the KDF+install
// pass and the initiator forward pass.
func buildPhases(cfg Config, alg pisa.HashAlg) []pisa.Op {
	hk := func(f string) pisa.FieldRef { return pisa.F(HdrKx, f) }
	hi := func(f string) pisa.FieldRef { return pisa.F(HdrInt, f) }

	// --- Install pass ---
	// Order matters: the response is SIGNED FIRST, with the same key the
	// request was verified under, before any register is overwritten. If a
	// response is lost and the initiator retries, the retried exchange's
	// install can land on the same version slot the old key occupies;
	// signing before installing guarantees the response is still
	// authenticated under the key the peer expects.

	// Response emission (responder side).
	respond := []pisa.Op{
		pisa.Set(mf(mKeyIdx), pisa.R(hi("inport"))),
		pisa.If(pisa.Eq(pisa.R(hi("inport")), pisa.C(pisa.CPUPort)), []pisa.Op{
			pisa.Set(mf(mKeyIdx), pisa.C(KeyIndexLocal)),
		}),
		pisa.And(mf(mVBit), pisa.R(pisa.F(HdrAuth, "keyVersion")), pisa.C(1)),
		pisa.If(pisa.Eq(pisa.R(mf(mVBit)), pisa.C(0)),
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV0, pisa.R(mf(mKeyIdx)))},
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV1, pisa.R(mf(mKeyIdx)))},
		),
		pisa.Set(hk("phase"), pisa.C(PhaseVerify)),
	}
	respond = append(respond, digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), kxDigestOperands())...)
	respond = append(respond,
		pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mDig))),
		pisa.If(pisa.Eq(pisa.R(hi("inport")), pisa.C(pisa.CPUPort)),
			[]pisa.Op{pisa.ToCPU()},
			[]pisa.Op{pisa.Forward(pisa.R(pisa.F(HdrInt, "inport")))},
		),
	)
	// Initiator completion (resp=0): the packet still traverses egress so
	// egress key installation happens; egress drops it afterwards.
	install := []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(hi("resp")), pisa.C(1)),
			respond,
			[]pisa.Op{pisa.Set(hk("phase"), pisa.C(PhaseVerify)), pisa.ToCPU()},
		),
	}

	// KDF (Extract-and-Expand) and key installation.
	install = append(install,
		// S = S1 || S2 (two 32-bit halves).
		pisa.Shl(mf(mS), pisa.R(hi("s1")), pisa.C(32)),
		pisa.Or(mf(mS), pisa.R(mf(mS)), pisa.R(hk("salt"))),
		// Extract: PRF keyed by the salt over secret||pers||label.
		pisa.KeyedHash(mf(mLo), alg, pisa.R(mf(mS)),
			pisa.R(hi("newkey")), pisa.C(cfg.Personalization), pisa.C(crypto.KDFLabelExtractLo)),
		pisa.KeyedHash(mf(mHi), alg, pisa.R(mf(mS)),
			pisa.R(hi("newkey")), pisa.C(cfg.Personalization), pisa.C(crypto.KDFLabelExtractHi)),
		pisa.Shl(mf(mPrk), pisa.R(mf(mHi)), pisa.C(32)),
		pisa.Or(mf(mPrk), pisa.R(mf(mPrk)), pisa.R(mf(mLo))),
		pisa.Set(mf(mOut), pisa.R(mf(mPrk))),
	)
	rounds := cfg.KDFRounds
	if rounds < 1 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		install = append(install,
			pisa.KeyedHash(mf(mLo), alg, pisa.R(mf(mPrk)),
				pisa.R(mf(mOut)), pisa.C(cfg.Personalization), pisa.C(crypto.KDFLabelExpandLo)),
			pisa.KeyedHash(mf(mHi), alg, pisa.R(mf(mPrk)),
				pisa.R(mf(mOut)), pisa.C(cfg.Personalization), pisa.C(crypto.KDFLabelExpandHi)),
			pisa.Shl(mf(mOut), pisa.R(mf(mHi)), pisa.C(32)),
			pisa.Or(mf(mOut), pisa.R(mf(mOut)), pisa.R(mf(mLo))),
		)
	}
	install = append(install,
		pisa.Set(hi("newkey"), pisa.R(mf(mOut))),
		// Install at the slot's next version: the slot's own counter, not
		// the message's keyVersion — for controller-relayed port-key
		// exchanges the authenticating (local) key's version is unrelated
		// to the port slot's. The RMW bumps and returns the old value in
		// one access.
		pisa.RegRMW(mf(mVerCur), RegVer, pisa.R(hi("idx")), pisa.RMWAdd, pisa.C(1)),
		pisa.Add(mf(mNewVer), pisa.R(mf(mVerCur)), pisa.C(1)),
		pisa.And(mf(mNewBit), pisa.R(mf(mNewVer)), pisa.C(1)),
		pisa.If(pisa.Eq(pisa.R(mf(mNewBit)), pisa.C(0)),
			[]pisa.Op{pisa.RegWrite(RegKeysV0, pisa.R(hi("idx")), pisa.R(mf(mOut)))},
			[]pisa.Op{pisa.RegWrite(RegKeysV1, pisa.R(hi("idx")), pisa.R(mf(mOut)))},
		),
	)

	// --- Forward pass (initiator ADHKD1 toward a neighbor port) ---
	forward := []pisa.Op{
		pisa.And(mf(mVBit), pisa.R(pisa.F(HdrAuth, "keyVersion")), pisa.C(1)),
		pisa.If(pisa.Eq(pisa.R(mf(mVBit)), pisa.C(0)),
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV0, pisa.R(hk("port")))},
			[]pisa.Op{pisa.RegRead(mf(mKey), RegKeysV1, pisa.R(hk("port")))},
		),
		pisa.Forward(pisa.R(hk("port"))),
		pisa.Set(hk("port"), pisa.C(0)), // receiver installs at its ingress
		pisa.Set(hk("phase"), pisa.C(PhaseVerify)),
	}
	forward = append(forward, digestOps(cfg, alg, mf(mDig), pisa.R(mf(mKey)), kxDigestOperands())...)
	forward = append(forward, pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mDig))))

	return []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(mf(mInPhase)), pisa.C(PhaseInstall)), install),
		pisa.If(pisa.Eq(pisa.R(mf(mInPhase)), pisa.C(PhaseForward)), forward),
	}
}

func buildEgress(prog *pisa.Program, cfg Config, integ Integration, alg pisa.HashAlg) ([]pisa.Op, error) {
	var ops []pisa.Op

	if !cfg.Insecure {
		// Egress-side key installation during the install pass.
		ops = append(ops, pisa.If(pisa.Valid(HdrInt), []pisa.Op{
			pisa.RegRMW(mf(mEgVer), RegEgVer, pisa.R(pisa.F(HdrInt, "idx")), pisa.RMWAdd, pisa.C(1)),
			pisa.Add(mf(mNewVer), pisa.R(mf(mEgVer)), pisa.C(1)),
			pisa.And(mf(mNewBit), pisa.R(mf(mNewVer)), pisa.C(1)),
			pisa.If(pisa.Eq(pisa.R(mf(mNewBit)), pisa.C(0)),
				[]pisa.Op{pisa.RegWrite(RegEgKeysV0, pisa.R(pisa.F(HdrInt, "idx")), pisa.R(pisa.F(HdrInt, "newkey")))},
				[]pisa.Op{pisa.RegWrite(RegEgKeysV1, pisa.R(pisa.F(HdrInt, "idx")), pisa.R(pisa.F(HdrInt, "newkey")))},
			),
			pisa.If(pisa.Eq(pisa.R(pisa.F(HdrInt, "resp")), pisa.C(0)), []pisa.Op{pisa.Drop()}),
			pisa.SetInvalid(HdrInt),
		}))
	} else {
		ops = append(ops, pisa.If(pisa.Valid(HdrInt), []pisa.Op{pisa.SetInvalid(HdrInt)}))
	}

	// Per-replica feedback signing with the egress port key.
	for _, aux := range integ.Aux {
		inputs, err := auxDigestOperands(prog, aux.Header)
		if err != nil {
			return nil, err
		}
		if cfg.Insecure {
			continue
		}
		egPort := pisa.R(mf(pisa.MetaEgressPort))
		sign := []pisa.Op{
			pisa.RegRead(mf(mEgVer), RegEgVer, egPort),
			pisa.And(mf(mEgBit), pisa.R(mf(mEgVer)), pisa.C(1)),
			pisa.If(pisa.Eq(pisa.R(mf(mEgBit)), pisa.C(0)),
				[]pisa.Op{pisa.RegRead(mf(mEgKey), RegEgKeysV0, egPort)},
				[]pisa.Op{pisa.RegRead(mf(mEgKey), RegEgKeysV1, egPort)},
			),
			pisa.Set(pisa.F(HdrAuth, "keyVersion"), pisa.R(mf(mEgVer))),
			pisa.RegRMW(mf(mEgSeq), RegEgSeq, egPort, pisa.RMWAdd, pisa.C(1)),
			pisa.Add(mf(mEgSeq), pisa.R(mf(mEgSeq)), pisa.C(1)),
			pisa.Set(pisa.F(HdrAuth, "seqNum"), pisa.R(mf(mEgSeq))),
			pisa.Set(pisa.F(HdrAuth, "hdrType"), pisa.C(HdrFeedback)),
			pisa.Set(pisa.F(HdrAuth, "msgType"), pisa.C(MsgProbe)),
		}
		sign = append(sign, digestOps(cfg, alg, mf(mEgDig), pisa.R(mf(mEgKey)), inputs)...)
		sign = append(sign, pisa.Set(pisa.F(HdrAuth, "digest"), pisa.R(mf(mEgDig))))
		ops = append(ops, pisa.If(pisa.Valid(aux.Header), []pisa.Op{
			pisa.If(pisa.Ne(pisa.R(mf(pisa.MetaEgressPort)), pisa.C(pisa.CPUPort)), sign),
		}))
	}
	return ops, nil
}
