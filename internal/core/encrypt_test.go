package core

import (
	"testing"
)

// TestEncryptValueKeystreamProperties checks the §XI value-encryption
// helpers directly: XOR symmetry (encrypt twice = identity), direction
// domain separation (a request keystream never equals the response one),
// and sequence binding (reusing a keystream across sequence numbers
// would turn the stream cipher into a two-time pad).
func TestEncryptValueKeystreamProperties(t *testing.T) {
	cfg := DefaultConfig(4, DigestCRC32)
	dig, err := cfg.Digester()
	if err != nil {
		t.Fatal(err)
	}
	const key, seq, value = 0xFEED_5EED, 42, 0x0123_4567_89AB_CDEF

	ct := EncryptRequestValue(dig, key, seq, value)
	if ct == value {
		t.Fatal("request encryption was a no-op")
	}
	if got := EncryptRequestValue(dig, key, seq, ct); got != value {
		t.Fatalf("double encryption = %#x, want the plaintext %#x", got, value)
	}
	if rct := EncryptResponseValue(dig, key, seq, value); rct == ct {
		t.Fatal("request and response directions share a keystream")
	}
	if ct2 := EncryptRequestValue(dig, key, seq+1, value); ct2 == ct {
		t.Fatal("keystream does not depend on the sequence number")
	}
	if ctk := EncryptRequestValue(dig, key+1, seq, value); ctk == ct {
		t.Fatal("keystream does not depend on the key")
	}
}

// TestEncryptedPipelineEndToEnd drives a write and a read through a data
// plane built with Config.Encrypt, playing the controller side by hand:
// the write carries ciphertext (encrypt-then-MAC), the register must end
// up holding plaintext, and the read response's value comes back under
// the response-direction keystream.
func TestEncryptedPipelineEndToEnd(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Encrypt = true })
	const plaintext = 0xC0FFEE_00_5EC_12E7
	lat := e.regID(t, "lat")

	key, ver, err := e.ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	seq := e.seq.Next()
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: seq, KeyVersion: ver},
		Reg:    &RegPayload{RegID: lat, Index: 3, Value: EncryptRequestValue(e.dig, key, seq, plaintext)},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	res := e.send(t, m)
	if len(res) != 1 || res[0].MsgType != MsgAck {
		t.Fatalf("encrypted write not acked: %+v", res)
	}
	e.verifyResponse(t, res[0])
	// The data plane decrypts before the stateful ALU: plaintext lands.
	if v, err := e.sw.RegisterRead("lat", 3); err != nil || v != plaintext&0xFFFF_FFFF {
		// "lat" is a 32-bit register; the pipeline masks to width.
		t.Fatalf("register holds %#x (err=%v), want %#x", v, err, plaintext&0xFFFF_FFFF)
	}

	// Read it back: the response value field is ciphertext under the
	// response label and the response's own sequence number.
	r := e.signedReg(t, MsgReadReq, lat, 3, 0)
	res = e.send(t, r)
	if len(res) != 1 || res[0].MsgType != MsgAck {
		t.Fatalf("encrypted read not acked: %+v", res)
	}
	e.verifyResponse(t, res[0])
	if res[0].Reg.Value == plaintext&0xFFFF_FFFF {
		t.Fatal("read response carried the plaintext on the wire")
	}
	got := EncryptResponseValue(e.dig, key, res[0].SeqNum, res[0].Reg.Value)
	if got != plaintext&0xFFFF_FFFF {
		t.Fatalf("decrypted read = %#x, want %#x", got, plaintext&0xFFFF_FFFF)
	}
}
