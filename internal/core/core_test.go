package core

import (
	"testing"

	"p4auth/internal/crypto"
	"p4auth/internal/p4rt"
	"p4auth/internal/pisa"
)

// testEnv is a one-switch P4Auth deployment: a minimal host program with
// one exposed register, compiled for Tofino, booted with the seed key.
type testEnv struct {
	sw  *pisa.Switch
	cfg Config
	dig crypto.Digester
	seq *SeqTracker
	ks  *KeyStore // controller-side keys
}

func hostProgram() *pisa.Program {
	return &pisa.Program{
		Name:         "core_test_host",
		Headers:      []*pisa.HeaderDef{PTypeHeader()},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: HdrPType}},
		DeparseOrder: []string{HdrPType},
		Registers: []*pisa.RegisterDef{
			{Name: "lat", Width: 32, Entries: 8},
			{Name: "split", Width: 64, Entries: 4},
		},
	}
}

func newEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	cfg := DefaultConfig(4, DigestCRC32)
	if mutate != nil {
		mutate(&cfg)
	}
	prog := hostProgram()
	if err := AddToProgram(prog, cfg, Integration{Exposed: []string{"lat", "split"}}); err != nil {
		t.Fatal(err)
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(777)))
	if err != nil {
		t.Fatal(err)
	}
	if err := Boot(sw, cfg); err != nil {
		t.Fatal(err)
	}
	if err := InstallRegMap(sw, p4rt.InfoFromProgram(prog), []string{"lat", "split"}); err != nil {
		t.Fatal(err)
	}
	dig, err := cfg.Digester()
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{sw: sw, cfg: cfg, dig: dig, seq: NewSeqTracker(), ks: NewKeyStore(cfg.Ports, cfg.Seed)}
}

// send injects a message on the CPU port and returns decoded CPU-port
// responses.
func (e *testEnv) send(t *testing.T, m *Message) []*Message {
	t.Helper()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.sw.Process(pisa.Packet{Data: data, Port: pisa.CPUPort})
	if err != nil {
		t.Fatal(err)
	}
	var out []*Message
	for _, em := range res.Emissions {
		if em.Port != pisa.CPUPort {
			continue
		}
		r, err := DecodeMessage(em.Data)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		out = append(out, r)
	}
	return out
}

// signedReg builds a signed register request under the controller's
// current local key.
func (e *testEnv) signedReg(t *testing.T, msgType uint8, regID uint32, index uint32, value uint64) *Message {
	t.Helper()
	key, ver, err := e.ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: msgType, SeqNum: e.seq.Next(), KeyVersion: ver},
		Reg:    &RegPayload{RegID: regID, Index: index, Value: value},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	return m
}

func (e *testEnv) regID(t *testing.T, name string) uint32 {
	t.Helper()
	ri, err := p4rt.InfoFromProgram(e.sw.Compiled().Program).RegisterByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ri.ID
}

func (e *testEnv) verifyResponse(t *testing.T, r *Message) {
	t.Helper()
	key, err := e.ks.At(KeyIndexLocal, r.KeyVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verify(e.dig, key) {
		t.Fatalf("response digest invalid: %+v", r)
	}
	if err := e.seq.Settle(r.SeqNum); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticatedRegisterWriteAndRead(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")

	resp := e.send(t, e.signedReg(t, MsgWriteReq, latID, 3, 777))
	if len(resp) != 1 || resp[0].MsgType != MsgAck {
		t.Fatalf("write response = %+v", resp)
	}
	e.verifyResponse(t, resp[0])
	if v, _ := e.sw.RegisterRead("lat", 3); v != 777 {
		t.Fatalf("data plane register = %d, want 777", v)
	}

	resp = e.send(t, e.signedReg(t, MsgReadReq, latID, 3, 0))
	if len(resp) != 1 || resp[0].MsgType != MsgAck {
		t.Fatalf("read response = %+v", resp)
	}
	if resp[0].Reg.Value != 777 {
		t.Fatalf("read value = %d, want 777", resp[0].Reg.Value)
	}
	e.verifyResponse(t, resp[0])
}

func TestTamperedRequestRaisesAlertAndIsNotApplied(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	m := e.signedReg(t, MsgWriteReq, latID, 0, 10)
	m.Reg.Value = 9999 // MitM rewrites the value after signing

	resp := e.send(t, m)
	if len(resp) != 1 {
		t.Fatalf("want one alert, got %+v", resp)
	}
	a := resp[0]
	if a.HdrType != HdrAlert || a.MsgType != AlertBadDigest {
		t.Fatalf("alert = %+v", a)
	}
	// Alerts are authenticated too.
	key, _, _ := e.ks.Current(KeyIndexLocal)
	if !a.Verify(e.dig, key) {
		t.Fatal("alert digest invalid")
	}
	// The tampered write must not have reached the register.
	if v, _ := e.sw.RegisterRead("lat", 0); v != 0 {
		t.Fatalf("tampered write applied: %d", v)
	}
}

func TestReplayRejected(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	m := e.signedReg(t, MsgWriteReq, latID, 1, 42)

	resp := e.send(t, m)
	if resp[0].MsgType != MsgAck {
		t.Fatalf("first send: %+v", resp[0])
	}
	// Attacker records and replays the same (validly signed) message.
	if err := e.sw.RegisterWrite("lat", 1, 0); err != nil {
		t.Fatal(err)
	}
	resp = e.send(t, m)
	if len(resp) != 1 || resp[0].HdrType != HdrAlert || resp[0].MsgType != AlertReplay {
		t.Fatalf("replay response = %+v", resp)
	}
	if v, _ := e.sw.RegisterRead("lat", 1); v != 0 {
		t.Fatalf("replayed write applied: %d", v)
	}
}

func TestOldSeqRejected(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	// Advance the data-plane high-water mark.
	e.send(t, e.signedReg(t, MsgWriteReq, latID, 0, 1))
	e.send(t, e.signedReg(t, MsgWriteReq, latID, 0, 2))
	// Craft a validly-signed message with an old sequence number.
	key, ver, _ := e.ks.Current(KeyIndexLocal)
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 1, KeyVersion: ver},
		Reg:    &RegPayload{RegID: latID, Index: 0, Value: 99},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	resp := e.send(t, m)
	if resp[0].MsgType != AlertReplay {
		t.Fatalf("old-seq response = %+v", resp[0])
	}
}

func TestUnknownRegisterNAck(t *testing.T) {
	e := newEnv(t, nil)
	resp := e.send(t, e.signedReg(t, MsgReadReq, 0xdeadbeef, 0, 0))
	if len(resp) != 1 || resp[0].MsgType != MsgNAck {
		t.Fatalf("response = %+v", resp)
	}
	e.verifyResponse(t, resp[0])
}

func TestAlertThresholdCapsDoS(t *testing.T) {
	threshold := uint64(5)
	e := newEnv(t, func(c *Config) { c.AlertThreshold = threshold })
	latID := e.regID(t, "lat")
	alerts := 0
	for i := 0; i < 20; i++ {
		m := e.signedReg(t, MsgWriteReq, latID, 0, 1)
		m.Digest ^= 0xFFFF // garbage digest
		alerts += len(e.send(t, m))
	}
	if alerts != int(threshold) {
		t.Fatalf("got %d alerts for 20 tampered messages, want threshold %d", alerts, threshold)
	}
}

func TestEAKDerivesSharedAuthKey(t *testing.T) {
	e := newEnv(t, nil)
	eak := NewEAK(e.cfg, crypto.NewSeededRand(5))
	key, ver, _ := e.ks.Current(KeyIndexLocal)
	m := &Message{
		Header: Header{HdrType: HdrKeyExch, MsgType: MsgEAKSalt1, SeqNum: e.seq.Next(), KeyVersion: ver},
		Kx:     &KxPayload{Salt: eak.S1},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	resp := e.send(t, m)
	if len(resp) != 1 || resp[0].MsgType != MsgEAKSalt2 {
		t.Fatalf("EAK response = %+v", resp)
	}
	// The response is signed under the seed key, version tag unchanged.
	if !resp[0].Verify(e.dig, key) {
		t.Fatal("EAK response digest invalid")
	}
	if err := e.seq.Settle(resp[0].SeqNum); err != nil {
		t.Fatal(err)
	}

	kauth, err := eak.Complete(resp[0].Kx.Salt)
	if err != nil {
		t.Fatal(err)
	}
	// The data plane must have installed the same K_auth at the inactive
	// version slot (boot version 0 -> new version 1).
	dp, err := e.sw.RegisterRead(RegKeysV1, KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if dp != kauth {
		t.Fatalf("controller K_auth %#x != data plane %#x", kauth, dp)
	}
	if v, _ := e.sw.RegisterRead(RegVer, KeyIndexLocal); v != 1 {
		t.Fatalf("data plane key version = %d, want 1", v)
	}
	// Egress copy installed too.
	if eg, _ := e.sw.RegisterRead(RegEgKeysV1, KeyIndexLocal); eg != kauth {
		t.Fatalf("egress key copy %#x != %#x", eg, kauth)
	}
}

// runLocalInit drives EAK + ADHKD, returning the established local key.
func runLocalInit(t *testing.T, e *testEnv) uint64 {
	t.Helper()
	// EAK.
	eak := NewEAK(e.cfg, crypto.NewSeededRand(5))
	key, ver, _ := e.ks.Current(KeyIndexLocal)
	m := &Message{
		Header: Header{HdrType: HdrKeyExch, MsgType: MsgEAKSalt1, SeqNum: e.seq.Next(), KeyVersion: ver},
		Kx:     &KxPayload{Salt: eak.S1},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	resp := e.send(t, m)
	if len(resp) != 1 || resp[0].MsgType != MsgEAKSalt2 {
		t.Fatalf("EAK response = %+v", resp)
	}
	if err := e.seq.Settle(resp[0].SeqNum); err != nil {
		t.Fatal(err)
	}
	kauth, err := eak.Complete(resp[0].Kx.Salt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ks.Install(KeyIndexLocal, kauth); err != nil {
		t.Fatal(err)
	}

	// ADHKD under K_auth.
	adhkd := NewADHKD(e.cfg, crypto.NewSeededRand(6))
	key, ver, _ = e.ks.Current(KeyIndexLocal)
	m = &Message{
		Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: e.seq.Next(), KeyVersion: ver},
		Kx:     &KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	resp = e.send(t, m)
	if len(resp) != 1 || resp[0].MsgType != MsgADHKD2 {
		t.Fatalf("ADHKD response = %+v", resp)
	}
	if !resp[0].Verify(e.dig, kauth) {
		t.Fatal("ADHKD2 not signed under K_auth")
	}
	if err := e.seq.Settle(resp[0].SeqNum); err != nil {
		t.Fatal(err)
	}
	klocal, err := adhkd.Complete(resp[0].Kx.PK, resp[0].Kx.Salt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ks.Install(KeyIndexLocal, klocal); err != nil {
		t.Fatal(err)
	}
	return klocal
}

func TestLocalKeyInitEndToEnd(t *testing.T) {
	e := newEnv(t, nil)
	klocal := runLocalInit(t, e)

	// Data plane agrees (version 2 -> slot v0).
	dp, err := e.sw.RegisterRead(RegKeysV0, KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if dp != klocal {
		t.Fatalf("controller K_local %#x != data plane %#x", klocal, dp)
	}
	if v, _ := e.sw.RegisterRead(RegVer, KeyIndexLocal); v != 2 {
		t.Fatalf("key version = %d, want 2", v)
	}

	// Register ops now run under K_local.
	latID := e.regID(t, "lat")
	resp := e.send(t, e.signedReg(t, MsgWriteReq, latID, 2, 123))
	if resp[0].MsgType != MsgAck {
		t.Fatalf("write under K_local: %+v", resp[0])
	}
	e.verifyResponse(t, resp[0])

	// An attacker who observed the exchange but lacks the KDF
	// personalization cannot forge: messages signed with the passively
	// recovered pre-master secret are rejected.
	m := e.signedReg(t, MsgWriteReq, latID, 2, 666)
	m.Digest ^= 1
	r := e.send(t, m)
	if r[0].HdrType != HdrAlert {
		t.Fatal("forged message accepted after key init")
	}
}

func TestLocalKeyUpdateRollsVersion(t *testing.T) {
	e := newEnv(t, nil)
	runLocalInit(t, e)

	// Local key update = another ADHKD under the current local key.
	adhkd := NewADHKD(e.cfg, crypto.NewSeededRand(9))
	key, ver, _ := e.ks.Current(KeyIndexLocal)
	m := &Message{
		Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: e.seq.Next(), KeyVersion: ver},
		Kx:     &KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1},
	}
	if err := m.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	resp := e.send(t, m)
	if len(resp) != 1 || resp[0].MsgType != MsgADHKD2 {
		t.Fatalf("update response = %+v", resp)
	}
	// Response still signed under the old key (consistent updates).
	if !resp[0].Verify(e.dig, key) {
		t.Fatal("update response not signed under the pre-update key")
	}
	newKey, err := adhkd.Complete(resp[0].Kx.PK, resp[0].Kx.Salt)
	if err != nil {
		t.Fatal(err)
	}
	if newKey == key {
		t.Fatal("key update produced the same key")
	}
	if _, err := e.ks.Install(KeyIndexLocal, newKey); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.sw.RegisterRead(RegVer, KeyIndexLocal); v != 3 {
		t.Fatalf("key version = %d, want 3", v)
	}
	// Old-version traffic still validates during rollover: sign with the
	// previous key and its version tag.
	latID := e.regID(t, "lat")
	old := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: e.seq.Next(), KeyVersion: ver},
		Reg:    &RegPayload{RegID: latID, Index: 0, Value: 5},
	}
	if err := old.Sign(e.dig, key); err != nil {
		t.Fatal(err)
	}
	r := e.send(t, old)
	if r[0].MsgType != MsgAck {
		t.Fatalf("in-flight old-version message rejected during rollover: %+v", r[0])
	}
}

func TestInsecureBaselineSkipsChecks(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Insecure = true })
	latID := e.regID(t, "lat")
	// No digest at all — the DP-Reg-RW baseline accepts it.
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 1},
		Reg:    &RegPayload{RegID: latID, Index: 0, Value: 31337},
	}
	resp := e.send(t, m)
	if len(resp) != 1 || resp[0].MsgType != MsgAck {
		t.Fatalf("insecure write response = %+v", resp)
	}
	if v, _ := e.sw.RegisterRead("lat", 0); v != 31337 {
		t.Fatal("insecure write not applied")
	}
}

func TestCompileOnBothTargets(t *testing.T) {
	for _, tc := range []struct {
		profile pisa.Profile
		kind    DigestKind
	}{
		{pisa.TofinoProfile(), DigestCRC32},
		{pisa.BMv2Profile(), DigestHalfSipHash},
	} {
		t.Run(tc.profile.Name, func(t *testing.T) {
			prog := hostProgram()
			cfg := DefaultConfig(16, tc.kind)
			if err := AddToProgram(prog, cfg, Integration{Exposed: []string{"lat"}}); err != nil {
				t.Fatal(err)
			}
			c, err := pisa.Compile(prog, tc.profile)
			if err != nil {
				t.Fatal(err)
			}
			pct := c.Usage.Percent(tc.profile)
			if tc.profile.Name == "tofino" {
				if pct.Hash < 20 || pct.Hash > 90 {
					t.Errorf("hash usage %.1f%%, expected the paper's heavy-hash regime", pct.Hash)
				}
				if c.Usage.Passes > tc.profile.MaxPasses {
					t.Errorf("passes = %d > max %d", c.Usage.Passes, tc.profile.MaxPasses)
				}
			}
		})
	}
}

func TestHalfSipHashTargetRejectsTofino(t *testing.T) {
	prog := hostProgram()
	cfg := DefaultConfig(4, DigestHalfSipHash)
	if err := AddToProgram(prog, cfg, Integration{}); err != nil {
		t.Fatal(err)
	}
	if _, err := pisa.Compile(prog, pisa.TofinoProfile()); err == nil {
		t.Fatal("HalfSipHash extern must not compile for Tofino (§VII)")
	}
}

func TestAddToProgramValidation(t *testing.T) {
	cfg := DefaultConfig(4, DigestCRC32)
	// Missing ptype header.
	bad := &pisa.Program{Name: "x"}
	if err := AddToProgram(bad, cfg, Integration{}); err == nil {
		t.Error("expected ptype requirement error")
	}
	// Unknown exposed register.
	prog := hostProgram()
	if err := AddToProgram(prog, cfg, Integration{Exposed: []string{"ghost"}}); err == nil {
		t.Error("expected unknown-register error")
	}
	// Bad config.
	prog2 := hostProgram()
	if err := AddToProgram(prog2, Config{}, Integration{}); err == nil {
		t.Error("expected config validation error")
	}
}
