//go:build !race

package core

// raceEnabled reports whether the race detector is active. Alloc-count
// guards are skipped under -race: instrumentation changes sync.Pool
// behavior and allocation counts.
const raceEnabled = false
