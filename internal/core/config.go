package core

import (
	"fmt"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// DigestKind selects the digest algorithm family.
type DigestKind int

// Digest kinds. The paper's prototype uses HalfSipHash (as an extern) on
// BMv2 and CRC32 (native hash units) on Tofino (§VII).
const (
	DigestHalfSipHash DigestKind = iota + 1
	DigestCRC32
)

// Config carries the per-deployment P4Auth parameters. The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Ports is the number of switch ports (port keys live at indices
	// 1..Ports; the local key at index 0).
	Ports int
	// Seed is K_seed, compiled into the switch binary and pre-shared with
	// the controller (§VI-A footnote).
	Seed uint64
	// Personalization is the secret KDF constant standing in for the
	// paper's "custom logic in the binary" (§VIII).
	Personalization uint64
	// DH holds the public modified-Diffie-Hellman parameters.
	DH crypto.DHParams
	// Digest selects the digest algorithm.
	Digest DigestKind
	// KDFRounds configures the KDF expansion (the prototype uses 1).
	KDFRounds int
	// AlertThreshold caps alerts sent to the controller per counting
	// window (DoS mitigation, §VIII).
	AlertThreshold uint64
	// Insecure builds the data plane without digest generation or checks:
	// the DP-Reg-RW baseline of §IX-B.
	Insecure bool
	// Encrypt enables the §XI extension: register values on the C-DP
	// channel are XOR-encrypted with a per-message keystream derived from
	// the shared key and the sequence number (encrypt-then-MAC).
	Encrypt bool
	// DigestWords widens the digest to 32*DigestWords bits for the §XI
	// resource ablation (extra chained hash computations per digest
	// site). Values above 1 are a compile-level study: the wire format
	// and runtime verification continue to use the first word.
	DigestWords int
}

// DefaultConfig returns a deployable configuration for a switch with the
// given port count, with digest algorithm matched to the target the
// program will be compiled for (CRC32 for Tofino, HalfSipHash for BMv2).
func DefaultConfig(ports int, kind DigestKind) Config {
	return Config{
		Ports:           ports,
		Seed:            0x5eedc0ffee5eed00,
		Personalization: 0x0b5c4e1709151e55, // placeholder; set per deployment
		DH:              crypto.DefaultDHParams(),
		Digest:          kind,
		KDFRounds:       1,
		AlertThreshold:  64,
	}
}

// Digester returns the controller-side digest implementation matching the
// data plane.
func (c Config) Digester() (crypto.Digester, error) {
	switch c.Digest {
	case DigestHalfSipHash:
		return crypto.SharedHalfSipHashDigester(), nil
	case DigestCRC32:
		return crypto.SharedCRC32Digester(), nil
	default:
		return nil, fmt.Errorf("core: unknown digest kind %d", int(c.Digest))
	}
}

// HashAlg returns the pipeline hash-unit algorithm matching the digest
// kind.
func (c Config) HashAlg() (pisa.HashAlg, error) {
	switch c.Digest {
	case DigestHalfSipHash:
		return pisa.HashHalfSipHash, nil
	case DigestCRC32:
		return pisa.HashCRC32, nil
	default:
		return 0, fmt.Errorf("core: unknown digest kind %d", int(c.Digest))
	}
}

// KDF returns the key derivation function both sides use, built on the
// same PRF as the digest.
func (c Config) KDF() (crypto.KDF, error) {
	d, err := c.Digester()
	if err != nil {
		return crypto.KDF{}, err
	}
	return crypto.KDF{PRF: d, Rounds: c.KDFRounds, Personalization: c.Personalization}, nil
}

func (c Config) validate() error {
	if c.Ports < 1 {
		return fmt.Errorf("core: config needs at least one port, got %d", c.Ports)
	}
	if _, err := c.Digester(); err != nil {
		return err
	}
	return nil
}
