package core

import (
	"reflect"
	"strings"
	"testing"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

func TestKeyStoreSnapshotRoundTrip(t *testing.T) {
	ks := NewKeyStore(4, 0x5eed)
	if _, err := ks.Install(KeyIndexLocal, 0x1111); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Install(2, 0x2222); err != nil {
		t.Fatal(err)
	}
	if err := ks.Prepare(1, 0x3333); err != nil {
		t.Fatal(err)
	}

	snap := ks.Snapshot()
	snap.SeqNext = 77
	snap.TakenNs = 123456

	dec, err := DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, dec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", dec, snap)
	}

	// Restore into a fresh store and verify behavioural equivalence.
	ks2 := NewKeyStore(4, 0xDEAD)
	if err := ks2.Restore(dec); err != nil {
		t.Fatal(err)
	}
	k1, v1, err := ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	k2, v2, err := ks2.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || v1 != v2 {
		t.Fatalf("restored local key (%#x,%d) != original (%#x,%d)", k2, v2, k1, v1)
	}
	// The seed must still be reachable at version 0 (two-version table).
	if old, err := ks2.At(KeyIndexLocal, 0); err != nil || old != 0x5eed {
		t.Fatalf("At(0) = %#x, %v; want seed", old, err)
	}
	if !ks2.Pending(1) {
		t.Fatal("prepared key lost in round trip")
	}
	if ver, err := ks2.Commit(1); err != nil || ver != 0 {
		t.Fatalf("Commit after restore: ver=%d err=%v", ver, err)
	}
	if got, _, err := ks2.Current(1); err != nil || got != 0x3333 {
		t.Fatalf("committed restored pending key = %#x, %v", got, err)
	}
}

func TestSnapshotRestoreGeometryMismatch(t *testing.T) {
	snap := NewKeyStore(2, 1).Snapshot()
	if err := NewKeyStore(4, 1).Restore(snap); err == nil {
		t.Fatal("restore across slot-count mismatch must fail")
	}
	if err := (&KeyStore{slots: make([]keySlot, 3)}).Restore(nil); err == nil {
		t.Fatal("nil snapshot must fail")
	}
}

func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	snap := NewKeyStore(2, 0x5eed).Snapshot()
	snap.Floors = []uint32{10, 20, 30, 40, 50, 60}
	b := snap.Encode()

	if _, err := DecodeSnapshot(b[:len(b)-1]); err == nil {
		t.Fatal("truncated snapshot must fail decode")
	}
	for _, idx := range []int{0, 4, 9, len(b) - 2} {
		c := append([]byte(nil), b...)
		c[idx] ^= 0x40
		if _, err := DecodeSnapshot(c); err == nil {
			t.Fatalf("bit flip at %d undetected", idx)
		}
	}
	// Unsupported future version.
	c := append([]byte(nil), b...)
	c[4] = 99
	if _, err := DecodeSnapshot(c); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestKeyStoreRollback(t *testing.T) {
	ks := NewKeyStore(2, 0x5eed)
	if _, err := ks.Install(KeyIndexLocal, 0xAAAA); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Install(KeyIndexLocal, 0xBBBB); err != nil {
		t.Fatal(err)
	}
	if err := ks.Rollback(KeyIndexLocal); err != nil {
		t.Fatal(err)
	}
	k, v, err := ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if k != 0xAAAA || v != 1 {
		t.Fatalf("after rollback: key=%#x ver=%d, want 0xAAAA ver 1", k, v)
	}
	if err := ks.Rollback(KeyIndexLocal); err != nil {
		t.Fatal(err)
	}
	if err := ks.Rollback(KeyIndexLocal); err == nil {
		t.Fatal("rollback below version 0 must fail")
	}
	if err := ks.Rollback(1); err == nil {
		t.Fatal("rollback of unestablished slot must fail")
	}
}

func TestKeyStoreResetToSeed(t *testing.T) {
	ks := NewKeyStore(2, 0x5eed)
	if _, err := ks.Install(1, 0x42); err != nil {
		t.Fatal(err)
	}
	if _, err := ks.Install(KeyIndexLocal, 0x43); err != nil {
		t.Fatal(err)
	}
	ks.ResetToSeed(0x5eed)
	k, v, err := ks.Current(KeyIndexLocal)
	if err != nil || k != 0x5eed || v != 0 {
		t.Fatalf("after reset: key=%#x ver=%d err=%v", k, v, err)
	}
	if ks.Established(1) {
		t.Fatal("port slot survived reset")
	}
}

func TestSeqTrackerResumeAndSkip(t *testing.T) {
	s := NewSeqTracker()
	for i := 0; i < 5; i++ {
		s.Next()
	}
	if s.Peek() != 6 {
		t.Fatalf("Peek = %d, want 6", s.Peek())
	}
	if s.Outstanding() != 5 {
		t.Fatalf("Outstanding = %d", s.Outstanding())
	}

	// Resume ahead: counter jumps, outstanding forgotten.
	s.Resume(100)
	if s.Peek() != 100 || s.Outstanding() != 0 {
		t.Fatalf("after Resume(100): peek=%d outstanding=%d", s.Peek(), s.Outstanding())
	}
	// Resume behind is a no-op on the counter (never reissue).
	s.Resume(50)
	if s.Peek() != 100 {
		t.Fatalf("Resume must never move the counter backwards: %d", s.Peek())
	}

	s.SkipAhead(FloorLease)
	if s.Peek() != 100+FloorLease {
		t.Fatalf("SkipAhead: peek=%d", s.Peek())
	}
	// Saturation, not wraparound.
	s.SkipAhead(^uint32(0))
	if s.Peek() != ^uint32(0) {
		t.Fatalf("SkipAhead must saturate: %d", s.Peek())
	}
	s.Reset()
	if s.Peek() != 1 || s.Outstanding() != 0 {
		t.Fatalf("after Reset: peek=%d outstanding=%d", s.Peek(), s.Outstanding())
	}
}

// buildTestSwitch compiles a minimal P4Auth switch for device snapshot
// tests.
func buildTestSwitch(t *testing.T) (*pisa.Switch, Config) {
	t.Helper()
	cfg := DefaultConfig(4, DigestCRC32)
	prog := &pisa.Program{
		Name:         "snap_test",
		Headers:      []*pisa.HeaderDef{PTypeHeader()},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: HdrPType}},
		DeparseOrder: []string{HdrPType},
	}
	if err := AddToProgram(prog, cfg, Integration{}); err != nil {
		t.Fatal(err)
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := Boot(sw, cfg); err != nil {
		t.Fatal(err)
	}
	return sw, cfg
}

func TestDeviceSnapshotRoundTripAndFloorLease(t *testing.T) {
	sw, cfg := buildTestSwitch(t)
	// Give the device distinctive state.
	if err := sw.RegisterWrite(RegKeysV1, 2, 0xFEED); err != nil {
		t.Fatal(err)
	}
	if err := sw.RegisterWrite(RegVer, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := sw.RegisterWrite(RegSeq, 0, 41); err != nil {
		t.Fatal(err)
	}
	if err := sw.RegisterWrite(RegSeq, 1, 17); err != nil {
		t.Fatal(err)
	}

	ds, err := SnapshotDevice(sw, 999)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeDeviceSnapshot(ds.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, dec) {
		t.Fatal("device snapshot round trip mismatch")
	}

	// Cold-wipe the switch, then warm-restore.
	if err := FactoryReset(sw, cfg); err != nil {
		t.Fatal(err)
	}
	if err := RestoreDevice(sw, dec); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead(RegKeysV1, 2); v != 0xFEED {
		t.Fatalf("key not restored: %#x", v)
	}
	if v, _ := sw.RegisterRead(RegVer, 2); v != 3 {
		t.Fatalf("version not restored: %d", v)
	}
	// Replay floors come back with the lease bump, never verbatim.
	if v, _ := sw.RegisterRead(RegSeq, 0); v != 41+FloorLease {
		t.Fatalf("floor[0] = %d, want %d", v, 41+FloorLease)
	}
	if v, _ := sw.RegisterRead(RegSeq, 1); v != 17+FloorLease {
		t.Fatalf("floor[1] = %d, want %d", v, 17+FloorLease)
	}

	// Corruption must be detected, not restored.
	b := ds.Encode()
	b[len(b)/2] ^= 0x01
	if _, err := DecodeDeviceSnapshot(b); err == nil {
		t.Fatal("corrupted device snapshot decoded")
	}
}

func TestDeviceSnapshotFloorSaturates(t *testing.T) {
	sw, _ := buildTestSwitch(t)
	if err := sw.RegisterWrite(RegSeq, 3, 0xFFFF_FFF0); err != nil {
		t.Fatal(err)
	}
	ds, err := SnapshotDevice(sw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreDevice(sw, ds); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead(RegSeq, 3); v != 0xFFFF_FFFF {
		t.Fatalf("floor near top must saturate at 2^32-1, got %#x", v)
	}
}
