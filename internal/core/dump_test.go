package core

import (
	"strings"
	"testing"
)

// TestPeekControl pins the cheap header peeks the switch agent keys its
// idempotency cache with: they must agree with the full decoder on
// plausible messages and reject everything else.
func TestPeekControl(t *testing.T) {
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 0x01020304, KeyVersion: 1},
		Reg:    &RegPayload{RegID: 2, Index: 5, Value: 77},
	}
	data := m.AppendEncode(nil)

	hdr, seq, ok := PeekControl(data)
	if !ok || hdr != HdrRegister || seq != 0x01020304 {
		t.Fatalf("PeekControl = (%d, %#x, %v), want (%d, 0x01020304, true)", hdr, seq, ok, HdrRegister)
	}
	mt, ok := PeekMsgType(data)
	if !ok || mt != MsgWriteReq {
		t.Fatalf("PeekMsgType = (%d, %v), want (%d, true)", mt, ok, MsgWriteReq)
	}

	for name, b := range map[string][]byte{
		"empty":       nil,
		"short":       {PTypeP4Auth, HdrRegister},
		"wrong ptype": append([]byte{0x00}, data[1:]...),
	} {
		if _, _, ok := PeekControl(b); ok {
			t.Errorf("PeekControl accepted %s input", name)
		}
		if _, ok := PeekMsgType(b); ok {
			t.Errorf("PeekMsgType accepted %s input", name)
		}
	}
}

// TestDigestInput: the exported form must equal the append form the hot
// path uses — they are the same bytes a switch hashes.
func TestDigestInput(t *testing.T) {
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 9},
		Reg:    &RegPayload{RegID: 1, Index: 2, Value: 3},
	}
	di, err := m.DigestInput()
	if err != nil {
		t.Fatal(err)
	}
	if string(di) != string(m.AppendDigestInput(nil)) {
		t.Fatal("DigestInput disagrees with AppendDigestInput")
	}
}

// TestWriteStateString covers the journal state labels, including the
// defensive rendering of a corrupt state byte.
func TestWriteStateString(t *testing.T) {
	for want, s := range map[string]WriteState{
		"intent": WriteIntent, "applied": WriteApplied, "failed": WriteFailed,
		"WriteState(9)": WriteState(9),
	} {
		if got := s.String(); got != want {
			t.Errorf("WriteState(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestOperatorDumps exercises the p4auth-inspect rendering paths: every
// Dump must name the thing it renders and the load-bearing fields, so an
// operator reading a post-mortem sees switches, registers, and states.
func TestOperatorDumps(t *testing.T) {
	je := &JournalEntry{ID: 0xAB, Switch: "s1", Register: "lat", Index: 3, Value: 0xFF, State: WriteIntent}
	if d := je.Dump(); !strings.Contains(d, "s1") || !strings.Contains(d, "lat[3]") || !strings.Contains(d, "intent") {
		t.Errorf("journal entry dump missing fields: %q", d)
	}

	jb := &JournalBatch{ID: 7, Switch: "s2", Writes: []BatchWrite{
		{Register: "lat", Index: 0, Value: 1, State: WriteApplied},
		{Register: "q", Index: 2, Value: 3, State: WriteFailed},
	}}
	if d := jb.Dump(); !strings.Contains(d, "s2") || !strings.Contains(d, "(2 writes)") || !strings.Contains(d, "failed") {
		t.Errorf("journal batch dump missing fields: %q", d)
	}
	ents := jb.Entries()
	if len(ents) != 2 || ents[0].Switch != "s2" || ents[0].ID != 7 ||
		ents[1].Register != "q" || ents[1].State != WriteFailed {
		t.Errorf("batch entry expansion wrong: %+v", ents)
	}

	ks := &Snapshot{
		TakenNs: 5,
		Slots: []SlotSnapshot{
			{V0: 0xA, Current: 1, Set: true},
			{Pending: 0xB, HasPending: true},
		},
		SeqNext: 100,
		Floors:  []uint32{1, 2},
	}
	if d := ks.Dump(); !strings.Contains(d, "seqNext=100") || !strings.Contains(d, "local") ||
		!strings.Contains(d, "pending=") {
		t.Errorf("key snapshot dump missing fields: %q", d)
	}

	ds := &DeviceSnapshot{TakenNs: 9, Regs: map[string][]uint64{
		RegSeq: {0, 4, 0, 0}, "lat": {7},
	}}
	if d := ds.Dump(); !strings.Contains(d, RegSeq) || !strings.Contains(d, "nonzero=1") {
		t.Errorf("device snapshot dump missing fields: %q", d)
	}
}
