package core

import (
	"testing"

	"p4auth/internal/crypto"
)

func TestKeyStoreBootState(t *testing.T) {
	ks := NewKeyStore(4, 0x5eed)
	if ks.Slots() != 5 {
		t.Fatalf("slots = %d, want 5", ks.Slots())
	}
	key, ver, err := ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if key != 0x5eed || ver != 0 {
		t.Fatalf("boot local key = %#x v%d", key, ver)
	}
	for p := 1; p <= 4; p++ {
		if ks.Established(p) {
			t.Errorf("port %d key established at boot", p)
		}
		if _, _, err := ks.Current(p); err == nil {
			t.Errorf("port %d Current should fail before install", p)
		}
	}
}

func TestKeyStoreInstallRollsVersions(t *testing.T) {
	ks := NewKeyStore(2, 1)
	v, err := ks.Install(KeyIndexLocal, 100)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first install version = %d, want 1", v)
	}
	// Old version still retrievable (consistent updates).
	old, err := ks.At(KeyIndexLocal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if old != 1 {
		t.Fatalf("old key = %d, want seed 1", old)
	}
	cur, ver, _ := ks.Current(KeyIndexLocal)
	if cur != 100 || ver != 1 {
		t.Fatalf("current = %d v%d", cur, ver)
	}
	// Another install rolls again; version 2 maps to slot 0.
	if v, _ = ks.Install(KeyIndexLocal, 200); v != 2 {
		t.Fatalf("second install version = %d, want 2", v)
	}
	if k, _ := ks.At(KeyIndexLocal, 2); k != 200 {
		t.Fatalf("At(2) = %d", k)
	}
	if k, _ := ks.At(KeyIndexLocal, 1); k != 100 {
		t.Fatalf("At(1) = %d (previous version must survive)", k)
	}
}

func TestKeyStorePortKeyFirstInstall(t *testing.T) {
	ks := NewKeyStore(2, 1)
	v, err := ks.Install(2, 55)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("first port-key install version = %d, want 0", v)
	}
	if !ks.Established(2) {
		t.Fatal("port 2 not established after install")
	}
}

func TestKeyStoreBounds(t *testing.T) {
	ks := NewKeyStore(1, 1)
	if _, err := ks.Install(9, 1); err == nil {
		t.Error("expected out-of-range install error")
	}
	if _, _, err := ks.Current(-1); err == nil {
		t.Error("expected out-of-range current error")
	}
	if _, err := ks.At(7, 0); err == nil {
		t.Error("expected out-of-range At error")
	}
	if ks.Established(42) {
		t.Error("out-of-range slot reported established")
	}
}

func TestExchangeAgreementGoToGo(t *testing.T) {
	cfg := DefaultConfig(2, DigestHalfSipHash)
	init := NewADHKD(cfg, crypto.NewSeededRand(1))
	pk2, s2, respKey, err := RespondADHKD(cfg, crypto.NewSeededRand(2), init.PK1(), init.S1)
	if err != nil {
		t.Fatal(err)
	}
	initKey, err := init.Complete(pk2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if initKey != respKey {
		t.Fatalf("ADHKD disagreement: %#x != %#x", initKey, respKey)
	}
}

func TestEAKSymmetry(t *testing.T) {
	cfg := DefaultConfig(2, DigestCRC32)
	eak := NewEAK(cfg, crypto.NewSeededRand(3))
	s2 := uint32(0xBEEF)
	k1, err := eak.Complete(s2)
	if err != nil {
		t.Fatal(err)
	}
	// The responder derives from the same inputs.
	kdf, _ := cfg.KDF()
	k2 := kdf.Derive(cfg.Seed, SaltPair(eak.S1, s2))
	if k1 != k2 {
		t.Fatalf("EAK disagreement: %#x != %#x", k1, k2)
	}
}

func TestSeqTracker(t *testing.T) {
	s := NewSeqTracker()
	a, b := s.Next(), s.Next()
	if a != 1 || b != 2 {
		t.Fatalf("seqs = %d,%d", a, b)
	}
	if s.Outstanding() != 2 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	if err := s.Settle(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(a); err == nil {
		t.Fatal("double settle must fail")
	}
	if err := s.Settle(99); err == nil {
		t.Fatal("unknown seq must fail")
	}
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
}

func TestMessageEncodeDecodeRoundtrip(t *testing.T) {
	msgs := []*Message{
		{Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 7, KeyVersion: 3, Digest: 0xAA},
			Reg: &RegPayload{RegID: 1, Index: 2, Value: 3}},
		{Header: Header{HdrType: HdrAlert, MsgType: AlertReplay, SeqNum: 9},
			Reg: &RegPayload{}},
		{Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: 1, KeyVersion: 1},
			Kx: &KxPayload{Port: 3, PK: 0xDEADBEEF, Salt: 0x1234, Phase: 0}},
		{Header: Header{HdrType: HdrFeedback, MsgType: MsgProbe, SeqNum: 2, Digest: 5},
			Aux: []byte{9, 8, 7}},
	}
	for _, m := range msgs {
		b, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMessage(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Header != m.Header {
			t.Errorf("header mismatch: %+v vs %+v", got.Header, m.Header)
		}
		switch {
		case m.Reg != nil:
			if got.Reg == nil || *got.Reg != *m.Reg {
				t.Errorf("reg mismatch: %+v vs %+v", got.Reg, m.Reg)
			}
		case m.Kx != nil:
			if got.Kx == nil || *got.Kx != *m.Kx {
				t.Errorf("kx mismatch: %+v vs %+v", got.Kx, m.Kx)
			}
		case m.Aux != nil:
			if string(got.Aux) != string(m.Aux) {
				t.Errorf("aux mismatch")
			}
		}
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := DecodeMessage([]byte{0x00, 1, 2}); err == nil {
		t.Error("wrong ptype must fail")
	}
	// Valid ptype, truncated header.
	if _, err := DecodeMessage([]byte{PTypeP4Auth, 1}); err == nil {
		t.Error("truncated header must fail")
	}
	// Unknown hdrType.
	m := &Message{Header: Header{HdrType: 99}}
	b, _ := m.Encode()
	if _, err := DecodeMessage(b); err == nil {
		t.Error("unknown hdrType must fail")
	}
}

func TestSignVerifyTamperMatrix(t *testing.T) {
	d := crypto.NewHalfSipHashDigester()
	const key = 0x1234_5678_9abc_def0
	base := func() *Message {
		return &Message{
			Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 5, KeyVersion: 1},
			Reg:    &RegPayload{RegID: 10, Index: 2, Value: 99},
		}
	}
	good := base()
	if err := good.Sign(d, key); err != nil {
		t.Fatal(err)
	}
	if !good.Verify(d, key) {
		t.Fatal("freshly signed message does not verify")
	}
	if good.Verify(d, key^1) {
		t.Fatal("verifies under the wrong key")
	}

	tampers := map[string]func(*Message){
		"msgType":    func(m *Message) { m.MsgType = MsgReadReq },
		"seqNum":     func(m *Message) { m.SeqNum++ },
		"keyVersion": func(m *Message) { m.KeyVersion++ },
		"regID":      func(m *Message) { m.Reg.RegID++ },
		"index":      func(m *Message) { m.Reg.Index++ },
		"value":      func(m *Message) { m.Reg.Value = 5 },
	}
	for name, mutate := range tampers {
		t.Run(name, func(t *testing.T) {
			m := base()
			if err := m.Sign(d, key); err != nil {
				t.Fatal(err)
			}
			mutate(m)
			if m.Verify(d, key) {
				t.Errorf("tampered %s still verifies", name)
			}
		})
	}
}
