package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"p4auth/internal/pisa"
)

// This file is the crash-survival codec layer: versioned, checksummed
// serializations of the two kinds of P4Auth key state —
//
//   - Snapshot: an endpoint's KeyStore image plus its replay high-water
//     marks (the controller persists one per switch; a software KMP
//     endpoint would persist its own),
//   - DeviceSnapshot: a switch's P4Auth register file (keys, versions,
//     replay floors, exchange nonces), the switch-agent side of warm
//     restart.
//
// Both formats carry a magic, a format version, and a trailing CRC32 of
// everything before it, so a torn or corrupted file is detected at decode
// time and the recovery protocol can fall back to EAK re-seeding instead
// of restoring garbage keys.

// Snapshot format constants.
const (
	snapMagic   = 0x50414B53 // "PAKS": P4Auth Key Snapshot
	devMagic    = 0x50414453 // "PADS": P4Auth Device Snapshot
	snapVersion = 1

	// FloorLease is the sequence-number headroom applied when replay
	// floors are restored from a snapshot. A snapshot is a lower bound on
	// the floors the crashed node had actually advanced to; restoring the
	// raw values would reopen a replay window for every message accepted
	// after the snapshot was taken. Bumping each restored floor by
	// FloorLease closes that window for up to FloorLease messages per
	// slot between snapshot and crash — the persistence contract is
	// therefore "snapshot at least once per FloorLease accepted
	// messages". The peer recovers from the jump by skipping its own
	// sequence counter forward (SeqTracker.SkipAhead) when it sees an
	// authenticated replay alert.
	FloorLease = 1 << 16
)

// SlotSnapshot is the serializable image of one KeyStore slot, including
// in-flight transactional state (a prepared-but-uncommitted key), so a
// restart lands in the same prepare/commit state machine position the
// crash interrupted.
type SlotSnapshot struct {
	V0, V1     uint64
	Current    uint8
	Set        bool
	Pending    uint64
	HasPending bool
}

// Snapshot is a persistable image of an endpoint's key state: the
// KeyStore slots plus the endpoint's replay high-water marks. For the
// controller, SeqNext is the next unissued sequence number toward one
// switch; Floors is unused. For a switch-side software agent mirroring
// pa_seq, Floors holds the per-slot replay floors. Unused fields encode
// as empty.
type Snapshot struct {
	// TakenNs is the (virtual or wall) time the snapshot was taken, in
	// nanoseconds; informational, surfaced by p4auth-inspect.
	TakenNs uint64
	Slots   []SlotSnapshot
	// SeqNext is the next sequence number the endpoint would issue.
	SeqNext uint32
	// Floors are replay high-water marks (the pa_seq image: two per slot,
	// even = register/alert stream, odd = key-exchange stream).
	Floors []uint32
}

// Snapshot captures the store's current state, including prepared keys.
func (ks *KeyStore) Snapshot() *Snapshot {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	s := &Snapshot{Slots: make([]SlotSnapshot, len(ks.slots))}
	for i, sl := range ks.slots {
		s.Slots[i] = SlotSnapshot{
			V0: sl.v[0], V1: sl.v[1],
			Current: sl.current, Set: sl.set,
			Pending: sl.pending, HasPending: sl.hasPending,
		}
	}
	return s
}

// Restore replaces the store's state with the snapshot image. The slot
// count must match the store's geometry (it is fixed by the switch's port
// count at both ends).
func (ks *KeyStore) Restore(s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if len(s.Slots) != len(ks.slots) {
		return fmt.Errorf("core: snapshot has %d slots, store has %d", len(s.Slots), len(ks.slots))
	}
	for i, sl := range s.Slots {
		ks.slots[i] = keySlot{
			v:       [2]uint64{sl.V0, sl.V1},
			current: sl.Current, set: sl.Set,
			pending: sl.Pending, hasPending: sl.HasPending,
		}
	}
	return nil
}

// Rollback abandons a slot's newest installed key and re-activates the
// previous version — the controller-side inverse of one install, used
// when recovery discovers the peer never activated its copy (e.g. the
// switch was warm-restored from a snapshot taken before the rollover).
func (ks *KeyStore) Rollback(idx int) error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return err
	}
	s := &ks.slots[idx]
	if !s.set {
		return fmt.Errorf("core: key slot %d not established", idx)
	}
	if s.current == 0 {
		return fmt.Errorf("core: key slot %d has no previous version to roll back to", idx)
	}
	s.v[s.current&1] = 0
	s.current--
	s.pending, s.hasPending = 0, false
	return nil
}

// ResetToSeed wipes every slot and re-establishes slot 0 at the seed key,
// version 0 — the keystore image of a factory-reset switch. Used by the
// EAK re-seed fallback when no usable snapshot exists.
func (ks *KeyStore) ResetToSeed(seed uint64) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	for i := range ks.slots {
		ks.slots[i] = keySlot{}
	}
	ks.slots[KeyIndexLocal].v[0] = seed
	ks.slots[KeyIndexLocal].set = true
}

const (
	slotFlagSet     = 1 << 0
	slotFlagPending = 1 << 1
)

// Encode serializes the snapshot with a trailing CRC32.
func (s *Snapshot) Encode() []byte {
	b := make([]byte, 0, 16+len(s.Slots)*26+len(s.Floors)*4)
	b = binary.BigEndian.AppendUint32(b, snapMagic)
	b = append(b, snapVersion)
	b = binary.BigEndian.AppendUint64(b, s.TakenNs)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Slots)))
	for _, sl := range s.Slots {
		b = binary.BigEndian.AppendUint64(b, sl.V0)
		b = binary.BigEndian.AppendUint64(b, sl.V1)
		b = append(b, sl.Current)
		var flags byte
		if sl.Set {
			flags |= slotFlagSet
		}
		if sl.HasPending {
			flags |= slotFlagPending
		}
		b = append(b, flags)
		b = binary.BigEndian.AppendUint64(b, sl.Pending)
	}
	b = binary.BigEndian.AppendUint32(b, s.SeqNext)
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Floors)))
	for _, f := range s.Floors {
		b = binary.BigEndian.AppendUint32(b, f)
	}
	return appendCRC(b)
}

// DecodeSnapshot parses and checksum-verifies an encoded Snapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	body, err := checkCRC(b, snapMagic, snapVersion, "key snapshot")
	if err != nil {
		return nil, err
	}
	r := reader{b: body}
	s := &Snapshot{TakenNs: r.u64()}
	n := r.u32()
	if n > 1<<16 {
		return nil, fmt.Errorf("core: key snapshot claims %d slots", n)
	}
	s.Slots = make([]SlotSnapshot, n)
	for i := range s.Slots {
		sl := &s.Slots[i]
		sl.V0, sl.V1 = r.u64(), r.u64()
		sl.Current = r.u8()
		flags := r.u8()
		sl.Set = flags&slotFlagSet != 0
		sl.HasPending = flags&slotFlagPending != 0
		sl.Pending = r.u64()
	}
	s.SeqNext = r.u32()
	nf := r.u32()
	if nf > 1<<17 {
		return nil, fmt.Errorf("core: key snapshot claims %d floors", nf)
	}
	s.Floors = make([]uint32, nf)
	for i := range s.Floors {
		s.Floors[i] = r.u32()
	}
	if nf == 0 {
		s.Floors = nil
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated key snapshot: %w", r.err)
	}
	return s, nil
}

// Dump renders the snapshot for operators (p4auth-inspect snapshot).
func (s *Snapshot) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "key snapshot v%d  taken=%dns  seqNext=%d\n", snapVersion, s.TakenNs, s.SeqNext)
	for i, sl := range s.Slots {
		role := "port"
		if i == KeyIndexLocal {
			role = "local"
		}
		fmt.Fprintf(&b, "  slot %2d (%s): ver=%d set=%v v0=%#016x v1=%#016x", i, role, sl.Current, sl.Set, sl.V0, sl.V1)
		if sl.HasPending {
			fmt.Fprintf(&b, " pending=%#016x", sl.Pending)
		}
		b.WriteByte('\n')
	}
	if len(s.Floors) > 0 {
		b.WriteString("  replay floors:")
		for i, f := range s.Floors {
			if i%2 == 0 {
				fmt.Fprintf(&b, " [slot %d: reg=%d", i/2, f)
			} else {
				fmt.Fprintf(&b, " kx=%d]", f)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// deviceRegisters lists the P4Auth state registers a DeviceSnapshot
// covers, in canonical (encode) order.
var deviceRegisters = []string{
	RegKeysV0, RegKeysV1, RegVer, RegSeq, RegSeqOut, RegAlert,
	RegKxR, RegKxS, RegEgKeysV0, RegEgKeysV1, RegEgVer, RegEgSeq,
}

// DeviceSnapshot is the register-file image of a switch's P4Auth state:
// everything a warm restart must put back so established keys keep
// verifying and the replay defence never regresses.
type DeviceSnapshot struct {
	TakenNs uint64
	Regs    map[string][]uint64
}

// SnapshotDevice reads the P4Auth state registers from a running data
// plane. Registers the program does not declare (e.g. insecure builds)
// are skipped.
func SnapshotDevice(sw *pisa.Switch, takenNs uint64) (*DeviceSnapshot, error) {
	prog := sw.Compiled().Program
	ds := &DeviceSnapshot{TakenNs: takenNs, Regs: make(map[string][]uint64)}
	for _, name := range deviceRegisters {
		def := prog.Register(name)
		if def == nil {
			continue
		}
		vals := make([]uint64, def.Entries)
		for i := range vals {
			v, err := sw.RegisterRead(name, i)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot %s[%d]: %w", name, i, err)
			}
			vals[i] = v
		}
		ds.Regs[name] = vals
	}
	return ds, nil
}

// RestoreDevice writes a device snapshot back into the data plane,
// applying the replay-floor rule: every pa_seq floor is restored to the
// snapshot value plus FloorLease, so no sequence number at or below
// anything the pre-crash switch could have accepted (within the lease
// contract) is ever accepted again. All other registers are restored
// verbatim.
func RestoreDevice(sw *pisa.Switch, ds *DeviceSnapshot) error {
	prog := sw.Compiled().Program
	for _, name := range deviceRegisters {
		vals, ok := ds.Regs[name]
		if !ok {
			continue
		}
		def := prog.Register(name)
		if def == nil {
			return fmt.Errorf("core: snapshot register %s not in program", name)
		}
		if len(vals) != def.Entries {
			return fmt.Errorf("core: snapshot %s has %d entries, register has %d", name, len(vals), def.Entries)
		}
		for i, v := range vals {
			// pa_seq floors are bumped so nothing the pre-crash switch
			// accepted is accepted again; pa_seq_out counters are bumped
			// by the same lease so this switch's own DP-DP traffic clears
			// the floors its peers advanced after the snapshot was taken.
			if name == RegSeq || name == RegSeqOut {
				v += FloorLease
				// The register is 32 bits wide; saturate rather than wrap
				// (a wrapped floor would reopen the replay window).
				if v > 0xFFFF_FFFF {
					v = 0xFFFF_FFFF
				}
			}
			if err := sw.RegisterWrite(name, i, v); err != nil {
				return fmt.Errorf("core: restore %s[%d]: %w", name, i, err)
			}
		}
	}
	return nil
}

// Encode serializes the device snapshot with a trailing CRC32. Registers
// encode in canonical order so equal snapshots produce equal bytes.
func (ds *DeviceSnapshot) Encode() []byte {
	b := make([]byte, 0, 64)
	b = binary.BigEndian.AppendUint32(b, devMagic)
	b = append(b, snapVersion)
	b = binary.BigEndian.AppendUint64(b, ds.TakenNs)
	names := make([]string, 0, len(ds.Regs))
	for name := range ds.Regs {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.BigEndian.AppendUint32(b, uint32(len(names)))
	for _, name := range names {
		b = binary.BigEndian.AppendUint16(b, uint16(len(name)))
		b = append(b, name...)
		vals := ds.Regs[name]
		b = binary.BigEndian.AppendUint32(b, uint32(len(vals)))
		for _, v := range vals {
			b = binary.BigEndian.AppendUint64(b, v)
		}
	}
	return appendCRC(b)
}

// DecodeDeviceSnapshot parses and checksum-verifies an encoded
// DeviceSnapshot.
func DecodeDeviceSnapshot(b []byte) (*DeviceSnapshot, error) {
	body, err := checkCRC(b, devMagic, snapVersion, "device snapshot")
	if err != nil {
		return nil, err
	}
	r := reader{b: body}
	ds := &DeviceSnapshot{TakenNs: r.u64(), Regs: make(map[string][]uint64)}
	n := r.u32()
	if n > 1<<10 {
		return nil, fmt.Errorf("core: device snapshot claims %d registers", n)
	}
	for i := uint32(0); i < n; i++ {
		name := r.str()
		ne := r.u32()
		if ne > 1<<20 {
			return nil, fmt.Errorf("core: device snapshot register %q claims %d entries", name, ne)
		}
		vals := make([]uint64, ne)
		for j := range vals {
			vals[j] = r.u64()
		}
		if r.err != nil {
			break
		}
		ds.Regs[name] = vals
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated device snapshot: %w", r.err)
	}
	return ds, nil
}

// Dump renders the device snapshot for operators (p4auth-inspect
// snapshot).
func (ds *DeviceSnapshot) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "device snapshot v%d  taken=%dns\n", snapVersion, ds.TakenNs)
	names := make([]string, 0, len(ds.Regs))
	for name := range ds.Regs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vals := ds.Regs[name]
		nz := 0
		for _, v := range vals {
			if v != 0 {
				nz++
			}
		}
		fmt.Fprintf(&b, "  %-14s entries=%d nonzero=%d", name, len(vals), nz)
		shown := 0
		for i, v := range vals {
			if v == 0 {
				continue
			}
			if shown == 8 {
				b.WriteString(" ...")
				break
			}
			fmt.Fprintf(&b, " [%d]=%#x", i, v)
			shown++
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// appendCRC appends the IEEE CRC32 of b to b.
func appendCRC(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// checkCRC validates magic, version, and trailing checksum, returning the
// body between the version byte and the CRC.
func checkCRC(b []byte, magic uint32, version byte, what string) ([]byte, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("core: %s too short (%d bytes)", what, len(b))
	}
	if got := binary.BigEndian.Uint32(b); got != magic {
		return nil, fmt.Errorf("core: %s has magic %#x, want %#x", what, got, magic)
	}
	if b[4] != version {
		return nil, fmt.Errorf("core: %s format version %d not supported (want %d)", what, b[4], version)
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("core: %s checksum mismatch (torn or corrupted)", what)
	}
	return body[5:], nil
}

// reader is a bounds-checked big-endian cursor; after the first short
// read every subsequent read returns zero and err is set.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || len(r.b) < n {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes, have %d", n, len(r.b))
		}
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) str() string {
	lb := r.take(2)
	if lb == nil {
		return ""
	}
	n := int(binary.BigEndian.Uint16(lb))
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
