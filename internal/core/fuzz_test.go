package core

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz targets for every wire and persistence codec: feeding arbitrary
// bytes to a decoder must never panic, and any input a decoder accepts
// must survive a re-encode/re-decode round trip unchanged (the decoders
// are the trust boundary — the controller decodes switch-originated
// bytes, and recovery decodes whatever survived a crash on disk).
//
// Seed corpora live in testdata/fuzz/<target>/ in `go test fuzz v1`
// format; run with `go test -fuzz <target> ./internal/core/`.

func fuzzMsgSeeds(f *testing.F) {
	msgs := []*Message{
		{Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 7, KeyVersion: 1, Digest: 0xDEADBEEF},
			Reg: &RegPayload{RegID: 3, Index: 9, Value: 0x1122334455667788}},
		{Header: Header{HdrType: HdrAlert, MsgType: AlertReplay, SeqNum: 99},
			Reg: &RegPayload{Value: 2}},
		{Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: 2, KeyVersion: 0},
			Kx: &KxPayload{Port: 4, PK: 0xCAFEBABE, Salt: 0x5A17, Phase: 1}},
		{Header: Header{HdrType: HdrFeedback, MsgType: 0, SeqNum: 1},
			Aux: []byte{0xAA, 0xBB, 0xCC}},
	}
	for _, m := range msgs {
		f.Add(m.AppendEncode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{PTypeP4Auth})
	f.Add([]byte{PTypeP4Auth, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
}

// FuzzDecodeMessage: the fresh-storage decoder.
func FuzzDecodeMessage(f *testing.F) {
	fuzzMsgSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re := m.AppendEncode(nil)
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip changed message:\n  %+v\n  %+v", m, m2)
		}
	})
}

// FuzzMessageBufDecode: the zero-alloc decoder must accept and reject
// exactly the same inputs as the fresh-storage one, with equal results.
func FuzzMessageBufDecode(f *testing.F) {
	fuzzMsgSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf MessageBuf
		bm, berr := buf.Decode(data)
		fm, ferr := DecodeMessage(data)
		if (berr == nil) != (ferr == nil) {
			t.Fatalf("decoders disagree: buf=%v fresh=%v", berr, ferr)
		}
		if berr != nil {
			return
		}
		if !bytes.Equal(bm.AppendEncode(nil), fm.AppendEncode(nil)) {
			t.Fatal("buffered and fresh decoders produced different messages")
		}
	})
}

// FuzzDecodeJournalEntry: the single-write WAL record (PAWJ).
func FuzzDecodeJournalEntry(f *testing.F) {
	e := &JournalEntry{ID: 42, Switch: "s1", Register: "lat", Index: 3, Value: 0xFFEE, State: WriteIntent}
	f.Add(e.Encode())
	f.Add((&JournalEntry{State: WriteFailed}).Encode())
	f.Add([]byte{0x50, 0x41, 0x57, 0x4A, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeJournalEntry(data)
		if err != nil {
			return
		}
		e2, err := DecodeJournalEntry(e.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip changed entry:\n  %+v\n  %+v", e, e2)
		}
	})
}

// FuzzDecodeJournalBatch: the group-commit WAL record (PAWB).
func FuzzDecodeJournalBatch(f *testing.F) {
	b := &JournalBatch{ID: 7, Switch: "s2", Writes: []BatchWrite{
		{Register: "lat", Index: 0, Value: 1, State: WriteIntent},
		{Register: "lat", Index: 1, Value: 2, State: WriteApplied},
		{Register: "q", Index: 9, Value: 0xDEAD, State: WriteFailed},
	}}
	f.Add(b.Encode())
	f.Add((&JournalBatch{Switch: "x"}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeJournalBatch(data)
		if err != nil {
			return
		}
		e2, err := DecodeJournalBatch(e.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("round trip changed batch:\n  %+v\n  %+v", e, e2)
		}
	})
}

// FuzzDecodeSnapshot: the controller key snapshot (PAKS).
func FuzzDecodeSnapshot(f *testing.F) {
	s := &Snapshot{
		TakenNs: 123,
		Slots: []SlotSnapshot{
			{V0: 1, V1: 2, Current: 1, Set: true},
			{Pending: 9, HasPending: true},
		},
		SeqNext: 1000,
		Floors:  []uint32{5, 6, 7, 8},
	}
	f.Add(s.Encode())
	f.Add((&Snapshot{}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		s2, err := DecodeSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed snapshot:\n  %+v\n  %+v", s, s2)
		}
	})
}

// FuzzDecodeDeviceSnapshot: the switch register-file snapshot (PADS).
func FuzzDecodeDeviceSnapshot(f *testing.F) {
	ds := &DeviceSnapshot{TakenNs: 9, Regs: map[string][]uint64{
		RegSeq: {1, 2}, RegVer: {3}, RegKeysV0: {0xAB, 0, 0xCD},
	}}
	f.Add(ds.Encode())
	f.Add((&DeviceSnapshot{Regs: map[string][]uint64{}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := DecodeDeviceSnapshot(data)
		if err != nil {
			return
		}
		ds2, err := DecodeDeviceSnapshot(ds.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(ds, ds2) {
			t.Fatalf("round trip changed device snapshot:\n  %+v\n  %+v", ds, ds2)
		}
	})
}
