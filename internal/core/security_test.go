package core

import (
	"testing"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// sendOn injects a message on an arbitrary port and returns all emissions.
func (e *testEnv) sendOn(t *testing.T, port int, m *Message) []pisa.Emission {
	t.Helper()
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.sw.Process(pisa.Packet{Data: data, Port: port})
	if err != nil {
		t.Fatal(err)
	}
	return res.Emissions
}

// A neighbor-port attacker cannot spoof controller exchanges: key-exchange
// messages arriving on a network port are verified against that PORT's key
// slot, not the local key, so a forged EAK signed with the (readable)
// seed key fails.
func TestNetworkPortCannotSpoofLocalExchange(t *testing.T) {
	e := newEnv(t, nil)
	eak := NewEAK(e.cfg, crypto.NewSeededRand(5))
	m := &Message{
		Header: Header{HdrType: HdrKeyExch, MsgType: MsgEAKSalt1, SeqNum: 1, KeyVersion: 0},
		Kx:     &KxPayload{Salt: eak.S1},
	}
	if err := m.Sign(e.dig, e.cfg.Seed); err != nil {
		t.Fatal(err)
	}
	ems := e.sendOn(t, 2, m) // network port, not CPU
	// The port-2 key slot is zero, the seed-signed digest mismatches ->
	// alert, no response, no key install.
	for _, em := range ems {
		if em.Port != pisa.CPUPort {
			t.Fatalf("spoofed EAK produced a network emission on port %d", em.Port)
		}
		r, err := DecodeMessage(em.Data)
		if err != nil {
			t.Fatal(err)
		}
		if r.HdrType != HdrAlert {
			t.Fatalf("spoofed EAK got a %d response, want alert", r.HdrType)
		}
	}
	if v, _ := e.sw.RegisterRead(RegVer, KeyIndexLocal); v != 0 {
		t.Fatal("spoofed EAK rotated the local key")
	}
}

// Register requests from network ports are similarly bound to port keys:
// a neighbor cannot issue controller reads signed with the seed.
func TestNetworkPortCannotIssueRegisterOps(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	if err := e.sw.RegisterWrite("lat", 0, 77); err != nil {
		t.Fatal(err)
	}
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgReadReq, SeqNum: 1, KeyVersion: 0},
		Reg:    &RegPayload{RegID: latID, Index: 0},
	}
	if err := m.Sign(e.dig, e.cfg.Seed); err != nil {
		t.Fatal(err)
	}
	ems := e.sendOn(t, 3, m)
	for _, em := range ems {
		r, err := DecodeMessage(em.Data)
		if err != nil {
			t.Fatal(err)
		}
		if r.HdrType == HdrRegister && r.MsgType == MsgAck {
			t.Fatal("network port read the register with the seed key")
		}
	}
}

// An unknown key-version tag selects the other version slot; with no key
// there, verification fails closed.
func TestUnknownKeyVersionFailsClosed(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 1, KeyVersion: 1},
		Reg:    &RegPayload{RegID: latID, Index: 0, Value: 5},
	}
	// Signed with the correct seed key, but tagged version 1 (slot empty).
	if err := m.Sign(e.dig, e.cfg.Seed); err != nil {
		t.Fatal(err)
	}
	resp := e.send(t, m)
	if len(resp) != 1 || resp[0].HdrType != HdrAlert {
		t.Fatalf("version-mismatched message accepted: %+v", resp)
	}
	if v, _ := e.sw.RegisterRead("lat", 0); v != 0 {
		t.Fatal("write applied despite version mismatch")
	}
}

// Feedback (probe-style) messages are rejected on ordinary ports unless
// signed with the port key — and the generator-port bypass does not apply
// to the CPU port or other ports.
func TestGeneratorBypassIsPortScoped(t *testing.T) {
	// Build an env with an aux payload and a generator port. DP-DP
	// feedback runs on the BMv2 target, as in the paper's HULA prototype
	// (the egress signing block exceeds Tofino's egress stage budget —
	// the same pressure §XI discusses).
	cfg := DefaultConfig(4, DigestHalfSipHash)
	prog := hostProgram()
	prog.Headers = append(prog.Headers, &pisa.HeaderDef{
		Name:   "probe",
		Fields: []pisa.FieldDef{{Name: "util", Width: 32}},
	})
	prog.Parser = append(prog.Parser, pisa.ParserState{Name: "probe_state", Extract: "probe"})
	prog.DeparseOrder = append(prog.DeparseOrder, "probe")
	prog.Metadata = append(prog.Metadata, pisa.FieldDef{Name: "probe_seen", Width: 8})
	prog.Control = []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(pisa.F(pisa.MetaHeader, MAuthOK)), pisa.C(1)), []pisa.Op{
			pisa.Set(pisa.F(pisa.MetaHeader, "probe_seen"), pisa.C(1)),
			pisa.RegWrite("lat", pisa.C(7), pisa.R(pisa.F("probe", "util"))),
		}),
	}
	const genPort = 5
	if err := AddToProgram(prog, cfg, Integration{
		Exposed:       []string{"lat"},
		Aux:           []AuxPayload{{Header: "probe", ParserState: "probe_state"}},
		GeneratorPort: genPort,
	}); err != nil {
		t.Fatal(err)
	}
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile(), pisa.WithRandom(crypto.NewSeededRand(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := Boot(sw, cfg); err != nil {
		t.Fatal(err)
	}

	probeDef := &pisa.HeaderDef{Name: "probe", Fields: []pisa.FieldDef{{Name: "util", Width: 32}}}
	aux, err := pisa.PackHeader(probeDef, []uint64{0xAB})
	if err != nil {
		t.Fatal(err)
	}
	unsigned := &Message{Header: Header{HdrType: HdrFeedback, MsgType: MsgProbe}, Aux: aux}
	enc, err := unsigned.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Via the generator port: accepted (self-originated).
	if _, err := sw.Process(pisa.Packet{Data: enc, Port: genPort}); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead("lat", 7); v != 0xAB {
		t.Fatalf("generator-port probe not processed (lat[7]=%d)", v)
	}
	if err := sw.RegisterWrite("lat", 7, 0); err != nil {
		t.Fatal(err)
	}

	// Via a normal network port: unsigned probe rejected.
	if _, err := sw.Process(pisa.Packet{Data: enc, Port: 2}); err != nil {
		t.Fatal(err)
	}
	if v, _ := sw.RegisterRead("lat", 7); v != 0 {
		t.Fatal("unsigned probe on a network port updated state")
	}
}
