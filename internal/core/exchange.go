package core

import (
	"fmt"
	"sync"

	"p4auth/internal/crypto"
)

// SaltPair combines the two 32-bit salt halves into the 64-bit KDF salt
// (S = S1 || S2, §VI-A/§VI-B with each side contributing one half).
func SaltPair(s1, s2 uint32) uint64 {
	return uint64(s1)<<32 | uint64(s2)
}

// EAK is the initiator side of the Exchange of Authentication Key
// (Fig. 11): the controller generates S1, receives S2, and derives K_auth
// from the pre-shared seed.
type EAK struct {
	S1  uint32
	cfg Config
}

// NewEAK starts an EAK exchange.
func NewEAK(cfg Config, rng crypto.RandomSource) *EAK {
	return &EAK{S1: uint32(rng.Uint64()), cfg: cfg}
}

// Complete derives K_auth from the responder's salt half.
func (e *EAK) Complete(s2 uint32) (uint64, error) {
	kdf, err := e.cfg.KDF()
	if err != nil {
		return 0, err
	}
	return kdf.Derive(e.cfg.Seed, SaltPair(e.S1, s2)), nil
}

// ADHKD is the initiator side of the authenticated DH exchange and key
// derivation (Fig. 12): generate (R1, S1), publish PK1, and on (PK2, S2)
// derive the master secret.
type ADHKD struct {
	R1  uint64
	S1  uint32
	cfg Config
}

// NewADHKD starts an ADHKD exchange.
func NewADHKD(cfg Config, rng crypto.RandomSource) *ADHKD {
	return &ADHKD{R1: rng.Uint64(), S1: uint32(rng.Uint64()), cfg: cfg}
}

// PK1 is the initiator's public key.
func (a *ADHKD) PK1() uint64 { return a.cfg.DH.PublicKey(a.R1) }

// Complete derives the master secret from the responder's public key and
// salt half.
func (a *ADHKD) Complete(pk2 uint64, s2 uint32) (uint64, error) {
	kdf, err := a.cfg.KDF()
	if err != nil {
		return 0, err
	}
	pms := a.cfg.DH.SharedSecret(a.R1, pk2)
	return kdf.Derive(pms, SaltPair(a.S1, s2)), nil
}

// RespondADHKD is the responder side in Go (the data plane implements the
// same computation in the pipeline; this is used by tests and by software
// endpoints).
func RespondADHKD(cfg Config, rng crypto.RandomSource, pk1 uint64, s1 uint32) (pk2 uint64, s2 uint32, key uint64, err error) {
	kdf, err := cfg.KDF()
	if err != nil {
		return 0, 0, 0, err
	}
	r2 := rng.Uint64()
	s2 = uint32(rng.Uint64())
	pk2 = cfg.DH.PublicKey(r2)
	pms := cfg.DH.SharedSecret(r2, pk1)
	return pk2, s2, kdf.Derive(pms, SaltPair(s1, s2)), nil
}

// SeqTracker hands out monotonically increasing sequence numbers and
// matches responses to outstanding requests (the controller-side half of
// the replay defence, §VIII). It is safe for concurrent use, so DoS
// monitors can poll Outstanding while exchanges are in flight.
type SeqTracker struct {
	mu          sync.Mutex
	next        uint32
	outstanding map[uint32]bool
}

// NewSeqTracker starts sequence numbering at 1 (the data plane's replay
// register starts at 0 and requires strictly increasing numbers).
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{next: 1, outstanding: make(map[uint32]bool)}
}

// Next reserves and returns the next sequence number.
func (s *SeqTracker) Next() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	s.next++
	s.outstanding[n] = true
	return n
}

// Settle marks a response's sequence number as answered; it returns an
// error for unknown or duplicate sequence numbers (a replayed or forged
// response).
func (s *SeqTracker) Settle(seq uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.outstanding[seq] {
		return fmt.Errorf("core: response for unknown or already-settled seq %d", seq)
	}
	delete(s.outstanding, seq)
	return nil
}

// Outstanding reports how many requests lack responses (the controller's
// DoS threshold input, §VIII).
func (s *SeqTracker) Outstanding() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.outstanding)
}

// Peek returns the next sequence number without reserving it — the value
// a crash-safety snapshot persists as the issue high-water mark.
func (s *SeqTracker) Peek() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Resume restarts numbering at next (if it is ahead of the current
// counter) and forgets all outstanding requests: any response to a
// pre-crash request is unverifiable after a restart and must read as
// forged. Used when restoring from a snapshot.
func (s *SeqTracker) Resume(next uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if next > s.next {
		s.next = next
	}
	s.outstanding = make(map[uint32]bool)
}

// SkipAhead advances the counter by delta, abandoning the skipped range.
// The recovery protocol uses it to jump past a restored replay floor it
// cannot see directly: on an authenticated replay alert, skip and retry.
// Saturates at the top of the 32-bit space rather than wrapping (a
// wrapped counter would be rejected by the strictly-increasing replay
// defence forever).
func (s *SeqTracker) SkipAhead(delta uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next > ^uint32(0)-delta {
		s.next = ^uint32(0)
		return
	}
	s.next += delta
}

// Reset returns the tracker to its freshly-constructed state (numbering
// from 1, nothing outstanding) — the EAK re-seed fallback, matching a
// factory-reset switch whose replay floors are zero.
func (s *SeqTracker) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = 1
	s.outstanding = make(map[uint32]bool)
}

// PeekControl inspects an encoded control-channel packet without a full
// decode, returning its hdrType and seqNum. ok is false when the bytes are
// not a plausible P4Auth message. Used by the switch agent's idempotency
// cache to key retransmitted requests cheaply.
func PeekControl(data []byte) (hdrType uint8, seqNum uint32, ok bool) {
	// ptype(1B) | pa_h: hdrType(1B) msgType(1B) seqNum(4B) ...
	if len(data) < ptypeDef.Bytes()+authDef.Bytes() || data[0] != PTypeP4Auth {
		return 0, 0, false
	}
	hdrType = data[1]
	seqNum = uint32(data[3])<<24 | uint32(data[4])<<16 | uint32(data[5])<<8 | uint32(data[6])
	return hdrType, seqNum, true
}

// PeekMsgType inspects an encoded control-channel packet's msgType (the
// alert reason for HdrAlert packets) without a full decode; same
// plausibility check as PeekControl.
func PeekMsgType(data []byte) (msgType uint8, ok bool) {
	if len(data) < ptypeDef.Bytes()+authDef.Bytes() || data[0] != PTypeP4Auth {
		return 0, false
	}
	return data[2], true
}
