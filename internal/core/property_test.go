package core

import (
	"testing"
	"testing/quick"

	"p4auth/internal/crypto"
)

// TestMessageRoundtripQuick: any register or key-exchange message survives
// encode/decode bit-exactly.
func TestMessageRoundtripQuick(t *testing.T) {
	regMsg := func(msgType uint8, seq uint32, ver uint8, dig uint32, id, idx uint32, val uint64) bool {
		m := &Message{
			Header: Header{HdrType: HdrRegister, MsgType: msgType, SeqNum: seq, KeyVersion: ver, Digest: dig},
			Reg:    &RegPayload{RegID: id, Index: idx, Value: val},
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeMessage(b)
		if err != nil {
			return false
		}
		return got.Header == m.Header && *got.Reg == *m.Reg
	}
	if err := quick.Check(regMsg, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	kxMsg := func(msgType uint8, seq uint32, ver uint8, port uint16, pk uint64, salt uint32, phase uint8) bool {
		m := &Message{
			Header: Header{HdrType: HdrKeyExch, MsgType: msgType, SeqNum: seq, KeyVersion: ver},
			Kx:     &KxPayload{Port: port, PK: pk, Salt: salt, Phase: phase},
		}
		b, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeMessage(b)
		if err != nil {
			return false
		}
		return got.Header == m.Header && *got.Kx == *m.Kx
	}
	if err := quick.Check(kxMsg, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDigestPhaseExclusionQuick: the kx phase field is recirculation state
// and must never affect the digest (otherwise the data plane's phase
// transitions would invalidate in-flight signatures).
func TestDigestPhaseExclusionQuick(t *testing.T) {
	d := crypto.NewCRC32Digester()
	f := func(key uint64, pk uint64, salt uint32, phaseA, phaseB uint8) bool {
		mk := func(phase uint8) *Message {
			return &Message{
				Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: 1},
				Kx:     &KxPayload{PK: pk, Salt: salt, Phase: phase},
			}
		}
		a, b := mk(phaseA), mk(phaseB)
		if err := a.Sign(d, key); err != nil {
			return false
		}
		if err := b.Sign(d, key); err != nil {
			return false
		}
		return a.Digest == b.Digest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDigestFieldSensitivityQuick: any digest-covered field change flips
// the digest (with overwhelming probability; CRC32 collisions on a single
// structured flip would indicate a packing bug, so treat any hit as one).
func TestDigestFieldSensitivityQuick(t *testing.T) {
	d := crypto.NewHalfSipHashDigester()
	f := func(key uint64, id, idx uint32, val uint64, flip uint8) bool {
		m := &Message{
			Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 7, KeyVersion: 1},
			Reg:    &RegPayload{RegID: id, Index: idx, Value: val},
		}
		if err := m.Sign(d, key); err != nil {
			return false
		}
		orig := m.Digest
		switch flip % 5 {
		case 0:
			m.Reg.Value ^= 1
		case 1:
			m.Reg.Index ^= 1
		case 2:
			m.Reg.RegID ^= 1
		case 3:
			m.SeqNum ^= 1
		case 4:
			m.KeyVersion ^= 1
		}
		if err := m.Sign(d, key); err != nil {
			return false
		}
		return m.Digest != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestKeyStoreVersionTagAlwaysResolvesQuick: for any install sequence, the
// version tag returned by Current always resolves via At to the same key.
func TestKeyStoreVersionTagAlwaysResolvesQuick(t *testing.T) {
	f := func(keys []uint64) bool {
		ks := NewKeyStore(2, 0x5eed)
		for _, k := range keys {
			if _, err := ks.Install(KeyIndexLocal, k); err != nil {
				return false
			}
			cur, ver, err := ks.Current(KeyIndexLocal)
			if err != nil {
				return false
			}
			at, err := ks.At(KeyIndexLocal, ver)
			if err != nil || at != cur || cur != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDataPlaneDigestMatchesGoSideQuick: the generated pipeline and the
// Go-side Message.Sign agree on arbitrary register messages. Covered once
// in the end-to-end tests; here it is hammered with random field values.
func TestDataPlaneDigestMatchesGoSideQuick(t *testing.T) {
	e := newEnv(t, nil)
	latID := e.regID(t, "lat")
	key, ver, err := e.ks.Current(KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	rng := crypto.NewSeededRand(31)
	for i := 0; i < 60; i++ {
		m := &Message{
			Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: e.seq.Next(), KeyVersion: ver},
			Reg:    &RegPayload{RegID: latID, Index: uint32(rng.Uint64() % 8), Value: rng.Uint64()},
		}
		if err := m.Sign(e.dig, key); err != nil {
			t.Fatal(err)
		}
		resp := e.send(t, m)
		if len(resp) != 1 || resp[0].MsgType != MsgAck {
			t.Fatalf("iteration %d: pipeline rejected a correctly signed message: %+v", i, resp)
		}
		if !resp[0].Verify(e.dig, key) {
			t.Fatalf("iteration %d: pipeline-signed response fails Go-side verification", i)
		}
		if err := e.seq.Settle(resp[0].SeqNum); err != nil {
			t.Fatal(err)
		}
	}
}
