// Package core implements the P4Auth protocol (DSN 2025): the
// authentication header and digest rules of §V, the key-management
// messages of §VI (EAK, ADHKD, KMP), the versioned key store for
// consistent key rollover, and — most importantly — the P4Auth data-plane
// program of §VII, built on the internal/pisa substrate so that every
// check the paper runs in the switch pipeline runs in a modeled pipeline
// here, under the same operation and resource constraints.
//
// Wire format of a P4Auth message:
//
//	ptype(1B) | pa_h(11B) | payload
//
//	pa_h:    hdrType(8) msgType(8) seqNum(32) keyVersion(8) digest(32)
//	pa_reg:  regID(32) index(32) value(64)                 (register ops, alerts)
//	pa_kx:   port(16) pk(64) salt(32) phase(8)             (key exchange)
//
// The digest (Eqn. 4) is the keyed hash of the header fields (digest
// excluded) followed by the payload fields (the internal phase field
// excluded), packed MSB-first at field width — exactly the bytes a
// pipeline hash unit consumes, so the controller-side computation in this
// package and the data-plane computation in the generated program agree
// bit for bit.
package core

import (
	"fmt"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// PTypeP4Auth is the packet-type tag that routes a packet into the P4Auth
// parser branch. Host programs reserve the 1-byte ptype header; their own
// traffic uses other values.
const PTypeP4Auth = 0xA1

// Header, payload, and internal header names in generated programs.
const (
	HdrPType = "ptype"
	HdrAuth  = "pa_h"
	HdrReg   = "pa_reg"
	HdrKx    = "pa_kx"
	HdrInt   = "pa_int"
)

// HdrType values (Fig. 7).
const (
	// HdrRegister tags register read/write requests and their responses.
	HdrRegister = 1
	// HdrAlert tags data-plane alerts to the controller.
	HdrAlert = 2
	// HdrKeyExch tags key-management messages.
	HdrKeyExch = 3
	// HdrFeedback tags DP-DP in-network feedback (e.g. HULA probes); the
	// feedback body is a host-program header registered as an auxiliary
	// digest payload.
	HdrFeedback = 4
)

// Register msgType values.
const (
	MsgReadReq  = 1
	MsgWriteReq = 2
	MsgAck      = 3
	MsgNAck     = 4
)

// Key-exchange msgType values.
const (
	MsgEAKSalt1       = 1
	MsgEAKSalt2       = 2
	MsgADHKD1         = 3
	MsgADHKD2         = 4
	MsgPortKeyInit    = 5
	MsgPortKeyUpdate  = 6
	MsgKeyAck         = 7
	MsgLocalKeyUpdate = 8 // controller command preceding a local ADHKD
)

// Alert msgType values (reasons).
const (
	AlertBadDigest = 1
	AlertReplay    = 2
	// AlertUnreachable is controller-originated: a switch exhausted its
	// retransmission budget repeatedly and was circuit-broken (quarantined).
	AlertUnreachable = 3
)

// Feedback msgType.
const MsgProbe = 1

// KeyIndexLocal is the key-register slot of the local (controller) key;
// port keys live at their port number.
const KeyIndexLocal = 0

// Exchange phase values carried in pa_kx.phase (recirculation state).
const (
	PhaseVerify  = 0 // on-the-wire phase: verify and dispatch
	PhaseInstall = 1 // derive via KDF and install the new key
	PhaseForward = 2 // sign and forward an initiator ADHKD1
)

// PTypeHeader returns the shared 1-byte packet-type header definition.
func PTypeHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrPType, Fields: []pisa.FieldDef{{Name: "v", Width: 8}}}
}

// AuthHeader returns the pa_h definition.
func AuthHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrAuth, Fields: []pisa.FieldDef{
		{Name: "hdrType", Width: 8},
		{Name: "msgType", Width: 8},
		{Name: "seqNum", Width: 32},
		{Name: "keyVersion", Width: 8},
		{Name: "digest", Width: 32},
	}}
}

// RegPayloadHeader returns the pa_reg definition.
func RegPayloadHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrReg, Fields: []pisa.FieldDef{
		{Name: "regid", Width: 32},
		{Name: "index", Width: 32},
		{Name: "value", Width: 64},
	}}
}

// KxPayloadHeader returns the pa_kx definition.
func KxPayloadHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrKx, Fields: []pisa.FieldDef{
		{Name: "port", Width: 16},
		{Name: "pk", Width: 64},
		{Name: "salt", Width: 32},
		{Name: "phase", Width: 8},
	}}
}

// IntHeader returns the recirculation-internal pa_int definition (never on
// the wire: invalidated before final deparse).
func IntHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrInt, Fields: []pisa.FieldDef{
		{Name: "newkey", Width: 64},
		{Name: "s1", Width: 32},
		{Name: "idx", Width: 16},
		{Name: "inport", Width: 16},
		{Name: "resp", Width: 8},
	}}
}

// Header is the Go-side pa_h.
type Header struct {
	HdrType    uint8
	MsgType    uint8
	SeqNum     uint32
	KeyVersion uint8
	Digest     uint32
}

// RegPayload is the Go-side pa_reg.
type RegPayload struct {
	RegID uint32
	Index uint32
	Value uint64
}

// KxPayload is the Go-side pa_kx.
type KxPayload struct {
	Port  uint16
	PK    uint64
	Salt  uint32
	Phase uint8
}

// Message is a complete P4Auth message. Exactly one payload pointer should
// be set, matching HdrType (alerts carry a RegPayload whose Value holds
// the reason metadata).
type Message struct {
	Header
	Reg *RegPayload
	Kx  *KxPayload
	// Aux is an opaque feedback body (HdrFeedback): the host protocol's
	// header bytes, e.g. a HULA probe. It follows pa_h on the wire.
	Aux []byte
}

var (
	ptypeDef = PTypeHeader()
	authDef  = AuthHeader()
	regDef   = RegPayloadHeader()
	kxDef    = KxPayloadHeader()
)

// Encode serializes ptype + pa_h + payload.
func (m *Message) Encode() ([]byte, error) {
	out, err := pisa.PackHeader(ptypeDef, []uint64{PTypeP4Auth})
	if err != nil {
		return nil, err
	}
	h, err := pisa.PackHeader(authDef, []uint64{
		uint64(m.HdrType), uint64(m.MsgType), uint64(m.SeqNum), uint64(m.KeyVersion), uint64(m.Digest),
	})
	if err != nil {
		return nil, err
	}
	out = append(out, h...)
	switch {
	case m.Reg != nil:
		p, err := pisa.PackHeader(regDef, []uint64{uint64(m.Reg.RegID), uint64(m.Reg.Index), m.Reg.Value})
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	case m.Kx != nil:
		p, err := pisa.PackHeader(kxDef, []uint64{uint64(m.Kx.Port), m.Kx.PK, uint64(m.Kx.Salt), uint64(m.Kx.Phase)})
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	case m.Aux != nil:
		out = append(out, m.Aux...)
	}
	return out, nil
}

// DecodeMessage parses a P4Auth message from the wire.
func DecodeMessage(data []byte) (*Message, error) {
	pt, err := pisa.UnpackHeader(ptypeDef, data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if pt[0] != PTypeP4Auth {
		return nil, fmt.Errorf("core: ptype %#x is not a P4Auth message", pt[0])
	}
	data = data[ptypeDef.Bytes():]
	hv, err := pisa.UnpackHeader(authDef, data)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	data = data[authDef.Bytes():]
	m := &Message{Header: Header{
		HdrType:    uint8(hv[0]),
		MsgType:    uint8(hv[1]),
		SeqNum:     uint32(hv[2]),
		KeyVersion: uint8(hv[3]),
		Digest:     uint32(hv[4]),
	}}
	switch m.HdrType {
	case HdrRegister, HdrAlert:
		rv, err := pisa.UnpackHeader(regDef, data)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.Reg = &RegPayload{RegID: uint32(rv[0]), Index: uint32(rv[1]), Value: rv[2]}
	case HdrKeyExch:
		kv, err := pisa.UnpackHeader(kxDef, data)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.Kx = &KxPayload{Port: uint16(kv[0]), PK: kv[1], Salt: uint32(kv[2]), Phase: uint8(kv[3])}
	case HdrFeedback:
		m.Aux = append([]byte(nil), data...)
	default:
		return nil, fmt.Errorf("core: unknown hdrType %d", m.HdrType)
	}
	return m, nil
}

// digestHdrDef packs the digest-covered header fields (digest excluded).
var digestHdrDef = &pisa.HeaderDef{Name: "dig_h", Fields: []pisa.FieldDef{
	{Name: "hdrType", Width: 8},
	{Name: "msgType", Width: 8},
	{Name: "seqNum", Width: 32},
	{Name: "keyVersion", Width: 8},
}}

// digestRegDef and digestKxDef pack the digest-covered payload fields
// (phase excluded for kx).
var (
	digestRegDef = &pisa.HeaderDef{Name: "dig_reg", Fields: regDef.Fields}
	digestKxDef  = &pisa.HeaderDef{Name: "dig_kx", Fields: kxDef.Fields[:3]}
)

// DigestInput returns the exact bytes the digest is computed over.
func (m *Message) DigestInput() ([]byte, error) {
	out, err := pisa.PackHeader(digestHdrDef, []uint64{
		uint64(m.HdrType), uint64(m.MsgType), uint64(m.SeqNum), uint64(m.KeyVersion),
	})
	if err != nil {
		return nil, err
	}
	switch {
	case m.Reg != nil:
		p, err := pisa.PackHeader(digestRegDef, []uint64{uint64(m.Reg.RegID), uint64(m.Reg.Index), m.Reg.Value})
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	case m.Kx != nil:
		p, err := pisa.PackHeader(digestKxDef, []uint64{uint64(m.Kx.Port), m.Kx.PK, uint64(m.Kx.Salt)})
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	case m.Aux != nil:
		out = append(out, m.Aux...)
	}
	return out, nil
}

// Sign computes and sets the digest under key.
func (m *Message) Sign(d crypto.PRF32, key uint64) error {
	in, err := m.DigestInput()
	if err != nil {
		return err
	}
	m.Digest = d.Sum32(key, in)
	return nil
}

// Verify recomputes the digest under key and compares in constant time.
func (m *Message) Verify(d crypto.PRF32, key uint64) bool {
	in, err := m.DigestInput()
	if err != nil {
		return false
	}
	return crypto.Verify(d, key, in, m.Digest)
}
