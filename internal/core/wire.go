// Package core implements the P4Auth protocol (DSN 2025): the
// authentication header and digest rules of §V, the key-management
// messages of §VI (EAK, ADHKD, KMP), the versioned key store for
// consistent key rollover, and — most importantly — the P4Auth data-plane
// program of §VII, built on the internal/pisa substrate so that every
// check the paper runs in the switch pipeline runs in a modeled pipeline
// here, under the same operation and resource constraints.
//
// Wire format of a P4Auth message:
//
//	ptype(1B) | pa_h(11B) | payload
//
//	pa_h:    hdrType(8) msgType(8) seqNum(32) keyVersion(8) digest(32)
//	pa_reg:  regID(32) index(32) value(64)                 (register ops, alerts)
//	pa_kx:   port(16) pk(64) salt(32) phase(8)             (key exchange)
//
// The digest (Eqn. 4) is the keyed hash of the header fields (digest
// excluded) followed by the payload fields (the internal phase field
// excluded), packed MSB-first at field width — exactly the bytes a
// pipeline hash unit consumes, so the controller-side computation in this
// package and the data-plane computation in the generated program agree
// bit for bit.
package core

import (
	"encoding/binary"
	"fmt"
	"sync"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// PTypeP4Auth is the packet-type tag that routes a packet into the P4Auth
// parser branch. Host programs reserve the 1-byte ptype header; their own
// traffic uses other values.
const PTypeP4Auth = 0xA1

// Header, payload, and internal header names in generated programs.
const (
	HdrPType = "ptype"
	HdrAuth  = "pa_h"
	HdrReg   = "pa_reg"
	HdrKx    = "pa_kx"
	HdrInt   = "pa_int"
)

// HdrType values (Fig. 7).
const (
	// HdrRegister tags register read/write requests and their responses.
	HdrRegister = 1
	// HdrAlert tags data-plane alerts to the controller.
	HdrAlert = 2
	// HdrKeyExch tags key-management messages.
	HdrKeyExch = 3
	// HdrFeedback tags DP-DP in-network feedback (e.g. HULA probes); the
	// feedback body is a host-program header registered as an auxiliary
	// digest payload.
	HdrFeedback = 4
)

// Register msgType values.
const (
	MsgReadReq  = 1
	MsgWriteReq = 2
	MsgAck      = 3
	MsgNAck     = 4
)

// Key-exchange msgType values.
const (
	MsgEAKSalt1       = 1
	MsgEAKSalt2       = 2
	MsgADHKD1         = 3
	MsgADHKD2         = 4
	MsgPortKeyInit    = 5
	MsgPortKeyUpdate  = 6
	MsgKeyAck         = 7
	MsgLocalKeyUpdate = 8 // controller command preceding a local ADHKD
)

// Alert msgType values (reasons).
const (
	AlertBadDigest = 1
	AlertReplay    = 2
	// AlertUnreachable is controller-originated: a switch exhausted its
	// retransmission budget repeatedly and was circuit-broken (quarantined).
	AlertUnreachable = 3
)

// Feedback msgType.
const MsgProbe = 1

// KeyIndexLocal is the key-register slot of the local (controller) key;
// port keys live at their port number.
const KeyIndexLocal = 0

// Exchange phase values carried in pa_kx.phase (recirculation state).
const (
	PhaseVerify  = 0 // on-the-wire phase: verify and dispatch
	PhaseInstall = 1 // derive via KDF and install the new key
	PhaseForward = 2 // sign and forward an initiator ADHKD1
)

// PTypeHeader returns the shared 1-byte packet-type header definition.
func PTypeHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrPType, Fields: []pisa.FieldDef{{Name: "v", Width: 8}}}
}

// AuthHeader returns the pa_h definition.
func AuthHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrAuth, Fields: []pisa.FieldDef{
		{Name: "hdrType", Width: 8},
		{Name: "msgType", Width: 8},
		{Name: "seqNum", Width: 32},
		{Name: "keyVersion", Width: 8},
		{Name: "digest", Width: 32},
	}}
}

// RegPayloadHeader returns the pa_reg definition.
func RegPayloadHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrReg, Fields: []pisa.FieldDef{
		{Name: "regid", Width: 32},
		{Name: "index", Width: 32},
		{Name: "value", Width: 64},
	}}
}

// KxPayloadHeader returns the pa_kx definition.
func KxPayloadHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrKx, Fields: []pisa.FieldDef{
		{Name: "port", Width: 16},
		{Name: "pk", Width: 64},
		{Name: "salt", Width: 32},
		{Name: "phase", Width: 8},
	}}
}

// IntHeader returns the recirculation-internal pa_int definition (never on
// the wire: invalidated before final deparse).
func IntHeader() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrInt, Fields: []pisa.FieldDef{
		{Name: "newkey", Width: 64},
		{Name: "s1", Width: 32},
		{Name: "idx", Width: 16},
		{Name: "inport", Width: 16},
		{Name: "resp", Width: 8},
	}}
}

// Header is the Go-side pa_h.
type Header struct {
	HdrType    uint8
	MsgType    uint8
	SeqNum     uint32
	KeyVersion uint8
	Digest     uint32
}

// RegPayload is the Go-side pa_reg.
type RegPayload struct {
	RegID uint32
	Index uint32
	Value uint64
}

// KxPayload is the Go-side pa_kx.
type KxPayload struct {
	Port  uint16
	PK    uint64
	Salt  uint32
	Phase uint8
}

// Message is a complete P4Auth message. Exactly one payload pointer should
// be set, matching HdrType (alerts carry a RegPayload whose Value holds
// the reason metadata).
type Message struct {
	Header
	Reg *RegPayload
	Kx  *KxPayload
	// Aux is an opaque feedback body (HdrFeedback): the host protocol's
	// header bytes, e.g. a HULA probe. It follows pa_h on the wire.
	Aux []byte
}

var (
	ptypeDef = PTypeHeader()
	authDef  = AuthHeader()
	regDef   = RegPayloadHeader()
	kxDef    = KxPayloadHeader()
)

// Wire sizes. Every field in the P4Auth headers is byte-aligned, so the
// hot-path codec writes bytes directly instead of going through the
// bit-packing pisa.PackHeader/UnpackHeader (which allocate per call). The
// generated-program header definitions above stay the source of truth;
// TestWireCodecEquivalence pins the direct codec to the packed one.
const (
	authWireBytes = 11 // hdrType(1) msgType(1) seqNum(4) keyVersion(1) digest(4)
	regWireBytes  = 16 // regid(4) index(4) value(8)
	kxWireBytes   = 15 // port(2) pk(8) salt(4) phase(1)
)

// AppendEncode serializes ptype + pa_h + payload into dst and returns the
// extended slice. It never allocates beyond growing dst.
func (m *Message) AppendEncode(dst []byte) []byte {
	dst = append(dst, PTypeP4Auth, m.HdrType, m.MsgType)
	dst = binary.BigEndian.AppendUint32(dst, m.SeqNum)
	dst = append(dst, m.KeyVersion)
	dst = binary.BigEndian.AppendUint32(dst, m.Digest)
	switch {
	case m.Reg != nil:
		dst = binary.BigEndian.AppendUint32(dst, m.Reg.RegID)
		dst = binary.BigEndian.AppendUint32(dst, m.Reg.Index)
		dst = binary.BigEndian.AppendUint64(dst, m.Reg.Value)
	case m.Kx != nil:
		dst = binary.BigEndian.AppendUint16(dst, m.Kx.Port)
		dst = binary.BigEndian.AppendUint64(dst, m.Kx.PK)
		dst = binary.BigEndian.AppendUint32(dst, m.Kx.Salt)
		dst = append(dst, m.Kx.Phase)
	case m.Aux != nil:
		dst = append(dst, m.Aux...)
	}
	return dst
}

// Encode serializes ptype + pa_h + payload.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(nil), nil
}

// decodeInto parses data into m, using reg/kx as payload storage so a
// caller that owns them can decode without allocating. On return exactly
// one of m.Reg/m.Kx/m.Aux is populated (matching HdrType).
func decodeInto(m *Message, reg *RegPayload, kx *KxPayload, data []byte) error {
	if len(data) < 1+authWireBytes {
		return fmt.Errorf("core: message truncated: %d bytes", len(data))
	}
	if data[0] != PTypeP4Auth {
		return fmt.Errorf("core: ptype %#x is not a P4Auth message", data[0])
	}
	b := data[1:]
	m.HdrType = b[0]
	m.MsgType = b[1]
	m.SeqNum = binary.BigEndian.Uint32(b[2:6])
	m.KeyVersion = b[6]
	m.Digest = binary.BigEndian.Uint32(b[7:11])
	body := b[authWireBytes:]
	m.Reg, m.Kx, m.Aux = nil, nil, m.Aux[:0]
	switch m.HdrType {
	case HdrRegister, HdrAlert:
		if len(body) < regWireBytes {
			return fmt.Errorf("core: pa_reg truncated: %d bytes", len(body))
		}
		reg.RegID = binary.BigEndian.Uint32(body[0:4])
		reg.Index = binary.BigEndian.Uint32(body[4:8])
		reg.Value = binary.BigEndian.Uint64(body[8:16])
		m.Reg = reg
	case HdrKeyExch:
		if len(body) < kxWireBytes {
			return fmt.Errorf("core: pa_kx truncated: %d bytes", len(body))
		}
		kx.Port = binary.BigEndian.Uint16(body[0:2])
		kx.PK = binary.BigEndian.Uint64(body[2:10])
		kx.Salt = binary.BigEndian.Uint32(body[10:14])
		kx.Phase = body[14]
		m.Kx = kx
	case HdrFeedback:
		m.Aux = append(m.Aux, body...)
	default:
		return fmt.Errorf("core: unknown hdrType %d", m.HdrType)
	}
	return nil
}

// DecodeMessage parses a P4Auth message from the wire into fresh storage.
func DecodeMessage(data []byte) (*Message, error) {
	m := &Message{}
	if err := decodeInto(m, &RegPayload{}, &KxPayload{}, data); err != nil {
		return nil, err
	}
	return m, nil
}

// MessageBuf is a reusable decode target: Decode parses into storage owned
// by the buffer, so steady-state decoding does not allocate. The returned
// *Message (and its payload) is valid until the next Decode on the same
// buffer; callers that retain a message across decodes must copy it.
type MessageBuf struct {
	msg Message
	reg RegPayload
	kx  KxPayload
}

// Decode parses data into the buffer's storage.
func (b *MessageBuf) Decode(data []byte) (*Message, error) {
	if err := decodeInto(&b.msg, &b.reg, &b.kx, data); err != nil {
		return nil, err
	}
	return &b.msg, nil
}

// digestHdrDef packs the digest-covered header fields (digest excluded).
var digestHdrDef = &pisa.HeaderDef{Name: "dig_h", Fields: []pisa.FieldDef{
	{Name: "hdrType", Width: 8},
	{Name: "msgType", Width: 8},
	{Name: "seqNum", Width: 32},
	{Name: "keyVersion", Width: 8},
}}

// digestRegDef and digestKxDef pack the digest-covered payload fields
// (phase excluded for kx).
var (
	digestRegDef = &pisa.HeaderDef{Name: "dig_reg", Fields: regDef.Fields}
	digestKxDef  = &pisa.HeaderDef{Name: "dig_kx", Fields: kxDef.Fields[:3]}
)

// AppendDigestInput appends the exact bytes the digest is computed over
// (header fields with the digest excluded, then the payload fields with
// the kx phase excluded) and returns the extended slice.
func (m *Message) AppendDigestInput(dst []byte) []byte {
	dst = append(dst, m.HdrType, m.MsgType)
	dst = binary.BigEndian.AppendUint32(dst, m.SeqNum)
	dst = append(dst, m.KeyVersion)
	switch {
	case m.Reg != nil:
		dst = binary.BigEndian.AppendUint32(dst, m.Reg.RegID)
		dst = binary.BigEndian.AppendUint32(dst, m.Reg.Index)
		dst = binary.BigEndian.AppendUint64(dst, m.Reg.Value)
	case m.Kx != nil:
		dst = binary.BigEndian.AppendUint16(dst, m.Kx.Port)
		dst = binary.BigEndian.AppendUint64(dst, m.Kx.PK)
		dst = binary.BigEndian.AppendUint32(dst, m.Kx.Salt)
	case m.Aux != nil:
		dst = append(dst, m.Aux...)
	}
	return dst
}

// DigestInput returns the exact bytes the digest is computed over.
func (m *Message) DigestInput() ([]byte, error) {
	return m.AppendDigestInput(nil), nil
}

// digestScratch pools the sign/verify input buffer so the hot path does
// not allocate per message.
var digestScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

// Sign computes and sets the digest under key.
func (m *Message) Sign(d crypto.PRF32, key uint64) error {
	bp := digestScratch.Get().(*[]byte)
	in := m.AppendDigestInput((*bp)[:0])
	m.Digest = d.Sum32(key, in)
	*bp = in[:0]
	digestScratch.Put(bp)
	return nil
}

// Verify recomputes the digest under key and compares in constant time.
func (m *Message) Verify(d crypto.PRF32, key uint64) bool {
	bp := digestScratch.Get().(*[]byte)
	in := m.AppendDigestInput((*bp)[:0])
	ok := crypto.Verify(d, key, in, m.Digest)
	*bp = in[:0]
	digestScratch.Put(bp)
	return ok
}
