package core

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestExchangeGoldenVectors pins the EAK (Fig. 11) and ADHKD (Fig. 12)
// derivations — the exact keys a controller and switch agree on — to the
// hex vectors frozen in testdata/exchange_golden.txt. These cover the
// full Extract-and-Expand path under both digest kinds and the default
// deployment constants (K_seed, personalization, DH parameters), so any
// drift in those constants fails here too.
func TestExchangeGoldenVectors(t *testing.T) {
	f, err := os.Open("testdata/exchange_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	u64 := func(line, s string) uint64 {
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			t.Fatalf("bad hex %q in %q: %v", s, line, err)
		}
		return v
	}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		fields := strings.Fields(line)
		kindInt, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("bad digest kind in %q: %v", line, err)
		}
		cfg := DefaultConfig(4, DigestKind(kindInt))
		kdf, err := cfg.KDF()
		if err != nil {
			t.Fatal(err)
		}
		switch fields[0] {
		case "eak":
			if len(fields) != 5 {
				t.Fatalf("bad eak line %q", line)
			}
			s1 := uint32(u64(line, fields[2]))
			s2 := uint32(u64(line, fields[3]))
			want := u64(line, fields[4])
			if got := kdf.Derive(cfg.Seed, SaltPair(s1, s2)); got != want {
				t.Errorf("EAK kind=%d K_auth = %016x, golden %016x", kindInt, got, want)
			}
		case "adhkd":
			if len(fields) != 9 {
				t.Fatalf("bad adhkd line %q", line)
			}
			r1, r2 := u64(line, fields[2]), u64(line, fields[3])
			s1 := uint32(u64(line, fields[4]))
			s2 := uint32(u64(line, fields[5]))
			wantPK1, wantPK2 := u64(line, fields[6]), u64(line, fields[7])
			want := u64(line, fields[8])
			pk1, pk2 := cfg.DH.PublicKey(r1), cfg.DH.PublicKey(r2)
			if pk1 != wantPK1 || pk2 != wantPK2 {
				t.Errorf("ADHKD kind=%d public keys (%016x, %016x), golden (%016x, %016x)",
					kindInt, pk1, pk2, wantPK1, wantPK2)
			}
			got := kdf.Derive(cfg.DH.SharedSecret(r1, pk2), SaltPair(s1, s2))
			if got != want {
				t.Errorf("ADHKD kind=%d K_ms = %016x, golden %016x", kindInt, got, want)
			}
			// Both sides must land on the same master secret.
			resp := kdf.Derive(cfg.DH.SharedSecret(r2, pk1), SaltPair(s1, s2))
			if resp != got {
				t.Errorf("ADHKD kind=%d responder derived %016x, initiator %016x", kindInt, resp, got)
			}
		default:
			t.Fatalf("unknown exchange vector kind %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 4 {
		t.Fatalf("parsed %d exchange vectors, want 4", lines)
	}
}
