package core

import (
	"testing"

	"p4auth/internal/crypto"
)

// Alloc-regression budgets for the authenticated hot path. These are hard
// gates: the pipelined transport depends on sign/verify/marshal/decode
// staying allocation-free in steady state.
func TestHotPathAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not stable under -race")
	}
	d := crypto.SharedHalfSipHashDigester()
	key := uint64(0x0123456789abcdef)
	m := &Message{
		Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 1, KeyVersion: 1},
		Reg:    &RegPayload{RegID: 7, Index: 3, Value: 99},
	}
	wire := make([]byte, 0, 64)
	var buf MessageBuf

	// Warm the pool and the decode storage before measuring.
	for i := 0; i < 8; i++ {
		if err := m.Sign(d, key); err != nil {
			t.Fatal(err)
		}
		m.Verify(d, key)
		wire = m.AppendEncode(wire[:0])
		if _, err := buf.Decode(wire); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		budget float64
		fn     func()
	}{
		{"Message.Sign", 0, func() {
			m.SeqNum++
			if err := m.Sign(d, key); err != nil {
				t.Fatal(err)
			}
		}},
		{"Message.Verify", 0, func() {
			if !m.Verify(d, key) {
				t.Fatal("verify failed")
			}
		}},
		{"AppendEncode", 0, func() {
			wire = m.AppendEncode(wire[:0])
		}},
		{"MessageBuf.Decode", 0, func() {
			if _, err := buf.Decode(wire); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		got := testing.AllocsPerRun(200, c.fn)
		if got > c.budget {
			t.Errorf("%s: %.1f allocs/op, budget %.0f", c.name, got, c.budget)
		}
	}
}
