package core

import (
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// §XI extension: "P4Auth can be extended to support symmetric key
// encryption of C-DP and DP-DP communication by deriving more symmetric
// keys from the master secret using KDF." This file implements it for the
// C-DP register value field: a keystream generated from the shared key and
// the message's sequence number (two PRF calls for 64 bits) is XORed over
// the value — pure PRF+XOR, exactly the operation budget a PISA stage has.
//
// Domain separation:
//   - request and response directions use distinct labels, so a readReq's
//     (zero) value field never leaks the response keystream;
//   - the digest is computed over the CIPHERTEXT (encrypt-then-MAC).
//
// Keystream input layout (MSB-first, matching pipeline hash inputs):
// seqNum(32) || label(64).

// Keystream direction labels.
const (
	EncLabelReqLo  uint64 = 0xEC01
	EncLabelReqHi  uint64 = 0xEC02
	EncLabelRespLo uint64 = 0xEC11
	EncLabelRespHi uint64 = 0xEC12
)

var encInputDef = &pisa.HeaderDef{Name: "enc_in", Fields: []pisa.FieldDef{
	{Name: "seq", Width: 32},
	{Name: "label", Width: 64},
}}

func keystream(d crypto.PRF32, key uint64, seq uint32, labelLo, labelHi uint64) uint64 {
	lo, err := pisa.PackHeader(encInputDef, []uint64{uint64(seq), labelLo})
	if err != nil {
		// Unreachable: the def is static and byte-aligned.
		panic(err)
	}
	hi, err := pisa.PackHeader(encInputDef, []uint64{uint64(seq), labelHi})
	if err != nil {
		panic(err)
	}
	return uint64(d.Sum32(key, hi))<<32 | uint64(d.Sum32(key, lo))
}

// EncryptRequestValue XORs the request-direction keystream over a value
// (encryption and decryption are the same operation).
func EncryptRequestValue(d crypto.PRF32, key uint64, seq uint32, value uint64) uint64 {
	return value ^ keystream(d, key, seq, EncLabelReqLo, EncLabelReqHi)
}

// EncryptResponseValue XORs the response-direction keystream over a value.
func EncryptResponseValue(d crypto.PRF32, key uint64, seq uint32, value uint64) uint64 {
	return value ^ keystream(d, key, seq, EncLabelRespLo, EncLabelRespHi)
}

// encryptOps emits the data-plane side: keystream generation (two keyed
// hashes) and the XOR over pa_reg.value.
func encryptOps(alg pisa.HashAlg, labelLo, labelHi uint64) []pisa.Op {
	seq := pisa.R(pisa.F(HdrAuth, "seqNum"))
	return []pisa.Op{
		pisa.KeyedHash(mf(mEncLo), alg, pisa.R(mf(mKey)), seq, pisa.C(labelLo)),
		pisa.KeyedHash(mf(mEncHi), alg, pisa.R(mf(mKey)), seq, pisa.C(labelHi)),
		pisa.Shl(mf(mEncKS), pisa.R(mf(mEncHi)), pisa.C(32)),
		pisa.Or(mf(mEncKS), pisa.R(mf(mEncKS)), pisa.R(mf(mEncLo))),
		pisa.Xor(pisa.F(HdrReg, "value"), pisa.R(pisa.F(HdrReg, "value")), pisa.R(mf(mEncKS))),
	}
}
