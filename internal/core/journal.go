package core

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Write-ahead journal entry codec. The controller records every
// authenticated register write in a durable journal BEFORE putting it on
// the wire, so a crash mid-write leaves evidence: on restart the recovery
// protocol finds the intent, reads the register back under the restored
// key, and either confirms the write landed or re-drives it. Entries use
// the same magic/version/CRC armour as the snapshots — a torn journal
// record is detected, not replayed.

const (
	walMagic   = 0x5041574A // "PAWJ": P4Auth Write Journal
	walVersion = 1
)

// WriteState is a journal entry's position in the intent → applied/failed
// lifecycle. Entries in WriteIntent only survive a crash: a live
// controller settles every write to applied (deleted) or failed before
// returning to its caller.
type WriteState uint8

const (
	// WriteIntent: recorded before the wire send; outcome unknown.
	WriteIntent WriteState = iota
	// WriteApplied: confirmed on the switch (normally deleted instead).
	WriteApplied
	// WriteFailed: definitively not applied, kept for the operator.
	WriteFailed
)

func (s WriteState) String() string {
	switch s {
	case WriteIntent:
		return "intent"
	case WriteApplied:
		return "applied"
	case WriteFailed:
		return "failed"
	}
	return fmt.Sprintf("WriteState(%d)", int(s))
}

// JournalEntry is one journaled register write.
type JournalEntry struct {
	ID       uint64
	Switch   string
	Register string
	Index    uint32
	Value    uint64
	State    WriteState
}

// Encode serializes the entry with a trailing CRC32.
func (e *JournalEntry) Encode() []byte {
	b := make([]byte, 0, 48+len(e.Switch)+len(e.Register))
	b = binary.BigEndian.AppendUint32(b, walMagic)
	b = append(b, walVersion)
	b = binary.BigEndian.AppendUint64(b, e.ID)
	b = append(b, byte(e.State))
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Switch)))
	b = append(b, e.Switch...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Register)))
	b = append(b, e.Register...)
	b = binary.BigEndian.AppendUint32(b, e.Index)
	b = binary.BigEndian.AppendUint64(b, e.Value)
	return appendCRC(b)
}

// DecodeJournalEntry parses and checksum-verifies an encoded entry.
func DecodeJournalEntry(b []byte) (*JournalEntry, error) {
	body, err := checkCRC(b, walMagic, walVersion, "journal entry")
	if err != nil {
		return nil, err
	}
	r := reader{b: body}
	e := &JournalEntry{ID: r.u64(), State: WriteState(r.u8())}
	e.Switch = r.str()
	e.Register = r.str()
	e.Index = r.u32()
	e.Value = r.u64()
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated journal entry: %w", r.err)
	}
	if e.State > WriteFailed {
		return nil, fmt.Errorf("core: journal entry has unknown state %d", uint8(e.State))
	}
	return e, nil
}

// Dump renders the entry for operators (p4auth-inspect journal).
func (e *JournalEntry) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal entry %016x  %-7s  %s: %s[%d] <- %#x",
		e.ID, e.State, e.Switch, e.Register, e.Index, e.Value)
	return b.String()
}
