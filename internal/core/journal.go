package core

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Write-ahead journal entry codec. The controller records every
// authenticated register write in a durable journal BEFORE putting it on
// the wire, so a crash mid-write leaves evidence: on restart the recovery
// protocol finds the intent, reads the register back under the restored
// key, and either confirms the write landed or re-drives it. Entries use
// the same magic/version/CRC armour as the snapshots — a torn journal
// record is detected, not replayed.

const (
	walMagic   = 0x5041574A // "PAWJ": P4Auth Write Journal
	walVersion = 1
)

// WriteState is a journal entry's position in the intent → applied/failed
// lifecycle. Entries in WriteIntent only survive a crash: a live
// controller settles every write to applied (deleted) or failed before
// returning to its caller.
type WriteState uint8

const (
	// WriteIntent: recorded before the wire send; outcome unknown.
	WriteIntent WriteState = iota
	// WriteApplied: confirmed on the switch (normally deleted instead).
	WriteApplied
	// WriteFailed: definitively not applied, kept for the operator.
	WriteFailed
)

func (s WriteState) String() string {
	switch s {
	case WriteIntent:
		return "intent"
	case WriteApplied:
		return "applied"
	case WriteFailed:
		return "failed"
	}
	return fmt.Sprintf("WriteState(%d)", int(s))
}

// JournalEntry is one journaled register write.
type JournalEntry struct {
	ID       uint64
	Switch   string
	Register string
	Index    uint32
	Value    uint64
	State    WriteState
}

// Encode serializes the entry with a trailing CRC32.
func (e *JournalEntry) Encode() []byte {
	b := make([]byte, 0, 48+len(e.Switch)+len(e.Register))
	b = binary.BigEndian.AppendUint32(b, walMagic)
	b = append(b, walVersion)
	b = binary.BigEndian.AppendUint64(b, e.ID)
	b = append(b, byte(e.State))
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Switch)))
	b = append(b, e.Switch...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Register)))
	b = append(b, e.Register...)
	b = binary.BigEndian.AppendUint32(b, e.Index)
	b = binary.BigEndian.AppendUint64(b, e.Value)
	return appendCRC(b)
}

// DecodeJournalEntry parses and checksum-verifies an encoded entry.
func DecodeJournalEntry(b []byte) (*JournalEntry, error) {
	body, err := checkCRC(b, walMagic, walVersion, "journal entry")
	if err != nil {
		return nil, err
	}
	r := reader{b: body}
	e := &JournalEntry{ID: r.u64(), State: WriteState(r.u8())}
	e.Switch = r.str()
	e.Register = r.str()
	e.Index = r.u32()
	e.Value = r.u64()
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated journal entry: %w", r.err)
	}
	if e.State > WriteFailed {
		return nil, fmt.Errorf("core: journal entry has unknown state %d", uint8(e.State))
	}
	return e, nil
}

// Dump renders the entry for operators (p4auth-inspect journal).
func (e *JournalEntry) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal entry %016x  %-7s  %s: %s[%d] <- %#x",
		e.ID, e.State, e.Switch, e.Register, e.Index, e.Value)
	return b.String()
}

// Batch (group-commit) journal records. The pipelined transport journals
// one record per windowed batch instead of one per write: a single
// durable Save covers the whole window's intents, and a single settle
// rewrites (or deletes) it. Per-entry exactly-once-or-failed is
// preserved — each write inside the record carries its own WriteState,
// and recovery read-back disambiguates each intent independently.
const walBatchMagic = 0x50415742 // "PAWB": P4Auth Write Batch

// BatchWrite is one write inside a batch journal record.
type BatchWrite struct {
	Register string
	Index    uint32
	Value    uint64
	State    WriteState
}

// JournalBatch is one journaled window of register writes toward a
// single switch, committed as one durable record.
type JournalBatch struct {
	ID     uint64
	Switch string
	Writes []BatchWrite
}

// Encode serializes the batch with the same magic/version/CRC armour as
// single entries (distinct magic, so decoders can tell them apart).
func (e *JournalBatch) Encode() []byte {
	n := 32 + len(e.Switch)
	for i := range e.Writes {
		n += 15 + len(e.Writes[i].Register)
	}
	b := make([]byte, 0, n)
	b = binary.BigEndian.AppendUint32(b, walBatchMagic)
	b = append(b, walVersion)
	b = binary.BigEndian.AppendUint64(b, e.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Switch)))
	b = append(b, e.Switch...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Writes)))
	for i := range e.Writes {
		w := &e.Writes[i]
		b = append(b, byte(w.State))
		b = binary.BigEndian.AppendUint16(b, uint16(len(w.Register)))
		b = append(b, w.Register...)
		b = binary.BigEndian.AppendUint32(b, w.Index)
		b = binary.BigEndian.AppendUint64(b, w.Value)
	}
	return appendCRC(b)
}

// DecodeJournalBatch parses and checksum-verifies an encoded batch.
func DecodeJournalBatch(b []byte) (*JournalBatch, error) {
	body, err := checkCRC(b, walBatchMagic, walVersion, "journal batch")
	if err != nil {
		return nil, err
	}
	r := reader{b: body}
	e := &JournalBatch{ID: r.u64()}
	e.Switch = r.str()
	count := int(r.u16())
	if r.err == nil && count >= 0 {
		e.Writes = make([]BatchWrite, 0, count)
		for i := 0; i < count; i++ {
			w := BatchWrite{State: WriteState(r.u8())}
			w.Register = r.str()
			w.Index = r.u32()
			w.Value = r.u64()
			if w.State > WriteFailed {
				return nil, fmt.Errorf("core: journal batch write has unknown state %d", uint8(w.State))
			}
			e.Writes = append(e.Writes, w)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("core: truncated journal batch: %w", r.err)
	}
	return e, nil
}

// Entries expands the batch into per-write JournalEntry views (same ID,
// per-write state), for tooling that lists journal contents uniformly.
func (e *JournalBatch) Entries() []JournalEntry {
	out := make([]JournalEntry, len(e.Writes))
	for i, w := range e.Writes {
		out[i] = JournalEntry{
			ID: e.ID, Switch: e.Switch,
			Register: w.Register, Index: w.Index, Value: w.Value, State: w.State,
		}
	}
	return out
}

// Dump renders the batch for operators (p4auth-inspect journal).
func (e *JournalBatch) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal batch %016x  %s  (%d writes)", e.ID, e.Switch, len(e.Writes))
	for i := range e.Writes {
		w := &e.Writes[i]
		fmt.Fprintf(&b, "\n  %-7s  %s[%d] <- %#x", w.State, w.Register, w.Index, w.Value)
	}
	return b.String()
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}
