package core

import (
	"bytes"
	"testing"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// packedEncode is the original bit-packing encoder, kept in the tests as
// the reference the direct byte codec must match.
func packedEncode(t *testing.T, m *Message) []byte {
	t.Helper()
	out, err := pisa.PackHeader(ptypeDef, []uint64{PTypeP4Auth})
	if err != nil {
		t.Fatal(err)
	}
	h, err := pisa.PackHeader(authDef, []uint64{
		uint64(m.HdrType), uint64(m.MsgType), uint64(m.SeqNum), uint64(m.KeyVersion), uint64(m.Digest),
	})
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, h...)
	switch {
	case m.Reg != nil:
		p, err := pisa.PackHeader(regDef, []uint64{uint64(m.Reg.RegID), uint64(m.Reg.Index), m.Reg.Value})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p...)
	case m.Kx != nil:
		p, err := pisa.PackHeader(kxDef, []uint64{uint64(m.Kx.Port), m.Kx.PK, uint64(m.Kx.Salt), uint64(m.Kx.Phase)})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p...)
	case m.Aux != nil:
		out = append(out, m.Aux...)
	}
	return out
}

func packedDigestInput(t *testing.T, m *Message) []byte {
	t.Helper()
	out, err := pisa.PackHeader(digestHdrDef, []uint64{
		uint64(m.HdrType), uint64(m.MsgType), uint64(m.SeqNum), uint64(m.KeyVersion),
	})
	if err != nil {
		t.Fatal(err)
	}
	switch {
	case m.Reg != nil:
		p, err := pisa.PackHeader(digestRegDef, []uint64{uint64(m.Reg.RegID), uint64(m.Reg.Index), m.Reg.Value})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p...)
	case m.Kx != nil:
		p, err := pisa.PackHeader(digestKxDef, []uint64{uint64(m.Kx.Port), m.Kx.PK, uint64(m.Kx.Salt)})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p...)
	case m.Aux != nil:
		out = append(out, m.Aux...)
	}
	return out
}

func codecSamples() []*Message {
	return []*Message{
		{
			Header: Header{HdrType: HdrRegister, MsgType: MsgWriteReq, SeqNum: 0xdeadbeef, KeyVersion: 7, Digest: 0x01020304},
			Reg:    &RegPayload{RegID: 0xa1b2c3d4, Index: 0xffffffff, Value: 0x1122334455667788},
		},
		{
			Header: Header{HdrType: HdrAlert, MsgType: AlertReplay, SeqNum: 1, KeyVersion: 0, Digest: 0},
			Reg:    &RegPayload{RegID: 3, Index: 0, Value: 42},
		},
		{
			Header: Header{HdrType: HdrKeyExch, MsgType: MsgADHKD1, SeqNum: 0x7fffffff, KeyVersion: 255, Digest: 0xffffffff},
			Kx:     &KxPayload{Port: 0xbeef, PK: 0x8877665544332211, Salt: 0x0badf00d, Phase: PhaseInstall},
		},
		{
			Header: Header{HdrType: HdrFeedback, MsgType: MsgProbe, SeqNum: 9, KeyVersion: 2, Digest: 5},
			Aux:    []byte{0x10, 0x20, 0x30, 0x40, 0x55},
		},
	}
}

// TestWireCodecEquivalence pins the direct byte codec to the bit-packing
// reference: identical wire bytes and digest input for every message shape.
func TestWireCodecEquivalence(t *testing.T) {
	for i, m := range codecSamples() {
		got := m.AppendEncode(nil)
		want := packedEncode(t, m)
		if !bytes.Equal(got, want) {
			t.Errorf("sample %d: AppendEncode=%x want %x", i, got, want)
		}
		gotD := m.AppendDigestInput(nil)
		wantD := packedDigestInput(t, m)
		if !bytes.Equal(gotD, wantD) {
			t.Errorf("sample %d: AppendDigestInput=%x want %x", i, gotD, wantD)
		}
		// Appending into a non-empty prefix must not disturb the prefix.
		pre := []byte{0xee, 0xff}
		ext := m.AppendEncode(pre)
		if !bytes.Equal(ext[:2], pre[:2]) || !bytes.Equal(ext[2:], want) {
			t.Errorf("sample %d: AppendEncode with prefix mismatched", i)
		}
	}
}

func TestMessageBufDecodeRoundTrip(t *testing.T) {
	var buf MessageBuf
	for i, m := range codecSamples() {
		wire := m.AppendEncode(nil)
		got, err := buf.Decode(wire)
		if err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if got.Header != m.Header {
			t.Errorf("sample %d: header %+v want %+v", i, got.Header, m.Header)
		}
		switch {
		case m.Reg != nil:
			if got.Reg == nil || *got.Reg != *m.Reg {
				t.Errorf("sample %d: reg %+v want %+v", i, got.Reg, m.Reg)
			}
			if got.Kx != nil {
				t.Errorf("sample %d: stale kx payload after reuse", i)
			}
		case m.Kx != nil:
			if got.Kx == nil || *got.Kx != *m.Kx {
				t.Errorf("sample %d: kx %+v want %+v", i, got.Kx, m.Kx)
			}
			if got.Reg != nil {
				t.Errorf("sample %d: stale reg payload after reuse", i)
			}
		case m.Aux != nil:
			if !bytes.Equal(got.Aux, m.Aux) {
				t.Errorf("sample %d: aux %x want %x", i, got.Aux, m.Aux)
			}
		}
		// MessageBuf must match the allocating decoder exactly.
		ref, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("sample %d: DecodeMessage: %v", i, err)
		}
		if ref.Header != got.Header {
			t.Errorf("sample %d: DecodeMessage header diverges", i)
		}
	}
}

func TestDecodeTruncatedAndBadType(t *testing.T) {
	m := codecSamples()[0]
	wire := m.AppendEncode(nil)
	for cut := 0; cut < len(wire); cut++ {
		if _, err := DecodeMessage(wire[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes succeeded", cut, len(wire))
		}
	}
	bad := append([]byte(nil), wire...)
	bad[0] = 0x42
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("decode of non-P4Auth ptype succeeded")
	}
	bad = append([]byte(nil), wire...)
	bad[1] = 99 // unknown hdrType
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("decode of unknown hdrType succeeded")
	}
}

// TestSignVerifyScratchIsolation checks the pooled digest scratch cannot
// leak state between messages: sign two different messages alternately and
// verify both still check out.
func TestSignVerifyScratchIsolation(t *testing.T) {
	d := crypto.SharedHalfSipHashDigester()
	key := uint64(0x1234567890abcdef)
	a := codecSamples()[0]
	b := codecSamples()[2]
	for i := 0; i < 4; i++ {
		if err := a.Sign(d, key); err != nil {
			t.Fatal(err)
		}
		if err := b.Sign(d, key); err != nil {
			t.Fatal(err)
		}
	}
	if !a.Verify(d, key) || !b.Verify(d, key) {
		t.Fatal("sign/verify round trip failed with pooled scratch")
	}
	if a.Verify(d, key+1) {
		t.Fatal("verify accepted wrong key")
	}
}
