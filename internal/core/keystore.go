package core

import (
	"fmt"
	"sync"
)

// KeyStore is the two-version key table used for consistent key updates
// (§VI-C "Consistent key updates", after [66]): each slot holds an old and
// a new key; the sender tags messages with the version it signed with, and
// the receiver validates with the tagged version, so in-flight messages
// survive a rollover. Slot 0 is the local key; slots 1..N are port keys.
//
// The controller holds one KeyStore per switch; the switch data plane's
// equivalent state lives in the pa_keys_v0/pa_keys_v1/pa_ver registers of
// the generated program.
type KeyStore struct {
	mu    sync.Mutex
	slots []keySlot
}

type keySlot struct {
	v       [2]uint64
	current uint8
	set     bool
	// Transactional rollover staging (prepare/commit/abort): a derived key
	// awaiting confirmation that the peer activated its copy. A prepared
	// key is invisible to Current/At until committed, so in-flight messages
	// keep verifying under the established versions.
	pending    uint64
	hasPending bool
}

// NewKeyStore returns a store with slots 0..ports. Slot 0 starts at the
// seed key, version 0 — matching a freshly booted switch whose key
// register was loaded from the binary.
func NewKeyStore(ports int, seed uint64) *KeyStore {
	ks := &KeyStore{slots: make([]keySlot, ports+1)}
	ks.slots[KeyIndexLocal].v[0] = seed
	ks.slots[KeyIndexLocal].set = true
	return ks
}

func (ks *KeyStore) check(idx int) error {
	if idx < 0 || idx >= len(ks.slots) {
		return fmt.Errorf("core: key slot %d out of range [0,%d)", idx, len(ks.slots))
	}
	return nil
}

// Current returns the active key and its version tag for a slot.
func (ks *KeyStore) Current(idx int) (key uint64, version uint8, err error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return 0, 0, err
	}
	s := ks.slots[idx]
	if !s.set {
		return 0, 0, fmt.Errorf("core: key slot %d not established", idx)
	}
	return s.v[s.current&1], s.current, nil
}

// At returns the key stored under a specific version tag (for validating
// messages signed before a rollover).
func (ks *KeyStore) At(idx int, version uint8) (uint64, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return 0, err
	}
	s := ks.slots[idx]
	if !s.set {
		return 0, fmt.Errorf("core: key slot %d not established", idx)
	}
	return s.v[version&1], nil
}

// Install stores a new key in the slot's inactive version and makes it
// current, returning the new version tag. It discards any prepared key
// (Install is the non-transactional path).
func (ks *KeyStore) Install(idx int, key uint64) (uint8, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return 0, err
	}
	s := &ks.slots[idx]
	s.pending, s.hasPending = 0, false
	return s.install(key), nil
}

func (s *keySlot) install(key uint64) uint8 {
	if s.set {
		s.current++
	}
	s.v[s.current&1] = key
	s.set = true
	return s.current
}

// Prepare stages a freshly derived key for a slot without activating it:
// Current and At still answer from the established versions, so everything
// signed before the rollover keeps verifying. A second Prepare replaces
// the staged key.
func (ks *KeyStore) Prepare(idx int, key uint64) error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return err
	}
	s := &ks.slots[idx]
	s.pending, s.hasPending = key, true
	return nil
}

// Commit activates the prepared key at version current+1 and returns the
// new version tag. It fails if nothing is prepared.
func (ks *KeyStore) Commit(idx int) (uint8, error) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return 0, err
	}
	s := &ks.slots[idx]
	if !s.hasPending {
		return 0, fmt.Errorf("core: key slot %d has no prepared key to commit", idx)
	}
	key := s.pending
	s.pending, s.hasPending = 0, false
	return s.install(key), nil
}

// Abort discards a prepared key, leaving the established versions
// untouched. Aborting with nothing prepared is a no-op.
func (ks *KeyStore) Abort(idx int) error {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if err := ks.check(idx); err != nil {
		return err
	}
	s := &ks.slots[idx]
	s.pending, s.hasPending = 0, false
	return nil
}

// Pending reports whether a prepared key awaits commit on the slot.
func (ks *KeyStore) Pending(idx int) bool {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if idx < 0 || idx >= len(ks.slots) {
		return false
	}
	return ks.slots[idx].hasPending
}

// Established reports whether a slot holds a key.
func (ks *KeyStore) Established(idx int) bool {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	if idx < 0 || idx >= len(ks.slots) {
		return false
	}
	return ks.slots[idx].set
}

// Slots returns the number of slots (ports + 1).
func (ks *KeyStore) Slots() int { return len(ks.slots) }
