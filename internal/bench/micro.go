package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
)

// Machine-readable benchmark export. CollectBenchJSON measures the
// authenticated hot path's micro-benchmarks (via testing.Benchmark, so
// the numbers are the same ns/op, B/op, allocs/op `go test -bench` would
// print) plus the serial-vs-pipelined Fig. 19 throughput sweep, and
// WriteBenchJSON/SaveBenchJSON serialize the result for checking into
// the repository (BENCH_<date>.json) and diffing across commits.

// MicroResult is one micro-benchmark's steady-state cost.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// TputRow is one row of the pipelined Fig. 19 sweep.
type TputRow struct {
	Window  int     `json:"window"`
	Tput    float64 `json:"requests_per_sec"`
	Speedup float64 `json:"speedup_vs_serial"`
}

// MetricsBlock is the observability snapshot captured from the
// AuthenticatedWrite fixture's controller after its benchmark loop:
// proof the metrics layer was live while the allocs/op number was
// measured, plus the instrument values themselves for diffing.
type MetricsBlock struct {
	obs.Snapshot
	AuditEvents int `json:"audit_events"`
}

// FleetBlock is the sharded-fleet artifact: aggregate authenticated
// write throughput across the fleet and the lease-fenced failover time
// of the active/standby pair (both in modeled/virtual time).
type FleetBlock struct {
	Switches      int     `json:"switches"`
	Window        int     `json:"window"`
	Writes        int     `json:"writes_total"`
	WritesPerSec  float64 `json:"writes_per_sec"`
	SerialPerSec  float64 `json:"single_switch_serial_per_sec"`
	FailoverMs    float64 `json:"failover_ms"`
	FailoverEpoch uint64  `json:"failover_epoch"`
}

// EnvBlock records the machine context the numbers were taken on, so
// bench artifacts stay comparable across hosts: the modeled times don't
// depend on the machine, but wall-clock micro-benchmarks and the worker
// sweep's real parallelism do.
type EnvBlock struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// BenchJSON is the checked-in benchmark artifact.
type BenchJSON struct {
	Date      string         `json:"date"`
	Env       *EnvBlock      `json:"env,omitempty"`
	Micro     []MicroResult  `json:"micro"`
	Fig19Pipe []TputRow      `json:"fig19_pipelined"`
	Parallel  []ParallelRow  `json:"fig19_parallel,omitempty"`
	Fleet     *FleetBlock    `json:"fleet,omitempty"`
	Matrix    *MatrixBlock   `json:"fleet_matrix,omitempty"`
	Group     []GroupRow     `json:"group_failover,omitempty"`
	Hierarchy []HierarchyRow `json:"hierarchy,omitempty"`
	Metrics   *MetricsBlock  `json:"metrics,omitempty"`
}

func micro(name string, fn func(b *testing.B)) MicroResult {
	r := testing.Benchmark(fn)
	return MicroResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// CollectBenchJSON runs the micro-benchmarks and the pipelined Fig. 19
// sweep. The date is supplied by the caller (it names the artifact).
func CollectBenchJSON(date string) (*BenchJSON, error) {
	out := &BenchJSON{
		Date: date,
		Env: &EnvBlock{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		},
	}

	// Wire-level primitives, measured exactly like core's alloc gates.
	d := crypto.SharedHalfSipHashDigester()
	key := uint64(0x0123456789abcdef)
	m := &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq, SeqNum: 1, KeyVersion: 1},
		Reg:    &core.RegPayload{RegID: 7, Index: 3, Value: 99},
	}
	if err := m.Sign(d, key); err != nil {
		return nil, err
	}
	wire := m.AppendEncode(nil)
	var buf core.MessageBuf

	out.Micro = append(out.Micro,
		micro("Message.Sign", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.SeqNum++
				if err := m.Sign(d, key); err != nil {
					b.Fatal(err)
				}
			}
		}),
		micro("Message.Verify", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !m.Verify(d, key) {
					b.Fatal("verify failed")
				}
			}
		}),
		micro("Message.AppendEncode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wire = m.AppendEncode(wire[:0])
			}
		}),
		micro("MessageBuf.Decode", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := buf.Decode(wire); err != nil {
					b.Fatal(err)
				}
			}
		}),
	)

	// End-to-end authenticated write (the root BenchmarkAuthenticatedWrite
	// fixture: one switch, established local key).
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:  "b1",
		Ports: 4,
		Registers: []*pisa.RegisterDef{
			{Name: "r", Width: 64, Entries: 64},
		},
	})
	if err != nil {
		return nil, err
	}
	c := controller.New(crypto.NewSeededRand(9))
	if err := c.Register("b1", sw.Host, sw.Cfg, 0); err != nil {
		return nil, err
	}
	if _, err := c.LocalKeyInit("b1"); err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ { // warm the handle scratch and response cache
		if _, err := c.WriteRegister("b1", "r", uint32(i%64), uint64(i)); err != nil {
			return nil, err
		}
	}
	out.Micro = append(out.Micro, micro("AuthenticatedWrite", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.WriteRegister("b1", "r", uint32(i%64), uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	o := c.Observer()
	out.Metrics = &MetricsBlock{Snapshot: o.Metrics.Snapshot(), AuditEvents: o.Audit.Len()}

	// Pipelined Fig. 19 sweep (numeric, not the formatted report).
	opts := DefaultFig19PipelinedOpts()
	pc, err := pipelinedFixture()
	if err != nil {
		return nil, err
	}
	var serial float64
	for _, w := range opts.Windows {
		tput, err := pipelinedWriteTput(pc, opts.Requests, w)
		if err != nil {
			return nil, err
		}
		if w <= 1 {
			serial = tput
		}
		speedup := 0.0
		if serial > 0 {
			speedup = tput / serial
		}
		out.Fig19Pipe = append(out.Fig19Pipe, TputRow{Window: w, Tput: tput, Speedup: speedup})
	}

	// Parallel ingress sweep (workers × window over DP-DP probes), using
	// the serial C-DP throughput just measured as the cross-path baseline.
	if out.Parallel, err = Fig19ParallelRows(DefaultFig19ParallelOpts(), serial); err != nil {
		return nil, err
	}

	// Fleet-scale sharded throughput + HA failover time.
	fr, err := RunFleet(DefaultFleetOpts())
	if err != nil {
		return nil, err
	}
	out.Fleet = &FleetBlock{
		Switches:      fr.Switches,
		Window:        fr.Window,
		Writes:        fr.Writes,
		WritesPerSec:  fr.Tput,
		SerialPerSec:  fr.Serial,
		FailoverMs:    float64(fr.Failover) / float64(time.Millisecond),
		FailoverEpoch: fr.FailoverEpoch,
	}

	// N-replica group failover under rolling kills (N=3 and N=5).
	if out.Group, err = groupBenchRows(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteBenchJSON renders the artifact as indented JSON.
func (bj *BenchJSON) WriteBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(bj)
}

// SaveBenchJSON collects and writes BENCH_<date>.json-style output to a
// file path.
func SaveBenchJSON(path, date string) (*BenchJSON, error) {
	bj, err := CollectBenchJSON(date)
	if err != nil {
		return nil, err
	}
	return bj, writeBenchFile(bj, path)
}

// SaveMatrixJSON collects the fleet-matrix artifact alone and writes it
// as a BENCH_<date>-matrix.json-style file (the survival matrix plus the
// shard throughput sweep, without re-running the micro-benchmarks).
func SaveMatrixJSON(path, date string, o MatrixOpts) (*BenchJSON, error) {
	mb, err := RunMatrixBench(o)
	if err != nil {
		return nil, err
	}
	bj := &BenchJSON{
		Date: date,
		Env: &EnvBlock{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		},
		Matrix: mb,
	}
	return bj, writeBenchFile(bj, path)
}

// SaveHierarchyJSON collects the hierarchical control-plane artifact
// alone and writes it as a BENCH_<date>-hierarchy.json-style file
// (cross-pod establishment latency + aggregate pod write throughput,
// without re-running the micro-benchmarks).
func SaveHierarchyJSON(path, date string) (*BenchJSON, error) {
	rows, err := hierarchyBenchRows()
	if err != nil {
		return nil, err
	}
	bj := &BenchJSON{
		Date: date,
		Env: &EnvBlock{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GoVersion:  runtime.Version(),
		},
		Hierarchy: rows,
	}
	return bj, writeBenchFile(bj, path)
}

func writeBenchFile(bj *BenchJSON, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bj.WriteBenchJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return f.Close()
}
