// Fleet matrix artifact: the app × fault × protection survival matrix
// from the internal/fleet scenario harness, plus wall-clock throughput
// of the k=8 fat-tree fabric and the pod-replicated RouteScout
// deployment across shard counts. The matrix is the paper's Table I
// protection story run fleet-wide; the throughput rows measure what the
// sharded engine buys on a real machine (wall time, not virtual time).
package bench

import (
	"fmt"
	"time"

	"p4auth/internal/fleet"
)

// MatrixOpts parameterizes the fleet-matrix collection.
type MatrixOpts struct {
	// MatrixK is the fat-tree arity (and standalone pod count) for the
	// survival matrix (default 4).
	MatrixK int
	// TputK is the arity for the throughput rows (default 8: 80
	// switches).
	TputK int
	// TputLoad is the fabric data window for throughput rows (default
	// 4 ms — the k=8 fabric carries ~1.8k packets plus ~250k probe
	// events per run).
	TputLoad time.Duration
	// Shards lists the shard counts to sweep (default 1, 4, 8).
	Shards []int
	// Seed drives every PRNG (default the fleet default).
	Seed uint64
}

// DefaultMatrixOpts is the checked-in artifact configuration.
func DefaultMatrixOpts() MatrixOpts {
	return MatrixOpts{
		MatrixK:  4,
		TputK:    8,
		TputLoad: 4 * time.Millisecond,
		Shards:   []int{1, 4, 8},
		Seed:     fleet.DefaultOptions().Seed,
	}
}

// MatrixTputRow is one throughput measurement: one app at one shard
// count, wall-clock timed.
type MatrixTputRow struct {
	App       string  `json:"app"`
	K         int     `json:"k"`
	Shards    int     `json:"shards"`
	Ops       uint64  `json:"ops"`
	Score     float64 `json:"score"`
	WallMs    float64 `json:"wall_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is wall-time speedup versus this app's shards=1 row.
	Speedup float64 `json:"speedup_vs_shards1"`
}

// MatrixBlock is the fleet-matrix artifact: the full survival matrix
// plus the shard throughput sweep.
type MatrixBlock struct {
	K        int             `json:"k"`
	Seed     uint64          `json:"seed"`
	Survived int             `json:"survived"`
	Total    int             `json:"total"`
	Cells    []fleet.Cell    `json:"cells"`
	Tput     []MatrixTputRow `json:"throughput"`
}

// tputApps are the apps the throughput sweep times: the fabric (where
// shards parallelize the discrete-event engine) and RouteScout (the
// heaviest standalone driver, as a fixed-cost baseline).
var tputApps = []string{"hula", "routescout"}

// RunMatrixBench collects the fleet-matrix artifact.
func RunMatrixBench(o MatrixOpts) (*MatrixBlock, error) {
	mo := fleet.DefaultOptions()
	mo.K = o.MatrixK
	mo.Seed = o.Seed
	m, err := fleet.RunMatrix(mo)
	if err != nil {
		return nil, err
	}
	survived, total := m.Survival()
	out := &MatrixBlock{K: m.K, Seed: m.Seed, Survived: survived, Total: total, Cells: m.Cells}

	for _, app := range tputApps {
		var base float64
		for _, shards := range o.Shards {
			to := fleet.Options{
				K:            o.TputK,
				Shards:       shards,
				Seed:         o.Seed,
				LoadDuration: o.TputLoad,
			}
			start := time.Now()
			cell, _, err := fleet.RunCell(app, fleet.FaultNone, true, to)
			if err != nil {
				return nil, fmt.Errorf("bench: %s shards=%d: %w", app, shards, err)
			}
			wall := time.Since(start)
			row := MatrixTputRow{
				App:       app,
				K:         o.TputK,
				Shards:    shards,
				Ops:       cell.Delivered,
				Score:     cell.Score,
				WallMs:    float64(wall.Nanoseconds()) / 1e6,
				OpsPerSec: float64(cell.Delivered) / wall.Seconds(),
			}
			if base == 0 {
				base = row.WallMs
			}
			if row.WallMs > 0 {
				row.Speedup = base / row.WallMs
			}
			out.Tput = append(out.Tput, row)
		}
	}
	return out, nil
}

// FleetMatrix renders the artifact as a report for the experiment list.
func FleetMatrix(o MatrixOpts) (*Report, error) {
	mb, err := RunMatrixBench(o)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "matrix",
		Title:   fmt.Sprintf("fleet survival matrix (k=%d) + k=%d shard throughput", mb.K, o.TputK),
		Columns: []string{"app", "fault", "protected", "score", "forged", "detected", "survived"},
	}
	for _, c := range mb.Cells {
		rep.Rows = append(rep.Rows, []string{
			c.App, c.Fault, fmt.Sprintf("%v", c.Protected),
			fmt.Sprintf("%.2f", c.Score),
			fmt.Sprintf("%d", c.ForgedApplied),
			fmt.Sprintf("%d", c.Detected),
			fmt.Sprintf("%v", c.Survived),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d/%d cells survived; every protected cell applied zero forged operations", mb.Survived, mb.Total))
	for _, r := range mb.Tput {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"tput %-10s k=%d shards=%d: %6.0f ops/s over %7.1f ms wall (%.2fx vs 1 shard, score %.2f)",
			r.App, r.K, r.Shards, r.OpsPerSec, r.WallMs, r.Speedup, r.Score))
	}
	return rep, nil
}
