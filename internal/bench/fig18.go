package bench

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

// RegRWOpts parameterizes the register read/write measurements.
type RegRWOpts struct {
	// Requests per variant per operation.
	Requests int
}

// DefaultRegRWOpts matches the paper's sequential-request methodology.
func DefaultRegRWOpts() RegRWOpts { return RegRWOpts{Requests: 200} }

// regRWVariant measures one of the paper's three register-access variants.
type regRWVariant struct {
	label string
	read  func() (time.Duration, error)
	write func() (time.Duration, error)
}

func buildRegRWVariants() ([]regRWVariant, error) {
	mk := func(name string, insecure bool) (*deploy.Switch, *controller.Controller, error) {
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:     name,
			Ports:    4,
			Insecure: insecure,
			Registers: []*pisa.RegisterDef{
				{Name: "bench_reg", Width: 64, Entries: 1024},
			},
		})
		if err != nil {
			return nil, nil, err
		}
		c := controller.New(crypto.NewSeededRand(0xF18))
		if err := c.Register(name, sw.Host, sw.Cfg, 0); err != nil {
			return nil, nil, err
		}
		return sw, c, nil
	}

	// P4Runtime variant: the API stack. DP-Reg-RW: PacketOut without
	// digests. P4Auth: PacketOut with digests under an established key.
	_, apiCtrl, err := mk("api", true)
	if err != nil {
		return nil, err
	}
	_, dpCtrl, err := mk("dp", true)
	if err != nil {
		return nil, err
	}
	_, paCtrl, err := mk("pa", false)
	if err != nil {
		return nil, err
	}
	if _, err := paCtrl.LocalKeyInit("pa"); err != nil {
		return nil, err
	}

	var i uint32
	next := func() uint32 { i++; return i % 1024 }
	return []regRWVariant{
		{
			label: "P4Runtime",
			read: func() (time.Duration, error) {
				_, lat, err := apiCtrl.ReadRegisterAPI("api", "bench_reg", next())
				return lat, err
			},
			write: func() (time.Duration, error) {
				return apiCtrl.WriteRegisterAPI("api", "bench_reg", next(), 42)
			},
		},
		{
			label: "DP-Reg-RW",
			read: func() (time.Duration, error) {
				_, lat, err := dpCtrl.ReadRegisterInsecure("dp", "bench_reg", next())
				return lat, err
			},
			write: func() (time.Duration, error) {
				return dpCtrl.WriteRegisterInsecure("dp", "bench_reg", next(), 42)
			},
		},
		{
			label: "P4Auth",
			read: func() (time.Duration, error) {
				_, lat, err := paCtrl.ReadRegister("pa", "bench_reg", next())
				return lat, err
			},
			write: func() (time.Duration, error) {
				return paCtrl.WriteRegister("pa", "bench_reg", next(), 42)
			},
		},
	}, nil
}

func meanLatency(n int, op func() (time.Duration, error)) (time.Duration, error) {
	var total time.Duration
	for i := 0; i < n; i++ {
		lat, err := op()
		if err != nil {
			return 0, err
		}
		total += lat
	}
	return total / time.Duration(n), nil
}

// Fig18 regenerates Fig. 18: register read/write request completion time
// for the three variants.
func Fig18(opts RegRWOpts) (*Report, error) {
	variants, err := buildRegRWVariants()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "Fig 18",
		Title:   "Register read/write request completion time (RCT)",
		Columns: []string{"variant", "read RCT", "write RCT"},
	}
	for _, v := range variants {
		r, err := meanLatency(opts.Requests, v.read)
		if err != nil {
			return nil, err
		}
		w, err := meanLatency(opts.Requests, v.write)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{v.label, r.String(), w.String()})
	}
	rep.Notes = append(rep.Notes,
		"paper: P4Auth has minimal impact on RCT versus DP-Reg-RW")
	return rep, nil
}

// Fig19 regenerates Fig. 19: register read/write throughput.
func Fig19(opts RegRWOpts) (*Report, error) {
	variants, err := buildRegRWVariants()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "Fig 19",
		Title:   "Register read/write throughput (requests/s, sequential)",
		Columns: []string{"variant", "read tput", "write tput", "read/write"},
	}
	type tputs struct{ read, write float64 }
	all := map[string]tputs{}
	for _, v := range variants {
		r, err := meanLatency(opts.Requests, v.read)
		if err != nil {
			return nil, err
		}
		w, err := meanLatency(opts.Requests, v.write)
		if err != nil {
			return nil, err
		}
		tr := float64(time.Second) / float64(r)
		tw := float64(time.Second) / float64(w)
		all[v.label] = tputs{tr, tw}
		rep.Rows = append(rep.Rows, []string{
			v.label,
			fmt.Sprintf("%.0f/s", tr),
			fmt.Sprintf("%.0f/s", tw),
			fmt.Sprintf("%.2fx", tr/tw),
		})
	}
	dp, pa := all["DP-Reg-RW"], all["P4Auth"]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("P4Auth vs DP-Reg-RW: read %+.1f%%, write %+.1f%% (paper: -4.2%% and -2.1%%)",
			100*(pa.read-dp.read)/dp.read, 100*(pa.write-dp.write)/dp.write),
		fmt.Sprintf("P4Runtime read/write ratio %.2fx (paper: ~1.7x)",
			all["P4Runtime"].read/all["P4Runtime"].write),
	)
	return rep, nil
}
