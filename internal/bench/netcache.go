package bench

import (
	"fmt"

	"p4auth/internal/netcache"
)

// NetCacheExt runs the full-pipeline NetCache extension: unlike the
// Table I row (a harness-level model), this one serves hits from a real
// exact-match cache table, counts misses in an in-pipeline count-min
// sketch, and drives the controller's promote/clear loop over
// authenticated C-DP reads of the sketch rows and per-slot hit counters.
func NetCacheExt() (*Report, error) {
	const keySpace = 64
	candidates := make([]uint32, keySpace)
	for i := range candidates {
		candidates[i] = uint32(keySpace - 1 - i) // cold-first: ties favor the attacker
	}
	zipf := func(s *netcache.System, n int) error {
		for i := 0; i < n; {
			for k := uint32(0); k < keySpace && i < n; k++ {
				reps := keySpace / (int(k) + 1)
				for r := 0; r < reps && i < n; r++ {
					if _, err := s.Query(k); err != nil {
						return err
					}
					i++
				}
			}
		}
		return nil
	}

	run := func(secure, attacked bool) (*netcache.System, float64, error) {
		s, err := netcache.New(netcache.DefaultParams(secure))
		if err != nil {
			return nil, 0, err
		}
		if err := zipf(s, 1500); err != nil {
			return nil, 0, err
		}
		if err := s.UpdateEpoch(candidates); err != nil {
			return nil, 0, err
		}
		if attacked {
			if err := s.InstallStatDeflater(3); err != nil {
				return nil, 0, err
			}
		}
		if err := zipf(s, 1500); err != nil {
			return nil, 0, err
		}
		if err := s.UpdateEpoch(candidates); err != nil {
			return nil, 0, err
		}
		if err := s.ResetCounters(); err != nil {
			return nil, 0, err
		}
		if err := zipf(s, 1500); err != nil {
			return nil, 0, err
		}
		rate, err := s.HitRate()
		return s, rate, err
	}

	rep := &Report{
		ID:      "NetCache",
		Title:   "Full-pipeline NetCache: hit rate under statistics tampering (extension of Table I)",
		Columns: []string{"scenario", "hit rate", "skipped epochs", "alerts"},
	}
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"no adversary", true, false},
		{"with adversary", false, true},
		{"adversary + P4Auth", true, true},
	} {
		s, rate, err := run(arm.secure, arm.attacked)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			arm.label, pct(rate),
			fmt.Sprintf("%d", s.SkippedEpochs),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"the adversary deflates reported sketch/slot counters so hot keys look cold and get evicted",
		"with P4Auth the tampered epoch is skipped and the previous cache contents keep serving")
	return rep, nil
}
