package bench

import (
	"fmt"
	"time"

	"p4auth/internal/hierarchy"
)

// Hierarchical control-plane benchmark: cross-pod key-establishment
// latency through the global broker and aggregate authenticated write
// throughput across the pod tiers, at k=4 and k=8, with and without a
// WAN latency spike on every pod<->global link. All times are virtual:
// the WAN delay, the broker's retry budget, and the C-DP link latency
// are the modeled costs, so the numbers isolate protocol round trips,
// not host speed.

// HierarchyRow is one (pods, WAN condition) measurement.
type HierarchyRow struct {
	Pods       int  `json:"pods"`
	CrossLinks int  `json:"cross_links"`
	WANSpike   bool `json:"wan_spike"`
	// SpikeUs is the extra one-way WAN latency injected (0 when off).
	SpikeUs float64 `json:"spike_us"`
	// EstablishMsPerLink is the mean virtual time to establish one
	// cross-pod link: grant RPC + three-legged split exchange.
	EstablishMsPerLink float64 `json:"establish_ms_per_link"`
	EstablishMsTotal   float64 `json:"establish_ms_total"`
	// WritesPerSec is the aggregate authenticated intra-pod write rate
	// summed over every pod active (virtual time).
	WritesPerSec float64 `json:"writes_per_sec"`
	Grants       uint64  `json:"grants"`
}

// hierarchyBenchSeed fixes every nonce and key so the artifact is
// comparable across commits.
const hierarchyBenchSeed = 0x41E12A

// hierarchySpike is the injected one-way WAN latency for the "with
// injection" arms — large enough to show in the establishment numbers,
// small enough that every broker RPC still lands inside its per-try
// budget (so the rows measure latency, not retries).
const hierarchySpike = 300 * time.Microsecond

// hierarchyWrites is the per-pod authenticated write count of the
// throughput phase.
const hierarchyWrites = 256

// RunHierarchyBench measures one (pods, spike) arm.
func RunHierarchyBench(pods int, spike bool) (*HierarchyRow, error) {
	h, err := hierarchy.Build(hierarchy.Config{Seed: hierarchyBenchSeed, Pods: pods})
	if err != nil {
		return nil, fmt.Errorf("bench: hierarchy pods=%d: %w", pods, err)
	}
	if spike {
		for p := 0; p < pods; p++ {
			l := h.WANLink(p)
			a, b := l.Ends()
			for _, end := range []string{a, b} {
				if err := l.AddLatencySpike(end, 0, time.Hour, hierarchySpike); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := h.Bootstrap(); err != nil {
		return nil, err
	}

	t0 := h.Sim.Now()
	if err := h.EstablishAllCross(); err != nil {
		return nil, fmt.Errorf("bench: establish pods=%d spike=%v: %w", pods, spike, err)
	}
	est := h.Sim.Now() - t0
	nLinks := len(h.CrossLinks())

	// Aggregate write throughput: every pod active hammers its first edge
	// switch's demo register over the authenticated C-DP. Pods are
	// independent tiers serving concurrently, so the aggregate rate is
	// total writes over the slowest pod's modeled serial time (the same
	// wall-time convention as the sharded fleet bench).
	writes := 0
	var wall time.Duration
	for _, p := range h.Pods {
		act := p.Group.Active()
		if act == nil {
			return nil, fmt.Errorf("bench: pod %d lost its active mid-run", p.ID)
		}
		sw := fmt.Sprintf("e%d_0", p.ID)
		var podWall time.Duration
		for i := 0; i < hierarchyWrites; i++ {
			lat, err := act.Controller().WriteRegister(sw, "lat", uint32(i%8), uint64(i))
			if err != nil {
				return nil, fmt.Errorf("bench: pod %d write %d: %w", p.ID, i, err)
			}
			podWall += lat
			writes++
		}
		if podWall > wall {
			wall = podWall
		}
	}
	elapsed := wall

	row := &HierarchyRow{
		Pods:             pods,
		CrossLinks:       nLinks,
		WANSpike:         spike,
		EstablishMsTotal: float64(est) / float64(time.Millisecond),
		Grants:           h.Ob.Metrics.Counter("hier.grants").Load(),
	}
	if spike {
		row.SpikeUs = float64(hierarchySpike) / float64(time.Microsecond)
	}
	if nLinks > 0 {
		row.EstablishMsPerLink = row.EstablishMsTotal / float64(nLinks)
	}
	if elapsed > 0 {
		row.WritesPerSec = float64(writes) / elapsed.Seconds()
	}
	return row, nil
}

// hierarchyBenchRows measures the artifact's four arms.
func hierarchyBenchRows() ([]HierarchyRow, error) {
	var rows []HierarchyRow
	for _, pods := range []int{4, 8} {
		for _, spike := range []bool{false, true} {
			r, err := RunHierarchyBench(pods, spike)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *r)
		}
	}
	return rows, nil
}

// HierarchyBench regenerates the hierarchical control-plane report.
func HierarchyBench() (*Report, error) {
	rows, err := hierarchyBenchRows()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "Hierarchy",
		Title: "Two-tier control plane: cross-pod key establishment + aggregate pod writes (virtual time)",
		Columns: []string{
			"pods", "cross links", "wan spike", "establish/link", "establish total", "agg writes/s",
		},
		Notes: []string{
			"establish = fenced grant RPC + split exchange relayed through the global broker over the WAN star",
			"spike adds one-way WAN latency inside every RPC's per-try budget: pure latency, zero retries",
			"aggregate writes run on the intra-pod C-DP and are unaffected by WAN conditions",
		},
	}
	for _, r := range rows {
		spike := "off"
		if r.WANSpike {
			spike = fmt.Sprintf("+%.0fus", r.SpikeUs)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r.Pods),
			fmt.Sprintf("%d", r.CrossLinks),
			spike,
			fmt.Sprintf("%.2fms", r.EstablishMsPerLink),
			fmt.Sprintf("%.1fms", r.EstablishMsTotal),
			fmt.Sprintf("%.0f", r.WritesPerSec),
		})
	}
	return rep, nil
}
