package bench

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

// Pipelined Fig. 19 variant: authenticated write throughput through the
// windowed C-DP transport. The paper measures sequential requests —
// every write pays the switch agent's PacketIO dispatch and a full RTT.
// The batch engine amortizes that dispatch across a window of in-flight
// signed requests (one agent transaction carries the whole window), so
// throughput scales with the window until per-packet costs dominate.

// Fig19PipelinedOpts parameterizes the pipelined throughput measurement.
type Fig19PipelinedOpts struct {
	// Requests per window size.
	Requests int
	// Windows are the in-flight window sizes to sweep (1 reproduces the
	// serial behaviour through the batch engine).
	Windows []int
}

// DefaultFig19PipelinedOpts sweeps the window sizes of the headline
// claim: serial baseline, then 2..32 in octaves.
func DefaultFig19PipelinedOpts() Fig19PipelinedOpts {
	return Fig19PipelinedOpts{Requests: 512, Windows: []int{1, 2, 4, 8, 16, 32}}
}

// pipelinedFixture builds one P4Auth switch with an established local key
// for throughput runs.
func pipelinedFixture() (*controller.Controller, error) {
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:  "pa",
		Ports: 4,
		Registers: []*pisa.RegisterDef{
			{Name: "bench_reg", Width: 64, Entries: 1024},
		},
	})
	if err != nil {
		return nil, err
	}
	c := controller.New(crypto.NewSeededRand(0xF19))
	if err := c.Register("pa", sw.Host, sw.Cfg, 0); err != nil {
		return nil, err
	}
	if _, err := c.LocalKeyInit("pa"); err != nil {
		return nil, err
	}
	return c, nil
}

// pipelinedWriteTput measures authenticated write throughput (requests/s
// of modeled time) for one window size: requests go through the batch
// engine in window-sized batches, serial time through WriteRegister.
func pipelinedWriteTput(c *controller.Controller, requests, window int) (float64, error) {
	var total time.Duration
	if window <= 1 {
		for i := 0; i < requests; i++ {
			lat, err := c.WriteRegister("pa", "bench_reg", uint32(i%1024), uint64(i))
			if err != nil {
				return 0, err
			}
			total += lat
		}
	} else {
		writes := make([]controller.RegWrite, 0, window)
		for done := 0; done < requests; {
			writes = writes[:0]
			for len(writes) < window && done+len(writes) < requests {
				i := done + len(writes)
				writes = append(writes, controller.RegWrite{
					Register: "bench_reg", Index: uint32(i % 1024), Value: uint64(i),
				})
			}
			br, err := c.WriteRegisterBatch("pa", window, writes)
			if err != nil {
				return 0, err
			}
			total += br.Lat
			done += len(writes)
		}
	}
	if total <= 0 {
		return 0, fmt.Errorf("bench: non-positive total latency")
	}
	return float64(requests) * float64(time.Second) / float64(total), nil
}

// PipelinedSpeedup returns the throughput ratio of the windowed transport
// over the serial P4Auth write path for one window size.
func PipelinedSpeedup(requests, window int) (float64, error) {
	c, err := pipelinedFixture()
	if err != nil {
		return 0, err
	}
	serial, err := pipelinedWriteTput(c, requests, 1)
	if err != nil {
		return 0, err
	}
	piped, err := pipelinedWriteTput(c, requests, window)
	if err != nil {
		return 0, err
	}
	return piped / serial, nil
}

// Fig19Pipelined regenerates the pipelined variant of Fig. 19:
// authenticated write throughput versus in-flight window size, with the
// speedup over the serial baseline.
func Fig19Pipelined(opts Fig19PipelinedOpts) (*Report, error) {
	c, err := pipelinedFixture()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "Fig 19 (pipelined)",
		Title:   "Authenticated write throughput vs in-flight window",
		Columns: []string{"window", "write tput", "speedup"},
	}
	var serial float64
	for _, w := range opts.Windows {
		tput, err := pipelinedWriteTput(c, opts.Requests, w)
		if err != nil {
			return nil, err
		}
		if w <= 1 {
			serial = tput
		}
		speedup := "—"
		if serial > 0 {
			speedup = fmt.Sprintf("%.2fx", tput/serial)
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.0f/s", tput),
			speedup,
		})
	}
	rep.Notes = append(rep.Notes,
		"window 1 = serial P4Auth writes; the window amortizes the agent's per-transaction PacketIO dispatch",
		"acceptance bar: >= 3x at window 8 (see BENCH_*.json)",
	)
	return rep, nil
}
