package bench

import "testing"

// TestFleetShape exercises the fleet measurement end to end at a small
// scale: aggregate sharded throughput must beat the single-switch serial
// baseline (shards drain concurrently), the HA chaos run inside it must
// report a bounded failover, and the takeover must land at epoch 2
// (bootstrap grant + one promotion).
func TestFleetShape(t *testing.T) {
	o := FleetOpts{Switches: 8, Window: 8, WritesPerSwitch: 16}
	r, err := RunFleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Writes != o.Switches*o.WritesPerSwitch {
		t.Errorf("landed %d writes, want %d", r.Writes, o.Switches*o.WritesPerSwitch)
	}
	if r.Tput <= r.Serial {
		t.Errorf("fleet tput %.0f/s does not beat serial baseline %.0f/s", r.Tput, r.Serial)
	}
	if r.Failover <= 0 {
		t.Errorf("failover time %v, want > 0", r.Failover)
	}
	if r.FailoverEpoch != 2 {
		t.Errorf("failover epoch %d, want 2", r.FailoverEpoch)
	}

	rep, err := Fleet(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || len(rep.Rows[0]) != len(rep.Columns) {
		t.Fatalf("fleet report shape: %d rows, row0 %d cells, %d columns",
			len(rep.Rows), len(rep.Rows[0]), len(rep.Columns))
	}
	t.Logf("\n%s", rep)
}
