package bench

import (
	"fmt"

	"p4auth/internal/silkroad"
)

// SilkRoadExt runs the full-pipeline SilkRoad extension: a DIP-pool
// migration whose completion (transit-filter clear + window close) travels
// over C-DP, with the adversary suppressing it so fresh connections stay
// pinned to the retired pool.
func SilkRoadExt() (*Report, error) {
	run := func(secure, attacked bool) (*silkroad.System, float64, error) {
		s, err := silkroad.New(silkroad.DefaultParams(secure))
		if err != nil {
			return nil, 0, err
		}
		for c := uint32(1); c <= 20; c++ {
			if _, err := s.Packet(c, true); err != nil {
				return nil, 0, err
			}
		}
		if attacked {
			if err := s.InstallClearSuppressor(); err != nil {
				return nil, 0, err
			}
		}
		if err := s.BeginMigration(); err != nil {
			return nil, 0, err
		}
		for c := uint32(100); c < 120; c++ {
			if _, err := s.Packet(c, true); err != nil {
				return nil, 0, err
			}
		}
		if err := s.FinishMigration(); err != nil {
			return nil, 0, err
		}
		if err := s.ResetCounters(); err != nil {
			return nil, 0, err
		}
		for c := uint32(200); c < 300; c++ {
			if _, err := s.Packet(c, true); err != nil {
				return nil, 0, err
			}
		}
		old, new, err := s.Served()
		if err != nil {
			return nil, 0, err
		}
		return s, float64(old) / float64(old+new), nil
	}

	rep := &Report{
		ID:      "SilkRoad",
		Title:   "Full-pipeline SilkRoad: fresh connections on the retired DIP pool (extension of Table I)",
		Columns: []string{"scenario", "wrong-pool fraction", "tampered writes", "alerts"},
	}
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"no adversary", true, false},
		{"with adversary", false, true},
		{"adversary + P4Auth", true, true},
	} {
		s, frac, err := run(arm.secure, arm.attacked)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			arm.label, pct(frac),
			fmt.Sprintf("%d", s.TamperedWrites),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"the adversary rewrites the migration-completion writes (transit-filter clear, window close)",
		"with P4Auth the tampering is detected and the operator completes the migration via the quarantined path")
	return rep, nil
}
