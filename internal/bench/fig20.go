package bench

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
)

// Fig20Opts parameterizes the key-management RTT measurement.
type Fig20Opts struct {
	Samples int
	// CDPLat is the one-way controller-switch link latency.
	CDPLat time.Duration
	// DPDPLat is the one-way switch-switch link latency.
	DPDPLat time.Duration
}

// DefaultFig20Opts mirrors the paper's setup (local controller, directly
// attached switches).
func DefaultFig20Opts() Fig20Opts {
	return Fig20Opts{Samples: 30, CDPLat: 50 * time.Microsecond, DPDPLat: 5 * time.Microsecond}
}

// Fig20 regenerates Fig. 20: average key-management RTT for local/port key
// initialization and update.
func Fig20(opts Fig20Opts) (*Report, error) {
	build := func(name string) (*deploy.Switch, error) {
		return deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "r", Width: 32, Entries: 4},
			},
		})
	}
	s1, err := build("k1")
	if err != nil {
		return nil, err
	}
	s2, err := build("k2")
	if err != nil {
		return nil, err
	}
	c := controller.New(crypto.NewSeededRand(0xF20))
	if err := c.Register("k1", s1.Host, s1.Cfg, opts.CDPLat); err != nil {
		return nil, err
	}
	if err := c.Register("k2", s2.Host, s2.Cfg, opts.CDPLat); err != nil {
		return nil, err
	}
	if err := c.ConnectSwitches("k1", 1, "k2", 1, opts.DPDPLat); err != nil {
		return nil, err
	}

	sample := func(op func() (controller.KMPResult, error)) (time.Duration, int, int, error) {
		var total time.Duration
		var msgs, bytes int
		for i := 0; i < opts.Samples; i++ {
			res, err := op()
			if err != nil {
				return 0, 0, 0, err
			}
			total += res.RTT
			msgs, bytes = res.Messages, res.Bytes
		}
		return total / time.Duration(opts.Samples), msgs, bytes, nil
	}

	rep := &Report{
		ID:      "Fig 20",
		Title:   "Key management protocol RTT (mean over samples)",
		Columns: []string{"operation", "RTT", "messages", "bytes"},
	}

	type op struct {
		label string
		run   func() (controller.KMPResult, error)
	}
	// Prime keys once so updates are valid from the first sample.
	if _, err := c.LocalKeyInit("k1"); err != nil {
		return nil, err
	}
	if _, err := c.LocalKeyInit("k2"); err != nil {
		return nil, err
	}
	if _, err := c.PortKeyInit("k1", 1, "k2", 1); err != nil {
		return nil, err
	}
	for _, o := range []op{
		{"local key init (EAK+ADHKD)", func() (controller.KMPResult, error) { return c.LocalKeyInit("k1") }},
		{"local key update (ADHKD)", func() (controller.KMPResult, error) { return c.LocalKeyUpdate("k1") }},
		{"port key init (via controller)", func() (controller.KMPResult, error) { return c.PortKeyInit("k1", 1, "k2", 1) }},
		{"port key update (direct DP-DP)", func() (controller.KMPResult, error) { return c.PortKeyUpdate("k1", 1) }},
	} {
		rtt, msgs, bytes, err := sample(o.run)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", o.label, err)
		}
		rep.Rows = append(rep.Rows, []string{o.label, rtt.String(), fmt.Sprintf("%d", msgs), fmt.Sprintf("%d", bytes)})
	}
	rep.Notes = append(rep.Notes,
		"paper: 1-2 ms for key initialization, <1 ms for updates; port init longest (controller redirection)",
		"paper: port key update beats local key update (DP-DP legs are faster than C-DP)")
	return rep, nil
}
