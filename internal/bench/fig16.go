package bench

import (
	"fmt"
	"time"

	"p4auth/internal/routescout"
	"p4auth/internal/systems"
	"p4auth/internal/trace"
)

// TableI regenerates Table I as the measured impact of altering C-DP
// messages on the five in-network system classes, clean vs attacked vs
// protected.
func TableI() (*Report, error) {
	results, err := systems.RunAll()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "Table I",
		Title:   "Impact of altering C-DP update/report messages",
		Columns: []string{"System", "Impact metric", "clean", "attacked", "with P4Auth", "alerts"},
	}
	byKey := map[string]map[systems.Variant]systems.Result{}
	var order []string
	for _, r := range results {
		if byKey[r.System] == nil {
			byKey[r.System] = map[systems.Variant]systems.Result{}
			order = append(order, r.System)
		}
		byKey[r.System][r.Variant] = r
	}
	for _, sys := range order {
		v := byKey[sys]
		rep.Rows = append(rep.Rows, []string{
			sys, v[systems.Clean].Metric,
			pct(v[systems.Clean].Impact),
			pct(v[systems.Attacked].Impact),
			pct(v[systems.Protected].Impact),
			fmt.Sprintf("%d", v[systems.Protected].Alerts),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper's Table I is qualitative; these are the measured impacts of the same attack classes")
	return rep, nil
}

// Fig16Opts parameterizes the RouteScout experiment.
type Fig16Opts struct {
	Duration time.Duration
	Flows    float64
	Seed     uint64
}

// DefaultFig16Opts mirrors the paper's 60 s CAIDA replay at a virtual
// scale that completes quickly (the split converges within a second).
func DefaultFig16Opts() Fig16Opts {
	return Fig16Opts{Duration: 1500 * time.Millisecond, Flows: 800, Seed: 0xCA1DA}
}

// Fig16 regenerates Fig. 16: RouteScout's traffic distribution across two
// paths without an adversary, with a control-plane adversary, and with the
// adversary plus P4Auth.
func Fig16(opts Fig16Opts) (*Report, error) {
	tc := trace.DefaultConfig(uint64(opts.Duration))
	tc.FlowsPerSecond = opts.Flows
	tc.Seed = opts.Seed
	pkts := trace.Generate(tc)

	type arm struct {
		label  string
		mode   routescout.Mode
		attack bool
	}
	arms := []arm{
		{"no adversary", routescout.ModeInsecure, false},
		{"with adversary", routescout.ModeInsecure, true},
		{"adversary + P4Auth", routescout.ModeP4Auth, true},
	}
	rep := &Report{
		ID:      "Fig 16",
		Title:   "RouteScout traffic split (path1 = fast path)",
		Columns: []string{"scenario", "path1", "path2", "tampered reads", "alerts"},
	}
	for _, a := range arms {
		cfg := routescout.DefaultConfig(a.mode)
		s, err := routescout.New(cfg)
		if err != nil {
			return nil, err
		}
		if a.mode == routescout.ModeP4Auth {
			if _, err := s.Ctrl.LocalKeyInit("edge"); err != nil {
				return nil, err
			}
		}
		if a.attack {
			// The backdoor activates after RouteScout has converged (a
			// quarter into the run), as in the paper's scenario where an
			// established split is then manipulated.
			s.Net.Sim.At(opts.Duration/4, func() {
				_ = s.InstallLatencyInflater(20)
			})
		}
		p1, p2, err := s.Run(cfg, pkts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			a.label, pct(p1), pct(p2),
			fmt.Sprintf("%d", s.TamperedReads),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: adversary pushes ~70% to path2; P4Auth retains the original split and raises alerts")
	return rep, nil
}
