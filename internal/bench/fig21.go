package bench

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/hula"
	"p4auth/internal/pisa"
)

// Fig21Opts parameterizes the multi-hop probe traversal measurement.
type Fig21Opts struct {
	Hops      []int
	LinkDelay time.Duration
	// HarnessOverhead is the fixed probe generation + capture cost
	// (PacketOut/PacketIn through the measuring ToRs' control planes, PTF
	// style); identical in both arms.
	HarnessOverhead time.Duration
	Samples         int
}

// DefaultFig21Opts covers the paper's 2..10 hop sweep.
func DefaultFig21Opts() Fig21Opts {
	return Fig21Opts{
		Hops:            []int{2, 4, 6, 8, 10},
		LinkDelay:       5 * time.Microsecond,
		HarnessOverhead: 2140 * time.Microsecond,
		Samples:         10,
	}
}

// Fig21 regenerates Fig. 21: HULA probe traversal time versus hop count,
// with and without P4Auth (BMv2 target).
func Fig21(opts Fig21Opts) (*Report, error) {
	rep := &Report{
		ID:      "Fig 21",
		Title:   "In-network control message (HULA probe) traversal time vs hops (BMv2)",
		Columns: []string{"hops", "without P4Auth", "with P4Auth", "overhead"},
	}
	for _, hops := range opts.Hops {
		ins, err := probeTraversal(hops, false, opts)
		if err != nil {
			return nil, err
		}
		sec, err := probeTraversal(hops, true, opts)
		if err != nil {
			return nil, err
		}
		overhead := float64(sec-ins) / float64(ins)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", hops), ins.String(), sec.String(),
			fmt.Sprintf("+%.2f%%", 100*overhead),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: +0.95% at 2 hops growing to +5.9% at 10 hops; absolute overhead grows linearly with hops",
		fmt.Sprintf("traversal includes a fixed %v generation/capture harness cost, identical in both arms", opts.HarnessOverhead),
	)
	return rep, nil
}

func probeTraversal(hops int, secure bool, opts Fig21Opts) (time.Duration, error) {
	var total time.Duration
	for s := 0; s < opts.Samples; s++ {
		n, err := hula.NewChainNetwork(hops, secure, opts.LinkDelay)
		if err != nil {
			return 0, err
		}
		start := n.Net.Sim.Now()
		if err := n.InjectProbe(fmt.Sprintf("s%d", hops), uint16(hops)); err != nil {
			return 0, err
		}
		n.Net.Sim.Run()
		total += n.Net.Sim.Now() - start + opts.HarnessOverhead
	}
	return total / time.Duration(opts.Samples), nil
}

// TableIIIOpts parameterizes the scalability run.
type TableIIIOpts struct {
	// Switches (m) and Links (n) of the per-controller domain; the paper's
	// example WAN assigns 25 switches and 50 links to each of 8 ONOS
	// controllers.
	Switches, Links int
}

// DefaultTableIIIOpts uses the paper's per-controller figures.
func DefaultTableIIIOpts() TableIIIOpts { return TableIIIOpts{Switches: 25, Links: 50} }

// TableIII regenerates Table III: message and byte counts for simultaneous
// key initialization/update across a controller domain, measured against
// the paper's 4m+5n / 2m+3n closed forms.
func TableIII(opts TableIIIOpts) (*Report, error) {
	m, n := opts.Switches, opts.Links
	c := controller.New(crypto.NewSeededRand(0x7AB3))
	var sws []*deploy.Switch
	for i := 0; i < m; i++ {
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:  fmt.Sprintf("w%02d", i),
			Ports: 8,
			Registers: []*pisa.RegisterDef{
				{Name: "r", Width: 32, Entries: 2},
			},
			RandSeed: uint64(0x3000 + i),
		})
		if err != nil {
			return nil, err
		}
		sws = append(sws, sw)
		if err := c.Register(sw.Host.Name, sw.Host, sw.Cfg, 200*time.Microsecond); err != nil {
			return nil, err
		}
	}
	// n links: ring plus chords, assigning distinct ports per switch.
	nextPort := make([]int, m)
	for i := range nextPort {
		nextPort[i] = 1
	}
	added := 0
	for stride := 1; added < n && stride < m; stride++ {
		for i := 0; i < m && added < n; i++ {
			j := (i + stride) % m
			if nextPort[i] > 8 || nextPort[j] > 8 {
				continue
			}
			a, b := sws[i].Host.Name, sws[j].Host.Name
			if err := c.ConnectSwitches(a, nextPort[i], b, nextPort[j], 20*time.Microsecond); err != nil {
				return nil, err
			}
			nextPort[i]++
			nextPort[j]++
			added++
		}
	}
	if added != n {
		return nil, fmt.Errorf("bench: only placed %d of %d links (need more ports)", added, n)
	}

	init, err := c.InitAllKeys()
	if err != nil {
		return nil, err
	}
	upd, err := c.UpdateAllKeys()
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "Table III",
		Title:   fmt.Sprintf("KMP scalability: m=%d switches, n=%d links (one controller domain)", m, n),
		Columns: []string{"operation", "messages", "formula 4m+5n / 2m+3n", "bytes", "paper bytes", "serial time"},
		Rows: [][]string{
			{"key initialization", fmt.Sprintf("%d", init.Messages), fmt.Sprintf("%d", 4*m+5*n),
				fmt.Sprintf("%d", init.Bytes), "9.5KB", init.RTT.String()},
			{"key update", fmt.Sprintf("%d", upd.Messages), fmt.Sprintf("%d", 2*m+3*n),
				fmt.Sprintf("%d", upd.Bytes), "5.4KB", upd.RTT.String()},
		},
		Notes: []string{
			"paper: 350 messages / 9.5KB for init and 125 / 5.4KB for update at m=25, n=50",
			"the paper's printed 125 does not satisfy its own 2m+3n formula (=200 at m=25, n=50); its 5.4KB (=60m+78n) implies 200 messages, which we match exactly",
			"serial time is the sum of per-exchange RTTs; the paper notes parallel execution improves it significantly",
		},
	}
	return rep, nil
}
