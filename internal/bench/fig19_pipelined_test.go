package bench

import "testing"

// TestFig19PipelinedSpeedup is the tentpole acceptance bar: the windowed
// transport must deliver at least 3x the serial authenticated write
// throughput at a window of 8.
func TestFig19PipelinedSpeedup(t *testing.T) {
	n := 256
	if testing.Short() {
		n = 64
	}
	speedup, err := PipelinedSpeedup(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 3.0 {
		t.Fatalf("window-8 speedup %.2fx, want >= 3x", speedup)
	}
	t.Logf("window-8 speedup: %.2fx", speedup)
}

func TestFig19PipelinedReport(t *testing.T) {
	rep, err := Fig19Pipelined(Fig19PipelinedOpts{Requests: 64, Windows: []int{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	t.Logf("\n%s", rep)
}
