package bench

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/netsim/chaos"
	"p4auth/internal/pisa"
)

// Fleet-scale control-plane benchmark: aggregate authenticated write
// throughput of the sharded controller across a 64-switch fleet, plus
// the failover time of the lease-fenced active/standby pair under the
// deterministic HA chaos scenario. The single-switch serial and windowed
// numbers (Fig. 19 and its pipelined variant) measure one lane; this
// measures the whole highway — per-switch shard workers drain
// concurrently, so fleet wall time is the slowest shard, not the sum.

// FleetOpts parameterizes the fleet throughput measurement.
type FleetOpts struct {
	// Switches is the fleet size (default 64).
	Switches int
	// Window is the per-shard in-flight window (default 32).
	Window int
	// WritesPerSwitch is the load per shard (default 64).
	WritesPerSwitch int
}

// DefaultFleetOpts measures the headline configuration: 64 switches,
// window 32, 64 writes per switch.
func DefaultFleetOpts() FleetOpts {
	return FleetOpts{Switches: 64, Window: 32, WritesPerSwitch: 64}
}

// FleetResult is the numeric outcome of one fleet run.
type FleetResult struct {
	// Switches and Window echo the options.
	Switches, Window int
	// Writes is the total writes landed across the fleet.
	Writes int
	// Wall is the modeled fleet wall time (max shard latency).
	Wall time.Duration
	// Tput is the aggregate authenticated writes/s of modeled time.
	Tput float64
	// Serial is the single-switch serial baseline (Fig. 19 window 1).
	Serial float64
	// Failover is the virtual-time span from killing the active
	// controller mid-rollover to the standby serving the whole fleet
	// (lease expiry + warm restart), from the HA chaos harness.
	Failover time.Duration
	// FailoverEpoch is the fencing epoch after the takeover.
	FailoverEpoch uint64
}

// RunFleet measures aggregate sharded throughput and HA failover time.
func RunFleet(o FleetOpts) (*FleetResult, error) {
	if o.Switches == 0 {
		o = DefaultFleetOpts()
	}
	c := controller.New(crypto.NewSeededRand(0xF1EE7))
	var names []string
	for i := 0; i < o.Switches; i++ {
		name := fmt.Sprintf("b%02d", i)
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "bench_reg", Width: 64, Entries: 1024},
			},
		})
		if err != nil {
			return nil, err
		}
		if err := c.Register(name, sw.Host, sw.Cfg, 0); err != nil {
			return nil, err
		}
		if _, err := c.LocalKeyInit(name); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	ss, err := c.NewShardSet(names, o.Window)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		for k := 0; k < o.WritesPerSwitch; k++ {
			if err := ss.Submit(n, controller.RegWrite{
				Register: "bench_reg", Index: uint32(k % 1024), Value: uint64(k),
			}); err != nil {
				return nil, err
			}
		}
	}
	if err := ss.DrainParallel(); err != nil {
		return nil, fmt.Errorf("bench: fleet drain: %w", err)
	}
	tot, wall := ss.FleetTotals()
	if tot.Failed > 0 || tot.Landed != o.Switches*o.WritesPerSwitch {
		return nil, fmt.Errorf("bench: fleet landed %d/%d (failed %d)",
			tot.Landed, o.Switches*o.WritesPerSwitch, tot.Failed)
	}
	if wall <= 0 {
		return nil, fmt.Errorf("bench: non-positive fleet wall time")
	}
	res := &FleetResult{
		Switches: o.Switches,
		Window:   o.Window,
		Writes:   tot.Landed,
		Wall:     wall,
		Tput:     float64(tot.Landed) * float64(time.Second) / float64(wall),
	}

	// Single-switch serial baseline for the speedup claim.
	sc, err := pipelinedFixture()
	if err != nil {
		return nil, err
	}
	if res.Serial, err = pipelinedWriteTput(sc, 256, 1); err != nil {
		return nil, err
	}

	// Failover time from the deterministic HA chaos run: active killed
	// mid-rollover at fleet scale, standby promotes warm.
	ha, err := chaos.RunHA(chaos.HAOptions{
		Seed:     0xFA11,
		Scenario: chaos.HAKill,
		Switches: o.Switches,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: HA failover run: %w", err)
	}
	if len(ha.Violations) > 0 {
		return nil, fmt.Errorf("bench: HA failover run violated invariants: %s", ha.Violations[0])
	}
	res.Failover = ha.FailoverTime
	res.FailoverEpoch = ha.Epoch
	return res, nil
}

// Fleet regenerates the fleet-scale report: aggregate sharded throughput
// against the single-switch serial baseline, and the bounded failover.
func Fleet(opts FleetOpts) (*Report, error) {
	r, err := RunFleet(opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "Fleet",
		Title: "Sharded fleet throughput and lease-fenced failover",
		Columns: []string{
			"switches", "window", "fleet tput", "single-switch serial", "speedup", "failover",
		},
		Rows: [][]string{{
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.0f/s", r.Tput),
			fmt.Sprintf("%.0f/s", r.Serial),
			fmt.Sprintf("%.1fx", r.Tput/r.Serial),
			fmt.Sprintf("%v", r.Failover),
		}},
		Notes: []string{
			"fleet tput = landed writes / max shard wall time (shards drain concurrently)",
			"failover = virtual time from active kill mid-rollover to warm standby serving (HA chaos, kill-active)",
		},
	}
	return rep, nil
}
