package bench

import (
	"fmt"

	"p4auth/internal/core"
	"p4auth/internal/pisa"
)

// baselineL3 is the paper's evaluation base: destination-based layer-3
// port forwarding with two match-action tables (an LPM route table in TCAM
// and an exact next-hop table in SRAM) and one register.
func baselineL3() *pisa.Program {
	return &pisa.Program{
		Name: "l3fwd",
		Headers: []*pisa.HeaderDef{
			core.PTypeHeader(),
			{Name: "eth", Fields: []pisa.FieldDef{
				{Name: "dst", Width: 48},
				{Name: "src", Width: 48},
				{Name: "etype", Width: 16},
			}},
			{Name: "ipv4", Fields: []pisa.FieldDef{
				{Name: "ver_ihl", Width: 8},
				{Name: "dscp", Width: 8},
				{Name: "len", Width: 16},
				{Name: "id", Width: 16},
				{Name: "frag", Width: 16},
				{Name: "ttl", Width: 8},
				{Name: "proto", Width: 8},
				{Name: "csum", Width: 16},
				{Name: "src", Width: 32},
				{Name: "dst", Width: 32},
			}},
		},
		Metadata: []pisa.FieldDef{
			{Name: "nhop", Width: 16},
			{Name: "ecmp", Width: 16},
		},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{0x02: "eth"}},
			{Name: "eth", Extract: "eth", Select: pisa.F("eth", "etype"),
				Transitions: map[uint64]string{0x0800: "ipv4"}},
			{Name: "ipv4", Extract: "ipv4"},
		},
		DeparseOrder: []string{core.HdrPType, "eth", "ipv4"},
		Actions: []*pisa.Action{
			{Name: "set_nhop", Params: []pisa.FieldDef{{Name: "nhop", Width: 16}}, Body: []pisa.Op{
				pisa.Set(pisa.F(pisa.MetaHeader, "nhop"), pisa.R(pisa.F(pisa.ParamHeader, "nhop"))),
				pisa.Sub(pisa.F("ipv4", "ttl"), pisa.R(pisa.F("ipv4", "ttl")), pisa.C(1)),
			}},
			{Name: "fwd", Params: []pisa.FieldDef{
				{Name: "port", Width: 16},
				{Name: "dmac", Width: 48},
			}, Body: []pisa.Op{
				pisa.Set(pisa.F("eth", "dst"), pisa.R(pisa.F(pisa.ParamHeader, "dmac"))),
				pisa.Forward(pisa.R(pisa.F(pisa.ParamHeader, "port"))),
			}},
			{Name: "drop_pkt", Body: []pisa.Op{pisa.Drop()}},
		},
		Tables: []*pisa.Table{
			{Name: "routes", Keys: []pisa.TableKey{{Field: pisa.F("ipv4", "dst"), Match: pisa.MatchLPM}},
				Size: 3072, Actions: []string{"set_nhop", "drop_pkt"}, Default: "drop_pkt"},
			{Name: "nexthops", Keys: []pisa.TableKey{{Field: pisa.F(pisa.MetaHeader, "nhop"), Match: pisa.MatchExact}},
				Size: 32768, Actions: []string{"fwd", "drop_pkt"}, Default: "drop_pkt"},
		},
		Registers: []*pisa.RegisterDef{
			{Name: "l3_pkt_count", Width: 64, Entries: 4096},
		},
		Control: []pisa.Op{
			pisa.If(pisa.Valid("ipv4"), []pisa.Op{
				// ECMP selector over the flow 5-tuple surrogate.
				pisa.Hash(pisa.F(pisa.MetaHeader, "ecmp"), pisa.HashCRC32,
					pisa.R(pisa.F("ipv4", "src")), pisa.R(pisa.F("ipv4", "dst")), pisa.R(pisa.F("ipv4", "proto"))),
				pisa.Apply("routes"),
				pisa.Apply("nexthops"),
				pisa.RegRMW(pisa.F(pisa.MetaHeader, "nhop"), "l3_pkt_count", pisa.C(0), pisa.RMWAdd, pisa.C(1)),
			}),
		},
	}
}

// withP4Auth weaves P4Auth (at the given digest width) into the baseline.
func withP4Auth(words int) (*pisa.Program, error) {
	return withP4AuthOpts(words, false)
}

func withP4AuthOpts(words int, encrypt bool) (*pisa.Program, error) {
	prog := baselineL3()
	cfg := core.DefaultConfig(32, core.DigestCRC32)
	cfg.DigestWords = words
	cfg.Encrypt = encrypt
	err := core.AddToProgram(prog, cfg, core.Integration{
		Exposed: []string{"l3_pkt_count"},
	})
	return prog, err
}

// TableII regenerates Table II: Tofino resource utilization of the
// baseline L3 program versus baseline+P4Auth.
func TableII() (*Report, error) {
	profile := pisa.TofinoProfile()
	base, err := pisa.Compile(baselineL3(), profile)
	if err != nil {
		return nil, err
	}
	paProg, err := withP4Auth(1)
	if err != nil {
		return nil, err
	}
	pa, err := pisa.Compile(paProg, profile)
	if err != nil {
		return nil, err
	}
	encProg, err := withP4AuthOpts(1, true)
	if err != nil {
		return nil, err
	}
	enc, err := pisa.Compile(encProg, profile)
	if err != nil {
		return nil, err
	}
	bp := base.Usage.Percent(profile)
	pp := pa.Usage.Percent(profile)
	ep := enc.Usage.Percent(profile)
	rep := &Report{
		ID:      "Table II",
		Title:   "Hardware resource overhead (Tofino profile)",
		Columns: []string{"program", "TCAM", "SRAM", "Hash units", "PHV", "stages", "passes"},
		Rows: [][]string{
			{"Baseline", fmtPct(bp.TCAM), fmtPct(bp.SRAM), fmtPct(bp.Hash), fmtPct(bp.PHV),
				fmt.Sprintf("%d", base.Usage.Stages), fmt.Sprintf("%d", base.Usage.Passes)},
			{"With P4Auth", fmtPct(pp.TCAM), fmtPct(pp.SRAM), fmtPct(pp.Hash), fmtPct(pp.PHV),
				fmt.Sprintf("%d", pa.Usage.Stages), fmt.Sprintf("%d", pa.Usage.Passes)},
			{"+ §XI encryption", fmtPct(ep.TCAM), fmtPct(ep.SRAM), fmtPct(ep.Hash), fmtPct(ep.PHV),
				fmt.Sprintf("%d", enc.Usage.Stages), fmt.Sprintf("%d", enc.Usage.Passes)},
		},
		Notes: []string{
			"paper: TCAM 8.3->8.3%, SRAM 2.5->3.6%, Hash 1.4->51.4%, PHV 11->23.1%",
			"PHV here is conservative: the model does not overlay short-lived metadata as the vendor compiler does",
		},
	}
	return rep, nil
}

func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", x) }

// AblationDigest regenerates the §XI digest-width discussion: resource
// and stage growth as the digest widens from 32 to 256 bits. Compilation
// uses a capacity-relaxed profile so over-budget configurations still
// report usage; percentages are against the real Tofino capacities.
func AblationDigest() (*Report, error) {
	real := pisa.TofinoProfile()
	relaxed := real
	relaxed.HashBits *= 16
	relaxed.PHVBits *= 4
	relaxed.MaxPasses = 64

	rep := &Report{
		ID:      "Ablation",
		Title:   "Digest width vs data-plane resources (§XI)",
		Columns: []string{"digest", "hash bits", "hash % of Tofino", "stages", "passes", "fits Tofino"},
	}
	base := 0
	for _, words := range []int{1, 2, 4, 8} {
		prog, err := withP4Auth(words)
		if err != nil {
			return nil, err
		}
		c, err := pisa.Compile(prog, relaxed)
		if err != nil {
			return nil, err
		}
		if words == 1 {
			base = c.Usage.HashBits
		}
		_, fitErr := pisa.Compile(mustProg(withP4Auth(words)), real)
		fits := "yes"
		if fitErr != nil {
			fits = "no"
		}
		growth := ""
		if words > 1 && base > 0 {
			growth = fmt.Sprintf(" (+%.0f%%)", 100*float64(c.Usage.HashBits-base)/float64(base))
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d-bit", 32*words),
			fmt.Sprintf("%d%s", c.Usage.HashBits, growth),
			fmtPct(100 * float64(c.Usage.HashBits) / float64(real.HashBits)),
			fmt.Sprintf("%d", c.Usage.Stages),
			fmt.Sprintf("%d", c.Usage.Passes),
			fits,
		})
	}
	rep.Notes = append(rep.Notes,
		"paper (§XI): a 256-bit digest increases hash units by 560% and pipeline stages by 100% vs 32-bit")
	return rep, nil
}

func mustProg(p *pisa.Program, err error) *pisa.Program {
	if err != nil {
		panic(err)
	}
	return p
}
