package bench

import (
	"fmt"

	"p4auth/internal/blink"
	"p4auth/internal/flowradar"
	"p4auth/internal/netwarden"
)

// NetwardenExt runs the full-pipeline NetWarden extension: in-pipeline IPD
// jitter measurement, controller sweeps over C-DP, and the score-inflating
// adversary.
func NetwardenExt() (*Report, error) {
	const (
		conns     = 16
		covert    = 4
		threshold = 100_000
	)
	drive := func(s *netwarden.System, packets int, startNs uint64) ([]int, error) {
		forwarded := make([]int, conns)
		jit := []uint64{400_000, 2_600_000, 900_000, 1_800_000, 600_000}
		for i := 0; i < packets; i++ {
			for c := 0; c < conns; c++ {
				var at uint64
				if c < covert {
					at = startNs + uint64(i+1)*1_000_000
				} else {
					at = startNs + uint64(i)*1_500_000 + jit[(i+c)%len(jit)]
				}
				ok, err := s.Packet(uint16(c), at)
				if err != nil {
					return nil, err
				}
				if ok {
					forwarded[c]++
				}
			}
		}
		return forwarded, nil
	}
	run := func(secure, attacked bool) (*netwarden.System, int, error) {
		s, err := netwarden.New(netwarden.Params{Conns: conns, Secure: secure})
		if err != nil {
			return nil, 0, err
		}
		if _, err := drive(s, 30, 1_000_000); err != nil {
			return nil, 0, err
		}
		if attacked {
			if err := s.InstallScoreInflater(); err != nil {
				return nil, 0, err
			}
		}
		if err := s.Sweep(threshold); err != nil {
			return nil, 0, err
		}
		after, err := drive(s, 10, 500_000_000)
		if err != nil {
			return nil, 0, err
		}
		evaded := 0
		for c := 0; c < covert; c++ {
			if after[c] > 0 {
				evaded++
			}
		}
		return s, evaded, nil
	}
	rep := &Report{
		ID:      "NetWarden",
		Title:   "Full-pipeline NetWarden: covert timing channels evading detection (extension of Table I)",
		Columns: []string{"scenario", "covert evading", "tampered ops", "alerts"},
	}
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"no adversary", true, false},
		{"with adversary", false, true},
		{"adversary + P4Auth", true, true},
	} {
		s, evaded, err := run(arm.secure, arm.attacked)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			arm.label, fmt.Sprintf("%d/%d", evaded, covert),
			fmt.Sprintf("%d", s.TamperedOps),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"IPD jitter is measured in registers; the adversary inflates reported scores so regular (covert) flows look noisy")
	return rep, nil
}

// FlowRadarExt runs the full-pipeline FlowRadar extension: the encoded
// flowset (IBLT) lives in registers, the controller exports it over C-DP
// and decodes by peeling.
func FlowRadarExt() (*Report, error) {
	run := func(secure, attacked bool) (sys *flowradar.System, wrongFrac float64, decodeFailed bool, err error) {
		s, err := flowradar.New(flowradar.DefaultParams(secure))
		if err != nil {
			return nil, 0, false, err
		}
		truth := make(map[uint32]uint32)
		for f := uint32(1); f <= 150; f++ {
			pkts := f%13 + 1
			truth[f] = pkts
			for i := uint32(0); i < pkts; i++ {
				if err := s.Packet(f); err != nil {
					return nil, 0, false, err
				}
			}
		}
		if attacked {
			if err := s.InstallExportDeflater(); err != nil {
				return nil, 0, false, err
			}
		}
		decoded, err := s.Decode()
		if err != nil {
			return s, 1, true, nil
		}
		wrong := 0
		for f, want := range truth {
			if decoded[f] != want {
				wrong++
			}
		}
		return s, float64(wrong) / float64(len(truth)), false, nil
	}
	rep := &Report{
		ID:      "FlowRadar",
		Title:   "Full-pipeline FlowRadar: per-flow counts mis-decoded from the export (extension of Table I)",
		Columns: []string{"scenario", "mis-decoded flows", "decode", "tampered exports", "alerts"},
	}
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"no adversary", true, false},
		{"with adversary", false, true},
		{"adversary + P4Auth", true, true},
	} {
		s, frac, failed, err := run(arm.secure, arm.attacked)
		if err != nil {
			return nil, err
		}
		status := "ok"
		if failed {
			status = "FAILED"
		}
		rep.Rows = append(rep.Rows, []string{
			arm.label, pct(frac), status,
			fmt.Sprintf("%d", s.TamperedReads),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"the adversary halves exported packet counts; the peeling decode either fails or reports wrong counts",
		"with P4Auth the first tampered read triggers the quarantined driver export and the decode is exact")
	return rep, nil
}

// BlinkExt runs the full-pipeline Blink extension: data-plane fast reroute
// with the adversary rewriting next-hop list updates.
func BlinkExt() (*Report, error) {
	const (
		primary   = 2
		backup    = 3
		newBackup = 4
		blackhole = 9
	)
	run := func(secure, attacked bool) (*blink.System, int, error) {
		s, err := blink.New(blink.DefaultParams(secure), primary, backup)
		if err != nil {
			return nil, 0, err
		}
		if attacked {
			if err := s.InstallNexthopRewriter(blackhole); err != nil {
				return nil, 0, err
			}
		}
		if err := s.WriteNexthop(blink.RegBackup, 5, newBackup); err != nil {
			return nil, 0, err
		}
		for i := 0; i < blink.FailThreshold; i++ {
			if _, err := s.Packet(5, true); err != nil {
				return nil, 0, err
			}
		}
		port, err := s.Packet(5, false)
		return s, port, err
	}
	rep := &Report{
		ID:      "Blink",
		Title:   "Full-pipeline Blink: where rerouted traffic lands after a next-hop update (extension of Table I)",
		Columns: []string{"scenario", "reroute target", "expected", "tampered writes", "alerts"},
	}
	for _, arm := range []struct {
		label            string
		secure, attacked bool
	}{
		{"no adversary", true, false},
		{"with adversary", false, true},
		{"adversary + P4Auth", true, true},
	} {
		s, port, err := run(arm.secure, arm.attacked)
		if err != nil {
			return nil, err
		}
		expected := fmt.Sprintf("port %d", newBackup)
		if arm.attacked && !arm.secure {
			expected = fmt.Sprintf("blackhole %d", blackhole)
		}
		rep.Rows = append(rep.Rows, []string{
			arm.label, fmt.Sprintf("port %d", port), expected,
			fmt.Sprintf("%d", s.TamperedWrites),
			fmt.Sprintf("%d", len(s.Ctrl.Alerts())),
		})
	}
	rep.Notes = append(rep.Notes,
		"the reroute decision itself is data-plane-autonomous; the adversary poisons it by rewriting the C-DP next-hop updates")
	return rep, nil
}
