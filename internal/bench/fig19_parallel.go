package bench

import (
	"fmt"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/hula"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// Parallel Fig. 19 variant: authenticated throughput of the multi-core
// data plane. The C-DP transport (fig19_pipelined.go) funnels every
// request through the CPU port — one ingress lane by construction — so
// its ceiling is the software stack, not the pipeline. This sweep drives
// the path the paper's feasibility argument is actually about: DP-DP
// feedback (HULA probes) arriving on N network ports, each stream signed
// under its port key with its own ascending sequence numbers, verified
// and re-signed entirely in the pipeline. With per-port ingress workers
// (pisa.WithWorkers) the batch cost is the slowest lane, so modeled
// throughput scales with the worker count until lanes unbalance.

// Fig19ParallelOpts parameterizes the parallel ingress sweep.
type Fig19ParallelOpts struct {
	// Requests per (workers, window) cell.
	Requests int
	// Ports is the number of network ingress ports carrying probe streams.
	Ports int
	// Workers are the ingress worker counts to sweep.
	Workers []int
	// Windows are the batch sizes handed to NetworkPacketBatch.
	Windows []int
}

// DefaultFig19ParallelOpts sweeps workers 1/2/4/8 over the headline
// window (32) plus a small and a large window for the amortization shape.
func DefaultFig19ParallelOpts() Fig19ParallelOpts {
	return Fig19ParallelOpts{
		Requests: 2048,
		Ports:    8,
		Workers:  []int{1, 2, 4, 8},
		Windows:  []int{8, 32},
	}
}

// ParallelRow is one cell of the workers × window sweep.
type ParallelRow struct {
	Workers int     `json:"workers"`
	Window  int     `json:"window"`
	Tput    float64 `json:"probes_per_sec"`
	// SpeedupVsW1 is the lane-scaling ratio against workers=1 at the same
	// window.
	SpeedupVsW1 float64 `json:"speedup_vs_workers1"`
	// SpeedupVsFig19Serial is the ratio against the serial C-DP write
	// baseline (fig19 window 1) measured in the same run — the ISSUE's
	// 10x-at-window-32 acceptance bar reads off this column.
	SpeedupVsFig19Serial float64 `json:"speedup_vs_fig19_serial"`
}

// parallelFixture builds one secure HULA switch with `workers` ingress
// workers, per-port probe keys installed by trusted setup, and each
// ingress port flooding probes to one egress port (so every probe pays
// verification, best-path update, and egress re-signing).
func parallelFixture(workers, ports int) (*hula.Switch, []uint64, error) {
	p := hula.DefaultParams(1, ports)
	p.Workers = workers
	s, err := hula.NewSwitch(fmt.Sprintf("par-w%d", workers), p, 0xF19A)
	if err != nil {
		return nil, nil, err
	}
	keyRand := crypto.NewSeededRand(0xBEEF)
	keys := make([]uint64, ports+1)
	for port := 1; port <= ports; port++ {
		keys[port] = keyRand.Uint64()
		// Trusted setup: install the neighbor's ingress key directly, as
		// the fabric's key-repair path would over the C-DP channel.
		if err := s.Host.SW.RegisterWrite(core.RegKeysV0, port, keys[port]); err != nil {
			return nil, nil, err
		}
		out := port%ports + 1
		if err := s.SetProbeFlood(port, []int{out}); err != nil {
			return nil, nil, err
		}
	}
	return s, keys, nil
}

// parallelProbeStream pre-builds requests as signed probe packets,
// round-robin across ports 1..ports, with per-port ascending sequence
// numbers starting above base (each batch run must keep climbing past the
// replay floor the previous run left behind).
func parallelProbeStream(s *hula.Switch, keys []uint64, requests, ports int, base uint32) ([]pisa.Packet, uint32, error) {
	dig, err := s.Cfg.Digester()
	if err != nil {
		return nil, 0, err
	}
	pkts := make([]pisa.Packet, requests)
	seqs := make([]uint32, ports+1)
	for i := range seqs {
		seqs[i] = base
	}
	for i := 0; i < requests; i++ {
		port := i%ports + 1
		seqs[port]++
		body, err := hula.ProbePacket(uint16(i%64), false)
		if err != nil {
			return nil, 0, err
		}
		m := &core.Message{
			Header: core.Header{
				HdrType: core.HdrFeedback, MsgType: core.MsgProbe,
				SeqNum: seqs[port], KeyVersion: 0,
			},
			Aux: body[1:], // strip the insecure ptype tag; keep the probe body
		}
		if err := m.Sign(dig, keys[port]); err != nil {
			return nil, 0, err
		}
		data, err := m.Encode()
		if err != nil {
			return nil, 0, err
		}
		pkts[i] = pisa.Packet{Data: data, Port: port}
	}
	max := base
	for _, s := range seqs {
		if s > max {
			max = s
		}
	}
	return pkts, max, nil
}

// parallelProbeTput pushes the prepared stream through the batch ingress
// path in window-sized batches and returns modeled probes/s. Every probe
// must verify and flood (alerts surface as PacketIns, so any PacketIn
// means the fixture is wrong).
func parallelProbeTput(s *hula.Switch, pkts []pisa.Packet, window int) (float64, error) {
	var total time.Duration
	var io switchos.IOResult
	emitted := 0
	for off := 0; off < len(pkts); off += window {
		end := off + window
		if end > len(pkts) {
			end = len(pkts)
		}
		if err := s.Host.NetworkPacketBatchInto(pkts[off:end], &io); err != nil {
			return 0, err
		}
		if len(io.PacketIns) > 0 {
			return 0, fmt.Errorf("bench: probe batch raised %d alerts (bad fixture keys/seqs)", len(io.PacketIns))
		}
		emitted += len(io.NetOut)
		total += io.Cost
	}
	if emitted != len(pkts) {
		return 0, fmt.Errorf("bench: %d probes in, %d replicas out (probes dropped)", len(pkts), emitted)
	}
	if total <= 0 {
		return 0, fmt.Errorf("bench: non-positive total latency")
	}
	return float64(len(pkts)) * float64(time.Second) / float64(total), nil
}

// Fig19ParallelRows runs the workers × window sweep and returns the JSON
// rows. fig19Serial is the serial C-DP write throughput used as the
// cross-path baseline (pass 0 to omit that column).
func Fig19ParallelRows(opts Fig19ParallelOpts, fig19Serial float64) ([]ParallelRow, error) {
	var rows []ParallelRow
	w1 := make(map[int]float64) // window -> workers=1 tput
	for _, workers := range opts.Workers {
		s, keys, err := parallelFixture(workers, opts.Ports)
		if err != nil {
			return nil, err
		}
		base := uint32(0)
		for _, window := range opts.Windows {
			pkts, nextBase, err := parallelProbeStream(s, keys, opts.Requests, opts.Ports, base)
			if err != nil {
				return nil, err
			}
			base = nextBase
			tput, err := parallelProbeTput(s, pkts, window)
			if err != nil {
				return nil, err
			}
			if workers <= 1 {
				w1[window] = tput
			}
			row := ParallelRow{Workers: workers, Window: window, Tput: tput}
			if ref := w1[window]; ref > 0 {
				row.SpeedupVsW1 = tput / ref
			}
			if fig19Serial > 0 {
				row.SpeedupVsFig19Serial = tput / fig19Serial
			}
			rows = append(rows, row)
		}
		s.Host.SW.Close()
	}
	return rows, nil
}

// Fig19Parallel regenerates the parallel-ingress throughput report.
func Fig19Parallel(opts Fig19ParallelOpts) (*Report, error) {
	c, err := pipelinedFixture()
	if err != nil {
		return nil, err
	}
	serial, err := pipelinedWriteTput(c, 256, 1)
	if err != nil {
		return nil, err
	}
	rows, err := Fig19ParallelRows(opts, serial)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "Fig 19 (parallel)",
		Title:   "Authenticated DP-DP probe throughput vs ingress workers",
		Columns: []string{"workers", "window", "probe tput", "vs workers=1", "vs fig19 serial"},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.0f/s", r.Tput),
			fmt.Sprintf("%.2fx", r.SpeedupVsW1),
			fmt.Sprintf("%.0fx", r.SpeedupVsFig19Serial),
		})
	}
	rep.Notes = append(rep.Notes,
		"probes enter on 8 network ports, each stream signed under its port key; lanes = port mod workers",
		fmt.Sprintf("serial C-DP write baseline measured in-run: %.0f/s", serial),
		"acceptance bar: >= 10x vs fig19 serial at workers=8, window 32 (see BENCH_*-parallel.json)",
	)
	return rep, nil
}
