package bench

import (
	"fmt"
	"time"

	"p4auth/internal/netsim/chaos"
)

// N-replica controller-group failover benchmark: fleet takeover time
// under the deterministic group chaos harness at N=3 and N=5, measured
// from the first fault (active killed) to the final winner serving the
// whole fleet warm — through the rolling-kill scenario, so every number
// includes the worst case the group supports: each successor dying
// mid-promotion until only the last rank remains.

// GroupRow is one N-replica group failover measurement.
type GroupRow struct {
	Replicas       int     `json:"replicas"`
	Switches       int     `json:"switches"`
	Chained        int     `json:"chained_promotions"`
	WaitOuts       uint64  `json:"lease_waitouts"`
	FailoverMs     float64 `json:"failover_ms"`
	Epoch          uint64  `json:"final_epoch"`
	FencedAttempts uint64  `json:"fenced_attempts"`
}

// groupBenchSeed fixes the chaos schedule so the artifact is comparable
// across commits.
const groupBenchSeed = 0x6B0B

// RunGroupBench measures one rolling-kill group run at the given size.
func RunGroupBench(replicas, switches int) (*GroupRow, error) {
	res, err := chaos.RunGroup(chaos.GroupOptions{
		Seed:     groupBenchSeed,
		Scenario: chaos.GroupRollingKill,
		Replicas: replicas,
		Switches: switches,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: group run n=%d: %w", replicas, err)
	}
	if len(res.Violations) > 0 {
		return nil, fmt.Errorf("bench: group run n=%d violated invariants: %s", replicas, res.Violations[0])
	}
	return &GroupRow{
		Replicas:       res.Replicas,
		Switches:       res.Switches,
		Chained:        res.Chained,
		WaitOuts:       res.WaitOuts,
		FailoverMs:     float64(res.FailoverTime) / float64(time.Millisecond),
		Epoch:          res.Epoch,
		FencedAttempts: res.FencedAttempts,
	}, nil
}

// groupBenchRows measures the artifact's N=3 and N=5 rows.
func groupBenchRows() ([]GroupRow, error) {
	var rows []GroupRow
	for _, n := range []int{3, 5} {
		r, err := RunGroupBench(n, 16)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *r)
	}
	return rows, nil
}

// Group regenerates the N-replica failover report.
func Group() (*Report, error) {
	rows, err := groupBenchRows()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "Group",
		Title: "N-replica group failover under rolling kills (virtual time)",
		Columns: []string{
			"replicas", "switches", "chained", "wait-outs", "failover", "final epoch",
		},
		Notes: []string{
			"rolling-kill: active killed, then every successor mid-promotion; last rank finishes warm",
			"failover = first fault to final winner serving; each dead grant waited out in full (TTL is the detection bound)",
		},
	}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", r.Replicas),
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.Chained),
			fmt.Sprintf("%d", r.WaitOuts),
			fmt.Sprintf("%.1fms", r.FailoverMs),
			fmt.Sprintf("%d", r.Epoch),
		})
	}
	return rep, nil
}
