// Package bench regenerates every table and figure of the paper's
// evaluation (§IX) plus the §XI digest-width ablation. Each runner returns
// a Report that prints as an aligned text table; cmd/p4auth-bench exposes
// them on the command line and the repository-root benchmarks wrap them
// as testing.B benchmarks.
//
// Absolute times come from the virtual-clock cost model calibrated in
// internal/switchos and internal/pisa (documented there and in
// EXPERIMENTS.md); the reproduction target is the paper's shape — who
// wins, by what rough factor, and how trends move — not testbed-exact
// numbers.
package bench

import (
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner is a named experiment.
type Runner struct {
	ID  string
	Run func() (*Report, error)
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", func() (*Report, error) { return TableI() }},
		{"fig16", func() (*Report, error) { return Fig16(DefaultFig16Opts()) }},
		{"fig17", func() (*Report, error) { return Fig17(DefaultFig17Opts()) }},
		{"fig18", func() (*Report, error) { return Fig18(DefaultRegRWOpts()) }},
		{"fig19", func() (*Report, error) { return Fig19(DefaultRegRWOpts()) }},
		{"fig19p", func() (*Report, error) { return Fig19Pipelined(DefaultFig19PipelinedOpts()) }},
		{"fig19par", func() (*Report, error) { return Fig19Parallel(DefaultFig19ParallelOpts()) }},
		{"fleet", func() (*Report, error) { return Fleet(DefaultFleetOpts()) }},
		{"matrix", func() (*Report, error) { return FleetMatrix(DefaultMatrixOpts()) }},
		{"group", func() (*Report, error) { return Group() }},
		{"hierarchy", func() (*Report, error) { return HierarchyBench() }},
		{"table2", func() (*Report, error) { return TableII() }},
		{"fig20", func() (*Report, error) { return Fig20(DefaultFig20Opts()) }},
		{"fig21", func() (*Report, error) { return Fig21(DefaultFig21Opts()) }},
		{"table3", func() (*Report, error) { return TableIII(DefaultTableIIIOpts()) }},
		{"ablation", func() (*Report, error) { return AblationDigest() }},
		{"netcache", func() (*Report, error) { return NetCacheExt() }},
		{"silkroad", func() (*Report, error) { return SilkRoadExt() }},
		{"netwarden", func() (*Report, error) { return NetwardenExt() }},
		{"flowradar", func() (*Report, error) { return FlowRadarExt() }},
		{"blink", func() (*Report, error) { return BlinkExt() }},
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
