package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePct turns "72.2%" into 0.722.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("bad duration %q: %v", s, err)
	}
	return d
}

func TestReportFormatting(t *testing.T) {
	r := &Report{
		ID:      "X",
		Title:   "T",
		Columns: []string{"a", "bee"},
		Rows:    [][]string{{"1", "2"}, {"long-cell", "3"}},
		Notes:   []string{"n1"},
	}
	out := r.String()
	for _, want := range []string{"=== X: T ===", "long-cell", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableIShape(t *testing.T) {
	rep, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 systems", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		clean, attacked, protected := parsePct(t, row[2]), parsePct(t, row[3]), parsePct(t, row[4])
		if attacked <= clean {
			t.Errorf("%s: attacked %.2f <= clean %.2f", row[0], attacked, clean)
		}
		if protected > clean+0.05 {
			t.Errorf("%s: protected %.2f above clean %.2f", row[0], protected, clean)
		}
	}
}

func TestFig16Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	opts := DefaultFig16Opts()
	opts.Duration = 800 * time.Millisecond
	rep, err := Fig16(opts)
	if err != nil {
		t.Fatal(err)
	}
	clean1 := parsePct(t, rep.Rows[0][1])
	atk2 := parsePct(t, rep.Rows[1][2])
	prot1 := parsePct(t, rep.Rows[2][1])
	if clean1 < 0.55 {
		t.Errorf("clean path1 share %.2f, want fast-path majority", clean1)
	}
	if atk2 < 0.55 {
		t.Errorf("attacked path2 share %.2f, want diverted majority (paper ~70%%)", atk2)
	}
	if diff := prot1 - clean1; diff < -0.1 || diff > 0.1 {
		t.Errorf("P4Auth split %.2f deviates from clean %.2f", prot1, clean1)
	}
}

func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	opts := DefaultFig17Opts()
	opts.Duration = 80 * time.Millisecond
	rep, err := Fig17(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Clean roughly balanced.
	for col := 1; col <= 3; col++ {
		if s := parsePct(t, rep.Rows[0][col]); s < 0.2 || s > 0.5 {
			t.Errorf("clean share col %d = %.2f", col, s)
		}
	}
	if s4 := parsePct(t, rep.Rows[1][3]); s4 < 0.7 {
		t.Errorf("attacked S4 share %.2f, paper >70%%", s4)
	}
	if s4 := parsePct(t, rep.Rows[2][3]); s4 > 0.1 {
		t.Errorf("protected S4 share %.2f, want blocked", s4)
	}
}

func TestFig18Fig19Shape(t *testing.T) {
	opts := RegRWOpts{Requests: 50}
	rep18, err := Fig18(opts)
	if err != nil {
		t.Fatal(err)
	}
	var rct = map[string][2]time.Duration{}
	for _, row := range rep18.Rows {
		rct[row[0]] = [2]time.Duration{parseDur(t, row[1]), parseDur(t, row[2])}
	}
	// P4Runtime read clearly faster than its write (compose asymmetry).
	if r := float64(rct["P4Runtime"][1]) / float64(rct["P4Runtime"][0]); r < 1.4 || r > 2.0 {
		t.Errorf("P4Runtime write/read RCT ratio %.2f, want ~1.7", r)
	}
	// P4Auth within a few percent of DP-Reg-RW.
	over := float64(rct["P4Auth"][0])/float64(rct["DP-Reg-RW"][0]) - 1
	if over < 0 || over > 0.10 {
		t.Errorf("P4Auth read RCT overhead %.3f, want small positive", over)
	}
	// Writes comparable across all three (paper's observation).
	wMin, wMax := rct["P4Runtime"][1], rct["P4Runtime"][1]
	for _, v := range rct {
		if v[1] < wMin {
			wMin = v[1]
		}
		if v[1] > wMax {
			wMax = v[1]
		}
	}
	if float64(wMax)/float64(wMin) > 1.35 {
		t.Errorf("write RCT spread %.2fx, paper: not much difference", float64(wMax)/float64(wMin))
	}

	if _, err := Fig19(opts); err != nil {
		t.Fatal(err)
	}
}

func TestTableIIShape(t *testing.T) {
	rep, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	base, pa := rep.Rows[0], rep.Rows[1]
	if base[1] != pa[1] {
		t.Errorf("TCAM should be unchanged: %s vs %s", base[1], pa[1])
	}
	baseHash := parsePct(t, base[3])
	paHash := parsePct(t, pa[3])
	if baseHash > 0.05 {
		t.Errorf("baseline hash %.3f, want small", baseHash)
	}
	if paHash < 0.35 || paHash > 0.75 {
		t.Errorf("P4Auth hash %.3f, paper ~51%%", paHash)
	}
	if parsePct(t, pa[2]) <= parsePct(t, base[2]) {
		t.Error("SRAM must grow with P4Auth")
	}
	if parsePct(t, pa[4]) <= parsePct(t, base[4]) {
		t.Error("PHV must grow with P4Auth")
	}
}

func TestFig20Shape(t *testing.T) {
	opts := DefaultFig20Opts()
	opts.Samples = 5
	rep, err := Fig20(opts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(i int) time.Duration { return parseDur(t, rep.Rows[i][1]) }
	localInit, localUpd, portInit, portUpd := get(0), get(1), get(2), get(3)
	if !(portInit > localInit) {
		t.Errorf("port init %v should be the longest (vs local init %v)", portInit, localInit)
	}
	if !(localUpd < localInit) {
		t.Errorf("local update %v should beat local init %v", localUpd, localInit)
	}
	if !(portUpd < localUpd) {
		t.Errorf("port update %v should beat local update %v (paper)", portUpd, localUpd)
	}
	if localInit > 5*time.Millisecond || localInit < 100*time.Microsecond {
		t.Errorf("local init %v out of the paper's 1-2 ms regime", localInit)
	}
}

func TestFig21Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	opts := DefaultFig21Opts()
	opts.Samples = 2
	rep, err := Fig21(opts)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, row := range rep.Rows {
		ov, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[3], "+"), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if ov <= prev {
			t.Errorf("row %d: overhead %.2f%% not increasing (prev %.2f%%)", i, ov, prev)
		}
		prev = ov
		if ov > 8 {
			t.Errorf("row %d: overhead %.2f%% out of the paper's small regime", i, ov)
		}
	}
	if prev < 2 {
		t.Errorf("10-hop overhead %.2f%%, want a few percent", prev)
	}
}

func TestTableIIIShape(t *testing.T) {
	opts := TableIIIOpts{Switches: 6, Links: 9}
	rep, err := TableIII(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Messages must match the closed forms exactly.
	if rep.Rows[0][1] != rep.Rows[0][2] {
		t.Errorf("init messages %s != formula %s", rep.Rows[0][1], rep.Rows[0][2])
	}
	if rep.Rows[1][1] != rep.Rows[1][2] {
		t.Errorf("update messages %s != formula %s", rep.Rows[1][1], rep.Rows[1][2])
	}
}

func TestAblationShape(t *testing.T) {
	rep, err := AblationDigest()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][5] != "yes" {
		t.Error("32-bit digest must fit Tofino")
	}
	if rep.Rows[3][5] != "no" {
		t.Error("256-bit digest must not fit Tofino")
	}
	// Stage growth at 256-bit should be >= 2x (paper: +100%).
	s32, _ := strconv.Atoi(rep.Rows[0][3])
	s256, _ := strconv.Atoi(rep.Rows[3][3])
	if s256 < 2*s32 {
		t.Errorf("stages %d -> %d, want at least 2x", s32, s256)
	}
	// Hash growth ~ +560%.
	if !strings.Contains(rep.Rows[3][1], "+5") {
		t.Errorf("256-bit hash growth = %q, want ~+560%%", rep.Rows[3][1])
	}
}

func TestAllRunnersListed(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if ids[r.ID] {
			t.Errorf("duplicate runner %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"table1", "fig16", "fig17", "fig18", "fig19", "table2", "fig20", "fig21", "table3", "ablation", "netcache", "silkroad", "netwarden", "flowradar", "blink", "fleet"} {
		if !ids[want] {
			t.Errorf("missing runner %s", want)
		}
	}
}

func TestNetCacheExtShape(t *testing.T) {
	rep, err := NetCacheExt()
	if err != nil {
		t.Fatal(err)
	}
	clean := parsePct(t, rep.Rows[0][1])
	attacked := parsePct(t, rep.Rows[1][1])
	protected := parsePct(t, rep.Rows[2][1])
	if clean < 0.45 {
		t.Errorf("clean hit rate %.2f", clean)
	}
	if attacked > clean/2 {
		t.Errorf("attacked hit rate %.2f vs clean %.2f", attacked, clean)
	}
	if protected < clean-0.1 {
		t.Errorf("protected hit rate %.2f collapsed from clean %.2f", protected, clean)
	}
}

func TestSilkRoadExtShape(t *testing.T) {
	rep, err := SilkRoadExt()
	if err != nil {
		t.Fatal(err)
	}
	if parsePct(t, rep.Rows[0][1]) != 0 {
		t.Errorf("clean wrong-pool fraction %s", rep.Rows[0][1])
	}
	if parsePct(t, rep.Rows[1][1]) < 0.95 {
		t.Errorf("attacked wrong-pool fraction %s, want ~100%%", rep.Rows[1][1])
	}
	if parsePct(t, rep.Rows[2][1]) != 0 {
		t.Errorf("protected wrong-pool fraction %s", rep.Rows[2][1])
	}
}

func TestExtensionRunnersShape(t *testing.T) {
	for _, run := range []func() (*Report, error){NetwardenExt, FlowRadarExt, BlinkExt} {
		rep, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) != 3 {
			t.Fatalf("%s: %d rows", rep.ID, len(rep.Rows))
		}
		// Protected arms always detect something and alert.
		last := rep.Rows[2]
		if last[len(last)-1] == "0" || last[len(last)-2] == "0" {
			t.Errorf("%s protected arm: no detection (%v)", rep.ID, last)
		}
		// Clean arms never alert.
		if rep.Rows[0][len(rep.Rows[0])-1] != "0" {
			t.Errorf("%s clean arm alerted: %v", rep.ID, rep.Rows[0])
		}
	}
}
