package bench

import (
	"fmt"
	"time"

	"p4auth/internal/hula"
)

// Fig17Opts parameterizes the HULA experiment.
type Fig17Opts struct {
	Duration    time.Duration
	ProbeEvery  time.Duration
	PacketEvery time.Duration
}

// DefaultFig17Opts completes in a few hundred virtual milliseconds — the
// distribution stabilizes well before the paper's 60 s.
func DefaultFig17Opts() Fig17Opts {
	return Fig17Opts{
		Duration:    120 * time.Millisecond,
		ProbeEvery:  200 * time.Microsecond,
		PacketEvery: 20 * time.Microsecond,
	}
}

// Fig17 regenerates Fig. 17: HULA's traffic distribution across the three
// S1->S5 paths under (clean / MitM on the S4-S1 link / MitM + P4Auth).
func Fig17(opts Fig17Opts) (*Report, error) {
	rep := &Report{
		ID:      "Fig 17",
		Title:   "HULA traffic split across S1-S2 / S1-S3 / S1-S4 (MitM forges probeUtil on S4-S1)",
		Columns: []string{"scenario", "via S2", "via S3", "via S4", "alerts@S1"},
	}
	type arm struct {
		label    string
		secure   bool
		attacked bool
	}
	for _, a := range []arm{
		{"no adversary", true, false},
		{"with MitM adversary", false, true},
		{"MitM + P4Auth", true, true},
	} {
		shares, alerts, err := runFig17Arm(a.secure, a.attacked, opts)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			a.label, pct(shares["s2"]), pct(shares["s3"]), pct(shares["s4"]),
			fmt.Sprintf("%d", alerts),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: adversary pulls >70% onto the compromised S1-S4 link; P4Auth drops forged probes and blocks it")
	return rep, nil
}

func runFig17Arm(secure, attacked bool, opts Fig17Opts) (map[string]float64, int, error) {
	n, err := hula.NewFig3Network(secure, 1e9, 5*time.Microsecond)
	if err != nil {
		return nil, 0, err
	}
	if attacked {
		l := n.Net.LinkBetween("s1", "s4")
		if err := l.SetTap("s1", hula.ForgeUtilTap(secure, 7)); err != nil {
			return nil, 0, err
		}
	}
	n.ScheduleProbes("s5", 5, opts.ProbeEvery, opts.Duration)
	n.ScheduleProbes("s1", 1, opts.ProbeEvery, opts.Duration)
	var pkt uint64
	var sendErr error
	for at := 2 * time.Millisecond; at < opts.Duration; at += opts.PacketEvery {
		at := at
		n.Net.Sim.At(at, func() {
			flow := uint32(pkt / 8)
			pkt++
			if err := n.SendData("s1", 5, flow, 1000); err != nil && sendErr == nil {
				sendErr = err
			}
			if err := n.SendData("s5", 1, 0x8000_0000|flow, 1000); err != nil && sendErr == nil {
				sendErr = err
			}
			for i, mid := range []string{"s2", "s3", "s4"} {
				_ = n.SendData(mid, 5, uint32(0x4000_0000+i), 600)
				_ = n.SendData(mid, 1, uint32(0x2000_0000+i), 600)
			}
		})
	}
	n.Net.Sim.Run()
	if sendErr != nil {
		return nil, 0, sendErr
	}
	shares, err := n.PathShares("s1", []string{"s2", "s3", "s4"})
	if err != nil {
		return nil, 0, err
	}
	return shares, n.Switches["s1"].Alerts, nil
}
