// Package routescout simulates RouteScout (Apostolaki et al., SOSR 2021),
// the ISP-edge performance-aware routing system of the paper's Fig. 2 and
// Fig. 16. The data plane splits outgoing traffic across two provider
// paths according to a split ratio held in a register and aggregates
// per-path latency statistics; the controller periodically pulls the
// aggregates over C-DP, recomputes the split (more traffic to the faster
// path), and writes it back.
//
// The paper implements RouteScout as a software simulation too (its source
// is unavailable); the edge switch here is a real pisa pipeline, while the
// in-data-plane passive latency estimation is modeled by the harness
// feeding observed per-path delays into the latency registers through the
// driver — inside the chip's trust boundary, which is exactly where the
// paper's threat model places it. The attack surface is the C-DP
// read/write path, which runs through the full untrusted switch stack.
package routescout

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/netsim"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
	"p4auth/internal/trace"
)

// Register names.
const (
	RegSplit  = "rs_split"   // 0..256 scale: share of traffic on path 1
	RegLatSum = "rs_lat_sum" // per-path latency sums (µs), index = path-1
	RegLatCnt = "rs_lat_cnt" // per-path sample counts
)

// Data-plane header.
const HdrData = "rsdata"

// Mode selects how the controller talks to the switch.
type Mode int

// Modes: the three variants of §IX-B.
const (
	// ModeP4Auth uses authenticated PacketOut register access.
	ModeP4Auth Mode = iota + 1
	// ModeInsecure uses unauthenticated PacketOut access (DP-Reg-RW).
	ModeInsecure
	// ModeAPI uses the P4Runtime API stack.
	ModeAPI
)

// System is a running RouteScout deployment: one edge switch, two paths,
// a sink, and the controller loop.
type System struct {
	Net    *netsim.Network
	Ctrl   *controller.Controller
	Switch *deploy.Switch
	Mode   Mode
	name   string
	node   *deploy.SwitchNode

	// Split is the current split (0..256 for path 1).
	Split uint64
	// TamperedReads counts reads the controller rejected.
	TamperedReads int
	// Epochs counts completed controller epochs.
	Epochs int

	// per-path delivered byte counters (measured at the sink).
	pathBytes [2]uint64
	// latency accumulators pending flush into DP registers.
	latSumUs [2]uint64
	latCnt   [2]uint64
}

// Config for the experiment.
type Config struct {
	Mode Mode
	// Path delays (path 2 slower by default).
	Path1Delay, Path2Delay time.Duration
	// EpochLen is the controller polling period.
	EpochLen time.Duration
	// InitialSplit is the starting share for path 1 (0..256).
	InitialSplit uint64
	// Name identifies the switch at its controller; empty means the
	// historical "edge". Fleet deployments run one instance per pod and
	// need distinct names.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (c Config) name() string {
	if c.Name == "" {
		return "edge"
	}
	return c.Name
}

// DefaultConfig mirrors Fig. 2: path 1 is the better path.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:         mode,
		Path1Delay:   2 * time.Millisecond,
		Path2Delay:   6 * time.Millisecond,
		EpochLen:     50 * time.Millisecond,
		InitialSplit: 128,
	}
}

func dataDef() *pisa.HeaderDef {
	return &pisa.HeaderDef{Name: HdrData, Fields: []pisa.FieldDef{
		{Name: "flow", Width: 32},
		{Name: "ts", Width: 48},
		{Name: "path", Width: 8},
	}}
}

// buildProgram creates the RouteScout edge data plane: split-based path
// selection plus the stat registers, with P4Auth woven in unless insecure.
func buildProgram(insecure bool) (*pisa.Program, core.Config, error) {
	prog := &pisa.Program{
		Name:    "routescout",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), dataDef()},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{0xD0: "rs_data"}},
			{Name: "rs_data", Extract: HdrData},
		},
		DeparseOrder: []string{core.HdrPType, HdrData},
		Metadata: []pisa.FieldDef{
			{Name: "rs_h", Width: 32},
			{Name: "rs_split_v", Width: 32},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegSplit, Width: 32, Entries: 1},
			{Name: RegLatSum, Width: 64, Entries: 2},
			{Name: RegLatCnt, Width: 32, Entries: 2},
		},
		Control: []pisa.Op{
			pisa.If(pisa.Valid(HdrData), []pisa.Op{
				pisa.Hash(pisa.F(pisa.MetaHeader, "rs_h"), pisa.HashCRC32, pisa.R(pisa.F(HdrData, "flow"))),
				pisa.And(pisa.F(pisa.MetaHeader, "rs_h"), pisa.R(pisa.F(pisa.MetaHeader, "rs_h")), pisa.C(0xFF)),
				pisa.RegRead(pisa.F(pisa.MetaHeader, "rs_split_v"), RegSplit, pisa.C(0)),
				pisa.If(pisa.Lt(pisa.R(pisa.F(pisa.MetaHeader, "rs_h")), pisa.R(pisa.F(pisa.MetaHeader, "rs_split_v"))),
					[]pisa.Op{
						pisa.Set(pisa.F(HdrData, "path"), pisa.C(1)),
						pisa.Forward(pisa.C(1)),
					},
					[]pisa.Op{
						pisa.Set(pisa.F(HdrData, "path"), pisa.C(2)),
						pisa.Forward(pisa.C(2)),
					}),
			}),
		},
	}
	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Insecure = insecure
	err := core.AddToProgram(prog, cfg, core.Integration{
		Exposed: []string{RegSplit, RegLatSum, RegLatCnt},
	})
	return prog, cfg, err
}

// New assembles the system.
func New(c Config) (*System, error) {
	prog, cfg, err := buildProgram(c.Mode == ModeInsecure)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0x2005C0+c.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	info := switchos.NewHost(c.name(), sw, switchos.DefaultCosts())
	if err := core.InstallRegMap(sw, info.Info, []string{RegSplit, RegLatSum, RegLatCnt}); err != nil {
		return nil, err
	}

	s := &System{
		Net:    netsim.NewNetwork(),
		Ctrl:   controller.New(crypto.NewSeededRand(0x2005C1+c.Seed)),
		Switch: &deploy.Switch{Host: info, Cfg: cfg},
		Mode:   c.Mode,
		name:   c.name(),
		Split:  c.InitialSplit,
	}
	if err := s.Ctrl.Register(c.name(), info, cfg, 100*time.Microsecond); err != nil {
		return nil, err
	}
	if err := sw.RegisterWrite(RegSplit, 0, c.InitialSplit); err != nil {
		return nil, err
	}

	s.node = &deploy.SwitchNode{Host: info}
	s.Net.AddNode(c.name(), s.node)
	s.Net.AddNode("sink", netsim.HandlerFunc(func(net *netsim.Network, _ *netsim.Node, _ int, data []byte) {
		s.onDeliver(net, data)
	}))
	s.Net.MustConnect(c.name(), 1, "sink", 1, c.Path1Delay, 0)
	s.Net.MustConnect(c.name(), 2, "sink", 2, c.Path2Delay, 0)
	return s, nil
}

var rsDataDef = dataDef()

// onDeliver measures per-path latency at the far end and accumulates it
// for the next flush into the data-plane registers.
func (s *System) onDeliver(net *netsim.Network, data []byte) {
	if len(data) < 1 || data[0] != 0xD0 {
		return
	}
	vals, err := pisa.UnpackHeader(rsDataDef, data[1:])
	if err != nil {
		return
	}
	sent := time.Duration(vals[1])
	path := int(vals[2])
	if path < 1 || path > 2 {
		return
	}
	lat := net.Sim.Now() - sent
	s.pathBytes[path-1] += uint64(len(data))
	s.latSumUs[path-1] += uint64(lat / time.Microsecond)
	s.latCnt[path-1]++
}

// flushStats writes the accumulated passive latency estimates into the
// data-plane registers (the in-chip estimation path; trusted).
func (s *System) flushStats() error {
	for p := 0; p < 2; p++ {
		if err := s.Switch.Host.SW.RegisterWrite(RegLatSum, p, s.latSumUs[p]); err != nil {
			return err
		}
		if err := s.Switch.Host.SW.RegisterWrite(RegLatCnt, p, s.latCnt[p]); err != nil {
			return err
		}
	}
	return nil
}

func (s *System) readReg(name string, index uint32) (uint64, error) {
	switch s.Mode {
	case ModeP4Auth:
		v, _, err := s.Ctrl.ReadRegister(s.name, name, index)
		return v, err
	case ModeInsecure:
		v, _, err := s.Ctrl.ReadRegisterInsecure(s.name, name, index)
		return v, err
	case ModeAPI:
		v, _, err := s.Ctrl.ReadRegisterAPI(s.name, name, index)
		return v, err
	}
	return 0, fmt.Errorf("routescout: unknown mode %d", int(s.Mode))
}

func (s *System) writeReg(name string, index uint32, v uint64) error {
	switch s.Mode {
	case ModeP4Auth:
		_, err := s.Ctrl.WriteRegister(s.name, name, index, v)
		return err
	case ModeInsecure:
		_, err := s.Ctrl.WriteRegisterInsecure(s.name, name, index, v)
		return err
	case ModeAPI:
		_, err := s.Ctrl.WriteRegisterAPI(s.name, name, index, v)
		return err
	}
	return fmt.Errorf("routescout: unknown mode %d", int(s.Mode))
}

// epoch runs one controller cycle: pull stats, recompute the split, push
// it. On a detected tamper it keeps the current split and alerts (the
// paper's Fig. 16 "with P4Auth" behaviour).
func (s *System) epoch() error {
	if err := s.flushStats(); err != nil {
		return err
	}
	var avg [2]float64
	for p := 0; p < 2; p++ {
		sum, err := s.readReg(RegLatSum, uint32(p))
		if err != nil {
			if errors.Is(err, controller.ErrTampered) {
				s.TamperedReads++
				return nil // refrain from changing the split
			}
			return err
		}
		cnt, err := s.readReg(RegLatCnt, uint32(p))
		if err != nil {
			if errors.Is(err, controller.ErrTampered) {
				s.TamperedReads++
				return nil
			}
			return err
		}
		if cnt == 0 {
			return nil // no samples yet
		}
		avg[p] = float64(sum) / float64(cnt)
	}
	// Inverse-latency proportional split: faster path gets more.
	w1 := avg[1] / (avg[0] + avg[1])
	split := uint64(w1 * 256)
	if split > 256 {
		split = 256
	}
	s.Split = split
	if err := s.writeReg(RegSplit, 0, split); err != nil {
		if errors.Is(err, controller.ErrTampered) {
			s.TamperedReads++
			return nil
		}
		return err
	}
	s.Epochs++
	return nil
}

// Run replays the trace for the duration with the controller polling each
// epoch, returning the per-path byte shares (Fig. 16's metric).
func (s *System) Run(cfg Config, pkts []trace.Packet) (share1, share2 float64, err error) {
	node := s.Net.Node(s.name)
	// Schedule relative to the current virtual time: a fresh system starts
	// at zero (historical behaviour), while a resumed system — e.g. after a
	// mid-run controller kill and recovery — replays the remaining trace
	// from now instead of racing stale absolute timestamps.
	start := s.Net.Sim.Now()
	for _, p := range pkts {
		p := p
		s.Net.Sim.At(start+time.Duration(p.AtNs), func() {
			hdr, perr := pisa.PackHeader(rsDataDef, []uint64{uint64(p.Flow), uint64(s.Net.Sim.Now()), 0})
			if perr != nil {
				return
			}
			pkt := append([]byte{0xD0}, hdr...)
			pkt = append(pkt, make([]byte, p.Size)...)
			s.node.Inject(s.Net, node, 3, pkt) // host-facing port
		})
	}
	var lastErr error
	var tick func()
	at := start + cfg.EpochLen
	tick = func() {
		if err := s.epoch(); err != nil {
			lastErr = err
			return
		}
		at += cfg.EpochLen
		s.Net.Sim.At(at, tick)
	}
	s.Net.Sim.At(at, tick)
	end := start + time.Duration(pkts[len(pkts)-1].AtNs) + 100*time.Millisecond
	s.Net.Sim.RunUntil(end)
	if lastErr != nil {
		return 0, 0, lastErr
	}
	total := float64(s.pathBytes[0] + s.pathBytes[1])
	if total == 0 {
		return 0, 0, fmt.Errorf("routescout: no traffic delivered")
	}
	return float64(s.pathBytes[0]) / total, float64(s.pathBytes[1]) / total, nil
}

// InstallLatencyInflater installs the paper's Fig. 2 adversary: a
// control-plane MitM that inflates path 1's reported latency sum in read
// responses so the controller diverts traffic to path 2.
func (s *System) InstallLatencyInflater(factor uint64) error {
	mitm := &CtrlMitM{Factor: factor, Host: s.Switch.Host}
	return mitm.Install()
}

// CtrlMitM is the RouteScout-specific control-plane adversary.
type CtrlMitM struct {
	Factor uint64
	Host   *switchos.Host
}

// Install places the interposition hook. It rewrites read responses for
// the path-1 latency sum (register index 0).
func (c *CtrlMitM) Install() error {
	info := c.Host.Info
	ri, err := info.RegisterByName(RegLatSum)
	if err != nil {
		return err
	}
	return c.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		// API-stack reads.
		OnRegResult: func(op *switchos.RegOp, value *uint64) {
			if op.ID == ri.ID && op.Index == 0 {
				*value *= c.Factor
			}
		},
		// PacketIn (DP-Reg-RW / P4Auth) reads.
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.HdrType != core.HdrRegister {
				return data
			}
			if m.Reg.RegID == ri.ID && m.Reg.Index == 0 && m.MsgType == core.MsgAck {
				m.Reg.Value *= c.Factor
				out, eerr := m.Encode()
				if eerr != nil {
					return data
				}
				return out
			}
			return data
		},
	})
}
