package routescout

import (
	"testing"
	"time"

	"p4auth/internal/trace"
)

func testTrace() []trace.Packet {
	cfg := trace.DefaultConfig(uint64(800 * time.Millisecond))
	cfg.FlowsPerSecond = 800
	cfg.Seed = 42
	return trace.Generate(cfg)
}

func run(t *testing.T, mode Mode, attack bool) (*System, float64, float64) {
	t.Helper()
	cfg := DefaultConfig(mode)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mode == ModeP4Auth {
		if _, err := s.Ctrl.LocalKeyInit("edge"); err != nil {
			t.Fatal(err)
		}
	}
	if attack {
		if err := s.InstallLatencyInflater(20); err != nil {
			t.Fatal(err)
		}
	}
	p1, p2, err := s.Run(cfg, testTrace())
	if err != nil {
		t.Fatal(err)
	}
	return s, p1, p2
}

func TestCleanSplitFavorsFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	s, p1, p2 := run(t, ModeInsecure, false)
	// Path 1 (2 ms) should end up carrying clearly more than path 2 (6 ms).
	if p1 <= p2 {
		t.Errorf("clean run: path1 %.2f <= path2 %.2f; fast path should win", p1, p2)
	}
	if s.Epochs == 0 {
		t.Error("controller never completed an epoch")
	}
	// The converged split register should be biased to path 1 (latency
	// ratio 6:2 -> w1 = 0.75 -> split ~192).
	if s.Split < 150 {
		t.Errorf("converged split = %d, want >= 150 of 256", s.Split)
	}
}

func TestAdversaryDivertsTrafficWithoutP4Auth(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	// The MitM inflates path 1's reported latency 20x; the controller
	// diverts most traffic to the genuinely slower path 2 (Fig. 16 center
	// bars: ~70% on path 2).
	s, _, p2 := run(t, ModeInsecure, true)
	if p2 < 0.60 {
		t.Errorf("attacked baseline: path2 got %.1f%%, paper reports ~70%%", 100*p2)
	}
	if s.Split > 100 {
		t.Errorf("attacked split register = %d, expected pushed toward path 2", s.Split)
	}
}

func TestP4AuthPreservesSplitUnderAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	s, p1, p2 := run(t, ModeP4Auth, true)
	// The controller detects every tampered read, refrains from changing
	// the split, and keeps favoring the fast path via the initial 50/50
	// then... the initial split stays at 128 (50/50) since every epoch is
	// rejected.
	if s.TamperedReads == 0 {
		t.Fatal("no tampered reads detected")
	}
	if s.Epochs != 0 {
		t.Errorf("epochs completed under attack: %d (split should be frozen)", s.Epochs)
	}
	// Frozen at the initial 50/50: neither path collapses.
	if p1 < 0.35 || p2 < 0.35 {
		t.Errorf("protected split drifted: p1=%.2f p2=%.2f, want ~0.5 each", p1, p2)
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts collected")
	}
}

func TestP4AuthCleanConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	s, p1, p2 := run(t, ModeP4Auth, false)
	if p1 <= p2 {
		t.Errorf("P4Auth clean run: path1 %.2f <= path2 %.2f", p1, p2)
	}
	if s.TamperedReads != 0 {
		t.Errorf("clean run flagged %d tampered reads", s.TamperedReads)
	}
}

func TestAPIModeWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	s, p1, p2 := run(t, ModeAPI, false)
	if p1 <= p2 {
		t.Errorf("API mode: path1 %.2f <= path2 %.2f", p1, p2)
	}
	_ = s
}

func TestAPIModeVulnerable(t *testing.T) {
	if testing.Short() {
		t.Skip("virtual-time run")
	}
	// TLS on the controller channel does not help below the agent: the
	// API stack is interposed just the same (§I).
	_, _, p2 := run(t, ModeAPI, true)
	if p2 < 0.60 {
		t.Errorf("attacked API baseline: path2 got %.1f%%", 100*p2)
	}
}
