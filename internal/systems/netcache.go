package systems

import (
	"p4auth/internal/pisa"
)

// RunNetCache models NetCache's hot-key maintenance (Table I, in-network
// cache row): query-frequency counters live in data-plane sketch
// registers; the controller periodically reads them, promotes the hottest
// keys into the cache, and clears the counters. The adversary rewrites the
// reported counts so hot keys look cold (and vice versa), evicting the
// truly hot keys — "inflates time to retrieve the hot key value". Impact:
// 1 - cache hit rate over the subsequent query mix.
func RunNetCache(variant Variant) (Result, error) {
	const (
		keys      = 64
		cacheSize = 8
		queries   = 4096
	)
	atk := &attackState{
		rewriteValue: func(reg string, index uint32, value uint64, down bool) (uint64, bool) {
			// Invert hotness on report: hot counters deflated, cold
			// inflated.
			if reg == "nc_count" && !down {
				if value >= 100 {
					return 1, true
				}
				return 1000 + uint64(index), true
			}
			return 0, false
		},
	}
	r, err := newRig("netcache", variant, []*pisa.RegisterDef{
		{Name: "nc_count", Width: 32, Entries: keys},
	}, atk)
	if err != nil {
		return Result{}, err
	}

	// Zipf-ish query mix: key k gets ~N/(k+1) queries; the sketch counts
	// accumulate in-chip.
	demand := make([]int, keys)
	total := 0
	for k := 0; k < keys; k++ {
		demand[k] = queries / (k + 1)
		total += demand[k]
		if err := r.sw.Host.SW.RegisterWrite("nc_count", k, uint64(demand[k])); err != nil {
			return Result{}, err
		}
	}

	// Controller sweep: read counters, pick the top-cacheSize keys.
	counts := make([]uint64, keys)
	for k := 0; k < keys; k++ {
		v, err := r.read(variant, "nc_count", uint32(k))
		if err != nil {
			if !isTampered(err) {
				return Result{}, err
			}
			v, err = r.sw.Host.SW.RegisterRead("nc_count", k)
			if err != nil {
				return Result{}, err
			}
		}
		counts[k] = v
	}
	cached := make(map[int]bool, cacheSize)
	for n := 0; n < cacheSize; n++ {
		best, bestV := -1, uint64(0)
		for k := 0; k < keys; k++ {
			if cached[k] {
				continue
			}
			if counts[k] >= bestV {
				best, bestV = k, counts[k]
			}
		}
		cached[best] = true
	}

	// Hit rate over the same demand distribution.
	hits := 0
	for k := 0; k < keys; k++ {
		if cached[k] {
			hits += demand[k]
		}
	}
	hitRate := float64(hits) / float64(total)
	return Result{
		System:  "NetCache",
		Variant: variant,
		Impact:  1 - hitRate,
		Metric:  "cache miss rate (hot-key retrieval inflation)",
		Alerts:  len(r.ctrl.Alerts()),
	}, nil
}
