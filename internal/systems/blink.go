package systems

import (
	"p4auth/internal/pisa"
)

// RunBlink models Blink's fast-reroute state (Table I, FRR row): the
// controller maintains a per-prefix next-hop list in data-plane registers;
// on failure of the primary next hop it promotes the backup. The adversary
// rewrites the C-DP update so the register ends up pointing at a next hop
// of the attacker's choosing (a blackhole), poisoning the reroute
// decision. Impact: fraction of prefixes whose traffic lands on the wrong
// next hop after the reroute wave.
func RunBlink(variant Variant) (Result, error) {
	const (
		prefixes  = 64
		primary   = 2
		backup    = 3
		blackhole = 9
	)
	atk := &attackState{
		rewriteValue: func(reg string, index uint32, value uint64, down bool) (uint64, bool) {
			if reg == "blink_nhop" && down {
				return blackhole, true
			}
			return 0, false
		},
	}
	r, err := newRig("blink", variant, []*pisa.RegisterDef{
		{Name: "blink_nhop", Width: 16, Entries: prefixes},
	}, atk)
	if err != nil {
		return Result{}, err
	}

	// Install the primary next hop for every prefix (clean boot: direct
	// driver writes, inside the chip).
	for i := 0; i < prefixes; i++ {
		if err := r.sw.Host.SW.RegisterWrite("blink_nhop", i, primary); err != nil {
			return Result{}, err
		}
	}

	// Failure wave: the controller reroutes every prefix to the backup via
	// C-DP writes — the attacked path.
	for i := 0; i < prefixes; i++ {
		err := r.write(variant, "blink_nhop", uint32(i), backup)
		if err != nil && !isTampered(err) {
			return Result{}, err
		}
		// On detection the controller retries over a quarantined path —
		// modeled as a direct driver write after isolating the backdoor
		// (the paper: operator isolates the suspicious switch).
		if err != nil && isTampered(err) {
			if werr := r.sw.Host.SW.RegisterWrite("blink_nhop", i, backup); werr != nil {
				return Result{}, werr
			}
		}
	}

	// Measure where traffic would go.
	wrong := 0
	for i := 0; i < prefixes; i++ {
		v, err := r.sw.Host.SW.RegisterRead("blink_nhop", i)
		if err != nil {
			return Result{}, err
		}
		if v != backup {
			wrong++
		}
	}
	return Result{
		System:  "Blink (FRR)",
		Variant: variant,
		Impact:  float64(wrong) / prefixes,
		Metric:  "prefixes misrouted after reroute",
		Alerts:  len(r.ctrl.Alerts()),
	}, nil
}
