package systems

import (
	"p4auth/internal/pisa"
)

// RunNetwarden models Netwarden's covert-channel mitigation (Table I,
// IDS/IPS row): the data plane records inter-packet-delay (IPD) statistics
// for suspicious connections; the controller reads them, classifies
// timing-channel connections (high IPD regularity score), and writes the
// verdict back so the data plane normalizes/blocks them. The adversary
// rewrites the reported IPD scores so covert connections classify as
// benign — "evasion of malicious traffic detection". Impact: fraction of
// covert connections that evade.
func RunNetwarden(variant Variant) (Result, error) {
	const (
		conns     = 32
		covertSet = 8 // first 8 connections are covert channels
		threshold = 800
	)
	atk := &attackState{
		rewriteValue: func(reg string, index uint32, value uint64, down bool) (uint64, bool) {
			// Deflate reported scores on the way UP so covert traffic
			// looks benign.
			if reg == "nw_ipd_score" && !down && value >= threshold {
				return threshold / 2, true
			}
			return 0, false
		},
	}
	r, err := newRig("netwarden", variant, []*pisa.RegisterDef{
		{Name: "nw_ipd_score", Width: 32, Entries: conns},
		{Name: "nw_verdict", Width: 8, Entries: conns},
	}, atk)
	if err != nil {
		return Result{}, err
	}

	// The data plane's passive IPD measurement (in-chip, trusted): covert
	// channels show high regularity scores.
	for i := 0; i < conns; i++ {
		score := uint64(100 + i*7)
		if i < covertSet {
			score = 900 + uint64(i*13)
		}
		if err := r.sw.Host.SW.RegisterWrite("nw_ipd_score", i, score); err != nil {
			return Result{}, err
		}
	}

	// Controller sweep: read scores, write verdicts.
	evaded := 0
	for i := 0; i < conns; i++ {
		score, err := r.read(variant, "nw_ipd_score", uint32(i))
		if err != nil {
			if !isTampered(err) {
				return Result{}, err
			}
			// Detected: re-read through the quarantined path.
			score, err = r.sw.Host.SW.RegisterRead("nw_ipd_score", i)
			if err != nil {
				return Result{}, err
			}
		}
		verdict := uint64(0)
		if score >= threshold {
			verdict = 1 // block/normalize
		}
		if err := r.write(variant, "nw_verdict", uint32(i), verdict); err != nil {
			if !isTampered(err) {
				return Result{}, err
			}
			if werr := r.sw.Host.SW.RegisterWrite("nw_verdict", i, verdict); werr != nil {
				return Result{}, werr
			}
		}
	}
	for i := 0; i < covertSet; i++ {
		v, err := r.sw.Host.SW.RegisterRead("nw_verdict", i)
		if err != nil {
			return Result{}, err
		}
		if v == 0 {
			evaded++
		}
	}
	return Result{
		System:  "Netwarden (IDS)",
		Variant: variant,
		Impact:  float64(evaded) / covertSet,
		Metric:  "covert connections evading detection",
		Alerts:  len(r.ctrl.Alerts()),
	}, nil
}
