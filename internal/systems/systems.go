// Package systems implements miniature versions of the five in-network
// system classes of Table I — fast reroute (Blink), load balancing
// (SilkRoad), intrusion detection (Netwarden), in-network caching
// (NetCache), and measurement (FlowRadar) — each with the C-DP
// update/report messages the paper's adversary targets, an attack that
// alters them at the switch software stack, and the P4Auth-protected
// variant.
//
// Each system's controller loop and register plumbing is fully real (the
// attack surface); the surrounding traffic behaviour is a compact
// deterministic model sufficient to quantify the Table I impact column.
package systems

import (
	"errors"
	"fmt"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// Variant selects the experimental arm.
type Variant int

// Experiment arms.
const (
	Clean Variant = iota + 1
	Attacked
	Protected // attacked + P4Auth
)

func (v Variant) String() string {
	switch v {
	case Clean:
		return "clean"
	case Attacked:
		return "attacked"
	case Protected:
		return "protected"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Result is one system's outcome under one variant.
type Result struct {
	System  string
	Variant Variant
	// Impact is the system-specific damage metric in [0,1]; 0 = intact.
	Impact float64
	// Metric names the impact dimension (Table I's right column).
	Metric string
	// Alerts raised (only nonzero under Protected).
	Alerts int
}

// rig is the shared deployment: one switch with the system's registers,
// a controller, and optionally the MitM.
type rig struct {
	sw   *deploy.Switch
	ctrl *controller.Controller
	mitm *attackState
}

type attackState struct {
	rewriteValue func(reg string, index uint32, value uint64, toDataPlane bool) (uint64, bool)
}

func newRig(name string, variant Variant, regs []*pisa.RegisterDef, atk *attackState) (*rig, error) {
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:      name,
		Ports:     4,
		Insecure:  variant != Protected,
		Registers: regs,
		RandSeed:  0x5157 + uint64(variant),
	})
	if err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0xC7 + uint64(variant)))
	if err := ctrl.Register(name, sw.Host, sw.Cfg, 0); err != nil {
		return nil, err
	}
	r := &rig{sw: sw, ctrl: ctrl}
	if variant == Protected {
		if _, err := ctrl.LocalKeyInit(name); err != nil {
			return nil, err
		}
	}
	if variant != Clean && atk != nil {
		r.mitm = atk
		if err := r.installMitM(atk); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// installMitM interposes on P4Auth/DP-Reg-RW PacketOut and PacketIn
// traffic, rewriting register values per the attack function.
func (r *rig) installMitM(atk *attackState) error {
	rewrite := func(data []byte, down bool) []byte {
		m, err := core.DecodeMessage(data)
		if err != nil || m.Reg == nil || m.HdrType != core.HdrRegister {
			return data
		}
		name := r.regName(m.Reg.RegID)
		if name == "" {
			return data
		}
		nv, hit := atk.rewriteValue(name, m.Reg.Index, m.Reg.Value, down)
		if !hit {
			return data
		}
		m.Reg.Value = nv
		out, err := m.Encode()
		if err != nil {
			return data
		}
		return out
	}
	return r.sw.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte { return rewrite(data, true) },
		OnPacketIn:  func(data []byte) []byte { return rewrite(data, false) },
	})
}

func (r *rig) regName(id uint32) string {
	for _, ri := range r.sw.Host.Info.Registers {
		if ri.ID == id {
			return ri.Name
		}
	}
	return ""
}

// read/write route through the mode matching the variant; on tamper
// detection the controller behaviour (skip the update) is applied by the
// caller.
func (r *rig) read(variant Variant, name string, index uint32) (uint64, error) {
	if variant == Protected {
		v, _, err := r.ctrl.ReadRegister(r.name(), name, index)
		return v, err
	}
	v, _, err := r.ctrl.ReadRegisterInsecure(r.name(), name, index)
	return v, err
}

func (r *rig) write(variant Variant, name string, index uint32, v uint64) error {
	if variant == Protected {
		_, err := r.ctrl.WriteRegister(r.name(), name, index, v)
		return err
	}
	_, err := r.ctrl.WriteRegisterInsecure(r.name(), name, index, v)
	return err
}

func (r *rig) name() string { return r.sw.Host.Name }

func isTampered(err error) bool { return errors.Is(err, controller.ErrTampered) }

// RunAll executes every system under every variant.
func RunAll() ([]Result, error) {
	runners := []func(Variant) (Result, error){
		RunBlink, RunSilkRoad, RunNetwarden, RunNetCache, RunFlowRadar,
	}
	var out []Result
	for _, run := range runners {
		for _, v := range []Variant{Clean, Attacked, Protected} {
			res, err := run(v)
			if err != nil {
				return nil, err
			}
			out = append(out, res)
		}
	}
	return out, nil
}
