package systems

import (
	"p4auth/internal/pisa"
)

// RunFlowRadar models FlowRadar/LossRadar's periodic export (Table I,
// measurement row): the data plane encodes per-flow packet counters and
// periodically exports them to the controller, which decodes them and
// diffs upstream/downstream counts to localize loss. The adversary
// rewrites the exported counters, poisoning the loss analysis. Impact:
// mean relative error of the controller's per-flow loss estimates.
func RunFlowRadar(variant Variant) (Result, error) {
	const flows = 48
	atk := &attackState{
		rewriteValue: func(reg string, index uint32, value uint64, down bool) (uint64, bool) {
			// Hide loss: make downstream counts match upstream.
			if reg == "fr_down" && !down {
				return value + value/4, true
			}
			return 0, false
		},
	}
	r, err := newRig("flowradar", variant, []*pisa.RegisterDef{
		{Name: "fr_up", Width: 32, Entries: flows},
		{Name: "fr_down", Width: 32, Entries: flows},
	}, atk)
	if err != nil {
		return Result{}, err
	}

	// Ground truth: every flow sent `up` packets; 20% are lost downstream.
	trueLoss := make([]uint64, flows)
	for f := 0; f < flows; f++ {
		up := uint64(1000 + f*10)
		loss := up / 5
		trueLoss[f] = loss
		if err := r.sw.Host.SW.RegisterWrite("fr_up", f, up); err != nil {
			return Result{}, err
		}
		if err := r.sw.Host.SW.RegisterWrite("fr_down", f, up-loss); err != nil {
			return Result{}, err
		}
	}

	// Export sweep.
	var errSum float64
	for f := 0; f < flows; f++ {
		up, err := r.read(variant, "fr_up", uint32(f))
		if err != nil {
			if !isTampered(err) {
				return Result{}, err
			}
			up, err = r.sw.Host.SW.RegisterRead("fr_up", f)
			if err != nil {
				return Result{}, err
			}
		}
		down, err := r.read(variant, "fr_down", uint32(f))
		if err != nil {
			if !isTampered(err) {
				return Result{}, err
			}
			down, err = r.sw.Host.SW.RegisterRead("fr_down", f)
			if err != nil {
				return Result{}, err
			}
		}
		var estLoss uint64
		if up > down {
			estLoss = up - down
		}
		diff := float64(estLoss) - float64(trueLoss[f])
		if diff < 0 {
			diff = -diff
		}
		errSum += diff / float64(trueLoss[f])
	}
	meanErr := errSum / flows
	if meanErr > 1 {
		meanErr = 1
	}
	return Result{
		System:  "FlowRadar (measurement)",
		Variant: variant,
		Impact:  meanErr,
		Metric:  "mean relative error of loss estimates",
		Alerts:  len(r.ctrl.Alerts()),
	}, nil
}
