package systems

import "testing"

func TestAllSystemsImpactPattern(t *testing.T) {
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d results, want 5 systems x 3 variants", len(results))
	}
	byKey := make(map[string]map[Variant]Result)
	for _, r := range results {
		if byKey[r.System] == nil {
			byKey[r.System] = make(map[Variant]Result)
		}
		byKey[r.System][r.Variant] = r
	}
	for sys, vs := range byKey {
		clean, attacked, protected := vs[Clean], vs[Attacked], vs[Protected]
		// The Table I pattern: the attack inflates the impact metric;
		// P4Auth restores it to (near) the clean level.
		if attacked.Impact <= clean.Impact+0.1 {
			t.Errorf("%s: attack had no impact (clean %.2f, attacked %.2f)", sys, clean.Impact, attacked.Impact)
		}
		if protected.Impact > clean.Impact+0.05 {
			t.Errorf("%s: P4Auth did not restore behaviour (clean %.2f, protected %.2f)", sys, clean.Impact, protected.Impact)
		}
		if protected.Alerts == 0 {
			t.Errorf("%s: protected run raised no alerts", sys)
		}
		if clean.Alerts != 0 {
			t.Errorf("%s: clean run raised %d alerts", sys, clean.Alerts)
		}
		if attacked.Alerts != 0 {
			t.Errorf("%s: unprotected attacked run raised %d alerts (nothing to detect with)", sys, attacked.Alerts)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Clean.String() != "clean" || Attacked.String() != "attacked" || Protected.String() != "protected" {
		t.Error("variant names")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant must stringify")
	}
}

func TestEachSystemIndividually(t *testing.T) {
	runs := map[string]func(Variant) (Result, error){
		"blink":     RunBlink,
		"silkroad":  RunSilkRoad,
		"netwarden": RunNetwarden,
		"netcache":  RunNetCache,
		"flowradar": RunFlowRadar,
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			for _, v := range []Variant{Clean, Attacked, Protected} {
				res, err := run(v)
				if err != nil {
					t.Fatalf("%v: %v", v, err)
				}
				if res.Impact < 0 || res.Impact > 1 {
					t.Errorf("%v impact out of range: %f", v, res.Impact)
				}
				if res.Metric == "" || res.System == "" {
					t.Errorf("%v: missing labels", v)
				}
			}
		})
	}
}
