package systems

import (
	"p4auth/internal/pisa"
)

// RunSilkRoad models SilkRoad's DIP-pool migration (Table I, LB row): the
// data plane holds a transit epoch marker; connections hashed into the
// transit window use the *old* DIP pool until the controller clears the
// marker after all pending connections are in the connection table. The
// adversary suppresses/garbles the clear message, so new connections keep
// being pinned to retired DIPs — the "wrong VIP during LB" impact. Impact
// metric: fraction of new connections sent to a retired DIP.
func RunSilkRoad(variant Variant) (Result, error) {
	const (
		conns   = 200
		oldDIP  = 1
		newDIP  = 2
		retired = 1 // epoch value meaning "transit: use old pool"
		done    = 0
	)
	atk := &attackState{
		rewriteValue: func(reg string, index uint32, value uint64, down bool) (uint64, bool) {
			// Rewrite the clear (0) back into "transit" so the old pool
			// stays live.
			if reg == "silk_transit" && down && value == done {
				return retired, true
			}
			return 0, false
		},
	}
	r, err := newRig("silkroad", variant, []*pisa.RegisterDef{
		{Name: "silk_transit", Width: 8, Entries: 1},
	}, atk)
	if err != nil {
		return Result{}, err
	}

	// Migration starts: transit marker set (legitimately).
	if err := r.sw.Host.SW.RegisterWrite("silk_transit", 0, retired); err != nil {
		return Result{}, err
	}
	// Migration completes: the controller clears the marker over C-DP.
	if err := r.write(variant, "silk_transit", 0, done); err != nil {
		if !isTampered(err) {
			return Result{}, err
		}
		// Detected: clear through the quarantined path.
		if werr := r.sw.Host.SW.RegisterWrite("silk_transit", 0, done); werr != nil {
			return Result{}, werr
		}
	}

	// New connections arrive; the data plane picks the pool by the marker.
	wrong := 0
	for i := 0; i < conns; i++ {
		marker, err := r.sw.Host.SW.RegisterRead("silk_transit", 0)
		if err != nil {
			return Result{}, err
		}
		dip := newDIP
		if marker == retired {
			dip = oldDIP
		}
		if dip != newDIP {
			wrong++
		}
	}
	return Result{
		System:  "SilkRoad (LB)",
		Variant: variant,
		Impact:  float64(wrong) / conns,
		Metric:  "connections pinned to retired DIPs",
		Alerts:  len(r.ctrl.Alerts()),
	}, nil
}
