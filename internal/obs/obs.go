// Package obs is a dependency-free observability layer: a registry of
// atomic counters, gauges and fixed-bucket latency histograms, plus a
// bounded ring-buffer audit log of structured security events (audit.go).
//
// The design constraint inherited from the transport layer is that the
// *increment* path must be allocation-free: counters sit on the
// authenticated-write hot path, which carries a 0 allocs/op budget. The
// registry therefore splits its API in two:
//
//   - Registration (Counter/Gauge/Histogram lookups by name) locks and may
//     allocate. Callers resolve their instruments once, at wiring time,
//     and keep the returned pointers.
//   - Updates (Inc/Add/Set/Observe) are pure atomics on pre-allocated
//     storage — no locks, no maps, no interface boxing, no strings.
//
// Snapshot reads walk the registry under the lock and are intended for
// cold paths only (inspection commands, bench reports, test assertions).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Allocation-free.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic last-value instrument.
type Gauge struct {
	v atomic.Uint64
}

// Set stores v. Allocation-free.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// HistBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0
// and v == 1); the last bucket absorbs everything larger. With 32 buckets
// the range covers 1ns..~4s when observations are nanoseconds.
const HistBuckets = 32

// Histogram is a fixed-bucket power-of-two histogram. Observe is a single
// atomic add into a pre-sized array: allocation-free and lock-free.
type Histogram struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v uint64) int {
	b := 0
	for v > 1 {
		v >>= 1
		b++
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value. Allocation-free.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the arithmetic mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	var out [HistBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// bucket histogram: the upper edge of the bucket holding the q*count-th
// observation. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 1
			}
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << (HistBuckets - 1)
}

// Registry is a named collection of instruments. Lookup is get-or-create;
// two lookups with the same name return the same instrument, so separate
// layers (controller, agent, switch) can share counters by name.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Resolve once at wiring time; do not call on a hot path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.ctrs[name]
	if c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistSnapshot is a point-in-time histogram summary.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P99   uint64  `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]uint64       `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value. Cold path.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.ctrs)),
		Gauges:     make(map[string]uint64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
		}
	}
	return s
}

// Dump renders a snapshot as sorted "name value" lines for terminals.
func (s Snapshot) Dump() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter  %-44s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge    %-44s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "hist     %-44s n=%d mean=%.0f p50<=%d p99<=%d\n",
			n, h.Count, h.Mean, h.P50, h.P99)
	}
	return b.String()
}

// Observer bundles the metrics registry and the audit log so a single
// handle can be threaded through every layer and shared across controller
// generations (warm restarts keep the same observer).
type Observer struct {
	Metrics *Registry
	Audit   *AuditLog
}

// NewObserver returns an observer with a fresh registry and an audit ring
// of the given capacity (DefaultAuditCap when n <= 0).
func NewObserver(n int) *Observer {
	return &Observer{Metrics: NewRegistry(), Audit: NewAuditLog(n)}
}
