package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("writes") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("floor")
	g.Set(42)
	g.Set(17)
	if got := g.Load(); got != 17 {
		t.Fatalf("gauge = %d, want 17", got)
	}
	if r.Gauge("floor") != g {
		t.Fatal("same name must return the same gauge")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if r.Histogram("lat") != h {
		t.Fatal("same name must return the same histogram")
	}
	// 0 and 1 land in bucket 0; 2,3 in bucket 1; 4..7 in bucket 2, etc.
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 2 || b[2] != 2 || b[3] != 1 {
		t.Fatalf("buckets = %v", b[:4])
	}
	if b[HistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", b[HistBuckets-1])
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 4 + 7 + 8 + 1<<40)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	if h.Mean() != float64(wantSum)/8 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// rank(0.5) = 4th of 8: cumulative hits 4 in bucket 1, upper edge 2.
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	// rank(0.2) = 1st observation: bucket 0, reported as 1.
	if q := h.Quantile(0.2); q != 1 {
		t.Fatalf("p20 = %d, want 1", q)
	}
	if q := h.Quantile(1.0); q != 1<<(HistBuckets-1) {
		t.Fatalf("p100 = %d", q)
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestSnapshotAndDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(7)
	r.Histogram("c").Observe(100)
	s := r.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["b"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
	hs := s.Histograms["c"]
	if hs.Count != 1 || hs.Sum != 100 || hs.Mean != 100 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	d := s.Dump()
	for _, want := range []string{"counter", "a", "gauge", "b", "hist", "c"} {
		if !strings.Contains(d, want) {
			t.Fatalf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestAuditLogRing(t *testing.T) {
	l := NewAuditLog(4)
	for i := 0; i < 3; i++ {
		l.Append(EvReplayRejected, "s1", "stale-seq", uint32(i), uint64(i))
	}
	if l.Len() != 3 || l.Total() != 3 || l.Evicted() != 0 {
		t.Fatalf("len=%d total=%d evicted=%d", l.Len(), l.Total(), l.Evicted())
	}
	ev := l.Events()
	if len(ev) != 3 || ev[0].ID != 1 || ev[2].ID != 3 {
		t.Fatalf("events = %+v", ev)
	}
	// Wrap: capacity 4, append 4 more → oldest 3 evicted.
	for i := 3; i < 7; i++ {
		l.Append(EvDigestMismatch, "s2", "bad-digest", uint32(i), uint64(i))
	}
	if l.Len() != 4 || l.Total() != 7 || l.Evicted() != 3 {
		t.Fatalf("after wrap: len=%d total=%d evicted=%d", l.Len(), l.Total(), l.Evicted())
	}
	ev = l.Events()
	if ev[0].ID != 4 || ev[3].ID != 7 {
		t.Fatalf("wrapped events = %+v", ev)
	}
	byType := l.ByType(EvDigestMismatch)
	if len(byType) != 4 {
		t.Fatalf("ByType = %d events, want 4", len(byType))
	}
	d := l.Dump()
	if !strings.Contains(d, "digest_mismatch") || !strings.Contains(d, "3 earlier events evicted") {
		t.Fatalf("dump:\n%s", d)
	}
}

func TestAuditLogDefaults(t *testing.T) {
	l := NewAuditLog(0)
	if got := len(l.ring); got != DefaultAuditCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultAuditCap)
	}
	l.Append(EvFloorBump, "s1", "warm-restart-lease", 0, 65536)
	if l.Events()[0].Type.String() != "floor_bump" {
		t.Fatal("event type name")
	}
	if EventType(200).String() != "unknown" {
		t.Fatal("unknown event type name")
	}
}

func TestObserverBundle(t *testing.T) {
	o := NewObserver(16)
	if o.Metrics == nil || o.Audit == nil {
		t.Fatal("observer parts must be non-nil")
	}
	o.Metrics.Counter("x").Inc()
	o.Audit.Append(EvRolloverBegin, "s1", "", 0, 1)
	if o.Metrics.Snapshot().Counters["x"] != 1 || o.Audit.Total() != 1 {
		t.Fatal("observer wiring")
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	l := NewAuditLog(128)
	c := r.Counter("n")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(uint64(i))
				if i%100 == 0 {
					l.Append(EvWALSettle, "s1", "applied", uint32(i), 0)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Load() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter=%d hist=%d", c.Load(), h.Count())
	}
	if l.Total() != 80 {
		t.Fatalf("audit total = %d, want 80", l.Total())
	}
}

// TestUpdatePathAllocBudget pins the contract the hot paths rely on: once
// instruments are resolved, Inc/Add/Set/Observe and AuditLog.Append do
// not allocate.
func TestUpdatePathAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not stable under -race")
	}
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hot")
	h := r.Histogram("hot")
	l := NewAuditLog(64)
	const actor, cause = "s1", "stale-seq"
	for i := 0; i < 8; i++ { // warm up
		c.Inc()
		g.Set(uint64(i))
		h.Observe(uint64(i))
		l.Append(EvReplayRejected, actor, cause, uint32(i), 0)
	}
	var i uint64
	got := testing.AllocsPerRun(200, func() {
		i++
		c.Inc()
		c.Add(2)
		g.Set(i)
		h.Observe(i)
		l.Append(EvReplayRejected, actor, cause, uint32(i), i)
	})
	if got > 0 {
		t.Errorf("update path: %.1f allocs/op, budget 0", got)
	}
}
