package obs

// Bounded ring-buffer audit log of structured security events. Append
// copies a fixed-size Event into a pre-allocated slot under a mutex: no
// allocation, no formatting. String fields must be constants or strings
// that already exist (switch names, cause labels) — never built with fmt
// on the hot path. When the ring wraps, the oldest events are overwritten
// and counted as evicted, so readers can tell a complete log from a
// truncated one.

import (
	"fmt"
	"strings"
	"sync"
)

// EventType classifies a security event.
type EventType uint8

const (
	// EvDigestMismatch: a response or request failed digest verification.
	EvDigestMismatch EventType = iota + 1
	// EvReplayRejected: a message was rejected by the replay floor.
	EvReplayRejected
	// EvFloorBump: the controller advanced a replay floor (SkipAhead /
	// FloorLease) — every bump must name its cause.
	EvFloorBump
	// EvRolloverBegin: a key rollover started.
	EvRolloverBegin
	// EvRolloverCommit: a key rollover committed on both sides.
	EvRolloverCommit
	// EvRolloverRollback: a key rollover was aborted and rolled back.
	EvRolloverRollback
	// EvEAKFallback: recovery fell back to seed-derived (EAK) keying.
	EvEAKFallback
	// EvQuarantineEnter: a switch crossed the failure threshold.
	EvQuarantineEnter
	// EvQuarantineLeave: a quarantined switch was readmitted.
	EvQuarantineLeave
	// EvWALSettle: a journaled register write settled (applied, failed, or
	// redriven); Cause carries the outcome.
	EvWALSettle
	// EvWriteDropped: an authenticated write was abandoned after
	// exhausting retries; Cause names the final error class.
	EvWriteDropped
	// EvLinkState: a fabric link-health state machine transitioned; Actor
	// is the link label, Cause the evidence class, Seq the repair epoch,
	// and Value packs (from<<8 | to) of the state pair.
	EvLinkState
	// EvFailover: a standby replica acquired the controller lease; Actor
	// is the new active, Cause the trigger class, and Value the fencing
	// epoch of the new grant.
	EvFailover
	// EvFencedWrite: a replica's signed send was refused by the lease
	// fence (deposed, superseded, or never the holder); Actor is the
	// refused replica and Value the epoch it held.
	EvFencedWrite
	// EvDegraded: a replica's bounded-staleness fence transitioned — the
	// store became unreadable and the cached grant started admitting
	// (enter), the store came back (exit), or the grace ran out and the
	// replica fenced itself (exhausted). Actor is the replica, Cause the
	// transition, Value the held epoch.
	EvDegraded
	// EvElection: a controller group elected a new active. Actor is the
	// winner, Cause the trigger, Seq the number of candidates that died
	// mid-promotion before the winner (chained succession depth), Value
	// the winning epoch.
	EvElection
	// EvBrokerGrant: the global broker tier issued a fenced cross-pod
	// key grant. Actor is the serving global replica, Cause the link,
	// Seq the requesting pod, Value the fencing epoch the grant is
	// valid under.
	EvBrokerGrant
	// EvWANDegraded: a pod tier's WAN path to the global broker
	// transitioned — broker RPCs started failing (enter), service
	// resumed (exit), or a cross-pod rollover was deferred while
	// degraded (defer). Actor is the pod, Value the deferred-rollover
	// backlog after the transition.
	EvWANDegraded
)

var eventNames = map[EventType]string{
	EvDigestMismatch:   "digest_mismatch",
	EvReplayRejected:   "replay_rejected",
	EvFloorBump:        "floor_bump",
	EvRolloverBegin:    "rollover_begin",
	EvRolloverCommit:   "rollover_commit",
	EvRolloverRollback: "rollover_rollback",
	EvEAKFallback:      "eak_fallback",
	EvQuarantineEnter:  "quarantine_enter",
	EvQuarantineLeave:  "quarantine_leave",
	EvWALSettle:        "wal_settle",
	EvWriteDropped:     "write_dropped",
	EvLinkState:        "link_state",
	EvFailover:         "failover",
	EvFencedWrite:      "fenced_write",
	EvDegraded:         "degraded_fence",
	EvElection:         "election",
	EvBrokerGrant:      "broker_grant",
	EvWANDegraded:      "wan_degraded",
}

// String returns the stable snake_case name of the event type.
func (t EventType) String() string {
	if n, ok := eventNames[t]; ok {
		return n
	}
	return "unknown"
}

// Event is one audit record. All fields are fixed-size; Actor and Cause
// are string headers pointing at pre-existing constants.
type Event struct {
	ID    uint64    `json:"id"`    // monotone sequence number, 1-based
	Type  EventType `json:"type"`  // what happened
	Actor string    `json:"actor"` // which switch / component
	Cause string    `json:"cause"` // why (constant label; "" only where N/A)
	Seq   uint32    `json:"seq"`   // protocol sequence number, when known
	Value uint64    `json:"value"` // type-specific payload (floor, version…)
}

// DefaultAuditCap is the ring capacity used when none is given.
const DefaultAuditCap = 4096

// AuditLog is a bounded ring of events.
type AuditLog struct {
	mu      sync.Mutex
	ring    []Event // pre-allocated to capacity
	next    uint64  // total events ever appended
	evicted uint64  // events overwritten by ring wrap
}

// NewAuditLog returns a ring holding the last n events (DefaultAuditCap
// when n <= 0).
func NewAuditLog(n int) *AuditLog {
	if n <= 0 {
		n = DefaultAuditCap
	}
	return &AuditLog{ring: make([]Event, n)}
}

// Append records an event. Allocation-free: the event is copied into a
// pre-allocated ring slot. Safe for concurrent use.
func (l *AuditLog) Append(t EventType, actor, cause string, seq uint32, value uint64) {
	l.mu.Lock()
	slot := &l.ring[l.next%uint64(len(l.ring))]
	if l.next >= uint64(len(l.ring)) {
		l.evicted++
	}
	l.next++
	slot.ID = l.next
	slot.Type = t
	slot.Actor = actor
	slot.Cause = cause
	slot.Seq = seq
	slot.Value = value
	l.mu.Unlock()
}

// Len returns the number of events currently retained.
func (l *AuditLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.next < uint64(len(l.ring)) {
		return int(l.next)
	}
	return len(l.ring)
}

// Total returns the number of events ever appended.
func (l *AuditLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Evicted returns how many events were lost to ring wrap.
func (l *AuditLog) Evicted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evicted
}

// Events returns the retained events oldest-first. Cold path.
func (l *AuditLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	if l.next < uint64(n) {
		out := make([]Event, l.next)
		copy(out, l.ring[:l.next])
		return out
	}
	out := make([]Event, 0, n)
	start := l.next % uint64(n)
	out = append(out, l.ring[start:]...)
	out = append(out, l.ring[:start]...)
	return out
}

// ByType returns retained events of one type, oldest-first.
func (l *AuditLog) ByType(t EventType) []Event {
	all := l.Events()
	out := all[:0]
	for _, e := range all {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events as one line each, oldest-first.
func (l *AuditLog) Dump() string {
	var b strings.Builder
	if ev := l.Evicted(); ev > 0 {
		fmt.Fprintf(&b, "… %d earlier events evicted\n", ev)
	}
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "#%-6d %-18s actor=%-8s seq=%-10d value=%-12d cause=%s\n",
			e.ID, e.Type, e.Actor, e.Seq, e.Value, e.Cause)
	}
	return b.String()
}
