package deploy

import (
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/pisa"
)

func TestBuildDefaults(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "d1"})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cfg.Ports != 8 {
		t.Errorf("default ports = %d", sw.Cfg.Ports)
	}
	if sw.Cfg.Digest != core.DigestCRC32 {
		t.Errorf("tofino default digest = %d", int(sw.Cfg.Digest))
	}
	// Seed key loaded at boot.
	v, err := sw.Host.SW.RegisterRead(core.RegKeysV0, core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if v != sw.Cfg.Seed {
		t.Errorf("boot key %#x != seed %#x", v, sw.Cfg.Seed)
	}
}

func TestBuildBMv2PicksHalfSipHash(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "d2", Profile: pisa.BMv2Profile()})
	if err != nil {
		t.Fatal(err)
	}
	if sw.Cfg.Digest != core.DigestHalfSipHash {
		t.Errorf("bmv2 default digest = %d", int(sw.Cfg.Digest))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(SwitchSpec{}); err == nil {
		t.Error("nameless switch must fail")
	}
	if _, err := Build(SwitchSpec{Name: "x", Registers: []*pisa.RegisterDef{
		{Name: "bad", Width: 99, Entries: 1},
	}}); err == nil {
		t.Error("invalid register must fail")
	}
}

func TestBuildExposesRegistersInRegMap(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "d3", Registers: []*pisa.RegisterDef{
		{Name: "a", Width: 32, Entries: 2},
		{Name: "b", Width: 64, Entries: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := sw.Host.Info.RegisterByName(name); err != nil {
			t.Errorf("register %s missing from p4info: %v", name, err)
		}
	}
}

func TestSwitchNodeForwardsAndSurfacesPacketIns(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "n1", Registers: []*pisa.RegisterDef{
		{Name: "r", Width: 32, Entries: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var pins [][]byte
	node := &SwitchNode{Host: sw.Host, OnPacketIn: func(d []byte) { pins = append(pins, d) }}
	net := netsim.NewNetwork()
	n := net.AddNode("n1", node)
	sink := &Sink{}
	net.AddNode("sink", sink.Handler())
	net.MustConnect("n1", 1, "sink", 1, time.Microsecond, 0)

	// A garbage P4Auth message raises an alert PacketIn.
	bad := &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq, SeqNum: 5, Digest: 0xBAD},
		Reg:    &core.RegPayload{RegID: 1, Index: 0, Value: 1},
	}
	enc, _ := bad.Encode()
	node.Inject(net, n, 2, enc)
	net.Sim.Run()
	if len(pins) != 1 {
		t.Fatalf("PacketIns = %d, want 1 alert", len(pins))
	}
	m, err := core.DecodeMessage(pins[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.HdrType != core.HdrAlert {
		t.Errorf("hdrType = %d", m.HdrType)
	}
	if len(node.Errors) != 0 {
		t.Errorf("node errors: %v", node.Errors)
	}
}

func TestSinkCounts(t *testing.T) {
	s := &Sink{}
	net := netsim.NewNetwork()
	net.AddNode("a", nil)
	net.AddNode("b", s.Handler())
	net.MustConnect("a", 1, "b", 1, 0, 0)
	for i := 0; i < 3; i++ {
		if err := net.Send(net.Node("a"), 1, make([]byte, 100), 0); err != nil {
			t.Fatal(err)
		}
	}
	net.Sim.Run()
	if s.Packets != 3 || s.Bytes != 300 {
		t.Errorf("sink = %+v", s)
	}
}
