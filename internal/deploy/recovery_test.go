package deploy

import (
	"errors"
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/statestore"
	"p4auth/internal/switchos"
)

func TestCrashSilencesIO(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	sw.Crash()
	if !sw.Host.Down() {
		t.Fatal("Crash did not mark the host down")
	}
	if _, _, err := sw.Host.APIRegisterRead(0, 0); !errors.Is(err, switchos.ErrDown) {
		t.Fatalf("API read on crashed switch: %v, want ErrDown", err)
	}
	res, err := sw.Host.PacketOut(nil)
	if err != nil || len(res.PacketIns) != 0 {
		t.Fatalf("crashed switch must be silent, got %d replies err=%v", len(res.PacketIns), err)
	}
	if _, err := sw.Snapshot(0); !errors.Is(err, switchos.ErrDown) {
		t.Fatalf("snapshot of crashed switch: %v, want ErrDown", err)
	}
}

func TestColdRebootRevertsToFactoryState(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "c2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Host.SW.RegisterWrite(core.RegKeysV1, core.KeyIndexLocal, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if err := sw.Host.SW.RegisterWrite(core.RegVer, core.KeyIndexLocal, 1); err != nil {
		t.Fatal(err)
	}
	sw.Crash()
	if err := sw.Reboot(nil); err != nil {
		t.Fatal(err)
	}
	if sw.Host.Down() {
		t.Fatal("reboot left the host down")
	}
	if v, _ := sw.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal); v != 0 {
		t.Fatalf("cold boot must zero versions, got %d", v)
	}
	if v, _ := sw.Host.SW.RegisterRead(core.RegKeysV0, core.KeyIndexLocal); v != sw.Cfg.Seed {
		t.Fatalf("cold boot must reload the seed, got %#x", v)
	}
}

func TestWarmRebootFromStore(t *testing.T) {
	sw, err := Build(SwitchSpec{Name: "c3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Host.SW.RegisterWrite(core.RegKeysV1, core.KeyIndexLocal, 0xCAFE); err != nil {
		t.Fatal(err)
	}
	if err := sw.Host.SW.RegisterWrite(core.RegVer, core.KeyIndexLocal, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Host.SW.RegisterWrite(core.RegSeq, 0, 55); err != nil {
		t.Fatal(err)
	}

	store := statestore.NewMem()
	if err := sw.SaveState(store, "dev/c3", 42); err != nil {
		t.Fatal(err)
	}
	sw.Crash()
	warm, err := sw.RebootFromStore(store, "dev/c3")
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("expected warm restart with a valid snapshot")
	}
	if v, _ := sw.Host.SW.RegisterRead(core.RegKeysV1, core.KeyIndexLocal); v != 0xCAFE {
		t.Fatalf("warm boot lost the established key: %#x", v)
	}
	if v, _ := sw.Host.SW.RegisterRead(core.RegSeq, 0); v != 55+core.FloorLease {
		t.Fatalf("replay floor = %d, want lease-bumped %d", v, 55+core.FloorLease)
	}

	// Missing snapshot degrades to cold.
	sw.Crash()
	warm, err = sw.RebootFromStore(store, "dev/nope")
	if err != nil || warm {
		t.Fatalf("missing snapshot: warm=%v err=%v, want cold boot", warm, err)
	}

	// Corrupt snapshot also degrades to cold rather than restoring garbage.
	b, _ := store.Load("dev/c3")
	b[len(b)-1] ^= 0xFF
	if err := store.Save("dev/corrupt", b); err != nil {
		t.Fatal(err)
	}
	sw.Crash()
	warm, err = sw.RebootFromStore(store, "dev/corrupt")
	if err != nil || warm {
		t.Fatalf("corrupt snapshot: warm=%v err=%v, want cold boot", warm, err)
	}
	if v, _ := sw.Host.SW.RegisterRead(core.RegKeysV1, core.KeyIndexLocal); v != 0 {
		t.Fatal("corrupt snapshot must not restore keys")
	}
}
