// Package deploy assembles ready-to-run P4Auth switches: a host program
// (by default a minimal ptype-only shell plus caller-supplied registers),
// the woven-in P4Auth data plane, compilation for a target profile, boot
// seeding, register-map population, and the switch-software stack.
package deploy

import (
	"fmt"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/p4rt"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// SwitchSpec describes one switch to build.
type SwitchSpec struct {
	Name    string
	Ports   int
	Profile pisa.Profile
	// Digest defaults to CRC32 on hardware profiles and HalfSipHash on
	// software profiles when zero.
	Digest core.DigestKind
	// Insecure builds the DP-Reg-RW baseline (no digests).
	Insecure bool
	// Registers are host registers to declare; all are exposed for
	// authenticated C-DP access.
	Registers []*pisa.RegisterDef
	// Costs defaults to switchos.DefaultCosts when zero.
	Costs *switchos.Costs
	// RandSeed seeds the data plane's random() extern.
	RandSeed uint64
	// Workers is the ingress worker count behind the switch's batch path
	// (pisa.WithWorkers); 0 or 1 builds the strictly serial switch.
	Workers int
	// Config overrides the derived default config when non-nil.
	Config *core.Config
}

// Switch is a deployed switch: host (stack + pipeline) plus its config.
type Switch struct {
	Host *switchos.Host
	Cfg  core.Config
}

// Build assembles the switch.
func Build(spec SwitchSpec) (*Switch, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("deploy: switch needs a name")
	}
	if spec.Ports == 0 {
		spec.Ports = 8
	}
	if spec.Profile.Name == "" {
		spec.Profile = pisa.TofinoProfile()
	}
	if spec.Digest == 0 {
		if spec.Profile.AllowExterns {
			spec.Digest = core.DigestHalfSipHash
		} else {
			spec.Digest = core.DigestCRC32
		}
	}
	cfg := core.DefaultConfig(spec.Ports, spec.Digest)
	if spec.Config != nil {
		cfg = *spec.Config
	}
	cfg.Insecure = cfg.Insecure || spec.Insecure

	prog := &pisa.Program{
		Name:         spec.Name + "_prog",
		Headers:      []*pisa.HeaderDef{core.PTypeHeader()},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: core.HdrPType}},
		DeparseOrder: []string{core.HdrPType},
		Registers:    spec.Registers,
	}
	exposed := make([]string, 0, len(spec.Registers))
	for _, r := range spec.Registers {
		exposed = append(exposed, r.Name)
	}
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, fmt.Errorf("deploy: %s: %w", spec.Name, err)
	}

	seed := spec.RandSeed
	if seed == 0 {
		seed = 0xDA7A_0000 ^ uint64(len(spec.Name))<<32 ^ uint64(spec.Ports)
	}
	sw, err := pisa.NewSwitch(prog, spec.Profile,
		pisa.WithRandom(crypto.NewSeededRand(seed)), pisa.WithWorkers(spec.Workers))
	if err != nil {
		return nil, fmt.Errorf("deploy: %s: %w", spec.Name, err)
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	if err := core.InstallRegMap(sw, p4rt.InfoFromProgram(prog), exposed); err != nil {
		return nil, err
	}
	costs := switchos.DefaultCosts()
	if spec.Costs != nil {
		costs = *spec.Costs
	}
	return &Switch{Host: switchos.NewHost(spec.Name, sw, costs), Cfg: cfg}, nil
}
