package deploy

import (
	"fmt"

	"p4auth/internal/core"
	"p4auth/internal/statestore"
	"p4auth/internal/switchos"
)

// Crash-survival operations on a deployed switch. A switch-agent restart
// in the real system loses the agent's memory (idempotency cache) and —
// on a full switch reboot — the data-plane registers, which revert to
// the binary's compile-time image (K_seed in slot 0, everything else
// zero). These helpers model both the crash and the two recovery paths:
// warm (restore a persisted register snapshot, replay floors bumped) and
// cold (factory state; the controller must re-seed via EAK).

// Crash marks the switch dead: all I/O toward it is silence until a
// Reboot. Pending in-flight packets already queued in a simulator are
// unaffected (they arrive at a dead port and vanish).
func (s *Switch) Crash() {
	s.Host.SetDown(true)
}

// Snapshot captures the switch's P4Auth register file for persistence.
// Fails on a crashed switch — a dead node cannot persist state.
func (s *Switch) Snapshot(takenNs uint64) (*core.DeviceSnapshot, error) {
	if s.Host.Down() {
		return nil, fmt.Errorf("%w: %s", switchos.ErrDown, s.Host.Name)
	}
	return core.SnapshotDevice(s.Host.SW, takenNs)
}

// SaveState snapshots the register file and persists it under key.
func (s *Switch) SaveState(store statestore.Store, key string, takenNs uint64) error {
	ds, err := s.Snapshot(takenNs)
	if err != nil {
		return err
	}
	return store.Save(key, ds.Encode())
}

// Reboot brings a crashed (or running) switch back up. The agent's
// idempotency cache is always lost. With warm == nil this is a cold
// boot: registers revert to factory state (seed key only) and every
// established key is gone. With a snapshot, registers are restored and
// the replay floors come back bumped by core.FloorLease, so nothing the
// pre-crash switch could have accepted is accepted again.
func (s *Switch) Reboot(warm *core.DeviceSnapshot) error {
	if err := core.FactoryReset(s.Host.SW, s.Cfg); err != nil {
		return err
	}
	s.Host.ClearCache()
	if warm != nil {
		if err := core.RestoreDevice(s.Host.SW, warm); err != nil {
			return err
		}
	}
	s.Host.SetDown(false)
	return nil
}

// RebootFromStore reboots using the snapshot under key if one exists and
// decodes cleanly; otherwise it cold-boots. It reports whether the
// restart was warm. A present-but-corrupt snapshot degrades to cold —
// the checksummed codec exists precisely so a torn write cannot restore
// garbage keys.
func (s *Switch) RebootFromStore(store statestore.Store, key string) (warm bool, err error) {
	b, err := store.Load(key)
	if err == nil {
		if ds, derr := core.DecodeDeviceSnapshot(b); derr == nil {
			return true, s.Reboot(ds)
		}
	}
	return false, s.Reboot(nil)
}
