package deploy

import (
	"p4auth/internal/netsim"
	"p4auth/internal/switchos"
)

// SwitchNode adapts a switchos.Host to a netsim node: arriving packets run
// through the pipeline (stamped with the virtual clock), network emissions
// are sent onward after the modeled processing delay, and PacketIns are
// surfaced to the OnPacketIn callback (the switch's control channel).
type SwitchNode struct {
	Host *switchos.Host
	// OnPacketIn receives control-channel messages (alerts, responses).
	OnPacketIn func(data []byte)
	// Errors collects pipeline errors (malformed packets etc.).
	Errors []error
}

// HandlePacket implements netsim.Handler.
func (sn *SwitchNode) HandlePacket(net *netsim.Network, node *netsim.Node, port int, data []byte) {
	// Shard-local time: in sharded mode the global clock only advances at
	// window granularity, while the owning shard's clock tracks this very
	// event. Lockstep mode returns the global clock either way.
	sn.Host.SW.SetNow(uint64(net.Sim.ShardNow(node.Shard())))
	res, err := sn.Host.NetworkPacket(port, data)
	if err != nil {
		sn.Errors = append(sn.Errors, err)
		return
	}
	for _, em := range res.NetOut {
		if err := net.Send(node, em.Port, em.Data, res.Cost); err != nil {
			sn.Errors = append(sn.Errors, err)
		}
	}
	if sn.OnPacketIn != nil {
		for _, pin := range res.PacketIns {
			sn.OnPacketIn(pin)
		}
	}
}

// Inject runs a locally originated packet (e.g. a generator-port probe)
// through the pipeline and sends its emissions, exactly like an arriving
// packet but entering on the given port.
func (sn *SwitchNode) Inject(net *netsim.Network, node *netsim.Node, port int, data []byte) {
	sn.HandlePacket(net, node, port, data)
}

// Sink is a traffic endpoint that counts what it receives.
type Sink struct {
	Packets uint64
	Bytes   uint64
}

// Handler returns the netsim handler for the sink.
func (s *Sink) Handler() netsim.Handler {
	return netsim.HandlerFunc(func(_ *netsim.Network, _ *netsim.Node, _ int, data []byte) {
		s.Packets++
		s.Bytes += uint64(len(data))
	})
}
