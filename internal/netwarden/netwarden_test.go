package netwarden

import (
	"testing"
)

// drive sends traffic: covert connections (0..covert-1) tick with a fixed
// 1 ms IPD (a timing channel's regularity); benign ones jitter between
// 0.4 and 2.6 ms. Returns forwarded counts per connection.
func drive(t *testing.T, s *System, conns, covert, packets int, startNs uint64) []int {
	t.Helper()
	forwarded := make([]int, conns)
	jit := []uint64{400_000, 2_600_000, 900_000, 1_800_000, 600_000}
	for i := 0; i < packets; i++ {
		for c := 0; c < conns; c++ {
			var at uint64
			if c < covert {
				at = startNs + uint64(i+1)*1_000_000
			} else {
				base := startNs + uint64(i)*1_500_000
				at = base + jit[(i+c)%len(jit)]
			}
			ok, err := s.Packet(uint16(c), at)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				forwarded[c]++
			}
		}
	}
	return forwarded
}

const (
	conns     = 16
	covert    = 4
	threshold = 100_000 // ns of mean jitter
)

func runScenario(t *testing.T, secure, attacked bool) (*System, []int) {
	t.Helper()
	s, err := New(Params{Conns: conns, Secure: secure})
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, conns, covert, 30, 1_000_000)
	if attacked {
		if err := s.InstallScoreInflater(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sweep(threshold); err != nil {
		t.Fatal(err)
	}
	// Post-sweep traffic: blocked connections stop flowing.
	after := drive(t, s, conns, covert, 10, 500_000_000)
	return s, after
}

func TestCleanSweepBlocksCovertChannels(t *testing.T) {
	s, after := runScenario(t, true, false)
	for c := 0; c < covert; c++ {
		if v, _ := s.Verdict(c); v != 1 {
			t.Errorf("covert conn %d not blocked", c)
		}
		if after[c] != 0 {
			t.Errorf("covert conn %d forwarded %d packets after blocking", c, after[c])
		}
	}
	for c := covert; c < conns; c++ {
		if v, _ := s.Verdict(c); v != 0 {
			t.Errorf("benign conn %d blocked (false positive)", c)
		}
		if after[c] == 0 {
			t.Errorf("benign conn %d starved", c)
		}
	}
	if s.TamperedOps != 0 {
		t.Errorf("clean run flagged %d ops", s.TamperedOps)
	}
}

func TestScoreInflaterEvadesWithoutP4Auth(t *testing.T) {
	s, after := runScenario(t, false, true)
	evaded := 0
	for c := 0; c < covert; c++ {
		if v, _ := s.Verdict(c); v == 0 && after[c] > 0 {
			evaded++
		}
	}
	if evaded != covert {
		t.Fatalf("only %d/%d covert channels evaded; attack ineffective", evaded, covert)
	}
}

func TestP4AuthRestoresDetection(t *testing.T) {
	s, after := runScenario(t, true, true)
	if s.TamperedOps == 0 {
		t.Fatal("tampering undetected")
	}
	for c := 0; c < covert; c++ {
		if v, _ := s.Verdict(c); v != 1 {
			t.Errorf("covert conn %d evaded under P4Auth", c)
		}
		if after[c] != 0 {
			t.Errorf("covert conn %d still flowing", c)
		}
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}

func TestIPDMeasurementAccuracy(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly regular: 10 packets at exactly 2 ms spacing -> zero jitter.
	for i := 1; i <= 10; i++ {
		if _, err := s.Packet(3, uint64(i)*2_000_000); err != nil {
			t.Fatal(err)
		}
	}
	j, err := s.Host.SW.RegisterRead(RegJitter, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The first scored sample contributes |IPD - 0| once; all later
	// samples contribute 0.
	if j != 2_000_000 {
		t.Errorf("jitter = %d, want only the bootstrap sample 2000000", j)
	}
	p, _ := s.Host.SW.RegisterRead(RegPackets, 3)
	if p != 9 {
		t.Errorf("samples = %d, want 9", p)
	}
}
