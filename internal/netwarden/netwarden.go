// Package netwarden is a full-pipeline miniature of NetWarden (Xing et
// al., USENIX Security 2020), the covert-timing-channel mitigator of the
// paper's Table I. The data plane measures inter-packet delays (IPD) per
// suspicious connection in registers — last arrival time, last IPD, and an
// accumulated jitter score — and enforces per-connection verdicts. The
// controller reads the jitter scores over C-DP, classifies low-jitter
// (too-regular) connections as covert channels, and writes block verdicts
// back. The paper's adversary rewrites those report/update messages so
// covert traffic evades; P4Auth detects the tampering and the controller
// falls back to the quarantined path.
package netwarden

import (
	"errors"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// PTypeFlow tags monitored connection packets.
const PTypeFlow = 0xF1

// Ports.
const (
	InPort  = 1
	OutPort = 2
)

// Register names.
const (
	RegLastTS  = "nw_last_ts"
	RegLastIPD = "nw_last_ipd"
	RegJitter  = "nw_jitter"  // accumulated |IPD - lastIPD|
	RegPackets = "nw_packets" // samples per connection
	RegVerdict = "nw_verdict" // 1 = block/normalize
	RegBlocked = "nw_blocked" // blocked-packet counter
)

// Params configures the monitor.
type Params struct {
	Conns  int // tracked connection slots
	Secure bool
	// Name identifies the switch at its controller; empty means the
	// historical "ids". Fleet deployments run one instance per pod and
	// need distinct names within a shared controller namespace.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (p Params) name() string {
	if p.Name == "" {
		return "ids"
	}
	return p.Name
}

// DefaultParams tracks a small slot table.
func DefaultParams(secure bool) Params { return Params{Conns: 32, Secure: secure} }

// System is a running NetWarden deployment.
type System struct {
	Params Params
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg core.Config

	// TamperedOps counts C-DP operations the controller saw rejected.
	TamperedOps int
}

var flowDef = &pisa.HeaderDef{Name: "nwf", Fields: []pisa.FieldDef{
	{Name: "conn", Width: 16},
}}

func buildProgram(p Params) (*pisa.Program, core.Config, error) {
	prog := &pisa.Program{
		Name:    "netwarden",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), flowDef},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeFlow: "nw_flow"}},
			{Name: "nw_flow", Extract: "nwf"},
		},
		DeparseOrder: []string{core.HdrPType, "nwf"},
		Metadata: []pisa.FieldDef{
			{Name: "nw_last", Width: 48},
			{Name: "nw_ipd", Width: 48},
			{Name: "nw_prev_ipd", Width: 48},
			{Name: "nw_diff", Width: 48},
			{Name: "nw_verd", Width: 8},
			{Name: "nw_scratch", Width: 48},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegLastTS, Width: 48, Entries: p.Conns},
			{Name: RegLastIPD, Width: 48, Entries: p.Conns},
			{Name: RegJitter, Width: 48, Entries: p.Conns},
			{Name: RegPackets, Width: 32, Entries: p.Conns},
			{Name: RegVerdict, Width: 8, Entries: p.Conns},
			{Name: RegBlocked, Width: 64, Entries: 1},
		},
	}

	m := func(f string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, f) }
	conn := pisa.R(pisa.F("nwf", "conn"))
	now := pisa.R(m(pisa.MetaTimestamp))

	flowOps := []pisa.Op{
		// Verdict enforcement first.
		pisa.RegRead(m("nw_verd"), RegVerdict, conn),
		pisa.If(pisa.Eq(pisa.R(m("nw_verd")), pisa.C(1)),
			[]pisa.Op{
				pisa.RegRMW(m("nw_scratch"), RegBlocked, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
				pisa.Drop(),
			},
			[]pisa.Op{
				// IPD measurement: swap in the new arrival time, derive
				// the IPD, accumulate |IPD - lastIPD| as the jitter score.
				pisa.RegRMW(m("nw_last"), RegLastTS, conn, pisa.RMWWrite, now),
				pisa.Sub(m("nw_ipd"), now, pisa.R(m("nw_last"))),
				// First packet has no IPD history: lastTS==0 -> skip both
				// the IPD swap and the score (a bogus first IPD would
				// pollute the jitter accumulator).
				pisa.If(pisa.Ne(pisa.R(m("nw_last")), pisa.C(0)), []pisa.Op{
					pisa.RegRMW(m("nw_prev_ipd"), RegLastIPD, conn, pisa.RMWWrite, pisa.R(m("nw_ipd"))),
					pisa.If(pisa.Gt(pisa.R(m("nw_ipd")), pisa.R(m("nw_prev_ipd"))),
						[]pisa.Op{pisa.Sub(m("nw_diff"), pisa.R(m("nw_ipd")), pisa.R(m("nw_prev_ipd")))},
						[]pisa.Op{pisa.Sub(m("nw_diff"), pisa.R(m("nw_prev_ipd")), pisa.R(m("nw_ipd")))},
					),
					pisa.RegRMW(m("nw_scratch"), RegJitter, conn, pisa.RMWAdd, pisa.R(m("nw_diff"))),
					pisa.RegRMW(m("nw_scratch"), RegPackets, conn, pisa.RMWAdd, pisa.C(1)),
				}),
				pisa.Forward(pisa.C(OutPort)),
			},
		),
	}
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("nwf"), flowOps)}

	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Insecure = !p.Secure
	exposed := []string{RegJitter, RegPackets, RegVerdict, RegBlocked}
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, cfg, err
	}
	return prog, cfg, nil
}

// New deploys the monitor.
func New(p Params) (*System, error) {
	prog, cfg, err := buildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0x93A+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	if err := core.InstallRegMap(sw, host.Info, []string{RegJitter, RegPackets, RegVerdict, RegBlocked}); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0x93B+p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &System{Params: p, Host: host, Ctrl: ctrl, Cfg: cfg}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Packet sends one packet of a connection at the given virtual time (ns);
// it reports whether the packet was forwarded (false = blocked).
func (s *System) Packet(conn uint16, atNs uint64) (bool, error) {
	body, err := pisa.PackHeader(flowDef, []uint64{uint64(conn)})
	if err != nil {
		return false, err
	}
	pkt := append([]byte{PTypeFlow}, body...)
	s.Host.SW.SetNow(atNs)
	res, err := s.Host.NetworkPacket(InPort, pkt)
	if err != nil {
		return false, err
	}
	return len(res.NetOut) > 0, nil
}

func (s *System) read(name string, index uint32) (uint64, error) {
	if s.Params.Secure {
		v, _, err := s.Ctrl.ReadRegister(s.Params.name(), name, index)
		return v, err
	}
	v, _, err := s.Ctrl.ReadRegisterInsecure(s.Params.name(), name, index)
	return v, err
}

func (s *System) write(name string, index uint32, v uint64) error {
	if s.Params.Secure {
		_, err := s.Ctrl.WriteRegister(s.Params.name(), name, index, v)
		return err
	}
	_, err := s.Ctrl.WriteRegisterInsecure(s.Params.name(), name, index, v)
	return err
}

// Sweep runs one controller classification pass: connections with a mean
// jitter below thresholdNs (too regular — a timing channel) are blocked.
// Tampered reads fall back to the quarantined driver path, as in §VIII.
func (s *System) Sweep(meanJitterThresholdNs uint64) error {
	for c := 0; c < s.Params.Conns; c++ {
		jitter, err := s.read(RegJitter, uint32(c))
		if err != nil {
			if !errors.Is(err, controller.ErrTampered) {
				return err
			}
			s.TamperedOps++
			if jitter, err = s.Host.SW.RegisterRead(RegJitter, c); err != nil {
				return err
			}
		}
		pkts, err := s.read(RegPackets, uint32(c))
		if err != nil {
			if !errors.Is(err, controller.ErrTampered) {
				return err
			}
			s.TamperedOps++
			if pkts, err = s.Host.SW.RegisterRead(RegPackets, c); err != nil {
				return err
			}
		}
		if pkts < 4 {
			continue // not enough samples
		}
		verdict := uint64(0)
		if jitter/pkts < meanJitterThresholdNs {
			verdict = 1
		}
		if err := s.write(RegVerdict, uint32(c), verdict); err != nil {
			if !errors.Is(err, controller.ErrTampered) {
				return err
			}
			s.TamperedOps++
			if err := s.Host.SW.RegisterWrite(RegVerdict, c, verdict); err != nil {
				return err
			}
		}
	}
	return nil
}

// Verdict reads a connection's current verdict from the data plane.
func (s *System) Verdict(conn int) (uint64, error) {
	return s.Host.SW.RegisterRead(RegVerdict, conn)
}

// InstallScoreInflater installs the paper's adversary: reported jitter
// scores are inflated so too-regular (covert) connections look noisy and
// classify as benign.
func (s *System) InstallScoreInflater() error {
	ri, err := s.Host.Info.RegisterByName(RegJitter)
	if err != nil {
		return err
	}
	id := ri.ID
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgAck || m.Reg.RegID != id {
				return data
			}
			m.Reg.Value = m.Reg.Value*10 + 1_000_000
			out, eerr := m.Encode()
			if eerr != nil {
				return data
			}
			return out
		},
	})
}
