package sketch

import "testing"

// drive pushes a mixed workload: two elephants and a mouse herd.
func driveHH(t *testing.T, s *HHSystem) (elephants []uint32) {
	t.Helper()
	elephants = []uint32{101, 202}
	for _, f := range elephants {
		for i := 0; i < 60; i++ {
			if err := s.Packet(f); err != nil {
				t.Fatalf("packet: %v", err)
			}
		}
	}
	for f := uint32(2000); f < 2040; f++ {
		if err := s.Packet(f); err != nil {
			t.Fatalf("packet: %v", err)
		}
	}
	return elephants
}

func hhCandidates(elephants []uint32) []uint32 {
	cands := append([]uint32{}, elephants...)
	for f := uint32(2000); f < 2040; f++ {
		cands = append(cands, f)
	}
	return cands
}

func TestHHPromotesElephants(t *testing.T) {
	for _, secure := range []bool{true, false} {
		hp := DefaultHHParams(secure)
		hp.CMSRows = 4 // tame mouse/elephant collisions for exact assertions
		s, err := NewHH(hp)
		if err != nil {
			t.Fatalf("NewHH(secure=%v): %v", secure, err)
		}
		elephants := driveHH(t, s)
		if err := s.PromoteEpoch(hhCandidates(elephants), 50); err != nil {
			t.Fatalf("PromoteEpoch: %v", err)
		}
		watch, err := s.Watchlist()
		if err != nil {
			t.Fatalf("Watchlist: %v", err)
		}
		got := map[uint32]bool{}
		for _, f := range watch {
			got[f] = true
		}
		for _, f := range elephants {
			if !got[f] {
				t.Errorf("secure=%v: elephant %d missing from watchlist %v", secure, f, watch)
			}
		}
		if len(watch) != len(elephants) {
			t.Errorf("secure=%v: watchlist %v has extra entries", secure, watch)
		}
		if s.Epochs != 1 || s.SkippedEpochs != 0 {
			t.Errorf("secure=%v: epochs=%d skipped=%d", secure, s.Epochs, s.SkippedEpochs)
		}
	}
}

// With P4Auth the deflater is detected: the epoch is skipped and the
// watchlist keeps its last good contents. Insecure, the attack lands —
// elephants silently vanish from the watchlist.
func TestHHCountDeflaterDetectedVsUndetected(t *testing.T) {
	t.Run("secure", func(t *testing.T) {
		hp := DefaultHHParams(true)
		hp.CMSRows = 4
		s, err := NewHH(hp)
		if err != nil {
			t.Fatalf("NewHH: %v", err)
		}
		elephants := driveHH(t, s)
		if err := s.PromoteEpoch(hhCandidates(elephants), 50); err != nil {
			t.Fatalf("clean epoch: %v", err)
		}
		if err := s.InstallCountDeflater(10); err != nil {
			t.Fatalf("InstallCountDeflater: %v", err)
		}
		if err := s.PromoteEpoch(hhCandidates(elephants), 50); err != nil {
			t.Fatalf("attacked epoch: %v", err)
		}
		if s.SkippedEpochs != 1 {
			t.Fatalf("SkippedEpochs = %d, want 1", s.SkippedEpochs)
		}
		watch, err := s.Watchlist()
		if err != nil {
			t.Fatalf("Watchlist: %v", err)
		}
		if len(watch) != len(elephants) {
			t.Fatalf("watchlist lost its last good contents: %v", watch)
		}
	})
	t.Run("insecure", func(t *testing.T) {
		hp := DefaultHHParams(false)
		hp.CMSRows = 4
		s, err := NewHH(hp)
		if err != nil {
			t.Fatalf("NewHH: %v", err)
		}
		elephants := driveHH(t, s)
		if err := s.InstallCountDeflater(10); err != nil {
			t.Fatalf("InstallCountDeflater: %v", err)
		}
		if err := s.PromoteEpoch(hhCandidates(elephants), 50); err != nil {
			t.Fatalf("PromoteEpoch: %v", err)
		}
		if s.SkippedEpochs != 0 {
			t.Fatalf("insecure run flagged tampering")
		}
		watch, err := s.Watchlist()
		if err != nil {
			t.Fatalf("Watchlist: %v", err)
		}
		if len(watch) != 0 {
			t.Fatalf("deflater should empty the watchlist, got %v", watch)
		}
	})
}

func TestHHNamedInstancesIndependent(t *testing.T) {
	p := DefaultHHParams(true)
	p.Name, p.Seed = "hh-pod0", 7
	a, err := NewHH(p)
	if err != nil {
		t.Fatalf("NewHH: %v", err)
	}
	p.Name, p.Seed = "hh-pod1", 8
	b, err := NewHH(p)
	if err != nil {
		t.Fatalf("NewHH: %v", err)
	}
	if a.Host.Name == b.Host.Name {
		t.Fatalf("instances share host name %q", a.Host.Name)
	}
	if err := a.Packet(9); err != nil {
		t.Fatalf("packet: %v", err)
	}
	if est, err := b.readEstimate(9); err != nil || est != 0 {
		t.Fatalf("instance b saw instance a's traffic: est=%d err=%v", est, err)
	}
}
