package sketch

import (
	"testing"
	"testing/quick"

	"p4auth/internal/pisa"
)

// cmsProgram builds a test pipeline: packets carry a 32-bit key and an op
// byte; op 0 updates the sketch, op 1 queries it. The estimate lands in a
// result register.
func cmsProgram(t *testing.T, c *CMS) *pisa.Switch {
	t.Helper()
	prog := &pisa.Program{
		Name: "cms_test",
		Headers: []*pisa.HeaderDef{{Name: "q", Fields: []pisa.FieldDef{
			{Name: "op", Width: 8},
			{Name: "key", Width: 32},
		}}},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: "q"}},
		DeparseOrder: []string{"q"},
		Registers:    []*pisa.RegisterDef{{Name: "result", Width: 32, Entries: 1}},
	}
	c.AddToProgram(prog)
	key := pisa.R(pisa.F("q", "key"))
	prog.Control = []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(pisa.F("q", "op")), pisa.C(0)), c.UpdateOps(key), c.QueryOps(key)),
		pisa.RegWrite("result", pisa.C(0), pisa.R(pisa.F(pisa.MetaHeader, c.MinMeta()))),
		pisa.Forward(pisa.C(1)),
	}
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func cmsPacket(t *testing.T, op uint8, key uint32) []byte {
	t.Helper()
	def := &pisa.HeaderDef{Name: "q", Fields: []pisa.FieldDef{
		{Name: "op", Width: 8}, {Name: "key", Width: 32},
	}}
	b, err := pisa.PackHeader(def, []uint64{uint64(op), uint64(key)})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCMSCountsInPipeline(t *testing.T) {
	c, err := NewCMS("cms", 3, 256)
	if err != nil {
		t.Fatal(err)
	}
	sw := cmsProgram(t, c)
	mirror := NewMirror(c)

	// Update key 42 five times, key 7 twice.
	for i := 0; i < 5; i++ {
		if _, err := sw.Process(pisa.Packet{Data: cmsPacket(t, 0, 42), Port: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := sw.Process(pisa.Packet{Data: cmsPacket(t, 0, 7), Port: 1}); err != nil {
			t.Fatal(err)
		}
	}

	// Pipeline query matches the mirror's driver-side estimate.
	if _, err := sw.Process(pisa.Packet{Data: cmsPacket(t, 1, 42), Port: 1}); err != nil {
		t.Fatal(err)
	}
	q42, _ := sw.RegisterRead("result", 0)
	m42, err := mirror.Estimate(sw, 42)
	if err != nil {
		t.Fatal(err)
	}
	if q42 != m42 {
		t.Fatalf("pipeline estimate %d != mirror %d", q42, m42)
	}
	// CMS guarantees: estimate >= true count.
	if q42 < 5 {
		t.Fatalf("estimate %d below true count 5", q42)
	}
	if m7, _ := mirror.Estimate(sw, 7); m7 < 2 {
		t.Fatalf("estimate %d below true count 2", m7)
	}
	// An unseen key usually reads 0 with this load factor.
	if m9, _ := mirror.Estimate(sw, 0xFFFF_0009); m9 > 2 {
		t.Errorf("unseen key estimate %d suspiciously high", m9)
	}
}

func TestCMSClearResets(t *testing.T) {
	c, err := NewCMS("cms", 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	sw := cmsProgram(t, c)
	mirror := NewMirror(c)
	for i := 0; i < 10; i++ {
		if _, err := sw.Process(pisa.Packet{Data: cmsPacket(t, 0, 1), Port: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mirror.Clear(sw); err != nil {
		t.Fatal(err)
	}
	if v, _ := mirror.Estimate(sw, 1); v != 0 {
		t.Fatalf("estimate %d after clear", v)
	}
}

func TestCMSOverestimatesNeverUnder(t *testing.T) {
	c, err := NewCMS("cms", 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	sw := cmsProgram(t, c)
	mirror := NewMirror(c)
	truth := map[uint32]uint64{}
	f := func(key uint32, times uint8) bool {
		n := uint64(times%4) + 1
		for i := uint64(0); i < n; i++ {
			if _, err := sw.Process(pisa.Packet{Data: cmsPacket(t, 0, key), Port: 1}); err != nil {
				return false
			}
		}
		truth[key] += n
		est, err := mirror.Estimate(sw, key)
		if err != nil {
			return false
		}
		return est >= truth[key]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCMSValidation(t *testing.T) {
	if _, err := NewCMS("x", 0, 64); err == nil {
		t.Error("0 rows must fail")
	}
	if _, err := NewCMS("x", 2, 100); err == nil {
		t.Error("non-power-of-two cols must fail")
	}
}

func TestBloomInPipeline(t *testing.T) {
	b, err := NewBloom("bf", 3, 512)
	if err != nil {
		t.Fatal(err)
	}
	prog := &pisa.Program{
		Name: "bloom_test",
		Headers: []*pisa.HeaderDef{{Name: "q", Fields: []pisa.FieldDef{
			{Name: "op", Width: 8},
			{Name: "key", Width: 32},
		}}},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: "q"}},
		DeparseOrder: []string{"q"},
		Registers:    []*pisa.RegisterDef{{Name: "result", Width: 8, Entries: 1}},
	}
	b.AddToProgram(prog)
	key := pisa.R(pisa.F("q", "key"))
	prog.Control = []pisa.Op{
		pisa.If(pisa.Eq(pisa.R(pisa.F("q", "op")), pisa.C(0)), b.InsertOps(key), b.TestOps(key)),
		pisa.RegWrite("result", pisa.C(0), pisa.R(pisa.F(pisa.MetaHeader, b.HitMeta()))),
		pisa.Forward(pisa.C(1)),
	}
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}
	mirror := NewBloomMirror(b)

	send := func(op uint8, key uint32) uint64 {
		def := &pisa.HeaderDef{Name: "q", Fields: []pisa.FieldDef{
			{Name: "op", Width: 8}, {Name: "key", Width: 32},
		}}
		data, _ := pisa.PackHeader(def, []uint64{uint64(op), uint64(key)})
		if _, err := sw.Process(pisa.Packet{Data: data, Port: 1}); err != nil {
			t.Fatal(err)
		}
		v, _ := sw.RegisterRead("result", 0)
		return v
	}

	send(0, 1234) // insert
	if hit := send(1, 1234); hit != 1 {
		t.Fatal("inserted key not found")
	}
	if ok, _ := mirror.Test(sw, 1234); !ok {
		t.Fatal("mirror disagrees on inserted key")
	}
	if hit := send(1, 9999); hit != 0 {
		t.Error("absent key reported present (possible but unlikely at this load)")
	}
	if err := mirror.Clear(sw); err != nil {
		t.Fatal(err)
	}
	if hit := send(1, 1234); hit != 0 {
		t.Error("key present after clear")
	}
}

func TestBloomNoFalseNegativesQuick(t *testing.T) {
	b, err := NewBloom("bf", 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Driver-level property via the mirror only (no pipeline needed):
	// inserted keys always test positive.
	prog := &pisa.Program{Name: "bf_only"}
	b.AddToProgram(prog)
	sw, err := pisa.NewSwitch(prog, pisa.BMv2Profile())
	if err != nil {
		t.Fatal(err)
	}
	mirror := NewBloomMirror(b)
	f := func(key uint32) bool {
		for h, idx := range mirror.Indexes(key) {
			if err := sw.RegisterWrite(b.rowReg(h), idx, 1); err != nil {
				return false
			}
		}
		ok, err := mirror.Test(sw, key)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom("x", 9, 64); err == nil {
		t.Error("too many hashes must fail")
	}
	if _, err := NewBloom("x", 2, 3); err == nil {
		t.Error("non-power-of-two bits must fail")
	}
}
