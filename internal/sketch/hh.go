// Heavy-hitter detection is the paper's Table I "sketch" row: a
// count-min sketch in registers counts every flow, the controller pulls
// per-flow estimates over C-DP and promotes flows past a threshold onto
// an in-switch watchlist register. The adversary of the row deflates the
// reported counters so elephants never reach the watchlist; with P4Auth
// the tampered reads are rejected and the watchlist keeps its last good
// contents.
package sketch

import (
	"errors"
	"fmt"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// PTypeHH tags counted packets.
const PTypeHH = 0x44

// RegWatch is the heavy-hitter watchlist (one flow ID per slot).
const RegWatch = "hh_watch"

// HHParams configures the detector.
type HHParams struct {
	CMSRows int
	CMSCols int
	// WatchSlots is the watchlist capacity.
	WatchSlots int
	Secure     bool
	// Name identifies the switch at its controller; empty means "hh".
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// defaults deterministic per instance name.
	Seed uint64
}

// DefaultHHParams sizes a small demonstration detector.
func DefaultHHParams(secure bool) HHParams {
	return HHParams{CMSRows: 2, CMSCols: 512, WatchSlots: 8, Secure: secure}
}

func (p HHParams) name() string {
	if p.Name == "" {
		return "hh"
	}
	return p.Name
}

// HHSystem is a running heavy-hitter deployment.
type HHSystem struct {
	Params HHParams
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg    core.Config
	CMS    *CMS
	Mirror *Mirror

	// watch mirrors the installed watchlist (slot -> flow).
	watch []uint32
	// SkippedEpochs counts controller epochs abandoned due to tampering.
	SkippedEpochs int
	// Epochs counts completed promotion epochs.
	Epochs int
}

var hhDef = &pisa.HeaderDef{Name: "hhp", Fields: []pisa.FieldDef{
	{Name: "flow", Width: 32},
}}

func buildHHProgram(p HHParams) (*pisa.Program, *CMS, core.Config, error) {
	cms, err := NewCMS("hh_cms", p.CMSRows, p.CMSCols)
	if err != nil {
		return nil, nil, core.Config{}, err
	}
	prog := &pisa.Program{
		Name:    "heavyhitter",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), hhDef},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeHH: "hh_pkt"}},
			{Name: "hh_pkt", Extract: "hhp"},
		},
		DeparseOrder: []string{core.HdrPType, "hhp"},
		Registers: []*pisa.RegisterDef{
			{Name: RegWatch, Width: 32, Entries: p.WatchSlots},
		},
	}
	cms.AddToProgram(prog)
	flow := pisa.R(pisa.F("hhp", "flow"))
	ops := append(append([]pisa.Op{}, cms.UpdateOps(flow)...), pisa.Forward(pisa.C(2)))
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("hhp"), ops)}

	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Insecure = !p.Secure
	exposed := append(cms.RegisterNames(), RegWatch)
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, nil, cfg, err
	}
	return prog, cms, cfg, nil
}

// NewHH deploys the detector switch and its controller.
func NewHH(p HHParams) (*HHSystem, error) {
	prog, cms, cfg, err := buildHHProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0x440A+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	exposed := append(cms.RegisterNames(), RegWatch)
	if err := core.InstallRegMap(sw, host.Info, exposed); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0x440B + p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &HHSystem{
		Params: p,
		Host:   host,
		Ctrl:   ctrl,
		Cfg:    cfg,
		CMS:    cms,
		Mirror: NewMirror(cms),
		watch:  make([]uint32, p.WatchSlots),
	}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Packet counts one packet of a flow.
func (s *HHSystem) Packet(flow uint32) error {
	body, err := pisa.PackHeader(hhDef, []uint64{uint64(flow)})
	if err != nil {
		return err
	}
	pkt := append([]byte{PTypeHH}, body...)
	_, err = s.Host.NetworkPacket(1, pkt)
	return err
}

// readEstimate fetches a flow's sketch estimate over C-DP — the report
// path the Table I adversary deflates.
func (s *HHSystem) readEstimate(flow uint32) (uint64, error) {
	min := ^uint64(0)
	for r, idx := range s.Mirror.Indexes(flow) {
		name := fmt.Sprintf("%s_row%d", s.CMS.Name, r)
		var v uint64
		var err error
		if s.Params.Secure {
			v, _, err = s.Ctrl.ReadRegister(s.Params.name(), name, uint32(idx))
		} else {
			v, _, err = s.Ctrl.ReadRegisterInsecure(s.Params.name(), name, uint32(idx))
		}
		if err != nil {
			return 0, err
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// PromoteEpoch runs one controller cycle over the candidate flows:
// estimates above threshold are installed onto the watchlist (up to its
// capacity, heaviest first by scan order). On tamper detection the
// watchlist keeps its previous contents and the epoch counts as skipped.
func (s *HHSystem) PromoteEpoch(candidates []uint32, threshold uint64) error {
	var heavy []uint32
	for _, f := range candidates {
		est, err := s.readEstimate(f)
		if err != nil {
			if errors.Is(err, controller.ErrTampered) {
				s.SkippedEpochs++
				return nil
			}
			return err
		}
		if est >= threshold {
			heavy = append(heavy, f)
		}
	}
	for i := 0; i < s.Params.WatchSlots; i++ {
		var f uint32
		if i < len(heavy) {
			f = heavy[i]
		}
		if err := s.Host.SW.RegisterWrite(RegWatch, i, uint64(f)); err != nil {
			return err
		}
		s.watch[i] = f
	}
	s.Epochs++
	return nil
}

// Watchlist returns the flows currently on the in-switch watchlist.
func (s *HHSystem) Watchlist() ([]uint32, error) {
	out := make([]uint32, 0, s.Params.WatchSlots)
	for i := 0; i < s.Params.WatchSlots; i++ {
		v, err := s.Host.SW.RegisterRead(RegWatch, i)
		if err != nil {
			return nil, err
		}
		if v != 0 {
			out = append(out, uint32(v))
		}
	}
	return out, nil
}

// InstallCountDeflater installs the Table I adversary: reported sketch
// counters above floor read as zero, so elephants look like mice.
func (s *HHSystem) InstallCountDeflater(floor uint64) error {
	rowIDs := make(map[uint32]bool, s.CMS.Rows)
	for _, name := range s.CMS.RegisterNames() {
		ri, err := s.Host.Info.RegisterByName(name)
		if err != nil {
			return err
		}
		rowIDs[ri.ID] = true
	}
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgAck {
				return data
			}
			if rowIDs[m.Reg.RegID] && m.Reg.Value > floor {
				m.Reg.Value = 0
				out, eerr := m.Encode()
				if eerr != nil {
					return data
				}
				return out
			}
			return data
		},
	})
}
