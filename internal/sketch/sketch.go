// Package sketch provides compact data structures that compile onto the
// PISA substrate — the count-min sketch and bloom filter that NetCache and
// SilkRoad keep in switch registers (paper Table I). Each builder adds the
// registers and ops to a pisa program; a Go-side mirror computes the same
// hashes for controllers and tests.
package sketch

import (
	"fmt"

	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
)

// CMS describes a count-min sketch realized as `rows` register arrays of
// `cols` 32-bit counters, indexed by per-row keyed CRC32 hashes of a key
// field. Rows are seeded with distinct hash keys (hardware: distinct CRC
// polynomials/seeds per hash unit).
type CMS struct {
	Name string
	Rows int
	Cols int // power of two
}

// NewCMS validates the geometry.
func NewCMS(name string, rows, cols int) (*CMS, error) {
	if rows < 1 || rows > 8 {
		return nil, fmt.Errorf("sketch: %s: rows %d out of [1,8]", name, rows)
	}
	if cols < 2 || cols&(cols-1) != 0 {
		return nil, fmt.Errorf("sketch: %s: cols %d must be a power of two", name, cols)
	}
	return &CMS{Name: name, Rows: rows, Cols: cols}, nil
}

func (c *CMS) rowReg(r int) string { return fmt.Sprintf("%s_row%d", c.Name, r) }

func (c *CMS) rowSeed(r int) uint64 { return 0xC0153EED + uint64(r)*0x9E3779B9 }

func (c *CMS) idxMeta(r int) string { return fmt.Sprintf("%s_idx%d", c.Name, r) }

func (c *CMS) cntMeta(r int) string { return fmt.Sprintf("%s_cnt%d", c.Name, r) }

// MinMeta is the metadata field holding the sketch estimate after Query
// ops run.
func (c *CMS) MinMeta() string { return c.Name + "_min" }

// AddToProgram declares the registers and metadata the sketch needs.
func (c *CMS) AddToProgram(prog *pisa.Program) {
	for r := 0; r < c.Rows; r++ {
		prog.Registers = append(prog.Registers, &pisa.RegisterDef{
			Name: c.rowReg(r), Width: 32, Entries: c.Cols,
		})
		prog.Metadata = append(prog.Metadata,
			pisa.FieldDef{Name: c.idxMeta(r), Width: 32},
			pisa.FieldDef{Name: c.cntMeta(r), Width: 32},
		)
	}
	prog.Metadata = append(prog.Metadata, pisa.FieldDef{Name: c.MinMeta(), Width: 32})
}

func (c *CMS) hashOps(key pisa.Operand) []pisa.Op {
	var ops []pisa.Op
	for r := 0; r < c.Rows; r++ {
		idx := pisa.F(pisa.MetaHeader, c.idxMeta(r))
		ops = append(ops,
			pisa.KeyedHash(idx, pisa.HashCRC32, pisa.C(c.rowSeed(r)), key),
			pisa.And(idx, pisa.R(idx), pisa.C(uint64(c.Cols-1))),
		)
	}
	return ops
}

// UpdateOps returns ops that increment all rows for the key and leave the
// pre-increment minimum estimate in MinMeta (one RMW per row — a single
// register access each, hardware-legal).
func (c *CMS) UpdateOps(key pisa.Operand) []pisa.Op {
	ops := c.hashOps(key)
	for r := 0; r < c.Rows; r++ {
		cnt := pisa.F(pisa.MetaHeader, c.cntMeta(r))
		ops = append(ops,
			pisa.RegRMW(cnt, c.rowReg(r), pisa.R(pisa.F(pisa.MetaHeader, c.idxMeta(r))), pisa.RMWAdd, pisa.C(1)),
		)
	}
	ops = append(ops, c.minOps()...)
	return ops
}

// QueryOps returns ops that read all rows for the key without updating,
// leaving the estimate in MinMeta.
func (c *CMS) QueryOps(key pisa.Operand) []pisa.Op {
	ops := c.hashOps(key)
	for r := 0; r < c.Rows; r++ {
		cnt := pisa.F(pisa.MetaHeader, c.cntMeta(r))
		ops = append(ops,
			pisa.RegRead(cnt, c.rowReg(r), pisa.R(pisa.F(pisa.MetaHeader, c.idxMeta(r)))),
		)
	}
	ops = append(ops, c.minOps()...)
	return ops
}

func (c *CMS) minOps() []pisa.Op {
	min := pisa.F(pisa.MetaHeader, c.MinMeta())
	ops := []pisa.Op{pisa.Set(min, pisa.R(pisa.F(pisa.MetaHeader, c.cntMeta(0))))}
	for r := 1; r < c.Rows; r++ {
		cnt := pisa.R(pisa.F(pisa.MetaHeader, c.cntMeta(r)))
		ops = append(ops, pisa.If(pisa.Lt(cnt, pisa.R(min)), []pisa.Op{pisa.Set(min, cnt)}))
	}
	return ops
}

// RegisterNames lists the sketch's register arrays (for clearing/export).
func (c *CMS) RegisterNames() []string {
	names := make([]string, c.Rows)
	for r := 0; r < c.Rows; r++ {
		names[r] = c.rowReg(r)
	}
	return names
}

// Mirror is the Go-side reference implementation computing the identical
// hashes (used by controllers and tests to predict data-plane state).
type Mirror struct {
	cms *CMS
	prf crypto.KeyedCRC32
}

// NewMirror builds a mirror for the sketch geometry.
func NewMirror(c *CMS) *Mirror {
	return &Mirror{cms: c, prf: crypto.NewKeyedCRC32()}
}

// Indexes returns the per-row column index for a key, matching the
// data-plane hash ops bit-for-bit (MSB-first packed 32-bit key).
func (m *Mirror) Indexes(key uint32) []int {
	out := make([]int, m.cms.Rows)
	b := []byte{byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key)}
	for r := 0; r < m.cms.Rows; r++ {
		out[r] = int(m.prf.Sum32(m.cms.rowSeed(r), b)) & (m.cms.Cols - 1)
	}
	return out
}

// Estimate reads the sketch estimate for a key through the driver.
func (m *Mirror) Estimate(sw *pisa.Switch, key uint32) (uint64, error) {
	min := ^uint64(0)
	for r, idx := range m.Indexes(key) {
		v, err := sw.RegisterRead(m.cms.rowReg(r), idx)
		if err != nil {
			return 0, err
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// Clear zeroes the sketch through the driver (the controller's periodic
// statistics reset in NetCache).
func (m *Mirror) Clear(sw *pisa.Switch) error {
	for r := 0; r < m.cms.Rows; r++ {
		for i := 0; i < m.cms.Cols; i++ {
			if err := sw.RegisterWrite(m.cms.rowReg(r), i, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// Bloom is a bloom filter over `hashes` single-bit register rows (the
// SilkRoad transit-table shape).
type Bloom struct {
	Name   string
	Hashes int
	Bits   int // power of two
}

// NewBloom validates the geometry.
func NewBloom(name string, hashes, bits int) (*Bloom, error) {
	if hashes < 1 || hashes > 8 {
		return nil, fmt.Errorf("sketch: %s: hashes %d out of [1,8]", name, hashes)
	}
	if bits < 2 || bits&(bits-1) != 0 {
		return nil, fmt.Errorf("sketch: %s: bits %d must be a power of two", name, bits)
	}
	return &Bloom{Name: name, Hashes: hashes, Bits: bits}, nil
}

func (b *Bloom) rowReg(h int) string  { return fmt.Sprintf("%s_h%d", b.Name, h) }
func (b *Bloom) rowSeed(h int) uint64 { return 0xB100F11E + uint64(h)*0x61C88647 }
func (b *Bloom) idxMeta(h int) string { return fmt.Sprintf("%s_bidx%d", b.Name, h) }
func (b *Bloom) bitMeta(h int) string { return fmt.Sprintf("%s_bit%d", b.Name, h) }

// HitMeta holds 1 after TestOps when all bits were set.
func (b *Bloom) HitMeta() string { return b.Name + "_hit" }

// AddToProgram declares the filter's registers and metadata.
func (b *Bloom) AddToProgram(prog *pisa.Program) {
	for h := 0; h < b.Hashes; h++ {
		prog.Registers = append(prog.Registers, &pisa.RegisterDef{
			Name: b.rowReg(h), Width: 1, Entries: b.Bits,
		})
		prog.Metadata = append(prog.Metadata,
			pisa.FieldDef{Name: b.idxMeta(h), Width: 32},
			pisa.FieldDef{Name: b.bitMeta(h), Width: 8},
		)
	}
	prog.Metadata = append(prog.Metadata, pisa.FieldDef{Name: b.HitMeta(), Width: 8})
}

func (b *Bloom) hashOps(key pisa.Operand) []pisa.Op {
	var ops []pisa.Op
	for h := 0; h < b.Hashes; h++ {
		idx := pisa.F(pisa.MetaHeader, b.idxMeta(h))
		ops = append(ops,
			pisa.KeyedHash(idx, pisa.HashCRC32, pisa.C(b.rowSeed(h)), key),
			pisa.And(idx, pisa.R(idx), pisa.C(uint64(b.Bits-1))),
		)
	}
	return ops
}

// InsertOps sets the key's bits.
func (b *Bloom) InsertOps(key pisa.Operand) []pisa.Op {
	ops := b.hashOps(key)
	for h := 0; h < b.Hashes; h++ {
		ops = append(ops,
			pisa.RegWrite(b.rowReg(h), pisa.R(pisa.F(pisa.MetaHeader, b.idxMeta(h))), pisa.C(1)),
		)
	}
	return ops
}

// TestOps leaves 1 in HitMeta iff every bit for the key is set.
func (b *Bloom) TestOps(key pisa.Operand) []pisa.Op {
	ops := b.hashOps(key)
	hit := pisa.F(pisa.MetaHeader, b.HitMeta())
	for h := 0; h < b.Hashes; h++ {
		ops = append(ops,
			pisa.RegRead(pisa.F(pisa.MetaHeader, b.bitMeta(h)), b.rowReg(h), pisa.R(pisa.F(pisa.MetaHeader, b.idxMeta(h)))),
		)
	}
	ops = append(ops, pisa.Set(hit, pisa.C(1)))
	for h := 0; h < b.Hashes; h++ {
		ops = append(ops, pisa.If(pisa.Eq(pisa.R(pisa.F(pisa.MetaHeader, b.bitMeta(h))), pisa.C(0)),
			[]pisa.Op{pisa.Set(hit, pisa.C(0))}))
	}
	return ops
}

// RegisterNames lists the filter's register arrays.
func (b *Bloom) RegisterNames() []string {
	names := make([]string, b.Hashes)
	for h := 0; h < b.Hashes; h++ {
		names[h] = b.rowReg(h)
	}
	return names
}

// BloomMirror predicts data-plane bloom state from Go.
type BloomMirror struct {
	bloom *Bloom
	prf   crypto.KeyedCRC32
}

// NewBloomMirror builds the mirror.
func NewBloomMirror(b *Bloom) *BloomMirror {
	return &BloomMirror{bloom: b, prf: crypto.NewKeyedCRC32()}
}

// Indexes returns per-hash bit positions for a key.
func (m *BloomMirror) Indexes(key uint32) []int {
	out := make([]int, m.bloom.Hashes)
	bs := []byte{byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key)}
	for h := 0; h < m.bloom.Hashes; h++ {
		out[h] = int(m.prf.Sum32(m.bloom.rowSeed(h), bs)) & (m.bloom.Bits - 1)
	}
	return out
}

// Test reads the filter through the driver.
func (m *BloomMirror) Test(sw *pisa.Switch, key uint32) (bool, error) {
	for h, idx := range m.Indexes(key) {
		v, err := sw.RegisterRead(m.bloom.rowReg(h), idx)
		if err != nil {
			return false, err
		}
		if v == 0 {
			return false, nil
		}
	}
	return true, nil
}

// Clear zeroes the filter through the driver.
func (m *BloomMirror) Clear(sw *pisa.Switch) error {
	for h := 0; h < m.bloom.Hashes; h++ {
		for i := 0; i < m.bloom.Bits; i++ {
			if err := sw.RegisterWrite(m.bloom.rowReg(h), i, 0); err != nil {
				return err
			}
		}
	}
	return nil
}
