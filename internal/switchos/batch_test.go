package switchos

import (
	"bytes"
	"testing"
	"time"

	"p4auth/internal/pisa"
)

func newWorkerHost(t *testing.T, workers int) *Host {
	t.Helper()
	sw, err := pisa.NewSwitch(hostProgram(), pisa.TofinoProfile(), pisa.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sw.Close)
	return NewHost("s1", sw, DefaultCosts())
}

// netBatch builds a mixed batch: kind=1 goes to CPU (PacketIn), kind=0
// forwards to port 2 (NetOut), spread across ingress ports.
func netBatch(n, ports int) []pisa.Packet {
	pkts := make([]pisa.Packet, n)
	for i := range pkts {
		pkts[i] = pisa.Packet{Data: []byte{byte(i % 2)}, Port: i % ports}
	}
	return pkts
}

// TestNetworkPacketBatchMatchesPerPacket checks the batch ingress path
// against a per-packet NetworkPacket loop on a serial switch: identical
// NetOut and PacketIn contents, and a batch cost equal to the per-packet
// sum minus the amortized agent dispatches (one PacketIOBase for the whole
// batch instead of one per PacketIn-producing packet).
func TestNetworkPacketBatchMatchesPerPacket(t *testing.T) {
	hBatch := newHost(t)
	hLoop := newHost(t)
	pkts := netBatch(16, 4)

	bres, err := hBatch.NetworkPacketBatch(pkts)
	if err != nil {
		t.Fatal(err)
	}
	var wantNetOut []pisa.Emission
	var wantPins [][]byte
	var wantCost time.Duration
	pinPackets := 0
	for _, pkt := range pkts {
		res, err := hLoop.NetworkPacket(pkt.Port, pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		wantCost += res.Cost
		if len(res.PacketIns) > 0 {
			pinPackets++
		}
		for _, e := range res.NetOut {
			wantNetOut = append(wantNetOut, pisa.Emission{Port: e.Port, Data: append([]byte(nil), e.Data...)})
		}
		for _, p := range res.PacketIns {
			wantPins = append(wantPins, append([]byte(nil), p...))
		}
	}
	if len(bres.NetOut) != len(wantNetOut) {
		t.Fatalf("NetOut count %d, want %d", len(bres.NetOut), len(wantNetOut))
	}
	for i := range wantNetOut {
		if bres.NetOut[i].Port != wantNetOut[i].Port || !bytes.Equal(bres.NetOut[i].Data, wantNetOut[i].Data) {
			t.Fatalf("NetOut[%d] diverges from per-packet loop", i)
		}
	}
	if len(bres.PacketIns) != len(wantPins) {
		t.Fatalf("PacketIns count %d, want %d", len(bres.PacketIns), len(wantPins))
	}
	for i := range wantPins {
		if !bytes.Equal(bres.PacketIns[i], wantPins[i]) {
			t.Fatalf("PacketIns[%d] diverges from per-packet loop", i)
		}
	}
	if pinPackets > 0 {
		wantCost -= time.Duration(pinPackets-1) * DefaultCosts().PacketIOBase
	}
	if bres.Cost != wantCost {
		t.Fatalf("batch cost %v, want %v (per-packet sum with one amortized dispatch)", bres.Cost, wantCost)
	}
}

// TestNetworkPacketBatchWorkersMatchSerial checks the worker-backed batch
// ingress path produces the same emissions as the serial host, and that a
// reused IOResult stays correct across calls (the zero-copy buffers are
// rewritten, not leaked).
func TestNetworkPacketBatchWorkersMatchSerial(t *testing.T) {
	serial := newHost(t)
	worker := newWorkerHost(t, 4)
	pkts := netBatch(32, 8)

	want, err := serial.NetworkPacketBatch(pkts)
	if err != nil {
		t.Fatal(err)
	}
	var io IOResult
	for round := 0; round < 3; round++ {
		if err := worker.NetworkPacketBatchInto(pkts, &io); err != nil {
			t.Fatal(err)
		}
		if len(io.NetOut) != len(want.NetOut) || len(io.PacketIns) != len(want.PacketIns) {
			t.Fatalf("round %d: %d/%d outputs, want %d/%d",
				round, len(io.NetOut), len(io.PacketIns), len(want.NetOut), len(want.PacketIns))
		}
		for i := range want.NetOut {
			if io.NetOut[i].Port != want.NetOut[i].Port || !bytes.Equal(io.NetOut[i].Data, want.NetOut[i].Data) {
				t.Fatalf("round %d: NetOut[%d] diverges from serial host", round, i)
			}
		}
		for i := range want.PacketIns {
			if !bytes.Equal(io.PacketIns[i], want.PacketIns[i]) {
				t.Fatalf("round %d: PacketIns[%d] diverges from serial host", round, i)
			}
		}
	}
}

// TestPacketOutBatchWorkersMatchSerial checks the pipelined PacketOut
// transport (worker-backed switches) against the serial window path, with
// and without an interposed hook.
func TestPacketOutBatchWorkersMatchSerial(t *testing.T) {
	serial := newHost(t)
	worker := newWorkerHost(t, 4)
	datas := [][]byte{{1}, {0}, {1}, {0}, {1}}

	want, err := serial.PacketOutBatch(datas)
	if err != nil {
		t.Fatal(err)
	}
	got, err := worker.PacketOutBatch(datas)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PacketIns) != len(want.PacketIns) || len(got.NetOut) != len(want.NetOut) {
		t.Fatalf("outputs %d/%d, want %d/%d",
			len(got.NetOut), len(got.PacketIns), len(want.NetOut), len(want.PacketIns))
	}
	for i := range want.PacketIns {
		if !bytes.Equal(got.PacketIns[i], want.PacketIns[i]) {
			t.Fatalf("PacketIns[%d] diverges from serial window path", i)
		}
	}

	// A dropping hook must suppress the packet on both transports.
	for _, h := range []*Host{serial, worker} {
		if err := h.Install(BoundaryAgentSDK, &Hooks{
			OnPacketOut: func(data []byte) []byte { return nil },
		}); err != nil {
			t.Fatal(err)
		}
	}
	want, err = serial.PacketOutBatch(datas)
	if err != nil {
		t.Fatal(err)
	}
	got, err = worker.PacketOutBatch(datas)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.PacketIns) != 0 || len(got.PacketIns) != 0 || len(want.NetOut) != 0 || len(got.NetOut) != 0 {
		t.Fatalf("dropping hook leaked output: serial %d/%d worker %d/%d",
			len(want.NetOut), len(want.PacketIns), len(got.NetOut), len(got.PacketIns))
	}
}

// TestNetworkPacketBatchBufferStability pins the zero-copy contract: every
// PacketIn of a batch keeps its own bytes after the whole batch completes
// (distinct packets do not share a recycled arena).
func TestNetworkPacketBatchBufferStability(t *testing.T) {
	h := newWorkerHost(t, 4)
	// All to-CPU packets, each with a distinguishable payload byte pattern.
	pkts := make([]pisa.Packet, 12)
	for i := range pkts {
		pkts[i] = pisa.Packet{Data: []byte{1}, Port: i % 4}
	}
	res, err := h.NetworkPacketBatch(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != len(pkts) {
		t.Fatalf("%d PacketIns, want %d", len(res.PacketIns), len(pkts))
	}
	for i, p := range res.PacketIns {
		if len(p) == 0 || p[0] != 1 {
			t.Fatalf("PacketIns[%d] = %v corrupted after batch completion", i, p)
		}
	}
}
