// Package switchos models the switch software stack P4Auth distrusts: the
// gRPC agent, SDK, and driver layers between the control channel and the
// data plane (§II of the paper). Each layer boundary carries interposition
// hooks — the moral equivalent of the LD_PRELOAD backdoor the paper's
// threat model assumes — where an adversary with a compromised NOS can
// observe and rewrite register operations, their responses, and
// PacketOut/PacketIn traffic, all below any TLS the controller channel
// uses.
//
// Every operation returns its modeled latency so experiments composed on a
// virtual clock account for the software path the same way the paper's
// testbed does physically.
package switchos

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/obs"
	"p4auth/internal/p4rt"
	"p4auth/internal/pisa"
)

// Boundary identifies a layer boundary where hooks can be installed.
type Boundary int

// Boundaries, top down.
const (
	// BoundaryAgentSDK sits between the gRPC server agent and the SDK.
	BoundaryAgentSDK Boundary = iota
	// BoundarySDKDriver sits between the SDK and the low-level driver.
	BoundarySDKDriver
	numBoundaries
)

// RegOp is a register operation in flight through the stack. Above the SDK
// the register is identified by ID; the SDK fills in Name. Hooks may
// mutate any field — that is the attack.
type RegOp struct {
	ID      uint32
	Name    string
	Index   uint32
	Value   uint64 // writes
	IsWrite bool
}

// Hooks are the interposition points at one boundary. Nil members pass
// through.
type Hooks struct {
	// OnRegOp sees a register request heading toward the data plane.
	OnRegOp func(op *RegOp)
	// OnRegResult sees a read result heading back to the controller.
	OnRegResult func(op *RegOp, value *uint64)
	// OnPacketOut sees a PacketOut heading to the CPU port; returning nil
	// drops it.
	OnPacketOut func(data []byte) []byte
	// OnPacketIn sees a PacketIn heading to the controller; returning nil
	// drops it.
	OnPacketIn func(data []byte) []byte
}

// Costs models the software-path latency of the stack.
type Costs struct {
	// AgentBase is the gRPC receive/dispatch cost per API request.
	AgentBase time.Duration
	// ComposeField is the per-field request compose/parse cost; reads
	// carry one field (the index), writes two (index and data) — the
	// asymmetry behind Fig. 19's read/write gap.
	ComposeField time.Duration
	// SDKBase is the SDK translation cost (ID to name, validation).
	SDKBase time.Duration
	// DriverBase is the driver call overhead.
	DriverBase time.Duration
	// PCIe is the host-to-ASIC round trip.
	PCIe time.Duration
	// PacketIOBase is the agent's PacketOut/PacketIn handling cost.
	PacketIOBase time.Duration
	// PerByte is the cost per payload byte moved through the agent.
	PerByte time.Duration
}

// DefaultCosts reflect the paper's testbed regime: a Python/protobuf
// control stack where request composition dominates API calls (the 1.7x
// read/write gap of Fig. 19 comes from composing one field versus two)
// and PTF-style packet crafting makes the PacketOut path comparable to an
// API write ("not much difference in register write throughput among
// P4Runtime, DP-REG-RW and P4Auth", §IX-B).
func DefaultCosts() Costs {
	return Costs{
		AgentBase:    18 * time.Microsecond,
		ComposeField: 200 * time.Microsecond,
		SDKBase:      9 * time.Microsecond,
		DriverBase:   7 * time.Microsecond,
		PCIe:         11 * time.Microsecond,
		PacketIOBase: 160 * time.Microsecond,
		PerByte:      220 * time.Nanosecond,
	}
}

// DefaultResponseCacheSize bounds the agent's idempotency cache (recent
// control-channel exchanges remembered for retransmission handling).
const DefaultResponseCacheSize = 128

// cachedExchange remembers one completed control-channel exchange: the
// exact request bytes and the PacketIns the agent answered with.
type cachedExchange struct {
	seq  uint32
	req  []byte
	pins [][]byte
}

// responseCache is the agent-level idempotency cache: a retransmitted
// request (byte-identical, same seqNum) is answered from here instead of
// re-entering the pipeline, where the replay defence would alert and a
// key-exchange message would re-derive state. Entries are evicted FIFO;
// evicted entries donate their buffers to the replacement, so the
// steady-state store path does not allocate.
type responseCache struct {
	mu      sync.Mutex
	cap     int
	bySeq   map[uint32]int // seq -> index into entries
	entries []cachedExchange
	next    int // ring cursor
}

func newResponseCache(capacity int) *responseCache {
	return &responseCache{
		cap:     capacity,
		bySeq:   make(map[uint32]int, capacity),
		entries: make([]cachedExchange, 0, capacity),
	}
}

// lookup returns the cached PacketIns for a byte-identical duplicate of a
// previously answered request. A different request under the same seqNum
// (a genuine replay or a corrupted copy) misses, so it reaches the
// pipeline's replay defence.
func (rc *responseCache) lookup(seq uint32, req []byte) ([][]byte, bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	i, ok := rc.bySeq[seq]
	if !ok || !bytes.Equal(rc.entries[i].req, req) {
		return nil, false
	}
	// Deep-copy: callers (taps, hooks) may hold onto the slices, and the
	// entry's buffers are recycled on eviction.
	out := make([][]byte, len(rc.entries[i].pins))
	for j, p := range rc.entries[i].pins {
		out[j] = append([]byte(nil), p...)
	}
	return out, true
}

func (rc *responseCache) store(seq uint32, req []byte, pins [][]byte) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var e *cachedExchange
	if i, ok := rc.bySeq[seq]; ok {
		e = &rc.entries[i] // latest answer for this seq wins
	} else if len(rc.entries) < rc.cap {
		rc.bySeq[seq] = len(rc.entries)
		rc.entries = append(rc.entries, cachedExchange{})
		e = &rc.entries[len(rc.entries)-1]
	} else {
		delete(rc.bySeq, rc.entries[rc.next].seq)
		e = &rc.entries[rc.next]
		rc.bySeq[seq] = rc.next
		rc.next = (rc.next + 1) % rc.cap
	}
	// Deep-copy into the entry's recycled buffers.
	e.seq = seq
	e.req = append(e.req[:0], req...)
	if cap(e.pins) < len(pins) {
		old := e.pins
		e.pins = make([][]byte, len(pins))
		copy(e.pins, old[:cap(old)])
	}
	e.pins = e.pins[:len(pins)]
	for j, p := range pins {
		e.pins[j] = append(e.pins[j][:0], p...)
	}
}

// Host is a complete switch: data plane plus software stack.
type Host struct {
	Name  string
	SW    *pisa.Switch
	Info  *p4rt.P4Info
	Costs Costs

	hooks [numBoundaries]*Hooks
	cache *responseCache
	down  atomic.Bool
	// obsv, when set, counts agent-level traffic (see Observe).
	obsv atomic.Pointer[agentObs]
}

// agentObs is the agent's pre-resolved instrument set.
type agentObs struct {
	packetOuts, packetIns, cacheHits *obs.Counter
	alertBadDigest, alertReplay      *obs.Counter
}

// Observe mirrors the agent's traffic counters into an obs registry under
// the "agent.<name>." prefix: PacketOuts dispatched, PacketIns surfaced,
// idempotency-cache hits, and alerts emitted by the data plane split by
// reason. Resolution happens once here; the packet paths pay one atomic
// load and pure counter increments.
func (h *Host) Observe(reg *obs.Registry) {
	p := "agent." + h.Name + "."
	h.obsv.Store(&agentObs{
		packetOuts:     reg.Counter(p + "packet_outs"),
		packetIns:      reg.Counter(p + "packet_ins"),
		cacheHits:      reg.Counter(p + "cache_hits"),
		alertBadDigest: reg.Counter(p + "alert_bad_digest"),
		alertReplay:    reg.Counter(p + "alert_replay"),
	})
}

// NewHost assembles a host around a data plane. The agent's idempotency
// cache starts enabled at DefaultResponseCacheSize; use SetResponseCache
// to resize or disable it.
func NewHost(name string, sw *pisa.Switch, costs Costs) *Host {
	return &Host{
		Name:  name,
		SW:    sw,
		Info:  p4rt.InfoFromProgram(sw.Compiled().Program),
		Costs: costs,
		cache: newResponseCache(DefaultResponseCacheSize),
	}
}

// SetResponseCache resizes the agent's idempotency cache; capacity 0
// disables it (every duplicate then hits the pipeline's replay defence).
func (h *Host) SetResponseCache(capacity int) {
	if capacity <= 0 {
		h.cache = nil
		return
	}
	h.cache = newResponseCache(capacity)
}

// SetDown marks the switch crashed (true) or running (false). A down
// switch is silent: packets sent to it vanish (exactly what a peer of a
// crashed node observes) and API calls fail. Chaos harnesses flip this
// around a Reboot to model a crash/restart cycle.
func (h *Host) SetDown(down bool) { h.down.Store(down) }

// Down reports whether the switch is crashed.
func (h *Host) Down() bool { return h.down.Load() }

// ClearCache drops the agent's idempotency cache contents, as a restart
// of the agent process would. The capacity is preserved.
func (h *Host) ClearCache() {
	if h.cache != nil {
		h.cache = newResponseCache(h.cache.cap)
	}
}

// ErrDown is returned by API operations on a crashed switch.
var ErrDown = errors.New("switchos: switch is down")

// Install places hooks at a boundary (nil uninstalls) — the backdoor
// installation step of the paper's threat model.
func (h *Host) Install(b Boundary, hk *Hooks) error {
	if b < 0 || b >= numBoundaries {
		return fmt.Errorf("switchos: unknown boundary %d", int(b))
	}
	h.hooks[b] = hk
	return nil
}

// Compromised reports whether any boundary has hooks installed.
func (h *Host) Compromised() bool {
	for _, hk := range h.hooks {
		if hk != nil {
			return true
		}
	}
	return false
}

func (h *Host) regOpDown(op *RegOp) {
	if hk := h.hooks[BoundaryAgentSDK]; hk != nil && hk.OnRegOp != nil {
		hk.OnRegOp(op)
	}
	// SDK: resolve ID to name.
	if ri, err := h.Info.RegisterByID(op.ID); err == nil {
		op.Name = ri.Name
	}
	if hk := h.hooks[BoundarySDKDriver]; hk != nil && hk.OnRegOp != nil {
		hk.OnRegOp(op)
	}
}

func (h *Host) regResultUp(op *RegOp, value *uint64) {
	if hk := h.hooks[BoundarySDKDriver]; hk != nil && hk.OnRegResult != nil {
		hk.OnRegResult(op, value)
	}
	if hk := h.hooks[BoundaryAgentSDK]; hk != nil && hk.OnRegResult != nil {
		hk.OnRegResult(op, value)
	}
}

// APIRegisterWrite performs a P4Runtime-style register write through the
// full stack, returning the modeled latency of the request path.
func (h *Host) APIRegisterWrite(regID uint32, index uint32, value uint64) (time.Duration, error) {
	if h.down.Load() {
		return 0, fmt.Errorf("%w: %s", ErrDown, h.Name)
	}
	cost := h.Costs.AgentBase + 2*h.Costs.ComposeField // index + data
	op := &RegOp{ID: regID, Index: index, Value: value, IsWrite: true}
	h.regOpDown(op)
	cost += h.Costs.SDKBase + h.Costs.DriverBase + h.Costs.PCIe
	if op.Name == "" {
		return cost, fmt.Errorf("switchos: %s: register id %#x did not resolve", h.Name, op.ID)
	}
	if err := h.SW.RegisterWrite(op.Name, int(op.Index), op.Value); err != nil {
		return cost, fmt.Errorf("switchos: %s: %w", h.Name, err)
	}
	return cost, nil
}

// APIRegisterRead performs a P4Runtime-style register read through the
// full stack.
func (h *Host) APIRegisterRead(regID uint32, index uint32) (uint64, time.Duration, error) {
	if h.down.Load() {
		return 0, 0, fmt.Errorf("%w: %s", ErrDown, h.Name)
	}
	cost := h.Costs.AgentBase + h.Costs.ComposeField // index only
	op := &RegOp{ID: regID, Index: index}
	h.regOpDown(op)
	cost += h.Costs.SDKBase + h.Costs.DriverBase + h.Costs.PCIe
	if op.Name == "" {
		return 0, cost, fmt.Errorf("switchos: %s: register id %#x did not resolve", h.Name, op.ID)
	}
	v, err := h.SW.RegisterRead(op.Name, int(op.Index))
	if err != nil {
		return 0, cost, fmt.Errorf("switchos: %s: %w", h.Name, err)
	}
	h.regResultUp(op, &v)
	cost += h.Costs.SDKBase + h.Costs.AgentBase
	return v, cost, nil
}

// IOResult is the outcome of a packet injected into the host (PacketOut or
// a network packet): forwarded packets, PacketIns surfaced to the control
// channel, and the modeled latency.
//
// An IOResult passed to the *Into methods is reusable: emission buffers
// are recycled across calls, so NetOut/PacketIns contents are valid only
// until the next *Into call on the same result. IOResults returned by the
// by-value methods own their buffers.
type IOResult struct {
	// NetOut are emissions on network ports.
	NetOut []pisa.Emission
	// PacketIns are CPU-port emissions after traversing the stack upward.
	PacketIns [][]byte
	// Cost is the total modeled latency (software path + pipeline).
	Cost time.Duration

	// pres is the reusable pipeline result; arena recycles the byte
	// buffers backing NetOut/PacketIns across calls.
	pres  pisa.Result
	arena [][]byte
	nused int

	// bres and the b* slices are the batch path's reusable state: the
	// pipeline batch result (whose per-packet buffers back NetOut and
	// PacketIns zero-copy) and the per-window pending-packet scratch (see
	// batch.go).
	bres  pisa.BatchResult
	bpkts []pisa.Packet
	bmeta []batchMeta
}

func (io *IOResult) reset() {
	io.NetOut = io.NetOut[:0]
	io.PacketIns = io.PacketIns[:0]
	io.Cost = 0
	io.nused = 0
	io.bpkts = io.bpkts[:0]
	io.bmeta = io.bmeta[:0]
}

// grab copies b into the next recycled arena buffer and returns it.
func (io *IOResult) grab(b []byte) []byte {
	var dst []byte
	if io.nused < len(io.arena) {
		dst = io.arena[io.nused][:0]
	}
	dst = append(dst, b...)
	if io.nused < len(io.arena) {
		io.arena[io.nused] = dst
	} else {
		io.arena = append(io.arena, dst)
	}
	io.nused++
	return dst
}

// PacketOut injects a controller packet into the data plane via the CPU
// port, passing the stack's hooks on the way down. A byte-identical
// retransmission of an already-answered request (same seqNum) is served
// from the agent's idempotency cache: the cached PacketIns are re-emitted
// without re-entering the pipeline, so a duplicate EAK/ADHKD neither
// re-derives key state nor trips the replay defence.
func (h *Host) PacketOut(data []byte) (IOResult, error) {
	var io IOResult
	err := h.PacketOutInto(data, &io)
	return io, err
}

// PacketOutInto is PacketOut with a caller-owned, reusable result (see
// IOResult's reuse contract).
func (h *Host) PacketOutInto(data []byte, io *IOResult) error {
	io.reset()
	if h.down.Load() {
		// A crashed switch answers nothing; the controller sees the same
		// silence as a lost packet and its retransmission budget applies.
		return nil
	}
	io.Cost += h.Costs.PacketIOBase
	return h.packetOutOne(data, io, h.Costs.PacketIOBase)
}

// PacketOutBatch injects a window of PacketOuts as one agent I/O
// transaction: the agent's PacketIOBase dispatch cost is paid once for the
// whole window on the way down and once for all PacketIns on the way back
// (the driver batches the DMA), while per-packet byte, driver, PCIe and
// pipeline costs still accrue per packet. This is the transport under the
// controller's windowed pipeline.
func (h *Host) PacketOutBatch(datas [][]byte) (IOResult, error) {
	var io IOResult
	err := h.PacketOutBatchInto(datas, &io)
	return io, err
}

// PacketOutBatchInto is PacketOutBatch with a caller-owned, reusable
// result. PacketIns from all packets of the window are concatenated in
// send order on a serial switch (cache hits may surface first on a
// worker-backed one); callers match responses to requests by seqNum, not
// position.
//
// On a serial switch (pisa.Workers() == 1) each packet runs through
// packetOutOne exactly as before — the virtual-time cost and PacketIn
// bytes are bit-identical to the pre-batch transport, which the chaos
// golden traces pin. A worker-backed switch takes the pipelined
// ProcessBatch path (see batch.go): same total per-packet software costs,
// but the pipeline portion is the slowest lane instead of the sum, and
// emission buffers flow upward without the arena copy.
func (h *Host) PacketOutBatchInto(datas [][]byte, io *IOResult) error {
	io.reset()
	if h.down.Load() || len(datas) == 0 {
		return nil
	}
	io.Cost += h.Costs.PacketIOBase
	if h.SW.Workers() > 1 {
		return h.packetOutBatchPipelined(datas, io)
	}
	for _, data := range datas {
		if err := h.packetOutOne(data, io, 0); err != nil {
			return err
		}
	}
	if len(io.PacketIns) > 0 {
		io.Cost += h.Costs.PacketIOBase
	}
	return nil
}

// packetOutOne runs one PacketOut through cache, hooks, and pipeline,
// accumulating into io. pinBase is the per-PacketIn agent dispatch cost
// (zero under a batch, where the dispatch is amortized by the caller).
func (h *Host) packetOutOne(data []byte, io *IOResult, pinBase time.Duration) error {
	io.Cost += time.Duration(len(data)) * h.Costs.PerByte
	ao := h.obsv.Load()
	if ao != nil {
		ao.packetOuts.Inc()
	}
	seq, cacheable := h.cacheKey(data)
	if cacheable {
		if pins, hit := h.cache.lookup(seq, data); hit {
			if ao != nil {
				ao.cacheHits.Inc()
			}
			io.PacketIns = append(io.PacketIns, pins...)
			for _, p := range pins {
				io.Cost += time.Duration(len(p)) * h.Costs.PerByte
			}
			return nil
		}
	}
	orig := data
	for _, b := range []Boundary{BoundaryAgentSDK, BoundarySDKDriver} {
		if hk := h.hooks[b]; hk != nil && hk.OnPacketOut != nil {
			data = hk.OnPacketOut(data)
			if data == nil {
				return nil // silently dropped by the backdoor
			}
		}
	}
	io.Cost += h.Costs.DriverBase + h.Costs.PCIe
	pinsBefore := len(io.PacketIns)
	if err := h.runPipelineInto(data, pisa.CPUPort, io, pinBase); err != nil {
		return err
	}
	if cacheable && h.cacheWorthy(orig, io.PacketIns[pinsBefore:]) {
		// Keyed by the bytes the agent received (pre-hook): that is what a
		// retransmitting controller will resend. Only this packet's own
		// PacketIns are remembered.
		h.cache.store(seq, orig, io.PacketIns[pinsBefore:])
	}
	return nil
}

// cacheWorthy filters what the idempotency cache remembers. Alert
// responses are never cached: a duplicate of a failed request must
// re-enter the pipeline, where the replay defence and the alert-threshold
// cap apply — otherwise replaying garbage would mint unlimited copies of a
// cached alert. Empty results are cached only for key-exchange messages
// (a fire-and-forget kx leg like the final ADHKD2 legitimately answers
// nothing, and reprocessing it would corrupt initiator state); an empty
// result for a register op means the message was dropped, and a duplicate
// should be re-tried against the pipeline.
func (h *Host) cacheWorthy(req []byte, pins [][]byte) bool {
	for _, p := range pins {
		if hdrType, _, ok := core.PeekControl(p); ok && hdrType == core.HdrAlert {
			return false
		}
	}
	if len(pins) == 0 {
		hdrType, _, _ := core.PeekControl(req)
		return hdrType == core.HdrKeyExch
	}
	return true
}

func anyAlert(pins [][]byte) bool {
	for _, p := range pins {
		if hdrType, _, ok := core.PeekControl(p); ok && hdrType == core.HdrAlert {
			return true
		}
	}
	return false
}

// cacheKey decides whether a PacketOut participates in the idempotency
// cache: control-channel register and key-exchange requests do, keyed by
// their seqNum; anything else (feedback, non-P4Auth bytes) bypasses it.
func (h *Host) cacheKey(data []byte) (uint32, bool) {
	if h.cache == nil {
		return 0, false
	}
	hdrType, seq, ok := core.PeekControl(data)
	if !ok || (hdrType != core.HdrRegister && hdrType != core.HdrKeyExch) {
		return 0, false
	}
	return seq, true
}

// NetworkPacket injects a packet arriving on a network port directly into
// the pipeline (no software stack on the way in).
func (h *Host) NetworkPacket(port int, data []byte) (IOResult, error) {
	var io IOResult
	if h.down.Load() {
		return io, nil // crashed: the wire ends in a dead port
	}
	err := h.runPipelineInto(data, port, &io, h.Costs.PacketIOBase)
	return io, err
}

// runPipelineInto processes one packet and appends its emissions into io,
// copying emission bytes into io's recycled arena. pinBase is the agent
// dispatch cost charged per PacketIn.
func (h *Host) runPipelineInto(data []byte, port int, io *IOResult, pinBase time.Duration) error {
	if err := h.SW.ProcessInto(pisa.Packet{Data: data, Port: port}, &io.pres); err != nil {
		return fmt.Errorf("switchos: %s: pipeline: %w", h.Name, err)
	}
	io.Cost += io.pres.Cost
	// Copy out of the pipeline's recycled buffers: the next ProcessInto
	// on this IOResult (e.g. the following packet of a batch) reuses
	// them. The batch path (ProcessBatch) gives each packet stable
	// buffers and skips this copy.
	h.emitResult(&io.pres, io, pinBase, true)
	return nil
}

// emitResult walks one pipeline result's emissions, splitting them into
// NetOut and the PacketIn path (PCIe + driver + hooks upward + agent).
// copyBufs selects whether emission bytes are copied into io's arena
// (required when the source Result recycles its buffers per packet) or
// referenced in place (the zero-copy batch path, whose buffers are stable
// for the whole batch).
func (h *Host) emitResult(pres *pisa.Result, io *IOResult, pinBase time.Duration, copyBufs bool) {
	for _, e := range pres.Emissions {
		kept := e.Data
		if copyBufs {
			kept = io.grab(e.Data)
		}
		if e.Port != pisa.CPUPort {
			io.NetOut = append(io.NetOut, pisa.Emission{Port: e.Port, Data: kept})
			continue
		}
		io.Cost += h.Costs.PCIe + h.Costs.DriverBase +
			pinBase + time.Duration(len(e.Data))*h.Costs.PerByte
		pin := kept
		for _, b := range []Boundary{BoundarySDKDriver, BoundaryAgentSDK} {
			if hk := h.hooks[b]; hk != nil && hk.OnPacketIn != nil {
				pin = hk.OnPacketIn(pin)
				if pin == nil {
					break
				}
			}
		}
		if pin != nil {
			io.PacketIns = append(io.PacketIns, pin)
			if ao := h.obsv.Load(); ao != nil {
				ao.packetIns.Inc()
				if hdrType, _, ok := core.PeekControl(pin); ok && hdrType == core.HdrAlert {
					if mt, ok := core.PeekMsgType(pin); ok {
						switch mt {
						case core.AlertBadDigest:
							ao.alertBadDigest.Inc()
						case core.AlertReplay:
							ao.alertReplay.Inc()
						}
					}
				}
			}
		}
	}
}
