package switchos

import (
	"fmt"
	"time"

	"p4auth/internal/pisa"
)

// Batch packet paths: one agent transaction carries a whole window of
// packets through the pipeline via pisa.ProcessBatch, and — because each
// packet of a batch owns its Result buffers for the batch's lifetime —
// emission bytes flow upward into NetOut/PacketIns without the per-packet
// arena copy the single-shot path pays. On a worker-backed switch
// (pisa.WithWorkers > 1), packets on distinct ingress ports overlap and
// the batch's pipeline cost is the slowest lane, not the sum.

// batchMeta carries one pending packet's idempotency-cache bookkeeping
// from the downward pass to the result walk.
type batchMeta struct {
	orig      []byte // pre-hook request bytes (what a retransmit resends)
	seq       uint32
	cacheable bool
}

// NetworkPacketBatch injects a batch of packets arriving on network ports
// directly into the pipeline (no software stack on the way in). Per-port
// arrival order is preserved; the pipeline cost is the batch's modeled
// cost (max over ingress lanes on a worker-backed switch). PacketIns that
// surface share one amortized agent dispatch, like PacketOutBatch.
func (h *Host) NetworkPacketBatch(pkts []pisa.Packet) (IOResult, error) {
	var io IOResult
	err := h.NetworkPacketBatchInto(pkts, &io)
	return io, err
}

// NetworkPacketBatchInto is NetworkPacketBatch with a caller-owned,
// reusable result. NetOut and PacketIns reference the pipeline's batch
// buffers directly (no copy); they are valid until the next *Into call on
// the same result.
func (h *Host) NetworkPacketBatchInto(pkts []pisa.Packet, io *IOResult) error {
	io.reset()
	if h.down.Load() || len(pkts) == 0 {
		return nil // crashed: the wire ends in a dead port
	}
	if err := h.SW.ProcessBatch(pkts, &io.bres); err != nil {
		return fmt.Errorf("switchos: %s: pipeline: %w", h.Name, err)
	}
	io.Cost += io.bres.Cost
	for i := range io.bres.Results {
		h.emitResult(&io.bres.Results[i], io, 0, false)
	}
	if len(io.PacketIns) > 0 {
		io.Cost += h.Costs.PacketIOBase
	}
	return nil
}

// packetOutBatchPipelined is the PacketOutBatch transport over
// ProcessBatch, used on worker-backed switches. Cache and hook semantics
// match the serial window path with two deliberate differences, both
// inherent to batching:
//
//   - PacketIns of cache hits surface before PacketIns of packets that
//     went through the pipeline (responses were already reorderable —
//     callers match by seqNum, not position).
//   - The idempotency cache is consulted for the whole window up front
//     and stored after the pipeline pass, so a byte-identical duplicate
//     WITHIN one window reaches the pipeline instead of hitting the
//     cache. Controllers never put duplicate sequence numbers in one
//     window, so this distinction is unobservable in the protocol.
func (h *Host) packetOutBatchPipelined(datas [][]byte, io *IOResult) error {
	ao := h.obsv.Load()
	// Downward pass, in window order: per-packet agent byte cost, cache
	// lookup, hooks, and driver/PCIe charge for everything that will
	// enter the pipeline.
	for _, data := range datas {
		io.Cost += time.Duration(len(data)) * h.Costs.PerByte
		if ao != nil {
			ao.packetOuts.Inc()
		}
		seq, cacheable := h.cacheKey(data)
		if cacheable {
			if pins, hit := h.cache.lookup(seq, data); hit {
				if ao != nil {
					ao.cacheHits.Inc()
				}
				io.PacketIns = append(io.PacketIns, pins...)
				for _, p := range pins {
					io.Cost += time.Duration(len(p)) * h.Costs.PerByte
				}
				continue
			}
		}
		orig := data
		dropped := false
		for _, b := range []Boundary{BoundaryAgentSDK, BoundarySDKDriver} {
			if hk := h.hooks[b]; hk != nil && hk.OnPacketOut != nil {
				data = hk.OnPacketOut(data)
				if data == nil {
					dropped = true // silently dropped by the backdoor
					break
				}
			}
		}
		if dropped {
			continue
		}
		io.Cost += h.Costs.DriverBase + h.Costs.PCIe
		io.bpkts = append(io.bpkts, pisa.Packet{Data: data, Port: pisa.CPUPort})
		io.bmeta = append(io.bmeta, batchMeta{orig: orig, seq: seq, cacheable: cacheable})
	}

	if len(io.bpkts) > 0 {
		if err := h.SW.ProcessBatch(io.bpkts, &io.bres); err != nil {
			return fmt.Errorf("switchos: %s: pipeline: %w", h.Name, err)
		}
		io.Cost += io.bres.Cost
		// Result walk, in window order: surface each pending packet's
		// emissions zero-copy and remember its answer for retransmits.
		for i := range io.bpkts {
			pinsBefore := len(io.PacketIns)
			h.emitResult(&io.bres.Results[i], io, 0, false)
			m := &io.bmeta[i]
			if m.cacheable && h.cacheWorthy(m.orig, io.PacketIns[pinsBefore:]) {
				// The store deep-copies, so caching zero-copy references
				// is safe past this batch's lifetime.
				h.cache.store(m.seq, m.orig, io.PacketIns[pinsBefore:])
			}
		}
	}
	if len(io.PacketIns) > 0 {
		io.Cost += h.Costs.PacketIOBase
	}
	return nil
}
