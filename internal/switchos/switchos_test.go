package switchos

import (
	"testing"

	"p4auth/internal/pisa"
)

// hostProgram is a minimal forwarder with a latency register, mirroring
// the RouteScout-style state the paper's attacks target.
func hostProgram() *pisa.Program {
	return &pisa.Program{
		Name:         "host_test",
		Headers:      []*pisa.HeaderDef{{Name: "h", Fields: []pisa.FieldDef{{Name: "kind", Width: 8}}}},
		Parser:       []pisa.ParserState{{Name: pisa.ParserStart, Extract: "h"}},
		DeparseOrder: []string{"h"},
		Registers: []*pisa.RegisterDef{
			{Name: "path_latency", Width: 32, Entries: 4},
		},
		Control: []pisa.Op{
			pisa.If(pisa.Eq(pisa.R(pisa.F("h", "kind")), pisa.C(1)),
				[]pisa.Op{pisa.ToCPU()},
				[]pisa.Op{pisa.Forward(pisa.C(2))}),
		},
	}
}

func newHost(t *testing.T) *Host {
	t.Helper()
	sw, err := pisa.NewSwitch(hostProgram(), pisa.TofinoProfile())
	if err != nil {
		t.Fatal(err)
	}
	return NewHost("s1", sw, DefaultCosts())
}

func regID(t *testing.T, h *Host, name string) uint32 {
	t.Helper()
	ri, err := h.Info.RegisterByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return ri.ID
}

func TestAPIRegisterWriteRead(t *testing.T) {
	h := newHost(t)
	id := regID(t, h, "path_latency")
	wCost, err := h.APIRegisterWrite(id, 2, 777)
	if err != nil {
		t.Fatal(err)
	}
	v, rCost, err := h.APIRegisterRead(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("read back %d, want 777", v)
	}
	if wCost <= 0 || rCost <= 0 {
		t.Error("costs must be positive")
	}
	// The paper's Fig. 19 asymmetry source: writes compose two fields.
	if wCost <= rCost-2*DefaultCosts().SDKBase {
		t.Errorf("write request cost %v should exceed read request cost %v", wCost, rCost)
	}
}

func TestAPIRegisterUnknownID(t *testing.T) {
	h := newHost(t)
	if _, err := h.APIRegisterWrite(0xdead, 0, 1); err == nil {
		t.Error("expected unknown-id write error")
	}
	if _, _, err := h.APIRegisterRead(0xdead, 0); err == nil {
		t.Error("expected unknown-id read error")
	}
}

func TestCompromisedStackRewritesWrite(t *testing.T) {
	// The paper's Attack 1 mechanics: a preloaded library rewrites the
	// value of a register write between the agent and the SDK.
	h := newHost(t)
	id := regID(t, h, "path_latency")
	if err := h.Install(BoundaryAgentSDK, &Hooks{
		OnRegOp: func(op *RegOp) {
			if op.IsWrite {
				op.Value = 9999 // inflate the latency the controller wrote
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	if !h.Compromised() {
		t.Error("Compromised() should report installed hooks")
	}
	if _, err := h.APIRegisterWrite(id, 0, 10); err != nil {
		t.Fatal(err)
	}
	v, err := h.SW.RegisterRead("path_latency", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9999 {
		t.Errorf("data plane holds %d; the interposer should have written 9999", v)
	}
}

func TestCompromisedStackRewritesReadResult(t *testing.T) {
	h := newHost(t)
	id := regID(t, h, "path_latency")
	if err := h.SW.RegisterWrite("path_latency", 1, 50); err != nil {
		t.Fatal(err)
	}
	if err := h.Install(BoundarySDKDriver, &Hooks{
		OnRegResult: func(op *RegOp, value *uint64) { *value = 5 },
	}); err != nil {
		t.Fatal(err)
	}
	v, _, err := h.APIRegisterRead(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Errorf("controller saw %d; interposer should have reported 5", v)
	}
	// Ground truth in the data plane is untouched.
	dp, _ := h.SW.RegisterRead("path_latency", 1)
	if dp != 50 {
		t.Errorf("data plane value changed to %d", dp)
	}
}

func TestHookRedirectionToAnotherRegisterIndex(t *testing.T) {
	h := newHost(t)
	id := regID(t, h, "path_latency")
	if err := h.Install(BoundarySDKDriver, &Hooks{
		OnRegOp: func(op *RegOp) { op.Index = 3 },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.APIRegisterWrite(id, 0, 42); err != nil {
		t.Fatal(err)
	}
	v0, _ := h.SW.RegisterRead("path_latency", 0)
	v3, _ := h.SW.RegisterRead("path_latency", 3)
	if v0 != 0 || v3 != 42 {
		t.Errorf("index redirect failed: [0]=%d [3]=%d", v0, v3)
	}
}

func TestPacketOutReachesPipelineAndPacketInReturns(t *testing.T) {
	h := newHost(t)
	// kind=1 goes to CPU -> PacketIn; kind=0 forwards to port 2.
	res, err := h.PacketOut([]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 1 || len(res.NetOut) != 0 {
		t.Fatalf("res = %+v, want one PacketIn", res)
	}
	res, err = h.PacketOut([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NetOut) != 1 || res.NetOut[0].Port != 2 {
		t.Fatalf("res = %+v, want one emission on port 2", res)
	}
	if res.Cost <= 0 {
		t.Error("cost must be positive")
	}
}

func TestPacketOutHookRewriteAndDrop(t *testing.T) {
	h := newHost(t)
	if err := h.Install(BoundaryAgentSDK, &Hooks{
		OnPacketOut: func(data []byte) []byte {
			data[0] = 1 // turn a forward packet into a to-CPU packet
			return data
		},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := h.PacketOut([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 1 {
		t.Error("rewritten PacketOut should have reached the CPU path")
	}

	if err := h.Install(BoundaryAgentSDK, &Hooks{
		OnPacketOut: func(data []byte) []byte { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	res, err = h.PacketOut([]byte{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NetOut) != 0 && len(res.PacketIns) != 0 {
		t.Error("dropped PacketOut still produced output")
	}
}

func TestPacketInHookRewrite(t *testing.T) {
	h := newHost(t)
	if err := h.Install(BoundarySDKDriver, &Hooks{
		OnPacketIn: func(data []byte) []byte {
			data[0] = 0xEE
			return data
		},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := h.NetworkPacket(5, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 1 || res.PacketIns[0][0] != 0xEE {
		t.Fatalf("res = %+v, want rewritten PacketIn", res)
	}
}

func TestNetworkPacketNoStackCostOnFastPath(t *testing.T) {
	h := newHost(t)
	res, err := h.NetworkPacket(5, []byte{0})
	if err != nil {
		t.Fatal(err)
	}
	// Pure data-plane forwarding: cost must be far below the software
	// stack's per-request costs.
	if res.Cost >= DefaultCosts().AgentBase {
		t.Errorf("fast-path cost %v should be below agent cost %v (R4)", res.Cost, DefaultCosts().AgentBase)
	}
}

func TestInstallBadBoundary(t *testing.T) {
	h := newHost(t)
	if err := h.Install(Boundary(99), &Hooks{}); err == nil {
		t.Error("expected boundary error")
	}
}
