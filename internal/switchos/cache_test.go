package switchos_test

// Black-box tests of the agent's idempotency cache against a full P4Auth
// data plane: a retransmitted handshake message must re-emit the cached
// response byte for byte instead of re-deriving key state.

import (
	"bytes"
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
)

func buildP4AuthSwitch(t *testing.T) *deploy.Switch {
	t.Helper()
	sw, err := deploy.Build(deploy.SwitchSpec{Name: "s1", Ports: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// signedKx builds a signed key-exchange message under the switch's current
// local key version.
func signedKx(t *testing.T, sw *deploy.Switch, msgType uint8, seq uint32, ver uint8, key uint64, kx *core.KxPayload) []byte {
	t.Helper()
	dig, err := sw.Cfg.Digester()
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Message{
		Header: core.Header{HdrType: core.HdrKeyExch, MsgType: msgType, SeqNum: seq, KeyVersion: ver},
		Kx:     kx,
	}
	if err := m.Sign(dig, key); err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func localVer(t *testing.T, sw *deploy.Switch) uint64 {
	t.Helper()
	v, err := sw.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestDuplicateEAKReplaysCachedResponse retransmits an EAK opener and
// checks the agent re-emits the identical cached EAKSalt2 — same S2, no
// second key derivation, no replay alert.
func TestDuplicateEAKReplaysCachedResponse(t *testing.T) {
	sw := buildP4AuthSwitch(t)
	req := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 0xAABB})

	res1, err := sw.Host.PacketOut(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.PacketIns) != 1 {
		t.Fatalf("EAK produced %d PacketIns, want 1", len(res1.PacketIns))
	}
	if v := localVer(t, sw); v != 1 {
		t.Fatalf("pa_ver[0]=%d after EAK, want 1", v)
	}

	// The retransmission a controller sends after losing the response.
	res2, err := sw.Host.PacketOut(append([]byte(nil), req...))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.PacketIns) != 1 {
		t.Fatalf("duplicate EAK produced %d PacketIns, want 1", len(res2.PacketIns))
	}
	if !bytes.Equal(res1.PacketIns[0], res2.PacketIns[0]) {
		t.Error("duplicate EAK response differs from the original (cache miss re-derived S2)")
	}
	if v := localVer(t, sw); v != 1 {
		t.Fatalf("pa_ver[0]=%d after duplicate, want 1 (double install)", v)
	}
	r, err := core.DecodeMessage(res2.PacketIns[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.HdrType != core.HdrKeyExch || r.MsgType != core.MsgEAKSalt2 {
		t.Fatalf("duplicate answered with hdr=%d msg=%d, want cached EAKSalt2", r.HdrType, r.MsgType)
	}
}

// TestDuplicateADHKDReplaysCachedResponse does the same for the ADHKD
// rollover message, where re-deriving would also burn a fresh R2/S2.
func TestDuplicateADHKDReplaysCachedResponse(t *testing.T) {
	sw := buildP4AuthSwitch(t)
	// Establish K_auth first so the rollover runs under a real key.
	eakReq := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 7})
	res, err := sw.Host.PacketOut(eakReq)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.DecodeMessage(res.PacketIns[0])
	if err != nil {
		t.Fatal(err)
	}
	kdf, err := sw.Cfg.KDF()
	if err != nil {
		t.Fatal(err)
	}
	kauth := kdf.Derive(sw.Cfg.Seed, core.SaltPair(7, r.Kx.Salt))

	adhkd := core.NewADHKD(sw.Cfg, crypto.NewSeededRand(99))
	req := signedKx(t, sw, core.MsgADHKD1, 2, 1, kauth, &core.KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1})
	res1, err := sw.Host.PacketOut(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.PacketIns) != 1 {
		t.Fatalf("ADHKD produced %d PacketIns, want 1", len(res1.PacketIns))
	}
	if v := localVer(t, sw); v != 2 {
		t.Fatalf("pa_ver[0]=%d after ADHKD, want 2", v)
	}
	res2, err := sw.Host.PacketOut(append([]byte(nil), req...))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.PacketIns) != 1 || !bytes.Equal(res1.PacketIns[0], res2.PacketIns[0]) {
		t.Error("duplicate ADHKD not answered from the cache")
	}
	if v := localVer(t, sw); v != 2 {
		t.Fatalf("pa_ver[0]=%d after duplicate ADHKD, want 2 (double install)", v)
	}
}

// TestDuplicateWithDifferentBytesHitsPipeline checks the cache demands a
// byte-identical request: a same-seq message with altered content is NOT
// served the cached response — it falls through to the pipeline, whose
// replay defence rejects it.
func TestDuplicateWithDifferentBytesHitsPipeline(t *testing.T) {
	sw := buildP4AuthSwitch(t)
	req := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 0xAABB})
	if _, err := sw.Host.PacketOut(req); err != nil {
		t.Fatal(err)
	}

	// Same seq, different salt, correctly re-signed — an attacker with the
	// key could do this; the replay register, not the cache, must answer.
	forged := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 0xCCDD})
	res, err := sw.Host.PacketOut(forged)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 1 {
		t.Fatalf("forged duplicate produced %d PacketIns, want 1 alert", len(res.PacketIns))
	}
	r, err := core.DecodeMessage(res.PacketIns[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.HdrType != core.HdrAlert || r.MsgType != core.AlertReplay {
		t.Fatalf("forged duplicate answered with hdr=%d msg=%d, want replay alert", r.HdrType, r.MsgType)
	}
	if v := localVer(t, sw); v != 1 {
		t.Fatalf("pa_ver[0]=%d, forged duplicate must not install", v)
	}
}

// TestAlertResponsesNeverCached replays garbage twice: both copies must
// re-enter the pipeline (the alert budget drains by two), not be served a
// cached alert.
func TestAlertResponsesNeverCached(t *testing.T) {
	sw := buildP4AuthSwitch(t)
	garbage := signedKx(t, sw, core.MsgEAKSalt1, 5, 0, 0xBAD, &core.KxPayload{Salt: 1})

	for i := 0; i < 2; i++ {
		res, err := sw.Host.PacketOut(append([]byte(nil), garbage...))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PacketIns) != 1 {
			t.Fatalf("garbage copy %d produced %d PacketIns, want 1 alert", i, len(res.PacketIns))
		}
		r, err := core.DecodeMessage(res.PacketIns[0])
		if err != nil {
			t.Fatal(err)
		}
		if r.HdrType != core.HdrAlert || r.MsgType != core.AlertBadDigest {
			t.Fatalf("garbage answered with hdr=%d msg=%d", r.HdrType, r.MsgType)
		}
	}
	// Two pipeline passes = two alert-counter bumps.
	if n, err := sw.Host.SW.RegisterRead(core.RegAlert, 0); err != nil || n != 2 {
		t.Fatalf("alert counter = %d (err %v), want 2 pipeline passes", n, err)
	}
}

// TestCacheDisableAndEviction covers SetResponseCache: capacity 0 turns
// the cache off (duplicates then trip the replay defence), and a tiny
// capacity evicts the oldest exchange FIFO.
func TestCacheDisableAndEviction(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		sw := buildP4AuthSwitch(t)
		sw.Host.SetResponseCache(0)
		req := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 2})
		if _, err := sw.Host.PacketOut(req); err != nil {
			t.Fatal(err)
		}
		res, err := sw.Host.PacketOut(append([]byte(nil), req...))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PacketIns) != 1 {
			t.Fatalf("got %d PacketIns, want 1", len(res.PacketIns))
		}
		r, err := core.DecodeMessage(res.PacketIns[0])
		if err != nil {
			t.Fatal(err)
		}
		if r.HdrType != core.HdrAlert || r.MsgType != core.AlertReplay {
			t.Fatalf("without cache, duplicate must trip replay defence; got hdr=%d msg=%d", r.HdrType, r.MsgType)
		}
	})
	t.Run("eviction", func(t *testing.T) {
		sw := buildP4AuthSwitch(t)
		sw.Host.SetResponseCache(1)
		// First exchange fills the single slot; the rollover evicts it.
		req1 := signedKx(t, sw, core.MsgEAKSalt1, 1, 0, sw.Cfg.Seed, &core.KxPayload{Salt: 3})
		res1, err := sw.Host.PacketOut(req1)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := core.DecodeMessage(res1.PacketIns[0])
		if err != nil {
			t.Fatal(err)
		}
		kdf, err := sw.Cfg.KDF()
		if err != nil {
			t.Fatal(err)
		}
		kauth := kdf.Derive(sw.Cfg.Seed, core.SaltPair(3, r1.Kx.Salt))
		adhkd := core.NewADHKD(sw.Cfg, crypto.NewSeededRand(5))
		req2 := signedKx(t, sw, core.MsgADHKD1, 2, 1, kauth, &core.KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1})
		if _, err := sw.Host.PacketOut(req2); err != nil {
			t.Fatal(err)
		}
		// req1's entry was evicted: its duplicate now reaches the pipeline
		// instead of the cache. The rollover rotated key slot 0, so the
		// seed-signed copy fails the digest check (BadDigest, not Replay) —
		// either way it must be an alert, not the cached EAKSalt2.
		res, err := sw.Host.PacketOut(append([]byte(nil), req1...))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PacketIns) != 1 {
			t.Fatalf("got %d PacketIns, want 1", len(res.PacketIns))
		}
		r, err := core.DecodeMessage(res.PacketIns[0])
		if err != nil {
			t.Fatal(err)
		}
		if r.HdrType != core.HdrAlert || r.MsgType != core.AlertBadDigest {
			t.Fatalf("evicted duplicate must re-enter the pipeline; got hdr=%d msg=%d", r.HdrType, r.MsgType)
		}
	})
}
