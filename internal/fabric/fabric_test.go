package fabric

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"p4auth/internal/obs"
)

// rig is a scripted world for one supervised link: a manual clock, a
// settable evidence source, and recorders for every hook effect.
type rig struct {
	t       *testing.T
	sup     *Supervisor
	now     time.Duration
	ev      Evidence
	evErr   error
	blocked bool
	repairs []uint64
	repErr  error
	o       *obs.Observer
	id      LinkID
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{t: t, o: obs.NewObserver(0), id: LinkID{A: "s1", PA: 1, B: "s2", PB: 1}}
	hooks := Hooks{
		Collect: func(LinkID) (Evidence, error) { return r.ev, r.evErr },
		Block:   func(LinkID) error { r.blocked = true; return nil },
		Unblock: func(LinkID) error { r.blocked = false; return nil },
		Repair: func(_ LinkID, epoch uint64) error {
			r.repairs = append(r.repairs, epoch)
			return r.repErr
		},
	}
	sup, err := New(cfg, func() time.Duration { return r.now }, hooks, r.o)
	if err != nil {
		t.Fatal(err)
	}
	sup.Register(r.id)
	r.sup = sup
	return r
}

// tick advances the clock by d and runs one supervision window.
func (r *rig) tick(d time.Duration) {
	r.now += d
	r.sup.Tick()
}

func (r *rig) state() State {
	snap := r.sup.Snapshot()
	if len(snap) != 1 {
		r.t.Fatalf("snapshot has %d links", len(snap))
	}
	return snap[0].State
}

func (r *rig) wantState(s State) {
	r.t.Helper()
	if got := r.state(); got != s {
		r.t.Fatalf("state %v, want %v\n%v", got, s, r.sup.Snapshot())
	}
}

// feed sets cumulative evidence counters (the rig owns the totals).
func (r *rig) feed(okAdd, badAdd uint64) {
	r.ev.OKFeedback += okAdd
	r.ev.BadFeedback += badAdd
}

func cfgFast() Config {
	return Config{
		SuspectBad:        1,
		QuarantineStrikes: 2,
		SilenceWindows:    3,
		CleanWindows:      2,
		ProbationWindows:  2,
		HoldDown:          5 * time.Millisecond,
		RepairBackoff:     2 * time.Millisecond,
		RepairBackoffMax:  8 * time.Millisecond,
	}
}

const w = time.Millisecond // one supervision window

func TestHealthySuspectRecovery(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w) // baseline window
	r.wantState(Healthy)

	// One bad window: Suspect, still unblocked.
	r.feed(10, 1)
	r.tick(w)
	r.wantState(Suspect)
	if r.blocked {
		t.Fatal("suspect link must stay in service")
	}

	// Two clean windows: back to Healthy.
	r.feed(10, 0)
	r.tick(w)
	r.feed(10, 0)
	r.tick(w)
	r.wantState(Healthy)
}

func TestPersistentBadDigestsQuarantineAndRepair(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	// Two consecutive bad windows: Suspect then Quarantined + blocked.
	r.feed(10, 2)
	r.tick(w)
	r.wantState(Suspect)
	r.feed(10, 2)
	r.tick(w)
	r.wantState(Quarantined)
	if !r.blocked {
		t.Fatal("quarantine must block the link")
	}
	if len(r.repairs) != 0 {
		t.Fatal("repair before hold-down expiry")
	}

	// Hold-down (5ms) gates the repair: 4 windows in, still waiting.
	r.feed(10, 0)
	r.tick(4 * w)
	r.wantState(Quarantined)

	// Past hold-down: repair runs under epoch 1 and probation starts.
	r.feed(10, 0)
	r.tick(2 * w)
	r.wantState(Recovering)
	if len(r.repairs) != 1 || r.repairs[0] != 1 {
		t.Fatalf("repairs %v, want [1]", r.repairs)
	}
	if r.blocked {
		t.Fatal("successful repair must unblock")
	}

	// Two clean flowing windows pass probation.
	r.feed(10, 0)
	r.tick(w)
	r.feed(10, 0)
	r.tick(w)
	r.wantState(Healthy)
	if !r.sup.AllHealthy() {
		t.Fatal("AllHealthy disagrees with snapshot")
	}
}

func TestSilenceQuarantines(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	// 3 silent windows: Suspect. 6 total: Quarantined.
	for i := 0; i < 3; i++ {
		r.tick(w)
	}
	r.wantState(Suspect)
	for i := 0; i < 3; i++ {
		r.tick(w)
	}
	r.wantState(Quarantined)
}

func TestKeySkewQuarantinesImmediately(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	r.wantState(Healthy)
	r.feed(10, 0)
	r.ev.KeySkew = true
	r.tick(w)
	r.wantState(Quarantined)
	events := r.o.Audit.ByType(obs.EvLinkState)
	last := events[len(events)-1]
	if last.Cause != CauseKeySkew {
		t.Fatalf("cause %q, want %q", last.Cause, CauseKeySkew)
	}
	from, to := TransitionPair(last.Value)
	if from != Healthy || to != Quarantined {
		t.Fatalf("transition %v->%v, want healthy->quarantined", from, to)
	}
}

func TestRepairFailureBacksOffDeterministically(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	r.ev.KeySkew = true
	r.tick(w) // quarantined at t=2ms, repair armed for t+5ms
	r.repErr = errors.New("boom")

	var repairTimes []time.Duration
	seen := 0
	// Walk 60 windows; record the virtual time of every repair attempt.
	for i := 0; i < 60; i++ {
		r.tick(w)
		if len(r.repairs) > seen {
			seen = len(r.repairs)
			repairTimes = append(repairTimes, r.now)
		}
	}
	if len(repairTimes) < 4 {
		t.Fatalf("only %d repair attempts in 60 windows", len(repairTimes))
	}
	// Gaps between attempts follow the doubling backoff (2,4,8,8... ms),
	// quantized up to the window cadence.
	wantGaps := []time.Duration{2 * w, 4 * w, 8 * w, 8 * w}
	for i := 1; i < len(repairTimes) && i <= len(wantGaps); i++ {
		if gap := repairTimes[i] - repairTimes[i-1]; gap != wantGaps[i-1] {
			t.Errorf("gap %d = %v, want %v (times %v)", i, gap, wantGaps[i-1], repairTimes)
		}
	}
	if r.state() != Quarantined {
		t.Fatalf("failing repairs must hold the link quarantined, got %v", r.state())
	}

	// The fault clears: next attempt succeeds and probation runs.
	r.repErr = nil
	r.ev.KeySkew = false
	for i := 0; i < 12 && r.state() != Recovering; i++ {
		r.tick(w)
	}
	r.wantState(Recovering)
	r.feed(10, 0)
	r.tick(w)
	r.feed(10, 0)
	r.tick(w)
	r.wantState(Healthy)
}

func TestStaleRepairAuditedDistinctly(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	r.ev.KeySkew = true
	r.tick(w)
	r.repErr = fmt.Errorf("wrapped: %w", ErrStaleRepair)
	for i := 0; i < 10 && len(r.repairs) == 0; i++ {
		r.tick(w)
	}
	if len(r.repairs) == 0 {
		t.Fatal("no repair attempted")
	}
	found := false
	for _, e := range r.o.Audit.ByType(obs.EvLinkState) {
		if e.Cause == CauseRepairStale {
			found = true
		}
	}
	if !found {
		t.Fatal("stale repair not audited with its own cause")
	}
	if v := r.o.Metrics.Counter("fabric.repairs_stale").Load(); v == 0 {
		t.Fatal("fabric.repairs_stale not counted")
	}
}

func TestProbationRelapse(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	r.ev.KeySkew = true
	r.tick(w)
	r.ev.KeySkew = false
	for i := 0; i < 10 && r.state() != Recovering; i++ {
		r.tick(w)
	}
	r.wantState(Recovering)
	epochBefore := r.sup.Snapshot()[0].Epoch

	// A rejection during probation re-quarantines and draws a new epoch.
	r.feed(10, 1)
	r.tick(w)
	r.wantState(Quarantined)
	if !r.blocked {
		t.Fatal("relapse must re-block")
	}
	if e := r.sup.Snapshot()[0].Epoch; e != epochBefore+1 {
		t.Fatalf("relapse epoch %d, want %d", e, epochBefore+1)
	}
}

func TestAuditCompleteness(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	// Drive a few full cycles of trouble and recovery.
	for cycle := 0; cycle < 3; cycle++ {
		r.ev.KeySkew = true
		r.tick(w)
		r.ev.KeySkew = false
		for i := 0; i < 12 && r.state() != Healthy; i++ {
			r.feed(10, 0)
			r.tick(w)
		}
		r.wantState(Healthy)
	}
	transitions := r.o.Metrics.Counter("fabric.transitions").Load()
	events := r.o.Audit.ByType(obs.EvLinkState)
	if uint64(len(events)) != transitions {
		t.Fatalf("%d transitions but %d audit events", transitions, len(events))
	}
	if r.o.Audit.Evicted() != 0 {
		t.Fatal("audit ring evicted events mid-test")
	}
	for _, e := range events {
		if e.Cause == "" || e.Actor != r.id.String() {
			t.Fatalf("malformed audit event %+v", e)
		}
	}
	// Gauges agree with the final all-healthy state.
	if v := r.o.Metrics.Gauge("fabric.links_healthy").Load(); v != 1 {
		t.Fatalf("links_healthy gauge %d, want 1", v)
	}
	for _, name := range []string{"fabric.links_suspect", "fabric.links_quarantined", "fabric.links_recovering"} {
		if v := r.o.Metrics.Gauge(name).Load(); v != 0 {
			t.Fatalf("%s gauge %d, want 0", name, v)
		}
	}
}

func TestCounterResetTolerated(t *testing.T) {
	r := newRig(t, cfgFast())
	r.ev = Evidence{OKFeedback: 1000, BadFeedback: 40}
	r.tick(w) // baseline
	r.wantState(Healthy)
	// Switch reboot: counters restart near zero. The delta must not be
	// charged as ~2^64 rejections, and small fresh counts apply as-is.
	r.ev = Evidence{OKFeedback: 5, BadFeedback: 0}
	r.tick(w)
	r.wantState(Healthy)
}

func TestNormalizeAndRegisterIdempotent(t *testing.T) {
	r := newRig(t, cfgFast())
	// Same physical link named from the other end: no second record.
	r.sup.Register(LinkID{A: "s2", PA: 1, B: "s1", PB: 1})
	if n := len(r.sup.Snapshot()); n != 1 {
		t.Fatalf("%d links after re-register, want 1", n)
	}
	id := LinkID{A: "z", PA: 9, B: "a", PB: 2}.Normalize()
	if id.A != "a" || id.PA != 2 || id.B != "z" || id.PB != 9 {
		t.Fatalf("normalize failed: %+v", id)
	}
	if id.String() != "a:2<->z:9" {
		t.Fatalf("label %q", id.String())
	}
}

func TestExternalEpochSource(t *testing.T) {
	r := newRig(t, cfgFast())
	next := uint64(100)
	r.sup.SetEpochSource(func(LinkID) (uint64, error) { next++; return next, nil })
	r.feed(10, 0)
	r.tick(w)
	r.ev.KeySkew = true
	r.tick(w)
	if e := r.sup.Snapshot()[0].Epoch; e != 101 {
		t.Fatalf("epoch %d, want 101 from external source", e)
	}
	r.ev.KeySkew = false
	for i := 0; i < 10 && len(r.repairs) == 0; i++ {
		r.tick(w)
	}
	if len(r.repairs) != 1 || r.repairs[0] != 101 {
		t.Fatalf("repairs %v, want [101]", r.repairs)
	}
}

func TestCollectFailureCountsAsSilence(t *testing.T) {
	r := newRig(t, cfgFast())
	r.feed(10, 0)
	r.tick(w)
	r.evErr = errors.New("unreachable")
	for i := 0; i < 6; i++ {
		r.tick(w)
	}
	r.wantState(Quarantined)
}
