// Package fabric is the link-health supervisor for DP-DP authentication:
// a deterministic per-link state machine driven by data-plane evidence
// (feedback verification counters and key-version skew), with hold-down
// timers and exponential repair backoff to suppress flap storms.
//
// The package is deliberately pure: it holds no references to the
// controller, the switches, or the network. Everything it does to the
// world goes through the Hooks callbacks, and everything it knows about
// time comes from the injected clock — so a netsim-driven test replays
// bit-for-bit, and the same supervisor runs against any transport.
//
// State machine (transition causes in parentheses):
//
//	            bad-digest-threshold /
//	            feedback-silence
//	  Healthy ───────────────────────▶ Suspect
//	     ▲                               │  │
//	     │ clean-windows                 │  │ bad-digest-persistent /
//	     └───────────────────────────────┘  │ feedback-silence
//	                                        ▼
//	            key-skew (from any state) ▶ Quarantined ◀──────────┐
//	                                        │                      │
//	                                        │ hold-down-expired    │ repair-failed /
//	                                        ▼                      │ repair-stale-epoch /
//	                                    Recovering ────────────────┘ probation-failed
//	                                        │
//	                                        │ probation-passed
//	                                        ▼
//	                                     Healthy
//
// Entering Quarantined blocks the link (routing excludes it; fail-closed
// for authentication) and draws a fresh repair epoch. After the hold-down
// the supervisor runs one epoch-fenced repair; success unblocks the link
// into Recovering, where it must survive a probation window of clean,
// flowing authenticated feedback before being trusted again. Any failure
// re-quarantines with deterministic exponential backoff.
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"p4auth/internal/obs"
)

// State is a link's health classification.
type State uint8

const (
	// Healthy: feedback verifies, counters aligned; the link carries
	// probes and data.
	Healthy State = iota
	// Suspect: evidence of trouble (digest failures or silence) below the
	// quarantine threshold; still in service, watched closely.
	Suspect
	// Quarantined: the link is blocked out of routing and its port key is
	// scheduled for repair.
	Quarantined
	// Recovering: repaired and unblocked, serving probes on probation;
	// any relapse re-quarantines.
	Recovering
)

var stateNames = [...]string{"healthy", "suspect", "quarantined", "recovering"}

// String returns the stable lowercase name of the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Transition causes, audited verbatim (machine-matchable constants).
const (
	CauseBadDigests      = "bad-digest-threshold"
	CauseBadPersistent   = "bad-digest-persistent"
	CauseSilence         = "feedback-silence"
	CauseKeySkew         = "key-skew"
	CauseCleanWindows    = "clean-windows"
	CauseHoldDownExpired = "hold-down-expired"
	CauseRepairFailed    = "repair-failed"
	CauseRepairStale     = "repair-stale-epoch"
	CauseProbationPassed = "probation-passed"
	CauseProbationFailed = "probation-failed"
	CauseEvidenceLost    = "evidence-unavailable"
)

// ErrStaleRepair is what a Repair hook returns when its epoch was
// superseded — another repair generation (possibly on another controller)
// overtook this one. The supervisor treats it as a failed attempt but
// audits the distinct cause, because a stale fence is a liveness signal
// (someone else is repairing), not a fault.
var ErrStaleRepair = errors.New("fabric: repair epoch superseded")

// LinkID names a supervised link by its two ends, normalized so A sorts
// before B; both orientations of the same physical link compare equal
// after Normalize.
type LinkID struct {
	A  string
	PA int
	B  string
	PB int
}

// Normalize returns the ID with its lexicographically first end as A.
func (l LinkID) Normalize() LinkID {
	if l.B < l.A || (l.B == l.A && l.PB < l.PA) {
		return LinkID{A: l.B, PA: l.PB, B: l.A, PB: l.PA}
	}
	return l
}

// String renders "a:1<->b:2". Precomputed at Register so audit appends
// stay allocation-free.
func (l LinkID) String() string {
	return fmt.Sprintf("%s:%d<->%s:%d", l.A, l.PA, l.B, l.PB)
}

// Evidence is one link's cumulative data-plane testimony: monotone
// counters of verified and rejected feedback crossing the link (both
// directions summed), plus whether the two ends' key versions agree.
// The supervisor differences consecutive collections itself.
type Evidence struct {
	OKFeedback  uint64
	BadFeedback uint64
	KeySkew     bool
}

// Hooks are the supervisor's only effects on the world. All four must be
// set. They are invoked with the supervisor lock held, so a hook must not
// call back into the Supervisor (the wiring layers never need to).
type Hooks struct {
	// Collect returns the link's current cumulative evidence.
	Collect func(LinkID) (Evidence, error)
	// Block excludes the link from routing (fail-closed).
	Block func(LinkID) error
	// Unblock readmits the link to routing.
	Unblock func(LinkID) error
	// Repair re-establishes the link's port key under the given epoch;
	// return ErrStaleRepair (wrapped is fine) when the epoch was fenced.
	Repair func(LinkID, uint64) error
}

// Config bounds the state machine. All window counts are in Tick calls.
type Config struct {
	// SuspectBad is the per-window rejected-feedback count that moves a
	// Healthy link to Suspect.
	SuspectBad uint64
	// QuarantineStrikes is how many consecutive bad windows a Suspect
	// link survives before quarantine.
	QuarantineStrikes int
	// SilenceWindows quarantines a link after this many consecutive
	// windows with zero feedback either way (a dead or partitioned link
	// is silent, not noisy). <= 0 disables silence detection.
	SilenceWindows int
	// CleanWindows returns a Suspect link to Healthy after this many
	// consecutive windows with no rejections.
	CleanWindows int
	// ProbationWindows is how many consecutive clean AND flowing windows
	// (zero rejections, nonzero verified feedback) a Recovering link must
	// serve before it is Healthy again.
	ProbationWindows int
	// HoldDown is the wait between entering Quarantined and the first
	// repair attempt — the flap-storm damper.
	HoldDown time.Duration
	// RepairBackoff doubles after every failed repair, capped at
	// RepairBackoffMax.
	RepairBackoff    time.Duration
	RepairBackoffMax time.Duration
}

// DefaultConfig returns thresholds tuned for the netsim probe cadence
// (200µs probe period, ~1ms supervision windows).
func DefaultConfig() Config {
	return Config{
		SuspectBad:        1,
		QuarantineStrikes: 2,
		SilenceWindows:    3,
		CleanWindows:      2,
		ProbationWindows:  3,
		HoldDown:          2 * time.Millisecond,
		RepairBackoff:     1 * time.Millisecond,
		RepairBackoffMax:  8 * time.Millisecond,
	}
}

// LinkStatus is one link's externally visible record.
type LinkStatus struct {
	Link        LinkID
	State       State
	Since       time.Duration // virtual time of the last transition
	Cause       string        // cause of the last transition ("" before any)
	Epoch       uint64        // current repair epoch (0 before first quarantine)
	RepairFails int           // failed repair attempts in this quarantine spell
	OK, Bad     uint64        // cumulative evidence at last collection
}

// link is the per-link supervision record.
type link struct {
	id    LinkID
	label string // precomputed id.String() for alloc-free audits

	state State
	since time.Duration
	cause string

	lastOK, lastBad  uint64 // previous cumulative counters
	haveBase         bool   // first collection only establishes the baseline
	badStreak        int    // consecutive windows with rejections
	cleanStreak      int    // consecutive windows without rejections
	silentStreak     int    // consecutive windows with no feedback at all
	probationStreak  int    // consecutive clean+flowing windows in Recovering
	epoch            uint64 // current repair epoch (issued by the repair layer)
	repairFails      int
	nextRepairAt     time.Duration
	collectFailures  int
	lastCollectCause string
}

// Supervisor runs the link-health state machines. Tick-driven: the owner
// schedules Tick at its supervision period (typically on the netsim
// clock); the supervisor never sleeps or spawns goroutines.
type Supervisor struct {
	mu    sync.Mutex
	cfg   Config
	now   func() time.Duration
	hooks Hooks
	links []*link // registration order; deterministic iteration

	nextEpoch func(LinkID) (uint64, error) // optional external epoch source

	transitions *obs.Counter
	repairsOK   *obs.Counter
	repairsFail *obs.Counter
	repairStale *obs.Counter
	gauges      [4]*obs.Gauge // one per State
	audit       *obs.AuditLog
}

// New builds a supervisor. The clock must be monotone (a netsim.Sim's
// Now). The observer receives fabric.* metrics and EvLinkState audit
// events; it must not be nil.
func New(cfg Config, now func() time.Duration, hooks Hooks, o *obs.Observer) (*Supervisor, error) {
	if now == nil {
		return nil, errors.New("fabric: nil clock")
	}
	if hooks.Collect == nil || hooks.Block == nil || hooks.Unblock == nil || hooks.Repair == nil {
		return nil, errors.New("fabric: all four hooks must be set")
	}
	if o == nil {
		return nil, errors.New("fabric: nil observer")
	}
	s := &Supervisor{
		cfg:         cfg,
		now:         now,
		hooks:       hooks,
		transitions: o.Metrics.Counter("fabric.transitions"),
		repairsOK:   o.Metrics.Counter("fabric.repairs_ok"),
		repairsFail: o.Metrics.Counter("fabric.repairs_failed"),
		repairStale: o.Metrics.Counter("fabric.repairs_stale"),
		audit:       o.Audit,
	}
	for st := Healthy; st <= Recovering; st++ {
		s.gauges[st] = o.Metrics.Gauge("fabric.links_" + st.String())
	}
	return s, nil
}

// SetEpochSource installs an external repair-epoch issuer (the
// controller's per-link fence). Without one the supervisor numbers epochs
// itself, monotonically per link.
func (s *Supervisor) SetEpochSource(next func(LinkID) (uint64, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextEpoch = next
}

// Register adds a link (idempotent; the normalized ID is the identity).
// New links start Healthy.
func (s *Supervisor) Register(id LinkID) {
	id = id.Normalize()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.links {
		if l.id == id {
			return
		}
	}
	s.links = append(s.links, &link{id: id, label: id.String(), since: s.now()})
	s.refreshGaugesLocked()
}

// Snapshot returns every link's status, sorted by link label.
func (s *Supervisor) Snapshot() []LinkStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LinkStatus, len(s.links))
	for i, l := range s.links {
		out[i] = LinkStatus{
			Link:        l.id,
			State:       l.state,
			Since:       l.since,
			Cause:       l.cause,
			Epoch:       l.epoch,
			RepairFails: l.repairFails,
			OK:          l.lastOK,
			Bad:         l.lastBad,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link.String() < out[j].Link.String() })
	return out
}

// AllHealthy reports whether every supervised link is Healthy.
func (s *Supervisor) AllHealthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.links {
		if l.state != Healthy {
			return false
		}
	}
	return true
}

// Tick runs one supervision window over every link: collect evidence,
// difference it against the last window, advance the state machine, and
// run any repair whose hold-down or backoff has expired. Deterministic:
// links are visited in registration order and all timing comes from the
// injected clock.
func (s *Supervisor) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.links {
		s.tickLink(l)
	}
}

// tickLink advances one link by one window (s.mu held).
func (s *Supervisor) tickLink(l *link) {
	ev, err := s.hooks.Collect(l.id)
	if err != nil {
		// No evidence is itself evidence: an unreachable link end cannot
		// vouch for the link. Count it as a silent window.
		l.collectFailures++
		l.lastCollectCause = CauseEvidenceLost
		s.applyWindow(l, 0, 0, false, true)
		return
	}
	okDelta := counterDelta(l.lastOK, ev.OKFeedback)
	badDelta := counterDelta(l.lastBad, ev.BadFeedback)
	first := !l.haveBase
	l.lastOK, l.lastBad, l.haveBase = ev.OKFeedback, ev.BadFeedback, true
	if first {
		// The first collection only anchors the counters; deltas against
		// an unknown base would charge historical traffic to this window.
		okDelta, badDelta = 0, 0
		if !ev.KeySkew {
			return
		}
	}
	s.applyWindow(l, okDelta, badDelta, ev.KeySkew, false)
}

// counterDelta differences cumulative counters, tolerating resets (a
// rebooted switch restarts its registers at zero).
func counterDelta(last, cur uint64) uint64 {
	if cur < last {
		return cur
	}
	return cur - last
}

// applyWindow advances the state machine with one window's deltas.
func (s *Supervisor) applyWindow(l *link, okDelta, badDelta uint64, keySkew, collectFailed bool) {
	// Streak accounting, shared by every state.
	if badDelta > 0 {
		l.badStreak++
		l.cleanStreak = 0
	} else {
		l.badStreak = 0
		l.cleanStreak++
	}
	if okDelta == 0 && badDelta == 0 {
		l.silentStreak++
	} else {
		l.silentStreak = 0
	}

	// Key skew quarantines from any in-service state: the two ends no
	// longer share a key, so nothing the link carries can authenticate.
	if keySkew && l.state != Quarantined {
		s.quarantine(l, CauseKeySkew)
		return
	}

	switch l.state {
	case Healthy:
		switch {
		case s.cfg.SuspectBad > 0 && badDelta >= s.cfg.SuspectBad:
			s.transition(l, Suspect, CauseBadDigests)
		case s.cfg.SilenceWindows > 0 && l.silentStreak >= s.cfg.SilenceWindows:
			s.transition(l, Suspect, CauseSilence)
		}
	case Suspect:
		switch {
		case s.cfg.QuarantineStrikes > 0 && l.badStreak >= s.cfg.QuarantineStrikes:
			s.quarantine(l, CauseBadPersistent)
		case s.cfg.SilenceWindows > 0 && l.silentStreak >= 2*s.cfg.SilenceWindows:
			s.quarantine(l, CauseSilence)
		case l.cleanStreak >= s.cfg.CleanWindows && l.silentStreak == 0:
			s.transition(l, Healthy, CauseCleanWindows)
		}
	case Quarantined:
		if collectFailed || s.now() < l.nextRepairAt {
			return
		}
		s.transition(l, Recovering, CauseHoldDownExpired)
		s.attemptRepair(l)
	case Recovering:
		switch {
		case badDelta > 0:
			s.quarantine(l, CauseProbationFailed)
		case s.cfg.SilenceWindows > 0 && l.silentStreak >= 2*s.cfg.SilenceWindows:
			s.quarantine(l, CauseSilence)
		case okDelta > 0 && badDelta == 0:
			l.probationStreak++
			if l.probationStreak >= s.cfg.ProbationWindows {
				s.transition(l, Healthy, CauseProbationPassed)
			}
		}
	}
}

// quarantine blocks the link, draws a fresh repair epoch, and arms the
// hold-down timer (first spell) or the exponential backoff (relapse).
func (s *Supervisor) quarantine(l *link, cause string) {
	relapse := l.state == Recovering
	s.transition(l, Quarantined, cause)
	if err := s.hooks.Block(l.id); err != nil {
		// The block hook failing is not fatal to supervision: the link
		// stays quarantined and the next spell retries the block via
		// attemptRepair's failure path. Routing may briefly still use it.
		l.lastCollectCause = CauseEvidenceLost
	}
	epoch := l.epoch + 1
	if s.nextEpoch != nil {
		if e, err := s.nextEpoch(l.id); err == nil {
			epoch = e
		}
	}
	l.epoch = epoch
	wait := s.cfg.HoldDown
	if relapse || l.repairFails > 0 {
		wait = s.repairWait(l.repairFails)
	}
	l.nextRepairAt = s.now() + wait
	l.probationStreak = 0
}

// repairWait is the deterministic exponential backoff after n failures.
func (s *Supervisor) repairWait(n int) time.Duration {
	d := s.cfg.RepairBackoff
	if d <= 0 {
		d = s.cfg.HoldDown
	}
	for i := 0; i < n; i++ {
		if s.cfg.RepairBackoffMax > 0 && d >= s.cfg.RepairBackoffMax {
			return s.cfg.RepairBackoffMax
		}
		d *= 2
	}
	if s.cfg.RepairBackoffMax > 0 && d > s.cfg.RepairBackoffMax {
		d = s.cfg.RepairBackoffMax
	}
	return d
}

// attemptRepair runs one epoch-fenced repair for a link that just left
// hold-down. Success unblocks the link into probation; failure returns it
// to Quarantined with backoff.
func (s *Supervisor) attemptRepair(l *link) {
	err := s.hooks.Repair(l.id, l.epoch)
	if err == nil {
		s.repairsOK.Inc()
		l.repairFails = 0
		if uerr := s.hooks.Unblock(l.id); uerr != nil {
			// Repaired but still blocked: treat as a failed attempt so the
			// next spell retries the unblock.
			s.repairsFail.Inc()
			wait := s.repairWait(l.repairFails)
			l.repairFails++
			s.transition(l, Quarantined, CauseRepairFailed)
			l.nextRepairAt = s.now() + wait
			return
		}
		l.probationStreak = 0
		l.silentStreak = 0
		return
	}
	cause := CauseRepairFailed
	if errors.Is(err, ErrStaleRepair) {
		cause = CauseRepairStale
		s.repairStale.Inc()
	} else {
		s.repairsFail.Inc()
	}
	// The wait for attempt n+1 is base<<n: the first retry waits exactly
	// RepairBackoff, each further failure doubles it up to the cap.
	wait := s.repairWait(l.repairFails)
	l.repairFails++
	s.transition(l, Quarantined, cause)
	l.nextRepairAt = s.now() + wait
}

// transition moves a link between states, audits the move, and refreshes
// the state gauges. Every state change in the supervisor funnels through
// here — the audit log is complete by construction.
func (s *Supervisor) transition(l *link, to State, cause string) {
	from := l.state
	l.state = to
	l.since = s.now()
	l.cause = cause
	if to != Suspect {
		l.badStreak = 0
	}
	if to == Healthy {
		l.repairFails = 0
	}
	s.transitions.Inc()
	s.audit.Append(obs.EvLinkState, l.label, cause, uint32(l.epoch), uint64(from)<<8|uint64(to))
	s.refreshGaugesLocked()
}

// refreshGaugesLocked recounts the per-state link gauges.
func (s *Supervisor) refreshGaugesLocked() {
	var counts [4]uint64
	for _, l := range s.links {
		counts[l.state]++
	}
	for st, g := range s.gauges {
		if g != nil {
			g.Set(counts[st])
		}
	}
}

// TransitionPair unpacks an EvLinkState audit value into (from, to).
func TransitionPair(value uint64) (from, to State) {
	return State(value >> 8 & 0xff), State(value & 0xff)
}
