package crypto

import (
	"testing"
	"testing/quick"
)

func TestModDHSharedSecretAgreement(t *testing.T) {
	p := DefaultDHParams()
	f := func(r1, r2 uint64) bool {
		pk1 := p.PublicKey(r1)
		pk2 := p.PublicKey(r2)
		kA := p.SharedSecret(r1, pk2)
		kB := p.SharedSecret(r2, pk1)
		return kA == kB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestModDHAgreementAnyParams(t *testing.T) {
	// Agreement must hold for arbitrary public parameters, not just the
	// defaults — AND distributes over XOR unconditionally.
	f := func(pp, g, r1, r2 uint64) bool {
		p := DHParams{P: pp, G: g}
		return p.SharedSecret(r1, p.PublicKey(r2)) == p.SharedSecret(r2, p.PublicKey(r1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestModDHPublicKeyIsMaskedSecret(t *testing.T) {
	// Structural identity: PK = (G XOR P) AND R. With the default params
	// G XOR P is all-ones, so PK == R — which is why the KDF
	// personalization, not the exchange, carries the confidentiality (see
	// dh.go and §VIII of the paper).
	p := DefaultDHParams()
	if gxp := p.G ^ p.P; gxp != ^uint64(0) {
		t.Fatalf("default params: G^P = %#x, want all-ones", gxp)
	}
	for _, r := range []uint64{0, 1, 0xffffffffffffffff, 0x123456789abcdef0} {
		if pk := p.PublicKey(r); pk != ((p.G ^ p.P) & r) {
			t.Errorf("PublicKey(%#x) = %#x, want (G^P)&R = %#x", r, pk, (p.G^p.P)&r)
		}
	}
}

func TestModDHPassiveRecovery(t *testing.T) {
	// Documented weakness of the modified DH as published: an eavesdropper
	// holding both public keys computes the pre-master secret as
	// (PK1 AND PK2) XOR P. This test pins the fact so the security
	// analysis in the README stays honest; P4Auth's compensating control
	// is the secret KDF personalization (TestKDFPersonalizationGuards).
	p := DefaultDHParams()
	rng := NewSeededRand(7)
	for i := 0; i < 100; i++ {
		r1, r2 := rng.Uint64(), rng.Uint64()
		pk1, pk2 := p.PublicKey(r1), p.PublicKey(r2)
		legit := p.SharedSecret(r1, pk2)
		eavesdropped := (pk1 & pk2) ^ p.P
		if eavesdropped != legit {
			t.Fatalf("expected passive recovery to succeed (documents the published scheme): got %#x, want %#x", eavesdropped, legit)
		}
	}
}

func TestSeededRandDeterminism(t *testing.T) {
	a := NewSeededRand(99)
	b := NewSeededRand(99)
	for i := 0; i < 100; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %#x != %#x", i, x, y)
		}
	}
	c := NewSeededRand(100)
	if a.Uint64() == c.Uint64() {
		t.Error("different seeds produced identical streams (first draw)")
	}
}

func TestCryptoRandNonConstant(t *testing.T) {
	var r CryptoRand
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		t.Errorf("two CSPRNG draws identical: %#x", a)
	}
}

func BenchmarkModDHExchange(b *testing.B) {
	p := DefaultDHParams()
	rng := NewSeededRand(1)
	r1, r2 := rng.Uint64(), rng.Uint64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pk1 := p.PublicKey(r1)
		pk2 := p.PublicKey(r2)
		_ = p.SharedSecret(r1, pk2)
		_ = p.SharedSecret(r2, pk1)
	}
}
