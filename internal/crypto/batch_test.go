package crypto

import (
	"fmt"
	"testing"
)

// batchVectors returns inputs exercising every block-boundary case of the
// kernels: empty, sub-block, exact blocks, and long tails.
func batchVectors() [][]byte {
	r := NewSeededRand(0xBA7C4)
	sizes := []int{0, 1, 3, 4, 5, 8, 11, 16, 23, 64, 129}
	out := make([][]byte, 0, len(sizes))
	for _, n := range sizes {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Uint64())
		}
		out = append(out, b)
	}
	return out
}

// TestSumBatch32MatchesSum32 pins the batch kernels to the one-shot path:
// a batch digest must be bit-identical to Sum32 for every digester, both
// the amortized kernels and the generic fallback.
func TestSumBatch32MatchesSum32(t *testing.T) {
	datas := batchVectors()
	digesters := []Digester{
		NewCRC32Digester(),
		NewHalfSipHashDigester(),
		SHA256Digester{}, // no kernel: exercises the fallback
	}
	for _, d := range digesters {
		for _, key := range []uint64{0, 1, 0x0123456789abcdef, ^uint64(0)} {
			out := make([]uint32, len(datas))
			SignBatch(d, key, datas, out)
			for i, data := range datas {
				if want := d.Sum32(key, data); out[i] != want {
					t.Errorf("%s key %#x len %d: batch %#x, single %#x", d.Name(), key, len(data), out[i], want)
				}
			}
		}
	}
}

// TestVerifyBatch checks acceptance of genuine digests and rejection of
// per-item tampering without poisoning neighbours.
func TestVerifyBatch(t *testing.T) {
	d := NewHalfSipHashDigester()
	key := uint64(0xfeedface)
	datas := batchVectors()
	got := make([]uint32, len(datas))
	ok := make([]bool, len(datas))
	SignBatch(d, key, datas, got)
	if n := VerifyBatch(d, key, datas, got, ok); n != len(datas) {
		t.Fatalf("genuine batch: %d/%d verified", n, len(datas))
	}
	// Flip one digest: only that item fails.
	got[3] ^= 1
	if n := VerifyBatch(d, key, datas, got, ok); n != len(datas)-1 {
		t.Fatalf("tampered batch: %d/%d verified, want %d", n, len(datas), len(datas)-1)
	}
	for i, o := range ok {
		if (i == 3) == o {
			t.Errorf("item %d: ok=%v", i, o)
		}
	}
	// Wrong key: everything fails.
	got[3] ^= 1
	if n := VerifyBatch(d, key^1, datas, got, ok); n != 0 {
		t.Fatalf("wrong key: %d items verified", n)
	}
}

// TestBatchAllocs pins the steady-state batch paths at zero allocations.
func TestBatchAllocs(t *testing.T) {
	for _, d := range []Digester{NewCRC32Digester(), NewHalfSipHashDigester()} {
		datas := batchVectors()
		got := make([]uint32, len(datas))
		ok := make([]bool, len(datas))
		SignBatch(d, 7, datas, got)
		VerifyBatch(d, 7, datas, got, ok) // warm the scratch pool
		if n := testing.AllocsPerRun(100, func() {
			SignBatch(d, 7, datas, got)
		}); n != 0 {
			t.Errorf("%s SignBatch: %v allocs/op, want 0", d.Name(), n)
		}
		if n := testing.AllocsPerRun(100, func() {
			VerifyBatch(d, 7, datas, got, ok)
		}); n != 0 {
			t.Errorf("%s VerifyBatch: %v allocs/op, want 0", d.Name(), n)
		}
	}
}

// TestSeededRandFork pins fork determinism and stream disjointness.
func TestSeededRandFork(t *testing.T) {
	base := NewSeededRand(42)
	f0 := base.Fork(0)
	f0again := NewSeededRand(42).Fork(0)
	for i := 0; i < 64; i++ {
		if a, b := f0.Uint64(), f0again.Uint64(); a != b {
			t.Fatalf("fork not deterministic at draw %d: %#x vs %#x", i, a, b)
		}
	}
	// Sibling forks and the parent must not replay each other's stream.
	seen := map[uint64]string{}
	sources := map[string]RandomSource{
		"parent": NewSeededRand(42),
		"fork0":  NewSeededRand(42).Fork(0),
		"fork1":  NewSeededRand(42).Fork(1),
	}
	for name, src := range sources {
		for i := 0; i < 256; i++ {
			v := src.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("draw %#x appears in both %s and %s", v, prev, name)
			}
			seen[v] = name
		}
	}
	if _, ok := (CryptoRand{}).Fork(3).(CryptoRand); !ok {
		t.Fatal("CryptoRand.Fork should return itself")
	}
}

func BenchmarkSignBatch(b *testing.B) {
	for _, d := range []Digester{NewCRC32Digester(), NewHalfSipHashDigester()} {
		// 32 messages of the control-channel digest-input size.
		datas := make([][]byte, 32)
		for i := range datas {
			datas[i] = make([]byte, 23)
		}
		out := make([]uint32, len(datas))
		b.Run(fmt.Sprintf("%s/w32", d.Name()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SignBatch(d, 7, datas, out)
			}
		})
	}
}
