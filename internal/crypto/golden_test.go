package crypto

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenVectors pins every primitive to the hex vectors frozen in
// testdata/golden_vectors.txt. A failure here means the implementation's
// output changed — which breaks key compatibility with every deployed
// switch image and every persisted snapshot — so fix the code, never the
// vectors (a deliberate format change needs a version bump, not a silent
// re-freeze).
func TestGoldenVectors(t *testing.T) {
	f, err := os.Open("testdata/golden_vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	hsh := NewHalfSipHash24()
	ieee := NewKeyedCRC32()
	cast := NewKeyedCRC32Castagnoli()
	dh := DefaultDHParams()

	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lines++
		fields := strings.Fields(line)
		kind := fields[0]
		switch kind {
		case "halfsiphash", "crc32-ieee", "crc32-cast":
			key, data, want := parsePRFCase(t, line, fields)
			var got uint32
			switch kind {
			case "halfsiphash":
				got = hsh.Sum32(key, data)
			case "crc32-ieee":
				got = ieee.Sum32(key, data)
			case "crc32-cast":
				got = cast.Sum32(key, data)
			}
			if got != want {
				t.Errorf("%s(key=%#x, %x) = %08x, golden %08x", kind, key, data, got, want)
			}
		case "kdf-hsh", "kdf-crc":
			if len(fields) != 6 {
				t.Fatalf("bad kdf line %q", line)
			}
			rounds, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("bad rounds in %q: %v", line, err)
			}
			pers := parseU64(t, line, fields[2])
			secret := parseU64(t, line, fields[3])
			salt := parseU64(t, line, fields[4])
			want := parseU64(t, line, fields[5])
			kdf := KDF{Rounds: rounds, Personalization: pers}
			if kind == "kdf-crc" {
				kdf.PRF = ieee
			}
			if got := kdf.Derive(secret, salt); got != want {
				t.Errorf("%s rounds=%d pers=%#x Derive(%#x, %#x) = %016x, golden %016x",
					kind, rounds, pers, secret, salt, got, want)
			}
		case "dh":
			if len(fields) != 6 {
				t.Fatalf("bad dh line %q", line)
			}
			r1 := parseU64(t, line, fields[1])
			r2 := parseU64(t, line, fields[2])
			wantPK1 := parseU64(t, line, fields[3])
			wantPK2 := parseU64(t, line, fields[4])
			wantK := parseU64(t, line, fields[5])
			pk1, pk2 := dh.PublicKey(r1), dh.PublicKey(r2)
			if pk1 != wantPK1 || pk2 != wantPK2 {
				t.Errorf("dh public keys (%016x, %016x), golden (%016x, %016x)", pk1, pk2, wantPK1, wantPK2)
			}
			if k := dh.SharedSecret(r1, pk2); k != wantK {
				t.Errorf("dh shared secret %016x, golden %016x", k, wantK)
			}
			if k := dh.SharedSecret(r2, pk1); k != wantK {
				t.Errorf("dh shared secret (responder side) %016x, golden %016x", k, wantK)
			}
		default:
			t.Fatalf("unknown golden vector kind %q", kind)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 30 {
		t.Fatalf("only %d golden vectors parsed; file truncated?", lines)
	}
}

// parsePRFCase handles the two-or-three-field PRF lines (the data field
// is empty for zero-length inputs, so the line may have 3 fields).
func parsePRFCase(t *testing.T, line string, fields []string) (key uint64, data []byte, want uint32) {
	t.Helper()
	var dataHex, wantHex string
	switch len(fields) {
	case 4:
		dataHex, wantHex = fields[2], fields[3]
	case 3: // empty data
		dataHex, wantHex = "", fields[2]
	default:
		t.Fatalf("bad PRF line %q", line)
	}
	key = parseU64(t, line, fields[1])
	var err error
	data, err = hex.DecodeString(dataHex)
	if err != nil {
		t.Fatalf("bad data hex in %q: %v", line, err)
	}
	w, err := strconv.ParseUint(wantHex, 16, 32)
	if err != nil {
		t.Fatalf("bad sum hex in %q: %v", line, err)
	}
	return key, data, uint32(w)
}

func parseU64(t *testing.T, line, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		t.Fatalf("bad u64 hex %q in %q: %v", s, line, err)
	}
	return v
}

// TestGoldenVectorSelfCheck guards the freezing process itself: the known
// HalfSipHash-2-4 answer for an empty input under the zero key must match
// the file (catches an accidentally regenerated-from-broken-code file).
func TestGoldenVectorSelfCheck(t *testing.T) {
	want := fmt.Sprintf("%08x", NewHalfSipHash24().Sum32(0, nil))
	b, err := os.ReadFile("testdata/golden_vectors.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "halfsiphash 0000000000000000  "+want) {
		t.Fatalf("golden file does not contain the zero-key empty-input vector %s", want)
	}
}
