package crypto

import "math/bits"

// HalfSipHash implements the 32-bit-word variant of SipHash described by
// Aumasson and Bernstein, with c compression rounds and d finalization
// rounds and a 32-bit output. The paper's BMv2 prototype exposes
// HalfSipHash-2-4 as the compute_digest extern; the state update uses only
// 32-bit additions, XORs and rotations, which is exactly the operation set
// a PISA stage offers.
type HalfSipHash struct {
	// CRounds is the number of compression rounds per message block.
	CRounds int
	// DRounds is the number of finalization rounds.
	DRounds int
}

// NewHalfSipHash24 returns the HalfSipHash-2-4 parameterization used by the
// paper's prototype.
func NewHalfSipHash24() HalfSipHash {
	return HalfSipHash{CRounds: 2, DRounds: 4}
}

// sipState is the key-mixed initial state: everything about the key the
// compression loop needs, computed once and reusable across messages.
type sipState struct{ v0, v1, v2, v3 uint32 }

// initState mixes the 64-bit key (split little-endian into two 32-bit
// words, matching the reference implementation) into the IV.
func initState(key uint64) sipState {
	k0 := uint32(key)
	k1 := uint32(key >> 32)
	return sipState{
		v0: 0 ^ k0,
		v1: 0 ^ k1,
		v2: 0x6c796765 ^ k0,
		v3: 0x74656462 ^ k1,
	}
}

// Sum32 computes the 32-bit HalfSipHash of data under the 64-bit key.
func (h HalfSipHash) Sum32(key uint64, data []byte) uint32 {
	return h.sumFrom(initState(key), data)
}

// SumBatch32 computes the digest of each input under one key, writing
// out[i] for datas[i]. The key mix is performed once for the whole batch;
// out must have len(datas) entries. This is the kernel behind
// SignBatch/VerifyBatch.
func (h HalfSipHash) SumBatch32(key uint64, datas [][]byte, out []uint32) {
	st := initState(key)
	for i, d := range datas {
		out[i] = h.sumFrom(st, d)
	}
}

// sumFrom runs the compression and finalization over data starting from a
// prepared key state.
func (h HalfSipHash) sumFrom(st sipState, data []byte) uint32 {
	v0, v1, v2, v3 := st.v0, st.v1, st.v2, st.v3

	round := func() {
		v0 += v1
		v1 = bits.RotateLeft32(v1, 5)
		v1 ^= v0
		v0 = bits.RotateLeft32(v0, 16)
		v2 += v3
		v3 = bits.RotateLeft32(v3, 8)
		v3 ^= v2
		v0 += v3
		v3 = bits.RotateLeft32(v3, 7)
		v3 ^= v0
		v2 += v1
		v1 = bits.RotateLeft32(v1, 13)
		v1 ^= v2
		v2 = bits.RotateLeft32(v2, 16)
	}

	n := len(data)
	// Whole 4-byte blocks, little-endian.
	i := 0
	for ; n-i >= 4; i += 4 {
		m := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		v3 ^= m
		for r := 0; r < h.CRounds; r++ {
			round()
		}
		v0 ^= m
	}

	// Final block: remaining bytes plus the message length modulo 256 in
	// the most significant byte.
	last := uint32(n&0xff) << 24
	switch n - i {
	case 3:
		last |= uint32(data[i+2]) << 16
		fallthrough
	case 2:
		last |= uint32(data[i+1]) << 8
		fallthrough
	case 1:
		last |= uint32(data[i])
	}
	v3 ^= last
	for r := 0; r < h.CRounds; r++ {
		round()
	}
	v0 ^= last

	v2 ^= 0xff
	for r := 0; r < h.DRounds; r++ {
		round()
	}
	return v1 ^ v3
}
