package crypto

import (
	"hash/crc32"
	"sync"
)

// Shared lookup tables and digester singletons. Building a crc32.Table is
// a 1KiB computation; every switch instantiation and controller handle
// needs the same two tables, so they are built once per process instead
// of once per NewSwitchFromCompiled/Register call.

var (
	ieeeOnce  sync.Once
	ieeeTab   *crc32.Table
	castOnce  sync.Once
	castTab   *crc32.Table
)

// IEEETable returns the process-wide CRC32 table for the IEEE polynomial.
func IEEETable() *crc32.Table {
	ieeeOnce.Do(func() { ieeeTab = crc32.MakeTable(crc32.IEEE) })
	return ieeeTab
}

// CastagnoliTable returns the process-wide CRC32 table for the Castagnoli
// polynomial.
func CastagnoliTable() *crc32.Table {
	castOnce.Do(func() { castTab = crc32.MakeTable(crc32.Castagnoli) })
	return castTab
}

// Process-wide digester singletons, pre-boxed as Digester so hot-path
// callers holding the interface never re-box the concrete value (a
// per-call heap allocation for multi-word structs).
var (
	sharedHalfSip Digester = HalfSipHashDigester{NewHalfSipHash24()}
	sharedCRC32   Digester = CRC32Digester{KeyedCRC32{table: IEEETable()}}
)

// SharedHalfSipHashDigester returns the process-wide HalfSipHash-2-4
// digester.
func SharedHalfSipHashDigester() Digester { return sharedHalfSip }

// SharedCRC32Digester returns the process-wide keyed-CRC32 digester
// (IEEE polynomial, shared table).
func SharedCRC32Digester() Digester { return sharedCRC32 }
