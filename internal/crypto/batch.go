// Batch digest path: sign or verify N messages under one key in a single
// call, amortizing the per-message key setup (the CRC32 key-envelope
// prefix, the HalfSipHash key mix) and the interface dispatch that the
// one-at-a-time Sum32 path pays per message. The per-message work is
// otherwise identical — a batch of one produces exactly the single-shot
// digest — so callers may mix the paths freely.
package crypto

import (
	"crypto/subtle"
	"encoding/binary"
	"sync"
)

// batchPRF32 is implemented by digesters with a key-amortized batch
// kernel. KeyedCRC32 and HalfSipHash (and their Digester wrappers, by
// embedding) provide it; anything else falls back to per-item Sum32.
type batchPRF32 interface {
	SumBatch32(key uint64, datas [][]byte, out []uint32)
}

// sumBatch dispatches to the digester's batch kernel when it has one.
func sumBatch(d PRF32, key uint64, datas [][]byte, out []uint32) {
	if b, ok := d.(batchPRF32); ok {
		b.SumBatch32(key, datas, out)
		return
	}
	for i, data := range datas {
		out[i] = d.Sum32(key, data)
	}
}

// SignBatch computes the digest of each input under one key, writing
// out[i] for datas[i]. out must have at least len(datas) entries.
func SignBatch(d PRF32, key uint64, datas [][]byte, out []uint32) {
	if len(out) < len(datas) {
		panic("crypto: SignBatch output shorter than input")
	}
	sumBatch(d, key, datas, out[:len(datas)])
}

// sumScratch pools the recomputed-digest buffer VerifyBatch compares
// against, so the steady-state verify path does not allocate.
var sumScratch = sync.Pool{New: func() any {
	b := make([]uint32, 0, 64)
	return &b
}}

// VerifyBatch recomputes the digest of each input under one key and
// compares it with got[i] in constant time per item, writing ok[i] and
// returning the number of items that verified. got and ok must have at
// least len(datas) entries.
func VerifyBatch(d PRF32, key uint64, datas [][]byte, got []uint32, ok []bool) int {
	if len(got) < len(datas) || len(ok) < len(datas) {
		panic("crypto: VerifyBatch digest/result slices shorter than input")
	}
	bp := sumScratch.Get().(*[]uint32)
	sums := *bp
	if cap(sums) < len(datas) {
		sums = make([]uint32, len(datas))
	}
	sums = sums[:len(datas)]
	sumBatch(d, key, datas, sums)
	n := 0
	var a, b [4]byte
	for i := range datas {
		binary.BigEndian.PutUint32(a[:], sums[i])
		binary.BigEndian.PutUint32(b[:], got[i])
		ok[i] = subtle.ConstantTimeCompare(a[:], b[:]) == 1
		if ok[i] {
			n++
		}
	}
	*bp = sums[:0]
	sumScratch.Put(bp)
	return n
}
