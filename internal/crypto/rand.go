package crypto

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// RandomSource yields the random private secrets and salts the protocol
// consumes (the P4 random() extern on the switch, os.urandom at the
// controller). Implementations must be safe for concurrent use.
type RandomSource interface {
	Uint64() uint64
}

// Forkable is a RandomSource that can derive independent deterministic
// substreams. Parallel consumers (the switch's per-port ingress workers)
// fork one substream per shard so draws stay reproducible regardless of
// scheduling: stream contents depend only on (seed, shard), never on
// which goroutine drew first.
type Forkable interface {
	RandomSource
	// Fork returns a source whose stream is determined by the parent's
	// seed and the shard index, disjoint from the parent's own stream.
	Fork(shard uint64) RandomSource
}

// SeededRand is a deterministic RandomSource (splitmix64). Experiments use
// it so every run is reproducible; the paper's §XI discussion that Tofino's
// PRNG "may not be cryptographically strong" is, if anything, modeled
// faithfully by it.
type SeededRand struct {
	mu    sync.Mutex
	seed  uint64
	state uint64
}

// NewSeededRand returns a deterministic source seeded with seed.
func NewSeededRand(seed uint64) *SeededRand {
	return &SeededRand{seed: seed, state: seed}
}

// Uint64 returns the next splitmix64 output.
func (s *SeededRand) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Fork derives a substream seeded from (seed, shard) with a splitmix64
// finalizer, so sibling shards and the parent stream stay disjoint for
// any practical draw count.
func (s *SeededRand) Fork(shard uint64) RandomSource {
	z := s.seed + (shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewSeededRand(z ^ (z >> 31))
}

// CryptoRand is a RandomSource backed by crypto/rand, for non-simulated
// deployments.
type CryptoRand struct{}

// Uint64 reads 8 bytes from the system CSPRNG. Failure to read from the
// system entropy source is unrecoverable and panics, matching the stance of
// crypto/rand itself.
func (CryptoRand) Uint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("crypto: system entropy source failed: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Fork returns the source itself: every CSPRNG read is independent, so
// shards share it safely and no derivation is needed.
func (c CryptoRand) Fork(uint64) RandomSource { return c }

var (
	_ Forkable = (*SeededRand)(nil)
	_ Forkable = CryptoRand{}
)
