package crypto

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
)

// RandomSource yields the random private secrets and salts the protocol
// consumes (the P4 random() extern on the switch, os.urandom at the
// controller). Implementations must be safe for concurrent use.
type RandomSource interface {
	Uint64() uint64
}

// SeededRand is a deterministic RandomSource (splitmix64). Experiments use
// it so every run is reproducible; the paper's §XI discussion that Tofino's
// PRNG "may not be cryptographically strong" is, if anything, modeled
// faithfully by it.
type SeededRand struct {
	mu    sync.Mutex
	state uint64
}

// NewSeededRand returns a deterministic source seeded with seed.
func NewSeededRand(seed uint64) *SeededRand {
	return &SeededRand{state: seed}
}

// Uint64 returns the next splitmix64 output.
func (s *SeededRand) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CryptoRand is a RandomSource backed by crypto/rand, for non-simulated
// deployments.
type CryptoRand struct{}

// Uint64 reads 8 bytes from the system CSPRNG. Failure to read from the
// system entropy source is unrecoverable and panics, matching the stance of
// crypto/rand itself.
func (CryptoRand) Uint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("crypto: system entropy source failed: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:])
}

var (
	_ RandomSource = (*SeededRand)(nil)
	_ RandomSource = CryptoRand{}
)
