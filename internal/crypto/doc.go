// Package crypto implements the data-plane-feasible cryptographic
// primitives used by P4Auth: HalfSipHash-2-4 keyed hashing, a keyed CRC32
// pseudo-random function, the modified Diffie-Hellman exchange (AND/XOR
// only), and the TLS-1.3-inspired Extract-and-Expand key derivation
// function.
//
// Every primitive in this package is restricted to operations a PISA
// pipeline can execute per packet: 32-bit additions, XOR, AND, OR, shifts
// and rotations, plus table-driven CRC. There are no multiplications,
// divisions, modular reductions, or data-dependent loops in the per-message
// paths; bounded loops present in Go source correspond to unrolled pipeline
// stages in the P4 realization (see internal/pisa).
package crypto
