package crypto

import "encoding/binary"

// PRF32 is a 32-bit-output keyed pseudo-random function, the primitive the
// KDF (Fig. 13) is built on. The paper's prototype uses CRC32 on Tofino and
// HalfSipHash on BMv2; both satisfy this interface.
type PRF32 interface {
	Sum32(key uint64, data []byte) uint32
}

var (
	_ PRF32 = HalfSipHash{}
	_ PRF32 = KeyedCRC32{}
)

// KDF is the custom key derivation function of §VI-D, following TLS 1.3's
// Extract-and-Expand (HKDF) structure: a randomness-extraction pass keyed
// by the public salt, then an expansion pass producing the output key. The
// PRF yields 32 bits, so each phase runs the PRF twice to produce 64-bit
// values, exactly as the paper describes ("the KDF executes the PRF twice
// to produce the final 64-bit secret").
//
// Personalization is the secret constant standing in for the paper's
// "custom logic in the binary, kept secret between C and DP" (§VIII): it is
// compiled into the controller and switch images and never crosses the
// wire, so an observer who captures every exchange message still cannot
// reproduce the derivation. The zero value uses HalfSipHash-2-4, one round,
// and no personalization.
type KDF struct {
	// PRF is the pseudo-random function; nil means HalfSipHash-2-4.
	PRF PRF32
	// Rounds is the number of expansion iterations; values below 1 are
	// treated as 1 (the paper's prototype setting).
	Rounds int
	// Personalization is the secret per-deployment constant mixed into
	// both phases.
	Personalization uint64
}

// Labels keep the extract and expand phases, and the two PRF invocations
// inside each phase, in distinct domains. They are 64-bit values and the
// derivation buffer is packed big-endian so a PISA pipeline can reproduce
// the computation exactly: hash units there consume MSB-first packed
// fields, and immediate operands are 64 bits wide (see internal/pisa).
const (
	KDFLabelExtractLo uint64 = 0xE1
	KDFLabelExtractHi uint64 = 0xE2
	KDFLabelExpandLo  uint64 = 0x01
	KDFLabelExpandHi  uint64 = 0x02
)

func (k KDF) prf() PRF32 {
	if k.PRF == nil {
		return NewHalfSipHash24()
	}
	return k.PRF
}

// Derive computes a 64-bit key from a 64-bit input secret and a 64-bit
// public salt (Fig. 13): extract a pseudo-random key from (secret, salt),
// then expand it for the configured number of rounds.
func (k KDF) Derive(secret, salt uint64) uint64 {
	prf := k.prf()
	rounds := k.Rounds
	if rounds < 1 {
		rounds = 1
	}

	// Extract: key the PRF with the salt, absorb the secret and the
	// personalization. Layout: secret(8) || personalization(8) || label(8),
	// all big-endian — the MSB-first packing a pipeline hash unit produces.
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[0:8], secret)
	binary.BigEndian.PutUint64(buf[8:16], k.Personalization)
	binary.BigEndian.PutUint64(buf[16:24], KDFLabelExtractLo)
	lo := prf.Sum32(salt, buf[:])
	binary.BigEndian.PutUint64(buf[16:24], KDFLabelExtractHi)
	hi := prf.Sum32(salt, buf[:])
	prk := uint64(hi)<<32 | uint64(lo)

	// Expand: iterate the PRF keyed by the pseudo-random key, feeding the
	// previous output and the personalization back in.
	out := prk
	for r := 0; r < rounds; r++ {
		binary.BigEndian.PutUint64(buf[0:8], out)
		binary.BigEndian.PutUint64(buf[8:16], k.Personalization)
		binary.BigEndian.PutUint64(buf[16:24], KDFLabelExpandLo)
		lo = prf.Sum32(prk, buf[:])
		binary.BigEndian.PutUint64(buf[16:24], KDFLabelExpandHi)
		hi = prf.Sum32(prk, buf[:])
		out = uint64(hi)<<32 | uint64(lo)
	}
	return out
}
