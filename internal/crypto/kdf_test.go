package crypto

import (
	"testing"
	"testing/quick"
)

func TestKDFDeterministic(t *testing.T) {
	kdfs := map[string]KDF{
		"default-halfsiphash": {},
		"crc32-prf":           {PRF: NewKeyedCRC32()},
		"rounds-3":            {Rounds: 3},
		"personalized":        {Personalization: 0x5eed},
	}
	for name, k := range kdfs {
		k := k
		t.Run(name, func(t *testing.T) {
			f := func(secret, salt uint64) bool {
				return k.Derive(secret, salt) == k.Derive(secret, salt)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestKDFSaltChangesOutput(t *testing.T) {
	var k KDF
	const secret = 0xfeedface
	seen := make(map[uint64]uint64)
	rng := NewSeededRand(3)
	for i := 0; i < 200; i++ {
		salt := rng.Uint64()
		out := k.Derive(secret, salt)
		if prev, dup := seen[out]; dup {
			t.Fatalf("salt collision: salts %#x and %#x derive the same key", prev, salt)
		}
		seen[out] = salt
	}
}

func TestKDFSecretChangesOutput(t *testing.T) {
	var k KDF
	const salt = 0xabcdef
	base := k.Derive(0, salt)
	for bit := 0; bit < 64; bit++ {
		if k.Derive(1<<bit, salt) == base {
			t.Errorf("flipping secret bit %d left the derived key unchanged", bit)
		}
	}
}

func TestKDFPersonalizationGuards(t *testing.T) {
	// The compensating control for the modified DH's passive weakness
	// (see TestModDHPassiveRecovery): an observer who recovers the
	// pre-master secret AND the salt still derives the wrong key without
	// the secret personalization constant.
	deployment := KDF{Personalization: 0x7a6b5c4d3e2f1001}
	observer := KDF{} // knows the algorithm, not the personalization
	const pms, salt = 0x1122334455667788, 0x99aabbccddeeff00
	if deployment.Derive(pms, salt) == observer.Derive(pms, salt) {
		t.Fatal("observer derived the deployment key without the personalization secret")
	}
	// And wrong guesses don't help.
	for g := uint64(1); g < 100; g++ {
		wrong := KDF{Personalization: g}
		if wrong.Derive(pms, salt) == deployment.Derive(pms, salt) {
			t.Fatalf("personalization guess %d collided", g)
		}
	}
}

func TestKDFRoundsChangeOutput(t *testing.T) {
	one := KDF{Rounds: 1}
	two := KDF{Rounds: 2}
	if one.Derive(1, 2) == two.Derive(1, 2) {
		t.Error("round count does not affect derivation")
	}
	// Rounds < 1 behaves as 1, per the doc contract.
	zero := KDF{Rounds: 0}
	neg := KDF{Rounds: -5}
	if zero.Derive(1, 2) != one.Derive(1, 2) || neg.Derive(1, 2) != one.Derive(1, 2) {
		t.Error("rounds<1 should clamp to the paper's single-round setting")
	}
}

func TestKDFOutputBitBalanceQuick(t *testing.T) {
	// "Close-to-random" keys (§VI-D): across random inputs, each output
	// bit should be set roughly half the time.
	var k KDF
	rng := NewSeededRand(11)
	const samples = 4000
	var counts [64]int
	for i := 0; i < samples; i++ {
		out := k.Derive(rng.Uint64(), rng.Uint64())
		for b := 0; b < 64; b++ {
			if out&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / samples
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("output bit %d set %.3f of the time, want ~0.5", b, frac)
		}
	}
}

func TestVerifyConstantTimeCompare(t *testing.T) {
	d := NewHalfSipHashDigester()
	const key = 0x42
	msg := []byte("writeReq reg=4 idx=2 val=9")
	good := d.Sum32(key, msg)
	if !Verify(d, key, msg, good) {
		t.Fatal("correct digest rejected")
	}
	if Verify(d, key, msg, good^1) {
		t.Fatal("tampered digest accepted")
	}
	if Verify(d, key^1, msg, good) {
		t.Fatal("digest under wrong key accepted")
	}
}

func TestDigesterNamesDistinct(t *testing.T) {
	ds := []Digester{NewHalfSipHashDigester(), NewCRC32Digester(), SHA256Digester{}}
	names := make(map[string]bool)
	for _, d := range ds {
		if names[d.Name()] {
			t.Fatalf("duplicate digester name %q", d.Name())
		}
		names[d.Name()] = true
	}
}

func TestKeyedCRC32KeyMatters(t *testing.T) {
	c := NewKeyedCRC32()
	msg := []byte("probe util")
	if c.Sum32(1, msg) == c.Sum32(2, msg) {
		t.Error("key change did not change CRC32 PRF output")
	}
	cc := NewKeyedCRC32Castagnoli()
	if c.Sum32(1, msg) == cc.Sum32(1, msg) {
		t.Error("IEEE and Castagnoli polynomials produced identical output")
	}
}

func TestSHA256DigesterStable(t *testing.T) {
	var d SHA256Digester
	f := func(key uint64, msg []byte) bool {
		return d.Sum32(key, msg) == d.Sum32(key, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if d.Sum32(1, []byte("x")) == d.Sum32(2, []byte("x")) {
		t.Error("key not absorbed")
	}
}

func BenchmarkKDFDerive(b *testing.B) {
	for _, tc := range []struct {
		name string
		kdf  KDF
	}{
		{"halfsiphash-r1", KDF{}},
		{"crc32-r1", KDF{PRF: NewKeyedCRC32()}},
		{"halfsiphash-r4", KDF{Rounds: 4}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = tc.kdf.Derive(uint64(i), 0xabcdef)
			}
		})
	}
}

func BenchmarkDigesters(b *testing.B) {
	msg := make([]byte, 40)
	for _, d := range []Digester{NewHalfSipHashDigester(), NewCRC32Digester(), SHA256Digester{}} {
		b.Run(d.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(msg)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = d.Sum32(0x0123456789abcdef, msg)
			}
		})
	}
}
