package crypto

import (
	"testing"
	"testing/quick"
)

// Golden values frozen from this implementation. Offline reproduction: the
// C reference vectors were not reachable, so these regression-lock the
// implementation rather than cross-validate it; the structural properties
// below (block handling, length padding, key splitting) follow the
// published HalfSipHash specification.
func TestHalfSipHashGolden(t *testing.T) {
	h := NewHalfSipHash24()
	key := uint64(0x0706050403020100)
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	tests := []struct {
		n    int
		want uint32
	}{
		{0, h.Sum32(key, nil)},
		{1, h.Sum32(key, msg[:1])},
		{4, h.Sum32(key, msg[:4])},
		{7, h.Sum32(key, msg[:7])},
		{8, h.Sum32(key, msg[:8])},
		{63, h.Sum32(key, msg[:63])},
	}
	// Determinism: recomputation must match.
	for _, tt := range tests {
		if got := h.Sum32(key, msg[:tt.n]); got != tt.want {
			t.Errorf("len %d: got %#x, want %#x", tt.n, got, tt.want)
		}
	}
}

func TestHalfSipHashLengthDomainSeparation(t *testing.T) {
	// A message of n zero bytes and one of n+4 zero bytes must differ even
	// though the extra block is all zero, because the final block encodes
	// the length.
	h := NewHalfSipHash24()
	const key = 0xdeadbeefcafebabe
	zeros := make([]byte, 32)
	seen := make(map[uint32]int)
	for n := 0; n <= 32; n++ {
		d := h.Sum32(key, zeros[:n])
		if prev, dup := seen[d]; dup {
			t.Fatalf("length collision: len %d and len %d both hash to %#x", prev, n, d)
		}
		seen[d] = n
	}
}

func TestHalfSipHashKeySensitivity(t *testing.T) {
	h := NewHalfSipHash24()
	msg := []byte("p4auth probe util=0x2a port=3")
	base := h.Sum32(0, msg)
	for bit := 0; bit < 64; bit++ {
		if got := h.Sum32(1<<bit, msg); got == base {
			t.Errorf("flipping key bit %d did not change the digest", bit)
		}
	}
}

func TestHalfSipHashMessageSensitivityQuick(t *testing.T) {
	h := NewHalfSipHash24()
	f := func(key uint64, msg []byte, idx uint8) bool {
		if len(msg) == 0 {
			return true
		}
		i := int(idx) % len(msg)
		orig := h.Sum32(key, msg)
		mut := make([]byte, len(msg))
		copy(mut, msg)
		mut[i] ^= 0x80
		return h.Sum32(key, mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHalfSipHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial fraction of output
	// bits on average — a weak but useful sanity check that the rounds are
	// actually mixing.
	h := NewHalfSipHash24()
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	const key = 0x0123456789abcdef
	base := h.Sum32(key, msg)
	totalFlips := 0
	trials := 0
	for byteIdx := 0; byteIdx < len(msg); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(msg))
			copy(mut, msg)
			mut[byteIdx] ^= 1 << bit
			diff := h.Sum32(key, mut) ^ base
			for diff != 0 {
				totalFlips += int(diff & 1)
				diff >>= 1
			}
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if avg < 12 || avg > 20 {
		t.Errorf("avalanche average %.2f output bit flips per input bit flip, want ~16", avg)
	}
}

func TestHalfSipHashRoundsParameterization(t *testing.T) {
	msg := []byte("same message")
	const key = 42
	h24 := HalfSipHash{CRounds: 2, DRounds: 4}
	h13 := HalfSipHash{CRounds: 1, DRounds: 3}
	if h24.Sum32(key, msg) == h13.Sum32(key, msg) {
		t.Error("different round counts produced identical digests")
	}
}

func BenchmarkHalfSipHash24(b *testing.B) {
	h := NewHalfSipHash24()
	msg := make([]byte, 40) // typical P4Auth header+payload size
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Sum32(0x0123456789abcdef, msg)
	}
}
