package crypto

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
)

// Digester computes the keyed 32-bit message digest P4Auth tags every
// protected message with (Eqn. 4). Implementations must be deterministic
// and usable concurrently.
type Digester interface {
	PRF32
	// Name identifies the algorithm in reports and p4info.
	Name() string
}

// Verify recomputes the digest of data under key and compares it with got
// in constant time.
func Verify(d PRF32, key uint64, data []byte, got uint32) bool {
	var a, b [4]byte
	binary.BigEndian.PutUint32(a[:], d.Sum32(key, data))
	binary.BigEndian.PutUint32(b[:], got)
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// HalfSipHashDigester is the BMv2-target digest algorithm (compute_digest
// extern, §VII).
type HalfSipHashDigester struct{ HalfSipHash }

// NewHalfSipHashDigester returns the HalfSipHash-2-4 digester.
func NewHalfSipHashDigester() HalfSipHashDigester {
	return HalfSipHashDigester{NewHalfSipHash24()}
}

// Name implements Digester.
func (HalfSipHashDigester) Name() string { return "halfsiphash-2-4" }

// CRC32Digester is the Tofino-target digest algorithm (§VII): the hash
// distribution units natively compute CRC32.
type CRC32Digester struct{ KeyedCRC32 }

// NewCRC32Digester returns the keyed-CRC32 digester.
func NewCRC32Digester() CRC32Digester {
	return CRC32Digester{NewKeyedCRC32()}
}

// Name implements Digester.
func (CRC32Digester) Name() string { return "keyed-crc32" }

// SHA256Digester is a control-plane-grade comparison point used by the
// digest ablation: SHA-256 truncated to 32 bits. It is NOT implementable in
// a PISA pipeline (per-packet message schedule needs loops and 32 rounds of
// adds over 64 words); it exists to quantify what the paper gives up.
type SHA256Digester struct{}

// Name implements Digester.
func (SHA256Digester) Name() string { return "sha256-trunc32" }

// Sum32 computes the first 4 bytes of SHA-256(key_le || data).
func (SHA256Digester) Sum32(key uint64, data []byte) uint32 {
	h := sha256.New()
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	h.Write(kb[:])
	h.Write(data)
	return binary.BigEndian.Uint32(h.Sum(nil)[:4])
}

var (
	_ Digester = HalfSipHashDigester{}
	_ Digester = CRC32Digester{}
	_ Digester = SHA256Digester{}
)
