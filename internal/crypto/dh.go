package crypto

// Modified Diffie-Hellman exchange (paper Fig. 10, from DH-AES-P4 [25] and
// Jeon & Gil [34]). Exponentiation and modular reduction are replaced with
// AND and XOR so the exchange runs in a single PISA pipeline pass:
//
//	PK  = DH'(P, G, R)  = (G AND R) XOR (P AND R)
//	K   = DH''(P, R, PK) = (PK AND R) XOR P
//
// Both sides derive the same pre-master secret because AND distributes over
// XOR: PK = (G XOR P) AND R, so
//
//	K_A = ((G XOR P) AND R2 AND R1) XOR P = K_B.
//
// KNOWN WEAKNESS (reproduced as specified): a passive observer of both
// public keys can compute (PK1 AND PK2) XOR P = K_pms directly, because
// PK1 AND PK2 = (G XOR P) AND R1 AND R2. The paper's confidentiality
// argument therefore rests on the KDF's secret personalization (§VIII
// "custom logic in the binary, kept secret") and on periodic key rollover,
// not on the hardness of this exchange. See TestModDHPassiveRecovery for
// the demonstration, and KDF.Personalization for the compensating control.

// DHParams holds the public parameters of the modified Diffie-Hellman
// exchange: a prime P and a generator G. With AND/XOR arithmetic neither
// needs number-theoretic structure, but we keep the paper's nomenclature.
type DHParams struct {
	P uint64 // "prime" public parameter
	G uint64 // "generator" public parameter
}

// DefaultDHParams are the fixed parameters compiled into every P4Auth
// binary. Any values with high Hamming weight in G XOR P work; these keep
// all 64 positions usable ((G XOR P) has all bits set, so no key bit is
// structurally forced to zero).
func DefaultDHParams() DHParams {
	return DHParams{
		P: 0x9e3779b97f4a7c15, // 2^64/phi, an arbitrary odd public constant
		G: ^uint64(0x9e3779b97f4a7c15),
	}
}

// PublicKey computes DH'(P, G, R) for the private random secret r.
func (p DHParams) PublicKey(r uint64) uint64 {
	return (p.G & r) ^ (p.P & r)
}

// SharedSecret computes DH”(P, R, PK): the pre-master secret from our
// private secret r and the peer's public key pk.
func (p DHParams) SharedSecret(r, pk uint64) uint64 {
	return (pk & r) ^ p.P
}
