package crypto

import (
	"hash/crc32"
)

// KeyedCRC32 is the keyed pseudo-random function used on the Tofino target,
// where the pipeline's hash distribution units natively compute CRC32. The
// key is folded into the stream as an envelope (key || data || key), the
// standard way to key an unkeyed checksum on hardware that cannot change
// the polynomial per packet.
//
// CRC32 is linear and therefore not a cryptographic MAC; the paper accepts
// this trade-off on Tofino (§VII) and strengthens the derived key material
// through the KDF. We reproduce the same choice and document it.
type KeyedCRC32 struct {
	table *crc32.Table
}

// NewKeyedCRC32 returns a keyed CRC32 PRF over the IEEE polynomial, the
// polynomial Tofino's hash units expose by default. The lookup table is
// the process-wide singleton (see tables.go).
func NewKeyedCRC32() KeyedCRC32 {
	return KeyedCRC32{table: IEEETable()}
}

// NewKeyedCRC32Castagnoli returns the PRF over the Castagnoli polynomial,
// the common alternate polynomial on Tofino hash units.
func NewKeyedCRC32Castagnoli() KeyedCRC32 {
	return KeyedCRC32{table: CastagnoliTable()}
}

// Sum32 computes CRC32(key_le || data || key_le) under the configured
// polynomial. The key envelope is folded in with a direct table loop
// rather than crc32.Update: Update dispatches through an internal
// function pointer, which forces a key buffer passed to it onto the heap
// — four such allocations per authenticated exchange.
func (k KeyedCRC32) Sum32(key uint64, data []byte) uint32 {
	c := k.updateKey(0, key)
	c = crc32.Update(c, k.table, data)
	return k.updateKey(c, key)
}

// SumBatch32 computes the keyed digest of each input under one key,
// writing out[i] for datas[i]. The leading key-envelope pass (a pure
// function of the key) is computed once and reused for the whole batch;
// out must have len(datas) entries.
func (k KeyedCRC32) SumBatch32(key uint64, datas [][]byte, out []uint32) {
	pre := k.updateKey(0, key)
	for i, d := range datas {
		out[i] = k.updateKey(crc32.Update(pre, k.table, d), key)
	}
}

// updateKey advances crc over the key's 8 little-endian bytes, matching
// crc32.Update's result byte for byte.
func (k KeyedCRC32) updateKey(crc uint32, key uint64) uint32 {
	tab := k.table
	crc = ^crc
	for i := 0; i < 8; i++ {
		crc = tab[byte(crc)^byte(key)] ^ (crc >> 8)
		key >>= 8
	}
	return ^crc
}
