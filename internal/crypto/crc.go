package crypto

import (
	"encoding/binary"
	"hash/crc32"
)

// KeyedCRC32 is the keyed pseudo-random function used on the Tofino target,
// where the pipeline's hash distribution units natively compute CRC32. The
// key is folded into the stream as an envelope (key || data || key), the
// standard way to key an unkeyed checksum on hardware that cannot change
// the polynomial per packet.
//
// CRC32 is linear and therefore not a cryptographic MAC; the paper accepts
// this trade-off on Tofino (§VII) and strengthens the derived key material
// through the KDF. We reproduce the same choice and document it.
type KeyedCRC32 struct {
	table *crc32.Table
}

// NewKeyedCRC32 returns a keyed CRC32 PRF over the IEEE polynomial, the
// polynomial Tofino's hash units expose by default.
func NewKeyedCRC32() KeyedCRC32 {
	return KeyedCRC32{table: crc32.MakeTable(crc32.IEEE)}
}

// NewKeyedCRC32Castagnoli returns the PRF over the Castagnoli polynomial,
// the common alternate polynomial on Tofino hash units.
func NewKeyedCRC32Castagnoli() KeyedCRC32 {
	return KeyedCRC32{table: crc32.MakeTable(crc32.Castagnoli)}
}

// Sum32 computes CRC32(key_le || data || key_le) under the configured
// polynomial.
func (k KeyedCRC32) Sum32(key uint64, data []byte) uint32 {
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	c := crc32.Update(0, k.table, kb[:])
	c = crc32.Update(c, k.table, data)
	return crc32.Update(c, k.table, kb[:])
}
