package controller

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"p4auth/internal/core"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
	"p4auth/internal/switchos"
)

// Crash safety: durable snapshots, a register write-ahead journal, and
// the warm-restart recovery protocol.
//
// With EnableCrashSafety, the controller persists per-switch state into a
// statestore.Store:
//
//   ctl/<switch>           — key snapshot (KeyStore image + next seqNum),
//                            rewritten after every successful KMP flow
//   wal/<switch>/<id hex>  — one journal entry per in-flight register
//                            write, recorded before the wire send
//
// After a crash (modeled by Kill), a fresh controller process attaches
// the same store and runs RecoverAll: restore each switch's snapshot,
// resume sequence numbering at the snapshot's high-water mark, prove
// liveness with an authenticated probe (healing restored replay floors by
// skipping the counter on verified replay alerts), repair ±1 key-version
// drift, settle surviving journal intents by authenticated read-back, and
// only when none of that works fall back to Reinitialize — the EAK
// re-seed path, which requires out-of-band access to the switch.

// errNoStore is returned by recovery APIs before EnableCrashSafety.
var errNoStore = errors.New("controller: crash safety not enabled (no state store)")

// livenessRounds bounds the replay-floor healing loop: each failed round
// skips the sequence counter one FloorLease forward, and under the
// snapshot-once-per-FloorLease persistence contract the floors of both
// ends can be at most two leases apart.
const livenessRounds = 8

func ctlKey(sw string) string { return "ctl/" + sw }

func walKey(sw string, id uint64) string {
	return fmt.Sprintf("wal/%s/%016x", sw, id)
}

// EnableCrashSafety attaches a durable store. Journal numbering continues
// above any IDs already present, so a recovered controller never reuses a
// crashed predecessor's entry keys.
func (c *Controller) EnableCrashSafety(st statestore.Store) error {
	if st == nil {
		return errNoStore
	}
	keys, err := st.Keys("wal/")
	if err != nil {
		return err
	}
	var maxID uint64
	for _, k := range keys {
		if i := strings.LastIndexByte(k, '/'); i >= 0 {
			if id, perr := strconv.ParseUint(k[i+1:], 16, 64); perr == nil && id > maxID {
				maxID = id
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store = st
	c.walID = maxID
	return nil
}

func (c *Controller) stateStore() statestore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// Kill marks the controller process dead: every subsequent exchange fails
// with ErrKilled and nothing further is persisted (a crashed process
// cannot write its disk). The chaos harness flips this mid-operation and
// then builds a fresh controller over the same store, exactly as a
// process restart would.
func (c *Controller) Kill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
}

// Killed reports whether Kill has been called.
func (c *Controller) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// countSeedUse records one K_seed KDF derivation (an EAK exchange). The
// warm-restart acceptance bar is zero new uses: recovery from a valid
// snapshot must never fall back to the pre-shared seed.
func (c *Controller) countSeedUse(sw string) {
	c.mu.Lock()
	c.seedUses[sw]++
	c.mu.Unlock()
	c.obsv().seedUses.Inc()
}

// SeedUses reports how many times K_seed entered a key derivation for the
// switch over this controller's lifetime.
func (c *Controller) SeedUses(sw string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seedUses[sw]
}

// SaveSnapshot persists the controller's key state toward one switch:
// the KeyStore image (including any prepared-but-uncommitted key) and the
// next unissued sequence number. Requires EnableCrashSafety.
func (c *Controller) SaveSnapshot(sw string) error {
	h, err := c.handle(sw)
	if err != nil {
		return err
	}
	st := c.stateStore()
	if st == nil {
		return errNoStore
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return ErrKilled
	}
	c.persistN++
	n := c.persistN
	c.mu.Unlock()
	snap := h.keys.Snapshot()
	snap.SeqNext = h.seq.Peek()
	snap.TakenNs = n // monotonic persist counter; informational
	return st.Save(ctlKey(sw), snap.Encode())
}

// autoPersist is the post-KMP hook: a no-op without a store (or after
// Kill — a dead process persists nothing), a snapshot rewrite otherwise.
// Key material MUST be persisted eagerly: unlike sequence numbers, which
// the FloorLease recovers, a lost key rollover strands the controller
// behind the switch.
func (c *Controller) autoPersist(sw string) error {
	if c.stateStore() == nil || c.Killed() {
		return nil
	}
	return c.SaveSnapshot(sw)
}

// walBegin records a write intent before the wire send. Returns 0 (and
// writes nothing) when journaling is off or the process is dead.
func (c *Controller) walBegin(sw, register string, index uint32, value uint64) (uint64, error) {
	c.mu.Lock()
	st, dead := c.store, c.dead
	if st == nil || dead {
		c.mu.Unlock()
		return 0, nil
	}
	c.walID++
	id := c.walID
	c.mu.Unlock()
	e := &core.JournalEntry{ID: id, Switch: sw, Register: register, Index: index, Value: value, State: core.WriteIntent}
	return id, st.Save(walKey(sw, id), e.Encode())
}

// walSettle resolves an intent: applied entries are deleted, definite
// failures are rewritten as failed for the operator. A dead process
// settles nothing — that is the whole point of the journal: only a crash
// leaves an intent behind, so recovery knows exactly which writes are in
// doubt.
func (c *Controller) walSettle(sw string, id uint64, applied bool, register string, index uint32, value uint64) {
	if id == 0 {
		return
	}
	c.mu.Lock()
	st, dead := c.store, c.dead
	c.mu.Unlock()
	if st == nil || dead {
		return
	}
	ko := c.obsv()
	if applied {
		_ = st.Delete(walKey(sw, id))
		ko.walApplied.Inc()
		ko.audit(obs.EvWALSettle, sw, CauseWALApplied, 0, id)
		return
	}
	e := &core.JournalEntry{ID: id, Switch: sw, Register: register, Index: index, Value: value, State: core.WriteFailed}
	_ = st.Save(walKey(sw, id), e.Encode())
	ko.walFailed.Inc()
	ko.audit(obs.EvWALSettle, sw, CauseWALFailed, 0, id)
}

// walBeginBatch records one group-commit intent record covering a whole
// pipelined window: a single durable Save before the first wire send.
// Returns 0 (and writes nothing) when journaling is off or the process
// is dead.
func (c *Controller) walBeginBatch(sw string, writes []RegWrite) (uint64, error) {
	c.mu.Lock()
	st, dead := c.store, c.dead
	if st == nil || dead {
		c.mu.Unlock()
		return 0, nil
	}
	c.walID++
	id := c.walID
	c.mu.Unlock()
	e := &core.JournalBatch{ID: id, Switch: sw, Writes: make([]core.BatchWrite, len(writes))}
	for i, w := range writes {
		e.Writes[i] = core.BatchWrite{Register: w.Register, Index: w.Index, Value: w.Value, State: core.WriteIntent}
	}
	return id, st.Save(walKey(sw, id), e.Encode())
}

// walSettleBatch resolves a batch record after the windowed exchange:
// fully-applied batches are deleted; otherwise the record is rewritten
// with each entry's final state — no WriteIntent ever survives a live
// settle, so recovery's read-back only runs for genuine crashes.
func (c *Controller) walSettleBatch(sw string, id uint64, entries []batchEntry) {
	if id == 0 {
		return
	}
	c.mu.Lock()
	st, dead := c.store, c.dead
	c.mu.Unlock()
	if st == nil || dead {
		return
	}
	allOK := true
	for i := range entries {
		if entries[i].err != nil {
			allOK = false
			break
		}
	}
	ko := c.obsv()
	if allOK {
		_ = st.Delete(walKey(sw, id))
		ko.walApplied.Add(uint64(len(entries)))
		ko.audit(obs.EvWALSettle, sw, CauseWALApplied, 0, id)
		return
	}
	e := &core.JournalBatch{ID: id, Switch: sw, Writes: make([]core.BatchWrite, len(entries))}
	for i := range entries {
		state := core.WriteApplied
		if entries[i].err != nil {
			state = core.WriteFailed
			ko.walFailed.Inc()
		} else {
			ko.walApplied.Inc()
		}
		e.Writes[i] = core.BatchWrite{
			Register: entries[i].register, Index: entries[i].index,
			Value: entries[i].value, State: state,
		}
	}
	_ = st.Save(walKey(sw, id), e.Encode())
	ko.audit(obs.EvWALSettle, sw, CauseWALFailed, 0, id)
}

// JournalEntries returns the decoded journal entries persisted for a
// switch, in ID order, with batch records expanded into their per-write
// entries. Undecodable (torn) records are skipped.
func (c *Controller) JournalEntries(sw string) ([]core.JournalEntry, error) {
	st := c.stateStore()
	if st == nil {
		return nil, errNoStore
	}
	keys, err := st.Keys("wal/" + sw + "/")
	if err != nil {
		return nil, err
	}
	var out []core.JournalEntry
	for _, k := range keys {
		b, lerr := st.Load(k)
		if lerr != nil {
			continue
		}
		if e, derr := core.DecodeJournalEntry(b); derr == nil {
			out = append(out, *e)
		} else if be, berr := core.DecodeJournalBatch(b); berr == nil {
			out = append(out, be.Entries()...)
		}
	}
	return out, nil
}

// Liveness proves the switch is up and the shared local key works: an
// authenticated read of pa_ver[0]. Verified replay alerts are healed in
// place — each one skips the sequence counter a FloorLease forward (the
// switch answered under the shared key, so it is alive and the key is
// good; only the counter lags its restored floor) — and the probe is
// retried with a fresh sequence number. Any other failure is returned.
func (c *Controller) Liveness(sw string) error {
	h, err := c.handle(sw)
	if err != nil {
		return err
	}
	return c.liveness(h)
}

func (c *Controller) liveness(h *swHandle) error {
	var err error
	for round := 0; round < livenessRounds; round++ {
		_, _, err = c.regRead(h, core.RegVer, uint32(core.KeyIndexLocal))
		if err == nil {
			return nil
		}
		var ae *AlertError
		if errors.As(err, &ae) && ae.Reason == core.AlertReplay {
			continue // transact already skipped the counter; probe again
		}
		return err
	}
	return fmt.Errorf("controller: %s: liveness probe still replay-rejected after %d floor skips: %w",
		h.name, livenessRounds, err)
}

// revive brings a snapshot-restored handle back into authenticated sync
// with its switch:
//
//   - liveness OK   → repair the switch-one-ahead case (it installed a
//     key whose confirmation the crash ate) via resyncLocal's
//     authenticated version rollback;
//   - ErrTampered   → key disagreement. Either the switch alerted
//     BadDigest on our probe, or it answered under a key we cannot verify
//     — both are the signature of the switch being one rollover BEHIND us
//     (restored from a snapshot older than the last rollover). Drop our
//     newest key with KeyStore.Rollback and probe again; rolling back to
//     a previously-shared key is safe against forgery because the retried
//     probe still demands a response authenticated under that key.
//   - anything else → unrecoverable here; the caller falls back to
//     Reinitialize.
func (c *Controller) revive(h *swHandle) error {
	for tries := 0; ; tries++ {
		err := c.liveness(h)
		if err == nil {
			var res KMPResult
			return c.resyncLocal(h, &res)
		}
		if tries == 0 && errors.Is(err, ErrTampered) {
			if rerr := h.keys.Rollback(core.KeyIndexLocal); rerr != nil {
				return err
			}
			continue
		}
		return err
	}
}

// ReviveSwitch re-establishes the authenticated channel to a switch that
// rebooted while the controller stayed up. Whether the reboot was warm or
// cold is discovered, not assumed: the liveness probe heals lease-bumped
// replay floors, a verified digest alert triggers the one-rollover-behind
// repair (the switch was restored from a snapshot older than the last
// rollover, so the controller drops its newest key), and a switch that
// came back with no usable key state falls through to Reinitialize. The
// return value reports which path succeeded (true = warm, no K_seed use).
func (c *Controller) ReviveSwitch(sw string) (warm bool, err error) {
	h, err := c.handle(sw)
	if err != nil {
		return false, err
	}
	if c.Killed() {
		return false, ErrKilled
	}
	_ = c.ClearHealth(sw)
	if c.revive(h) == nil {
		if err := c.healPortLinks(sw); err != nil {
			return true, err
		}
		return true, c.autoPersist(sw)
	}
	if _, err = c.Reinitialize(sw); err != nil {
		return false, err
	}
	return false, c.healPortLinks(sw)
}

// healPortLinks restores DP-DP sequencing on every link touching a
// revived switch. A reboot breaks the link's sequence pairing in both
// directions: a warm restore lease-bumps the switch's replay floors above
// its peers' outbound counters, and a cold boot zeroes the switch's own
// outbound counters below the floors its peers kept. Either way the
// symptom is the same — every switch-to-switch port-key leg is silently
// replay-rejected forever, with no controller transaction involved to
// trigger the usual alert-driven skip-ahead. The repair is explicit:
// for each direction of each adjacent link, read the receiver's kx-stream
// replay floor and, if the sender's outbound counter is below it, write
// the counter up to the floor with an authenticated register write (the
// next DP-DP message then carries floor+1 and is accepted).
func (c *Controller) healPortLinks(sw string) error {
	var errs []error
	for _, lk := range c.links() {
		if lk[0].sw != sw && lk[1].sw != sw {
			continue
		}
		for _, dir := range [2][2]portKey{{lk[0], lk[1]}, {lk[1], lk[0]}} {
			if err := c.healPortDirection(dir[0], dir[1]); err != nil {
				errs = append(errs, fmt.Errorf("controller: heal %s:%d -> %s:%d: %w",
					dir[0].sw, dir[0].port, dir[1].sw, dir[1].port, err))
			}
		}
	}
	return errors.Join(errs...)
}

// healPortDirection aligns one direction of a link: sender src's
// pa_seq_out[port] must clear receiver dst's pa_seq[2*port+1] (the kx
// stream of the receiving port's slot).
func (c *Controller) healPortDirection(src, dst portKey) error {
	hs, err := c.handle(src.sw)
	if err != nil {
		return err
	}
	hd, err := c.handle(dst.sw)
	if err != nil {
		return err
	}
	floor, _, err := c.regRead(hd, core.RegSeq, uint32(2*dst.port+1))
	if err != nil {
		return err
	}
	out, _, err := c.regRead(hs, core.RegSeqOut, uint32(src.port))
	if err != nil {
		return err
	}
	if out >= floor {
		return nil
	}
	_, err = c.regWrite(hs, core.RegSeqOut, uint32(src.port), floor)
	return err
}

// replayJournal settles every surviving intent for a switch: read the
// register back under the (recovered) authenticated channel — if the
// value is there the write landed before the crash and the entry is
// retired; otherwise the write is re-driven once, and marked failed if
// even that does not land. Net effect: every journaled write is applied
// exactly once or reported failed, never silently lost and never doubled.
func (c *Controller) replayJournal(h *swHandle) (applied, redriven, failed int, err error) {
	st := c.stateStore()
	if st == nil {
		return 0, 0, 0, nil
	}
	keys, kerr := st.Keys("wal/" + h.name + "/")
	if kerr != nil {
		return 0, 0, 0, kerr
	}
	var errs []error
	for _, k := range keys {
		b, lerr := st.Load(k)
		if lerr != nil {
			continue
		}
		e, derr := core.DecodeJournalEntry(b)
		if derr != nil {
			if be, berr := core.DecodeJournalBatch(b); berr == nil {
				a, r, f, berrs := c.replayJournalBatch(h, st, k, be)
				applied += a
				redriven += r
				failed += f
				if berrs != nil {
					errs = append(errs, berrs)
				}
				continue
			}
			// Torn record: its write cannot be reconstructed. Leave it for
			// the operator and report.
			failed++
			errs = append(errs, fmt.Errorf("%s: %w", k, derr))
			continue
		}
		switch e.State {
		case core.WriteApplied:
			_ = st.Delete(k) // stray: normally deleted at settle time
		case core.WriteFailed:
			failed++ // kept for the operator
		case core.WriteIntent:
			ko := c.obsv()
			got, _, rerr := c.regRead(h, e.Register, e.Index)
			if rerr == nil && got == e.Value {
				applied++
				ko.walApplied.Inc()
				ko.audit(obs.EvWALSettle, h.name, CauseWALRecovered, 0, e.ID)
				_ = st.Delete(k)
				continue
			}
			if _, werr := c.regWrite(h, e.Register, e.Index, e.Value); werr == nil {
				redriven++
				ko.walRedriven.Inc()
				ko.audit(obs.EvWALSettle, h.name, CauseWALRedriven, 0, e.ID)
				_ = st.Delete(k)
				continue
			} else {
				errs = append(errs, fmt.Errorf("%s: re-drive: %w", k, werr))
			}
			failed++
			ko.walFailed.Inc()
			ko.audit(obs.EvWALSettle, h.name, CauseWALFailed, 0, e.ID)
			e.State = core.WriteFailed
			_ = st.Save(k, e.Encode())
		}
	}
	return applied, redriven, failed, errors.Join(errs...)
}

// replayJournalBatch settles one surviving group-commit record with the
// same per-entry discipline as single intents: each WriteIntent is
// disambiguated by authenticated read-back, re-driven once if absent,
// and marked failed otherwise. A fully-settled batch is deleted; a batch
// with failures is rewritten with per-entry final states.
func (c *Controller) replayJournalBatch(h *swHandle, st statestore.Store, k string, e *core.JournalBatch) (applied, redriven, failed int, err error) {
	var errs []error
	dirty := false
	for i := range e.Writes {
		w := &e.Writes[i]
		switch w.State {
		case core.WriteApplied:
			// Settled before the crash (a live settle would have rewritten
			// or deleted the record); nothing to do.
		case core.WriteFailed:
			failed++
		case core.WriteIntent:
			ko := c.obsv()
			got, _, rerr := c.regRead(h, w.Register, w.Index)
			if rerr == nil && got == w.Value {
				applied++
				ko.walApplied.Inc()
				ko.audit(obs.EvWALSettle, h.name, CauseWALRecovered, 0, e.ID)
				w.State = core.WriteApplied
				dirty = true
				continue
			}
			if _, werr := c.regWrite(h, w.Register, w.Index, w.Value); werr == nil {
				redriven++
				ko.walRedriven.Inc()
				ko.audit(obs.EvWALSettle, h.name, CauseWALRedriven, 0, e.ID)
				w.State = core.WriteApplied
				dirty = true
				continue
			} else {
				errs = append(errs, fmt.Errorf("%s[%d]: re-drive: %w", k, i, werr))
			}
			failed++
			ko.walFailed.Inc()
			ko.audit(obs.EvWALSettle, h.name, CauseWALFailed, 0, e.ID)
			w.State = core.WriteFailed
			dirty = true
		}
	}
	allSettled := true
	for i := range e.Writes {
		if e.Writes[i].State != core.WriteApplied {
			allSettled = false
			break
		}
	}
	if allSettled {
		_ = st.Delete(k)
	} else if dirty {
		_ = st.Save(k, e.Encode())
	}
	return applied, redriven, failed, errors.Join(errs...)
}

// WarmRestart recovers the controller's relationship with one switch
// after a restart: restore the persisted snapshot, resume sequence
// numbering past its high-water mark, revive the authenticated channel,
// settle the journal, and re-persist. It reports whether the restart was
// warm (no K_seed use); a missing, corrupt, or unusably stale snapshot
// degrades to Reinitialize.
func (c *Controller) WarmRestart(sw string) (warm bool, err error) {
	h, err := c.handle(sw)
	if err != nil {
		return false, err
	}
	st := c.stateStore()
	if st == nil {
		return false, errNoStore
	}
	if c.Killed() {
		return false, ErrKilled
	}
	_ = c.ClearHealth(sw) // a fresh process starts with a closed breaker
	if b, lerr := st.Load(ctlKey(sw)); lerr == nil {
		if snap, derr := core.DecodeSnapshot(b); derr == nil {
			if rerr := h.keys.Restore(snap); rerr == nil {
				h.seq.Resume(snap.SeqNext)
				warm = true
			}
		}
	}
	if warm && c.revive(h) != nil {
		warm = false
	}
	if !warm {
		if _, rerr := c.Reinitialize(sw); rerr != nil {
			return false, fmt.Errorf("controller: %s: cold recovery failed: %w", sw, rerr)
		}
	}
	if _, _, _, jerr := c.replayJournal(h); jerr != nil {
		return warm, jerr
	}
	return warm, c.SaveSnapshot(sw)
}

// RecoverAll runs WarmRestart for every registered switch in name order
// (determinism is part of the chaos-replay contract), reporting per-switch
// warmth. Per-switch failures are joined, not short-circuited: one
// unreachable switch must not block recovering the rest of the fabric.
func (c *Controller) RecoverAll() (map[string]bool, error) {
	out := make(map[string]bool)
	var errs []error
	for _, name := range c.switchNames() {
		warm, err := c.WarmRestart(name)
		out[name] = warm
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", name, err))
		}
	}
	return out, errors.Join(errs...)
}

// Reinitialize is the fallback when no usable snapshot exists: an
// out-of-band factory reset of the switch (wiping ALL its keys — port
// keys must be re-established afterwards), a matching reset of the
// controller's per-switch state, and a fresh EAK+ADHKD under K_seed.
func (c *Controller) Reinitialize(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	if c.Killed() {
		return KMPResult{}, ErrKilled
	}
	if h.host.Down() {
		return KMPResult{}, fmt.Errorf("%w: %s: cannot re-seed a down switch", switchos.ErrDown, sw)
	}
	ko := c.obsv()
	ko.eakFallback.Inc()
	ko.audit(obs.EvEAKFallback, sw, CauseFactoryReset, 0, 0)
	if err := core.FactoryReset(h.host.SW, h.cfg); err != nil {
		return KMPResult{}, err
	}
	h.host.ClearCache()
	h.keys.ResetToSeed(h.cfg.Seed)
	h.seq.Reset()
	_ = c.ClearHealth(sw)
	return c.LocalKeyInit(sw)
}
