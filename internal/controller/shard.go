package controller

// Sharded fleet drive: a ShardSet partitions a registered fleet into
// per-switch shard workers, each owning a submission queue drained
// through the windowed transport. Different switches already proceed
// concurrently at the exchange layer (per-handle opMu; c.mu is touched
// only for stats), so a shard per switch turns the controller from "one
// goroutine serially owning every switch" into "one pipelined lane per
// switch" without new locking in the hot path.
//
// The set survives its controller: Rebind atomically points every shard
// at a successor (the HA promotion handoff), keeping queues and totals —
// in-flight submissions drain through the new active, and anything the
// deposed active failed to land is visible in the per-shard totals.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ShardTotals aggregates one shard's lifetime outcomes.
type ShardTotals struct {
	// Submitted counts writes accepted into the queue.
	Submitted int
	// Landed counts writes confirmed applied; Failed the writes that
	// exhausted the transport (fenced, killed, retry budget, …).
	Landed, Failed int
	// Rounds is the number of windowed wire rounds across all flushes.
	Rounds int
	// Lat is the summed modeled wall time of this shard's flushes. The
	// fleet-level wall time is the max over shards (they run in
	// parallel), not the sum.
	Lat time.Duration
}

type shard struct {
	name string
	mu   sync.Mutex
	// queue holds submitted-but-unflushed writes; flushMu serializes
	// flushes so two workers cannot interleave one shard's batches.
	queue   []RegWrite
	flushMu sync.Mutex
	totals  ShardTotals
}

// ShardSet drives a fleet of switches through per-switch shard workers.
type ShardSet struct {
	mu     sync.Mutex
	ctl    *Controller
	window int
	shards map[string]*shard
	order  []string
}

// NewShardSet builds a shard per named switch, all driven through the
// windowed transport with the given window. Every switch must already be
// registered with the controller.
func (c *Controller) NewShardSet(switches []string, window int) (*ShardSet, error) {
	if window < 1 {
		return nil, fmt.Errorf("controller: shard window must be >= 1")
	}
	ss := &ShardSet{
		ctl:    c,
		window: window,
		shards: make(map[string]*shard, len(switches)),
	}
	for _, sw := range switches {
		if _, err := c.handle(sw); err != nil {
			return nil, err
		}
		if _, dup := ss.shards[sw]; dup {
			return nil, fmt.Errorf("controller: duplicate shard %q", sw)
		}
		ss.shards[sw] = &shard{name: sw}
		ss.order = append(ss.order, sw)
	}
	sort.Strings(ss.order)
	return ss, nil
}

// Shards returns the shard names, sorted.
func (ss *ShardSet) Shards() []string {
	return append([]string(nil), ss.order...)
}

func (ss *ShardSet) shardOf(sw string) (*shard, error) {
	sh, ok := ss.shards[sw]
	if !ok {
		return nil, fmt.Errorf("controller: no shard for switch %q", sw)
	}
	return sh, nil
}

// controller returns the current drive target and window.
func (ss *ShardSet) controller() (*Controller, int) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.ctl, ss.window
}

// Rebind atomically points every shard at a successor controller — the
// HA promotion handoff. Queued writes and totals survive; flushes begun
// before the swap finish against the old controller (and fail under its
// fence if it was deposed).
func (ss *ShardSet) Rebind(c *Controller) {
	ss.mu.Lock()
	ss.ctl = c
	ss.mu.Unlock()
}

// Submit queues one write on a shard. Safe for concurrent use.
func (ss *ShardSet) Submit(sw string, w RegWrite) error {
	sh, err := ss.shardOf(sw)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.queue = append(sh.queue, w)
	sh.totals.Submitted++
	sh.mu.Unlock()
	return nil
}

// Pending reports the queued-but-unflushed writes on a shard.
func (ss *ShardSet) Pending(sw string) int {
	sh, err := ss.shardOf(sw)
	if err != nil {
		return 0
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.queue)
}

// Totals returns a shard's lifetime totals.
func (ss *ShardSet) Totals(sw string) (ShardTotals, error) {
	sh, err := ss.shardOf(sw)
	if err != nil {
		return ShardTotals{}, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.totals, nil
}

// FleetTotals sums the per-shard totals and returns the fleet wall time:
// the max shard Lat, since shards run concurrently.
func (ss *ShardSet) FleetTotals() (ShardTotals, time.Duration) {
	var sum ShardTotals
	var wall time.Duration
	for _, sw := range ss.order {
		sh := ss.shards[sw]
		sh.mu.Lock()
		t := sh.totals
		sh.mu.Unlock()
		sum.Submitted += t.Submitted
		sum.Landed += t.Landed
		sum.Failed += t.Failed
		sum.Rounds += t.Rounds
		sum.Lat += t.Lat
		if t.Lat > wall {
			wall = t.Lat
		}
	}
	return sum, wall
}

// FlushShard drains one shard's queue through the windowed transport.
// Writes that fail stay failed (counted in the totals and audited by the
// transport as dropped) — the caller decides whether to resubmit, which
// is what the failover handoff does after Rebind.
func (ss *ShardSet) FlushShard(sw string) (BatchResult, error) {
	sh, err := ss.shardOf(sw)
	if err != nil {
		return BatchResult{}, err
	}
	sh.flushMu.Lock()
	defer sh.flushMu.Unlock()
	sh.mu.Lock()
	batch := sh.queue
	sh.queue = nil
	sh.mu.Unlock()
	if len(batch) == 0 {
		return BatchResult{}, nil
	}
	c, window := ss.controller()
	br, err := c.WriteRegisterBatch(sh.name, window, batch)
	failed := br.Failed
	if err != nil && len(br.Errs) == 0 {
		// The batch died before the transport (journal intent refused by a
		// fence, dead controller): nothing landed.
		failed = len(batch)
	}
	sh.mu.Lock()
	sh.totals.Landed += len(batch) - failed
	sh.totals.Failed += failed
	sh.totals.Rounds += br.Rounds
	sh.totals.Lat += br.Lat
	sh.mu.Unlock()
	return br, err
}

// DrainSequential flushes every shard in sorted name order — the
// deterministic drive the chaos harness replays bit-for-bit. The error
// joins per-shard failures.
func (ss *ShardSet) DrainSequential() error {
	var errs []error
	for _, sw := range ss.order {
		if _, err := ss.FlushShard(sw); err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", sw, err))
		}
	}
	return errors.Join(errs...)
}

// DrainParallel flushes every shard concurrently, one worker per shard —
// the fleet-throughput drive. The error joins per-shard failures.
func (ss *ShardSet) DrainParallel() error {
	errs := make([]error, len(ss.order))
	var wg sync.WaitGroup
	for i, sw := range ss.order {
		wg.Add(1)
		go func(i int, sw string) {
			defer wg.Done()
			if _, err := ss.FlushShard(sw); err != nil {
				errs[i] = fmt.Errorf("shard %s: %w", sw, err)
			}
		}(i, sw)
	}
	wg.Wait()
	return errors.Join(errs...)
}
