package controller

import (
	"fmt"
	"time"

	"p4auth/internal/core"
)

// ResetAlertWindow zeroes a switch's data-plane alert counter with an
// authenticated write, starting a fresh DoS-threshold window (§VIII: "set
// a threshold on the number of alert messages sent to the controller in a
// specific period").
func (c *Controller) ResetAlertWindow(sw string) (time.Duration, error) {
	return c.WriteRegister(sw, core.RegAlert, 0, 0)
}

// DoSIndicator summarizes the §VIII controller-side DoS signals for one
// switch: outstanding (unanswered) requests and alerts attributed to it.
type DoSIndicator struct {
	Switch      string
	Outstanding int
	Alerts      int
}

// CheckDoS evaluates the outstanding-request threshold for every managed
// switch and returns indicators for those above it. A switch whose
// responses are being dropped or flooded by an adversary accumulates
// unanswered sequence numbers; the paper's prescribed operator action is
// to isolate it.
func (c *Controller) CheckDoS(outstandingThreshold int) []DoSIndicator {
	var out []DoSIndicator
	for name, h := range c.switches {
		n := h.seq.Outstanding()
		if n >= outstandingThreshold {
			alerts := 0
			for _, a := range c.alerts {
				if a.Switch == name {
					alerts++
				}
			}
			out = append(out, DoSIndicator{Switch: name, Outstanding: n, Alerts: alerts})
		}
	}
	return out
}

// Reinitialize recovers a switch whose key state has drifted from the
// controller's (possible after a lost key-exchange response plus a retry —
// see core.FactoryReset): it factory-resets the data plane's P4Auth
// registers through the driver (the operator reloading the switch), resets
// the controller-side key store and sequence tracking, and re-runs local
// key initialization. Port keys must be re-initialized afterwards.
func (c *Controller) Reinitialize(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	if err := core.FactoryReset(h.host.SW, h.cfg); err != nil {
		return KMPResult{}, err
	}
	h.keys = core.NewKeyStore(h.cfg.Ports, h.cfg.Seed)
	h.seq = core.NewSeqTracker()
	return c.LocalKeyInit(sw)
}

// Quarantine removes a switch from management (the operator isolating a
// suspicious switch, §VIII). Subsequent operations on it fail.
func (c *Controller) Quarantine(sw string) error {
	if _, ok := c.switches[sw]; !ok {
		return fmt.Errorf("controller: unknown switch %q", sw)
	}
	delete(c.switches, sw)
	for pk, peer := range c.adj {
		if pk.sw == sw || peer.sw == sw {
			delete(c.adj, pk)
		}
	}
	return nil
}
