package controller

import (
	"fmt"
	"time"

	"p4auth/internal/core"
)

// ResetAlertWindow zeroes a switch's data-plane alert counter with an
// authenticated write, starting a fresh DoS-threshold window (§VIII: "set
// a threshold on the number of alert messages sent to the controller in a
// specific period").
func (c *Controller) ResetAlertWindow(sw string) (time.Duration, error) {
	return c.WriteRegister(sw, core.RegAlert, 0, 0)
}

// DoSIndicator summarizes the §VIII controller-side DoS signals for one
// switch: outstanding (unanswered) requests and alerts attributed to it.
type DoSIndicator struct {
	Switch      string
	Outstanding int
	Alerts      int
}

// CheckDoS evaluates the outstanding-request threshold for every managed
// switch and returns indicators for those above it. A switch whose
// responses are being dropped or flooded by an adversary accumulates
// unanswered sequence numbers; the paper's prescribed operator action is
// to isolate it.
func (c *Controller) CheckDoS(outstandingThreshold int) []DoSIndicator {
	var out []DoSIndicator
	for _, name := range c.switchNames() {
		h, err := c.handle(name)
		if err != nil {
			continue
		}
		n := h.seq.Outstanding()
		if n >= outstandingThreshold {
			alerts := 0
			c.mu.Lock()
			for _, a := range c.alerts {
				if a.Switch == name {
					alerts++
				}
			}
			c.mu.Unlock()
			out = append(out, DoSIndicator{Switch: name, Outstanding: n, Alerts: alerts})
		}
	}
	return out
}

// Reinitialize (the §VIII drift/DoS recovery of last resort) lives in
// persist.go with the rest of the recovery protocol.

// Quarantine removes a switch from management (the operator isolating a
// suspicious switch, §VIII). Subsequent operations on it fail.
func (c *Controller) Quarantine(sw string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.switches[sw]; !ok {
		return fmt.Errorf("controller: unknown switch %q", sw)
	}
	delete(c.switches, sw)
	for pk, peer := range c.adj {
		if pk.sw == sw || peer.sw == sw {
			delete(c.adj, pk)
		}
	}
	return nil
}
