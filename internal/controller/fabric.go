package controller

// Link-repair surface for the fabric supervisor: typed key-version-skew
// detection across a link, and epoch-fenced transactional port-key
// repair. The fence makes repair idempotent under supervision races: a
// repair attempt carries the epoch it was issued under, and an attempt
// whose epoch has been superseded (a newer repair generation started) or
// already committed is refused before any message is sent — a stale
// in-flight init can never downgrade a newer key.

import (
	"errors"
	"fmt"
	"sort"
)

// ErrKeySkew marks a detected key-version skew across a link's two port
// slots (one-sided rollover). Test with errors.Is; unwrap the detail with
// errors.As into *KeySkewError.
var ErrKeySkew = errors.New("controller: port key-version skew across link")

// ErrStaleEpoch is returned when a repair attempt's epoch has been
// superseded or already committed; the attempt sent nothing.
var ErrStaleEpoch = errors.New("controller: repair epoch superseded")

// KeySkewError reports unequal port-slot install counters on a link's two
// ends — the signature of an interrupted or one-sided port-key exchange.
// Callers distinguish "retry" (the shared key still exists; re-run the
// flow) from "resync" (versions diverged; a realigning init is required)
// by the presence of this error in the chain.
type KeySkewError struct {
	A  string
	PA int
	B  string
	PB int
	// VerA and VerB are the install counters read from each end.
	VerA, VerB uint8
}

// Error implements error.
func (e *KeySkewError) Error() string {
	return fmt.Sprintf("controller: key-version skew on %s:%d<->%s:%d (pa_ver %d vs %d)",
		e.A, e.PA, e.B, e.PB, e.VerA, e.VerB)
}

// Unwrap ties the typed detail to the ErrKeySkew sentinel.
func (e *KeySkewError) Unwrap() error { return ErrKeySkew }

// PeerAhead reports whether the peer end (B) ran ahead of A — the
// direction matters for operators: an ahead peer means A missed the final
// install leg and a resync must realign A upward, never roll B back.
func (e *KeySkewError) PeerAhead() bool { return int8(e.VerB-e.VerA) > 0 }

// wrapSkew attaches skew detail to a repair failure so callers see both
// the operational error and the typed cause.
func wrapSkew(err error, skew *KeySkewError) error {
	if err == nil || skew == nil {
		return err
	}
	return errors.Join(err, skew)
}

// LinkEnd names one end of a registered adjacency.
type LinkEnd struct {
	Switch string
	Port   int
}

// Links returns each registered adjacency once, driven from its
// lexicographically first end, in deterministic order — the iteration
// surface for link supervisors and inspection tools.
func (c *Controller) Links() [][2]LinkEnd {
	pairs := c.links()
	out := make([][2]LinkEnd, len(pairs))
	for i, lk := range pairs {
		out[i] = [2]LinkEnd{
			{Switch: lk[0].sw, Port: lk[0].port},
			{Switch: lk[1].sw, Port: lk[1].port},
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0].Switch != out[j][0].Switch {
			return out[i][0].Switch < out[j][0].Switch
		}
		return out[i][0].Port < out[j][0].Port
	})
	return out
}

// PortKeySkew reads both ends' port-slot install counters over the
// authenticated C-DP channel and returns the skew as a typed value (nil
// when the counters agree). The separate error return reports transport
// failures only.
func (c *Controller) PortKeySkew(a string, pa int) (*KeySkewError, error) {
	ha, err := c.handle(a)
	if err != nil {
		return nil, err
	}
	peer, ok := c.peerOf(a, pa)
	if !ok {
		return nil, fmt.Errorf("controller: %s port %d has no registered peer", a, pa)
	}
	hb, err := c.handle(peer.sw)
	if err != nil {
		return nil, err
	}
	var res KMPResult
	verA, err := c.readPortVer(ha, pa, &res)
	if err != nil {
		return nil, err
	}
	verB, err := c.readPortVer(hb, peer.port, &res)
	if err != nil {
		return nil, err
	}
	if verA == verB {
		return nil, nil
	}
	return &KeySkewError{A: a, PA: pa, B: peer.sw, PB: peer.port, VerA: verA, VerB: verB}, nil
}

// repairFence is the per-link epoch state behind RepairPortKey. latest is
// the highest epoch any attempt was admitted under; committed the highest
// that completed. Both only move forward.
type repairFence struct {
	latest    uint64
	committed uint64
}

// linkFenceKey normalizes a link to its lexicographically first end so
// both directions share one fence.
func (c *Controller) linkFenceKey(a string, pa int, b string, pb int) portKey {
	k, o := portKey{a, pa}, portKey{b, pb}
	if o.sw < k.sw || (o.sw == k.sw && o.port < k.port) {
		return o
	}
	return k
}

// NextRepairEpoch issues a fresh repair epoch for the link owning
// (a, pa): strictly greater than every epoch issued or committed before
// it. Each quarantine generation of a supervised link draws one epoch and
// runs its repair attempts under it; issuing a new epoch invalidates all
// in-flight attempts under older ones.
func (c *Controller) NextRepairEpoch(a string, pa int) (uint64, error) {
	peer, ok := c.peerOf(a, pa)
	if !ok {
		return 0, fmt.Errorf("controller: %s port %d has no registered peer", a, pa)
	}
	lk := c.linkFenceKey(a, pa, peer.sw, peer.port)
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.repairs[lk]
	if f == nil {
		f = &repairFence{}
		c.repairs[lk] = f
	}
	f.latest++
	return f.latest, nil
}

// RepairPortKey re-establishes the port key on the link owning (a, pa)
// with a full realigning init (the repair path for one-sided rollover and
// link-flap desync), fenced by epoch: the attempt is refused with
// ErrStaleEpoch — before any message is sent, and again before every
// subsequent protocol leg — if a newer epoch has been admitted or this
// epoch already committed. On success both ends hold a fresh shared port
// key at equal version numbers.
func (c *Controller) RepairPortKey(a string, pa int, epoch uint64) (KMPResult, error) {
	var res KMPResult
	ha, err := c.handle(a)
	if err != nil {
		return res, err
	}
	peer, ok := c.peerOf(a, pa)
	if !ok {
		return res, fmt.Errorf("controller: %s port %d has no registered peer", a, pa)
	}
	hb, err := c.handle(peer.sw)
	if err != nil {
		return res, err
	}
	lk := c.linkFenceKey(a, pa, peer.sw, peer.port)

	// Admit the epoch, or refuse before anything reaches the wire.
	c.mu.Lock()
	f := c.repairs[lk]
	if f == nil {
		f = &repairFence{}
		c.repairs[lk] = f
	}
	if epoch <= f.committed || epoch < f.latest {
		committed, latest := f.committed, f.latest
		c.mu.Unlock()
		return res, fmt.Errorf("%w: epoch %d on %s:%d<->%s:%d (committed %d, latest %d)",
			ErrStaleEpoch, epoch, a, pa, peer.sw, peer.port, committed, latest)
	}
	f.latest = epoch
	c.mu.Unlock()

	// Re-checked before every leg: a newer admission aborts this attempt
	// mid-flight, so its remaining installs never land on top of the
	// newer repair's key state.
	fence := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if epoch <= f.committed || epoch < f.latest {
			return fmt.Errorf("%w: epoch %d overtaken mid-repair (committed %d, latest %d)",
				ErrStaleEpoch, epoch, f.committed, f.latest)
		}
		return nil
	}

	done := c.noteRollover(a, CausePortRepair, uint64(pa))
	err = c.tryPortKeyInitFenced(ha, pa, hb, peer.port, &res, fence)
	if err == nil {
		c.mu.Lock()
		if epoch > f.committed {
			f.committed = epoch
		}
		c.mu.Unlock()
		err = errors.Join(c.autoPersist(a), c.autoPersist(peer.sw))
	}
	done(err)
	return res, err
}
