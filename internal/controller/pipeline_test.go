package controller

import (
	"errors"
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/statestore"
)

func TestWriteRegisterBatchBasic(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	writes := make([]RegWrite, 8)
	for i := range writes {
		writes[i] = RegWrite{Register: "lat", Index: uint32(i), Value: uint64(1000 + i)}
	}
	br, err := c.WriteRegisterBatch("s1", 4, writes)
	if err != nil {
		t.Fatal(err)
	}
	if br.Failed != 0 {
		t.Fatalf("failed entries: %d (%v)", br.Failed, br.Errs)
	}
	if br.Rounds != 2 {
		t.Errorf("8 writes at window 4 took %d rounds, want 2", br.Rounds)
	}
	if br.Lat <= 0 {
		t.Error("batch latency must be positive")
	}
	for i := range writes {
		if v, _ := s1.Host.SW.RegisterRead("lat", i); v != uint64(1000+i) {
			t.Fatalf("lat[%d] = %d, want %d", i, v, 1000+i)
		}
	}
}

func TestReadRegisterBatch(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.WriteRegister("s1", "lat", uint32(i), uint64(42+i)); err != nil {
			t.Fatal(err)
		}
	}
	reads := make([]RegRead, 6)
	for i := range reads {
		reads[i] = RegRead{Register: "lat", Index: uint32(i)}
	}
	br, err := c.ReadRegisterBatch("s1", 8, reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range br.Values {
		if v != uint64(42+i) {
			t.Fatalf("Values[%d] = %d, want %d", i, v, 42+i)
		}
	}
}

func TestPipelineSubmitAutoFlush(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	p, err := c.NewPipeline("s1", 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := p.Submit(RegWrite{Register: "lat", Index: uint32(i % 8), Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Totals.Failed != 0 || len(p.Totals.Errs) != 7 {
		t.Fatalf("totals: %d failed of %d", p.Totals.Failed, len(p.Totals.Errs))
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 6); v != 6 {
		t.Fatalf("lat[6] = %d, want 6", v)
	}
}

// TestBatchPartialFailure mixes a write to a nonexistent register into a
// window and checks the batch fails only that entry.
func TestBatchPartialFailure(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	br, err := c.WriteRegisterBatch("s1", 4, []RegWrite{
		{Register: "lat", Index: 0, Value: 7},
		{Register: "no_such_register", Index: 0, Value: 8},
		{Register: "lat", Index: 1, Value: 9},
	})
	if err == nil {
		t.Fatal("batch with a bad register must report an error")
	}
	if br.Failed != 1 || br.Errs[1] == nil || br.Errs[0] != nil || br.Errs[2] != nil {
		t.Fatalf("per-entry outcomes wrong: %v", br.Errs)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 1); v != 9 {
		t.Fatalf("surviving entry not applied: lat[1] = %d", v)
	}
}

// TestBatchUnderLossAndReorder drives windowed writes through a tap that
// drops and reorders requests. Reordering makes the switch's replay
// floor overtake held-back window members, so their retransmissions draw
// verified replay alerts and must be re-signed with fresh sequence
// numbers — the core out-of-order-safety property of the design.
func TestBatchUnderLossAndReorder(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	// The reorder tap permanently drops one request in three (the slot the
	// held packet displaces) on top of 15% response loss — harsher than
	// the 20% the stock resilient policy budgets for, so widen it.
	pol := ResilientRetryPolicy()
	pol.MaxAttempts = 12
	c.SetRetryPolicy(pol)
	if err := c.SetControlTaps("s1", netsim.ReorderTap(), netsim.LossTap(0.15, 0xBADF00D)); err != nil {
		t.Fatal(err)
	}
	// Entries of a batch are an unordered set (out-of-order completion is
	// the point), so writes to the same index carry the same value — the
	// end state is deterministic no matter which copy lands last.
	writes := make([]RegWrite, 16)
	for i := range writes {
		writes[i] = RegWrite{Register: "lat", Index: uint32(i % 8), Value: uint64(3000 + i%8)}
	}
	br, err := c.WriteRegisterBatch("s1", 8, writes)
	if err != nil {
		t.Fatalf("batch under faults: %v (%d rounds)", err, br.Rounds)
	}
	if br.Rounds < 2 {
		t.Errorf("faults injected but batch completed in %d round(s)", br.Rounds)
	}
	for i := 0; i < 8; i++ {
		if v, _ := s1.Host.SW.RegisterRead("lat", i); v != uint64(3000+i) {
			t.Fatalf("lat[%d] = %d, want %d", i, v, 3000+i)
		}
	}
	// The reorder tap must actually have provoked replay handling.
	replays := 0
	for _, a := range c.Alerts() {
		if a.Reason == core.AlertReplay {
			replays++
		}
	}
	if replays == 0 {
		t.Error("no replay alerts raised despite reordering")
	}
}

// TestBatchGroupCommitJournal checks the one-record-per-batch WAL
// discipline: a clean batch leaves nothing behind, a partly-failed batch
// leaves one rewritten record with per-entry final states (never a
// surviving intent).
func TestBatchGroupCommitJournal(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	st := statestore.NewMem()
	if err := c.EnableCrashSafety(st); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegisterBatch("s1", 4, []RegWrite{
		{Register: "lat", Index: 0, Value: 1},
		{Register: "lat", Index: 1, Value: 2},
	}); err != nil {
		t.Fatal(err)
	}
	if keys, _ := st.Keys("wal/"); len(keys) != 0 {
		t.Fatalf("clean batch left journal records: %v", keys)
	}
	if _, err := c.WriteRegisterBatch("s1", 4, []RegWrite{
		{Register: "lat", Index: 2, Value: 3},
		{Register: "bogus", Index: 0, Value: 4},
	}); err == nil {
		t.Fatal("expected partial failure")
	}
	entries, err := c.JournalEntries("s1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("expanded journal entries: %d, want 2", len(entries))
	}
	states := map[core.WriteState]int{}
	for _, e := range entries {
		states[e.State]++
	}
	if states[core.WriteIntent] != 0 {
		t.Fatal("an intent survived a live settle")
	}
	if states[core.WriteApplied] != 1 || states[core.WriteFailed] != 1 {
		t.Fatalf("per-entry states wrong: %v", states)
	}
}

// TestBatchJournalCrashRecovery plants a batch record as a crash would
// leave it (all intents) and checks replayJournal settles each entry
// independently: read-back retires writes that landed, re-drives the
// rest, and deletes the fully-settled record.
func TestBatchJournalCrashRecovery(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	st := statestore.NewMem()
	if err := c.EnableCrashSafety(st); err != nil {
		t.Fatal(err)
	}
	// Entry 0 "landed before the crash"; entry 1 did not.
	if _, err := c.WriteRegister("s1", "lat", 5, 500); err != nil {
		t.Fatal(err)
	}
	rec := &core.JournalBatch{ID: 0x42, Switch: "s1", Writes: []core.BatchWrite{
		{Register: "lat", Index: 5, Value: 500, State: core.WriteIntent},
		{Register: "lat", Index: 6, Value: 600, State: core.WriteIntent},
	}}
	if err := st.Save(walKey("s1", 0x42), rec.Encode()); err != nil {
		t.Fatal(err)
	}
	h, err := c.handle("s1")
	if err != nil {
		t.Fatal(err)
	}
	applied, redriven, failed, jerr := c.replayJournal(h)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if applied != 1 || redriven != 1 || failed != 0 {
		t.Fatalf("applied=%d redriven=%d failed=%d, want 1/1/0", applied, redriven, failed)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 6); v != 600 {
		t.Fatalf("re-driven write missing: lat[6] = %d", v)
	}
	if keys, _ := st.Keys("wal/"); len(keys) != 0 {
		t.Fatalf("settled batch record not deleted: %v", keys)
	}
}

func TestBatchRecordCodecRoundTrip(t *testing.T) {
	rec := &core.JournalBatch{ID: 0xDEADBEEF, Switch: "s9", Writes: []core.BatchWrite{
		{Register: "lat", Index: 1, Value: 11, State: core.WriteIntent},
		{Register: "pa_seq", Index: 2, Value: 22, State: core.WriteFailed},
	}}
	b := rec.Encode()
	got, err := core.DecodeJournalBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.Switch != rec.Switch || len(got.Writes) != 2 ||
		got.Writes[1].Register != "pa_seq" || got.Writes[1].State != core.WriteFailed {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// A single-entry decoder must reject it (distinct magic), and a
	// flipped bit must not decode.
	if _, err := core.DecodeJournalEntry(b); err == nil {
		t.Fatal("batch record decoded as single entry")
	}
	b[len(b)-1] ^= 0x80
	if _, err := core.DecodeJournalBatch(b); err == nil {
		t.Fatal("corrupted batch record decoded")
	}
}

func TestBatchOnQuarantinedSwitchFailsFast(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, FlowRetries: 1})
	c.SetHealthPolicy(HealthPolicy{DegradeAfter: 1, QuarantineAfter: 1})
	if err := c.SetControlTaps("s1", netsim.LossTap(1.0, 1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegisterBatch("s1", 4, []RegWrite{{Register: "lat", Index: 0, Value: 1}}); err == nil {
		t.Fatal("total loss must fail the batch")
	}
	if err := c.SetControlTaps("s1", nil, nil); err != nil {
		t.Fatal(err)
	}
	br, err := c.WriteRegisterBatch("s1", 4, []RegWrite{{Register: "lat", Index: 0, Value: 1}})
	if err == nil || !errors.Is(br.Errs[0], ErrQuarantined) {
		t.Fatalf("want ErrQuarantined fast-fail, got %v", err)
	}
}
