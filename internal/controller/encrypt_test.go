package controller

import (
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// encFabric builds a switch with the §XI encryption extension enabled.
func encFabric(t *testing.T) (*Controller, *deploy.Switch) {
	t.Helper()
	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Encrypt = true
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:   "enc1",
		Ports:  4,
		Config: &cfg,
		Registers: []*pisa.RegisterDef{
			{Name: "secret_cfg", Width: 64, Entries: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(crypto.NewSeededRand(0xE2C))
	if err := c.Register("enc1", sw.Host, sw.Cfg, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyInit("enc1"); err != nil {
		t.Fatal(err)
	}
	return c, sw
}

func TestEncryptedWriteReadRoundtrip(t *testing.T) {
	c, sw := encFabric(t)
	const secret = 0xC0FFEE_5EC_12E7
	if _, err := c.WriteRegister("enc1", "secret_cfg", 2, secret); err != nil {
		t.Fatal(err)
	}
	// The data plane decrypted before storing: the register holds the
	// plaintext.
	if v, _ := sw.Host.SW.RegisterRead("secret_cfg", 2); v != secret {
		t.Fatalf("register holds %#x, want plaintext %#x", v, secret)
	}
	// And the read path re-encrypts/decrypts transparently.
	v, _, err := c.ReadRegister("enc1", "secret_cfg", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != secret {
		t.Fatalf("read %#x, want %#x", v, secret)
	}
}

func TestSnoopingStackSeesOnlyCiphertext(t *testing.T) {
	c, sw := encFabric(t)
	const secret = 0xDEAD_10CC_FEED_F00D
	var observed []uint64
	if err := sw.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			if m, err := core.DecodeMessage(data); err == nil && m.Reg != nil && m.MsgType == core.MsgWriteReq {
				observed = append(observed, m.Reg.Value)
			}
			return data
		},
		OnPacketIn: func(data []byte) []byte {
			if m, err := core.DecodeMessage(data); err == nil && m.Reg != nil && m.MsgType == core.MsgAck {
				observed = append(observed, m.Reg.Value)
			}
			return data
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("enc1", "secret_cfg", 0, secret); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadRegister("enc1", "secret_cfg", 0); err != nil {
		t.Fatal(err)
	}
	if len(observed) < 3 {
		t.Fatalf("observer saw %d values", len(observed))
	}
	for i, v := range observed {
		if v == secret {
			t.Fatalf("observation %d leaked the plaintext %#x", i, v)
		}
	}
	// Direction separation: the write request ciphertext differs from any
	// response ciphertext even for the same seq space.
	seen := map[uint64]int{}
	for _, v := range observed {
		seen[v]++
	}
	if len(seen) < 2 {
		t.Error("all observed ciphertexts identical (keystream reuse?)")
	}
}

func TestEncryptedReadOfZeroDoesNotLeakKeystream(t *testing.T) {
	// A readReq's value field is zero plaintext; the response must not be
	// decryptable by XORing the two ciphertexts (direction labels differ).
	c, sw := encFabric(t)
	const secret = 0x1234_5678_9ABC_DEF0
	if err := sw.Host.SW.RegisterWrite("secret_cfg", 1, secret); err != nil {
		t.Fatal(err)
	}
	var reqVal, respVal uint64
	var got bool
	if err := sw.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			if m, err := core.DecodeMessage(data); err == nil && m.Reg != nil && m.MsgType == core.MsgReadReq {
				reqVal = m.Reg.Value
			}
			return data
		},
		OnPacketIn: func(data []byte) []byte {
			if m, err := core.DecodeMessage(data); err == nil && m.Reg != nil && m.MsgType == core.MsgAck {
				respVal = m.Reg.Value
				got = true
			}
			return data
		},
	}); err != nil {
		t.Fatal(err)
	}
	v, _, err := c.ReadRegister("enc1", "secret_cfg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != secret {
		t.Fatalf("read %#x", v)
	}
	if !got {
		t.Fatal("observer saw no response")
	}
	// reqVal = ksReq (since plaintext 0). If labels were shared,
	// respVal ^ reqVal would be the secret.
	if respVal^reqVal == secret {
		t.Fatal("request keystream decrypts the response: direction separation broken")
	}
}

func TestEncryptedTamperStillDetected(t *testing.T) {
	// Encrypt-then-MAC: flipping ciphertext bits breaks the digest.
	c, sw := encFabric(t)
	if err := sw.Host.Install(switchos.BoundarySDKDriver, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgWriteReq {
				return data
			}
			m.Reg.Value ^= 0xFF
			out, _ := m.Encode()
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("enc1", "secret_cfg", 3, 42); err == nil {
		t.Fatal("tampered encrypted write accepted")
	}
	if v, _ := sw.Host.SW.RegisterRead("secret_cfg", 3); v != 0 {
		t.Fatalf("tampered write applied: %#x", v)
	}
}
