package controller

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
)

// fleetFixture builds n switches s00..s(n-1), all registered with a
// fresh controller, keys initialized.
func fleetFixture(t *testing.T, n int) (*Controller, []string) {
	t.Helper()
	c := New(crypto.NewSeededRand(7700))
	names := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		sw, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: 4,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: 8},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Register(name, sw.Host, sw.Cfg, 50*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		names[i] = name
	}
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	return c, names
}

func TestShardSetSequentialDrain(t *testing.T) {
	c, names := fleetFixture(t, 4)
	ss, err := c.NewShardSet(names, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, sw := range names {
		for idx := uint32(0); idx < 3; idx++ {
			if err := ss.Submit(sw, RegWrite{Register: "lat", Index: idx, Value: uint64(100*i) + uint64(idx)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := ss.Pending("s01"); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	if err := ss.DrainSequential(); err != nil {
		t.Fatal(err)
	}
	for i, sw := range names {
		for idx := uint32(0); idx < 3; idx++ {
			v, _, err := c.ReadRegister(sw, "lat", idx)
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(100*i) + uint64(idx); v != want {
				t.Fatalf("%s lat[%d] = %d, want %d", sw, idx, v, want)
			}
		}
	}
	sum, wall := ss.FleetTotals()
	if sum.Submitted != 12 || sum.Landed != 12 || sum.Failed != 0 {
		t.Fatalf("totals = %+v", sum)
	}
	if wall <= 0 || wall > sum.Lat {
		t.Fatalf("fleet wall %v out of range (sum %v)", wall, sum.Lat)
	}
}

func TestShardSetParallelDrain(t *testing.T) {
	c, names := fleetFixture(t, 8)
	ss, err := c.NewShardSet(names, 8)
	if err != nil {
		t.Fatal(err)
	}
	const perShard = 16
	var wg sync.WaitGroup
	for _, sw := range names {
		wg.Add(1)
		go func(sw string) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				if err := ss.Submit(sw, RegWrite{Register: "lat", Index: uint32(i % 8), Value: uint64(i)}); err != nil {
					t.Error(err)
				}
			}
		}(sw)
	}
	wg.Wait()
	if err := ss.DrainParallel(); err != nil {
		t.Fatal(err)
	}
	sum, _ := ss.FleetTotals()
	if sum.Landed != len(names)*perShard || sum.Failed != 0 {
		t.Fatalf("totals = %+v, want %d landed", sum, len(names)*perShard)
	}
	for _, sw := range names {
		if ss.Pending(sw) != 0 {
			t.Fatalf("%s still has pending writes after drain", sw)
		}
	}
}

func TestShardSetValidation(t *testing.T) {
	c, names := fleetFixture(t, 2)
	if _, err := c.NewShardSet(names, 0); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := c.NewShardSet([]string{"nope"}, 4); err == nil {
		t.Fatal("unknown switch accepted")
	}
	if _, err := c.NewShardSet([]string{"s00", "s00"}, 4); err == nil {
		t.Fatal("duplicate shard accepted")
	}
	ss, err := c.NewShardSet(names, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Submit("nope", RegWrite{Register: "lat"}); err == nil {
		t.Fatal("submit to unknown shard accepted")
	}
}

// TestShardSetRebindAcrossKill is the handoff seam: the original
// controller dies mid-fleet, queued writes fail under it, and after
// Rebind the same set (queues, totals) drains through a successor.
func TestShardSetRebindAcrossKill(t *testing.T) {
	c, names := fleetFixture(t, 4)
	ss, err := c.NewShardSet(names, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, sw := range names {
		if err := ss.Submit(sw, RegWrite{Register: "lat", Index: 1, Value: 11}); err != nil {
			t.Fatal(err)
		}
	}
	c.Kill()
	if err := ss.DrainSequential(); !errors.Is(err, ErrKilled) {
		t.Fatalf("drain on a dead controller = %v, want ErrKilled", err)
	}
	sum, _ := ss.FleetTotals()
	if sum.Failed != len(names) {
		t.Fatalf("failed = %d, want %d", sum.Failed, len(names))
	}

	// The successor drives the same switches (handles carry the keystore
	// state in this process model, so re-registering the same hosts with
	// fresh key init stands in for warm restart — the HA package owns the
	// real snapshot-based promotion).
	c2, names2 := fleetFixture(t, 4)
	if fmt.Sprint(names) != fmt.Sprint(names2) {
		t.Fatal("fixture name mismatch")
	}
	ss.Rebind(c2)
	for _, sw := range names {
		if err := ss.Submit(sw, RegWrite{Register: "lat", Index: 2, Value: 22}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.DrainSequential(); err != nil {
		t.Fatalf("drain after rebind: %v", err)
	}
	sum, _ = ss.FleetTotals()
	if sum.Landed != len(names) || sum.Failed != len(names) {
		t.Fatalf("totals after rebind = %+v", sum)
	}
	for _, sw := range names2 {
		v, _, err := c2.ReadRegister(sw, "lat", 2)
		if err != nil || v != 22 {
			t.Fatalf("%s lat[2] = (%d, %v), want 22", sw, v, err)
		}
	}
}

// TestSendFenceRefusesBothPaths proves the fence guards the serial and
// the batch exchange, that fenced sends never touch the wire stats, and
// that causeOf classifies the refusal for audit.
func TestSendFenceRefusesBothPaths(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	fenceErr := fmt.Errorf("replica deposed: %w", ErrFenced)
	c.SetSendFence(func() error { return fenceErr })

	if _, err := c.WriteRegister("s1", "lat", 0, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("serial write under fence = %v, want ErrFenced", err)
	}
	br, err := c.WriteRegisterBatch("s1", 4, []RegWrite{{Register: "lat", Index: 0, Value: 1}})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("batch write under fence = %v, want ErrFenced", err)
	}
	if br.Failed != 1 {
		t.Fatalf("batch Failed = %d, want 1", br.Failed)
	}
	if got := c.Stats(); got.MessagesSent != before.MessagesSent {
		t.Fatalf("fenced sends counted as sent: %d -> %d", before.MessagesSent, got.MessagesSent)
	}
	if got := causeOf(fenceErr); got != CauseFenced {
		t.Fatalf("causeOf(fenced) = %q, want %q", got, CauseFenced)
	}
	// Dropped writes under the fence still audit with the fenced cause.
	evs := c.Observer().Audit.ByType(obs.EvWriteDropped)
	if len(evs) == 0 {
		t.Fatal("no EvWriteDropped audited for fenced writes")
	}
	for _, e := range evs {
		if e.Cause != CauseFenced {
			t.Fatalf("dropped write cause = %q, want %q", e.Cause, CauseFenced)
		}
	}

	// Lifting the fence restores service.
	c.SetSendFence(nil)
	if _, err := c.WriteRegister("s1", "lat", 0, 5); err != nil {
		t.Fatalf("write after lifting fence: %v", err)
	}
}
