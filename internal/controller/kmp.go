package controller

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/core"
)

// LocalKeyInit runs the local-key initialization of Fig. 14(a): an EAK
// exchange deriving K_auth from the pre-shared seed, then an ADHKD
// exchange deriving K_local. Four messages total in the default
// single-shot mode; under a retransmission policy (SetRetryPolicy) each
// exchange is retried, confirmed, and resynced on interruption.
func (c *Controller) LocalKeyInit(sw string) (KMPResult, error) {
	var res KMPResult
	var err error
	done := c.noteRollover(sw, CauseLocalInit, 0)
	defer func() { done(err) }()
	if c.resilient() {
		res, err = c.localKeyInitResilient(sw)
	} else {
		res, err = c.localKeyInitLegacy(sw)
	}
	if err == nil {
		err = c.autoPersist(sw)
	}
	return res, err
}

func (c *Controller) localKeyInitLegacy(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult

	// EAK: salts exchanged under K_seed.
	c.countSeedUse(sw)
	eak := core.NewEAK(h.cfg, c.rng)
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgEAKSalt1, nil, &core.KxPayload{Salt: eak.S1})
	if err != nil {
		return res, err
	}
	resp, lat, err := c.exchange(h, req)
	if err != nil {
		return res, err
	}
	res.RTT += lat + SignCost + VerifyCost
	res.Messages += 2
	if err := c.tally(&res, req, resp); err != nil {
		return res, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgEAKSalt2 {
		return res, fmt.Errorf("controller: %s: unexpected EAK response", sw)
	}
	if err := c.checkResponse(h, req, resp[0]); err != nil {
		return res, err
	}
	kauth, err := eak.Complete(resp[0].Kx.Salt)
	if err != nil {
		return res, err
	}
	if _, err := h.keys.Install(core.KeyIndexLocal, kauth); err != nil {
		return res, err
	}

	// ADHKD under K_auth.
	r2, err := c.localADHKD(h)
	if err != nil {
		return res, err
	}
	res.Messages += r2.Messages
	res.Bytes += r2.Bytes
	res.RTT += r2.RTT
	return res, nil
}

// LocalKeyUpdate runs the rollover of Fig. 14(b): one ADHKD exchange under
// the current local key. Two messages (single-shot mode).
func (c *Controller) LocalKeyUpdate(sw string) (KMPResult, error) {
	var res KMPResult
	var err error
	done := c.noteRollover(sw, CauseLocalUpdate, 0)
	defer func() { done(err) }()
	if c.resilient() {
		res, err = c.localKeyUpdateResilient(sw)
	} else {
		res, err = c.localKeyUpdateLegacy(sw)
	}
	if err == nil {
		err = c.autoPersist(sw)
	}
	return res, err
}

func (c *Controller) localKeyUpdateLegacy(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	if !h.keys.Established(core.KeyIndexLocal) {
		return KMPResult{}, fmt.Errorf("controller: %s: no local key to update", sw)
	}
	return c.localADHKD(h)
}

func (c *Controller) localADHKD(h *swHandle) (KMPResult, error) {
	var res KMPResult
	adhkd := core.NewADHKD(h.cfg, c.rng)
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
		&core.KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1})
	if err != nil {
		return res, err
	}
	resp, lat, err := c.exchange(h, req)
	if err != nil {
		return res, err
	}
	res.RTT += lat + SignCost + VerifyCost
	res.Messages += 2
	if err := c.tally(&res, req, resp); err != nil {
		return res, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgADHKD2 {
		return res, fmt.Errorf("controller: %s: unexpected ADHKD response", h.name)
	}
	if err := c.checkResponse(h, req, resp[0]); err != nil {
		return res, err
	}
	klocal, err := adhkd.Complete(resp[0].Kx.PK, resp[0].Kx.Salt)
	if err != nil {
		return res, err
	}
	if _, err := h.keys.Install(core.KeyIndexLocal, klocal); err != nil {
		return res, err
	}
	return res, nil
}

// PortKeyInit runs Fig. 14(c): the controller triggers switch A to start
// an ADHKD for the A(pa) <-> B(pb) link and redirects the exchange
// (initKeyExch) between the two data planes, authenticating each C-DP leg
// with the respective local key. Five messages. The controller never
// learns the derived port key.
func (c *Controller) PortKeyInit(a string, pa int, b string, pb int) (KMPResult, error) {
	var res KMPResult
	var err error
	done := c.noteRollover(a, CausePortInit, uint64(pa))
	defer func() { done(err) }()
	if c.resilient() {
		res, err = c.portKeyInitResilient(a, pa, b, pb)
	} else {
		res, err = c.portKeyInitLegacy(a, pa, b, pb)
	}
	if err == nil {
		err = errors.Join(c.autoPersist(a), c.autoPersist(b))
	}
	return res, err
}

func (c *Controller) portKeyInitLegacy(a string, pa int, b string, pb int) (KMPResult, error) {
	ha, err := c.handle(a)
	if err != nil {
		return KMPResult{}, err
	}
	hb, err := c.handle(b)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult

	// 1-2: portKeyInit to A; A answers with its ADHKD1 (initKeyExch).
	req, err := ha.signedMessage(core.HdrKeyExch, core.MsgPortKeyInit, nil,
		&core.KxPayload{Port: uint16(pa)})
	if err != nil {
		return res, err
	}
	resp, lat, err := c.exchange(ha, req)
	if err != nil {
		return res, err
	}
	res.RTT += lat
	res.Messages += 2
	if err := c.tally(&res, req, resp); err != nil {
		return res, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgADHKD1 {
		return res, fmt.Errorf("controller: %s: unexpected portKeyInit response", a)
	}
	if err := c.checkResponse(ha, req, resp[0]); err != nil {
		return res, err
	}
	pk1, s1 := resp[0].Kx.PK, resp[0].Kx.Salt

	// 3-4: redirect ADHKD1 to B (tagged with B's port); B answers ADHKD2.
	req, err = hb.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
		&core.KxPayload{Port: uint16(pb), PK: pk1, Salt: s1})
	if err != nil {
		return res, err
	}
	resp, lat, err = c.exchange(hb, req)
	if err != nil {
		return res, err
	}
	res.RTT += lat + SignCost + VerifyCost
	res.Messages += 2
	if err := c.tally(&res, req, resp); err != nil {
		return res, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgADHKD2 {
		return res, fmt.Errorf("controller: %s: unexpected redirected ADHKD response", b)
	}
	if err := c.checkResponse(hb, req, resp[0]); err != nil {
		return res, err
	}
	pk2, s2 := resp[0].Kx.PK, resp[0].Kx.Salt

	// 5: redirect ADHKD2 back to A, which installs the port key.
	req, err = ha.signedMessage(core.HdrKeyExch, core.MsgADHKD2, nil,
		&core.KxPayload{Port: uint16(pa), PK: pk2, Salt: s2})
	if err != nil {
		return res, err
	}
	_, lat, err = c.exchange(ha, req)
	if err != nil {
		return res, err
	}
	res.RTT += lat + SignCost
	res.Messages++
	if err := c.tally(&res, req, nil); err != nil {
		return res, err
	}
	// The final leg has no response; the request settles implicitly.
	_ = ha.seq.Settle(req.SeqNum)
	return res, nil
}

// PortKeyUpdate runs Fig. 14(d): one portKeyUpdate command to A; the
// ADHKD then travels directly between the data planes under the current
// port key. Three messages (one C-DP, two DP-DP relayed by the fabric).
func (c *Controller) PortKeyUpdate(a string, pa int) (KMPResult, error) {
	var res KMPResult
	var err error
	done := c.noteRollover(a, CausePortUpdate, uint64(pa))
	defer func() { done(err) }()
	if c.resilient() {
		res, err = c.portKeyUpdateResilient(a, pa)
	} else {
		res, err = c.portKeyUpdateLegacy(a, pa)
	}
	if err == nil {
		err = c.autoPersist(a)
	}
	return res, err
}

func (c *Controller) portKeyUpdateLegacy(a string, pa int) (KMPResult, error) {
	ha, err := c.handle(a)
	if err != nil {
		return KMPResult{}, err
	}
	if _, ok := c.peerOf(a, pa); !ok {
		return KMPResult{}, fmt.Errorf("controller: %s port %d has no registered peer", a, pa)
	}
	var res KMPResult
	req, err := ha.signedMessage(core.HdrKeyExch, core.MsgPortKeyUpdate, nil,
		&core.KxPayload{Port: uint16(pa)})
	if err != nil {
		return res, err
	}
	// The exchange's relay step carries the two DP-DP legs.
	_, lat, err := c.exchange(ha, req)
	if err != nil {
		return res, err
	}
	_ = ha.seq.Settle(req.SeqNum)
	res.RTT += lat + SignCost
	res.Messages += 3
	rb, _ := req.Encode()
	// One C-DP command plus two DP-DP kx messages of the same wire size.
	res.Bytes += 3 * len(rb)
	return res, nil
}

func (c *Controller) tally(res *KMPResult, req *core.Message, resp []*core.Message) error {
	b, err := req.Encode()
	if err != nil {
		return err
	}
	res.Bytes += len(b)
	for _, r := range resp {
		rb, err := r.Encode()
		if err != nil {
			return err
		}
		res.Bytes += len(rb)
	}
	return nil
}

// InitAllKeys initializes local keys for every registered switch and port
// keys for every registered link, returning the aggregate (Table III's
// key-initialization row). Links are initialized once per adjacency pair.
func (c *Controller) InitAllKeys() (KMPResult, error) {
	var total KMPResult
	for _, name := range c.switchNames() {
		r, err := c.LocalKeyInit(name)
		if err != nil {
			return total, fmt.Errorf("local key init %s: %w", name, err)
		}
		total.Messages += r.Messages
		total.Bytes += r.Bytes
		total.RTT += r.RTT
	}
	// Each link once, in deterministic order (the controller's rng draws
	// must replay identically under the chaos harness).
	for _, lk := range c.links() {
		pk, peer := lk[0], lk[1]
		r, err := c.PortKeyInit(pk.sw, pk.port, peer.sw, peer.port)
		if err != nil {
			return total, fmt.Errorf("port key init %s:%d<->%s:%d: %w", pk.sw, pk.port, peer.sw, peer.port, err)
		}
		total.Messages += r.Messages
		total.Bytes += r.Bytes
		total.RTT += r.RTT
	}
	return total, nil
}

// UpdateAllKeys rolls every local and port key (Table III's key-update
// row).
func (c *Controller) UpdateAllKeys() (KMPResult, error) {
	var total KMPResult
	for _, name := range c.switchNames() {
		r, err := c.LocalKeyUpdate(name)
		if err != nil {
			return total, fmt.Errorf("local key update %s: %w", name, err)
		}
		total.Messages += r.Messages
		total.Bytes += r.Bytes
		total.RTT += r.RTT
	}
	for _, lk := range c.links() {
		pk := lk[0]
		r, err := c.PortKeyUpdate(pk.sw, pk.port)
		if err != nil {
			return total, fmt.Errorf("port key update %s:%d: %w", pk.sw, pk.port, err)
		}
		total.Messages += r.Messages
		total.Bytes += r.Bytes
		total.RTT += r.RTT
	}
	return total, nil
}

// KeyEstablished reports whether the controller holds a current local key
// for the switch.
func (c *Controller) KeyEstablished(sw string) bool {
	h, err := c.handle(sw)
	return err == nil && h.keys.Established(core.KeyIndexLocal)
}

// PeriodicRollover runs UpdateAllKeys and returns when the next rollover
// is due, for operators driving rollover on a schedule (§VIII recommends
// well under the 180-day brute-force horizon).
func (c *Controller) PeriodicRollover(now, interval time.Duration) (KMPResult, time.Duration, error) {
	res, err := c.UpdateAllKeys()
	return res, now + interval, err
}
