package controller

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/obs"
)

// Windowed authenticated transport (the pipelined C-DP path).
//
// The serial register APIs complete one signed request per agent I/O
// round trip, so the switch agent's PacketIOBase dispatch cost and the
// management-link RTT bound throughput. The batch engine below keeps a
// window of N signed requests in flight per switch: one agent I/O
// transaction carries the whole window down (PacketOutBatch pays the
// dispatch once), responses complete out of order keyed by seqNum, and
// unanswered entries retransmit under the same policy as transact.
//
// Replay-floor discipline — why out-of-order completion is safe:
//
//   - Requests are (re)signed at send time, so sequence numbers on the
//     wire are always ascending in send order and the data plane's
//     replay floor (a RegRMW max over pa_seq) only ever moves up.
//   - A retransmitted entry resends the SAME bytes: if the original was
//     processed and only its response was lost, the agent's idempotency
//     cache replays the cached response without touching the floor.
//   - If the floor overtook a lost entry's sequence number (a later
//     window member landed first), the resend draws a verified REPLAY
//     alert; the entry is then re-signed with a fresh sequence number
//     above the floor. The floor never moves down, so a stale number is
//     abandoned, never replayed — reordering cannot reopen a replay
//     window.
//   - A replay rejection that no observed settle explains (the rejected
//     number is above everything the switch provably accepted) means the
//     floor itself was restored ahead of the counter — a lease-bumped
//     snapshot. The counter is skipped forward one core.FloorLease, same
//     as the serial engine.

// RegWrite is one write in a batched or pipelined submission.
type RegWrite struct {
	Register string
	Index    uint32
	Value    uint64
}

// RegRead is one read in a batched submission.
type RegRead struct {
	Register string
	Index    uint32
}

// BatchResult reports one pipelined batch. Entries fail independently:
// Errs[i] is nil when entry i completed and settled.
type BatchResult struct {
	// Lat is the modeled wall time for the whole batch, including
	// controller-side sign/verify costs and retransmission backoff.
	Lat time.Duration
	// Rounds is the number of windowed wire rounds (1 when nothing was
	// lost and the batch fit one window).
	Rounds int
	// Values holds per-entry read results (reads only; zero for writes
	// and failed entries).
	Values []uint64
	// Errs is the per-entry outcome, indexed like the submission.
	Errs []error
	// Failed counts non-nil Errs.
	Failed int
}

// Err joins the per-entry failures (nil when the whole batch landed).
func (br *BatchResult) Err() error { return errors.Join(br.Errs...) }

// batchEntry is one in-flight operation of a windowed batch.
type batchEntry struct {
	register string
	regID    uint32
	index    uint32
	value    uint64
	read     bool

	seq     uint32
	wire    []byte
	signed  bool
	resign  bool // replay floor passed seq; next send needs a fresh number
	replays int
	sends   int
	done    bool
	val     uint64
	err     error
}

// WriteRegisterBatch performs authenticated register writes through the
// windowed transport, keeping up to window requests in flight. With
// crash safety enabled the whole batch is journaled as ONE group-commit
// record before the first wire send and settled once at the end —
// per-entry exactly-once-or-failed is preserved: a crash mid-batch
// leaves the record's intents behind for recovery's read-back, and a
// live controller rewrites each entry's final state. The returned error
// joins the per-entry failures; inspect BatchResult.Errs for detail.
func (c *Controller) WriteRegisterBatch(sw string, window int, writes []RegWrite) (BatchResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return BatchResult{}, err
	}
	jid, jerr := c.walBeginBatch(sw, writes)
	if jerr != nil {
		return BatchResult{}, fmt.Errorf("controller: journal batch intent: %w", jerr)
	}
	entries := make([]batchEntry, len(writes))
	for i, w := range writes {
		entries[i] = batchEntry{register: w.Register, index: w.Index, value: w.Value}
		if ri, rerr := h.info.RegisterByName(w.Register); rerr != nil {
			entries[i].done, entries[i].err = true, rerr
		} else {
			entries[i].regID = ri.ID
		}
	}
	br := c.runBatch(h, entries, window)
	c.walSettleBatch(sw, jid, entries)
	return br, br.Err()
}

// ReadRegisterBatch performs authenticated register reads through the
// windowed transport. Values are indexed like the submission; failed
// entries read as zero with the error in BatchResult.Errs.
func (c *Controller) ReadRegisterBatch(sw string, window int, reads []RegRead) (BatchResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return BatchResult{}, err
	}
	entries := make([]batchEntry, len(reads))
	for i, r := range reads {
		entries[i] = batchEntry{register: r.Register, index: r.Index, read: true}
		if ri, rerr := h.info.RegisterByName(r.Register); rerr != nil {
			entries[i].done, entries[i].err = true, rerr
		} else {
			entries[i].regID = ri.ID
		}
	}
	br := c.runBatch(h, entries, window)
	return br, br.Err()
}

// runBatch drives a windowed batch to completion under the handle's
// operation lock: gather the oldest incomplete entries up to the window,
// (re)sign what needs signing, put the window on the wire as one agent
// I/O transaction, and match verified responses back by sequence number.
func (c *Controller) runBatch(h *swHandle, entries []batchEntry, window int) BatchResult {
	if window < 1 {
		window = 1
	}
	pol := c.retryPolicy()
	var br BatchResult
	br.Errs = make([]error, len(entries))
	br.Values = make([]uint64, len(entries))

	h.opMu.Lock()
	defer h.opMu.Unlock()

	if c.resilient() && c.quarantined(h.name) {
		qerr := fmt.Errorf("%w: %s", ErrQuarantined, h.name)
		for i := range entries {
			if !entries[i].done {
				entries[i].done, entries[i].err = true, qerr
			}
		}
		return c.finishBatch(h, &br, entries)
	}

	bySeq := make(map[uint32]*batchEntry, window)
	wires := make([][]byte, 0, window)
	open := make([]*batchEntry, 0, window)
	timedOut := false
	// floorSeen is the controller's lower bound on the switch's replay
	// floor: the highest sequence number the switch has provably accepted
	// (settled by a verified non-alert response). Any in-flight entry
	// below it is already overtaken, so retransmitting its bytes can only
	// draw a replay alert (or hit the idempotency cache); re-signing it
	// proactively saves the dead round.
	var floorSeen uint32

	for {
		// Gather the window: oldest incomplete entries in submission
		// order, failing the ones whose retransmission budget is spent.
		open = open[:0]
		for i := range entries {
			e := &entries[i]
			if e.done {
				continue
			}
			if e.sends >= pol.MaxAttempts {
				e.done = true
				e.err = fmt.Errorf("%w: %s seq %d (%d attempts)",
					ErrTimeout, h.name, e.seq, e.sends)
				timedOut = true
				continue
			}
			if len(open) < window {
				open = append(open, e)
			}
		}
		if len(open) == 0 {
			break
		}

		// Backoff before retransmission rounds, paced by the window's
		// most-retried entry (first sends wait nothing).
		att := 1
		for _, e := range open {
			if e.sends+1 > att {
				att = e.sends + 1
			}
		}
		if wait := pol.backoff(att); wait > 0 {
			br.Lat += wait
			c.mu.Lock()
			clk := c.clock
			c.mu.Unlock()
			if clk != nil {
				clk.Advance(wait)
			}
		}

		// Sign at send time: fresh entries and replay-rejected entries
		// take their sequence numbers here, in send order, so numbers on
		// the wire ascend and the replay floor stays behind every entry
		// still awaiting first delivery.
		wires = wires[:0]
		for _, e := range open {
			if !e.signed || e.resign {
				if e.signed {
					// Abandoning the stale number: the floor is past it,
					// so no response for it can ever settle.
					delete(bySeq, e.seq)
					_ = h.seq.Settle(e.seq)
				}
				if serr := c.signBatchEntry(h, e); serr != nil {
					e.done, e.err = true, serr
					continue
				}
				br.Lat += SignCost
				bySeq[e.seq] = e
			}
			wires = append(wires, e.wire)
			e.sends++
		}
		if len(wires) == 0 {
			continue
		}

		resp, lat, xerr := c.exchangeBatchBytesLocked(h, wires)
		br.Lat += lat
		br.Rounds++
		if xerr != nil {
			// A dead controller (or switch I/O fault) fails everything
			// still in flight; per-entry retries are pointless.
			for i := range entries {
				if !entries[i].done {
					entries[i].done, entries[i].err = true, xerr
				}
			}
			break
		}

		// One VerifyBatch per key version replaces per-response Verify:
		// the digest kernel's key setup is paid once per window and the
		// verdicts come back positionally, so the settle loop below is
		// pure bookkeeping. Alert/settle side effects stay in response
		// order, identical to the per-response path.
		c.verifyResponses(h, resp)
		for i, r := range resp {
			if !h.vfyMember[i] {
				continue // unverifiable version: the entry just retries
			}
			if !h.vfyOK[i] {
				c.noteAlert(h.name, core.AlertBadDigest, r.SeqNum, CauseResponseDigest)
				continue
			}
			br.Lat += VerifyCost
			e, ok := bySeq[r.SeqNum]
			if !ok || e.done {
				continue // duplicate or stale (idempotency-cache replay)
			}
			if r.HdrType == core.HdrAlert {
				cause := CauseRequestMangled
				if r.MsgType == core.AlertReplay {
					cause = CauseStaleSeq
				}
				c.noteAlert(h.name, r.MsgType, r.SeqNum, cause)
				if r.MsgType == core.AlertReplay {
					// The floor moved past this entry: fresh number next
					// round.
					e.resign = true
					e.replays++
					if r.SeqNum > floorSeen {
						// The rejection is not explained by anything we saw
						// settle, so the switch's floor was restored ahead
						// of our counter (a lease-bumped snapshot). Jump
						// the counter like the serial engine does.
						h.seq.SkipAhead(core.FloorLease)
						c.noteFloorBump(h, CauseRestoredFloor, r.SeqNum)
					}
				}
				// BadDigest: mangled in flight; the same bytes go again.
				continue
			}
			if h.seq.Settle(r.SeqNum) != nil {
				continue
			}
			delete(bySeq, r.SeqNum)
			e.done = true
			if r.SeqNum > floorSeen {
				floorSeen = r.SeqNum
			}
			if r.MsgType == core.MsgNAck {
				op := "write"
				if e.read {
					op = "read"
				}
				e.err = fmt.Errorf("%w: %s %s[%d] on %s", ErrNAck, op, e.register, e.index, h.name)
				continue
			}
			if e.read {
				v := r.Reg.Value
				if h.cfg.Encrypt {
					// Resolvable by construction: vfyMember[i] held above.
					key, _ := h.keys.At(core.KeyIndexLocal, r.KeyVersion)
					v = core.EncryptResponseValue(h.dig, key, r.SeqNum, v)
				}
				e.val = v
			}
		}

		// Proactive re-sign: an unanswered entry whose number the floor has
		// provably overtaken would burn its next send on a certain replay
		// rejection; give it a fresh number instead. (If its write actually
		// landed and only the response was lost, re-driving the same
		// absolute value is idempotent — the same convergence rule the
		// crash-recovery read-back relies on.)
		for _, e := range bySeq {
			if !e.done && !e.resign && e.seq < floorSeen {
				e.resign = true
			}
		}
	}

	if c.resilient() {
		if timedOut {
			c.noteFailure(h)
		} else {
			c.noteSuccess(h)
		}
	}
	return c.finishBatch(h, &br, entries)
}

// growBools sizes a reusable bool scratch to n without allocating in
// steady state.
func growBools(b []bool, n int) []bool {
	for cap(b) < n {
		b = append(b[:cap(b)], false)
	}
	return b[:n]
}

// verifyResponses batch-verifies one wire round's responses, filling
// h.vfyMember (the response's key version resolves) and h.vfyOK (the
// digest verified) positionally. Responses are grouped by key version —
// in the steady state one group covers the whole window — and each group
// goes through a single crypto.VerifyBatch call, which pays the digest
// kernel's key setup once. Requires h.opMu.
func (c *Controller) verifyResponses(h *swHandle, resp []*core.Message) {
	n := len(resp)
	h.vfyOK = growBools(h.vfyOK, n)
	h.vfyMember = growBools(h.vfyMember, n)
	h.vfyDone = growBools(h.vfyDone, n)
	h.vfyBuf = h.vfyBuf[:0]
	h.vfyOffs = append(h.vfyOffs[:0], 0)
	for i, r := range resp {
		h.vfyBuf = r.AppendDigestInput(h.vfyBuf)
		h.vfyOffs = append(h.vfyOffs, len(h.vfyBuf))
		h.vfyOK[i], h.vfyDone[i] = false, false
		_, kerr := h.keys.At(core.KeyIndexLocal, r.KeyVersion)
		h.vfyMember[i] = kerr == nil
	}
	for i := 0; i < n; i++ {
		if !h.vfyMember[i] || h.vfyDone[i] {
			continue
		}
		ver := resp[i].KeyVersion
		key, _ := h.keys.At(core.KeyIndexLocal, ver)
		h.gDatas, h.gGot, h.gIdx = h.gDatas[:0], h.gGot[:0], h.gIdx[:0]
		for j := i; j < n; j++ {
			if h.vfyMember[j] && !h.vfyDone[j] && resp[j].KeyVersion == ver {
				h.gDatas = append(h.gDatas, h.vfyBuf[h.vfyOffs[j]:h.vfyOffs[j+1]])
				h.gGot = append(h.gGot, resp[j].Digest)
				h.gIdx = append(h.gIdx, j)
				h.vfyDone[j] = true
			}
		}
		h.gOK = growBools(h.gOK, len(h.gIdx))
		crypto.VerifyBatch(h.dig, key, h.gDatas, h.gGot, h.gOK)
		for k, j := range h.gIdx {
			h.vfyOK[j] = h.gOK[k]
		}
	}
}

// finishBatch folds per-entry outcomes into the result and accounts each
// entry: failed writes get an audit event naming the cause, so the chaos
// harness can demand an explanation for every dropped write.
func (c *Controller) finishBatch(h *swHandle, br *BatchResult, entries []batchEntry) BatchResult {
	k := c.obsv()
	for i := range entries {
		e := &entries[i]
		br.Errs[i] = e.err
		br.Values[i] = e.val
		switch {
		case e.err == nil && e.read:
			k.readOK.Inc()
		case e.err == nil:
			k.writeOK.Inc()
		case e.read:
			br.Failed++
			k.readErr.Inc()
		default:
			br.Failed++
			k.writeErr.Inc()
			k.writeDropped.Inc()
			k.audit(obs.EvWriteDropped, h.name, causeOf(e.err), e.seq, e.value)
		}
	}
	return *br
}

// signBatchEntry signs (or re-signs) one entry into its own wire buffer,
// reserving the sequence number at sign time. Requires h.opMu.
func (c *Controller) signBatchEntry(h *swHandle, e *batchEntry) error {
	key, ver, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return err
	}
	seq := h.seq.Next()
	msgType := uint8(core.MsgWriteReq)
	value := e.value
	if e.read {
		msgType, value = core.MsgReadReq, 0
	} else if h.cfg.Encrypt {
		value = core.EncryptRequestValue(h.dig, key, seq, value)
	}
	reg := core.RegPayload{RegID: e.regID, Index: e.index, Value: value}
	m := core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: msgType, SeqNum: seq, KeyVersion: ver},
		Reg:    &reg,
	}
	if err := m.Sign(h.dig, key); err != nil {
		return err
	}
	e.wire = m.AppendEncode(e.wire[:0])
	e.seq, e.signed, e.resign = seq, true, false
	return nil
}

// exchangeBatchBytesLocked puts one window of encoded requests on the
// control channel as a single agent I/O transaction. Fault taps apply
// per packet in both directions; an undecodable PacketIn is dropped
// (the entry it answered simply retries) rather than failing the window.
// Requires h.opMu; responses alias the handle's receive scratch.
func (c *Controller) exchangeBatchBytesLocked(h *swHandle, wires [][]byte) (out []*core.Message, lat time.Duration, err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return nil, 0, ErrKilled
	}
	if fence := c.fence; fence != nil {
		c.mu.Unlock()
		if ferr := fence(); ferr != nil {
			// Same rule as the serial path: a fenced window never sends.
			return nil, 0, ferr
		}
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return nil, 0, ErrKilled
		}
	}
	c.stats.MessagesSent += len(wires)
	for _, w := range wires {
		c.stats.BytesSent += len(w)
	}
	outTap, inTap := h.outTap, h.inTap
	c.mu.Unlock()

	sendable := wires
	if outTap != nil {
		sendable = sendable[:0:0]
		for _, w := range wires {
			if tw := outTap(w); tw != nil {
				sendable = append(sendable, tw)
			}
		}
	}
	if len(sendable) == 0 {
		// The whole window died on the controller->switch leg: silence,
		// one link delay, retries follow.
		return nil, h.linkLat, nil
	}
	if err := h.host.PacketOutBatchInto(sendable, &h.io); err != nil {
		return nil, 0, err
	}
	// One link round for the whole window: the agent transaction carries
	// all PacketOuts down and all PacketIns back together.
	lat = h.linkLat + h.io.Cost
	responded := false
	h.rx = h.rx[:0]
	nbuf := 0
	for _, pin := range h.io.PacketIns {
		if inTap != nil {
			pin = inTap(pin)
		}
		if pin == nil {
			continue
		}
		responded = true
		c.mu.Lock()
		c.stats.MessagesRecvd++
		c.stats.BytesRecvd += len(pin)
		c.mu.Unlock()
		if nbuf == len(h.rxBufs) {
			h.rxBufs = append(h.rxBufs, &core.MessageBuf{})
		}
		r, derr := h.rxBufs[nbuf].Decode(pin)
		if derr != nil {
			continue // corrupt response: its entry retries
		}
		nbuf++
		h.rx = append(h.rx, r)
	}
	if responded {
		lat += h.linkLat
	}
	relayLat, rerr := c.relay(h, h.io.NetOut)
	if rerr != nil {
		return h.rx, lat, rerr
	}
	lat += relayLat
	return h.rx, lat, nil
}

// Pipeline is the asynchronous façade over the windowed transport: a
// per-switch writer that queues register writes and flushes a full
// window at a time. Submit returns immediately unless it completes a
// window (auto-flush); Flush drains the remainder. A Pipeline is NOT
// safe for concurrent use — one goroutine owns it, matching the
// one-writer-per-switch deployment model (the underlying batches still
// interleave safely with KMP flows on the same switch via the handle's
// operation lock).
type Pipeline struct {
	c      *Controller
	sw     string
	window int
	queue  []RegWrite

	// Totals accumulates the results of every flush so far.
	Totals BatchResult
}

// NewPipeline returns a pipelined writer toward one switch with the
// given in-flight window (clamped to >= 1).
func (c *Controller) NewPipeline(sw string, window int) (*Pipeline, error) {
	if _, err := c.handle(sw); err != nil {
		return nil, err
	}
	if window < 1 {
		window = 1
	}
	return &Pipeline{c: c, sw: sw, window: window}, nil
}

// Submit queues one write, flushing automatically when a full window has
// accumulated. The returned error reports a flush failure; queued-only
// submissions return nil.
func (p *Pipeline) Submit(w RegWrite) error {
	p.queue = append(p.queue, w)
	if len(p.queue) >= p.window {
		_, err := p.Flush()
		return err
	}
	return nil
}

// Flush drives every queued write to completion and folds the batch into
// Totals. A nil error means every entry settled.
func (p *Pipeline) Flush() (BatchResult, error) {
	if len(p.queue) == 0 {
		return BatchResult{}, nil
	}
	br, err := p.c.WriteRegisterBatch(p.sw, p.window, p.queue)
	p.queue = p.queue[:0]
	p.Totals.Lat += br.Lat
	p.Totals.Rounds += br.Rounds
	p.Totals.Failed += br.Failed
	p.Totals.Values = append(p.Totals.Values, br.Values...)
	p.Totals.Errs = append(p.Totals.Errs, br.Errs...)
	return br, err
}
