package controller

import (
	"errors"
	"fmt"
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/switchos"
)

func TestResetAlertWindowRestoresAlerting(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	// Exhaust the data-plane alert budget with garbage messages.
	threshold := s1.Cfg.AlertThreshold
	garbage := &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq, SeqNum: 10_000, Digest: 0xBAD},
		Reg:    &core.RegPayload{RegID: 1},
	}
	enc, err := garbage.Encode()
	if err != nil {
		t.Fatal(err)
	}
	alerts := 0
	for i := uint64(0); i < threshold+20; i++ {
		res, err := s1.Host.PacketOut(enc)
		if err != nil {
			t.Fatal(err)
		}
		alerts += len(res.PacketIns)
	}
	if alerts != int(threshold) {
		t.Fatalf("alerts = %d, want threshold %d", alerts, threshold)
	}
	// Further garbage is silently dropped...
	res, err := s1.Host.PacketOut(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 0 {
		t.Fatal("alert budget not exhausted")
	}
	// ...until the controller resets the window (authenticated write to
	// the always-exposed alert counter).
	if _, err := c.ResetAlertWindow("s1"); err != nil {
		t.Fatal(err)
	}
	res, err = s1.Host.PacketOut(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PacketIns) != 1 {
		t.Fatal("alerting not restored after window reset")
	}
}

func TestCheckDoSOnResponseSuppression(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	// An adversary silently drops all PacketIns — responses vanish.
	if err := s1.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte { return nil },
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, err := c.WriteRegister("s1", "lat", 0, uint64(i))
		if err == nil {
			t.Fatal("suppressed response should fail the write")
		}
	}
	out, err := c.Outstanding("s1")
	if err != nil {
		t.Fatal(err)
	}
	if out < 10 {
		t.Fatalf("outstanding = %d, want >= 10", out)
	}
	ind := c.CheckDoS(5)
	if len(ind) != 1 || ind[0].Switch != "s1" {
		t.Fatalf("indicators = %+v", ind)
	}
	// Operator action: quarantine.
	if err := c.Quarantine("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 0, 1); err == nil {
		t.Fatal("quarantined switch still reachable")
	}
	if err := c.Quarantine("s1"); err == nil {
		t.Fatal("double quarantine should error")
	}
	// s2 unaffected.
	if _, err := c.WriteRegister("s2", "lat", 0, 1); err != nil {
		t.Fatalf("healthy switch affected: %v", err)
	}
}

func TestPeriodicRollover(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	res, next, err := c.PeriodicRollover(0, 180*24*3600*1e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2*2+3*1 {
		t.Errorf("rollover messages = %d", res.Messages)
	}
	if next <= 0 {
		t.Error("next rollover time not advanced")
	}
}

func TestWriteAfterQuarantineOfPeerStillWorksOnFabric(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	if err := c.Quarantine("s2"); err != nil {
		t.Fatal(err)
	}
	// Port-key ops involving s2 now fail cleanly.
	if _, err := c.PortKeyUpdate("s1", 1); err == nil {
		t.Fatal("port update across a quarantined link should fail")
	}
	// Local operations on s1 still work.
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatal(err)
	}
}

func TestErrTamperedWrapping(t *testing.T) {
	// The sentinel must be detectable through wrapped errors.
	err := fmt.Errorf("outer: %w", ErrTampered)
	if !errors.Is(err, ErrTampered) {
		t.Fatal("wrapped ErrTampered not detected")
	}
}

// TestLostResponseDesyncAndRecovery exercises the protocol's one liveness
// gap and its recovery path: a key-exchange response is lost, the
// controller retries, version counters drift until the tag bit stops
// selecting a shared key, and Reinitialize restores service.
func TestLostResponseDesyncAndRecovery(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}

	// Drop exactly one PacketIn: the ADHKD2 of the next update.
	drops := 1
	if err := s1.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			if drops > 0 {
				drops--
				return nil
			}
			return data
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyUpdate("s1"); err == nil {
		t.Fatal("update with a dropped response should fail at the controller")
	}
	// The data plane installed the new key anyway; the controller is one
	// version behind. Two-version tagging keeps plain traffic working:
	if _, err := c.WriteRegister("s1", "lat", 0, 1); err != nil {
		t.Fatalf("grace-period write failed: %v", err)
	}

	// Retry the update: succeeds at protocol level but leaves the version
	// counters bit-misaligned (controller v3, data plane v4).
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatalf("retried update: %v", err)
	}
	_, err := c.WriteRegister("s1", "lat", 0, 2)
	if err == nil {
		t.Fatal("expected desync after loss+retry (if this starts passing, the protocol gained self-sync — update the docs)")
	}

	// Operator recovery.
	if _, err := c.Reinitialize("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 0, 3); err != nil {
		t.Fatalf("write after reinitialize: %v", err)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 0); v != 3 {
		t.Fatalf("lat = %d", v)
	}
}
