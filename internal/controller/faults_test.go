package controller

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/deploy"
	"p4auth/internal/netsim"
)

// resilientController builds the two-switch fabric with the resilient
// exchange engine enabled and a netsim clock driving backoff.
func resilientController(t *testing.T) (*Controller, *deploy.Switch, *deploy.Switch, *netsim.Sim) {
	t.Helper()
	c, s1, s2 := twoSwitchFabric(t)
	c.SetRetryPolicy(ResilientRetryPolicy())
	sim := netsim.NewSim()
	c.UseClock(sim)
	return c, s1, s2, sim
}

// assertLocalKeySync fails unless the controller's local-slot version and
// active key match the switch data plane's exactly.
func assertLocalKeySync(t *testing.T, c *Controller, sw *deploy.Switch, name string) {
	t.Helper()
	h := c.switches[name]
	key, ver, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		t.Fatalf("%s: controller key state: %v", name, err)
	}
	dpVer, err := sw.Host.SW.RegisterRead(core.RegVer, core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if uint8(dpVer) != ver {
		t.Fatalf("%s: version drift: controller=%d switch=%d", name, ver, dpVer)
	}
	reg := core.RegKeysV0
	if ver&1 == 1 {
		reg = core.RegKeysV1
	}
	dpKey, err := sw.Host.SW.RegisterRead(reg, core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if dpKey != key {
		t.Fatalf("%s: active key mismatch at version %d: controller=%#x switch=%#x", name, ver, key, dpKey)
	}
}

// assertPortKeySync fails unless both ends of a link agree on the port
// slot's install counter and hold the same active port key.
func assertPortKeySync(t *testing.T, sa, sb *deploy.Switch, pa, pb int) {
	t.Helper()
	verA, err := sa.Host.SW.RegisterRead(core.RegVer, pa)
	if err != nil {
		t.Fatal(err)
	}
	verB, err := sb.Host.SW.RegisterRead(core.RegVer, pb)
	if err != nil {
		t.Fatal(err)
	}
	if verA != verB {
		t.Fatalf("port install counters diverged: a[%d]=%d b[%d]=%d", pa, verA, pb, verB)
	}
	reg := core.RegKeysV0
	if verA&1 == 1 {
		reg = core.RegKeysV1
	}
	keyA, err := sa.Host.SW.RegisterRead(reg, pa)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := sb.Host.SW.RegisterRead(reg, pb)
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("active port keys differ at version %d: %#x vs %#x", verA, keyA, keyB)
	}
	if keyA == 0 {
		t.Fatal("port key never established")
	}
}

// tapAllChannels puts loss taps with distinct seeds on both directions of
// both control channels and both directions of the DP-DP link.
func tapAllChannels(t *testing.T, c *Controller, rate float64, seed uint64) {
	t.Helper()
	for i, sw := range []string{"s1", "s2"} {
		out := netsim.LossTap(rate, seed+uint64(i)*101)
		in := netsim.LossTap(rate, seed+uint64(i)*101+7)
		if err := c.SetControlTaps(sw, out, in); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetLinkTap("s1", 1, netsim.LossTap(rate, seed+55)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLinkTap("s2", 1, netsim.LossTap(rate, seed+56)); err != nil {
		t.Fatal(err)
	}
}

// TestKMPConvergesUnderLoss drives all four KMP flows through lossy
// channels at several rates and asserts full key agreement afterwards.
func TestKMPConvergesUnderLoss(t *testing.T) {
	for _, rate := range []float64{0.1, 0.2, 0.3} {
		for _, seed := range []uint64{1, 42, 2024} {
			t.Run(fmt.Sprintf("rate=%.1f/seed=%d", rate, seed), func(t *testing.T) {
				c, s1, s2, _ := resilientController(t)
				tapAllChannels(t, c, rate, seed)

				// LocalKeyInit + PortKeyInit for every switch and link.
				if _, err := c.InitAllKeys(); err != nil {
					t.Fatalf("InitAllKeys under %.0f%% loss: %v", rate*100, err)
				}
				assertLocalKeySync(t, c, s1, "s1")
				assertLocalKeySync(t, c, s2, "s2")
				assertPortKeySync(t, s1, s2, 1, 1)

				// LocalKeyUpdate + PortKeyUpdate for every switch and link.
				if _, err := c.UpdateAllKeys(); err != nil {
					t.Fatalf("UpdateAllKeys under %.0f%% loss: %v", rate*100, err)
				}
				assertLocalKeySync(t, c, s1, "s1")
				assertLocalKeySync(t, c, s2, "s2")
				assertPortKeySync(t, s1, s2, 1, 1)

				// The fabric must be fully operational on the rolled keys.
				if _, err := c.WriteRegister("s1", "lat", 3, 777); err != nil {
					t.Fatalf("write after lossy rollover: %v", err)
				}
				v, _, err := c.ReadRegister("s1", "lat", 3)
				if err != nil {
					t.Fatalf("read after lossy rollover: %v", err)
				}
				if v != 777 {
					t.Fatalf("read %d, want 777", v)
				}
			})
		}
	}
}

// TestKMPConvergesUnderCorruption runs the flows through bit-flipping taps
// (every 3rd packet corrupted in each direction). Corrupted requests bounce
// off the data plane's digest check as alerts; corrupted responses fail
// controller-side verification; both are retried with clean bytes.
func TestKMPConvergesUnderCorruption(t *testing.T) {
	c, s1, s2, _ := resilientController(t)
	for i, sw := range []string{"s1", "s2"} {
		if err := c.SetControlTaps(sw,
			netsim.CorruptTap(3, uint64(i)+10),
			netsim.CorruptTap(3, uint64(i)+20)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatalf("InitAllKeys under corruption: %v", err)
	}
	if _, err := c.UpdateAllKeys(); err != nil {
		t.Fatalf("UpdateAllKeys under corruption: %v", err)
	}
	assertLocalKeySync(t, c, s1, "s1")
	assertLocalKeySync(t, c, s2, "s2")
	assertPortKeySync(t, s1, s2, 1, 1)
	if len(c.Alerts()) == 0 {
		t.Error("corrupted requests should have raised alerts")
	}
}

// TestInterruptedRolloverResyncs is the transactional-rollover guarantee:
// a rollover whose key-exchange responses are all eaten must leave the
// controller and the switch agreeing on the active key version — the
// switch's half-installed key is rolled back, not half-activated.
func TestInterruptedRolloverResyncs(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, FlowRetries: 2})

	// Drop only key-exchange PacketIns: the handshake's responses vanish
	// (after the switch has already installed), while the register reads
	// and the rollback write of the resync procedure still work.
	dropKx := func(data []byte) []byte {
		if hdrType, _, ok := core.PeekControl(data); ok && hdrType == core.HdrKeyExch {
			return nil
		}
		return data
	}
	if err := c.SetControlTaps("s1", nil, dropKx); err != nil {
		t.Fatal(err)
	}

	_, ctlVerBefore, err := c.switches["s1"].keys.Current(core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyUpdate("s1"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("update with all kx responses dropped: err=%v, want ErrTimeout", err)
	}

	// The acceptance property: no one-sided activation. The switch was
	// rolled back to the last mutually-known version.
	assertLocalKeySync(t, c, s1, "s1")
	_, ctlVerAfter, err := c.switches["s1"].keys.Current(core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if ctlVerAfter != ctlVerBefore {
		t.Fatalf("controller version moved %d -> %d despite failed rollover", ctlVerBefore, ctlVerAfter)
	}

	// Still operational under the surviving key...
	if _, err := c.WriteRegister("s1", "lat", 1, 11); err != nil {
		t.Fatalf("write under surviving key: %v", err)
	}
	// ...and a clean channel completes the rollover where it left off.
	if err := c.SetControlTaps("s1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatalf("rollover after channel recovery: %v", err)
	}
	assertLocalKeySync(t, c, s1, "s1")
	if _, finalVer, _ := c.switches["s1"].keys.Current(core.KeyIndexLocal); finalVer != ctlVerBefore+1 {
		t.Fatalf("final version %d, want %d", finalVer, ctlVerBefore+1)
	}
}

// TestPortUpdateInterruptedRealigns kills the second DP-DP leg of a port
// key update so only the responder installs, then checks the controller
// detects the one-sided install and rebuilds a shared key at equal version
// numbers on both ends.
func TestPortUpdateInterruptedRealigns(t *testing.T) {
	c, s1, s2, _ := resilientController(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	assertPortKeySync(t, s1, s2, 1, 1)

	// s2 -> s1 is the ADHKD2 return leg of an s1-initiated update; eat it
	// for one flow attempt, then heal.
	legs := 0
	if err := c.SetLinkTap("s2", 1, func(data []byte) []byte {
		legs++
		if legs <= 1 {
			return nil
		}
		return data
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PortKeyUpdate("s1", 1); err != nil {
		t.Fatalf("port update with interrupted return leg: %v", err)
	}
	assertPortKeySync(t, s1, s2, 1, 1)
}

// TestQuarantineOnBlackhole checks the circuit breaker: a switch that
// stops answering entirely is marked degraded, then quarantined with an
// AlertUnreachable, operations fail fast, and ClearHealth restores it.
func TestQuarantineOnBlackhole(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, FlowRetries: 1})
	c.SetHealthPolicy(HealthPolicy{DegradeAfter: 1, QuarantineAfter: 2})

	blackhole := func([]byte) []byte { return nil }
	if err := c.SetControlTaps("s1", blackhole, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyUpdate("s1"); err == nil {
		t.Fatal("update through a blackhole should fail")
	}
	h, err := c.HealthOf("s1")
	if err != nil {
		t.Fatal(err)
	}
	if h.State != Quarantined {
		t.Fatalf("health after blackhole: %v (consecutive=%d), want quarantined", h.State, h.Consecutive)
	}
	var unreachable bool
	for _, a := range c.Alerts() {
		if a.Switch == "s1" && a.Reason == core.AlertUnreachable {
			unreachable = true
		}
	}
	if !unreachable {
		t.Error("quarantine did not emit AlertUnreachable")
	}

	// Circuit open: fail fast without touching the wire.
	sent := c.Stats().MessagesSent
	if _, _, err := c.ReadRegister("s1", "lat", 0); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("read while quarantined: err=%v, want ErrQuarantined", err)
	}
	if c.Stats().MessagesSent != sent {
		t.Error("quarantined operation still sent traffic")
	}

	// The untapped switch is unaffected.
	if _, err := c.LocalKeyInit("s2"); err != nil {
		t.Fatalf("healthy switch affected by s1 quarantine: %v", err)
	}

	// Operator repairs the channel and clears the breaker.
	if err := c.SetControlTaps("s1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.ClearHealth("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatalf("update after repair: %v", err)
	}
	assertLocalKeySync(t, c, s1, "s1")
	if h, _ := c.HealthOf("s1"); h.State != Healthy {
		t.Fatalf("health after repair: %v, want healthy", h.State)
	}
}

// TestBackoffAdvancesVirtualClock checks the retransmission waits run on
// the attached netsim clock with the deterministic exponential schedule.
func TestBackoffAdvancesVirtualClock(t *testing.T) {
	c, _, _, sim := resilientController(t)
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		FlowRetries: 0,
	})
	if err := c.SetControlTaps("s1", func([]byte) []byte { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ReadRegister("s1", "lat", 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("blackholed read: err=%v, want ErrTimeout", err)
	}
	// Attempt 2 waits 100µs, attempt 3 waits 200µs.
	if want := 300 * time.Microsecond; sim.Now() != want {
		t.Fatalf("virtual clock at %v after retries, want %v", sim.Now(), want)
	}
}

func TestRetryPolicyBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 500 * time.Microsecond}
	want := []time.Duration{0, 100 * time.Microsecond, 200 * time.Microsecond, 400 * time.Microsecond,
		500 * time.Microsecond, 500 * time.Microsecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Errorf("backoff(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (RetryPolicy{MaxAttempts: 4}).backoff(3); got != 0 {
		t.Errorf("zero BaseBackoff must not wait, got %v", got)
	}
}

// TestObserversSafeDuringExchanges (run with -race) hammers the
// observability accessors from other goroutines while the controller works
// a lossy channel.
func TestObserversSafeDuringExchanges(t *testing.T) {
	c, _, _, _ := resilientController(t)
	tapAllChannels(t, c, 0.15, 7)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = c.Stats()
				_ = c.Alerts()
				_, _ = c.Outstanding("s1")
				_, _ = c.HealthOf("s1")
				_ = c.CheckDoS(1)
			}
		}()
	}
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatalf("InitAllKeys during concurrent observation: %v", err)
	}
	if _, err := c.UpdateAllKeys(); err != nil {
		t.Fatalf("UpdateAllKeys during concurrent observation: %v", err)
	}
	close(stop)
	wg.Wait()
	if c.Stats().MessagesSent == 0 {
		t.Error("no traffic accounted")
	}
}
