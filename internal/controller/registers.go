package controller

import (
	"fmt"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/obs"
)

// ReadRegister performs an authenticated register read (the P4Auth path of
// Fig. 8/15): a signed readReq PacketOut, digest-verified ack PacketIn.
// With a retransmission policy set, lost or corrupted rounds are retried.
func (c *Controller) ReadRegister(sw, register string, index uint32) (uint64, time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, 0, err
	}
	value, x, err := c.regRead(h, register, index)
	lat := x.lat + SignCost + VerifyCost
	k := c.obsv()
	if err == nil {
		k.readOK.Inc()
		k.readNs.Observe(uint64(lat))
	} else {
		k.readErr.Inc()
	}
	return value, lat, err
}

// WriteRegister performs an authenticated register write. With crash
// safety enabled the write is journaled: an intent entry lands in the
// store before the first wire send and is settled (deleted on success,
// marked failed otherwise) before this returns — so the only way an
// intent survives is a crash mid-write, exactly the case recovery must
// disambiguate by read-back.
func (c *Controller) WriteRegister(sw, register string, index uint32, value uint64) (time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, err
	}
	jid, jerr := c.walBegin(sw, register, index, value)
	if jerr != nil {
		return 0, fmt.Errorf("controller: journal write intent: %w", jerr)
	}
	x, err := c.regWrite(h, register, index, value)
	c.walSettle(sw, jid, err == nil, register, index, value)
	lat := x.lat + SignCost + VerifyCost
	k := c.obsv()
	if err == nil {
		k.writeOK.Inc()
		k.writeNs.Observe(uint64(lat))
	} else {
		k.writeErr.Inc()
		k.writeDropped.Inc()
		k.audit(obs.EvWriteDropped, sw, causeOf(err), 0, value)
	}
	return lat, err
}

// regRead is the transact-based register read used by both the public API
// and the KMP recovery procedures (which need the traffic accounting).
// It is allocation-free on the happy path: the request is built in the
// handle's scratch under opMu and the response is consumed before the
// lock is released (x.resp never escapes).
func (c *Controller) regRead(h *swHandle, register string, index uint32) (uint64, xfer, error) {
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return 0, xfer{}, err
	}
	h.opMu.Lock()
	defer h.opMu.Unlock()
	req, err := h.scratchRequest(core.MsgReadReq, ri.ID, index, 0)
	if err != nil {
		return 0, xfer{}, err
	}
	x, err := c.transactLocked(h, req, true)
	resp := x.resp
	x.resp = nil
	if err != nil {
		return 0, x, err
	}
	if len(resp) != 1 {
		return 0, x, fmt.Errorf("controller: %s: %d responses to readReq", h.name, len(resp))
	}
	r := resp[0]
	if r.MsgType == core.MsgNAck {
		return 0, x, fmt.Errorf("%w: read %s[%d] on %s", ErrNAck, register, index, h.name)
	}
	value := r.Reg.Value
	if h.cfg.Encrypt {
		key, err := h.keys.At(core.KeyIndexLocal, r.KeyVersion)
		if err != nil {
			return 0, x, err
		}
		value = core.EncryptResponseValue(h.dig, key, r.SeqNum, value)
	}
	return value, x, nil
}

// regWrite is the transact-based register write (same zero-allocation
// discipline as regRead; the §XI encrypt-then-MAC variant is handled
// inside scratchRequest, which reserves the sequence number before
// encrypting).
func (c *Controller) regWrite(h *swHandle, register string, index uint32, value uint64) (xfer, error) {
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return xfer{}, err
	}
	h.opMu.Lock()
	defer h.opMu.Unlock()
	req, err := h.scratchRequest(core.MsgWriteReq, ri.ID, index, value)
	if err != nil {
		return xfer{}, err
	}
	x, err := c.transactLocked(h, req, true)
	resp := x.resp
	x.resp = nil
	if err != nil {
		return x, err
	}
	if len(resp) != 1 {
		return x, fmt.Errorf("controller: %s: %d responses to writeReq", h.name, len(resp))
	}
	if resp[0].MsgType == core.MsgNAck {
		return x, fmt.Errorf("%w: write %s[%d] on %s", ErrNAck, register, index, h.name)
	}
	return x, nil
}

// ReadRegisterInsecure is the DP-Reg-RW baseline read: same PacketOut
// path, no digests (requires a switch built with Config.Insecure).
func (c *Controller) ReadRegisterInsecure(sw, register string, index uint32) (uint64, time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, 0, err
	}
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return 0, 0, err
	}
	req := &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgReadReq, SeqNum: h.seq.Next()},
		Reg:    &core.RegPayload{RegID: ri.ID, Index: index},
	}
	resp, lat, err := c.exchange(h, req)
	if err != nil {
		return 0, lat, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgAck {
		return 0, lat, fmt.Errorf("controller: %s: insecure read failed", sw)
	}
	_ = h.seq.Settle(resp[0].SeqNum)
	return resp[0].Reg.Value, lat, nil
}

// WriteRegisterInsecure is the DP-Reg-RW baseline write.
func (c *Controller) WriteRegisterInsecure(sw, register string, index uint32, value uint64) (time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, err
	}
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return 0, err
	}
	req := &core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: core.MsgWriteReq, SeqNum: h.seq.Next()},
		Reg:    &core.RegPayload{RegID: ri.ID, Index: index, Value: value},
	}
	resp, lat, err := c.exchange(h, req)
	if err != nil {
		return lat, err
	}
	if len(resp) != 1 || resp[0].MsgType != core.MsgAck {
		return lat, fmt.Errorf("controller: %s: insecure write failed", sw)
	}
	_ = h.seq.Settle(resp[0].SeqNum)
	return lat, nil
}

// ReadRegisterAPI is the P4Runtime baseline read: the full API stack
// (agent, SDK, driver) rather than PacketOut, per §IX-B's first variant.
func (c *Controller) ReadRegisterAPI(sw, register string, index uint32) (uint64, time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, 0, err
	}
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return 0, 0, err
	}
	v, cost, err := h.host.APIRegisterRead(ri.ID, index)
	return v, cost + 2*h.linkLat, err
}

// WriteRegisterAPI is the P4Runtime baseline write.
func (c *Controller) WriteRegisterAPI(sw, register string, index uint32, value uint64) (time.Duration, error) {
	h, err := c.handle(sw)
	if err != nil {
		return 0, err
	}
	ri, err := h.info.RegisterByName(register)
	if err != nil {
		return 0, err
	}
	cost, err := h.host.APIRegisterWrite(ri.ID, index, value)
	return cost + 2*h.linkLat, err
}
