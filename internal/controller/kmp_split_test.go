package controller

import (
	"errors"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
)

// splitPair builds two switches owned by two DIFFERENT controllers —
// the cross-pod shape the split exchange exists for — with local keys
// established.
func splitPair(t *testing.T) (*Controller, *Controller, *deploy.Switch, *deploy.Switch) {
	t.Helper()
	s1 := buildSwitch(t, "s1", false)
	s2 := buildSwitch(t, "s2", false)
	cA := New(crypto.NewSeededRand(31))
	cB := New(crypto.NewSeededRand(32))
	if err := cA.Register("s1", s1.Host, s1.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := cB.Register("s2", s2.Host, s2.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cB.LocalKeyInit("s2"); err != nil {
		t.Fatal(err)
	}
	return cA, cB, s1, s2
}

// runSplit performs one full split exchange between the two controllers
// and returns the agreed post-exchange version.
func runSplit(t *testing.T, cA, cB *Controller) uint8 {
	t.Helper()
	pk1, salt1, ver, _, err := cA.PortKeyExchOpen("s1", 1)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	pk2, salt2, _, err := cB.PortKeyExchRemote("s2", 1, pk1, salt1, ver)
	if err != nil {
		t.Fatalf("remote: %v", err)
	}
	if _, err := cA.PortKeyExchClose("s1", 1, pk2, salt2, ver+1); err != nil {
		t.Fatalf("close: %v", err)
	}
	return ver + 1
}

func TestPortKeyExchSplitAgreesAcrossControllers(t *testing.T) {
	cA, cB, s1, s2 := splitPair(t)
	want := runSplit(t, cA, cB)
	if want != 1 {
		t.Fatalf("post-exchange version = %d, want 1", want)
	}
	// Both data planes hold the same derived port key (version 1 -> odd
	// register) and neither controller ever learned it.
	k1, err := s1.Host.SW.RegisterRead(core.RegKeysV1, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s2.Host.SW.RegisterRead(core.RegKeysV1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == 0 || k1 != k2 {
		t.Fatalf("split port keys disagree: s1=%#x s2=%#x", k1, k2)
	}
	// A second exchange rolls both slots to version 2 with a fresh key.
	if got := runSplit(t, cA, cB); got != 2 {
		t.Fatalf("second exchange version = %d, want 2", got)
	}
	k1b, _ := s1.Host.SW.RegisterRead(core.RegKeysV0, 1)
	k2b, _ := s2.Host.SW.RegisterRead(core.RegKeysV0, 1)
	if k1b == 0 || k1b != k2b || k1b == k1 {
		t.Fatalf("rolled keys wrong: %#x %#x (old %#x)", k1b, k2b, k1)
	}
}

func TestPortKeyExchRemoteRealignsLaggingSlot(t *testing.T) {
	cA, cB, s1, s2 := splitPair(t)
	// Drive s1 one install ahead with a local throwaway, as if an earlier
	// split exchange died after the remote leg ran on the OTHER side.
	if _, err := cA.RealignPortSlot("s1", 1, 1); err != nil {
		t.Fatal(err)
	}
	// The split exchange must still converge: Remote sees ver=1 against
	// its own slot at 0, realigns forward, and both end at 2.
	want := runSplit(t, cA, cB)
	if want != 2 {
		t.Fatalf("post-exchange version = %d, want 2", want)
	}
	v1, _ := s1.Host.SW.RegisterRead(core.RegVer, 1)
	v2, _ := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if v1 != 2 || v2 != 2 {
		t.Fatalf("slot versions %d/%d, want 2/2", v1, v2)
	}
	k1, _ := s1.Host.SW.RegisterRead(core.RegKeysV0, 1)
	k2, _ := s2.Host.SW.RegisterRead(core.RegKeysV0, 1)
	if k1 == 0 || k1 != k2 {
		t.Fatalf("keys disagree after realigned exchange: %#x %#x", k1, k2)
	}
}

func TestPortKeyExchRemoteRefusesAheadSlot(t *testing.T) {
	cA, cB, _, _ := splitPair(t)
	// Remote slot runs ahead of the initiator's claimed version.
	if _, err := cB.RealignPortSlot("s2", 1, 2); err != nil {
		t.Fatal(err)
	}
	pk1, salt1, ver, _, err := cA.PortKeyExchOpen("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = cB.PortKeyExchRemote("s2", 1, pk1, salt1, ver)
	var skew *KeySkewError
	if !errors.As(err, &skew) {
		t.Fatalf("remote against an ahead slot: err=%v, want KeySkewError", err)
	}
	if !skew.PeerAhead() || skew.VerB != 2 {
		t.Fatalf("skew = %+v, want remote ahead at 2", skew)
	}
	// The initiator realigns up to the remote's version and restarts;
	// the retry converges.
	if _, err := cA.RealignPortSlot("s1", 1, skew.VerB); err != nil {
		t.Fatal(err)
	}
	if got := runSplit(t, cA, cB); got != 3 {
		t.Fatalf("post-repair version = %d, want 3", got)
	}
}

func TestRealignPortSlotRefusesBackward(t *testing.T) {
	cA, _, _, _ := splitPair(t)
	if _, err := cA.RealignPortSlot("s1", 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := cA.RealignPortSlot("s1", 1, 1); err == nil {
		t.Fatal("backward realign accepted")
	}
}
