package controller

import (
	"errors"
	"fmt"

	"p4auth/internal/core"
	"p4auth/internal/obs"
)

// This file is the resilient (opt-in, SetRetryPolicy with MaxAttempts > 1)
// implementation of the four KMP flows. The legacy single-shot flows in
// kmp.go preserve the paper's exact message counts (Table III); these
// trade extra confirm/rollback messages for convergence under loss and
// corruption.
//
// The recovery machinery leans on three data-plane invariants:
//
//  1. Signed-before-install: a kx response is signed with the key its
//     request verified under, before the new key is written. A verified
//     response therefore PROVES the switch completed its install.
//  2. One-install survival: an install writes the slot's inactive version
//     bit, so the previously shared key survives exactly one unconfirmed
//     install. Recovery must run — and roll back — before any second
//     install touches the slot.
//  3. Paired port installs: port-slot version counters only move in pairs
//     (one install on each link end per exchange), so unequal counters on
//     a link's two ends pinpoint an interrupted exchange, and equality can
//     be restored by playing one extra controller-driven ADHKD against the
//     lagging slot.

// localKeyInitResilient runs EAK then ADHKD, each as an independently
// retried and resynced flow.
func (c *Controller) localKeyInitResilient(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult
	if err := c.runLocalFlow(h, &res, func() error { return c.eakStep(h, &res) }); err != nil {
		return res, err
	}
	if err := c.runLocalFlow(h, &res, func() error { return c.adhkdStep(h, &res) }); err != nil {
		return res, err
	}
	return res, nil
}

// localKeyUpdateResilient runs one resynced ADHKD rollover.
func (c *Controller) localKeyUpdateResilient(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	if !h.keys.Established(core.KeyIndexLocal) {
		return KMPResult{}, fmt.Errorf("controller: %s: no local key to update", sw)
	}
	var res KMPResult
	err = c.runLocalFlow(h, &res, func() error { return c.adhkdStep(h, &res) })
	return res, err
}

// runLocalFlow executes one local-slot handshake step, resyncing the key
// state after every failure — before a retry because a fresh handshake on
// top of an unconfirmed install would overwrite the shared key, and after
// the final failure because rollback IS the transaction abort: both sides
// end on the last mutually-known version.
func (c *Controller) runLocalFlow(h *swHandle, res *KMPResult, step func() error) error {
	pol := c.retryPolicy()
	var err error
	for attempt := 0; attempt <= pol.FlowRetries; attempt++ {
		err = step()
		if err == nil || errors.Is(err, ErrQuarantined) {
			return err
		}
		if rerr := c.resyncLocal(h, res); rerr != nil {
			return fmt.Errorf("controller: %s: resync failed: %v (after: %w)", h.name, rerr, err)
		}
	}
	return err
}

// eakStep is one EAK exchange with transactional key activation.
func (c *Controller) eakStep(h *swHandle, res *KMPResult) error {
	_, oldVer, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return err
	}
	c.countSeedUse(h.name)
	eak := core.NewEAK(h.cfg, c.rng)
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgEAKSalt1, nil, &core.KxPayload{Salt: eak.S1})
	if err != nil {
		return err
	}
	x, err := c.transact(h, req, true)
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		return err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgEAKSalt2 {
		return fmt.Errorf("controller: %s: unexpected EAK response", h.name)
	}
	kauth, err := eak.Complete(x.resp[0].Kx.Salt)
	if err != nil {
		return err
	}
	return c.commitLocalKey(h, res, oldVer, kauth)
}

// adhkdStep is one local ADHKD exchange with transactional key activation.
func (c *Controller) adhkdStep(h *swHandle, res *KMPResult) error {
	_, oldVer, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return err
	}
	adhkd := core.NewADHKD(h.cfg, c.rng)
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
		&core.KxPayload{PK: adhkd.PK1(), Salt: adhkd.S1})
	if err != nil {
		return err
	}
	x, err := c.transact(h, req, true)
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		return err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD2 {
		return fmt.Errorf("controller: %s: unexpected ADHKD response", h.name)
	}
	klocal, err := adhkd.Complete(x.resp[0].Kx.PK, x.resp[0].Kx.Salt)
	if err != nil {
		return err
	}
	return c.commitLocalKey(h, res, oldVer, klocal)
}

// commitLocalKey is the prepare/confirm/commit sequence of a local-slot
// rollover. The derived key is staged (invisible to Current/At), the
// switch's install is confirmed by reading pa_ver[0] — a request that runs
// under the OLD key precisely because the staged key is not yet active —
// and only then does the controller flip versions. Any failure aborts the
// staged key, leaving the controller on the last mutually-known version
// for resyncLocal to work with.
func (c *Controller) commitLocalKey(h *swHandle, res *KMPResult, oldVer uint8, key uint64) error {
	if err := h.keys.Prepare(core.KeyIndexLocal, key); err != nil {
		return err
	}
	swVer, x, err := c.regRead(h, core.RegVer, uint32(core.KeyIndexLocal))
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		_ = h.keys.Abort(core.KeyIndexLocal)
		return err
	}
	if uint8(swVer) != oldVer+1 {
		_ = h.keys.Abort(core.KeyIndexLocal)
		return fmt.Errorf("%w: %s: install not confirmed (pa_ver=%d, want %d)",
			ErrTampered, h.name, uint8(swVer), oldVer+1)
	}
	newVer, err := h.keys.Commit(core.KeyIndexLocal)
	if err != nil {
		return err
	}
	if newVer != oldVer+1 {
		return fmt.Errorf("controller: %s: committed version %d, expected %d", h.name, newVer, oldVer+1)
	}
	return nil
}

// ResyncLocalKey detects and repairs key-version drift between the
// controller and a switch's local slot after an interrupted rollover: it
// reads pa_ver[0] under the controller's current key and, if the switch
// ran one install ahead (it installed a key whose response was lost),
// rolls the switch back to the last mutually-known version with an
// authenticated register write. Larger drift is unrecoverable here and
// needs Reinitialize.
func (c *Controller) ResyncLocalKey(sw string) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult
	err = c.resyncLocal(h, &res)
	return res, err
}

func (c *Controller) resyncLocal(h *swHandle, res *KMPResult) error {
	_ = h.keys.Abort(core.KeyIndexLocal)
	_, ctlVer, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return err
	}
	swVer64, x, err := c.regRead(h, core.RegVer, uint32(core.KeyIndexLocal))
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		return err
	}
	switch swVer := uint8(swVer64); swVer {
	case ctlVer:
		// Aligned: the loss hit a request (or the handshake never reached
		// the install), nothing to undo.
		return nil
	case ctlVer + 1:
		// The switch installed a key the controller never learned. Roll it
		// back BEFORE any fresh handshake: a second install on top would
		// overwrite the old key's version slot and destroy the last shared
		// secret (the liveness gap documented at core.FactoryReset).
		wx, err := c.regWrite(h, core.RegVer, uint32(core.KeyIndexLocal), uint64(ctlVer))
		res.account(wx)
		res.RTT += SignCost + VerifyCost
		if err == nil {
			k := c.obsv()
			k.rolloverRollback.Inc()
			k.audit(obs.EvRolloverRollback, h.name, CauseSwitchAheadResync, 0, uint64(ctlVer))
		}
		return err
	default:
		return fmt.Errorf("controller: %s: unrecoverable key drift (switch pa_ver=%d, controller=%d); Reinitialize required",
			h.name, uint8(swVer64), ctlVer)
	}
}

// portKeyInitResilient is the retried form of Fig. 14(c) with counter
// realignment and a confirmed final leg.
func (c *Controller) portKeyInitResilient(a string, pa int, b string, pb int) (KMPResult, error) {
	ha, err := c.handle(a)
	if err != nil {
		return KMPResult{}, err
	}
	hb, err := c.handle(b)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult
	pol := c.retryPolicy()
	for attempt := 0; ; attempt++ {
		err = c.tryPortKeyInit(ha, pa, hb, pb, &res)
		if err == nil || errors.Is(err, ErrQuarantined) || attempt >= pol.FlowRetries {
			return res, err
		}
	}
}

// tryPortKeyInit runs one full port-key initialization: realign the two
// slots' install counters if an earlier exchange left them unequal, then
// the five legs of Fig. 14(c), with the response-less fifth leg confirmed
// by reading the initiator's slot version and resent until it lands.
func (c *Controller) tryPortKeyInit(ha *swHandle, pa int, hb *swHandle, pb int, res *KMPResult) error {
	return c.tryPortKeyInitFenced(ha, pa, hb, pb, res, nil)
}

// tryPortKeyInitFenced is tryPortKeyInit gated by an optional epoch fence:
// the fence runs before the realign phase, before each protocol leg, and
// before every resend of the confirm loop, so a superseded repair attempt
// stops where it stands instead of installing on top of its successor's
// key state.
func (c *Controller) tryPortKeyInitFenced(ha *swHandle, pa int, hb *swHandle, pb int, res *KMPResult, fence func() error) error {
	if fence != nil {
		if err := fence(); err != nil {
			return err
		}
	}
	verA, err := c.readPortVer(ha, pa, res)
	if err != nil {
		return err
	}
	verB, err := c.readPortVer(hb, pb, res)
	if err != nil {
		return err
	}
	if verA != verB {
		skew := &KeySkewError{A: ha.name, PA: pa, B: hb.name, PB: pb, VerA: verA, VerB: verB}
		if err := c.realignPortSlots(ha, pa, verA, hb, pb, verB, res); err != nil {
			return wrapSkew(err, skew)
		}
		if int8(verB-verA) > 0 {
			verA = verB
		} else {
			verB = verA
		}
	}
	want := verA + 1
	if fence != nil {
		if err := fence(); err != nil {
			return err
		}
	}

	// Legs 1-2: portKeyInit to A; A answers with its ADHKD1.
	req, err := ha.signedMessage(core.HdrKeyExch, core.MsgPortKeyInit, nil,
		&core.KxPayload{Port: uint16(pa)})
	if err != nil {
		return err
	}
	x, err := c.transact(ha, req, true)
	res.account(x)
	if err != nil {
		return err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD1 {
		return fmt.Errorf("controller: %s: unexpected portKeyInit response", ha.name)
	}
	pk1, s1 := x.resp[0].Kx.PK, x.resp[0].Kx.Salt
	if fence != nil {
		if err := fence(); err != nil {
			return err
		}
	}

	// Legs 3-4: redirect ADHKD1 to B; the verified ADHKD2 response proves
	// B installed (signed-before-install), so B needs no confirm read.
	req, err = hb.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
		&core.KxPayload{Port: uint16(pb), PK: pk1, Salt: s1})
	if err != nil {
		return err
	}
	x, err = c.transact(hb, req, true)
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		return err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD2 {
		return fmt.Errorf("controller: %s: unexpected redirected ADHKD response", hb.name)
	}
	pk2, s2 := x.resp[0].Kx.PK, x.resp[0].Kx.Salt

	// Leg 5: redirect ADHKD2 back to A. No response exists to retransmit
	// on, so confirmation is by state: read pa_ver[pa] and resend the same
	// bytes until the install shows. Duplicates of an already-processed
	// leg are absorbed by the agent's idempotency cache.
	req, err = ha.signedMessage(core.HdrKeyExch, core.MsgADHKD2, nil,
		&core.KxPayload{Port: uint16(pa), PK: pk2, Salt: s2})
	if err != nil {
		return err
	}
	pol := c.retryPolicy()
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if fence != nil {
			if err := fence(); err != nil {
				return err
			}
		}
		if wait := pol.backoff(attempt); wait > 0 {
			res.RTT += wait
			c.mu.Lock()
			clk := c.clock
			c.mu.Unlock()
			if clk != nil {
				clk.Advance(wait)
			}
		}
		x, lerr := c.transact(ha, req, false)
		res.account(x)
		res.RTT += SignCost
		if lerr != nil && errors.Is(lerr, ErrQuarantined) {
			return lerr
		}
		// Even a nominally failed send may have landed (an alert only
		// proves one mangled copy); the version read is the truth.
		got, err := c.readPortVer(ha, pa, res)
		if err != nil {
			return err
		}
		if got == want {
			return nil
		}
	}
	c.noteFailure(ha)
	return fmt.Errorf("%w: %s: port %d install never confirmed", ErrTimeout, ha.name, pa)
}

// portKeyUpdateResilient is the retried form of Fig. 14(d). The update's
// two DP-DP legs run under the current shared port key, so it only works
// from an aligned state; any partial outcome (one side installed) is
// repaired by falling back to a full, realigning port-key init.
func (c *Controller) portKeyUpdateResilient(a string, pa int) (KMPResult, error) {
	ha, err := c.handle(a)
	if err != nil {
		return KMPResult{}, err
	}
	peer, ok := c.peerOf(a, pa)
	if !ok {
		return KMPResult{}, fmt.Errorf("controller: %s port %d has no registered peer", a, pa)
	}
	hb, err := c.handle(peer.sw)
	if err != nil {
		return KMPResult{}, err
	}
	pb := peer.port
	var res KMPResult
	pol := c.retryPolicy()

	verA0, err := c.readPortVer(ha, pa, &res)
	if err != nil {
		return res, err
	}
	verB0, err := c.readPortVer(hb, pb, &res)
	if err != nil {
		return res, err
	}
	if verA0 != verB0 {
		// Drifted before we even started: no shared port key exists for
		// the DP-DP legs to authenticate under. Rebuild via init, and if
		// even that fails surface the skew as a typed cause — the caller
		// must resync (full init), not merely retry the update.
		skew := &KeySkewError{A: a, PA: pa, B: peer.sw, PB: pb, VerA: verA0, VerB: verB0}
		err = c.tryPortKeyInit(ha, pa, hb, pb, &res)
		return res, wrapSkew(err, skew)
	}
	want := verA0 + 1

	for attempt := 0; attempt <= pol.FlowRetries; attempt++ {
		req, err := ha.signedMessage(core.HdrKeyExch, core.MsgPortKeyUpdate, nil,
			&core.KxPayload{Port: uint16(pa)})
		if err != nil {
			return res, err
		}
		x, lerr := c.transact(ha, req, false)
		res.account(x)
		res.RTT += SignCost
		if lerr != nil && errors.Is(lerr, ErrQuarantined) {
			return res, lerr
		}
		// The command may have landed even if every copy we watched was
		// mangled; the paired version reads below are the truth.
		verA, err := c.readPortVer(ha, pa, &res)
		if err != nil {
			return res, err
		}
		verB, err := c.readPortVer(hb, pb, &res)
		if err != nil {
			return res, err
		}
		switch {
		case verA == want && verB == want:
			// Both DP-DP legs landed; count them like the legacy flow.
			if rb, eerr := req.Encode(); eerr == nil {
				res.Messages += 2
				res.Bytes += 2 * len(rb)
			}
			return res, nil
		case verA == verA0 && verB == verB0:
			// Nothing moved: the command or the first DP-DP leg was lost.
			// A fresh command restarts cleanly (the initiator's stashed
			// nonce is simply overwritten).
			continue
		default:
			// Partial: one side installed, the other did not (a lost
			// ADHKD2 leg). The shared key is gone; realign the counters
			// and rebuild with a full init. A failure keeps the skew as
			// its typed cause so callers know a resync is still owed.
			skew := &KeySkewError{A: a, PA: pa, B: peer.sw, PB: pb, VerA: verA, VerB: verB}
			err = c.tryPortKeyInit(ha, pa, hb, pb, &res)
			return res, wrapSkew(err, skew)
		}
	}
	return res, fmt.Errorf("%w: %s: port %d update never took effect", ErrTimeout, ha.name, pa)
}

// readPortVer reads a port slot's install counter (pa_ver[port]).
func (c *Controller) readPortVer(h *swHandle, port int, res *KMPResult) (uint8, error) {
	v, x, err := c.regRead(h, core.RegVer, uint32(port))
	res.account(x)
	res.RTT += SignCost + VerifyCost
	return uint8(v), err
}

// realignPortSlots restores the paired-install invariant on a link whose
// ends disagree: the lagging side is driven through controller-played
// ADHKD exchanges (one per missing install) against its port slot. The
// keys these installs derive are throwaways — known to the controller and
// the lagging switch only — valid solely to make the counters equal; the
// caller must follow with a full port-key init to establish a usable
// shared key at equal version numbers on both ends (the DP-DP probe
// authentication of §VII selects keys by version tag, so equal numbering
// is part of the contract, not cosmetics).
func (c *Controller) realignPortSlots(ha *swHandle, pa int, verA uint8, hb *swHandle, pb int, verB uint8, res *KMPResult) error {
	diff := int8(verA - verB)
	lagH, lagPort, n := hb, pb, int(diff)
	if diff < 0 {
		lagH, lagPort, n = ha, pa, int(-diff)
	}
	for i := 0; i < n; i++ {
		adhkd := core.NewADHKD(lagH.cfg, c.rng)
		req, err := lagH.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
			&core.KxPayload{Port: uint16(lagPort), PK: adhkd.PK1(), Salt: adhkd.S1})
		if err != nil {
			return err
		}
		x, err := c.transact(lagH, req, true)
		res.account(x)
		res.RTT += SignCost + VerifyCost
		if err != nil {
			return fmt.Errorf("controller: realign %s port %d: %w", lagH.name, lagPort, err)
		}
		if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD2 {
			return fmt.Errorf("controller: realign %s port %d: unexpected response", lagH.name, lagPort)
		}
	}
	return nil
}
