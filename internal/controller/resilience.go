package controller

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
)

// ErrTimeout is returned when a control-channel exchange exhausts its
// retransmission budget without a verifiable response.
var ErrTimeout = errors.New("controller: retransmission budget exhausted")

// ErrQuarantined is returned for operations on a switch the health tracker
// has circuit-broken after repeated unreachability.
var ErrQuarantined = errors.New("controller: switch is quarantined")

// ErrKilled is returned by operations on a controller after Kill(): the
// crashed process can neither send nor persist.
var ErrKilled = errors.New("controller: controller process is dead")

// ErrFenced is returned when a send is refused by the lease fence: the
// controller replica no longer holds (or never held) the HA ownership
// lease at its epoch. A deposed active hits this on its first wire
// attempt after supersession — the write dies here, before any signed
// bytes leave the process.
var ErrFenced = errors.New("controller: send refused by lease fence")

// SetSendFence installs a fence consulted before every signed wire send
// (both the serial and the batch exchange path). A nil return admits the
// send; any error refuses it, and ErrFenced (possibly wrapped) marks a
// lease-fencing refusal for audit classification. The fence runs without
// c.mu held and must not call back into this controller.
func (c *Controller) SetSendFence(f func() error) {
	c.mu.Lock()
	c.fence = f
	c.mu.Unlock()
}

// AlertError is a verified data-plane alert that failed an exchange: the
// switch proved (under the shared key) that it rejected our request.
// Callers unwrap it with errors.As to distinguish a replay rejection —
// the restored-floor signature the recovery protocol heals by skipping
// the sequence counter forward — from a digest rejection, which signals
// key drift.
type AlertError struct {
	Switch string
	Reason uint8 // core.AlertBadDigest or core.AlertReplay
	Seq    uint32
}

func (e *AlertError) Error() string {
	return fmt.Sprintf("controller: %s raised alert reason %d for seq %d", e.Switch, e.Reason, e.Seq)
}

// RetryPolicy bounds the controller's retransmission behaviour on the
// control channel. The zero value and DefaultRetryPolicy (MaxAttempts 1)
// disable retransmission entirely, preserving the paper's exact message
// counts (Table III); SetRetryPolicy with MaxAttempts > 1 opts a
// controller into the resilient engine.
type RetryPolicy struct {
	// MaxAttempts is the number of times one message is sent before the
	// exchange fails with ErrTimeout. 1 = no retransmission (legacy).
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt; attempt n waits
	// BaseBackoff << (n-2), capped at MaxBackoff. Deterministic: fault
	// injection under a seeded tap replays identically.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential schedule.
	MaxBackoff time.Duration
	// FlowRetries is how many times a multi-message KMP flow is re-run
	// from a clean, resynced key state after a transport failure.
	FlowRetries int
}

// DefaultRetryPolicy is the legacy single-shot behaviour.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 1}

// ResilientRetryPolicy returns the recommended opt-in policy: enough
// budget to converge through 20% bidirectional loss with overwhelming
// probability, with sub-millisecond virtual backoff.
func ResilientRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  2 * time.Millisecond,
		FlowRetries: 3,
	}
}

// backoff returns the deterministic wait before the given attempt
// (attempt 2 waits BaseBackoff; each further attempt doubles, capped).
// Doubling saturates at the top of the time.Duration range, so a huge
// attempt number with no MaxBackoff cannot overflow into a negative (and
// therefore zero-length) wait.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	if attempt <= 1 || p.BaseBackoff <= 0 {
		return 0
	}
	const maxDuration = time.Duration(1<<63 - 1)
	d := p.BaseBackoff
	for i := 2; i < attempt; i++ {
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
		if d > maxDuration/2 {
			d = maxDuration
			break
		}
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// Clock is the virtual clock the retransmission engine waits on. A
// netsim.Sim satisfies it; without one the controller only accounts the
// backoff into the modeled latency.
type Clock interface {
	Advance(d time.Duration)
}

// HealthState classifies a switch's control-channel reachability.
type HealthState int

const (
	// Healthy: recent exchanges completed within the retry budget.
	Healthy HealthState = iota
	// Degraded: some exchanges exhausted their budget; the switch is
	// still served but the operator should investigate.
	Degraded
	// Quarantined: consecutive failures crossed the circuit-breaker
	// threshold; operations fail fast with ErrQuarantined until
	// ClearHealth.
	Quarantined
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	}
	return fmt.Sprintf("HealthState(%d)", int(s))
}

// HealthPolicy sets the consecutive-failure thresholds of the per-switch
// circuit breaker. Failures are counted per exchange that exhausts its
// retransmission budget; any verified success resets the streak.
type HealthPolicy struct {
	DegradeAfter    int
	QuarantineAfter int
}

// DefaultHealthPolicy degrades after 2 consecutive budget exhaustions and
// quarantines after 4.
var DefaultHealthPolicy = HealthPolicy{DegradeAfter: 2, QuarantineAfter: 4}

// Health is a switch's reachability record.
type Health struct {
	State       HealthState
	Consecutive int // current failure streak
	Failures    int // total budget exhaustions
}

// SetRetryPolicy opts the controller into (or out of) the resilient
// exchange engine.
func (c *Controller) SetRetryPolicy(p RetryPolicy) {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p
}

// SetHealthPolicy replaces the circuit-breaker thresholds.
func (c *Controller) SetHealthPolicy(p HealthPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.healthPol = p
}

// UseClock attaches a virtual clock (e.g. a netsim.Sim) that retransmission
// backoff advances.
func (c *Controller) UseClock(clk Clock) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clk
}

// SetControlTaps installs fault-injection taps on a switch's control
// channel: out sees every PacketOut the controller emits, in sees every
// PacketIn before the controller parses it. A nil return drops the packet.
// Pass nil taps to clear.
func (c *Controller) SetControlTaps(sw string, out, in netsim.Tap) error {
	h, err := c.handle(sw)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h.outTap, h.inTap = out, in
	return nil
}

// SetLinkTap installs a tap on the DP-DP emissions leaving a switch port
// (relayed across the registered adjacency). A nil return drops the leg.
func (c *Controller) SetLinkTap(sw string, port int, tap netsim.Tap) error {
	if _, err := c.handle(sw); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tap == nil {
		delete(c.linkTaps, portKey{sw, port})
	} else {
		c.linkTaps[portKey{sw, port}] = tap
	}
	return nil
}

// HealthOf returns the reachability record for a switch.
func (c *Controller) HealthOf(sw string) (Health, error) {
	if _, err := c.handle(sw); err != nil {
		return Health{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.health[sw]; ok {
		return *h, nil
	}
	return Health{}, nil
}

// ClearHealth resets a switch's circuit breaker (the operator declaring it
// repaired).
func (c *Controller) ClearHealth(sw string) error {
	if _, err := c.handle(sw); err != nil {
		return err
	}
	c.mu.Lock()
	wasQuarantined := false
	if rec, ok := c.health[sw]; ok && rec.State == Quarantined {
		wasQuarantined = true
	}
	delete(c.health, sw)
	c.mu.Unlock()
	if wasQuarantined {
		k := c.obsv()
		k.quarantineLeave.Inc()
		k.audit(obs.EvQuarantineLeave, sw, CauseOperatorClear, 0, 0)
	}
	return nil
}

// resilient reports whether the retransmission engine is enabled.
func (c *Controller) resilient() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry.MaxAttempts > 1
}

func (c *Controller) retryPolicy() RetryPolicy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retry
}

// noteSuccess resets a switch's failure streak.
func (c *Controller) noteSuccess(h *swHandle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := c.health[h.name]; ok && rec.State != Quarantined {
		rec.Consecutive = 0
		rec.State = Healthy
	}
}

// noteFailure records a budget exhaustion and trips the circuit breaker at
// the policy thresholds, emitting an AlertUnreachable on quarantine.
func (c *Controller) noteFailure(h *swHandle) {
	c.mu.Lock()
	rec, ok := c.health[h.name]
	if !ok {
		rec = &Health{}
		c.health[h.name] = rec
	}
	rec.Failures++
	rec.Consecutive++
	streak := rec.Consecutive
	pol := c.healthPol
	entered := false
	switch {
	case pol.QuarantineAfter > 0 && rec.Consecutive >= pol.QuarantineAfter:
		if rec.State != Quarantined {
			rec.State = Quarantined
			c.alerts = append(c.alerts, Alert{Switch: h.name, Reason: core.AlertUnreachable})
			entered = true
		}
	case pol.DegradeAfter > 0 && rec.Consecutive >= pol.DegradeAfter:
		if rec.State == Healthy {
			rec.State = Degraded
		}
	}
	c.mu.Unlock()
	if entered {
		k := c.obsv()
		k.alertUnreachable.Inc()
		k.quarantineEnter.Inc()
		k.audit(obs.EvQuarantineEnter, h.name, CauseConsecutiveFailures, 0, uint64(streak))
	}
}

// quarantined reports whether the circuit breaker is open for a switch.
func (c *Controller) quarantined(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.health[name]
	return ok && rec.State == Quarantined
}

// xfer accounts one transact call: what was actually put on and taken off
// the wire, for KMPResult/Stats accounting under retransmission.
type xfer struct {
	resp      []*core.Message // verified responses (nil on failure)
	lat       time.Duration   // modeled wall time including backoff waits
	sends     int             // request transmissions (≥1)
	recvs     int             // PacketIns parsed (including bad ones)
	sentBytes int
	rcvdBytes int
}

// account folds a transact's traffic into a KMPResult.
func (r *KMPResult) account(x xfer) {
	r.Messages += x.sends + x.recvs
	r.Bytes += x.sentBytes + x.rcvdBytes
	r.RTT += x.lat
}

// errDecode marks a PacketIn that failed to parse — retryable, since a
// corrupted response says nothing about whether the request landed.
var errDecode = errors.New("controller: undecodable PacketIn")

// transact runs one request through the retransmission engine: send, wait
// for a verifiable response (when wantResp), and resend the *same bytes*
// after a deterministic backoff otherwise. Resending identical bytes is
// safe end to end: the switch agent's idempotency cache replays the cached
// response for a duplicate whose response was lost, and the pipeline's
// replay defence only advances on digest-valid messages, so a dropped or
// corrupted attempt never consumes the sequence number.
//
// With MaxAttempts == 1 this is exactly the legacy exchange + checkResponse
// sequence, byte for byte and alert for alert.
//
// One recovery rule rides on top: a final, verified REPLAY alert means the
// switch's replay floor is ahead of our sequence counter — the signature
// of a snapshot-restored peer (floors come back lease-bumped) or of a
// controller resumed from a stale snapshot. The failed transaction stays
// failed, but the counter is skipped past one FloorLease of headroom so
// the caller's next attempt (with a fresh sequence number) can land.
func (c *Controller) transact(h *swHandle, req *core.Message, wantResp bool) (xfer, error) {
	h.opMu.Lock()
	x, err := c.transactLocked(h, req, wantResp)
	x.resp = cloneMessages(x.resp)
	h.opMu.Unlock()
	return x, err
}

// transactLocked is transact for callers already holding h.opMu (the
// zero-allocation register path and the windowed batch engine). The
// returned responses alias the handle's receive scratch and are valid
// only until the lock is released.
func (c *Controller) transactLocked(h *swHandle, req *core.Message, wantResp bool) (xfer, error) {
	x, err := c.transactOnceLocked(h, req, wantResp)
	if err != nil {
		var ae *AlertError
		if errors.As(err, &ae) && ae.Reason == core.AlertReplay {
			h.seq.SkipAhead(core.FloorLease)
			c.noteFloorBump(h, CauseReplayHeal, ae.Seq)
		}
	}
	return x, err
}

func (c *Controller) transactOnceLocked(h *swHandle, req *core.Message, wantResp bool) (xfer, error) {
	var x xfer
	if c.resilient() && c.quarantined(h.name) {
		return x, fmt.Errorf("%w: %s", ErrQuarantined, h.name)
	}
	h.encBuf = req.AppendEncode(h.encBuf[:0])
	data := h.encBuf
	pol := c.retryPolicy()
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.obsv().retransmits.Inc()
		}
		if wait := pol.backoff(attempt); wait > 0 {
			x.lat += wait
			c.mu.Lock()
			clk := c.clock
			c.mu.Unlock()
			if clk != nil {
				clk.Advance(wait)
			}
		}
		final := attempt == pol.MaxAttempts
		resp, lat, sent, rcvd, err := c.exchangeBytesLocked(h, data)
		x.lat += lat
		x.sends++
		x.sentBytes += sent
		x.recvs += len(resp)
		x.rcvdBytes += rcvd
		if err != nil {
			if errors.Is(err, errDecode) && !final {
				lastErr = err
				continue
			}
			return x, err
		}
		if !wantResp {
			// Fire-and-forget: silence is the expected outcome and the
			// caller confirms through state (e.g. a pa_ver read). But a
			// verified alert coming back means the request was mangled in
			// flight — that attempt failed, so resend the clean bytes.
			if len(resp) > 0 {
				if _, verr := c.vetResponses(h, req, resp, final); verr != nil {
					lastErr = verr
					if !final {
						continue
					}
					if c.resilient() {
						c.noteFailure(h)
					}
					return x, verr
				}
			}
			_ = h.seq.Settle(req.SeqNum)
			return x, nil
		}
		if len(resp) == 0 {
			lastErr = fmt.Errorf("%w: no response from %s (seq %d, attempt %d)",
				ErrTimeout, h.name, req.SeqNum, attempt)
			continue
		}
		ok, verr := c.vetResponses(h, req, resp, final)
		if verr == nil {
			x.resp = resp
			if c.resilient() {
				c.noteSuccess(h)
			}
			return x, nil
		}
		lastErr = verr
		if !ok || final {
			return x, verr
		}
	}
	if c.resilient() {
		c.noteFailure(h)
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %s seq %d", ErrTimeout, h.name, req.SeqNum)
	}
	if !errors.Is(lastErr, ErrTimeout) {
		lastErr = fmt.Errorf("%w: %s seq %d: last error: %v", ErrTimeout, h.name, req.SeqNum, lastErr)
	}
	return x, lastErr
}

// vetResponses authenticates a response set against its request. It
// returns retryable=true when a failure could be transient corruption (the
// caller may resend the same bytes). On non-final retryable failures the
// sequence number is left outstanding so the eventual good response can
// settle it; final-attempt behaviour matches the legacy checkResponse
// exactly.
func (c *Controller) vetResponses(h *swHandle, req *core.Message, resp []*core.Message, final bool) (retryable bool, err error) {
	r := resp[0]
	key, err := h.keys.At(core.KeyIndexLocal, r.KeyVersion)
	if err != nil {
		return true, fmt.Errorf("%w: unknown key version %d", ErrTampered, r.KeyVersion)
	}
	if !r.Verify(h.dig, key) {
		// Detection of misreported statistics (Fig. 9): the controller
		// itself raises the alert when a response fails verification.
		c.noteAlert(h.name, core.AlertBadDigest, r.SeqNum, CauseResponseDigest)
		return true, fmt.Errorf("%w: response digest mismatch on %s", ErrTampered, h.name)
	}
	if r.SeqNum != req.SeqNum {
		return true, fmt.Errorf("%w: response seq %d for request %d", ErrTampered, r.SeqNum, req.SeqNum)
	}
	if r.HdrType == core.HdrAlert {
		// A verified alert for our own sequence number means the request
		// was mangled in flight (the switch alerts before consuming the
		// sequence number) — resending the clean bytes can still succeed,
		// so only the final attempt settles and surfaces it.
		cause := CauseRequestMangled
		if r.MsgType == core.AlertReplay {
			cause = CauseStaleSeq
		}
		c.noteAlert(h.name, r.MsgType, r.SeqNum, cause)
		if final {
			_ = h.seq.Settle(r.SeqNum)
		}
		return true, fmt.Errorf("%w: %w", ErrTampered, &AlertError{Switch: h.name, Reason: r.MsgType, Seq: r.SeqNum})
	}
	if err := h.seq.Settle(r.SeqNum); err != nil {
		return false, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return false, nil
}

// exchangeBytesLocked puts encoded request bytes on the control channel
// through the fault taps and returns parsed PacketIns. It is one attempt:
// no retries, no verification. Requires h.opMu: the switch I/O result and
// the decoded responses live in the handle's reusable scratch and are
// overwritten by the next exchange on this handle.
func (c *Controller) exchangeBytesLocked(h *swHandle, data []byte) (out []*core.Message, lat time.Duration, sentBytes, rcvdBytes int, err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		// A crashed controller process sends nothing; in-flight operations
		// die with it and their results are moot.
		return nil, 0, 0, 0, ErrKilled
	}
	if fence := c.fence; fence != nil {
		c.mu.Unlock()
		if ferr := fence(); ferr != nil {
			// A fenced replica sends nothing: the lease no longer (or never
			// did) name it, so the signed bytes must not reach the wire.
			return nil, 0, 0, 0, ferr
		}
		c.mu.Lock()
		if c.dead {
			c.mu.Unlock()
			return nil, 0, 0, 0, ErrKilled
		}
	}
	c.stats.MessagesSent++
	c.stats.BytesSent += len(data)
	outTap, inTap := h.outTap, h.inTap
	c.mu.Unlock()
	sentBytes = len(data)

	wire := data
	if outTap != nil {
		wire = outTap(wire)
	}
	if wire == nil {
		// Dropped on the controller->switch leg: the controller observes
		// only silence, exactly as with a lost response.
		return nil, h.linkLat, sentBytes, 0, nil
	}
	if err := h.host.PacketOutInto(wire, &h.io); err != nil {
		return nil, 0, sentBytes, 0, err
	}
	lat = h.linkLat + h.io.Cost
	responded := false
	h.rx = h.rx[:0]
	nbuf := 0
	for _, pin := range h.io.PacketIns {
		if inTap != nil {
			pin = inTap(pin)
		}
		if pin == nil {
			continue // dropped on the switch->controller leg
		}
		responded = true
		c.mu.Lock()
		c.stats.MessagesRecvd++
		c.stats.BytesRecvd += len(pin)
		c.mu.Unlock()
		rcvdBytes += len(pin)
		if nbuf == len(h.rxBufs) {
			h.rxBufs = append(h.rxBufs, &core.MessageBuf{})
		}
		r, derr := h.rxBufs[nbuf].Decode(pin)
		if derr != nil {
			return h.rx, lat, sentBytes, rcvdBytes, fmt.Errorf("%w: %s: %v", errDecode, h.name, derr)
		}
		nbuf++
		h.rx = append(h.rx, r)
	}
	if responded {
		lat += h.linkLat
	}
	relayLat, err := c.relay(h, h.io.NetOut)
	if err != nil {
		return nil, lat, sentBytes, rcvdBytes, err
	}
	lat += relayLat
	return h.rx, lat, sentBytes, rcvdBytes, nil
}
