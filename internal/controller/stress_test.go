package controller

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/netsim"
	"p4auth/internal/statestore"
)

// TestPipelinedWritersUnderConcurrentRolloverStress is the -race stress
// suite for the windowed transport: one pipelined writer per switch runs
// batches against concurrent local-key rollovers on the same switches,
// through lossy/reordering/corrupting control taps, with group-commit
// journaling on. Invariants checked:
//
//   - per-entry exactly-once-or-failed journal settlement: after the run
//     no WriteIntent survives in the store (live settles always resolve);
//   - the data plane's replay floor (pa_seq[0], the C-DP stream of the
//     local key slot) is monotone non-decreasing throughout;
//   - every batch entry either landed (value readable) or reported an
//     error — no silent loss.
func TestPipelinedWritersUnderConcurrentRolloverStress(t *testing.T) {
	c, s1, s2 := twoSwitchFabric(t)
	for _, sw := range []string{"s1", "s2"} {
		if _, err := c.LocalKeyInit(sw); err != nil {
			t.Fatal(err)
		}
	}
	st := statestore.NewMem()
	if err := c.EnableCrashSafety(st); err != nil {
		t.Fatal(err)
	}
	pol := ResilientRetryPolicy()
	pol.MaxAttempts = 12
	c.SetRetryPolicy(pol)
	// s1 gets loss + occasional corruption, s2 gets reordering — the two
	// failure modes stress different paths (retransmit-same-bytes vs
	// replay-alert re-sign).
	if err := c.SetControlTaps("s1",
		netsim.LossTap(0.05, 0x51), netsim.CorruptTap(23, 0x52)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetControlTaps("s2", netsim.ReorderTap(), nil); err != nil {
		t.Fatal(err)
	}

	const (
		batches   = 6
		perBatch  = 8
		rollovers = 4
	)
	hosts := map[string]interface {
		RegisterRead(string, int) (uint64, error)
	}{"s1": s1.Host.SW, "s2": s2.Host.SW}

	var wg, wgMon sync.WaitGroup
	var stop atomic.Bool
	errCh := make(chan error, 16)

	// Floor monitors: sample the DP replay floor and assert monotonicity.
	// They run until the workers finish (separate WaitGroup).
	for name, sw := range hosts {
		wgMon.Add(1)
		go func(name string, sw interface {
			RegisterRead(string, int) (uint64, error)
		}) {
			defer wgMon.Done()
			var last uint64
			for !stop.Load() {
				floor, err := sw.RegisterRead(core.RegSeq, 0)
				if err != nil {
					errCh <- err
					return
				}
				if floor < last {
					errCh <- errors.New(name + ": replay floor moved backwards")
					return
				}
				last = floor
				// Yield between samples: a hot spin starves the writers on
				// small GOMAXPROCS.
				time.Sleep(200 * time.Microsecond)
			}
		}(name, sw)
	}

	// Pipelined writers: one per switch.
	for _, sw := range []string{"s1", "s2"} {
		wg.Add(1)
		go func(sw string) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				writes := make([]RegWrite, perBatch)
				for i := range writes {
					idx := uint32((b*perBatch + i) % 8)
					writes[i] = RegWrite{Register: "lat", Index: idx, Value: uint64(10_000 + idx)}
				}
				br, err := c.WriteRegisterBatch(sw, 4, writes)
				if err != nil {
					// Per-entry failures under injected faults are legal;
					// what is not legal is a result that does not account
					// for every entry.
					if len(br.Errs) != perBatch {
						errCh <- errors.New(sw + ": batch result does not cover all entries")
						return
					}
				}
			}
		}(sw)
	}

	// Concurrent KMP rollovers on both switches.
	for _, sw := range []string{"s1", "s2"} {
		wg.Add(1)
		go func(sw string) {
			defer wg.Done()
			for i := 0; i < rollovers; i++ {
				if _, err := c.LocalKeyUpdate(sw); err != nil {
					errCh <- err
					return
				}
			}
		}(sw)
	}

	wg.Wait()        // writers and rollovers
	stop.Store(true) // release the monitors
	wgMon.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	// Exactly-once-or-failed: a live run settles every journal record —
	// intents only survive crashes.
	for _, sw := range []string{"s1", "s2"} {
		entries, err := c.JournalEntries(sw)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.State == core.WriteIntent {
				t.Fatalf("%s: journal intent survived a live settle: %+v", sw, e)
			}
		}
	}
}

// TestWriteRegisterAllocBudget gates the end-to-end hot path: a serial
// authenticated write through the scratch-based engine must not allocate
// in steady state.
func TestWriteRegisterAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not stable under -race")
	}
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ { // warm scratch + agent response cache
		if _, err := c.WriteRegister("s1", "lat", uint32(i%8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	i := uint64(64)
	got := testing.AllocsPerRun(200, func() {
		i++
		if _, err := c.WriteRegister("s1", "lat", uint32(i%8), i); err != nil {
			t.Fatal(err)
		}
	})
	if got > 0 {
		t.Errorf("WriteRegister: %.1f allocs/op, budget 0", got)
	}
}
