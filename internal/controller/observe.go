package controller

// Observability wiring: every controller carries an obs.Observer (metrics
// registry + audit ring). Instruments are resolved once into a ctlObs and
// swapped atomically, so hot paths pay one atomic pointer load plus pure
// atomic updates — the WriteRegister 0 allocs/op budget is untouched.
// Audit causes are package-level constants: the ring stores string
// headers, never formatted text.

import (
	"errors"
	"sync/atomic"

	"p4auth/internal/core"
	"p4auth/internal/obs"
)

// Audit cause labels. Every rejection, floor bump, and dropped write names
// one of these; the chaos harness asserts none is empty.
const (
	// CauseResponseDigest: a response failed the controller's verification.
	CauseResponseDigest = "response-digest"
	// CauseRequestMangled: the switch alerted BadDigest on our request.
	CauseRequestMangled = "request-mangled"
	// CauseStaleSeq: the switch replay-rejected a sequence number its
	// floor had already passed.
	CauseStaleSeq = "stale-seq"
	// CauseReplayHeal: the serial engine skipped the counter a FloorLease
	// forward after a verified replay alert.
	CauseReplayHeal = "replay-alert-heal"
	// CauseRestoredFloor: the batch engine saw a replay rejection no
	// observed settle explains — the switch floor was restored ahead.
	CauseRestoredFloor = "restored-floor-lease"
	// CauseRetryBudget: the retransmission budget ran out.
	CauseRetryBudget = "retry-budget-exhausted"
	// CauseQuarantined: the circuit breaker was open.
	CauseQuarantined = "quarantined"
	// CauseKilled: the controller process was dead.
	CauseKilled = "controller-killed"
	// CauseFenced: the send was refused by the HA lease fence (deposed or
	// never-active replica).
	CauseFenced = "lease-fenced"
	// CauseNAck: the data plane rejected the operation.
	CauseNAck = "nacked"
	// CauseReplayRejected: the final outcome was a verified replay alert.
	CauseReplayRejected = "replay-rejected"
	// CauseDigestRejected: the final outcome was a verified digest alert.
	CauseDigestRejected = "digest-rejected"
	// CauseTampered: authentication failed without a verified alert.
	CauseTampered = "tampered"
	// CauseError: a failure outside the classified set.
	CauseError = "error"
	// CauseDPRelay: an alert PacketIn surfaced while relaying DP-DP
	// traffic (no controller request was involved).
	CauseDPRelay = "dp-relay"
	// CauseConsecutiveFailures: the failure streak crossed the threshold.
	CauseConsecutiveFailures = "consecutive-failures"
	// CauseOperatorClear: ClearHealth reopened a quarantined switch.
	CauseOperatorClear = "operator-clear"
	// CauseSwitchAheadResync: resync rolled a switch back one install.
	CauseSwitchAheadResync = "switch-ahead-resync"
	// CauseFactoryReset: recovery fell back to an out-of-band re-seed.
	CauseFactoryReset = "factory-reset"
	// Rollover flow labels.
	CauseLocalInit   = "local-init"
	CauseLocalUpdate = "local-update"
	CausePortInit    = "port-init"
	CausePortUpdate  = "port-update"
	CausePortRepair  = "port-repair"
	// WAL settle outcomes.
	CauseWALApplied   = "applied"
	CauseWALFailed    = "failed"
	CauseWALRecovered = "recovered-applied"
	CauseWALRedriven  = "redriven"
)

// ctlObs is the controller's pre-resolved instrument set.
type ctlObs struct {
	o *obs.Observer

	writeOK, writeErr *obs.Counter
	readOK, readErr   *obs.Counter
	writeDropped      *obs.Counter
	retransmits       *obs.Counter

	alertDigest, alertReplay, alertUnreachable *obs.Counter
	floorBumps                                 *obs.Counter

	rolloverBegin, rolloverCommit, rolloverRollback *obs.Counter
	eakFallback, seedUses                           *obs.Counter
	quarantineEnter, quarantineLeave                *obs.Counter
	walApplied, walFailed, walRedriven              *obs.Counter

	writeNs, readNs *obs.Histogram
}

func newCtlObs(o *obs.Observer) *ctlObs {
	m := o.Metrics
	return &ctlObs{
		o:                o,
		writeOK:          m.Counter("ctl.write_ok"),
		writeErr:         m.Counter("ctl.write_err"),
		readOK:           m.Counter("ctl.read_ok"),
		readErr:          m.Counter("ctl.read_err"),
		writeDropped:     m.Counter("ctl.write_dropped"),
		retransmits:      m.Counter("ctl.retransmits"),
		alertDigest:      m.Counter("ctl.alert_bad_digest"),
		alertReplay:      m.Counter("ctl.alert_replay"),
		alertUnreachable: m.Counter("ctl.alert_unreachable"),
		floorBumps:       m.Counter("ctl.floor_bumps"),
		rolloverBegin:    m.Counter("ctl.rollover_begin"),
		rolloverCommit:   m.Counter("ctl.rollover_commit"),
		rolloverRollback: m.Counter("ctl.rollover_rollback"),
		eakFallback:      m.Counter("ctl.eak_fallback"),
		seedUses:         m.Counter("ctl.seed_uses"),
		quarantineEnter:  m.Counter("ctl.quarantine_enter"),
		quarantineLeave:  m.Counter("ctl.quarantine_leave"),
		walApplied:       m.Counter("ctl.wal_applied"),
		walFailed:        m.Counter("ctl.wal_failed"),
		walRedriven:      m.Counter("ctl.wal_redriven"),
		writeNs:          m.Histogram("ctl.write_ns"),
		readNs:           m.Histogram("ctl.read_ns"),
	}
}

// audit appends one event to the shared ring. Allocation-free (actor and
// cause must be pre-existing strings).
func (k *ctlObs) audit(t obs.EventType, actor, cause string, seq uint32, value uint64) {
	k.o.Audit.Append(t, actor, cause, seq, value)
}

// obsv returns the current instrument set. One atomic load; never nil.
func (c *Controller) obsv() *ctlObs { return c.ob.Load() }

// Observer returns the controller's observability handle (metrics registry
// plus audit log), for inspection commands, bench reports, and tests.
func (c *Controller) Observer() *obs.Observer { return c.ob.Load().o }

// SetObserver replaces the controller's observer — the chaos harness
// installs one shared observer across controller generations so a rebuilt
// controller keeps appending to the same audit trail. Registered switches
// are re-wired (agent counters and data-plane counter mirrors) onto the
// new registry.
func (c *Controller) SetObserver(o *obs.Observer) {
	if o == nil {
		o = obs.NewObserver(0)
	}
	c.ob.Store(newCtlObs(o))
	c.mu.Lock()
	handles := make([]*swHandle, 0, len(c.switches))
	for _, h := range c.switches {
		handles = append(handles, h)
	}
	c.mu.Unlock()
	for _, h := range handles {
		c.wireSwitchObs(h, o)
	}
}

// wireSwitchObs points a switch's agent counters and data-plane counter
// mirror at the observer's registry.
func (c *Controller) wireSwitchObs(h *swHandle, o *obs.Observer) {
	h.host.Observe(o.Metrics)
	h.host.SW.MirrorCounters(o.Metrics, "dp."+h.name+".")
}

// noteAlert records an alert in the operator list, the metrics, and the
// audit log. Call WITHOUT c.mu held.
func (c *Controller) noteAlert(sw string, reason uint8, seq uint32, cause string) {
	c.mu.Lock()
	c.alerts = append(c.alerts, Alert{Switch: sw, Reason: reason, SeqNum: seq})
	c.mu.Unlock()
	k := c.obsv()
	switch reason {
	case core.AlertBadDigest:
		k.alertDigest.Inc()
		k.audit(obs.EvDigestMismatch, sw, cause, seq, 0)
	case core.AlertReplay:
		k.alertReplay.Inc()
		k.audit(obs.EvReplayRejected, sw, cause, seq, 0)
	case core.AlertUnreachable:
		k.alertUnreachable.Inc()
	}
}

// noteFloorBump records a sequence-counter skip (SkipAhead) with its
// cause; value is the counter's new next sequence number.
func (c *Controller) noteFloorBump(h *swHandle, cause string, seq uint32) {
	k := c.obsv()
	k.floorBumps.Inc()
	k.audit(obs.EvFloorBump, h.name, cause, seq, uint64(h.seq.Peek()))
}

// noteRollover wraps a KMP flow with begin/commit/rollback audit events.
// Call as: defer c.noteRollover(sw, flow, port)(errp).
func (c *Controller) noteRollover(sw, flow string, value uint64) func(err error) {
	k := c.obsv()
	k.rolloverBegin.Inc()
	k.audit(obs.EvRolloverBegin, sw, flow, 0, value)
	return func(err error) {
		k := c.obsv()
		if err == nil {
			k.rolloverCommit.Inc()
			k.audit(obs.EvRolloverCommit, sw, flow, 0, value)
			return
		}
		k.rolloverRollback.Inc()
		k.audit(obs.EvRolloverRollback, sw, causeOf(err), 0, value)
	}
}

// causeOf classifies a failure into a constant audit label.
func causeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrQuarantined):
		return CauseQuarantined
	case errors.Is(err, ErrFenced):
		return CauseFenced
	case errors.Is(err, ErrKilled):
		return CauseKilled
	case errors.Is(err, ErrNAck):
		return CauseNAck
	}
	var ae *AlertError
	if errors.As(err, &ae) {
		if ae.Reason == core.AlertReplay {
			return CauseReplayRejected
		}
		return CauseDigestRejected
	}
	switch {
	case errors.Is(err, ErrTimeout):
		return CauseRetryBudget
	case errors.Is(err, ErrTampered):
		return CauseTampered
	}
	return CauseError
}

// obPtr is the atomic holder embedded in Controller (a named type so the
// struct field stays one line).
type obPtr = atomic.Pointer[ctlObs]
