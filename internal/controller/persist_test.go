package controller

import (
	"errors"
	"sync"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/statestore"
)

// crashSafeFabric builds the two-switch fabric with resilient retries and
// a shared durable store attached.
func crashSafeFabric(t *testing.T) (*Controller, *deploy.Switch, *deploy.Switch, *statestore.Mem) {
	t.Helper()
	c, s1, s2 := twoSwitchFabric(t)
	c.SetRetryPolicy(ResilientRetryPolicy())
	store := statestore.NewMem()
	if err := c.EnableCrashSafety(store); err != nil {
		t.Fatal(err)
	}
	return c, s1, s2, store
}

// rebuildController models a controller process restart: a brand-new
// Controller (empty key state, fresh rng) registered against the same
// switches and attached to the same store the dead process was using.
func rebuildController(t *testing.T, s1, s2 *deploy.Switch, store statestore.Store, rngSeed uint64) *Controller {
	t.Helper()
	c := New(crypto.NewSeededRand(rngSeed))
	c.SetRetryPolicy(ResilientRetryPolicy())
	if err := c.Register("s1", s1.Host, s1.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("s2", s2.Host, s2.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCrashSafety(store); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWarmRestartZeroSeedUses is the headline acceptance test: after a
// controller crash, recovery from a valid snapshot completes without a
// single K_seed derivation.
func TestWarmRestartZeroSeedUses(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	// A few rollovers so the surviving state is far from the seed.
	for i := 0; i < 3; i++ {
		if _, err := c.LocalKeyUpdate("s1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.WriteRegister("s1", "lat", 3, 777); err != nil {
		t.Fatal(err)
	}
	c.Kill()
	if _, _, err := c.ReadRegister("s1", "lat", 3); !errors.Is(err, ErrKilled) {
		t.Fatalf("dead controller must fail with ErrKilled, got %v", err)
	}

	c2 := rebuildController(t, s1, s2, store, 777)
	warm, err := c2.RecoverAll()
	if err != nil {
		t.Fatalf("RecoverAll: %v", err)
	}
	for _, sw := range []string{"s1", "s2"} {
		if !warm[sw] {
			t.Fatalf("%s: expected warm restart", sw)
		}
		if n := c2.SeedUses(sw); n != 0 {
			t.Fatalf("%s: warm restart used K_seed %d times, want 0", sw, n)
		}
	}
	assertLocalKeySync(t, c2, s1, "s1")
	assertLocalKeySync(t, c2, s2, "s2")
	if v, _, err := c2.ReadRegister("s1", "lat", 3); err != nil || v != 777 {
		t.Fatalf("post-recovery read: %d, %v", v, err)
	}
	if _, err := c2.WriteRegister("s2", "lat", 1, 42); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
}

// TestWarmRestartHealsStaleSeqCounter: sequence numbers issued after the
// last snapshot are burned on the switch; the restored controller resumes
// below the switch's floor and must heal via replay-alert skip-ahead, not
// by ever getting a stale number accepted.
func TestWarmRestartHealsStaleSeqCounter(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	// Snapshot is now at the post-init seq; burn far past it.
	for i := 0; i < 40; i++ {
		if _, err := c.WriteRegister("s1", "lat", 0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	floorBefore, err := s1.Host.SW.RegisterRead(core.RegSeq, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Kill()

	c2 := rebuildController(t, s1, s2, store, 888)
	warmMap, err := c2.RecoverAll()
	if err != nil {
		t.Fatal(err)
	}
	if !warmMap["s1"] {
		t.Fatal("expected warm restart for s1")
	}
	if n := c2.SeedUses("s1"); n != 0 {
		t.Fatalf("seed used %d times", n)
	}
	// The replay floor must never have regressed.
	floorAfter, err := s1.Host.SW.RegisterRead(core.RegSeq, 0)
	if err != nil {
		t.Fatal(err)
	}
	if floorAfter < floorBefore {
		t.Fatalf("replay floor regressed: %d -> %d", floorBefore, floorAfter)
	}
	if _, err := c2.WriteRegister("s1", "lat", 0, 4096); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	if v, _, err := c2.ReadRegister("s1", "lat", 0); err != nil || v != 4096 {
		t.Fatalf("post-recovery read: %d, %v", v, err)
	}
}

// TestJournalAppliedIntentSettlesByReadBack: the write lands on the
// switch, then the controller dies before learning it. The surviving
// intent must settle as applied (by read-back), not be doubled or lost.
func TestJournalAppliedIntentSettlesByReadBack(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	// The response to the write is dropped and the controller dies at
	// that instant: the switch applied the write, the journal still says
	// intent.
	if err := c.SetControlTaps("s1", nil, func(p []byte) []byte {
		c.Kill()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 5, 31337); !errors.Is(err, ErrKilled) {
		t.Fatalf("want ErrKilled mid-write, got %v", err)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 5); v != 31337 {
		t.Fatalf("write should have landed on the switch, register=%d", v)
	}
	entries, err := c.JournalEntries("s1")
	if err != nil || len(entries) != 1 || entries[0].State != core.WriteIntent {
		t.Fatalf("want one surviving intent, got %v (err=%v)", entries, err)
	}

	c2 := rebuildController(t, s1, s2, store, 999)
	if _, err := c2.WarmRestart("s1"); err != nil {
		t.Fatal(err)
	}
	if entries, _ := c2.JournalEntries("s1"); len(entries) != 0 {
		t.Fatalf("journal not settled: %v", entries)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 5); v != 31337 {
		t.Fatalf("recovered value %d", v)
	}
}

// TestJournalLostIntentIsRedriven: the controller dies before the request
// reaches the switch. Recovery finds the intent, sees the value missing,
// and re-drives the write exactly once.
func TestJournalLostIntentIsRedriven(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetControlTaps("s1", func(p []byte) []byte {
		c.Kill()
		return nil // request never reaches the switch
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 6, 555); err == nil {
		t.Fatal("write during crash must fail")
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 6); v != 0 {
		t.Fatalf("write must not have landed, register=%d", v)
	}

	c2 := rebuildController(t, s1, s2, store, 1000)
	if _, err := c2.WarmRestart("s1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 6); v != 555 {
		t.Fatalf("journaled write not re-driven: register=%d", v)
	}
	if entries, _ := c2.JournalEntries("s1"); len(entries) != 0 {
		t.Fatalf("journal not settled: %v", entries)
	}
}

// TestJournalAliveTimeoutMarksFailed: a write that exhausts its budget
// while the controller is alive is settled as failed — it must NOT be
// re-driven by a later recovery (the caller was already told it failed).
func TestJournalAliveTimeoutMarksFailed(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetControlTaps("s1", func(p []byte) []byte { return nil }, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 7, 9999); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	entries, err := c.JournalEntries("s1")
	if err != nil || len(entries) != 1 || entries[0].State != core.WriteFailed {
		t.Fatalf("want one failed entry, got %v (err=%v)", entries, err)
	}
	if err := c.SetControlTaps("s1", nil, nil); err != nil {
		t.Fatal(err)
	}

	c2 := rebuildController(t, s1, s2, store, 1001)
	if _, err := c2.WarmRestart("s1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 7); v != 0 {
		t.Fatalf("failed write was resurrected: register=%d", v)
	}
	// The failed entry stays on record for the operator.
	entries, _ = c2.JournalEntries("s1")
	if len(entries) != 1 || entries[0].State != core.WriteFailed {
		t.Fatalf("failed entry lost: %v", entries)
	}
}

// TestSwitchWarmRebootBehindOneRollover: the switch warm-reboots from a
// snapshot taken before the last rollover. The controller discovers the
// drift, drops its newest key, and reconverges without the seed.
func TestSwitchWarmRebootBehindOneRollover(t *testing.T) {
	c, s1, _, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveState(store, "dev/s1", 1); err != nil {
		t.Fatal(err)
	}
	// Roll after the snapshot: the snapshot is now one rollover stale.
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatal(err)
	}
	s1.Crash()
	if warm, err := s1.RebootFromStore(store, "dev/s1"); err != nil || !warm {
		t.Fatalf("warm=%v err=%v", warm, err)
	}
	warm, err := c.ReviveSwitch("s1")
	if err != nil {
		t.Fatalf("ReviveSwitch: %v", err)
	}
	if !warm {
		t.Fatal("expected warm revival via rollback repair")
	}
	if n := c.SeedUses("s1"); n != 1 { // only the original init
		t.Fatalf("seed uses = %d, want 1", n)
	}
	assertLocalKeySync(t, c, s1, "s1")
	if _, err := c.WriteRegister("s1", "lat", 2, 11); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchColdRebootFallsBackToReseed: a cold-booted switch has only
// K_seed; revival must detect the unusable state and reinitialize.
func TestSwitchColdRebootFallsBackToReseed(t *testing.T) {
	c, s1, _, _ := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.LocalKeyUpdate("s1"); err != nil {
			t.Fatal(err)
		}
	}
	base := c.SeedUses("s1")
	s1.Crash()
	if err := s1.Reboot(nil); err != nil {
		t.Fatal(err)
	}
	warm, err := c.ReviveSwitch("s1")
	if err != nil {
		t.Fatalf("ReviveSwitch after cold boot: %v", err)
	}
	if warm {
		t.Fatal("cold boot must not be reported warm")
	}
	if n := c.SeedUses("s1"); n != base+1 {
		t.Fatalf("re-seed must use K_seed exactly once more: %d -> %d", base, n)
	}
	assertLocalKeySync(t, c, s1, "s1")
	if _, err := c.WriteRegister("s1", "lat", 2, 22); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRestartSurvivesFileStore runs the controller-crash recovery
// through the file-backed store: what lands on disk is sufficient.
func TestWarmRestartSurvivesFileStore(t *testing.T) {
	c, s1, s2 := twoSwitchFabric(t)
	c.SetRetryPolicy(ResilientRetryPolicy())
	store, err := statestore.NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableCrashSafety(store); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 1, 123); err != nil {
		t.Fatal(err)
	}
	c.Kill()

	c2 := rebuildController(t, s1, s2, store, 555)
	warm, err := c2.RecoverAll()
	if err != nil {
		t.Fatal(err)
	}
	if !warm["s1"] || !warm["s2"] {
		t.Fatalf("expected warm restarts, got %v", warm)
	}
	if v, _, err := c2.ReadRegister("s1", "lat", 1); err != nil || v != 123 {
		t.Fatalf("read through recovered channel: %d, %v", v, err)
	}
}

// TestCorruptSnapshotDegradesToReseed: a torn controller snapshot must be
// rejected by the codec and recovery must fall back to EAK, never restore
// garbage keys.
func TestCorruptSnapshotDegradesToReseed(t *testing.T) {
	c, s1, s2, store := crashSafeFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	b, err := store.Load("ctl/s1")
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := store.Save("ctl/s1", b); err != nil {
		t.Fatal(err)
	}
	c.Kill()

	c2 := rebuildController(t, s1, s2, store, 666)
	warm, err := c2.WarmRestart("s1")
	if err != nil {
		t.Fatalf("recovery with corrupt snapshot: %v", err)
	}
	if warm {
		t.Fatal("corrupt snapshot must not produce a warm restart")
	}
	if n := c2.SeedUses("s1"); n != 1 {
		t.Fatalf("re-seed uses = %d, want 1", n)
	}
	assertLocalKeySync(t, c2, s1, "s1")
}

// TestBackoffEdgeCases covers the deterministic backoff schedule's
// boundary behaviour (satellite of the crash-safety PR).
func TestBackoffEdgeCases(t *testing.T) {
	base := 100 * time.Microsecond
	pol := RetryPolicy{MaxAttempts: 6, BaseBackoff: base, MaxBackoff: 2 * time.Millisecond}
	cases := []struct {
		name string
		pol  RetryPolicy
		att  int
		want time.Duration
	}{
		{"attempt0", pol, 0, 0},
		{"attempt1-first-send", pol, 1, 0},
		{"attempt2-base", pol, 2, base},
		{"attempt3-doubled", pol, 3, 2 * base},
		{"attempt6-doubling", pol, 6, 16 * base},
		{"attempt7-capped", pol, 7, 2 * time.Millisecond},
		{"huge-attempt-capped", pol, 1 << 20, 2 * time.Millisecond},
		{"zero-policy", RetryPolicy{}, 5, 0},
		{"negative-attempt", pol, -3, 0},
		{"no-cap-saturates", RetryPolicy{BaseBackoff: base}, 1 << 20, time.Duration(1<<63 - 1)},
		{"cap-below-base", RetryPolicy{BaseBackoff: base, MaxBackoff: base / 2}, 2, base / 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.pol.backoff(tc.att)
			if got != tc.want {
				t.Fatalf("backoff(%d) = %v, want %v", tc.att, got, tc.want)
			}
			if got < 0 {
				t.Fatalf("backoff(%d) went negative: %v", tc.att, got)
			}
			if again := tc.pol.backoff(tc.att); again != got {
				t.Fatalf("backoff not deterministic: %v then %v", got, again)
			}
		})
	}
}

// TestObservabilityRaces exercises the concurrent-read contract under the
// race detector: observability accessors, tap installation, and persist
// configuration must all be safe against an in-flight operation.
func TestObservabilityRaces(t *testing.T) {
	c, _, _, _ := crashSafeFabric(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = c.HealthOf("s1")
			_ = c.Stats()
			_ = c.Alerts()
			_, _ = c.Outstanding("s1")
			_ = c.KeyEstablished("s2")
			_ = c.CheckDoS(1)
			_ = c.SeedUses("s1")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Install and clear taps while exchanges are in flight.
			if i%2 == 0 {
				_ = c.SetControlTaps("s1", func(p []byte) []byte { return p }, nil)
			} else {
				_ = c.SetControlTaps("s1", nil, nil)
			}
		}
	}()
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.WriteRegister("s1", "lat", uint32(i%8), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
