// Package controller implements the P4Auth controller (Python3 in the
// paper's prototype; Go here): authenticated register read/write over
// PacketOut/PacketIn, key-management orchestration (local and port key
// initialization and rollover, §VI-C), alert collection with outstanding-
// request accounting (§VIII), and the two baselines of §IX-B —
// P4Runtime-style API access and unauthenticated DP-Reg-RW.
//
// The controller talks to switches synchronously, accumulating modeled
// latency as it goes (each leg pays the control-link RTT plus the switch's
// software-stack and pipeline cost), and relays DP-DP key-exchange
// messages across a registered adjacency, so Fig. 18-20 and Table III can
// be measured without a live event loop.
package controller

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/p4rt"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
	"p4auth/internal/switchos"
)

// ErrTampered is returned when a response fails digest verification or
// the data plane reports an unauthorized modification.
var ErrTampered = errors.New("controller: message failed authentication")

// Controller-side digest costs (the paper's controller is Python3; its
// per-message HalfSipHash/CRC work is microsecond-scale and is the source
// of P4Auth's few-percent PacketOut-path overhead in Fig. 18/19).
const (
	// SignCost models computing a request digest at the controller.
	SignCost = 8 * time.Microsecond
	// VerifyCost models verifying a response digest at the controller.
	VerifyCost = 8 * time.Microsecond
)

// ErrNAck is returned when the data plane rejects a register operation
// (unknown register, for instance).
var ErrNAck = errors.New("controller: data plane nAcked the request")

// Alert is a data-plane alert surfaced to the operator.
type Alert struct {
	Switch string
	Reason uint8 // core.AlertBadDigest or core.AlertReplay
	SeqNum uint32
}

// Stats aggregates controller traffic accounting (Table III inputs).
type Stats struct {
	MessagesSent  int
	MessagesRecvd int
	BytesSent     int
	BytesRecvd    int
}

// KMPResult reports one key-management operation.
type KMPResult struct {
	Messages int
	Bytes    int
	// RTT is the modeled wall time from first message to key derivation
	// (Fig. 20's metric).
	RTT time.Duration
}

type swHandle struct {
	name    string
	host    *switchos.Host
	cfg     core.Config
	dig     crypto.Digester
	keys    *core.KeyStore
	seq     *core.SeqTracker
	info    *p4rt.P4Info
	linkLat time.Duration // one-way controller<->switch latency
	// Fault-injection taps on the control channel (SetControlTaps):
	// outTap sees PacketOuts, inTap sees PacketIns; nil return = drop.
	outTap netsim.Tap
	inTap  netsim.Tap

	// opMu serializes wire operations toward this switch and guards the
	// scratch below. Different switches proceed concurrently; on one
	// switch, a pipelined batch and a KMP leg interleave at operation
	// granularity, never mid-exchange. Lock order: opMu before c.mu;
	// never two handles' opMu at once (multi-switch flows lock per leg).
	opMu sync.Mutex
	// Reusable buffers for the zero-allocation request path. txMsg/txReg
	// hold the in-flight request; encBuf its wire bytes; io the switch's
	// I/O result; rx/rxBufs the decoded PacketIns. All are valid only
	// while opMu is held — cold paths copy responses out before
	// releasing it.
	encBuf []byte
	io     switchos.IOResult
	rx     []*core.Message
	rxBufs []*core.MessageBuf
	txMsg  core.Message
	txReg  core.RegPayload
	// Batch-verify scratch (runBatch): per-response digest inputs carved
	// out of vfyBuf at the vfyOffs boundaries, per-response verdicts, and
	// the per-key-version gather arrays handed to crypto.VerifyBatch.
	vfyBuf    []byte
	vfyOffs   []int
	vfyOK     []bool
	vfyMember []bool
	vfyDone   []bool
	gDatas    [][]byte
	gGot      []uint32
	gOK       []bool
	gIdx      []int
}

type portKey struct {
	sw   string
	port int
}

type peerRef struct {
	sw   string
	port int
	lat  time.Duration // one-way link latency
}

// Controller manages a set of P4Auth switches. Operations are synchronous
// by design (each call completes a full request/response round) and must
// be serialized externally, but the observability accessors — Stats,
// Alerts, Outstanding, HealthOf — are safe to call concurrently with an
// in-flight operation (a DoS monitor polling mid-exchange).
type Controller struct {
	rng crypto.RandomSource

	// mu guards the mutable observable state (stats, alerts, health), the
	// resilience configuration, the topology maps (switches/adj entries
	// are added under mu; the handles themselves hold their own locks),
	// and the crash-safety machinery.
	mu        sync.Mutex
	switches  map[string]*swHandle
	adj       map[portKey]peerRef
	alerts    []Alert
	stats     Stats
	retry     RetryPolicy
	healthPol HealthPolicy
	health    map[string]*Health
	clock     Clock
	linkTaps  map[portKey]netsim.Tap
	repairs   map[portKey]*repairFence

	// Crash-safety state (EnableCrashSafety / Kill).
	store    statestore.Store
	walID    uint64
	persistN uint64
	dead     bool
	seedUses map[string]int

	// fence, when set, is consulted before every signed wire send
	// (SetSendFence) — the HA layer's lease check. Read under mu, called
	// without it.
	fence func() error

	// ob holds the pre-resolved observability instruments (observe.go).
	// Atomic so hot paths read it without c.mu; never nil after New.
	ob obPtr
}

// New returns a controller using rng for salts and private secrets.
func New(rng crypto.RandomSource) *Controller {
	c := &Controller{
		rng:       rng,
		switches:  make(map[string]*swHandle),
		adj:       make(map[portKey]peerRef),
		retry:     DefaultRetryPolicy,
		healthPol: DefaultHealthPolicy,
		health:    make(map[string]*Health),
		linkTaps:  make(map[portKey]netsim.Tap),
		repairs:   make(map[portKey]*repairFence),
		seedUses:  make(map[string]int),
	}
	c.ob.Store(newCtlObs(obs.NewObserver(0)))
	return c
}

// Register adds a switch under the controller's management. linkLat is the
// one-way latency of the controller-switch management link.
func (c *Controller) Register(name string, host *switchos.Host, cfg core.Config, linkLat time.Duration) error {
	dig, err := cfg.Digester()
	if err != nil {
		return err
	}
	h := &swHandle{
		name:    name,
		host:    host,
		cfg:     cfg,
		dig:     dig,
		keys:    core.NewKeyStore(cfg.Ports, cfg.Seed),
		seq:     core.NewSeqTracker(),
		info:    host.Info,
		linkLat: linkLat,
	}
	c.mu.Lock()
	if _, dup := c.switches[name]; dup {
		c.mu.Unlock()
		return fmt.Errorf("controller: switch %q already registered", name)
	}
	c.switches[name] = h
	c.mu.Unlock()
	c.wireSwitchObs(h, c.obsv().o)
	return nil
}

// ConnectSwitches records (bidirectionally) that switch a's port pa faces
// switch b's port pb over a link with the given one-way latency, enabling
// relayed and direct DP-DP key exchanges.
func (c *Controller) ConnectSwitches(a string, pa int, b string, pb int, lat time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.switches[a]; !ok {
		return fmt.Errorf("controller: unknown switch %q", a)
	}
	if _, ok := c.switches[b]; !ok {
		return fmt.Errorf("controller: unknown switch %q", b)
	}
	c.adj[portKey{a, pa}] = peerRef{sw: b, port: pb, lat: lat}
	c.adj[portKey{b, pb}] = peerRef{sw: a, port: pa, lat: lat}
	return nil
}

// Alerts returns collected alerts. Safe during in-flight exchanges.
func (c *Controller) Alerts() []Alert {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Alert(nil), c.alerts...)
}

// Stats returns traffic accounting. Safe during in-flight exchanges.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Outstanding reports unanswered requests for a switch (DoS indicator).
func (c *Controller) Outstanding(name string) (int, error) {
	h, ok := c.switches[name]
	if !ok {
		return 0, fmt.Errorf("controller: unknown switch %q", name)
	}
	return h.seq.Outstanding(), nil
}

func (c *Controller) handle(name string) (*swHandle, error) {
	c.mu.Lock()
	h, ok := c.switches[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("controller: unknown switch %q", name)
	}
	return h, nil
}

// peerOf resolves an adjacency under the lock.
func (c *Controller) peerOf(sw string, port int) (peerRef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.adj[portKey{sw, port}]
	return p, ok
}

// SwitchNames returns the registered switch names, sorted — the fleet
// iteration order used by RecoverAll and the HA promotion path.
func (c *Controller) SwitchNames() []string { return c.switchNames() }

// switchNames returns the registered switch names, sorted — iteration in
// a deterministic order is part of the chaos-replay contract.
func (c *Controller) switchNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.switches))
	for name := range c.switches {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// links returns each registered adjacency once (driven from its
// lexicographically first end), sorted deterministically.
func (c *Controller) links() [][2]portKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][2]portKey
	for pk, peer := range c.adj {
		if pk.sw > peer.sw || (pk.sw == peer.sw && pk.port > peer.port) {
			continue
		}
		out = append(out, [2]portKey{pk, {peer.sw, peer.port}})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i][0], out[j][0]
		if a.sw != b.sw {
			return a.sw < b.sw
		}
		return a.port < b.port
	})
	return out
}

// exchange sends one P4Auth message to a switch over the control channel
// and returns decoded PacketIn responses plus the modeled latency of the
// full round (link out + stack/pipeline + link back when a response
// exists). One attempt; the retransmission engine lives in transact.
// The responses are private copies, safe to hold after the call.
func (c *Controller) exchange(h *swHandle, m *core.Message) ([]*core.Message, time.Duration, error) {
	data, err := m.Encode()
	if err != nil {
		return nil, 0, err
	}
	h.opMu.Lock()
	out, lat, _, _, err := c.exchangeBytesLocked(h, data)
	out = cloneMessages(out)
	h.opMu.Unlock()
	return out, lat, err
}

// cloneMessages deep-copies decoded responses out of a handle's reusable
// receive buffers, so callers that outlive the opMu critical section
// never alias scratch the next exchange overwrites.
func cloneMessages(in []*core.Message) []*core.Message {
	if in == nil {
		return nil
	}
	out := make([]*core.Message, len(in))
	for i, m := range in {
		cm := *m
		if m.Reg != nil {
			reg := *m.Reg
			cm.Reg = &reg
		}
		if m.Kx != nil {
			kx := *m.Kx
			cm.Kx = &kx
		}
		if len(m.Aux) > 0 {
			cm.Aux = append([]byte(nil), m.Aux...)
		}
		out[i] = &cm
	}
	return out
}

// relay walks NetOut emissions across links, injecting them at the peer
// switch, until no further network emissions result. PacketIns raised
// along the way are surfaced as alerts/messages to the controller.
func (c *Controller) relay(from *swHandle, ems []pisa.Emission) (time.Duration, error) {
	var total time.Duration
	type hop struct {
		sw *swHandle
		em pisa.Emission
	}
	queue := make([]hop, 0, len(ems))
	for _, em := range ems {
		queue = append(queue, hop{sw: from, em: em})
	}
	for steps := 0; len(queue) > 0; steps++ {
		if steps > 64 {
			return total, fmt.Errorf("controller: relay did not quiesce (loop?)")
		}
		h := queue[0]
		queue = queue[1:]
		c.mu.Lock()
		peer, ok := c.adj[portKey{h.sw.name, h.em.Port}]
		tap := c.linkTaps[portKey{h.sw.name, h.em.Port}]
		dst := c.switches[peer.sw]
		c.mu.Unlock()
		if !ok {
			continue // dangling port: drop, as a real link-less port would
		}
		data := h.em.Data
		if tap != nil {
			data = tap(data)
		}
		if data == nil {
			continue // dropped in flight by a fault tap
		}
		total += peer.lat
		res, err := dst.host.NetworkPacket(peer.port, data)
		if err != nil {
			return total, err
		}
		total += res.Cost
		for _, pin := range res.PacketIns {
			c.mu.Lock()
			c.stats.MessagesRecvd++
			c.stats.BytesRecvd += len(pin)
			c.mu.Unlock()
			if r, err := core.DecodeMessage(pin); err == nil && r.HdrType == core.HdrAlert {
				c.noteAlert(dst.name, r.MsgType, r.SeqNum, CauseDPRelay)
			}
		}
		for _, em := range res.NetOut {
			queue = append(queue, hop{sw: dst, em: em})
		}
	}
	return total, nil
}

// signedMessage builds and signs a request under the switch's current
// local key.
func (h *swHandle) signedMessage(hdrType, msgType uint8, reg *core.RegPayload, kx *core.KxPayload) (*core.Message, error) {
	key, ver, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return nil, err
	}
	m := &core.Message{
		Header: core.Header{HdrType: hdrType, MsgType: msgType, SeqNum: h.seq.Next(), KeyVersion: ver},
		Reg:    reg,
		Kx:     kx,
	}
	if err := m.Sign(h.dig, key); err != nil {
		return nil, err
	}
	return m, nil
}

// scratchRequest builds and signs a register request in the handle's
// scratch message — the zero-allocation hot path behind the public
// register APIs. Under Config.Encrypt, write values are encrypted with
// the sequence-number-derived keystream before signing (§XI's
// encrypt-then-MAC), which is why the sequence number is reserved before
// the payload is filled. Callers must hold h.opMu; the returned message
// is valid until the next scratchRequest on this handle.
func (h *swHandle) scratchRequest(msgType uint8, regID, index uint32, value uint64) (*core.Message, error) {
	key, ver, err := h.keys.Current(core.KeyIndexLocal)
	if err != nil {
		return nil, err
	}
	seq := h.seq.Next()
	if h.cfg.Encrypt && msgType == core.MsgWriteReq {
		value = core.EncryptRequestValue(h.dig, key, seq, value)
	}
	h.txReg = core.RegPayload{RegID: regID, Index: index, Value: value}
	h.txMsg = core.Message{
		Header: core.Header{HdrType: core.HdrRegister, MsgType: msgType, SeqNum: seq, KeyVersion: ver},
		Reg:    &h.txReg,
	}
	if err := h.txMsg.Sign(h.dig, key); err != nil {
		return nil, err
	}
	return &h.txMsg, nil
}

// checkResponse authenticates a response and settles its sequence number
// (the single-attempt/final form of vetResponses).
func (c *Controller) checkResponse(h *swHandle, req *core.Message, r *core.Message) error {
	_, err := c.vetResponses(h, req, []*core.Message{r}, true)
	return err
}
