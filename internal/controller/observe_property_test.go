package controller

import (
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
)

// propRNG is splitmix64 (stable across Go versions, unlike math/rand).
type propRNG struct{ s uint64 }

func (r *propRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (r *propRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// TestRandomizedInterleavingsAuditProperty replays a long seeded random
// schedule of the operations an operator's fabric actually interleaves —
// serial and windowed register traffic, key rollovers, port-key updates,
// request tampering, response loss, controller kills with warm restart,
// and switch crash/reboot cycles — and asserts two properties the
// observability layer promises:
//
//   - the data plane's replay floor is monotone non-decreasing at every
//     step of the schedule (sampled after every operation);
//   - the audit log explains everything: every rejection-class event
//     names a non-empty cause, and the floor-bump / dropped-write
//     counters reconcile exactly against their audit events, across
//     controller generations (the observer is shared, like the chaos
//     harness does).
//
// Runs in the stress gate (-race); -short trims the schedule.
func TestRandomizedInterleavingsAuditProperty(t *testing.T) {
	iters := 1000
	if testing.Short() {
		iters = 64
	}
	rng := &propRNG{s: 0x0b5e4ab1e5}
	st := statestore.NewMem()
	ob := obs.NewObserver(0)
	names := []string{"s1", "s2"}
	sws := map[string]*deploy.Switch{}
	for _, n := range names {
		sws[n] = buildSwitch(t, n, false)
	}

	gen := uint64(0)
	newCtl := func() *Controller {
		gen++
		c := New(crypto.NewSeededRand(0x9A0<<10 | gen))
		pol := ResilientRetryPolicy()
		pol.MaxAttempts = 8
		c.SetRetryPolicy(pol)
		for _, n := range names {
			if err := c.Register(n, sws[n].Host, sws[n].Cfg, 50*time.Microsecond); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
			t.Fatal(err)
		}
		if err := c.EnableCrashSafety(st); err != nil {
			t.Fatal(err)
		}
		c.SetObserver(ob)
		return c
	}

	c := newCtl()
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := sws[n].SaveState(st, "dev/"+n, 1); err != nil {
			t.Fatal(err)
		}
	}

	// floors[n] is the last observed C-DP replay floor; it must never
	// move backwards while key material survives. A cold re-seed
	// (Reinitialize after an unrecoverable reboot) wipes the keys WITH
	// the floors — old traffic is unverifiable, so that reset is sound —
	// and the audit log is required to own up to it: the baseline is
	// reset only for switches named by a new EvEAKFallback event.
	floors := map[string]uint64{}
	checkFloors := func(step, seenFallbacks int) {
		t.Helper()
		fb := ob.Audit.ByType(obs.EvEAKFallback)
		for _, e := range fb[seenFallbacks:] {
			floors[e.Actor] = 0
		}
		for _, n := range names {
			f, err := sws[n].Host.SW.RegisterRead(core.RegSeq, 0)
			if err != nil {
				t.Fatalf("step %d: read %s floor: %v", step, n, err)
			}
			if f < floors[n] {
				t.Fatalf("step %d: %s replay floor regressed %d -> %d", step, n, floors[n], f)
			}
			floors[n] = f
		}
	}

	for i := 0; i < iters; i++ {
		n := names[rng.intn(len(names))]
		seenFallbacks := len(ob.Audit.ByType(obs.EvEAKFallback))
		switch op := rng.intn(20); {
		case op < 8: // serial write (errors allowed: quarantine, budget)
			_, _ = c.WriteRegister(n, "lat", uint32(rng.intn(8)), rng.next()%0xFFFF)
		case op < 11: // serial read
			_, _, _ = c.ReadRegister(n, "lat", uint32(rng.intn(8)))
		case op < 13: // windowed batch write
			writes := make([]RegWrite, 4)
			for j := range writes {
				writes[j] = RegWrite{Register: "lat", Index: uint32(rng.intn(8)), Value: rng.next() % 0xFFFF}
			}
			_, _ = c.WriteRegisterBatch(n, 2, writes)
		case op < 15: // local rollover
			_, _ = c.LocalKeyUpdate(n)
		case op < 16: // port rollover
			_, _ = c.PortKeyUpdate("s1", 1)
		case op < 17: // tamper one request, then write through it
			hit := false
			if err := c.SetControlTaps(n, func(b []byte) []byte {
				if !hit && len(b) > 0 {
					hit = true
					mangled := append([]byte(nil), b...)
					mangled[len(mangled)-1] ^= 0x80
					return mangled
				}
				return b
			}, nil); err != nil {
				t.Fatal(err)
			}
			_, _ = c.WriteRegister(n, "lat", uint32(rng.intn(8)), rng.next()%0xFFFF)
			_ = c.SetControlTaps(n, nil, nil)
		case op < 18: // drop one response, forcing a retransmission
			hit := false
			if err := c.SetControlTaps(n, nil, func(b []byte) []byte {
				if !hit {
					hit = true
					return nil
				}
				return b
			}); err != nil {
				t.Fatal(err)
			}
			_, _ = c.WriteRegister(n, "lat", uint32(rng.intn(8)), rng.next()%0xFFFF)
			_ = c.SetControlTaps(n, nil, nil)
		case op < 19: // controller kill + warm restart (new generation)
			c.Kill()
			c = newCtl()
			if _, err := c.RecoverAll(); err != nil {
				t.Fatalf("step %d: RecoverAll: %v", i, err)
			}
		default: // switch crash + warm device reboot + revival
			// Snapshot just before the crash: a warm restore from a
			// *stale* snapshot genuinely rolls the device floor back
			// (that is the case ReviveSwitch's lease-bump healing
			// exists for, and the chaos harness covers it); the
			// monotonicity property holds for fresh snapshots.
			if err := sws[n].SaveState(st, "dev/"+n, uint64(i)+2); err != nil {
				t.Fatal(err)
			}
			sws[n].Crash()
			if _, err := sws[n].RebootFromStore(st, "dev/"+n); err != nil {
				t.Fatalf("step %d: reboot %s: %v", i, n, err)
			}
			if _, err := c.ReviveSwitch(n); err != nil {
				t.Fatalf("step %d: revive %s: %v", i, n, err)
			}
		}
		checkFloors(i, seenFallbacks)
	}

	// Audit completeness over the whole schedule, all generations.
	if ev := ob.Audit.Evicted(); ev != 0 {
		t.Fatalf("audit ring evicted %d events; raise the cap or shorten the schedule", ev)
	}
	for _, e := range ob.Audit.Events() {
		switch e.Type {
		case obs.EvFloorBump, obs.EvWriteDropped, obs.EvDigestMismatch,
			obs.EvReplayRejected, obs.EvRolloverRollback, obs.EvWALSettle:
			if e.Cause == "" {
				t.Errorf("audit event #%d (%s on %s) names no cause", e.ID, e.Type, e.Actor)
			}
		}
	}
	bumps := ob.Metrics.Counter("ctl.floor_bumps").Load()
	if got := uint64(len(ob.Audit.ByType(obs.EvFloorBump))); got != bumps {
		t.Errorf("%d floor bumps counted, %d audit events explain them", bumps, got)
	}
	drops := ob.Metrics.Counter("ctl.write_dropped").Load()
	if got := uint64(len(ob.Audit.ByType(obs.EvWriteDropped))); got != drops {
		t.Errorf("%d dropped writes counted, %d audit events explain them", drops, got)
	}
	if rej := len(ob.Audit.ByType(obs.EvReplayRejected)) + len(ob.Audit.ByType(obs.EvDigestMismatch)); rej == 0 {
		t.Error("schedule produced no rejections; the tamper/drop operations are not exercising the defence")
	}
}
