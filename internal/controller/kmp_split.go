package controller

import (
	"errors"
	"fmt"

	"p4auth/internal/core"
)

// This file splits the five-leg port-key initialization of Fig. 14(c)
// into three independently-invocable halves for links whose two ends are
// owned by DIFFERENT controllers (the cross-pod agg-core links of the
// controller hierarchy). PortKeyInit requires one controller holding
// both switch handles; here the initiating controller runs legs 1-2
// (Open) and leg 5 (Close) against its own switch, the remote owner runs
// legs 3-4 (Remote) against its switch, and the hierarchy's broker
// carries (pk1, s1, ver) outbound and (pk2, s2) back over the WAN. The
// controllers still never learn the derived port key — only the public
// DH shares and salts transit the broker, exactly the bytes the paper
// already puts on the C-DP wire.
//
// Version discipline across controllers reuses the paired-install
// invariant: Open reports the initiator slot's pre-exchange version;
// Remote refuses to run unless its slot can be brought to the same
// version (realigning forward with throwaway installs when lagging,
// returning a KeySkewError when ahead so the initiator can realign
// upward and restart). Close confirms by state like the resilient
// single-controller flow: read pa_ver and resend until the install
// shows.

// PortKeyExchOpen runs legs 1-2 of a split port-key init on the local
// switch a: trigger a's ADHKD for port pa and capture its public share.
// It returns a's half of the exchange (pk1, s1) and ver, the slot's
// pre-exchange install counter that both ends must agree on. No install
// happens on a; an Open with no matching Close leaves only a stashed
// nonce, which the next exchange overwrites.
func (c *Controller) PortKeyExchOpen(a string, pa int) (pk1 uint64, s1 uint32, ver uint8, res KMPResult, err error) {
	h, err := c.handle(a)
	if err != nil {
		return 0, 0, 0, res, err
	}
	ver, err = c.readPortVer(h, pa, &res)
	if err != nil {
		return 0, 0, 0, res, err
	}
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgPortKeyInit, nil,
		&core.KxPayload{Port: uint16(pa)})
	if err != nil {
		return 0, 0, 0, res, err
	}
	x, err := c.transact(h, req, true)
	res.account(x)
	if err != nil {
		return 0, 0, 0, res, err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD1 {
		return 0, 0, 0, res, fmt.Errorf("controller: %s: unexpected portKeyInit response", a)
	}
	return x.resp[0].Kx.PK, x.resp[0].Kx.Salt, ver, res, nil
}

// PortKeyExchRemote runs legs 3-4 on the remote end of a split exchange:
// deliver the initiator's ADHKD1 (pk1, s1) to local switch b's port pb
// and return b's answering share (pk2, s2). ver is the initiator slot's
// pre-exchange version from PortKeyExchOpen. A lagging b slot is first
// realigned forward to ver with throwaway installs; a b slot AHEAD of
// ver returns a KeySkewError (PeerAhead from the initiator's view) so
// the initiator can realign upward and restart the exchange. On success
// b has installed — the verified ADHKD2 proves it (signed-before-
// install) — and b's slot sits at ver+1.
func (c *Controller) PortKeyExchRemote(b string, pb int, pk1 uint64, s1 uint32, ver uint8) (pk2 uint64, s2 uint32, res KMPResult, err error) {
	h, err := c.handle(b)
	if err != nil {
		return 0, 0, res, err
	}
	verB, err := c.readPortVer(h, pb, &res)
	if err != nil {
		return 0, 0, res, err
	}
	if int8(verB-ver) > 0 {
		return 0, 0, res, &KeySkewError{A: "peer", PA: -1, B: b, PB: pb, VerA: ver, VerB: verB}
	}
	if verB != ver {
		if err := c.realignPortSlot(h, pb, ver, &res); err != nil {
			return 0, 0, res, err
		}
	}
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
		&core.KxPayload{Port: uint16(pb), PK: pk1, Salt: s1})
	if err != nil {
		return 0, 0, res, err
	}
	x, err := c.transact(h, req, true)
	res.account(x)
	res.RTT += SignCost + VerifyCost
	if err != nil {
		return 0, 0, res, err
	}
	if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD2 {
		return 0, 0, res, fmt.Errorf("controller: %s: unexpected redirected ADHKD response", b)
	}
	if err := c.autoPersist(b); err != nil {
		return 0, 0, res, err
	}
	return x.resp[0].Kx.PK, x.resp[0].Kx.Salt, res, nil
}

// PortKeyExchClose runs leg 5 of a split exchange on local switch a:
// deliver the remote end's ADHKD2 (pk2, s2) so a derives and installs
// the shared port key. want is ver+1 (the post-exchange version both
// slots must reach). Like the resilient single-controller flow, the
// response-less leg is confirmed by state — read pa_ver[pa], resend the
// same bytes until the install shows — and duplicates are absorbed by
// the agent's idempotency cache.
func (c *Controller) PortKeyExchClose(a string, pa int, pk2 uint64, s2 uint32, want uint8) (res KMPResult, err error) {
	h, err := c.handle(a)
	if err != nil {
		return res, err
	}
	req, err := h.signedMessage(core.HdrKeyExch, core.MsgADHKD2, nil,
		&core.KxPayload{Port: uint16(pa), PK: pk2, Salt: s2})
	if err != nil {
		return res, err
	}
	pol := c.retryPolicy()
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if wait := pol.backoff(attempt); wait > 0 {
			res.RTT += wait
			c.mu.Lock()
			clk := c.clock
			c.mu.Unlock()
			if clk != nil {
				clk.Advance(wait)
			}
		}
		x, lerr := c.transact(h, req, false)
		res.account(x)
		res.RTT += SignCost
		if lerr != nil && errors.Is(lerr, ErrQuarantined) {
			return res, lerr
		}
		got, err := c.readPortVer(h, pa, &res)
		if err != nil {
			return res, err
		}
		if got == want {
			return res, c.autoPersist(a)
		}
	}
	c.noteFailure(h)
	return res, fmt.Errorf("%w: %s: port %d install never confirmed", ErrTimeout, a, pa)
}

// RealignPortSlot drives local switch sw's port slot FORWARD to version
// target with throwaway ADHKD installs (one per missing install), for a
// split exchange whose remote end reported PeerAhead. The keys derived
// are valid only to equalize the counters; the caller must follow with a
// fresh split exchange to establish a usable shared key. A slot already
// past target is an error — a split realign only moves forward, the
// direction that is always possible without touching the other
// controller's switch.
func (c *Controller) RealignPortSlot(sw string, port int, target uint8) (KMPResult, error) {
	h, err := c.handle(sw)
	if err != nil {
		return KMPResult{}, err
	}
	var res KMPResult
	err = c.realignPortSlot(h, port, target, &res)
	return res, err
}

func (c *Controller) realignPortSlot(h *swHandle, port int, target uint8, res *KMPResult) error {
	ver, err := c.readPortVer(h, port, res)
	if err != nil {
		return err
	}
	if d := int8(ver - target); d > 0 {
		return fmt.Errorf("controller: %s port %d at version %d, past realign target %d", h.name, port, ver, target)
	}
	for ver != target {
		adhkd := core.NewADHKD(h.cfg, c.rng)
		req, err := h.signedMessage(core.HdrKeyExch, core.MsgADHKD1, nil,
			&core.KxPayload{Port: uint16(port), PK: adhkd.PK1(), Salt: adhkd.S1})
		if err != nil {
			return err
		}
		x, err := c.transact(h, req, true)
		res.account(x)
		res.RTT += SignCost + VerifyCost
		if err != nil {
			return fmt.Errorf("controller: realign %s port %d: %w", h.name, port, err)
		}
		if len(x.resp) != 1 || x.resp[0].MsgType != core.MsgADHKD2 {
			return fmt.Errorf("controller: realign %s port %d: unexpected response", h.name, port)
		}
		ver++
	}
	return nil
}
