package controller

import (
	"errors"
	"testing"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

func buildSwitch(t *testing.T, name string, insecure bool) *deploy.Switch {
	t.Helper()
	sw, err := deploy.Build(deploy.SwitchSpec{
		Name:     name,
		Ports:    4,
		Insecure: insecure,
		Registers: []*pisa.RegisterDef{
			{Name: "lat", Width: 32, Entries: 8},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// twoSwitchFabric builds two switches linked on port 1 of each, both
// registered with a controller.
func twoSwitchFabric(t *testing.T) (*Controller, *deploy.Switch, *deploy.Switch) {
	t.Helper()
	s1 := buildSwitch(t, "s1", false)
	s2 := buildSwitch(t, "s2", false)
	c := New(crypto.NewSeededRand(2024))
	if err := c.Register("s1", s1.Host, s1.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("s2", s2.Host, s2.Cfg, 50*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := c.ConnectSwitches("s1", 1, "s2", 1, 5*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	return c, s1, s2
}

func TestRegisterReadWriteUnderSeedKey(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	lat, err := c.WriteRegister("s1", "lat", 2, 999)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("latency must be positive")
	}
	v, _, err := c.ReadRegister("s1", "lat", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v != 999 {
		t.Fatalf("read %d, want 999", v)
	}
	if dp, _ := s1.Host.SW.RegisterRead("lat", 2); dp != 999 {
		t.Fatalf("data plane holds %d", dp)
	}
}

func TestLocalKeyInitAndOperate(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	res, err := c.LocalKeyInit("s1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 {
		t.Errorf("local key init took %d messages, want 4 (Table III)", res.Messages)
	}
	if res.Bytes < 90 || res.Bytes > 130 {
		t.Errorf("local key init bytes = %d, want ~104 (Table III)", res.Bytes)
	}
	if res.RTT <= 0 {
		t.Error("RTT must be positive")
	}
	if !c.KeyEstablished("s1") {
		t.Fatal("local key not established")
	}
	// Operations continue under the fresh key.
	if _, err := c.WriteRegister("s1", "lat", 0, 5); err != nil {
		t.Fatal(err)
	}
	// Controller key agrees with the data plane's current slot (version 2
	// after EAK+ADHKD -> register v0).
	dp, err := s1.Host.SW.RegisterRead(core.RegKeysV0, core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	ctrlKey, ver, err := c.switches["s1"].keys.Current(core.KeyIndexLocal)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || ctrlKey != dp {
		t.Fatalf("key disagreement: ctrl %#x v%d, dp %#x", ctrlKey, ver, dp)
	}
}

func TestLocalKeyUpdate(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	before, _, _ := c.switches["s1"].keys.Current(core.KeyIndexLocal)
	res, err := c.LocalKeyUpdate("s1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 {
		t.Errorf("local key update took %d messages, want 2 (Table III)", res.Messages)
	}
	after, _, _ := c.switches["s1"].keys.Current(core.KeyIndexLocal)
	if before == after {
		t.Error("key unchanged after update")
	}
	if _, err := c.WriteRegister("s1", "lat", 0, 6); err != nil {
		t.Fatal(err)
	}
}

func TestLocalKeyUpdateRequiresInit(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	// Seed key counts as established (boot state), so drive an op first to
	// prove updates work straight from seed as well.
	if _, err := c.LocalKeyUpdate("s1"); err != nil {
		t.Fatalf("update from seed state should work: %v", err)
	}
}

func TestPortKeyInitAgreesAcrossSwitches(t *testing.T) {
	c, s1, s2 := twoSwitchFabric(t)
	for _, sw := range []string{"s1", "s2"} {
		if _, err := c.LocalKeyInit(sw); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.PortKeyInit("s1", 1, "s2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 5 {
		t.Errorf("port key init took %d messages, want 5 (Table III)", res.Messages)
	}
	if res.Bytes < 120 || res.Bytes > 160 {
		t.Errorf("port key init bytes = %d, want ~138 (Table III)", res.Bytes)
	}

	// Both data planes hold the same port key (first install -> version 1
	// -> odd register) and the controller does NOT know it.
	k1, err := s1.Host.SW.RegisterRead(core.RegKeysV1, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s2.Host.SW.RegisterRead(core.RegKeysV1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == 0 || k1 != k2 {
		t.Fatalf("port keys disagree: s1=%#x s2=%#x", k1, k2)
	}
	// Egress copies installed on both.
	e1, _ := s1.Host.SW.RegisterRead(core.RegEgKeysV1, 1)
	e2, _ := s2.Host.SW.RegisterRead(core.RegEgKeysV1, 1)
	if e1 != k1 || e2 != k2 {
		t.Fatalf("egress key copies disagree: %#x %#x (want %#x)", e1, e2, k1)
	}
}

func TestPortKeyUpdateDirectDPDP(t *testing.T) {
	c, s1, s2 := twoSwitchFabric(t)
	for _, sw := range []string{"s1", "s2"} {
		if _, err := c.LocalKeyInit(sw); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.PortKeyInit("s1", 1, "s2", 1); err != nil {
		t.Fatal(err)
	}
	before, _ := s1.Host.SW.RegisterRead(core.RegKeysV1, 1)

	res, err := c.PortKeyUpdate("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3 {
		t.Errorf("port key update took %d messages, want 3 (Table III)", res.Messages)
	}
	// New key at version 2 -> even register, same on both switches,
	// different from the old one.
	k1, err := s1.Host.SW.RegisterRead(core.RegKeysV0, 1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s2.Host.SW.RegisterRead(core.RegKeysV0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == 0 || k1 != k2 {
		t.Fatalf("updated port keys disagree: s1=%#x s2=%#x", k1, k2)
	}
	if k1 == before {
		t.Error("port key unchanged by update")
	}
	v1, _ := s1.Host.SW.RegisterRead(core.RegVer, 1)
	v2, _ := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if v1 != 2 || v2 != 2 {
		t.Errorf("port key versions = %d/%d, want 2/2", v1, v2)
	}
}

func TestInitAndUpdateAllKeys(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	init, err := c.InitAllKeys()
	if err != nil {
		t.Fatal(err)
	}
	// Table III: 4m + 5n messages for m=2 switches, n=1 link.
	if init.Messages != 4*2+5*1 {
		t.Errorf("init messages = %d, want 13 (4m+5n)", init.Messages)
	}
	upd, err := c.UpdateAllKeys()
	if err != nil {
		t.Fatal(err)
	}
	// 2m + 3n.
	if upd.Messages != 2*2+3*1 {
		t.Errorf("update messages = %d, want 7 (2m+3n)", upd.Messages)
	}
	if upd.Bytes >= init.Bytes {
		t.Errorf("update bytes %d should be below init bytes %d", upd.Bytes, init.Bytes)
	}
}

func TestMitMOnReadResponseDetected(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegister("s1", "lat", 0, 50); err != nil {
		t.Fatal(err)
	}

	// The paper's Attack 1: a compromised switch OS rewrites the latency
	// the data plane reports (Fig. 9). With P4Auth the digest no longer
	// matches and the controller refuses the value.
	if err := s1.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil {
				return data
			}
			m.Reg.Value = 5 // deflate the reported latency
			out, _ := m.Encode()
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.ReadRegister("s1", "lat", 0)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered response accepted: %v", err)
	}
}

func TestMitMOnWriteRequestDetectedByDataPlane(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	if _, err := c.LocalKeyInit("s1"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Host.Install(switchos.BoundarySDKDriver, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil {
				return data
			}
			m.Reg.Value = 9999
			out, _ := m.Encode()
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, err := c.WriteRegister("s1", "lat", 3, 10)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered write not flagged: %v", err)
	}
	if v, _ := s1.Host.SW.RegisterRead("lat", 3); v != 0 {
		t.Fatalf("tampered write applied: %d", v)
	}
	if len(c.Alerts()) == 0 {
		t.Fatal("no alert recorded")
	}
	if c.Alerts()[0].Reason != core.AlertBadDigest {
		t.Errorf("alert reason = %d", c.Alerts()[0].Reason)
	}
}

func TestNAckForUnknownRegister(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	_, _, err := c.ReadRegister("s1", "nonexistent", 0)
	if err == nil {
		t.Fatal("expected error for unknown register")
	}
}

func TestInsecureBaselineAcceptsMitM(t *testing.T) {
	// The same attack against the DP-Reg-RW baseline succeeds — the gap
	// P4Auth closes.
	s := buildSwitch(t, "victim", true)
	c := New(crypto.NewSeededRand(1))
	if err := c.Register("victim", s.Host, s.Cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Host.Install(switchos.BoundarySDKDriver, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil {
				return data
			}
			m.Reg.Value = 9999
			out, _ := m.Encode()
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteRegisterInsecure("victim", "lat", 0, 10); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Host.SW.RegisterRead("lat", 0); v != 9999 {
		t.Fatalf("baseline should have accepted the tampered write, got %d", v)
	}
}

func TestP4RuntimeAPIBaseline(t *testing.T) {
	c, s1, _ := twoSwitchFabric(t)
	wLat, err := c.WriteRegisterAPI("s1", "lat", 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	v, rLat, err := c.ReadRegisterAPI("s1", "lat", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("API read %d, want 77", v)
	}
	// Fig. 19's asymmetry: API writes compose more fields than reads.
	if wLat <= rLat {
		t.Errorf("API write latency %v should exceed read latency %v", wLat, rLat)
	}
	_ = s1
}

func TestControllerErrors(t *testing.T) {
	c := New(crypto.NewSeededRand(1))
	if _, err := c.handle("ghost"); err == nil {
		t.Error("unknown switch must error")
	}
	if err := c.ConnectSwitches("a", 1, "b", 1, 0); err == nil {
		t.Error("connecting unknown switches must error")
	}
	if _, err := c.PortKeyUpdate("ghost", 1); err == nil {
		t.Error("port update on unknown switch must error")
	}
	s := buildSwitch(t, "solo", false)
	if err := c.Register("solo", s.Host, s.Cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("solo", s.Host, s.Cfg, 0); err == nil {
		t.Error("duplicate registration must error")
	}
	if _, err := c.PortKeyUpdate("solo", 1); err == nil {
		t.Error("port update without adjacency must error")
	}
	if _, err := c.Outstanding("ghost"); err == nil {
		t.Error("outstanding on unknown switch must error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.WriteRegister("s1", "lat", 0, 1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.MessagesSent != 1 || st.MessagesRecvd != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesSent == 0 || st.BytesRecvd == 0 {
		t.Errorf("byte stats = %+v", st)
	}
}
