package controller

import (
	"errors"
	"sync/atomic"
	"testing"

	"p4auth/internal/core"
)

func TestLinksAccessor(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	links := c.Links()
	if len(links) != 1 {
		t.Fatalf("got %d links, want 1", len(links))
	}
	l := links[0]
	if l[0] != (LinkEnd{Switch: "s1", Port: 1}) || l[1] != (LinkEnd{Switch: "s2", Port: 1}) {
		t.Fatalf("unexpected link %+v", l)
	}
}

func TestPortKeySkewDetectAndRepair(t *testing.T) {
	c, _, s2 := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	if skew, err := c.PortKeySkew("s1", 1); err != nil || skew != nil {
		t.Fatalf("aligned link reported skew=%v err=%v", skew, err)
	}

	// One-sided rollover: s2's install counter moves without its peer.
	ver, err := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Host.SW.RegisterWrite(core.RegVer, 1, ver+1); err != nil {
		t.Fatal(err)
	}

	skew, err := c.PortKeySkew("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if skew == nil {
		t.Fatal("skew not detected")
	}
	if !errors.Is(skew, ErrKeySkew) {
		t.Error("KeySkewError must unwrap to ErrKeySkew")
	}
	if !skew.PeerAhead() {
		t.Errorf("peer ran ahead, PeerAhead()=false (%+v)", skew)
	}
	if skew.VerB != skew.VerA+1 {
		t.Errorf("skew versions %d vs %d, want one apart", skew.VerA, skew.VerB)
	}

	// Both link-end namings share one fence.
	e1, err := c.NextRepairEpoch("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.NextRepairEpoch("s2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1+1 {
		t.Fatalf("epochs %d then %d: the two namings must draw from one fence", e1, e2)
	}

	if _, err := c.RepairPortKey("s1", 1, e2); err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if skew, err := c.PortKeySkew("s1", 1); err != nil || skew != nil {
		t.Fatalf("post-repair skew=%v err=%v", skew, err)
	}
	after, err := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if err != nil {
		t.Fatal(err)
	}
	if after <= ver+1 {
		t.Fatalf("repair must roll forward past the skewed counter (pa_ver %d, skewed at %d)", after, ver+1)
	}
}

func TestRepairEpochFencing(t *testing.T) {
	c, _, _ := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	e1, err := c.NextRepairEpoch("s1", 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.NextRepairEpoch("s1", 1)
	if err != nil {
		t.Fatal(err)
	}

	// A superseded epoch is refused before anything is sent.
	before := c.Stats().MessagesSent
	if _, err := c.RepairPortKey("s1", 1, e1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale epoch accepted: %v", err)
	}
	if got := c.Stats().MessagesSent; got != before {
		t.Fatalf("fenced repair sent %d messages, want 0", got-before)
	}

	if _, err := c.RepairPortKey("s1", 1, e2); err != nil {
		t.Fatalf("current epoch refused: %v", err)
	}
	// A committed epoch can never run again.
	if _, err := c.RepairPortKey("s1", 1, e2); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("committed epoch re-admitted: %v", err)
	}
	if _, err := c.RepairPortKey("s1", 1, 0); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("epoch 0 admitted: %v", err)
	}
}

// TestRepairFencedMidFlight races two repair generations: while the first
// repair is between its protocol legs, a newer epoch is issued. The stale
// attempt must stop at its next fence check — its remaining installs never
// land — and the newer-epoch repair must then converge the link from the
// half-installed state the abort left behind.
func TestRepairFencedMidFlight(t *testing.T) {
	c, s1, s2 := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	e1, err := c.NextRepairEpoch("s1", 1)
	if err != nil {
		t.Fatal(err)
	}

	// The repair's traffic to s2 is: one pa_ver read, then the redirected
	// ADHKD legs 3-4. Issuing a new epoch while legs 3-4 are on the wire
	// (control taps run with the controller lock released) leaves the
	// leg-5 install to s1 fenced off.
	var toS2, e2 int32
	if err := c.SetControlTaps("s2", func(data []byte) []byte {
		if atomic.AddInt32(&toS2, 1) == 2 {
			e, err := c.NextRepairEpoch("s2", 1)
			if err != nil {
				t.Errorf("mid-flight epoch issue: %v", err)
			}
			atomic.StoreInt32(&e2, int32(e))
		}
		return data
	}, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := c.RepairPortKey("s1", 1, e1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("overtaken repair finished with %v, want ErrStaleEpoch", err)
	}
	if err := c.SetControlTaps("s2", nil, nil); err != nil {
		t.Fatal(err)
	}

	// The abort left the link one-sided: s2 installed (legs 3-4), s1 never
	// saw leg 5.
	v1, _ := s1.Host.SW.RegisterRead(core.RegVer, 1)
	v2, _ := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if v2 != v1+1 {
		t.Fatalf("expected half-installed link (s1=%d s2=%d)", v1, v2)
	}

	if _, err := c.RepairPortKey("s1", 1, uint64(atomic.LoadInt32(&e2))); err != nil {
		t.Fatalf("successor repair failed: %v", err)
	}
	if skew, err := c.PortKeySkew("s1", 1); err != nil || skew != nil {
		t.Fatalf("link not converged after successor repair: skew=%v err=%v", skew, err)
	}
}

// TestPortKeyUpdateSkewTyped drives PortKeyUpdate into a pre-drifted link
// whose repair fallback cannot complete, and asserts the failure carries
// the typed skew cause so callers can tell "resync still owed" from a
// plain transport timeout.
func TestPortKeyUpdateSkewTyped(t *testing.T) {
	c, _, s2 := twoSwitchFabric(t)
	if _, err := c.InitAllKeys(); err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, FlowRetries: 1})

	ver, err := s2.Host.SW.RegisterRead(core.RegVer, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Host.SW.RegisterWrite(core.RegVer, 1, ver+1); err != nil {
		t.Fatal(err)
	}

	// Pass s1's first exchange (the drift-detecting pa_ver read), then
	// black-hole the rest so the fallback init cannot run.
	var n int32
	if err := c.SetControlTaps("s1", func(data []byte) []byte {
		if atomic.AddInt32(&n, 1) > 1 {
			return nil
		}
		return data
	}, nil); err != nil {
		t.Fatal(err)
	}

	_, err = c.PortKeyUpdate("s1", 1)
	if err == nil {
		t.Fatal("update on a dead drifted link succeeded")
	}
	if !errors.Is(err, ErrKeySkew) {
		t.Fatalf("error %v does not carry ErrKeySkew", err)
	}
	var skew *KeySkewError
	if !errors.As(err, &skew) {
		t.Fatalf("error %v does not carry *KeySkewError", err)
	}
	if skew.A != "s1" || skew.B != "s2" || !skew.PeerAhead() {
		t.Fatalf("skew detail %+v", skew)
	}
}
