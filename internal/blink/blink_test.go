package blink

import (
	"testing"
)

const (
	primaryPort   = 2
	backupPort    = 3
	newBackupPort = 4
	blackhole     = 9
)

func deploy(t *testing.T, secure bool) *System {
	t.Helper()
	s, err := New(DefaultParams(secure), primaryPort, backupPort)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDataPlaneFastReroute(t *testing.T) {
	s := deploy(t, true)
	// Healthy: primary next hop.
	if port, err := s.Packet(5, false); err != nil || port != primaryPort {
		t.Fatalf("healthy packet: port=%d err=%v", port, err)
	}
	// Failure evidence: retransmission burst for prefix 5 only.
	for i := 0; i < FailThreshold; i++ {
		if _, err := s.Packet(5, true); err != nil {
			t.Fatal(err)
		}
	}
	// Rerouted — with no controller involvement.
	if port, err := s.Packet(5, false); err != nil || port != backupPort {
		t.Fatalf("post-failure packet: port=%d err=%v", port, err)
	}
	// Other prefixes unaffected.
	if port, err := s.Packet(6, false); err != nil || port != primaryPort {
		t.Fatalf("unrelated prefix rerouted: port=%d err=%v", port, err)
	}
}

func TestEvidenceBelowThresholdDoesNotReroute(t *testing.T) {
	s := deploy(t, true)
	for i := 0; i < FailThreshold-1; i++ {
		if _, err := s.Packet(7, true); err != nil {
			t.Fatal(err)
		}
	}
	if port, err := s.Packet(7, false); err != nil || port != primaryPort {
		t.Fatalf("sub-threshold evidence rerouted: port=%d err=%v", port, err)
	}
}

// runUpdateScenario: the operator re-provisions the backup next hop (the
// C-DP update of Table I), then a failure wave reroutes the prefix. The
// metric is where rerouted traffic lands.
func runUpdateScenario(t *testing.T, secure, attacked bool) (*System, int) {
	t.Helper()
	s := deploy(t, secure)
	if attacked {
		if err := s.InstallNexthopRewriter(blackhole); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.WriteNexthop(RegBackup, 5, newBackupPort); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < FailThreshold; i++ {
		if _, err := s.Packet(5, true); err != nil {
			t.Fatal(err)
		}
	}
	port, err := s.Packet(5, false)
	if err != nil {
		t.Fatal(err)
	}
	return s, port
}

func TestCleanBackupUpdate(t *testing.T) {
	s, port := runUpdateScenario(t, true, false)
	if port != newBackupPort {
		t.Fatalf("rerouted to %d, want updated backup %d", port, newBackupPort)
	}
	if s.TamperedWrites != 0 {
		t.Errorf("clean run flagged %d writes", s.TamperedWrites)
	}
}

func TestNexthopRewriteBlackholesWithoutP4Auth(t *testing.T) {
	_, port := runUpdateScenario(t, false, true)
	if port != blackhole {
		t.Fatalf("rerouted to %d, expected the attacker's blackhole %d", port, blackhole)
	}
}

func TestP4AuthProtectsNexthopUpdates(t *testing.T) {
	s, port := runUpdateScenario(t, true, true)
	if s.TamperedWrites == 0 {
		t.Fatal("tampering undetected")
	}
	if port != newBackupPort {
		t.Fatalf("rerouted to %d, want %d via the quarantined retry", port, newBackupPort)
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}
