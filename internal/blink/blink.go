// Package blink is a full-pipeline miniature of Blink (Holterbach et al.,
// NSDI 2019), the data-plane fast-reroute system of the paper's Table I.
// The data plane counts failure evidence (retransmission-marked packets)
// per prefix in a register window and, past a threshold, autonomously
// flips traffic from the primary to the backup next hop — entirely in the
// data plane, no controller in the loop. The controller maintains the
// per-prefix next-hop list in registers over C-DP; that update message is
// what the paper's adversary rewrites ("poisoning of fast rerouting
// decision"), steering rerouted traffic into a blackhole.
package blink

import (
	"errors"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/switchos"
)

// PTypeData tags forwarded packets.
const PTypeData = 0xB1

// Register names: the per-prefix next-hop list (primary, backup) and the
// failure-evidence window.
const (
	RegPrimary  = "bl_primary"
	RegBackup   = "bl_backup"
	RegEvidence = "bl_evidence"
	RegFailed   = "bl_failed" // latched failover decision per prefix
)

// FailThreshold is the evidence count that trips the reroute.
const FailThreshold = 8

// Params configures the system.
type Params struct {
	Prefixes int
	Secure   bool
	// Name identifies the switch at its controller; empty means the
	// historical "edge". Fleet deployments run one instance per pod and
	// need distinct names within a shared controller namespace.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (p Params) name() string {
	if p.Name == "" {
		return "edge"
	}
	return p.Name
}

// DefaultParams tracks a small prefix table.
func DefaultParams(secure bool) Params { return Params{Prefixes: 16, Secure: secure} }

// System is a running Blink deployment.
type System struct {
	Params Params
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg core.Config

	TamperedWrites int
}

var pktDef = &pisa.HeaderDef{Name: "blp", Fields: []pisa.FieldDef{
	{Name: "prefix", Width: 16},
	{Name: "retrans", Width: 8},
}}

func buildProgram(p Params) (*pisa.Program, core.Config, error) {
	prog := &pisa.Program{
		Name:    "blink",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), pktDef},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeData: "bl_data"}},
			{Name: "bl_data", Extract: "blp"},
		},
		DeparseOrder: []string{core.HdrPType, "blp"},
		Metadata: []pisa.FieldDef{
			{Name: "bl_fail", Width: 8},
			{Name: "bl_ev", Width: 32},
			{Name: "bl_nh", Width: 16},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegPrimary, Width: 16, Entries: p.Prefixes},
			{Name: RegBackup, Width: 16, Entries: p.Prefixes},
			{Name: RegEvidence, Width: 32, Entries: p.Prefixes},
			{Name: RegFailed, Width: 8, Entries: p.Prefixes},
		},
	}
	m := func(f string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, f) }
	prefix := pisa.R(pisa.F("blp", "prefix"))

	ops := []pisa.Op{
		// Failure evidence: retransmission-marked packets bump the window;
		// the threshold latches the failover (a single RMW each).
		pisa.If(pisa.Eq(pisa.R(pisa.F("blp", "retrans")), pisa.C(1)), []pisa.Op{
			pisa.RegRMW(m("bl_ev"), RegEvidence, prefix, pisa.RMWAdd, pisa.C(1)),
			pisa.If(pisa.Cond{L: pisa.R(m("bl_ev")), R: pisa.C(FailThreshold - 1), Cmp: pisa.CmpGe}, []pisa.Op{
				pisa.RegWrite(RegFailed, prefix, pisa.C(1)),
			}),
		}, []pisa.Op{
			pisa.RegRead(m("bl_fail"), RegFailed, prefix),
		}),
		// Reroute decision entirely in the data plane: failed prefixes use
		// the backup next hop. (Retransmission packets read bl_fail via
		// the latch they may have just set; the next packet sees it.)
		pisa.If(pisa.Eq(pisa.R(m("bl_fail")), pisa.C(1)),
			[]pisa.Op{pisa.RegRead(m("bl_nh"), RegBackup, prefix)},
			[]pisa.Op{pisa.RegRead(m("bl_nh"), RegPrimary, prefix)},
		),
		pisa.Forward(pisa.R(m("bl_nh"))),
	}
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("blp"), ops)}

	cfg := core.DefaultConfig(8, core.DigestCRC32)
	cfg.Insecure = !p.Secure
	exposed := []string{RegPrimary, RegBackup, RegEvidence, RegFailed}
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, cfg, err
	}
	return prog, cfg, nil
}

// New deploys the system with every prefix's primary and backup next hop
// written over C-DP.
func New(p Params, primary, backup uint64) (*System, error) {
	prog, cfg, err := buildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0xB117+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	if err := core.InstallRegMap(sw, host.Info, []string{RegPrimary, RegBackup, RegEvidence, RegFailed}); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0xB118+p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &System{Params: p, Host: host, Ctrl: ctrl, Cfg: cfg}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	for i := 0; i < p.Prefixes; i++ {
		if err := s.WriteNexthop(RegPrimary, uint32(i), primary); err != nil {
			return nil, err
		}
		if err := s.WriteNexthop(RegBackup, uint32(i), backup); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WriteNexthop updates one next-hop list entry over C-DP — the message the
// adversary targets. On detection the controller retries through the
// quarantined driver path.
func (s *System) WriteNexthop(list string, prefix uint32, nexthop uint64) error {
	var err error
	if s.Params.Secure {
		_, err = s.Ctrl.WriteRegister(s.Params.name(), list, prefix, nexthop)
	} else {
		_, err = s.Ctrl.WriteRegisterInsecure(s.Params.name(), list, prefix, nexthop)
	}
	if err == nil {
		return nil
	}
	if !errors.Is(err, controller.ErrTampered) {
		return err
	}
	s.TamperedWrites++
	return s.Host.SW.RegisterWrite(list, int(prefix), nexthop)
}

// Packet forwards one packet; retrans marks failure evidence. It returns
// the egress port the pipeline chose (0 = dropped).
func (s *System) Packet(prefix uint16, retrans bool) (int, error) {
	rv := uint64(0)
	if retrans {
		rv = 1
	}
	body, err := pisa.PackHeader(pktDef, []uint64{uint64(prefix), rv})
	if err != nil {
		return 0, err
	}
	pkt := append([]byte{PTypeData}, body...)
	res, err := s.Host.NetworkPacket(1, pkt)
	if err != nil {
		return 0, err
	}
	if len(res.NetOut) == 0 {
		return 0, nil
	}
	return res.NetOut[0].Port, nil
}

// InstallNexthopRewriter installs the paper's adversary: next-hop list
// writes are redirected to the attacker's blackhole port.
func (s *System) InstallNexthopRewriter(blackhole uint64) error {
	ids := map[uint32]bool{}
	for _, name := range []string{RegPrimary, RegBackup} {
		ri, err := s.Host.Info.RegisterByName(name)
		if err != nil {
			return err
		}
		ids[ri.ID] = true
	}
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgWriteReq || !ids[m.Reg.RegID] {
				return data
			}
			m.Reg.Value = blackhole
			out, eerr := m.Encode()
			if eerr != nil {
				return data
			}
			return out
		},
	})
}
