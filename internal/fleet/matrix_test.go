package fleet

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const matrixGoldenPath = "testdata/matrix_k4.golden"

// TestMatrixChaos is the matrix-chaos gate: the full app × fault ×
// protection matrix at k=4 with the default seed. Invariants checked on
// every cell, then the canonical trace is compared bit-for-bit against
// the checked-in golden (regenerate with FLEET_GOLDEN_UPDATE=1 after an
// intentional semantic change).
func TestMatrixChaos(t *testing.T) {
	m, err := RunMatrix(DefaultOptions())
	if err != nil {
		t.Fatalf("matrix: %v", err)
	}
	for _, c := range m.Cells {
		attacked := c.Fault == FaultAttack || c.Fault == FaultComposed
		if c.Protected {
			if c.ForgedApplied != 0 {
				t.Errorf("%s/%s protected: %d forged ops applied, want 0", c.App, c.Fault, c.ForgedApplied)
			}
			if !c.Survived {
				t.Errorf("%s/%s protected: did not survive (score=%.2f note=%q)", c.App, c.Fault, c.Score, c.Note)
			}
			if attacked && c.Detected == 0 {
				t.Errorf("%s/%s protected: attack went undetected", c.App, c.Fault)
			}
		} else if attacked {
			if c.ForgedApplied == 0 {
				t.Errorf("%s/%s unprotected: attack applied nothing", c.App, c.Fault)
			}
			if c.Survived {
				t.Errorf("%s/%s unprotected: survived the attack", c.App, c.Fault)
			}
		}
	}
	survived, total := m.Survival()
	if total != len(m.Cells) || total == 0 {
		t.Fatalf("survival total %d over %d cells", total, len(m.Cells))
	}
	// Every protected cell survives; the unprotected attacked ones don't.
	if survived >= total || survived < total/2 {
		t.Errorf("implausible survival %d/%d", survived, total)
	}

	got := m.Trace()
	if os.Getenv("FLEET_GOLDEN_UPDATE") != "" {
		if err := os.WriteFile(matrixGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	} else {
		want, err := os.ReadFile(matrixGoldenPath)
		if err != nil {
			t.Fatalf("read golden (run with FLEET_GOLDEN_UPDATE=1 to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("matrix trace diverged from %s:\ngot:\n%s", matrixGoldenPath, got)
		}
	}

	// The JSON artifact form round-trips.
	raw, err := m.JSON()
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back Matrix
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Cells) != len(m.Cells) || back.K != m.K || back.Seed != m.Seed {
		t.Error("matrix JSON did not round-trip")
	}
}

// TestMatrixDeterminism reruns one fabric cell (composed: attacker +
// flap + controller kill + switch crash) and one standalone cell and
// demands bit-identical traces and cells — the per-seed determinism the
// gate's goldens rest on.
func TestMatrixDeterminism(t *testing.T) {
	o := DefaultOptions()
	for _, tc := range []struct{ app, fault string }{
		{"hula", FaultComposed},
		{"netcache", FaultComposed},
	} {
		c1, t1, err := RunCell(tc.app, tc.fault, true, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.app, err)
		}
		c2, t2, err := RunCell(tc.app, tc.fault, true, o)
		if err != nil {
			t.Fatalf("%s rerun: %v", tc.app, err)
		}
		if t1 != t2 {
			t.Errorf("%s/%s: trace diverged across identical seeded runs", tc.app, tc.fault)
		}
		if c1 != c2 {
			t.Errorf("%s/%s: cell diverged: %+v vs %+v", tc.app, tc.fault, c1, c2)
		}
		if !strings.Contains(t1, "fault="+tc.fault) && !strings.Contains(t1, tc.fault) {
			t.Errorf("%s: trace does not mention its fault:\n%s", tc.app, t1)
		}
	}
}
