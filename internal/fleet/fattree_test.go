package fleet

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// wiringDump renders the fabric wiring canonically: every switch with
// its ToR ID and shard, then every link with both port numbers, in
// construction order. The goldens freeze the fat-tree conventions
// (naming, port plan, ToR numbering, shard layout) so a refactor that
// rewires the fabric fails loudly.
func wiringDump(topo *Topology) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d shards=%d switches=%d links=%d hosts=%d\n",
		topo.Cfg.K, topo.Cfg.Shards, len(topo.Switches), len(topo.Links), len(topo.Hosts))
	for _, e := range topo.Edges {
		fmt.Fprintf(&b, "edge %s tor=%d shard=%d\n", e, topo.TorID[e], topo.Net.Node(e).Shard())
	}
	for _, a := range topo.Aggs {
		fmt.Fprintf(&b, "agg %s shard=%d\n", a, topo.Net.Node(a).Shard())
	}
	for _, c := range topo.Cores {
		fmt.Fprintf(&b, "core %s shard=%d\n", c, topo.Net.Node(c).Shard())
	}
	for _, lk := range topo.Links {
		fmt.Fprintf(&b, "link %s:%d-%s:%d\n", lk.A, lk.APort, lk.B, lk.BPort)
	}
	return b.String()
}

// TestFatTreeWiringGolden pins the k=4 single-shard and k=8 four-shard
// wiring against checked-in goldens. Regenerate with
// FLEET_GOLDEN_UPDATE=1 after an intentional topology change.
func TestFatTreeWiringGolden(t *testing.T) {
	cases := []struct {
		k, shards int
		path      string
	}{
		{4, 1, "testdata/wiring_k4.golden"},
		{8, 4, "testdata/wiring_k8.golden"},
	}
	for _, tc := range cases {
		cfg := DefaultTopoConfig(tc.k)
		cfg.Shards = tc.shards
		cfg.Secure = false // wiring is protection-independent; skip key setup
		topo, err := BuildFatTree(cfg)
		if err != nil {
			t.Fatalf("k=%d: build: %v", tc.k, err)
		}
		got := wiringDump(topo)
		if os.Getenv("FLEET_GOLDEN_UPDATE") != "" {
			if err := os.WriteFile(tc.path, []byte(got), 0o644); err != nil {
				t.Fatalf("write golden: %v", err)
			}
			continue
		}
		want, err := os.ReadFile(tc.path)
		if err != nil {
			t.Fatalf("read golden (run with FLEET_GOLDEN_UPDATE=1 to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("k=%d wiring diverged from %s:\ngot:\n%s", tc.k, tc.path, got)
		}
	}
}

// TestFatTreeCounts checks the closed-form fat-tree sizes and the naming
// helpers against a secure build.
func TestFatTreeCounts(t *testing.T) {
	for _, k := range []int{4, 8} {
		topo, err := BuildFatTree(DefaultTopoConfig(k))
		if err != nil {
			t.Fatalf("k=%d: build: %v", k, err)
		}
		half := k / 2
		if got, want := len(topo.Edges), k*half; got != want {
			t.Errorf("k=%d: %d edges, want %d", k, got, want)
		}
		if got, want := len(topo.Aggs), k*half; got != want {
			t.Errorf("k=%d: %d aggs, want %d", k, got, want)
		}
		if got, want := len(topo.Cores), half*half; got != want {
			t.Errorf("k=%d: %d cores, want %d", k, got, want)
		}
		// Links: k pods × (half² edge-agg + half² agg-core).
		if got, want := len(topo.Links), 2*k*half*half; got != want {
			t.Errorf("k=%d: %d links, want %d", k, got, want)
		}
		if topo.Edges[0] != EdgeName(0, 0) || topo.Aggs[0] != AggName(0, 0) ||
			topo.Cores[0] != CoreName(0) {
			t.Errorf("k=%d: naming helpers disagree with construction order", k)
		}
		if topo.Hosts[EdgeName(0, 0)] == nil {
			t.Errorf("k=%d: no host at %s", k, EdgeName(0, 0))
		}
		if HostName(1, 0) != "h1_0" {
			t.Errorf("HostName(1,0) = %q", HostName(1, 0))
		}
		if got := topo.PodOf(AggName(k-1, 1)); got != k-1 {
			t.Errorf("PodOf(%s) = %d", AggName(k-1, 1), got)
		}
		if got := topo.PodOf(CoreName(0)); got != -1 {
			t.Errorf("PodOf(core) = %d, want -1", got)
		}
	}
}

func TestFatTreeRejectsBadConfig(t *testing.T) {
	for _, k := range []int{0, 2, 3, 5} {
		if _, err := BuildFatTree(DefaultTopoConfig(k)); err == nil {
			t.Errorf("k=%d: build accepted bad arity", k)
		}
	}
	cfg := DefaultTopoConfig(4)
	cfg.LinkDelay = 0
	if _, err := BuildFatTree(cfg); err == nil {
		t.Error("build accepted zero link delay")
	}
}

// TestTopologyErrorPaths exercises the unknown-switch guards and the
// insecure crash/reboot path (cold boot: cache cleared, nothing
// authenticated to restore).
func TestTopologyErrorPaths(t *testing.T) {
	topo, err := BuildFatTree(DefaultTopoConfig(4))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := topo.InjectProbe("nosuch"); err == nil {
		t.Error("InjectProbe accepted an unknown switch")
	}
	if err := topo.SendData("nosuch", 1, 1, 100); err == nil {
		t.Error("SendData accepted an unknown switch")
	}
	if err := topo.CrashSwitch("nosuch"); err == nil {
		t.Error("CrashSwitch accepted an unknown switch")
	}
	if err := topo.RebootSwitch("nosuch"); err == nil {
		t.Error("RebootSwitch accepted an unknown switch")
	}

	cfg := DefaultTopoConfig(4)
	cfg.Secure = false
	insecure, err := BuildFatTree(cfg)
	if err != nil {
		t.Fatalf("insecure build: %v", err)
	}
	if err := insecure.SaveDeviceStates(1); err != nil {
		t.Errorf("insecure SaveDeviceStates: %v", err)
	}
	if err := insecure.CrashSwitch("a0_0"); err != nil {
		t.Errorf("crash: %v", err)
	}
	if err := insecure.RebootSwitch("a0_0"); err != nil {
		t.Errorf("insecure reboot: %v", err)
	}
}

// TestFatTreeDeliversFleetWide converges probes, then sends five flows
// from e0_0 to every other ToR. All 35 packets must land on their hosts
// with zero P4Auth alerts — the secure fabric at rest forges nothing.
func TestFatTreeDeliversFleetWide(t *testing.T) {
	topo, err := BuildFatTree(DefaultTopoConfig(4))
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for round := 0; round < 3; round++ {
		at := time.Duration(round+1) * 100 * time.Microsecond
		for _, e := range topo.Edges {
			e := e
			topo.Net.Sim.At(at, func() { topo.InjectProbe(e) })
		}
	}
	topo.Net.Sim.At(2*time.Millisecond, func() {
		flow := uint32(1000)
		for _, e := range topo.Edges[1:] {
			for f := 0; f < 5; f++ {
				topo.SendData("e0_0", topo.TorID[e], flow, 200)
				flow++
			}
		}
	})
	topo.Net.Sim.RunUntil(8 * time.Millisecond)
	var total uint64
	for _, e := range topo.Edges[1:] {
		if topo.Hosts[e].Packets != 5 {
			t.Errorf("host at %s got %d packets, want 5", e, topo.Hosts[e].Packets)
		}
		total += topo.Hosts[e].Packets
	}
	if total != 35 {
		t.Fatalf("delivered %d packets, want 35", total)
	}
	if topo.DeliveredBytes() == 0 {
		t.Fatal("no bytes delivered")
	}
	if topo.TotalAlerts() != 0 {
		t.Fatalf("clean fabric raised %d alerts", topo.TotalAlerts())
	}
	shares, err := topo.UplinkShares("e0_0")
	if err != nil {
		t.Fatalf("uplink shares: %v", err)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("uplink shares %v do not sum to 1", shares)
	}
	if _, err := topo.UplinkShares("c0"); err == nil {
		t.Error("UplinkShares accepted a core switch")
	}
}
