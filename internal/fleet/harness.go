// The unified scenario harness: one entrypoint runs any of the eight
// protected apps under any fault, protection on or off, and returns a
// matrix cell plus a deterministic event trace (stable at shards <= 1,
// where the engine is bit-identical to the lockstep simulator).
package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"p4auth/internal/crypto"
	"p4auth/internal/hula"
	"p4auth/internal/trace"
)

// Options parameterizes a harness run.
type Options struct {
	// K is the fat-tree arity for the fabric app and the instance count
	// (one per pod) for standalone apps.
	K int
	// Shards is the netsim shard count for the fabric run.
	Shards int
	// Seed drives every PRNG: topology, fault schedule, load.
	Seed uint64
	// LoadDuration is the fabric data window; zero means 10 ms.
	LoadDuration time.Duration
	// FlowsPerSecond scales the per-edge trace load; zero keeps the
	// trace default (2000/s).
	FlowsPerSecond float64
}

// DefaultOptions is a k=4 single-shard run.
func DefaultOptions() Options {
	return Options{K: 4, Shards: 1, Seed: 0xFA77}
}

func (o Options) loadDuration() time.Duration {
	if o.LoadDuration == 0 {
		return 10 * time.Millisecond
	}
	return o.LoadDuration
}

// RunCell runs one (app, fault, protected) scenario and returns the
// matrix cell plus its deterministic trace.
func RunCell(app, fault string, protected bool, o Options) (Cell, string, error) {
	if o.K < 4 || o.K%2 != 0 {
		return Cell{}, "", fmt.Errorf("fleet: bad arity %d", o.K)
	}
	ok := false
	for _, f := range FaultsFor(app) {
		if f == fault {
			ok = true
		}
	}
	if !ok {
		return Cell{}, "", fmt.Errorf("fleet: app %s does not run fault %s", app, fault)
	}
	if app == "hula" {
		return runFabricCell(fault, protected, o)
	}
	return runStandaloneCell(app, fault, protected, o)
}

// RunMatrix runs the full app × fault × protection matrix.
func RunMatrix(o Options) (*Matrix, error) {
	m := &Matrix{K: o.K, Shards: o.Shards, Seed: o.Seed}
	for _, app := range Apps() {
		for _, fault := range FaultsFor(app) {
			for _, protected := range []bool{true, false} {
				cell, _, err := RunCell(app, fault, protected, o)
				if err != nil {
					return nil, fmt.Errorf("fleet: %s/%s/protected=%v: %w", app, fault, protected, err)
				}
				m.Cells = append(m.Cells, cell)
			}
		}
	}
	return m, nil
}

// runStandaloneCell drives one pod-replicated standalone app.
func runStandaloneCell(app, fault string, protected bool, o Options) (Cell, string, error) {
	r, ok := standaloneRunners[app]
	if !ok {
		return Cell{}, "", fmt.Errorf("fleet: unknown app %q", app)
	}
	attacked := fault == FaultAttack || fault == FaultComposed
	ctrlKill := fault == FaultCtrlKill || fault == FaultComposed
	cell := Cell{App: app, Fault: fault, Protected: protected, Survived: true}
	var tr []string
	var scoreSum float64
	for pod := 0; pod < o.K; pod++ {
		io := instOpts{
			name:      fmt.Sprintf("%s-p%d", app, pod),
			seed:      o.Seed + uint64(pod)*0x1000 + 1,
			protected: protected,
			attacked:  attacked,
			ctrlKill:  ctrlKill,
		}
		res, err := r.run(io)
		if err != nil {
			return Cell{}, "", fmt.Errorf("fleet: %s pod %d: %w", app, pod, err)
		}
		scoreSum += res.score
		cell.ForgedApplied += res.forged
		cell.Detected += res.detected
		cell.Sent += res.ops
		cell.Delivered += res.ops
		tr = append(tr, fmt.Sprintf("pod=%d score=%.2f forged=%d detected=%t",
			pod, res.score, res.forged, res.detected > 0))
	}
	cell.Score = scoreSum / float64(o.K)
	if cell.Score < r.floor {
		// Unprotected runs survive an attack only if the app stayed
		// healthy; an applied forgery that wrecks the score is the
		// documented corruption.
		cell.Survived = false
	}
	if protected && cell.ForgedApplied > 0 {
		cell.Survived = false
		cell.Note = "forged operations applied despite protection"
	}
	header := fmt.Sprintf("cell %s fault=%s protected=%v pods=%d", app, fault, protected, o.K)
	return cell, header + "\n" + strings.Join(tr, "\n") + "\n", nil
}

// Fabric fault victims, fixed by convention so traces are comparable:
// the attacker taps the a0_1 → e0_0 probe direction, switch crashes hit
// a1_0, partitions isolate the last pod.
const (
	victimEdge   = "e0_0"
	attackedAgg  = "a0_1"
	crashTarget  = "a1_0"
	attackedPort = 1 // index into UplinkShares(victimEdge) for a0_1
)

// runFabricCell drives the HULA fat-tree fabric under trace load with
// the composed, seeded fault schedule.
func runFabricCell(fault string, protected bool, o Options) (Cell, string, error) {
	cfg := DefaultTopoConfig(o.K)
	cfg.Shards = o.Shards
	cfg.Secure = protected
	cfg.Seed = o.Seed
	topo, err := BuildFatTree(cfg)
	if err != nil {
		return Cell{}, "", err
	}
	rng := crypto.NewSeededRand(o.Seed*7919 + 17)
	var tr []string
	logf := func(at time.Duration, format string, args ...interface{}) {
		tr = append(tr, fmt.Sprintf("t=%v %s", at, fmt.Sprintf(format, args...)))
	}
	sim := topo.Net.Sim

	// Probe rounds every 200 µs for the whole run keep best paths fresh
	// and re-converge them after faults.
	loadStart := 2 * time.Millisecond
	loadEnd := loadStart + o.loadDuration()
	runEnd := loadEnd + 3*time.Millisecond
	for at := 100 * time.Microsecond; at < runEnd; at += 200 * time.Microsecond {
		for _, e := range topo.Edges {
			e := e
			pod := topo.PodOf(e)
			sim.AtShard(topo.ShardOf(pod), at, func() { topo.InjectProbe(e) })
		}
	}

	// Per-edge trace load: forked streams on disjoint flow spaces, each
	// packet sent to a destination ToR picked by flow (stable per flow,
	// spread across the fabric).
	tcfg := trace.DefaultConfig(uint64(o.loadDuration()))
	tcfg.Seed = o.Seed
	if o.FlowsPerSecond > 0 {
		tcfg.FlowsPerSecond = o.FlowsPerSecond
	}
	base := trace.NewStream(tcfg)
	var sent uint64
	tors := make([]uint16, len(topo.Edges))
	for i, e := range topo.Edges {
		tors[i] = topo.TorID[e]
	}
	for i, e := range topo.Edges {
		e := e
		src := i
		pod := topo.PodOf(e)
		pkts := base.Fork(uint64(i)).Generate()
		for _, p := range pkts {
			p := p
			dst := tors[(src+1+int(p.Flow)%(len(tors)-1))%len(tors)]
			sim.AtShard(topo.ShardOf(pod), loadStart+time.Duration(p.AtNs), func() {
				topo.SendData(e, dst, p.Flow, p.Size)
			})
			sent++
		}
	}
	logf(0, "fabric k=%d shards=%d protected=%v fault=%s load=%d pkts", o.K, o.Shards, protected, fault, sent)

	// Seeded fault schedule inside the load window. Composed runs stack
	// attack + flap + controller kill + switch crash.
	attacked := fault == FaultAttack || fault == FaultComposed
	jitter := func(span time.Duration) time.Duration {
		return time.Duration(rng.Uint64() % uint64(span))
	}
	if attacked {
		at := loadStart - 500*time.Microsecond
		sim.At(at, func() {
			l := topo.Net.LinkBetween(attackedAgg, victimEdge)
			l.SetTap(victimEdge, hula.ForgeUtilTap(protected, 0))
		})
		logf(at, "attack: forge probe util on %s->%s", attackedAgg, victimEdge)
	}
	if fault == FaultFlap || fault == FaultComposed {
		// Flap one seeded agg-core link twice.
		lk := topo.Links[len(topo.Links)-1-int(rng.Uint64()%uint64(len(topo.Links)/2))]
		for c := 0; c < 2; c++ {
			down := loadStart + time.Duration(c)*3*time.Millisecond + jitter(time.Millisecond)
			up := down + time.Millisecond
			sim.At(down, func() { lk.L.SetDown(true) })
			sim.At(up, func() { lk.L.SetDown(false) })
			logf(down, "flap: %s-%s down", lk.A, lk.B)
			logf(up, "flap: %s-%s up", lk.A, lk.B)
		}
	}
	if fault == FaultPartition {
		members := topo.PodMembers(o.K - 1)
		at := loadStart + time.Millisecond + jitter(time.Millisecond)
		heal := at + 1500*time.Microsecond
		sim.At(at, func() { topo.Net.Partition(members...) })
		sim.At(heal, func() { topo.Net.Heal() })
		logf(at, "partition: pod %d isolated", o.K-1)
		logf(heal, "partition healed")
	}
	if fault == FaultWANPartition {
		// Asymmetric cut: inbound into the last pod dies, outbound keeps
		// flowing — the half-open failure WAN links actually exhibit. A
		// latency spike on one agg-core link rides along for the heal
		// window's reconvergence.
		members := topo.PodMembers(o.K - 1)
		at := loadStart + time.Millisecond + jitter(time.Millisecond)
		heal := at + 1500*time.Microsecond
		sim.At(at, func() { topo.Net.PartitionAsym(members...) })
		sim.At(heal, func() { topo.Net.Heal() })
		lk := topo.Links[int(rng.Uint64()%uint64(len(topo.Links)/2))]
		spike := lk.L
		spikeEnd := heal + 2*time.Millisecond
		sim.At(0, func() { _ = spike.AddLatencySpike(lk.A, at, spikeEnd, 200*time.Microsecond) })
		logf(at, "wanpartition: inbound to pod %d cut, spike on %s-%s", o.K-1, lk.A, lk.B)
		logf(heal, "wanpartition healed")
	}
	recoveryErrs := 0
	if fault == FaultCtrlKill || fault == FaultComposed {
		at := loadStart + 2*time.Millisecond + jitter(time.Millisecond)
		rec := at + time.Millisecond
		sim.At(at, func() { topo.Ctrl.Kill() })
		sim.At(rec, func() {
			if err := topo.RecoverController(); err != nil {
				recoveryErrs++
			}
		})
		logf(at, "ctrlkill")
		logf(rec, "controller recovered")
	}
	if fault == FaultGlobalKill {
		// The broker/controller tier goes fully dark for an extended
		// window — triple the ctrlkill outage. The data plane forwards on
		// committed state throughout; recovery re-registers and resyncs.
		at := loadStart + time.Millisecond + jitter(time.Millisecond)
		rec := at + 3*time.Millisecond
		sim.At(at, func() { topo.Ctrl.Kill() })
		sim.At(rec, func() {
			if err := topo.RecoverController(); err != nil {
				recoveryErrs++
			}
		})
		logf(at, "globalkill: control tier dark")
		logf(rec, "global controller recovered")
	}
	if fault == FaultSwCrash || fault == FaultComposed {
		if err := topo.SaveDeviceStates(1); err != nil {
			return Cell{}, "", err
		}
		at := loadStart + 4*time.Millisecond + jitter(time.Millisecond)
		rec := at + 1500*time.Microsecond
		sim.At(at, func() { topo.CrashSwitch(crashTarget) })
		sim.At(rec, func() {
			if err := topo.RebootSwitch(crashTarget); err != nil {
				recoveryErrs++
			}
		})
		logf(at, "swcrash: %s", crashTarget)
		logf(rec, "switch rebooted warm")
	}

	sim.RunUntil(runEnd)

	cell := Cell{App: "hula", Fault: fault, Protected: protected, Sent: sent}
	for _, h := range topo.Hosts {
		cell.Delivered += h.Packets
	}
	if sent > 0 {
		cell.Score = float64(cell.Delivered) / float64(sent)
	}
	cell.Detected = topo.TotalAlerts() + len(topo.Ctrl.Alerts())
	shares, err := topo.UplinkShares(victimEdge)
	if err != nil {
		return Cell{}, "", err
	}
	if attacked && shares[attackedPort] > 0.75 {
		// The forged probes steered the victim's traffic onto the
		// attacker's uplink: the forgery took effect.
		cell.ForgedApplied = 1
	}
	floor := fabricFloor(fault)
	cell.Survived = cell.Score >= floor && recoveryErrs == 0 && cell.ForgedApplied == 0
	if protected && cell.ForgedApplied > 0 {
		cell.Survived = false
		cell.Note = "forged probes steered traffic despite protection"
	}
	if recoveryErrs > 0 {
		cell.Note = "recovery failed"
	}

	// Deterministic footer: per-host delivery in sorted order, victim
	// uplink shares, alert presence.
	hosts := make([]string, 0, len(topo.Hosts))
	for e := range topo.Hosts {
		hosts = append(hosts, e)
	}
	sort.Strings(hosts)
	for _, e := range hosts {
		logf(runEnd, "host %s pkts=%d", e, topo.Hosts[e].Packets)
	}
	logf(runEnd, "victim=%s shares=%s detected=%t score=%.2f forged=%d",
		victimEdge, fmtShares(shares), cell.Detected > 0, cell.Score, cell.ForgedApplied)
	return cell, strings.Join(tr, "\n") + "\n", nil
}

func fabricFloor(fault string) float64 {
	switch fault {
	case FaultNone, FaultAttack, FaultCtrlKill:
		return 0.95
	case FaultFlap:
		return 0.80
	case FaultPartition:
		return 0.60
	case FaultWANPartition:
		// One direction survives the cut, so the floor sits between the
		// full partition's and a healthy run's.
		return 0.65
	case FaultGlobalKill:
		return 0.90
	case FaultSwCrash:
		return 0.70
	default: // composed
		return 0.50
	}
}

func fmtShares(s []float64) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
