// Standalone app drivers: the seven Table I applications that model one
// switch plus its controller. The harness runs one instance per pod
// (distinct names, per-pod seeds — the fleet deployment), drives each
// through its paper scenario under the requested fault, and aggregates
// into one matrix cell.
package fleet

import (
	"fmt"

	"p4auth/internal/blink"
	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/flowradar"
	"p4auth/internal/netcache"
	"p4auth/internal/netwarden"
	"p4auth/internal/routescout"
	"p4auth/internal/silkroad"
	"p4auth/internal/sketch"
	"p4auth/internal/statestore"
	"p4auth/internal/switchos"
	"p4auth/internal/trace"
)

// instOpts parameterizes one standalone instance run.
type instOpts struct {
	name      string
	seed      uint64
	protected bool
	attacked  bool
	ctrlKill  bool
}

// instResult is one instance's outcome.
type instResult struct {
	score    float64
	forged   int
	detected int
	// ops counts the data-plane operations the scenario drove (queries,
	// packets, connections) — the throughput denominator.
	ops uint64
}

// killAndRecover models a controller process death: snapshot key state
// (protected mode), kill the old process, and bring up a fresh
// controller over the same durable store, re-registering the switch and
// running warm recovery. It returns the new controller plus the alert
// count the dead controller had accumulated (its log survives the
// process, as any external alert sink would).
func killAndRecover(old *controller.Controller, name string, host *switchos.Host, cfg core.Config, protected bool, seed uint64) (*controller.Controller, int, error) {
	var st *statestore.Mem
	if protected {
		st = statestore.NewMem()
		if err := old.EnableCrashSafety(st); err != nil {
			return nil, 0, fmt.Errorf("fleet: enable crash safety: %w", err)
		}
		if err := old.SaveSnapshot(name); err != nil {
			return nil, 0, fmt.Errorf("fleet: snapshot %s: %w", name, err)
		}
	}
	oldAlerts := len(old.Alerts())
	old.Kill()
	c2 := controller.New(crypto.NewSeededRand(seed*0x9E3779B9 + 0xC0))
	if protected {
		if err := c2.EnableCrashSafety(st); err != nil {
			return nil, 0, err
		}
	}
	if err := c2.Register(name, host, cfg, 0); err != nil {
		return nil, 0, fmt.Errorf("fleet: re-register %s: %w", name, err)
	}
	if protected {
		if _, err := c2.RecoverAll(); err != nil {
			return nil, 0, fmt.Errorf("fleet: recover %s: %w", name, err)
		}
	}
	return c2, oldAlerts, nil
}

// --- netcache ---

const ncKeySpace = 64

func ncZipf(s *netcache.System, n int) error {
	for i := 0; i < n; {
		for k := uint32(0); k < ncKeySpace && i < n; k++ {
			reps := ncKeySpace / (int(k) + 1)
			for r := 0; r < reps && i < n; r++ {
				if _, err := s.Query(k); err != nil {
					return err
				}
				i++
			}
		}
	}
	return nil
}

func ncCandidates() []uint32 {
	out := make([]uint32, ncKeySpace)
	for i := range out {
		out[i] = uint32(ncKeySpace - 1 - i)
	}
	return out
}

func runNetcache(io instOpts) (instResult, error) {
	p := netcache.DefaultParams(io.protected)
	p.Name, p.Seed = io.name, io.seed
	s, err := netcache.New(p)
	if err != nil {
		return instResult{}, err
	}
	if err := ncZipf(s, 1500); err != nil {
		return instResult{}, err
	}
	if err := s.UpdateEpoch(ncCandidates()); err != nil {
		return instResult{}, err
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	epochsBefore := s.Epochs
	if io.attacked {
		if err := s.InstallStatDeflater(3); err != nil {
			return instResult{}, err
		}
	}
	if err := ncZipf(s, 1500); err != nil {
		return instResult{}, err
	}
	if err := s.UpdateEpoch(ncCandidates()); err != nil {
		return instResult{}, err
	}
	if err := s.ResetCounters(); err != nil {
		return instResult{}, err
	}
	if err := ncZipf(s, 1500); err != nil {
		return instResult{}, err
	}
	rate, err := s.HitRate()
	if err != nil {
		return instResult{}, err
	}
	res := instResult{score: rate, detected: s.SkippedEpochs + oldAlerts + len(s.Ctrl.Alerts()), ops: 4500}
	if io.attacked {
		// Epochs that completed on deflated stats consumed forged data.
		res.forged = s.Epochs - epochsBefore
	}
	return res, nil
}

// --- flowradar ---

func runFlowradar(io instOpts) (instResult, error) {
	p := flowradar.DefaultParams(io.protected)
	p.Name, p.Seed = io.name, io.seed
	s, err := flowradar.New(p)
	if err != nil {
		return instResult{}, err
	}
	truth := make(map[uint32]uint32, 150)
	var ops uint64
	for f := uint32(1); f <= 150; f++ {
		pkts := f%13 + 1
		truth[f] = pkts
		ops += uint64(pkts)
		for i := uint32(0); i < pkts; i++ {
			if err := s.Packet(f); err != nil {
				return instResult{}, err
			}
		}
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	if io.attacked {
		if err := s.InstallExportDeflater(); err != nil {
			return instResult{}, err
		}
	}
	decoded, err := s.Decode()
	res := instResult{ops: ops}
	if err == nil {
		right := 0
		for f, want := range truth {
			if decoded[f] == want {
				right++
			}
		}
		res.score = float64(right) / float64(len(truth))
		if io.attacked {
			res.forged = len(truth) - right
		}
	} else if io.attacked {
		// Peel failed outright on forged cells: the analysis is poisoned.
		res.forged = len(truth)
	} else {
		return instResult{}, err
	}
	res.detected = s.TamperedReads + oldAlerts + len(s.Ctrl.Alerts())
	return res, nil
}

// --- blink ---

func runBlink(io instOpts) (instResult, error) {
	const (
		primaryPort   = 2
		backupPort    = 3
		newBackupPort = 4
		blackhole     = 9
	)
	p := blink.DefaultParams(io.protected)
	p.Name, p.Seed = io.name, io.seed
	s, err := blink.New(p, primaryPort, backupPort)
	if err != nil {
		return instResult{}, err
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	if io.attacked {
		if err := s.InstallNexthopRewriter(blackhole); err != nil {
			return instResult{}, err
		}
	}
	if err := s.WriteNexthop(blink.RegBackup, 5, newBackupPort); err != nil {
		return instResult{}, err
	}
	for i := 0; i < blink.FailThreshold; i++ {
		if _, err := s.Packet(5, true); err != nil {
			return instResult{}, err
		}
	}
	port, err := s.Packet(5, false)
	if err != nil {
		return instResult{}, err
	}
	res := instResult{detected: s.TamperedWrites + oldAlerts + len(s.Ctrl.Alerts()), ops: blink.FailThreshold + 1}
	if port == newBackupPort {
		res.score = 1
	}
	if port == blackhole {
		res.forged = 1
	}
	return res, nil
}

// --- netwarden ---

func nwDrive(s *netwarden.System, conns, covert, packets int, startNs uint64) ([]int, error) {
	forwarded := make([]int, conns)
	jit := []uint64{400_000, 2_600_000, 900_000, 1_800_000, 600_000}
	for i := 0; i < packets; i++ {
		for c := 0; c < conns; c++ {
			var at uint64
			if c < covert {
				at = startNs + uint64(i+1)*1_000_000
			} else {
				at = startNs + uint64(i)*1_500_000 + jit[(i+c)%len(jit)]
			}
			ok, err := s.Packet(uint16(c), at)
			if err != nil {
				return nil, err
			}
			if ok {
				forwarded[c]++
			}
		}
	}
	return forwarded, nil
}

func runNetwarden(io instOpts) (instResult, error) {
	const (
		conns     = 16
		covert    = 4
		threshold = 100_000
	)
	s, err := netwarden.New(netwarden.Params{Conns: conns, Secure: io.protected, Name: io.name, Seed: io.seed})
	if err != nil {
		return instResult{}, err
	}
	if _, err := nwDrive(s, conns, covert, 30, 1_000_000); err != nil {
		return instResult{}, err
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	if io.attacked {
		if err := s.InstallScoreInflater(); err != nil {
			return instResult{}, err
		}
	}
	if err := s.Sweep(threshold); err != nil {
		return instResult{}, err
	}
	after, err := nwDrive(s, conns, covert, 10, 500_000_000)
	if err != nil {
		return instResult{}, err
	}
	res := instResult{detected: s.TamperedOps + oldAlerts + len(s.Ctrl.Alerts()), ops: conns * 40}
	correct := 0
	for c := 0; c < conns; c++ {
		v, err := s.Verdict(c)
		if err != nil {
			return instResult{}, err
		}
		if c < covert {
			if v == 1 && after[c] == 0 {
				correct++
			} else if io.attacked {
				res.forged++ // a covert channel evaded the sweep
			}
		} else if v == 0 && after[c] > 0 {
			correct++
		}
	}
	res.score = float64(correct) / float64(conns)
	return res, nil
}

// --- silkroad ---

func runSilkroad(io instOpts) (instResult, error) {
	p := silkroad.DefaultParams(io.protected)
	p.Name, p.Seed = io.name, io.seed
	s, err := silkroad.New(p)
	if err != nil {
		return instResult{}, err
	}
	for c := uint32(1); c <= 20; c++ {
		if _, err := s.Packet(c, true); err != nil {
			return instResult{}, err
		}
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	if io.attacked {
		if err := s.InstallClearSuppressor(); err != nil {
			return instResult{}, err
		}
	}
	if err := s.BeginMigration(); err != nil {
		return instResult{}, err
	}
	for c := uint32(100); c < 120; c++ {
		if _, err := s.Packet(c, true); err != nil {
			return instResult{}, err
		}
	}
	if err := s.FinishMigration(); err != nil {
		return instResult{}, err
	}
	if err := s.ResetCounters(); err != nil {
		return instResult{}, err
	}
	for c := uint32(200); c < 300; c++ {
		if _, err := s.Packet(c, true); err != nil {
			return instResult{}, err
		}
	}
	oldPool, newPool, err := s.Served()
	if err != nil {
		return instResult{}, err
	}
	wrongFrac := float64(oldPool) / float64(oldPool+newPool)
	res := instResult{
		score:    1 - wrongFrac,
		detected: s.TamperedWrites + oldAlerts + len(s.Ctrl.Alerts()),
		ops:      140, // 20 pre-migration + 20 transit + 100 fresh connections
	}
	if io.attacked && wrongFrac > 0.5 {
		res.forged = 1 // the suppressed clear pinned fresh traffic to the retired pool
	}
	return res, nil
}

// --- routescout ---

func runRoutescout(io instOpts) (instResult, error) {
	mode := routescout.ModeInsecure
	if io.protected {
		mode = routescout.ModeP4Auth
	}
	cfg := routescout.DefaultConfig(mode)
	cfg.Name, cfg.Seed = io.name, io.seed
	s, err := routescout.New(cfg)
	if err != nil {
		return instResult{}, err
	}
	if io.protected {
		if _, err := s.Ctrl.LocalKeyInit(io.name); err != nil {
			return instResult{}, err
		}
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Switch.Host, s.Switch.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	if io.attacked {
		if err := s.InstallLatencyInflater(20); err != nil {
			return instResult{}, err
		}
	}
	tcfg := trace.DefaultConfig(uint64(800 * 1e6))
	tcfg.FlowsPerSecond = 800
	tcfg.Seed = 42
	pkts := trace.NewStream(tcfg).Fork(io.seed).Generate()
	p1, p2, err := s.Run(cfg, pkts)
	if err != nil {
		return instResult{}, err
	}
	res := instResult{
		score:    p1,
		detected: s.TamperedReads + oldAlerts + len(s.Ctrl.Alerts()),
		ops:      uint64(len(pkts)),
	}
	if io.attacked && p2 > 0.60 {
		res.forged = 1 // the inflated latency diverted traffic to the slow path
	}
	return res, nil
}

// --- sketch (heavy hitter) ---

func runSketch(io instOpts) (instResult, error) {
	hp := sketch.DefaultHHParams(io.protected)
	hp.CMSRows = 4
	hp.Name, hp.Seed = io.name, io.seed
	s, err := sketch.NewHH(hp)
	if err != nil {
		return instResult{}, err
	}
	elephants := []uint32{101, 202}
	cands := append([]uint32{}, elephants...)
	for _, f := range elephants {
		for i := 0; i < 60; i++ {
			if err := s.Packet(f); err != nil {
				return instResult{}, err
			}
		}
	}
	for f := uint32(2000); f < 2040; f++ {
		cands = append(cands, f)
		if err := s.Packet(f); err != nil {
			return instResult{}, err
		}
	}
	if err := s.PromoteEpoch(cands, 50); err != nil {
		return instResult{}, err
	}
	oldAlerts := 0
	if io.ctrlKill {
		s.Ctrl, oldAlerts, err = killAndRecover(s.Ctrl, io.name, s.Host, s.Cfg, io.protected, io.seed)
		if err != nil {
			return instResult{}, err
		}
	}
	epochsBefore := s.Epochs
	if io.attacked {
		if err := s.InstallCountDeflater(10); err != nil {
			return instResult{}, err
		}
	}
	if err := s.PromoteEpoch(cands, 50); err != nil {
		return instResult{}, err
	}
	watch, err := s.Watchlist()
	if err != nil {
		return instResult{}, err
	}
	on := map[uint32]bool{}
	for _, f := range watch {
		on[f] = true
	}
	kept := 0
	for _, f := range elephants {
		if on[f] {
			kept++
		}
	}
	res := instResult{
		score:    float64(kept) / float64(len(elephants)),
		detected: s.SkippedEpochs + oldAlerts + len(s.Ctrl.Alerts()),
		ops:      2*60 + 40, // elephant + mouse packets
	}
	if io.attacked && s.Epochs > epochsBefore && kept < len(elephants) {
		res.forged = 1 // an epoch promoted on deflated counts and dropped elephants
	}
	return res, nil
}

// standaloneRunners maps app name to its per-instance driver and the
// survival floor its score must meet.
var standaloneRunners = map[string]struct {
	run   func(instOpts) (instResult, error)
	floor float64
}{
	"netcache":   {runNetcache, 0.40},
	"flowradar":  {runFlowradar, 0.95},
	"blink":      {runBlink, 1.0},
	"netwarden":  {runNetwarden, 0.99},
	"silkroad":   {runSilkroad, 0.99},
	"routescout": {runRoutescout, 0.35},
	"sketch":     {runSketch, 1.0},
}
