package fleet

import (
	"testing"
	"time"
)

// TestConformanceAttack is the harness's core claim, table-driven over
// all eight protected apps at k=4: with protection on, an active
// attacker gets zero forged operations applied, the tampering is
// detected, and the app survives; with protection off, the same attack
// measurably corrupts the app (forged operations take effect).
func TestConformanceAttack(t *testing.T) {
	o := DefaultOptions()
	for _, app := range Apps() {
		app := app
		t.Run(app, func(t *testing.T) {
			on, _, err := RunCell(app, FaultAttack, true, o)
			if err != nil {
				t.Fatalf("protected run: %v", err)
			}
			if on.ForgedApplied != 0 {
				t.Errorf("protected: %d forged ops applied, want 0 (%s)", on.ForgedApplied, on.Note)
			}
			if on.Detected == 0 {
				t.Error("protected: attack went undetected")
			}
			if !on.Survived {
				t.Errorf("protected: app did not survive (score=%.2f)", on.Score)
			}

			off, _, err := RunCell(app, FaultAttack, false, o)
			if err != nil {
				t.Fatalf("unprotected run: %v", err)
			}
			if off.ForgedApplied == 0 {
				t.Error("unprotected: attack applied no forged ops — the attack model is vacuous")
			}
			if off.Survived {
				t.Errorf("unprotected: app survived the attack (score=%.2f forged=%d)",
					off.Score, off.ForgedApplied)
			}
		})
	}
}

// TestFabricFaultRecovery runs the protected fabric through each
// non-attack fault: delivery must stay above the fault's floor, and the
// recovery paths (controller re-registration + RecoverAll, warm switch
// reboot + ReviveSwitch) must succeed.
func TestFabricFaultRecovery(t *testing.T) {
	o := DefaultOptions()
	for _, fault := range []string{
		FaultFlap, FaultPartition, FaultCtrlKill, FaultSwCrash,
		FaultWANPartition, FaultGlobalKill,
	} {
		fault := fault
		t.Run(fault, func(t *testing.T) {
			cell, _, err := RunCell("hula", fault, true, o)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !cell.Survived {
				t.Errorf("fabric did not survive %s: score=%.2f note=%q", fault, cell.Score, cell.Note)
			}
			if cell.Score < fabricFloor(fault) {
				t.Errorf("score %.3f below %s floor %.2f", cell.Score, fault, fabricFloor(fault))
			}
			if cell.Sent == 0 || cell.Delivered == 0 {
				t.Errorf("no load flowed: sent=%d delivered=%d", cell.Sent, cell.Delivered)
			}
		})
	}
}

// TestShardedFabric runs the fabric on 2 and 4 shards. Parallel mode
// deliberately trades cross-shard arrival interleaving for wall-clock
// speed (see internal/netsim/shard.go), so this asserts the engine's
// actual contract: the run completes, conserves packets, and delivers
// at full health — while the bit-identical guarantees live at
// shards <= 1 (TestMatrixDeterminism here, lockstep goldens in
// internal/netsim/chaos).
func TestShardedFabric(t *testing.T) {
	for _, shards := range []int{2, 4} {
		o := DefaultOptions()
		o.Shards = shards
		o.LoadDuration = 10 * time.Millisecond // explicit, same as the default
		cell, _, err := RunCell("hula", FaultNone, true, o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if cell.Score < 0.95 {
			t.Errorf("shards=%d: score %.3f below 0.95", shards, cell.Score)
		}
		if cell.Delivered > cell.Sent {
			t.Errorf("shards=%d: delivered %d > sent %d", shards, cell.Delivered, cell.Sent)
		}
		if !cell.Survived || cell.ForgedApplied != 0 {
			t.Errorf("shards=%d: survived=%v forged=%d", shards, cell.Survived, cell.ForgedApplied)
		}
	}
}

func TestRunCellValidation(t *testing.T) {
	o := DefaultOptions()
	o.K = 3
	if _, _, err := RunCell("hula", FaultNone, true, o); err == nil {
		t.Error("accepted odd arity")
	}
	if _, _, err := RunCell("netcache", FaultFlap, true, DefaultOptions()); err == nil {
		t.Error("accepted a fabric-only fault for a standalone app")
	}
	if _, _, err := RunCell("nosuch", FaultNone, true, DefaultOptions()); err == nil {
		t.Error("accepted an unknown app")
	}
}

func TestFaultsForCoversMatrix(t *testing.T) {
	if len(Apps()) != 8 {
		t.Fatalf("Apps() lists %d apps, want 8", len(Apps()))
	}
	if got := len(FaultsFor("hula")); got != 9 {
		t.Errorf("hula runs %d faults, want 9", got)
	}
	for _, app := range Apps()[1:] {
		for _, f := range FaultsFor(app) {
			if f == FaultFlap || f == FaultPartition || f == FaultSwCrash ||
				f == FaultWANPartition || f == FaultGlobalKill {
				t.Errorf("standalone app %s claims fabric fault %s", app, f)
			}
		}
	}
}
