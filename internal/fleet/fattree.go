// Package fleet is the fleet-scale scenario harness: it builds k-ary
// fat-tree fabrics of HULA switches over the sharded netsim engine and
// runs every protected application of the paper's Table I across them
// under a composed, seeded fault schedule — attacker, link flaps,
// partitions, controller kills, switch crashes — emitting a survival
// matrix per app × fault × protection-on/off.
//
// Topology (standard k-ary fat tree, k even): k pods, each with k/2
// edge (ToR) and k/2 aggregation switches; (k/2)² core switches. Edge
// e connects up to every agg in its pod; agg a connects up to core
// group a (cores (a-1)·k/2+1 .. a·k/2). One aggregate host hangs off
// each edge. Probes flood up-then-down (edge → agg → core → agg →
// edge), which is loop-free by construction.
//
// Port plan:
//
//	edge:  1..k/2 → aggs (uplinks), k/2+1 → host, k/2+2 generator
//	agg:   1..k/2 → edges (down),  k/2+1..k → cores (up)
//	core:  port p → pod p's agg
//
// Every switch-switch link is registered with the fabric controller
// (ConnectSwitches), so InitAllKeys establishes the per-link port-key
// pairing of the DP-DP channel.
package fleet

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/hula"
	"p4auth/internal/netsim"
	"p4auth/internal/statestore"
)

// TopoConfig parameterizes the fat tree.
type TopoConfig struct {
	// K is the fat-tree arity (even, >= 4). k=4 → 20 switches; k=8 → 80.
	K int
	// Shards is the netsim shard count; <= 1 runs lockstep
	// (bit-identical to the serial engine).
	Shards int
	// Fence is the sharded window length; zero defaults to LinkDelay
	// (the minimum cross-shard link delay, making clamps no-ops).
	Fence time.Duration
	// LinkDelay and LinkBandwidthBps apply to every fabric link.
	LinkDelay        time.Duration
	LinkBandwidthBps float64
	// FailTimeoutNs ages out best paths that stop being refreshed;
	// zero defaults to 2 ms so failover lands inside a harness window.
	FailTimeoutNs uint64
	// Secure weaves P4Auth in (per-hop probe auth, authenticated C-DP).
	Secure bool
	// Seed drives every PRNG in the fabric.
	Seed uint64
}

// DefaultTopoConfig is a k=4 secure fabric on one shard.
func DefaultTopoConfig(k int) TopoConfig {
	return TopoConfig{
		K:                k,
		Shards:           1,
		LinkDelay:        5 * time.Microsecond,
		LinkBandwidthBps: 10e9,
		Secure:           true,
		Seed:             0xFA77,
	}
}

// Link records one fabric link for the wiring golden and fault schedule.
type Link struct {
	A     string
	APort int
	B     string
	BPort int
	L     *netsim.Link
}

// Topology is a deployed fat-tree fabric.
type Topology struct {
	Cfg   TopoConfig
	Net   *netsim.Network
	Ctrl  *controller.Controller
	Store *statestore.Mem
	// Switches maps name → switch; Edges/Aggs/Cores list names in
	// deterministic construction order.
	Switches map[string]*hula.Switch
	Edges    []string
	Aggs     []string
	Cores    []string
	// Hosts maps edge name → its host sink.
	Hosts map[string]*HostSink
	// Links lists every switch-switch link in construction order.
	Links []Link
	// TorID maps edge name → its HULA ToR identifier.
	TorID map[string]uint16
}

// HostSink counts traffic delivered to one edge's aggregate host.
type HostSink struct {
	Packets uint64
	Bytes   uint64
}

// Naming helpers. Pods and indices are 0-based in names.
func edgeName(pod, i int) string { return fmt.Sprintf("e%d_%d", pod, i) }
func aggName(pod, i int) string  { return fmt.Sprintf("a%d_%d", pod, i) }
func coreName(c int) string      { return fmt.Sprintf("c%d", c) }
func hostName(pod, i int) string { return fmt.Sprintf("h%d_%d", pod, i) }

// EdgeName returns the name of edge i (0-based) in pod (0-based).
func EdgeName(pod, i int) string { return edgeName(pod, i) }

// AggName returns the name of agg i (0-based) in pod (0-based).
func AggName(pod, i int) string { return aggName(pod, i) }

// CoreName returns the name of core c (0-based).
func CoreName(c int) string { return coreName(c) }

// HostName returns the name of the host at edge i in pod.
func HostName(pod, i int) string { return hostName(pod, i) }

// BuildFatTree deploys the fabric: switches, hosts, links, probe flood
// rules, controller registrations, and (when secure) the full per-link
// key establishment.
func BuildFatTree(cfg TopoConfig) (*Topology, error) {
	if cfg.K < 4 || cfg.K%2 != 0 {
		return nil, fmt.Errorf("fleet: fat-tree arity must be even and >= 4, got %d", cfg.K)
	}
	if cfg.LinkDelay <= 0 {
		return nil, fmt.Errorf("fleet: link delay must be positive")
	}
	k := cfg.K
	half := k / 2
	numEdges := k * half

	t := &Topology{
		Cfg:      cfg,
		Net:      netsim.NewNetwork(),
		Store:    statestore.NewMem(),
		Switches: make(map[string]*hula.Switch),
		Hosts:    make(map[string]*HostSink),
		TorID:    make(map[string]uint16),
	}
	if cfg.Shards > 1 {
		fence := cfg.Fence
		if fence == 0 {
			fence = cfg.LinkDelay
		}
		if err := t.Net.Sim.EnableShards(cfg.Shards, fence); err != nil {
			return nil, err
		}
	}

	ctrl := controller.New(crypto.NewSeededRand(cfg.Seed*1000003 + 1))
	ctrl.SetRetryPolicy(controller.ResilientRetryPolicy())
	ctrl.UseClock(t.Net.Sim)
	if err := ctrl.EnableCrashSafety(t.Store); err != nil {
		return nil, err
	}
	t.Ctrl = ctrl

	shardOf := func(pod int) int {
		if cfg.Shards <= 1 {
			return 0
		}
		return pod % cfg.Shards
	}

	failTimeout := cfg.FailTimeoutNs
	if failTimeout == 0 {
		failTimeout = 2_000_000
	}
	addSwitch := func(name string, p hula.Params, shard int) error {
		p.Secure = cfg.Secure
		p.MaxTors = numEdges + 1
		p.FailTimeoutNs = failTimeout
		sw, err := hula.NewSwitch(name, p, cfg.Seed+uint64(len(t.Switches))*0x9E3779B9+1)
		if err != nil {
			return err
		}
		t.Switches[name] = sw
		t.Net.AddNode(name, sw.Node)
		if err := t.Net.SetShard(name, shard); err != nil {
			return err
		}
		return ctrl.Register(name, sw.Host, sw.Cfg, 50*time.Microsecond)
	}

	// Switches: edges and aggs per pod, then cores. ToR IDs are 1-based
	// in pod-major order; aggs and cores get IDs past the ToR range so
	// no data destination ever matches them.
	nextTor := 1
	for pod := 0; pod < k; pod++ {
		for i := 0; i < half; i++ {
			name := edgeName(pod, i)
			p := hula.DefaultParams(nextTor, half+1) // uplinks + host port
			t.TorID[name] = uint16(nextTor)
			nextTor++
			if err := addSwitch(name, p, shardOf(pod)); err != nil {
				return nil, err
			}
			t.Edges = append(t.Edges, name)
		}
		for i := 0; i < half; i++ {
			name := aggName(pod, i)
			p := hula.DefaultParams(numEdges+1+pod*half+i, k)
			p.HostPort = 0 // aggs are never destinations
			if err := addSwitch(name, p, shardOf(pod)); err != nil {
				return nil, err
			}
			t.Aggs = append(t.Aggs, name)
		}
	}
	for c := 0; c < half*half; c++ {
		name := coreName(c)
		p := hula.DefaultParams(numEdges+k*half+1+c, k)
		p.HostPort = 0
		// Cores belong to no pod; spread them across shards.
		if err := addSwitch(name, p, shardOf(c)); err != nil {
			return nil, err
		}
		t.Cores = append(t.Cores, name)
	}

	connect := func(a string, pa int, b string, pb int) error {
		l, err := t.Net.Connect(a, pa, b, pb, cfg.LinkDelay, cfg.LinkBandwidthBps)
		if err != nil {
			return err
		}
		if err := ctrl.ConnectSwitches(a, pa, b, pb, cfg.LinkDelay); err != nil {
			return err
		}
		t.Links = append(t.Links, Link{A: a, APort: pa, B: b, BPort: pb, L: l})
		return nil
	}

	// Edge → agg (intra-pod), agg → core.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				// Edge uplink a+1 ↔ agg down port e+1.
				if err := connect(edgeName(pod, e), a+1, aggName(pod, a), e+1); err != nil {
					return nil, err
				}
			}
		}
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				// Agg up port half+j+1 ↔ core (a*half+j) port pod+1.
				if err := connect(aggName(pod, a), half+j+1, coreName(a*half+j), pod+1); err != nil {
					return nil, err
				}
			}
		}
	}

	// Hosts: sinks counting delivered traffic, on the edge's shard.
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			sink := &HostSink{}
			hn := hostName(pod, e)
			t.Hosts[edgeName(pod, e)] = sink
			t.Net.AddNode(hn, netsim.HandlerFunc(func(_ *netsim.Network, _ *netsim.Node, _ int, data []byte) {
				sink.Packets++
				sink.Bytes += uint64(len(data))
			}))
			if err := t.Net.SetShard(hn, shardOf(pod)); err != nil {
				return nil, err
			}
			if _, err := t.Net.Connect(edgeName(pod, e), half+1, hn, 1, cfg.LinkDelay, 0); err != nil {
				return nil, err
			}
		}
	}

	if err := t.installProbeFloods(); err != nil {
		return nil, err
	}
	if cfg.Secure {
		if _, err := ctrl.InitAllKeys(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// installProbeFloods programs the up-then-down probe replication rules.
func (t *Topology) installProbeFloods() error {
	k := t.Cfg.K
	half := k / 2
	upPorts := make([]int, half) // edge uplinks / agg core ports
	for i := range upPorts {
		upPorts[i] = i + 1
	}
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			sw := t.Switches[edgeName(pod, e)]
			// Originated probes flood up every uplink; arriving probes
			// are consumed (the edge is the ToR).
			if err := sw.SetProbeFlood(sw.Params.GeneratorPort, upPorts); err != nil {
				return err
			}
			for p := 1; p <= half; p++ {
				if err := sw.SetProbeFlood(p, nil); err != nil {
					return err
				}
			}
		}
		for a := 0; a < half; a++ {
			sw := t.Switches[aggName(pod, a)]
			// From an edge: up to all cores and down to the other edges.
			for e := 0; e < half; e++ {
				var out []int
				for x := 0; x < half; x++ {
					if x != e {
						out = append(out, x+1)
					}
				}
				for j := 0; j < half; j++ {
					out = append(out, half+j+1)
				}
				if err := sw.SetProbeFlood(e+1, out); err != nil {
					return err
				}
			}
			// From a core: down to every edge (never back up).
			downPorts := make([]int, half)
			for i := range downPorts {
				downPorts[i] = i + 1
			}
			for j := 0; j < half; j++ {
				if err := sw.SetProbeFlood(half+j+1, downPorts); err != nil {
					return err
				}
			}
		}
	}
	for c := 0; c < half*half; c++ {
		sw := t.Switches[coreName(c)]
		// From pod p: down to every other pod.
		for p := 1; p <= k; p++ {
			var out []int
			for q := 1; q <= k; q++ {
				if q != p {
					out = append(out, q)
				}
			}
			if err := sw.SetProbeFlood(p, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// InjectProbe originates one probe at the named edge for its own ToR ID
// (probes advertise the path back to their originator).
func (t *Topology) InjectProbe(edge string) error {
	sw, ok := t.Switches[edge]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", edge)
	}
	pkt, err := hula.ProbePacket(t.TorID[edge], t.Cfg.Secure)
	if err != nil {
		return err
	}
	sw.Node.Inject(t.Net, t.Net.Node(edge), sw.Params.GeneratorPort, pkt)
	return nil
}

// SendData injects one data packet at the source edge's host port.
func (t *Topology) SendData(edge string, dst uint16, flow uint32, size int) error {
	sw, ok := t.Switches[edge]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", edge)
	}
	pkt, err := hula.DataPacket(dst, flow, size)
	if err != nil {
		return err
	}
	sw.Node.Inject(t.Net, t.Net.Node(edge), sw.Params.HostPort, pkt)
	return nil
}

// SaveDeviceStates snapshots every switch's register file into the
// topology store (warm-reboot images for CrashSwitch). Secure fabrics
// only — the snapshot captures the P4Auth register block.
func (t *Topology) SaveDeviceStates(takenNs uint64) error {
	if !t.Cfg.Secure {
		return nil
	}
	for name, sw := range t.Switches {
		ds := &deploy.Switch{Host: sw.Host, Cfg: sw.Cfg}
		if err := ds.SaveState(t.Store, "dev/"+name, takenNs); err != nil {
			return fmt.Errorf("fleet: save %s: %w", name, err)
		}
	}
	return nil
}

// CrashSwitch kills one switch: all I/O toward it goes dark.
func (t *Topology) CrashSwitch(name string) error {
	sw, ok := t.Switches[name]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", name)
	}
	sw.Host.SetDown(true)
	return nil
}

// RebootSwitch brings a crashed switch back. Secure fabrics warm-boot
// from the stored snapshot and run the controller's revival protocol;
// insecure ones just come back up (nothing authenticated to restore).
func (t *Topology) RebootSwitch(name string) error {
	sw, ok := t.Switches[name]
	if !ok {
		return fmt.Errorf("fleet: unknown switch %q", name)
	}
	if !t.Cfg.Secure {
		sw.Host.ClearCache()
		sw.Host.SetDown(false)
		return nil
	}
	ds := &deploy.Switch{Host: sw.Host, Cfg: sw.Cfg}
	if _, err := ds.RebootFromStore(t.Store, "dev/"+name); err != nil {
		return fmt.Errorf("fleet: reboot %s: %w", name, err)
	}
	if t.Ctrl.Killed() {
		return nil // a dead controller revives nothing; RecoverController will
	}
	if _, err := t.Ctrl.ReviveSwitch(name); err != nil {
		return fmt.Errorf("fleet: revive %s: %w", name, err)
	}
	return nil
}

// RecoverController replaces a killed controller: a fresh process
// attaches the same durable store, re-registers the whole fabric, and
// (secure) runs warm recovery over every switch.
func (t *Topology) RecoverController() error {
	ctrl := controller.New(crypto.NewSeededRand(t.Cfg.Seed*1000003 + 2))
	ctrl.SetRetryPolicy(controller.ResilientRetryPolicy())
	ctrl.UseClock(t.Net.Sim)
	if err := ctrl.EnableCrashSafety(t.Store); err != nil {
		return err
	}
	names := append(append(append([]string{}, t.Edges...), t.Aggs...), t.Cores...)
	for _, name := range names {
		sw := t.Switches[name]
		if err := ctrl.Register(name, sw.Host, sw.Cfg, 50*time.Microsecond); err != nil {
			return fmt.Errorf("fleet: re-register %s: %w", name, err)
		}
	}
	for _, lk := range t.Links {
		if err := ctrl.ConnectSwitches(lk.A, lk.APort, lk.B, lk.BPort, t.Cfg.LinkDelay); err != nil {
			return fmt.Errorf("fleet: reconnect %s-%s: %w", lk.A, lk.B, err)
		}
	}
	if t.Cfg.Secure {
		if _, err := ctrl.RecoverAll(); err != nil {
			return fmt.Errorf("fleet: recover fabric: %w", err)
		}
	}
	t.Ctrl = ctrl
	return nil
}

// PodMembers returns every switch and host of one pod (the partition
// fault's group).
func (t *Topology) PodMembers(pod int) []string {
	half := t.Cfg.K / 2
	var out []string
	for i := 0; i < half; i++ {
		out = append(out, edgeName(pod, i), aggName(pod, i), hostName(pod, i))
	}
	return out
}

// PodOf reports the pod of an edge or agg switch name, or -1.
func (t *Topology) PodOf(name string) int {
	var pod, idx int
	if n, _ := fmt.Sscanf(name, "e%d_%d", &pod, &idx); n == 2 {
		return pod
	}
	if n, _ := fmt.Sscanf(name, "a%d_%d", &pod, &idx); n == 2 {
		return pod
	}
	return -1
}

// ShardOf reports the shard an edge/agg pod maps to.
func (t *Topology) ShardOf(pod int) int {
	if t.Cfg.Shards <= 1 {
		return 0
	}
	return pod % t.Cfg.Shards
}

// TotalAlerts sums P4Auth alerts across the fabric.
func (t *Topology) TotalAlerts() int {
	total := 0
	for _, s := range t.Switches {
		total += s.Alerts
	}
	return total
}

// DeliveredBytes sums host-delivered bytes fabric-wide.
func (t *Topology) DeliveredBytes() uint64 {
	var total uint64
	for _, h := range t.Hosts {
		total += h.Bytes
	}
	return total
}

// UplinkShares reports the fraction of bytes an edge pushed onto each of
// its uplink aggs, in agg order.
func (t *Topology) UplinkShares(edge string) ([]float64, error) {
	pod := t.PodOf(edge)
	if pod < 0 {
		return nil, fmt.Errorf("fleet: %q is not an edge", edge)
	}
	half := t.Cfg.K / 2
	bytes := make([]uint64, half)
	var total uint64
	for a := 0; a < half; a++ {
		l := t.Net.LinkBetween(edge, aggName(pod, a))
		if l == nil {
			return nil, fmt.Errorf("fleet: no link %s-%s", edge, aggName(pod, a))
		}
		b, _, err := l.TxStats(edge)
		if err != nil {
			return nil, err
		}
		bytes[a] = b
		total += b
	}
	shares := make([]float64, half)
	for a := range bytes {
		if total > 0 {
			shares[a] = float64(bytes[a]) / float64(total)
		}
	}
	return shares, nil
}
