// The app × fault × protection survival matrix: the harness's output.
package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Fault names. The fabric app (hula) composes all of them; standalone
// apps see the subset that applies to a single-switch deployment.
const (
	FaultNone      = "none"
	FaultAttack    = "attack"
	FaultFlap      = "flap"
	FaultPartition = "partition"
	FaultCtrlKill  = "ctrlkill"
	FaultSwCrash   = "swcrash"
	FaultComposed  = "composed"
	// FaultWANPartition is an asymmetric WAN-style cut: traffic INTO the
	// last pod is dropped while its outbound direction keeps flowing, plus
	// a latency spike on one inter-pod link — the regime the hierarchical
	// control plane's degraded mode is built for.
	FaultWANPartition = "wanpartition"
	// FaultGlobalKill kills the controller for an extended dark window
	// (modeling loss of the global broker tier): the data plane must keep
	// forwarding on committed state until recovery.
	FaultGlobalKill = "globalkill"
)

// Apps lists every protected application of the paper's Table I that the
// harness can drive, fabric first.
func Apps() []string {
	return []string{
		"hula", "netcache", "flowradar", "blink",
		"netwarden", "silkroad", "routescout", "sketch",
	}
}

// FaultsFor reports the fault set an app participates in. The HULA
// fabric rides the fat tree, so link flaps, partitions and switch
// crashes apply; the standalone apps model one switch plus controller,
// where only the attacker and controller kills are meaningful.
func FaultsFor(app string) []string {
	if app == "hula" {
		return []string{
			FaultNone, FaultAttack, FaultFlap, FaultPartition,
			FaultCtrlKill, FaultSwCrash, FaultComposed,
			FaultWANPartition, FaultGlobalKill,
		}
	}
	return []string{FaultNone, FaultAttack, FaultCtrlKill, FaultComposed}
}

// Cell is one matrix entry: one app under one fault, protection on or
// off.
type Cell struct {
	App       string `json:"app"`
	Fault     string `json:"fault"`
	Protected bool   `json:"protected"`
	// Score is the app's health metric in [0,1] (delivery ratio, hit
	// rate, correct-verdict fraction, ... — app-specific but always
	// "1 is healthy").
	Score float64 `json:"score"`
	// ForgedApplied counts attacker-forged operations that took effect
	// on app state. The protection guarantee is that this is zero
	// whenever Protected is true.
	ForgedApplied int `json:"forged_applied"`
	// Detected counts tamper detections (rejected C-DP ops + alerts).
	Detected int `json:"detected"`
	// Survived reports whether the app stayed healthy: score at or
	// above its floor and, when protected, zero forged ops applied.
	Survived bool `json:"survived"`
	// Delivered/Sent count the load the cell drove: for the fabric app,
	// data packets sent by hosts and delivered to hosts; for standalone
	// apps, the operations (queries, packets, connections) the scenario
	// ran, summed across pods.
	Delivered uint64 `json:"delivered,omitempty"`
	Sent      uint64 `json:"sent,omitempty"`
	Note      string `json:"note,omitempty"`
}

// Matrix is a full harness run.
type Matrix struct {
	K      int    `json:"k"`
	Shards int    `json:"shards"`
	Seed   uint64 `json:"seed"`
	Cells  []Cell `json:"cells"`
}

// Survival counts surviving cells.
func (m *Matrix) Survival() (survived, total int) {
	for _, c := range m.Cells {
		total++
		if c.Survived {
			survived++
		}
	}
	return survived, total
}

// Trace renders the matrix as a canonical, deterministic string — one
// line per cell in sorted order — for golden comparisons. Scores are
// rounded to two decimals so the trace pins semantics, not float dust.
func (m *Matrix) Trace() string {
	lines := make([]string, 0, len(m.Cells))
	for _, c := range m.Cells {
		lines = append(lines, fmt.Sprintf(
			"%s fault=%s protected=%v score=%.2f forged=%d detected=%t survived=%v",
			c.App, c.Fault, c.Protected, c.Score, c.ForgedApplied, c.Detected > 0, c.Survived))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// JSON renders the matrix for the bench artifact.
func (m *Matrix) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
