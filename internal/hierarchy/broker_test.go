package hierarchy

import (
	"errors"
	"testing"
)

func sampleFrame() *Frame {
	return &Frame{
		Type: TExchReq, Pod: 2, Seq: 77, Epoch: 9, Grant: 41,
		PK: 0xDEADBEEFCAFE, Salt: 0x1234ABCD, Ver: 3,
		A: "a2_1", PA: 4, B: "c3", PB: 3,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	const key = 0x5EED
	in := sampleFrame()
	b, err := in.Encode(key)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verify(key) {
		t.Fatal("round-tripped frame fails Verify under its own key")
	}
	if out.Type != in.Type || out.Pod != in.Pod || out.Seq != in.Seq ||
		out.Epoch != in.Epoch || out.Grant != in.Grant || out.PK != in.PK ||
		out.Salt != in.Salt || out.Ver != in.Ver ||
		out.A != in.A || out.PA != in.PA || out.B != in.B || out.PB != in.PB {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestFrameTamperDetected(t *testing.T) {
	b, err := sampleFrame().Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip anywhere in the frame must fail CRC or,
	// if the attacker recomputes nothing, never reach Verify.
	for i := 0; i < len(b)*8; i++ {
		mut := append([]byte(nil), b...)
		mut[i/8] ^= 1 << (i % 8)
		f, err := Decode(mut)
		if err == nil {
			t.Fatalf("bit flip %d decoded cleanly (frame %+v)", i, f)
		}
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("bit flip %d: err=%v, want ErrTorn", i, err)
		}
	}
}

func TestFrameForgeryDetected(t *testing.T) {
	// An attacker with the (public) CRC key but the wrong signing key
	// produces a frame that decodes but fails Verify.
	b, err := sampleFrame().Encode(0xBAD)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verify(0x600D) {
		t.Fatal("frame signed under the wrong key verified")
	}
	if !f.Verify(0xBAD) {
		t.Fatal("frame does not verify under its own key")
	}
	// Locally-built frames (no wire image) never verify.
	if sampleFrame().Verify(0xBAD) {
		t.Fatal("un-decoded frame verified")
	}
}

func TestFrameTruncationAndGarbage(t *testing.T) {
	b, err := sampleFrame().Encode(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range [][]byte{nil, {}, b[:10], b[:len(b)-1], make([]byte, 256)} {
		if _, err := Decode(mut); !errors.Is(err, ErrTorn) {
			t.Fatalf("len=%d: err=%v, want ErrTorn", len(mut), err)
		}
	}
}

func TestFrameNameBounds(t *testing.T) {
	f := sampleFrame()
	f.A = string(make([]byte, maxNameLen+1))
	if _, err := f.Encode(1); err == nil {
		t.Fatal("oversized switch name encoded")
	}
}
