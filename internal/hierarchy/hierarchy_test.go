package hierarchy

import (
	"errors"
	"testing"

	"p4auth/internal/obs"
)

func buildBooted(t *testing.T, seed uint64) *Hierarchy {
	t.Helper()
	h, err := Build(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyTopology(t *testing.T) {
	h, err := Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 4 pods x (2 edges + 2 aggs) + 4 cores = 20 switches.
	if got := len(h.SwitchNames()); got != 20 {
		t.Fatalf("switches = %d, want 20", got)
	}
	// 16 agg-core links, 4 of which land on a core owned by the same
	// pod: 12 cross-pod links.
	if got := len(h.CrossLinks()); got != 12 {
		t.Fatalf("cross links = %d, want 12", got)
	}
	seen := map[string]bool{}
	for _, cl := range h.CrossLinks() {
		if cl.Initiator == cl.Owner {
			t.Fatalf("link %s marked cross-pod within one pod", cl.Label)
		}
		if seen[cl.Label] {
			t.Fatalf("duplicate cross link %s", cl.Label)
		}
		seen[cl.Label] = true
	}
	if len(h.Pods) != 4 || h.Global == nil {
		t.Fatalf("tiers missing: %d pods, global=%v", len(h.Pods), h.Global)
	}
}

func TestHierarchyEstablishAllCross(t *testing.T) {
	h := buildBooted(t, 42)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	for i := range h.CrossLinks() {
		cl := &h.CrossLinks()[i]
		va, vb, err := h.CrossLinkVersions(cl)
		if err != nil {
			t.Fatal(err)
		}
		if va != 1 || vb != 1 {
			t.Fatalf("%s versions %d/%d, want 1/1", cl.Label, va, vb)
		}
		ka, kb, err := h.CrossLinkKeys(cl)
		if err != nil {
			t.Fatal(err)
		}
		if ka == 0 || ka != kb {
			t.Fatalf("%s keys disagree: %#x %#x", cl.Label, ka, kb)
		}
	}
	// Every established link was authorized by a fenced, audited grant.
	grants := h.Ob.Audit.ByType(obs.EvBrokerGrant)
	epochs := map[uint64]bool{}
	granted := map[string]bool{}
	for _, e := range grants {
		epochs[e.Value] = true
		granted[e.Cause] = true
	}
	est := 0
	for _, p := range h.Pods {
		for i := range h.CrossLinks() {
			cl := &h.CrossLinks()[i]
			if cl.Initiator != p.ID {
				continue
			}
			st := p.CrossState(cl.Label)
			if st.Ver == 0 {
				continue
			}
			est++
			if !epochs[st.Epoch] {
				t.Fatalf("%s established under unaudited epoch %d", cl.Label, st.Epoch)
			}
			if !granted[cl.Label] {
				t.Fatalf("%s established with no audited grant", cl.Label)
			}
		}
	}
	if est != 12 {
		t.Fatalf("established = %d, want 12", est)
	}
	if h.Global.Served() < 12 {
		t.Fatalf("global served %d exchanges, want >= 12", h.Global.Served())
	}
	// No grant may outnumber... rather: establishes never exceed the
	// broker's served exchanges (a key without a broker round would).
	if uint64(est) > h.Global.Served() {
		t.Fatalf("%d establishes exceed %d served exchanges", est, h.Global.Served())
	}
}

func TestHierarchyWANPartitionDegradesGracefully(t *testing.T) {
	h := buildBooted(t, 7)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	pod := h.Pod(0)
	cl := firstLinkOf(h, 0)
	before := pod.CrossState(cl.Label)

	// Cut pod 0's WAN both ways. Intra-pod control writes must keep
	// landing: the pod's own lease and switches do not cross the WAN.
	h.WANLink(0).SetDown(true)
	if _, err := pod.active().Controller().WriteRegister("e0_0", "lat", 1, 0xAB); err != nil {
		t.Fatalf("intra-pod write during WAN loss: %v", err)
	}
	if v, _ := h.Switch("e0_0").Host.SW.RegisterRead("lat", 1); v != 0xAB {
		t.Fatalf("intra-pod write did not land: %#x", v)
	}

	// A rollover while the broker is unreachable is deferred, and the
	// link keeps serving on its cached committed key.
	err := pod.RollCross(cl)
	if !errors.Is(err, ErrDeferred) {
		t.Fatalf("roll during partition: %v, want ErrDeferred", err)
	}
	if !pod.Degraded() {
		t.Fatal("pod not degraded after broker loss")
	}
	if got := pod.DeferredRollovers(); len(got) != 1 || got[0] != cl.Label {
		t.Fatalf("deferred = %v, want [%s]", got, cl.Label)
	}
	if va, vb, _ := h.CrossLinkVersions(cl); va != before.Ver || vb != before.Ver {
		t.Fatalf("versions moved during partition: %d/%d, want %d", va, vb, before.Ver)
	}
	// A second roll request does not duplicate the queue entry.
	_ = pod.RollCross(cl)
	if got := pod.DeferredRollovers(); len(got) != 1 {
		t.Fatalf("deferred after repeat = %v, want 1 entry", got)
	}

	// Heal and flush: the deferred rollover completes, degraded exits.
	h.WANLink(0).SetDown(false)
	n, err := pod.FlushDeferred()
	if err != nil || n != 1 {
		t.Fatalf("flush: n=%d err=%v", n, err)
	}
	if pod.Degraded() {
		t.Fatal("pod still degraded after heal+flush")
	}
	if va, vb, _ := h.CrossLinkVersions(cl); va != before.Ver+1 || vb != before.Ver+1 {
		t.Fatalf("post-flush versions %d/%d, want %d", va, vb, before.Ver+1)
	}
	// The degraded window is fully audited: enter, defer, exit.
	causes := map[string]int{}
	for _, e := range h.Ob.Audit.ByType(obs.EvWANDegraded) {
		if e.Actor == pod.Name {
			causes[e.Cause]++
		}
	}
	if causes["enter"] != 1 || causes["defer"] != 1 || causes["exit"] != 1 {
		t.Fatalf("degraded audit = %v, want enter/defer/exit once each", causes)
	}
}

// firstLinkOf returns the first cross link initiated by the given pod.
func firstLinkOf(h *Hierarchy, pod uint8) *CrossLink {
	for i := range h.CrossLinks() {
		if h.CrossLinks()[i].Initiator == pod {
			return &h.CrossLinks()[i]
		}
	}
	return nil
}

// Satellite: a broker timeout BEFORE any remote leg leaves both sides
// on the committed key version — the grant-first ordering means no
// switch state moves until the fenced grant is held.
func TestBrokerTimeoutBeforeExchangeLeavesCommittedKey(t *testing.T) {
	h := buildBooted(t, 11)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	cl := firstLinkOf(h, 0)
	pod := h.Pod(0)

	// Asymmetric cut: pod 0's requests toward the hub are lost, the
	// return path stays up (nothing will be answered anyway).
	if err := h.WANLink(0).SetDirDown("wan-global", true); err != nil {
		t.Fatal(err)
	}
	err := pod.EstablishCross(cl)
	if !errors.Is(err, ErrBrokerTimeout) {
		t.Fatalf("establish across dead uplink: %v, want ErrBrokerTimeout", err)
	}
	va, vb, err := h.CrossLinkVersions(cl)
	if err != nil {
		t.Fatal(err)
	}
	if va != 1 || vb != 1 {
		t.Fatalf("half-rolled link after grant timeout: %d/%d, want 1/1", va, vb)
	}
	ka, kb, _ := h.CrossLinkKeys(cl)
	if ka == 0 || ka != kb {
		t.Fatalf("committed keys perturbed: %#x %#x", ka, kb)
	}

	// Heal; the next rollover converges normally.
	if err := h.WANLink(0).SetDirDown("wan-global", false); err != nil {
		t.Fatal(err)
	}
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("post-heal roll: %v", err)
	}
	if va, vb, _ = h.CrossLinkVersions(cl); va != 2 || vb != 2 {
		t.Fatalf("post-heal versions %d/%d, want 2/2", va, vb)
	}
}

// Satellite: a broker timeout mid-rollover — remote half installed, the
// reply lost — is detected by the supervisor telemetry (unequal install
// counters pinpoint the interrupted exchange) and repaired forward by
// the next establishment, both sides converging on one committed key.
func TestBrokerTimeoutMidRolloverRepairsForward(t *testing.T) {
	h := buildBooted(t, 13)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	cl := firstLinkOf(h, 0)
	pod := h.Pod(0)

	// Cut the OWNER pod's uplink: the relay request still reaches the
	// owner (downlink up), the owner installs, but its RelayOK toward
	// the hub is lost. The global tier's bounded relay retries fail and
	// it refuses the initiator with a relay timeout.
	if err := h.WANLink(int(cl.Owner)).SetDirDown("wan-global", true); err != nil {
		t.Fatal(err)
	}
	err := pod.EstablishCross(cl)
	var ref *RefusedError
	if !errors.As(err, &ref) || ref.Cause != RefuseTimeout {
		t.Fatalf("mid-roll loss: %v, want RefuseTimeout refusal", err)
	}
	// Telemetry pinpoints the interrupted exchange: owner side installed
	// (2), initiator still on the committed version (1).
	va, vb, err := h.CrossLinkVersions(cl)
	if err != nil {
		t.Fatal(err)
	}
	if va != 1 || vb != 2 {
		t.Fatalf("interrupted exchange counters %d/%d, want 1/2", va, vb)
	}
	// The initiator's committed cache still names version 1 — traffic
	// keys off the committed state, not the half-rolled slot.
	if st := pod.CrossState(cl.Label); st.Ver != 1 {
		t.Fatalf("committed cache moved to %d during interrupted roll", st.Ver)
	}

	// Heal. The next establishment hits the skew refusal, realigns the
	// initiator forward, and converges both sides on a fresh key.
	if err := h.WANLink(int(cl.Owner)).SetDirDown("wan-global", false); err != nil {
		t.Fatal(err)
	}
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("post-heal repair: %v", err)
	}
	va, vb, _ = h.CrossLinkVersions(cl)
	if va != vb || va != 3 {
		t.Fatalf("post-repair versions %d/%d, want 3/3", va, vb)
	}
	ka, kb, _ := h.CrossLinkKeys(cl)
	if ka == 0 || ka != kb {
		t.Fatalf("post-repair keys disagree: %#x %#x", ka, kb)
	}
}

// Satellite: a lost ExchOK is answered from the global reply cache on
// retransmit — the owner pod is never driven to a second install.
func TestLostReplyDedupedByReplyCache(t *testing.T) {
	h := buildBooted(t, 17)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	cl := firstLinkOf(h, 0)
	pod := h.Pod(0)

	// Drop exactly one ExchOK toward the initiator pod.
	dropped := 0
	link := h.WANLink(0)
	if err := link.SetTap("wan-pod0", func(data []byte) []byte {
		if f, err := Decode(data); err == nil && f.Type == TExchOK && dropped == 0 {
			dropped++
			return nil
		}
		return data
	}); err != nil {
		t.Fatal(err)
	}
	relaysBefore := h.Ob.Metrics.Counter("hier.relays_served").Load()
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("establish with one dropped reply: %v", err)
	}
	if dropped != 1 {
		t.Fatalf("tap dropped %d replies, want 1", dropped)
	}
	// One new remote install, not two: the retransmitted ExchReq was
	// answered from the cache, not re-relayed.
	if d := h.Ob.Metrics.Counter("hier.relays_served").Load() - relaysBefore; d != 1 {
		t.Fatalf("remote installs for one roll = %d, want 1", d)
	}
	if va, vb, _ := h.CrossLinkVersions(cl); va != 2 || vb != 2 {
		t.Fatalf("versions %d/%d, want 2/2", va, vb)
	}
}

func TestHierarchyForgedFramesDropped(t *testing.T) {
	h := buildBooted(t, 23)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	cl := firstLinkOf(h, 0)
	pod := h.Pod(0)
	link := h.WANLink(0)

	// An on-path attacker rewrites every hub->pod frame: re-signed under
	// a wrong key (valid CRC, forged digest). Nothing may be applied.
	forged := 0
	if err := link.SetTap("wan-pod0", func(data []byte) []byte {
		f, err := Decode(data)
		if err != nil {
			return data
		}
		forged++
		b, _ := (&Frame{Type: f.Type, Pod: f.Pod, Seq: f.Seq, Epoch: 666, Grant: 666,
			PK: f.PK, Salt: f.Salt, Ver: f.Ver, A: f.A, PA: f.PA, B: f.B, PB: f.PB}).Encode(0xA77AC)
		return b
	}); err != nil {
		t.Fatal(err)
	}
	before := pod.CrossState(cl.Label)
	err := pod.EstablishCross(cl)
	if !errors.Is(err, ErrBrokerTimeout) {
		t.Fatalf("establish under forgery: %v, want timeout (every reply dropped)", err)
	}
	if forged == 0 {
		t.Fatal("tap never fired")
	}
	if got := h.Ob.Metrics.Counter("hier.forged_dropped").Load(); got < uint64(forged) {
		t.Fatalf("forged_dropped = %d, want >= %d", got, forged)
	}
	if st := pod.CrossState(cl.Label); st != before {
		t.Fatalf("forged frames moved committed state: %+v -> %+v", before, st)
	}
	// Bit-flip attacker: CRC catches it, counted as torn.
	if err := link.SetTap("wan-pod0", func(data []byte) []byte {
		mut := append([]byte(nil), data...)
		mut[len(mut)/2] ^= 0x40
		return mut
	}); err != nil {
		t.Fatal(err)
	}
	if err := pod.EstablishCross(cl); !errors.Is(err, ErrBrokerTimeout) {
		t.Fatalf("establish under bit flips: %v, want timeout", err)
	}
	if h.Ob.Metrics.Counter("hier.torn_dropped").Load() == 0 {
		t.Fatal("torn frames not counted")
	}
	// Clean path: service recovers at once.
	if err := link.SetTap("wan-pod0", nil); err != nil {
		t.Fatal(err)
	}
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("post-attack establish: %v", err)
	}
}

func TestGlobalKillThenElectionRestoresService(t *testing.T) {
	h := buildBooted(t, 29)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	cl := firstLinkOf(h, 1)
	pod := h.Pod(1)
	oldEpoch := pod.CrossState(cl.Label).Epoch

	// Kill the global active: grants are refused (no fenced broker), no
	// cross-pod key can be established in the dark window.
	act := h.Global.Group.Active()
	act.Controller().Kill()
	err := pod.EstablishCross(cl)
	var ref *RefusedError
	if !errors.As(err, &ref) || ref.Cause != RefuseUnfenced {
		t.Fatalf("establish under dead broker: %v, want RefuseUnfenced", err)
	}
	if va, vb, _ := h.CrossLinkVersions(cl); va != 1 || vb != 1 {
		t.Fatalf("versions moved under dead broker: %d/%d", va, vb)
	}

	// Wait out the dead incumbent's lease and elect a successor; the
	// epoch advances, grants resume, old-epoch grants are dead with it.
	el, err := h.Global.Elect("global-active-killed")
	if err != nil {
		t.Fatal(err)
	}
	if el.Incumbent {
		t.Fatal("election returned the dead incumbent")
	}
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("post-election establish: %v", err)
	}
	newEpoch := pod.CrossState(cl.Label).Epoch
	if newEpoch <= oldEpoch {
		t.Fatalf("epoch did not advance across election: %d -> %d", oldEpoch, newEpoch)
	}
	if va, vb, _ := h.CrossLinkVersions(cl); va != 2 || vb != 2 {
		t.Fatalf("post-election versions %d/%d, want 2/2", va, vb)
	}
}

func TestPodElectionKeepsServingCrossLinks(t *testing.T) {
	h := buildBooted(t, 31)
	if err := h.EstablishAllCross(); err != nil {
		t.Fatal(err)
	}
	pod := h.Pod(0)
	cl := firstLinkOf(h, 0)

	// Kill the pod's active; the standby is elected over the pod's OWN
	// lease prefix (no other tier is disturbed) and keeps both intra-pod
	// writes and cross-pod rollovers working.
	pod.Group.Active().Controller().Kill()
	if _, err := pod.Elect("pod-active-killed"); err != nil {
		t.Fatal(err)
	}
	if _, err := pod.active().Controller().WriteRegister("e0_1", "lat", 2, 0xCD); err != nil {
		t.Fatalf("post-failover intra write: %v", err)
	}
	if err := pod.EstablishCross(cl); err != nil {
		t.Fatalf("post-failover cross roll: %v", err)
	}
	// The other pods' groups were untouched.
	for _, q := range h.Pods[1:] {
		if q.Group.Active() == nil || q.Group.Active().Fence() != nil {
			t.Fatalf("pod %d lost its active during pod 0's election", q.ID)
		}
	}
}
