// Package hierarchy is the two-tier control plane over the flat
// controller groups of internal/ha: a LOCAL tier of per-pod replica
// groups — one ha.Group per pod, each with an independent WAL/lease
// prefix in the shared statestore, owning only its pod's switches — and
// a GLOBAL tier (its own lease-fenced replica group) that brokers
// cross-pod port keys for the inter-pod agg-core links of a fat tree.
// The split mirrors P4sec's local/global architecture: local domains
// run autonomously, and only signed broker RPCs cross the untrusted
// WAN.
//
// Robustness discipline:
//
//   - every broker RPC is bounded: fixed attempt count, fixed per-try
//     timeout, deterministic exponential backoff;
//   - the global tier serves a grant only while its active replica
//     passes the lease fence, so no cross-pod key is ever established
//     without a fenced global grant;
//   - a pod that loses the WAN degrades gracefully — intra-pod traffic
//     keeps flowing on the pod's own lease, established cross-pod keys
//     stay cached, rollovers are deferred and audited — mirroring the
//     bounded-staleness discipline of the replica fence;
//   - all broker frames are CRC-armoured and signed with a per-pod
//     broker key (KDF-derived); a forged or tampered frame is dropped
//     and counted, never acted on.
package hierarchy

import (
	"encoding/binary"
	"errors"
	"fmt"

	"p4auth/internal/crypto"
)

// Broker frame types. Requests carry the sender's per-RPC sequence
// number; a response echoes the request's sequence, which is also the
// idempotency key for retransmits.
const (
	// TGrantReq: pod -> global, request a fenced grant to establish or
	// roll the named cross-pod link.
	TGrantReq uint8 = iota + 1
	// TGrantOK: global -> pod, the grant (id + fencing epoch).
	TGrantOK
	// TExchReq: pod -> global, the initiator's half of a split port-key
	// exchange (pk1, salt1, pre-exchange version) under a held grant.
	TExchReq
	// TExchOK: global -> pod, the remote half (pk2, salt2) relayed back
	// from the owning pod.
	TExchOK
	// TRelayReq: global -> owning pod, deliver the initiator's half for
	// execution against the link's remote switch.
	TRelayReq
	// TRelayOK: owning pod -> global, the executed remote half.
	TRelayOK
	// TRefuse: a typed refusal in either direction; Hint carries the
	// cause and, for skew refusals, VerSlot the remote version.
	TRefuse
)

// Refusal causes (Frame.Hint on TRefuse).
const (
	// RefuseUnfenced: the global tier has no fenced active replica.
	RefuseUnfenced uint8 = iota + 1
	// RefuseEpoch: the grant is unknown or from a superseded fencing
	// epoch; re-request.
	RefuseEpoch
	// RefuseNotActive: the owning pod has no fenced active replica to
	// run the remote half.
	RefuseNotActive
	// RefuseSkew: the remote slot runs ahead of the initiator's claimed
	// version (VerSlot carries the remote version); realign and retry.
	RefuseSkew
	// RefuseTimeout: the global tier's relay to the owning pod timed
	// out after its bounded retries.
	RefuseTimeout
	// RefuseExec: the remote half failed on the owning pod's switch.
	RefuseExec
)

// refusalNames maps causes to stable labels for traces and audits.
var refusalNames = map[uint8]string{
	RefuseUnfenced:  "global-unfenced",
	RefuseEpoch:     "grant-epoch-superseded",
	RefuseNotActive: "pod-not-active",
	RefuseSkew:      "remote-slot-ahead",
	RefuseTimeout:   "relay-timeout",
	RefuseExec:      "remote-exec-failed",
}

// RefusalName returns the stable label of a refusal cause.
func RefusalName(c uint8) string {
	if n, ok := refusalNames[c]; ok {
		return n
	}
	return "unknown"
}

// GlobalPod is the Frame.Pod value identifying the global tier.
const GlobalPod uint8 = 0xFF

// frameMagic spells "PABR" (P4Auth BRoker).
const frameMagic uint32 = 0x50414252

// frameVersion is the wire version.
const frameVersion uint8 = 1

// frameCRCKey keys the outer CRC armor. Not a secret: the CRC defends
// against torn and bit-flipped frames, the keyed digest against forgery.
const frameCRCKey uint64 = 0x5041_4252_C4C4_0001

// Frame is one broker RPC message. Fixed numeric fields plus the two
// switch names; Encode produces the canonical byte layout, Decode
// parses and CRC-checks it, Verify authenticates the digest.
type Frame struct {
	Type  uint8
	Pod   uint8  // sender: pod id, or GlobalPod
	Hint  uint8  // refusal cause on TRefuse; spare elsewhere
	Seq   uint32 // per-sender RPC sequence; echoed by responses
	Epoch uint64 // global fencing epoch of the grant
	Grant uint64 // grant id
	PK    uint64 // DH public share (pk1 outbound, pk2 back)
	Salt  uint32 // exchange salt (s1 outbound, s2 back)
	Ver   uint8  // pre-exchange slot version; remote version on RefuseSkew
	A     string // initiator-side switch
	PA    uint16 // initiator-side port
	B     string // remote-side switch
	PB    uint16 // remote-side port

	digest uint32 // verified on Decode'd frames via Verify
	signed []byte // the signed region of the decoded wire image
}

// Codec errors.
var (
	// ErrTorn: the frame failed structural or CRC validation — a torn,
	// truncated, or bit-flipped wire image.
	ErrTorn = errors.New("hierarchy: torn broker frame")
	// ErrForged: the frame's keyed digest did not verify.
	ErrForged = errors.New("hierarchy: forged broker frame")
)

var (
	brokerDigester = crypto.NewHalfSipHashDigester()
	brokerCRC      = crypto.NewKeyedCRC32()
)

// maxNameLen bounds switch-name fields on the wire.
const maxNameLen = 64

// Encode renders the canonical wire image: body, then a keyed digest
// over the body under key, then CRC armor over body+digest.
func (f *Frame) Encode(key uint64) ([]byte, error) {
	if len(f.A) > maxNameLen || len(f.B) > maxNameLen {
		return nil, fmt.Errorf("hierarchy: switch name too long (%d/%d)", len(f.A), len(f.B))
	}
	b := make([]byte, 0, 64+len(f.A)+len(f.B))
	b = binary.BigEndian.AppendUint32(b, frameMagic)
	b = append(b, frameVersion, f.Type, f.Pod, f.Hint)
	b = binary.BigEndian.AppendUint32(b, f.Seq)
	b = binary.BigEndian.AppendUint64(b, f.Epoch)
	b = binary.BigEndian.AppendUint64(b, f.Grant)
	b = binary.BigEndian.AppendUint64(b, f.PK)
	b = binary.BigEndian.AppendUint32(b, f.Salt)
	b = append(b, f.Ver)
	b = binary.BigEndian.AppendUint16(b, f.PA)
	b = binary.BigEndian.AppendUint16(b, f.PB)
	b = append(b, uint8(len(f.A)))
	b = append(b, f.A...)
	b = append(b, uint8(len(f.B)))
	b = append(b, f.B...)
	dig := brokerDigester.Sum32(key, b)
	b = binary.BigEndian.AppendUint32(b, dig)
	b = binary.BigEndian.AppendUint32(b, brokerCRC.Sum32(frameCRCKey, b))
	return b, nil
}

// Decode parses and CRC-checks a wire image. The digest is NOT verified
// here — the caller must Verify with the sender's expected key, because
// which key applies depends on the claimed sender.
func Decode(b []byte) (*Frame, error) {
	const fixed = 4 + 4 + 4 + 8 + 8 + 8 + 4 + 1 + 2 + 2 // through PB
	if len(b) < fixed+2+8 {
		return nil, ErrTorn
	}
	crcOff := len(b) - 4
	if brokerCRC.Sum32(frameCRCKey, b[:crcOff]) != binary.BigEndian.Uint32(b[crcOff:]) {
		return nil, ErrTorn
	}
	if binary.BigEndian.Uint32(b) != frameMagic || b[4] != frameVersion {
		return nil, ErrTorn
	}
	f := &Frame{
		Type:  b[5],
		Pod:   b[6],
		Hint:  b[7],
		Seq:   binary.BigEndian.Uint32(b[8:]),
		Epoch: binary.BigEndian.Uint64(b[12:]),
		Grant: binary.BigEndian.Uint64(b[20:]),
		PK:    binary.BigEndian.Uint64(b[28:]),
		Salt:  binary.BigEndian.Uint32(b[36:]),
		Ver:   b[40],
		PA:    binary.BigEndian.Uint16(b[41:]),
		PB:    binary.BigEndian.Uint16(b[43:]),
	}
	p := 45
	take := func() (string, bool) {
		if p >= crcOff-4 {
			return "", false
		}
		n := int(b[p])
		p++
		if n > maxNameLen || p+n > crcOff-4 {
			return "", false
		}
		s := string(b[p : p+n])
		p += n
		return s, true
	}
	var ok bool
	if f.A, ok = take(); !ok {
		return nil, ErrTorn
	}
	if f.B, ok = take(); !ok {
		return nil, ErrTorn
	}
	if p != crcOff-4 {
		return nil, ErrTorn
	}
	if f.Type < TGrantReq || f.Type > TRefuse {
		return nil, ErrTorn
	}
	f.digest = binary.BigEndian.Uint32(b[crcOff-4:])
	f.signed = b[:crcOff-4]
	return f, nil
}

// Verify authenticates a decoded frame's digest under key. Frames built
// locally (not via Decode) do not verify.
func (f *Frame) Verify(key uint64) bool {
	if f.signed == nil {
		return false
	}
	return crypto.Verify(brokerDigester, key, f.signed, f.digest)
}
