package hierarchy

import (
	"reflect"
	"testing"
)

// TestHierarchyChaos is the hierarchy-chaos gate: both scenarios over
// fixed seeds, zero invariant violations tolerated.
func TestHierarchyChaos(t *testing.T) {
	for _, sc := range []ChaosScenario{ScenarioWANPartition, ScenarioGlobalKill} {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(string(sc)+"/"+string('0'+byte(seed%10)), func(t *testing.T) {
				res, err := RunChaos(ChaosOptions{Seed: seed, Scenario: sc})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, v := range res.Violations {
					t.Errorf("seed %d violation: %s", seed, v)
				}
				if t.Failed() {
					for _, line := range res.Trace {
						t.Log(line)
					}
				}
				if res.Establishes == 0 || res.Grants == 0 {
					t.Fatalf("seed %d: run did no broker work: %+v", seed, res)
				}
				if sc == ScenarioWANPartition {
					if res.Deferred == 0 || res.Flushed == 0 {
						t.Fatalf("seed %d: degraded window exercised nothing: deferred=%d flushed=%d",
							seed, res.Deferred, res.Flushed)
					}
					if res.ForgedDropped == 0 || res.TornDropped == 0 {
						t.Fatalf("seed %d: injection sweeps dropped nothing: forged=%d torn=%d",
							seed, res.ForgedDropped, res.TornDropped)
					}
				}
				if sc == ScenarioGlobalKill && res.Refusals == 0 {
					t.Fatalf("seed %d: dark window refused nothing", seed)
				}
			})
		}
	}
}

// TestHierarchyDeterminism: equal options produce bit-identical traces.
func TestHierarchyDeterminism(t *testing.T) {
	for _, sc := range []ChaosScenario{ScenarioWANPartition, ScenarioGlobalKill} {
		a, err := RunChaos(ChaosOptions{Seed: 99, Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunChaos(ChaosOptions{Seed: 99, Scenario: sc})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			for i := range a.Trace {
				if i >= len(b.Trace) || a.Trace[i] != b.Trace[i] {
					t.Fatalf("%s: traces diverge at line %d:\n  a: %s\n  b: %s",
						sc, i, a.Trace[i], b.Trace[i])
				}
			}
			t.Fatalf("%s: trace lengths differ: %d vs %d", sc, len(a.Trace), len(b.Trace))
		}
		if !reflect.DeepEqual(a.Violations, b.Violations) || a.Establishes != b.Establishes {
			t.Fatalf("%s: results diverge across identical runs", sc)
		}
	}
}
