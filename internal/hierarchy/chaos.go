package hierarchy

// Seeded chaos runs for the hierarchical control plane: WAN faults
// (asymmetric partition, forged/torn frame injection, latency spikes)
// against the per-pod tiers and the global key broker, plus a
// global-active kill with election recovery. Single-threaded and
// scripted on the lockstep simulator: equal options produce
// bit-identical traces.
//
// Invariants checked on every run:
//
//   - zero forged broker frames applied (every forgery is dropped and
//     counted, committed link state and data-plane registers match the
//     harness shadow);
//   - no cross-pod key without a fenced global grant: every committed
//     link epoch appears in the audited EvBrokerGrant trail, and total
//     establishes never exceed the broker's served exchanges;
//   - graceful degradation: intra-pod writes keep landing while a pod's
//     WAN is dark, rollovers are deferred and audited, cached keys keep
//     serving;
//   - bounded re-convergence: after the WAN heals, every cross link is
//     back on one committed key within the budget;
//   - at most one fenced active per tier at every sampled instant;
//   - audit <-> metric exact reconciliation for grants, degraded
//     transitions, and deferred rollovers.

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/obs"
)

// ChaosScenario selects the hierarchy failure mode.
type ChaosScenario string

const (
	// ScenarioWANPartition: asymmetric WAN loss against one pod plus
	// latency spikes on another, with forged/torn frame injection before
	// the partition; heal and re-converge.
	ScenarioWANPartition ChaosScenario = "wanpartition"
	// ScenarioGlobalKill: the global broker's active dies; grants are
	// refused until the broker group elects a successor at a new epoch.
	ScenarioGlobalKill ChaosScenario = "globalkill"
)

// ChaosOptions fully determines a hierarchy chaos run.
type ChaosOptions struct {
	// Seed drives every random choice.
	Seed uint64
	// Pods is the fat-tree k (default 4).
	Pods int
	// Scenario is the failure mode.
	Scenario ChaosScenario
	// ReconvergeBudget bounds, in virtual time, the span from WAN heal
	// (or election) to every cross link back on one committed key
	// (default 250ms).
	ReconvergeBudget time.Duration
}

// ChaosResult is the outcome of one hierarchy chaos run.
type ChaosResult struct {
	// Trace is the deterministic event log.
	Trace []string
	// Violations lists every invariant breach; empty means clean.
	Violations []string
	// Establishes counts committed cross-pod establishments.
	Establishes uint64
	// Grants and Served count the broker's issued grants and completed
	// exchanges.
	Grants, Served uint64
	// Refusals counts typed broker refusals.
	Refusals uint64
	// ForgedDropped and TornDropped count rejected injected frames.
	ForgedDropped, TornDropped uint64
	// Deferred and Flushed count rollovers queued in the degraded
	// window and completed after heal.
	Deferred, Flushed int
	// ReconvergeTime spans the heal (or election) to full convergence.
	ReconvergeTime time.Duration
	// FinalEpoch is the global fencing epoch at the end of the run.
	FinalEpoch uint64
}

// chaosRNG is splitmix64 — tiny, seedable, deterministic.
type chaosRNG struct{ s uint64 }

func (r *chaosRNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *chaosRNG) intn(n int) int { return int(r.next() % uint64(n)) }

type chaosHarness struct {
	o   ChaosOptions
	res *ChaosResult
	rng chaosRNG
	h   *Hierarchy
	// shadow mirrors every committed lat-register write per switch.
	shadow map[string][]uint64
}

func (c *chaosHarness) trace(format string, args ...interface{}) {
	c.res.Trace = append(c.res.Trace,
		fmt.Sprintf("t=%-12v ", c.h.Sim.Now())+fmt.Sprintf(format, args...))
}

func (c *chaosHarness) violate(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	c.res.Violations = append(c.res.Violations, v)
	c.trace("VIOLATION: %s", v)
}

// counter reads a shared observer metric.
func (c *chaosHarness) counter(name string) uint64 {
	return c.h.Ob.Metrics.Counter(name).Load()
}

// RunChaos executes one deterministic hierarchy chaos run.
func RunChaos(o ChaosOptions) (*ChaosResult, error) {
	switch o.Scenario {
	case ScenarioWANPartition, ScenarioGlobalKill:
	default:
		return nil, fmt.Errorf("hierarchy: unknown chaos scenario %q", o.Scenario)
	}
	if o.Pods == 0 {
		o.Pods = 4
	}
	if o.ReconvergeBudget == 0 {
		o.ReconvergeBudget = 250 * time.Millisecond
	}
	h, err := Build(Config{Seed: o.Seed, Pods: o.Pods})
	if err != nil {
		return nil, err
	}
	c := &chaosHarness{
		o:      o,
		res:    &ChaosResult{},
		rng:    chaosRNG{s: o.Seed ^ 0x1E12A1C41},
		h:      h,
		shadow: map[string][]uint64{},
	}
	for _, n := range h.SwitchNames() {
		c.shadow[n] = make([]uint64, h.cfg.LatEntries)
	}
	if err := h.Bootstrap(); err != nil {
		return nil, err
	}
	if err := c.baseline(); err != nil {
		return c.res, err
	}
	switch o.Scenario {
	case ScenarioWANPartition:
		c.wanPartition()
	case ScenarioGlobalKill:
		c.globalKill()
	}
	c.finalChecks()
	return c.res, nil
}

// baseline establishes every cross link and lands one seeded write wave
// through each pod's active.
func (c *chaosHarness) baseline() error {
	if err := c.h.EstablishAllCross(); err != nil {
		return fmt.Errorf("hierarchy chaos: baseline establish: %w", err)
	}
	c.trace("baseline: %d pods, %d switches, %d cross links established",
		len(c.h.Pods), len(c.h.SwitchNames()), len(c.h.CrossLinks()))
	c.sampleActives("baseline")
	c.loadAllPods("baseline")
	c.checkConverged("baseline")
	return nil
}

// loadAllPods lands a seeded write wave through every pod's active,
// tracking shadows.
func (c *chaosHarness) loadAllPods(label string) {
	for _, p := range c.h.Pods {
		act := p.active()
		if act == nil {
			c.violate("%s: pod %d has no active for load", label, p.ID)
			continue
		}
		c.loadPod(label, p)
	}
}

// loadPod lands writes on every switch the pod owns.
func (c *chaosHarness) loadPod(label string, p *Pod) {
	n := 0
	for _, sw := range p.active().Controller().SwitchNames() {
		idx := uint32(c.rng.intn(c.h.cfg.LatEntries - 1))
		v := c.rng.next() % 0xFFFF
		if _, err := p.active().Controller().WriteRegister(sw, "lat", idx, v); err != nil {
			c.violate("%s: pod %d write %s lat[%d]: %v", label, p.ID, sw, idx, err)
			return
		}
		c.shadow[sw][idx] = v
		n++
	}
	c.trace("%s: pod %d landed %d writes", label, p.ID, n)
}

// sampleActives asserts at most one fenced active per tier right now.
func (c *chaosHarness) sampleActives(label string) {
	check := func(tier string, actives int) {
		if actives > 1 {
			c.violate("%s: tier %s has %d fenced actives at one instant", label, tier, actives)
		}
	}
	n := 0
	for _, r := range c.h.Global.Group.Replicas() {
		if r.IsActive() {
			n++
		}
	}
	check("global", n)
	for _, p := range c.h.Pods {
		n = 0
		for _, r := range p.Group.Replicas() {
			if r.IsActive() {
				n++
			}
		}
		check(p.Name, n)
	}
	c.trace("%s: active sample clean", label)
}

// checkConverged asserts every cross link sits on one committed key.
func (c *chaosHarness) checkConverged(label string) bool {
	ok := true
	for i := range c.h.CrossLinks() {
		cl := &c.h.CrossLinks()[i]
		va, vb, err := c.h.CrossLinkVersions(cl)
		if err != nil {
			c.violate("%s: %s telemetry: %v", label, cl.Label, err)
			ok = false
			continue
		}
		if va != vb {
			c.violate("%s: %s half-rolled at %d/%d", label, cl.Label, va, vb)
			ok = false
			continue
		}
		ka, kb, err := c.h.CrossLinkKeys(cl)
		if err != nil || ka == 0 || ka != kb {
			c.violate("%s: %s keys disagree: %#x/%#x (%v)", label, cl.Label, ka, kb, err)
			ok = false
		}
	}
	if ok {
		c.trace("%s: all %d cross links on one committed key", label, len(c.h.CrossLinks()))
	}
	return ok
}

// converged reports convergence without recording violations (used to
// poll during re-convergence).
func (c *chaosHarness) converged() bool {
	for i := range c.h.CrossLinks() {
		cl := &c.h.CrossLinks()[i]
		va, vb, err := c.h.CrossLinkVersions(cl)
		if err != nil || va != vb {
			return false
		}
	}
	return true
}

// wanPartition: forgery sweep, latency spikes, asymmetric partition,
// degraded service, heal, bounded re-convergence.
func (c *chaosHarness) wanPartition() {
	victim := c.h.Pod(0)
	spiked := c.h.Pod(1)

	// Phase 1: forgery sweep against the victim's downlink. Every
	// hub->pod frame is re-signed under an attacker key; nothing may
	// apply, service must resume once the attacker leaves.
	link := c.h.WANLink(0)
	forged := 0
	_ = link.SetTap("wan-pod0", func(data []byte) []byte {
		f, err := Decode(data)
		if err != nil {
			return data
		}
		forged++
		b, _ := (&Frame{Type: f.Type, Pod: f.Pod, Seq: f.Seq, Epoch: f.Epoch + 7,
			Grant: f.Grant + 13, PK: f.PK ^ 0xF0F0, Salt: f.Salt, Ver: f.Ver,
			A: f.A, PA: f.PA, B: f.B, PB: f.PB}).Encode(0xA77AC4E2)
		return b
	})
	cl := firstCross(c.h, victim.ID)
	before := victim.CrossState(cl.Label)
	if err := victim.EstablishCross(cl); err == nil {
		c.violate("forgery sweep: establish succeeded through forged replies")
	}
	if victim.CrossState(cl.Label) != before {
		c.violate("forgery sweep: forged frames moved committed state")
	}
	if forged == 0 {
		c.violate("forgery sweep: tap never fired")
	}
	_ = link.SetTap("wan-pod0", nil)
	c.trace("forgery sweep: %d forged frames injected, all dropped", forged)
	c.sampleActives("forgery-sweep")

	// Phase 2: torn-frame sweep — random bit flips; CRC must catch all.
	flips := 0
	_ = link.SetTap("wan-pod0", func(data []byte) []byte {
		mut := append([]byte(nil), data...)
		mut[c.rng.intn(len(mut))] ^= byte(1 << c.rng.intn(8))
		flips++
		return mut
	})
	if err := victim.EstablishCross(cl); err == nil {
		c.violate("torn sweep: establish succeeded through flipped frames")
	}
	_ = link.SetTap("wan-pod0", nil)
	c.trace("torn sweep: %d frames flipped, all rejected", flips)

	// The two sweeps left the victim degraded; a clean round clears it
	// and proves the retry path recovers without manual repair.
	if err := victim.EstablishCross(cl); err != nil {
		c.violate("post-sweep recovery: %v", err)
	}
	if victim.Degraded() {
		c.violate("post-sweep recovery: victim still degraded")
	}
	c.checkConverged("post-sweep")

	// Phase 3: latency spike on another pod's downlink. The bounded
	// retry/backoff schedule rides it out: the reply arrives late, the
	// client is still listening.
	sp := c.h.WANLink(1)
	now := c.h.Sim.Now()
	_ = sp.AddLatencySpike("wan-pod1", now, now+60*time.Millisecond, 5*time.Millisecond)
	cl2 := firstCross(c.h, spiked.ID)
	if err := spiked.EstablishCross(cl2); err != nil {
		c.violate("latency spike: establish failed under +5ms spike: %v", err)
	}
	sp.ClearLatencySpikes()
	c.trace("latency spike: establish survived +5ms on replies")

	// Phase 4: asymmetric partition — frames INTO the victim pod are
	// lost, its requests still reach the hub. The nastiest half-open
	// failure: relays may install remotely while every reply dies.
	c.h.Net.PartitionAsym(victim.nodeName())
	c.trace("partition: asymmetric cut into %s", victim.nodeName())
	if err := victim.EstablishCross(cl); err == nil {
		c.violate("partition: establish succeeded across a dead downlink")
	}
	if !victim.Degraded() {
		c.violate("partition: victim not degraded after broker loss")
	}
	// Intra-pod service continues on the pod's own lease.
	c.loadPod("partition", victim)
	// Rollovers are deferred, not lost, and not retried into the void.
	if err := victim.RollCross(cl); err == nil {
		c.violate("partition: rollover did not defer")
	}
	c.res.Deferred = len(victim.DeferredRollovers())
	if c.res.Deferred == 0 {
		c.violate("partition: no deferred rollovers recorded")
	}
	c.sampleActives("partition")

	// Phase 5: heal and re-converge within the budget.
	healed := c.h.Net.Heal()
	healAt := c.h.Sim.Now()
	c.trace("heal: %d links restored", healed)
	flushed, err := victim.FlushDeferred()
	if err != nil {
		c.violate("heal: flush deferred: %v", err)
	}
	c.res.Flushed = flushed
	// Repair any link the half-open window left interrupted.
	for i := range c.h.CrossLinks() {
		l := &c.h.CrossLinks()[i]
		if va, vb, err := c.h.CrossLinkVersions(l); err == nil && va != vb {
			if err := c.h.Pods[l.Initiator].EstablishCross(l); err != nil {
				c.violate("heal: repair %s: %v", l.Label, err)
			}
		}
	}
	c.res.ReconvergeTime = c.h.Sim.Now() - healAt
	if !c.converged() {
		c.violate("heal: links still half-rolled after repair pass")
	}
	if c.res.ReconvergeTime > c.o.ReconvergeBudget {
		c.violate("heal: re-convergence took %v, budget %v", c.res.ReconvergeTime, c.o.ReconvergeBudget)
	}
	if victim.Degraded() {
		c.violate("heal: victim still degraded after flush")
	}
	c.trace("heal: re-converged in %v (budget %v), %d deferred flushed",
		c.res.ReconvergeTime, c.o.ReconvergeBudget, flushed)
	c.loadAllPods("aftermath")
	c.sampleActives("aftermath")
}

// globalKill: the broker's active dies; grants refuse until the global
// group elects a successor at a new fencing epoch.
func (c *chaosHarness) globalKill() {
	pod := c.h.Pod(1)
	cl := firstCross(c.h, pod.ID)
	oldEpoch := pod.CrossState(cl.Label).Epoch

	act := c.h.Global.Group.Active()
	act.Controller().Kill()
	c.trace("kill: global active %s dead at epoch %d", act.Name(), oldEpoch)

	// Dark window: zero establishes may commit; refusals are typed.
	estBefore := c.counter("hier.crosspod_establishes")
	for _, p := range c.h.Pods {
		l := firstCross(c.h, p.ID)
		err := p.EstablishCross(l)
		var ref *RefusedError
		if err == nil {
			c.violate("dark window: pod %d established without a fenced broker", p.ID)
		} else if !asRefused(err, &ref) || ref.Cause != RefuseUnfenced {
			c.violate("dark window: pod %d got %v, want unfenced refusal", p.ID, err)
		}
	}
	if d := c.counter("hier.crosspod_establishes") - estBefore; d != 0 {
		c.violate("dark window: %d establishes committed with the broker dead", d)
	}
	c.loadAllPods("dark-window") // local tiers unaffected
	c.sampleActives("dark-window")
	c.trace("dark window: all %d pods refused, zero keys issued", len(c.h.Pods))

	// Election: wait out the dead incumbent's lease, promote rank 1.
	electAt := c.h.Sim.Now()
	el, err := c.h.Global.Elect("chaos-global-kill")
	if err != nil {
		c.violate("election: %v", err)
		return
	}
	if el.Incumbent {
		c.violate("election: dead incumbent returned as winner")
	}
	newEpoch := el.Winner.Epoch()
	if newEpoch <= oldEpoch {
		c.violate("election: epoch did not advance (%d -> %d)", oldEpoch, newEpoch)
	}
	c.trace("election: %s serving at epoch %d", el.Winner.Name(), newEpoch)

	// Service resumes: roll every cross link under the new epoch.
	for i := range c.h.CrossLinks() {
		l := &c.h.CrossLinks()[i]
		p := c.h.Pods[l.Initiator]
		if err := p.EstablishCross(l); err != nil {
			c.violate("post-election: roll %s: %v", l.Label, err)
			continue
		}
		if st := p.CrossState(l.Label); st.Epoch != newEpoch {
			c.violate("post-election: %s committed under stale epoch %d (want %d)",
				l.Label, st.Epoch, newEpoch)
		}
	}
	c.res.ReconvergeTime = c.h.Sim.Now() - electAt
	if c.res.ReconvergeTime > c.o.ReconvergeBudget {
		c.violate("post-election: re-convergence took %v, budget %v",
			c.res.ReconvergeTime, c.o.ReconvergeBudget)
	}
	c.res.FinalEpoch = newEpoch
	c.checkConverged("post-election")
	c.loadAllPods("aftermath")
	c.sampleActives("aftermath")
}

// finalChecks reconciles audits, metrics, shadows, and the broker
// ledger.
func (c *chaosHarness) finalChecks() {
	c.res.Establishes = c.counter("hier.crosspod_establishes")
	c.res.Grants = c.h.Global.Grants()
	c.res.Served = c.h.Global.Served()
	c.res.Refusals = c.counter("hier.grant_refusals")
	c.res.ForgedDropped = c.counter("hier.forged_dropped") + c.counter("hier.global_forged_dropped")
	c.res.TornDropped = c.counter("hier.torn_dropped") + c.counter("hier.global_torn_dropped")
	if c.res.FinalEpoch == 0 {
		if a := c.h.Global.Group.Active(); a != nil {
			c.res.FinalEpoch = a.Epoch()
		}
	}

	// No cross-pod key without a fenced, audited grant.
	if c.res.Establishes > c.res.Served {
		c.violate("final: %d establishes exceed %d served exchanges", c.res.Establishes, c.res.Served)
	}
	grants := c.h.Ob.Audit.ByType(obs.EvBrokerGrant)
	if uint64(len(grants)) != c.res.Grants {
		c.violate("final: audit records %d grants, broker ledger %d", len(grants), c.res.Grants)
	}
	if gm := c.counter("hier.grants"); gm != c.res.Grants {
		c.violate("final: grants metric %d != ledger %d", gm, c.res.Grants)
	}
	epochs := map[uint64]bool{}
	labels := map[string]bool{}
	for _, e := range grants {
		epochs[e.Value] = true
		labels[e.Cause] = true
	}
	for _, p := range c.h.Pods {
		for i := range c.h.CrossLinks() {
			cl := &c.h.CrossLinks()[i]
			if cl.Initiator != p.ID {
				continue
			}
			st := p.CrossState(cl.Label)
			if st.Ver == 0 {
				continue
			}
			if !epochs[st.Epoch] {
				c.violate("final: %s committed under unaudited epoch %d", cl.Label, st.Epoch)
			}
			if !labels[cl.Label] {
				c.violate("final: %s committed with no audited grant", cl.Label)
			}
		}
	}

	// Degraded transitions: audit <-> metric exact reconciliation.
	counts := map[string]uint64{}
	for _, e := range c.h.Ob.Audit.ByType(obs.EvWANDegraded) {
		counts[e.Cause]++
	}
	for cause, metric := range map[string]string{
		"enter": "hier.degraded_enters",
		"exit":  "hier.degraded_exits",
		"defer": "hier.deferred_rollovers",
	} {
		if m := c.counter(metric); m != counts[cause] {
			c.violate("final: %s metric %d != %d audited %q events", metric, m, counts[cause], cause)
		}
	}

	// Zero forged ops applied: every data-plane register matches the
	// shadow of committed writes.
	for _, n := range c.h.SwitchNames() {
		for i, want := range c.shadow[n] {
			got, err := c.h.Switch(n).Host.SW.RegisterRead("lat", i)
			if err != nil {
				c.violate("final: read %s lat[%d]: %v", n, i, err)
				continue
			}
			if got != want {
				c.violate("final: %s lat[%d] = %#x, shadow %#x", n, i, got, want)
			}
		}
	}
	c.trace("final: establishes=%d grants=%d served=%d refusals=%d forged=%d torn=%d epoch=%d",
		c.res.Establishes, c.res.Grants, c.res.Served, c.res.Refusals,
		c.res.ForgedDropped, c.res.TornDropped, c.res.FinalEpoch)
}

// firstCross returns the first cross link initiated by the given pod.
func firstCross(h *Hierarchy, pod uint8) *CrossLink {
	for i := range h.cross {
		if h.cross[i].Initiator == pod {
			return &h.cross[i]
		}
	}
	return nil
}

// asRefused extracts a *RefusedError from an error chain.
func asRefused(err error, out **RefusedError) bool {
	return errors.As(err, out)
}
