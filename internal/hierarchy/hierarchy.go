package hierarchy

import (
	"fmt"
	"time"

	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/deploy"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/pisa"
	"p4auth/internal/statestore"
)

// Config sizes a hierarchical control plane over a k-ary fat tree with
// k = Pods. The zero value of every field selects a default.
type Config struct {
	// Seed drives every random choice (controller nonces, broker keys).
	// Equal configs must produce equal runs.
	Seed uint64
	// Pods is k: the pod count, and half of it the per-pod edge and agg
	// counts (default 4; must be even, 2..8).
	Pods int
	// PodReplicas is the per-pod local controller group size (default 2).
	PodReplicas int
	// GlobalReplicas is the global broker group size (default 3).
	GlobalReplicas int
	// TTL is the lease validity window of every tier (default 5ms).
	TTL time.Duration
	// WANDelay is the one-way pod<->global WAN latency (default 1ms).
	WANDelay time.Duration
	// Store, when non-nil, backs every tier's lease and WAL (the chaos
	// harness passes a statestore.FaultStore). It must support
	// compare-and-swap. Defaults to a fresh in-memory store.
	Store statestore.Store
	// LatEntries sizes the per-switch "lat" demo register (default 8).
	LatEntries int
}

// CrossLink is one inter-pod agg-core link: the agg end belongs to the
// initiator pod, the core end to the owner pod, and only the broker may
// marry the two key slots.
type CrossLink struct {
	A  string // agg-side switch (initiator pod)
	PA int    // agg-side port
	B  string // core-side switch (owner pod)
	PB int    // core-side port
	// Initiator and Owner are the pod ids of the two ends.
	Initiator, Owner uint8
	// Label is the stable link name used in traces and audits.
	Label string
}

// Broker RPC bounds. All deterministic: fixed per-try timeouts, fixed
// attempt counts, exponential backoff between tries.
const (
	grantTimeout  = 6 * time.Millisecond
	grantAttempts = 3
	exchTimeout   = 16 * time.Millisecond
	exchAttempts  = 3
	relayTimeout  = 5 * time.Millisecond
	relayAttempts = 2
	backoffBase   = 2 * time.Millisecond
)

// heartbeatEvery is the lease-renewal cadence relative to the TTL.
const heartbeatDivisor = 2

// Hierarchy is a built two-tier control plane: per-pod replica groups
// over prefixed store namespaces, a global broker group, the fat-tree
// data plane, and the WAN star carrying broker RPCs.
type Hierarchy struct {
	cfg Config
	// Net owns the WAN simulator; Sim is its clock and event loop.
	Net *netsim.Network
	Sim *netsim.Sim
	// Ob is the shared observer: one audit trail and metric set spans
	// both tiers, so reconciliation can be exact.
	Ob *obs.Observer
	// Store is the shared backing store (prefixed per tier).
	Store statestore.Store
	// Global is the broker tier.
	Global *Global
	// Pods are the local tiers, indexed by pod id.
	Pods []*Pod

	switches map[string]*deploy.Switch
	names    []string // all switch names, deterministic order
	cross    []CrossLink
	// byAgg finds a cross link from its initiator end (A, PA).
	byAgg map[string]*CrossLink

	heartbeats int
}

// Build constructs the full hierarchy: switches, intra-pod links,
// per-pod and global replica groups, WAN star, broker keys. Nothing is
// activated — call Bootstrap next.
func Build(cfg Config) (*Hierarchy, error) {
	if cfg.Pods == 0 {
		cfg.Pods = 4
	}
	if cfg.Pods < 2 || cfg.Pods > 8 || cfg.Pods%2 != 0 {
		return nil, fmt.Errorf("hierarchy: pods must be even in 2..8, got %d", cfg.Pods)
	}
	if cfg.PodReplicas == 0 {
		cfg.PodReplicas = 2
	}
	if cfg.PodReplicas < 2 {
		return nil, fmt.Errorf("hierarchy: pod groups need >= 2 replicas, got %d", cfg.PodReplicas)
	}
	if cfg.GlobalReplicas == 0 {
		cfg.GlobalReplicas = 3
	}
	if cfg.GlobalReplicas < 2 {
		return nil, fmt.Errorf("hierarchy: global group needs >= 2 replicas, got %d", cfg.GlobalReplicas)
	}
	if cfg.TTL == 0 {
		cfg.TTL = 5 * time.Millisecond
	}
	if cfg.WANDelay == 0 {
		cfg.WANDelay = time.Millisecond
	}
	if cfg.Store == nil {
		cfg.Store = statestore.NewMem()
	}
	if cfg.LatEntries == 0 {
		cfg.LatEntries = 8
	}

	h := &Hierarchy{
		cfg:      cfg,
		Net:      netsim.NewNetwork(),
		Ob:       obs.NewObserver(0),
		Store:    cfg.Store,
		switches: map[string]*deploy.Switch{},
		byAgg:    map[string]*CrossLink{},
	}
	h.Sim = h.Net.Sim

	half := cfg.Pods / 2
	// Switch inventory: per pod, `half` edges and `half` aggs; half*half
	// cores, core j owned by pod j%Pods. Every pod tier owns its own
	// edges and aggs plus the cores assigned to it.
	podSwitches := make([][]string, cfg.Pods)
	build := func(name string) error {
		s, err := deploy.Build(deploy.SwitchSpec{
			Name:  name,
			Ports: cfg.Pods + 2,
			Registers: []*pisa.RegisterDef{
				{Name: "lat", Width: 32, Entries: cfg.LatEntries},
			},
		})
		if err != nil {
			return err
		}
		h.switches[name] = s
		h.names = append(h.names, name)
		return nil
	}
	for p := 0; p < cfg.Pods; p++ {
		for i := 0; i < half; i++ {
			for _, n := range []string{fmt.Sprintf("e%d_%d", p, i), fmt.Sprintf("a%d_%d", p, i)} {
				if err := build(n); err != nil {
					return nil, err
				}
			}
			podSwitches[p] = append(podSwitches[p],
				fmt.Sprintf("e%d_%d", p, i), fmt.Sprintf("a%d_%d", p, i))
		}
	}
	for j := 0; j < half*half; j++ {
		name := fmt.Sprintf("c%d", j)
		if err := build(name); err != nil {
			return nil, err
		}
		podSwitches[j%cfg.Pods] = append(podSwitches[j%cfg.Pods], name)
	}

	// Link plan. Intra-pod: every edge to every agg of its pod, plus the
	// agg-core links whose core happens to be owned by the same pod.
	// Cross-pod: the remaining agg-core links, established only through
	// the broker.
	type intraLink struct {
		a  string
		pa int
		b  string
		pb int
	}
	podIntra := make([][]intraLink, cfg.Pods)
	for p := 0; p < cfg.Pods; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				podIntra[p] = append(podIntra[p], intraLink{
					a:  fmt.Sprintf("e%d_%d", p, e),
					pa: a + 1,
					b:  fmt.Sprintf("a%d_%d", p, a),
					pb: e + 1,
				})
			}
		}
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				cj := a*half + j
				agg := fmt.Sprintf("a%d_%d", p, a)
				core := fmt.Sprintf("c%d", cj)
				pa, pb := half+1+j, p+1
				owner := uint8(cj % cfg.Pods)
				if int(owner) == p {
					podIntra[p] = append(podIntra[p], intraLink{a: agg, pa: pa, b: core, pb: pb})
					continue
				}
				cl := CrossLink{
					A: agg, PA: pa, B: core, PB: pb,
					Initiator: uint8(p), Owner: owner,
					Label: fmt.Sprintf("%s:%d-%s:%d", agg, pa, core, pb),
				}
				h.cross = append(h.cross, cl)
			}
		}
	}
	for i := range h.cross {
		h.byAgg[fmt.Sprintf("%s:%d", h.cross[i].A, h.cross[i].PA)] = &h.cross[i]
	}

	// Broker keys: one pairwise symmetric key per pod<->global pair,
	// KDF-derived from the seed. Pods hold only their own; the global
	// tier holds all.
	master := crypto.KDF{Personalization: 0xB120_4B52_0001}.Derive(cfg.Seed, 0xB0B0)
	podKeys := make([]uint64, cfg.Pods)
	for p := range podKeys {
		podKeys[p] = crypto.KDF{Personalization: 0xB120_4B52_0002}.Derive(master, uint64(p))
	}

	// Global tier first (the WAN star's hub).
	g, err := newGlobal(h, podKeys)
	if err != nil {
		return nil, err
	}
	h.Global = g

	// Pod tiers: replica groups over prefixed store views, intra links
	// connected on every replica (ConnectSwitches needs both ends in one
	// controller — true only for intra-pod links).
	for p := 0; p < cfg.Pods; p++ {
		pod, err := newPod(h, uint8(p), podSwitches[p], podKeys[p])
		if err != nil {
			return nil, err
		}
		for _, r := range pod.Group.Replicas() {
			for _, il := range podIntra[p] {
				if err := r.Controller().ConnectSwitches(il.a, il.pa, il.b, il.pb, 50*time.Microsecond); err != nil {
					return nil, fmt.Errorf("hierarchy: pod %d intra link %s:%d-%s:%d: %w",
						p, il.a, il.pa, il.b, il.pb, err)
				}
			}
		}
		h.Pods = append(h.Pods, pod)
	}

	// WAN star: wan-pod{p} port 1 <-> wan-global port p+1. Broker RPCs
	// are the ONLY traffic here; C-DP runs on the intra-pod transports.
	for p := 0; p < cfg.Pods; p++ {
		h.Net.MustConnect(h.Pods[p].nodeName(), 1, g.nodeName(), p+1, cfg.WANDelay, 0)
	}
	return h, nil
}

// Bootstrap activates rank 0 in every tier, initializes all intra-pod
// keys, and starts the lease heartbeat. Cross-pod links are NOT
// established — call EstablishAllCross (or establish selectively).
func (h *Hierarchy) Bootstrap() error {
	if _, err := h.Global.Group.Bootstrap(); err != nil {
		return fmt.Errorf("hierarchy: global bootstrap: %w", err)
	}
	for _, p := range h.Pods {
		act, err := p.Group.Bootstrap()
		if err != nil {
			return fmt.Errorf("hierarchy: pod %d bootstrap: %w", p.ID, err)
		}
		if _, err := act.Controller().InitAllKeys(); err != nil {
			return fmt.Errorf("hierarchy: pod %d key init: %w", p.ID, err)
		}
	}
	h.armHeartbeat()
	return nil
}

// armHeartbeat schedules the recurring lease renewal: every TTL/2 each
// tier's live active renews its grant. A killed active simply stops
// renewing and its lease runs out — exactly the failure-detection bound
// the election logic waits for.
func (h *Hierarchy) armHeartbeat() {
	h.Sim.After(h.cfg.TTL/heartbeatDivisor, func() {
		h.heartbeats++
		renew := func(g *ha.Group) {
			a := g.Active()
			if a == nil || a.Controller().Killed() {
				return
			}
			// Renewal failure (deposed, store dark) is not an error here:
			// the fence already refuses the replica's writes, and the next
			// election resolves the tenure.
			_ = a.Renew()
		}
		renew(h.Global.Group)
		for _, p := range h.Pods {
			renew(p.Group)
		}
		h.armHeartbeat()
	})
}

// CrossLinks returns the inter-pod agg-core links in deterministic
// order (do not mutate).
func (h *Hierarchy) CrossLinks() []CrossLink { return h.cross }

// SwitchNames returns every switch name in build order.
func (h *Hierarchy) SwitchNames() []string { return h.names }

// Switch returns a built switch by name, or nil.
func (h *Hierarchy) Switch(name string) *deploy.Switch { return h.switches[name] }

// Pod returns the local tier of the given pod id.
func (h *Hierarchy) Pod(id int) *Pod { return h.Pods[id] }

// EstablishAllCross establishes every cross-pod link through the broker
// in deterministic order, returning on the first failure.
func (h *Hierarchy) EstablishAllCross() error {
	for i := range h.cross {
		cl := &h.cross[i]
		if err := h.Pods[cl.Initiator].EstablishCross(cl); err != nil {
			return fmt.Errorf("hierarchy: establish %s: %w", cl.Label, err)
		}
	}
	return nil
}

// CrossLinkVersions reads both ends' key-slot install counters straight
// from the data planes — the fabric supervisor telemetry the broker
// invariants are checked against. Equal counters mean the link is on
// one committed key version; unequal counters pinpoint an interrupted
// exchange.
func (h *Hierarchy) CrossLinkVersions(cl *CrossLink) (va, vb uint8, err error) {
	a, err := h.switches[cl.A].Host.SW.RegisterRead(core.RegVer, cl.PA)
	if err != nil {
		return 0, 0, err
	}
	b, err := h.switches[cl.B].Host.SW.RegisterRead(core.RegVer, cl.PB)
	if err != nil {
		return 0, 0, err
	}
	return uint8(a), uint8(b), nil
}

// CrossLinkKeys reads the current-version port keys of both ends (the
// register bank the live version selects). Zero means no key installed.
func (h *Hierarchy) CrossLinkKeys(cl *CrossLink) (ka, kb uint64, err error) {
	va, vb, err := h.CrossLinkVersions(cl)
	if err != nil {
		return 0, 0, err
	}
	bank := func(v uint8) string {
		if v%2 == 1 {
			return core.RegKeysV1
		}
		return core.RegKeysV0
	}
	ka, err = h.switches[cl.A].Host.SW.RegisterRead(bank(va), cl.PA)
	if err != nil {
		return 0, 0, err
	}
	kb, err = h.switches[cl.B].Host.SW.RegisterRead(bank(vb), cl.PB)
	if err != nil {
		return 0, 0, err
	}
	return ka, kb, nil
}

// WANLink returns the netsim link between a pod's WAN node and the
// global hub — the injection point for partitions and latency spikes.
func (h *Hierarchy) WANLink(pod int) *netsim.Link {
	return h.Net.LinkBetween(h.Pods[pod].nodeName(), h.Global.nodeName())
}
