package hierarchy

import (
	"errors"
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
)

// Broker client errors.
var (
	// ErrBrokerTimeout: a broker RPC exhausted its bounded retries.
	ErrBrokerTimeout = errors.New("hierarchy: broker rpc timed out")
	// ErrDeferred: a cross-pod rollover was queued because the pod is in
	// WAN-degraded mode; FlushDeferred retries it after heal.
	ErrDeferred = errors.New("hierarchy: rollover deferred while wan-degraded")
	// ErrNoActive: the pod tier has no serving replica for the operation.
	ErrNoActive = errors.New("hierarchy: pod has no fenced active replica")
)

// RefusedError is a typed broker refusal surfaced to the caller.
type RefusedError struct {
	Cause uint8
	// RemoteVer is the remote slot version on RefuseSkew.
	RemoteVer uint8
}

func (e *RefusedError) Error() string {
	return fmt.Sprintf("hierarchy: broker refused: %s", RefusalName(e.Cause))
}

// crossState is the pod's cached view of one established cross link.
type crossState struct {
	// Ver is the committed key-slot version both ends reached.
	Ver uint8
	// Epoch is the global fencing epoch of the grant that authorized it.
	Epoch uint64
}

// Pod is one local tier: a per-pod replica group over the pod's own
// store prefix, owning the pod's switches, plus the WAN-facing broker
// client and the degraded-mode machinery.
type Pod struct {
	h  *Hierarchy
	ID uint8
	// Name is the stable pod label ("pod0"...) used in audits.
	Name string
	// Group is the pod's local replica group.
	Group *ha.Group
	// Store is the pod's prefixed view of the shared store.
	Store *statestore.PrefixStore

	node      *netsim.Node
	brokerKey uint64

	// RPC client state: one sequence space, outstanding-call table.
	nextSeq  uint32
	awaiting map[uint32]*Frame // seq -> nil (outstanding) or reply

	// relayCache replays the signed RelayOK for a retransmitted
	// RelayReq, so a lost reply can never cause a second install.
	relayCache map[uint32][]byte

	// cache holds the committed state of every cross link this pod
	// initiated; it survives WAN loss (graceful degradation).
	cache map[string]crossState

	// Degraded mode: entered when broker RPCs fail, exited when one
	// succeeds again. Rollovers requested while degraded are deferred.
	degraded bool
	deferred []*CrossLink

	mEstablish *obs.Counter
	mTimeouts  *obs.Counter
	mForged    *obs.Counter
	mTorn      *obs.Counter
	mStray     *obs.Counter
	mDeferred  *obs.Counter
	mDegEnter  *obs.Counter
	mDegExit   *obs.Counter
	mRelays    *obs.Counter
}

func newPod(h *Hierarchy, id uint8, switches []string, key uint64) (*Pod, error) {
	name := fmt.Sprintf("pod%d", id)
	st, err := statestore.Prefix(h.Store, name)
	if err != nil {
		return nil, err
	}
	p := &Pod{
		h: h, ID: id, Name: name, Store: st, brokerKey: key,
		awaiting:   map[uint32]*Frame{},
		relayCache: map[uint32][]byte{},
		cache:      map[string]crossState{},

		mEstablish: h.Ob.Metrics.Counter("hier.crosspod_establishes"),
		mTimeouts:  h.Ob.Metrics.Counter("hier.broker_timeouts"),
		mForged:    h.Ob.Metrics.Counter("hier.forged_dropped"),
		mTorn:      h.Ob.Metrics.Counter("hier.torn_dropped"),
		mStray:     h.Ob.Metrics.Counter("hier.stray_dropped"),
		mDeferred:  h.Ob.Metrics.Counter("hier.deferred_rollovers"),
		mDegEnter:  h.Ob.Metrics.Counter("hier.degraded_enters"),
		mDegExit:   h.Ob.Metrics.Counter("hier.degraded_exits"),
		mRelays:    h.Ob.Metrics.Counter("hier.relays_served"),
	}
	var reps []*ha.Replica
	for r := 0; r < h.cfg.PodReplicas; r++ {
		c := controller.New(crypto.NewSeededRand(h.cfg.Seed*1000003 + 10007*uint64(id) + 7001*uint64(r) + 101))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		c.UseClock(h.Sim)
		for _, n := range switches {
			s := h.switches[n]
			if err := c.Register(n, s.Host, s.Cfg, 50*time.Microsecond); err != nil {
				return nil, err
			}
		}
		rep, err := ha.NewReplica(ha.ReplicaConfig{
			Name:       fmt.Sprintf("%s-ctl%d", name, r),
			Store:      st,
			Clock:      h.Sim,
			TTL:        h.cfg.TTL,
			Controller: c,
			Observer:   h.Ob,
		})
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	grp, err := ha.NewGroup(h.Sim, reps...)
	if err != nil {
		return nil, err
	}
	p.Group = grp
	p.node = h.Net.AddNode(p.nodeName(), netsim.HandlerFunc(p.handle))
	return p, nil
}

func (p *Pod) nodeName() string { return fmt.Sprintf("wan-pod%d", p.ID) }

// Degraded reports whether the pod is currently in WAN-degraded mode.
func (p *Pod) Degraded() bool { return p.degraded }

// DeferredRollovers returns the labels of rollovers queued while
// degraded, in defer order.
func (p *Pod) DeferredRollovers() []string {
	out := make([]string, len(p.deferred))
	for i, cl := range p.deferred {
		out[i] = cl.Label
	}
	return out
}

// CrossState returns the pod's committed view of a cross link (zero
// value when never established).
func (p *Pod) CrossState(label string) crossState { return p.cache[label] }

// active returns the pod's serving replica, or nil.
func (p *Pod) active() *ha.Replica {
	a := p.Group.Active()
	if a == nil || a.Controller().Killed() || a.Fence() != nil {
		return nil
	}
	return a
}

// Elect runs a pod-tier election.
func (p *Pod) Elect(cause string) (*ha.Election, error) { return p.Group.Elect(cause) }

// handle is the pod's WAN receiver: authenticated responses complete
// outstanding client calls; RelayReqs run the remote half of a split
// exchange on the pod's own switch.
func (p *Pod) handle(net *netsim.Network, node *netsim.Node, port int, data []byte) {
	f, err := Decode(data)
	if err != nil {
		p.mTorn.Inc()
		return
	}
	if f.Pod != GlobalPod || !f.Verify(p.brokerKey) {
		p.mForged.Inc()
		p.h.Ob.Audit.Append(obs.EvDigestMismatch, p.Name, "broker-frame", f.Seq, uint64(f.Pod))
		return
	}
	switch f.Type {
	case TRelayReq:
		p.serveRelay(f)
	case TGrantOK, TExchOK, TRefuse:
		if r, outstanding := p.awaiting[f.Seq]; outstanding && r == nil {
			p.awaiting[f.Seq] = f
		} else {
			p.mStray.Inc() // late duplicate of an answered or abandoned call
		}
	default:
		p.mStray.Inc()
	}
}

// serveRelay executes the remote half of a split exchange on this pod's
// switch. Replies are cached by relay seq: a retransmitted RelayReq gets
// the SAME signed RelayOK and never triggers a second install.
func (p *Pod) serveRelay(f *Frame) {
	if b, ok := p.relayCache[f.Seq]; ok {
		_ = p.h.Net.Send(p.node, 1, b, 0)
		return
	}
	refuse := func(cause, ver uint8) {
		rf := &Frame{Type: TRefuse, Pod: p.ID, Hint: cause, Seq: f.Seq, Ver: ver}
		if b, err := rf.Encode(p.brokerKey); err == nil {
			_ = p.h.Net.Send(p.node, 1, b, 0)
		}
	}
	act := p.active()
	if act == nil {
		refuse(RefuseNotActive, 0)
		return
	}
	pk2, s2, _, err := act.Controller().PortKeyExchRemote(f.B, int(f.PB), f.PK, f.Salt, f.Ver)
	if err != nil {
		var skew *controller.KeySkewError
		if errors.As(err, &skew) {
			refuse(RefuseSkew, skew.VerB)
			return
		}
		refuse(RefuseExec, 0)
		return
	}
	p.mRelays.Inc()
	rf := &Frame{Type: TRelayOK, Pod: p.ID, Seq: f.Seq, Epoch: f.Epoch, Grant: f.Grant,
		PK: pk2, Salt: s2, Ver: f.Ver}
	b, err := rf.Encode(p.brokerKey)
	if err != nil {
		refuse(RefuseExec, 0)
		return
	}
	p.relayCache[f.Seq] = b
	_ = p.h.Net.Send(p.node, 1, b, 0)
}

// call runs one bounded broker RPC: send, drive the simulator to the
// per-try deadline watching for the reply, back off deterministically,
// resend — at most `attempts` tries. Retransmits reuse the sequence
// number, so the global tier's reply cache makes them idempotent.
func (p *Pod) call(f *Frame, perTry time.Duration, attempts int) (*Frame, error) {
	p.nextSeq++
	seq := p.nextSeq
	f.Seq = seq
	f.Pod = p.ID
	b, err := f.Encode(p.brokerKey)
	if err != nil {
		return nil, err
	}
	p.awaiting[seq] = nil
	defer delete(p.awaiting, seq)
	done := func() bool { return p.awaiting[seq] != nil }
	backoff := backoffBase
	for try := 1; try <= attempts; try++ {
		if try > 1 {
			// Deterministic backoff between tries; a late reply to the
			// previous send is accepted while waiting.
			p.drive(p.h.Sim.Now()+backoff, done)
			backoff *= 2
			if r := p.awaiting[seq]; r != nil {
				return r, nil
			}
		}
		if err := p.h.Net.Send(p.node, 1, b, 0); err != nil {
			return nil, err
		}
		p.drive(p.h.Sim.Now()+perTry, done)
		if r := p.awaiting[seq]; r != nil {
			return r, nil
		}
	}
	p.mTimeouts.Inc()
	return nil, fmt.Errorf("%w: type=%d after %d tries", ErrBrokerTimeout, f.Type, attempts)
}

// drive steps the lockstep simulator until done() or the deadline.
// Called only from top-level pod operations, never from handlers.
func (p *Pod) drive(deadline time.Duration, done func() bool) {
	for !done() {
		at, ok := p.h.Sim.NextEventAt()
		if !ok || at > deadline {
			p.h.Sim.RunUntil(deadline)
			return
		}
		p.h.Sim.Step()
	}
}

// tryEstablish runs one grant-first broker round for a cross link:
// grant RPC, then the three-legged split exchange with the remote half
// relayed by the global tier. No switch state moves before the fenced
// grant is held.
func (p *Pod) tryEstablish(cl *CrossLink) error {
	act := p.active()
	if act == nil {
		return ErrNoActive
	}
	gf, err := p.call(&Frame{Type: TGrantReq, A: cl.A, PA: uint16(cl.PA), B: cl.B, PB: uint16(cl.PB)},
		grantTimeout, grantAttempts)
	if err != nil {
		return err
	}
	if gf.Type == TRefuse {
		return &RefusedError{Cause: gf.Hint, RemoteVer: gf.Ver}
	}
	ctl := act.Controller()
	pk1, s1, ver, _, err := ctl.PortKeyExchOpen(cl.A, cl.PA)
	if err != nil {
		return err
	}
	xf, err := p.call(&Frame{Type: TExchReq, Epoch: gf.Epoch, Grant: gf.Grant,
		PK: pk1, Salt: s1, Ver: ver, A: cl.A, PA: uint16(cl.PA), B: cl.B, PB: uint16(cl.PB)},
		exchTimeout, exchAttempts)
	if err != nil {
		return err
	}
	if xf.Type == TRefuse {
		return &RefusedError{Cause: xf.Hint, RemoteVer: xf.Ver}
	}
	if _, err := ctl.PortKeyExchClose(cl.A, cl.PA, xf.PK, xf.Salt, ver+1); err != nil {
		return err
	}
	p.cache[cl.Label] = crossState{Ver: ver + 1, Epoch: gf.Epoch}
	p.mEstablish.Inc()
	return nil
}

// maxEstablishRounds bounds skew-repair retries of one establishment.
const maxEstablishRounds = 3

// EstablishCross establishes (or rolls) one cross-pod link through the
// broker, repairing version skew by forward realignment when the owner
// side reports its slot ahead. WAN failure flips the pod into degraded
// mode; a broker success flips it back.
func (p *Pod) EstablishCross(cl *CrossLink) error {
	var last error
	for round := 1; round <= maxEstablishRounds; round++ {
		err := p.tryEstablish(cl)
		if err == nil {
			p.exitDegraded()
			return nil
		}
		last = err
		var ref *RefusedError
		switch {
		case errors.As(err, &ref) && ref.Cause == RefuseSkew:
			act := p.active()
			if act == nil {
				return ErrNoActive
			}
			// Owner's slot is ahead (an earlier exchange died after the
			// remote install). Realign our side up and retry: forward-only
			// repair, identical to the single-controller paired-install fix.
			if _, rerr := act.Controller().RealignPortSlot(cl.A, cl.PA, ref.RemoteVer); rerr != nil {
				return rerr
			}
			continue
		case errors.Is(err, ErrBrokerTimeout):
			p.enterDegraded()
			return err
		default:
			return err
		}
	}
	return last
}

// RollCross requests a key rollover on an established cross link. While
// WAN-degraded the rollover is deferred — the link keeps serving on its
// cached committed key — and FlushDeferred retries it after heal.
func (p *Pod) RollCross(cl *CrossLink) error {
	if p.degraded {
		p.deferRoll(cl)
		return ErrDeferred
	}
	err := p.EstablishCross(cl)
	if errors.Is(err, ErrBrokerTimeout) {
		p.deferRoll(cl)
		return errors.Join(err, ErrDeferred)
	}
	return err
}

func (p *Pod) deferRoll(cl *CrossLink) {
	for _, q := range p.deferred {
		if q.Label == cl.Label {
			return // already queued once; rolling twice adds nothing
		}
	}
	p.deferred = append(p.deferred, cl)
	p.mDeferred.Inc()
	p.h.Ob.Audit.Append(obs.EvWANDegraded, p.Name, "defer", 0, uint64(len(p.deferred)))
}

// FlushDeferred retries every deferred rollover in defer order after a
// WAN heal. It stops (leaving the tail queued) on the first failure.
func (p *Pod) FlushDeferred() (flushed int, err error) {
	for len(p.deferred) > 0 {
		cl := p.deferred[0]
		if err := p.EstablishCross(cl); err != nil {
			return flushed, err
		}
		p.deferred = p.deferred[1:]
		flushed++
	}
	return flushed, nil
}

func (p *Pod) enterDegraded() {
	if p.degraded {
		return
	}
	p.degraded = true
	p.mDegEnter.Inc()
	p.h.Ob.Audit.Append(obs.EvWANDegraded, p.Name, "enter", 0, uint64(len(p.deferred)))
}

func (p *Pod) exitDegraded() {
	if !p.degraded {
		return
	}
	p.degraded = false
	p.mDegExit.Inc()
	p.h.Ob.Audit.Append(obs.EvWANDegraded, p.Name, "exit", 0, uint64(len(p.deferred)))
}
