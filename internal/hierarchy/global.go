package hierarchy

import (
	"fmt"
	"time"

	"p4auth/internal/controller"
	"p4auth/internal/crypto"
	"p4auth/internal/ha"
	"p4auth/internal/netsim"
	"p4auth/internal/obs"
	"p4auth/internal/statestore"
)

// Global is the broker tier: its own lease-fenced replica group (over
// the "global/" store prefix) fronted by one WAN node that serves grant
// and exchange RPCs. The tier is purely event-driven — the handler and
// its timers never block the simulator — and it serves only while the
// active replica passes the lease fence, so every grant carries the
// fencing epoch that makes it revocable by election.
type Global struct {
	h    *Hierarchy
	node *netsim.Node
	// Group is the broker replica group; its controllers own no
	// switches (the global tier touches no data plane directly).
	Group *ha.Group
	// Store is the tier's prefixed view of the shared store.
	Store *statestore.PrefixStore

	keys []uint64 // per-pod broker keys

	grants    map[uint64]*grant
	nextGrant uint64

	relays   map[uint32]*relay
	relaySeq uint32

	// replyCache dedups retransmitted client RPCs per (pod, seq): a nil
	// entry marks an in-flight relay (drop the duplicate, the reply will
	// come), a non-nil entry is replayed verbatim.
	replyCache map[replyKey][]byte

	served uint64 // exchanges completed (ExchOK sent, first time)

	mGrants    *obs.Counter
	mRefusals  *obs.Counter
	mRelayTO   *obs.Counter
	mForged    *obs.Counter
	mTorn      *obs.Counter
	mStray     *obs.Counter
	mDupServed *obs.Counter
}

type replyKey struct {
	pod uint8
	seq uint32
}

// grant is one fenced permission to run a cross-pod exchange.
type grant struct {
	id    uint64
	epoch uint64
	pod   uint8
	label string
	used  bool
}

// relay is one outstanding RelayReq to a link's owner pod.
type relay struct {
	seq      uint32 // relay sequence (global's own space)
	owner    uint8
	reqPod   uint8  // initiator
	reqSeq   uint32 // initiator's RPC seq
	frame    []byte // encoded RelayReq, for retransmit
	attempts int
	done     bool
}

func newGlobal(h *Hierarchy, podKeys []uint64) (*Global, error) {
	st, err := statestore.Prefix(h.Store, "global")
	if err != nil {
		return nil, err
	}
	g := &Global{
		h:          h,
		Store:      st,
		keys:       podKeys,
		grants:     map[uint64]*grant{},
		relays:     map[uint32]*relay{},
		replyCache: map[replyKey][]byte{},

		mGrants:    h.Ob.Metrics.Counter("hier.grants"),
		mRefusals:  h.Ob.Metrics.Counter("hier.grant_refusals"),
		mRelayTO:   h.Ob.Metrics.Counter("hier.relay_timeouts"),
		mForged:    h.Ob.Metrics.Counter("hier.global_forged_dropped"),
		mTorn:      h.Ob.Metrics.Counter("hier.global_torn_dropped"),
		mStray:     h.Ob.Metrics.Counter("hier.global_stray_dropped"),
		mDupServed: h.Ob.Metrics.Counter("hier.dup_replies_served"),
	}
	var reps []*ha.Replica
	for r := 0; r < h.cfg.GlobalReplicas; r++ {
		c := controller.New(crypto.NewSeededRand(h.cfg.Seed*1000003 + 900007*uint64(r) + 577))
		c.SetRetryPolicy(controller.ResilientRetryPolicy())
		c.UseClock(h.Sim)
		rep, err := ha.NewReplica(ha.ReplicaConfig{
			Name:       fmt.Sprintf("global-ctl%d", r),
			Store:      st,
			Clock:      h.Sim,
			TTL:        h.cfg.TTL,
			Controller: c,
			Observer:   h.Ob,
		})
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	grp, err := ha.NewGroup(h.Sim, reps...)
	if err != nil {
		return nil, err
	}
	g.Group = grp
	g.node = h.Net.AddNode(g.nodeName(), netsim.HandlerFunc(g.handle))
	return g, nil
}

func (g *Global) nodeName() string { return "wan-global" }

// Served reports how many cross-pod exchanges the tier completed.
func (g *Global) Served() uint64 { return g.served }

// Grants reports how many grants the tier has issued.
func (g *Global) Grants() uint64 { return g.nextGrant }

// active returns the serving replica, or nil when the tier cannot
// serve: no known active, the active's controller is dead (a dead
// frontend answers nothing), or the lease fence refuses it.
func (g *Global) active() *ha.Replica {
	a := g.Group.Active()
	if a == nil || a.Controller().Killed() || a.Fence() != nil {
		return nil
	}
	return a
}

// Elect runs a broker-tier election (after the active was killed or its
// store access was lost). Grants issued under the previous epoch die
// with it: the epoch check at ExchReq refuses them.
func (g *Global) Elect(cause string) (*ha.Election, error) {
	return g.Group.Elect(cause)
}

// handle is the tier's WAN frontend: decode, authenticate, dispatch.
// It runs at packet-delivery time and never blocks the simulator.
func (g *Global) handle(net *netsim.Network, node *netsim.Node, port int, data []byte) {
	f, err := Decode(data)
	if err != nil {
		g.mTorn.Inc()
		return
	}
	if int(f.Pod) >= len(g.keys) || !f.Verify(g.keys[f.Pod]) {
		g.mForged.Inc()
		g.h.Ob.Audit.Append(obs.EvDigestMismatch, g.nodeName(), "broker-frame", f.Seq, uint64(f.Pod))
		return
	}
	// The WAN star binds pod p to hub port p+1; a verified frame arriving
	// on another pod's port is a spoof attempt even with a stolen key.
	if port != int(f.Pod)+1 {
		g.mForged.Inc()
		g.h.Ob.Audit.Append(obs.EvDigestMismatch, g.nodeName(), "broker-port-spoof", f.Seq, uint64(f.Pod))
		return
	}
	switch f.Type {
	case TGrantReq:
		g.serveGrant(f)
	case TExchReq:
		g.serveExch(f)
	case TRelayOK, TRefuse:
		g.finishRelay(f)
	default:
		g.mStray.Inc()
	}
}

// reply signs and sends a response to the given pod, returning the
// encoded bytes for caching.
func (g *Global) reply(pod uint8, f *Frame) []byte {
	f.Pod = GlobalPod
	b, err := f.Encode(g.keys[pod])
	if err != nil {
		return nil
	}
	_ = g.h.Net.Send(g.node, int(pod)+1, b, 0)
	return b
}

// refuse sends an uncached typed refusal.
func (g *Global) refuse(pod uint8, seq uint32, cause uint8, ver uint8) {
	g.mRefusals.Inc()
	g.reply(pod, &Frame{Type: TRefuse, Hint: cause, Seq: seq, Ver: ver})
}

// serveGrant issues a fenced grant, or refuses while the tier has no
// fenced active. Successful replies are cached per (pod, seq) so a
// retransmitted request gets the SAME grant.
func (g *Global) serveGrant(f *Frame) {
	k := replyKey{f.Pod, f.Seq}
	if b, ok := g.replyCache[k]; ok && b != nil {
		g.mDupServed.Inc()
		_ = g.h.Net.Send(g.node, int(f.Pod)+1, b, 0)
		return
	}
	act := g.active()
	if act == nil {
		g.refuse(f.Pod, f.Seq, RefuseUnfenced, 0)
		return
	}
	cl := g.h.byAgg[f.A+":"+itoa(int(f.PA))]
	if cl == nil || cl.Initiator != f.Pod || cl.B != f.B || cl.PB != int(f.PB) {
		// Not a cross-pod link this pod initiates: refuse. Covers forged
		// link claims that survive the digest (insider misuse).
		g.refuse(f.Pod, f.Seq, RefuseEpoch, 0)
		return
	}
	g.nextGrant++
	gr := &grant{id: g.nextGrant, epoch: act.Epoch(), pod: f.Pod, label: cl.Label}
	g.grants[gr.id] = gr
	g.mGrants.Inc()
	g.h.Ob.Audit.Append(obs.EvBrokerGrant, act.Name(), cl.Label, uint32(f.Pod), gr.epoch)
	b := g.reply(f.Pod, &Frame{Type: TGrantOK, Seq: f.Seq, Epoch: gr.epoch, Grant: gr.id,
		A: f.A, PA: f.PA, B: f.B, PB: f.PB})
	g.replyCache[k] = b
}

// serveExch validates the grant against the CURRENT fencing epoch and
// relays the initiator's half to the link's owner pod. The reply-cache
// in-flight marker dedups retransmits without double-relaying.
func (g *Global) serveExch(f *Frame) {
	k := replyKey{f.Pod, f.Seq}
	if b, ok := g.replyCache[k]; ok {
		if b == nil {
			return // relay in flight; the eventual reply answers both
		}
		g.mDupServed.Inc()
		_ = g.h.Net.Send(g.node, int(f.Pod)+1, b, 0)
		return
	}
	act := g.active()
	if act == nil {
		g.refuse(f.Pod, f.Seq, RefuseUnfenced, 0)
		return
	}
	gr := g.grants[f.Grant]
	if gr == nil || gr.pod != f.Pod || gr.epoch != f.Epoch || gr.epoch != act.Epoch() {
		// Unknown grant, another pod's grant, or a grant from a deposed
		// tenure: the election that bumped the epoch revoked it.
		g.refuse(f.Pod, f.Seq, RefuseEpoch, 0)
		return
	}
	cl := g.h.byAgg[f.A+":"+itoa(int(f.PA))]
	if cl == nil || cl.Label != gr.label {
		g.refuse(f.Pod, f.Seq, RefuseEpoch, 0)
		return
	}
	g.relaySeq++
	rl := &relay{seq: g.relaySeq, owner: cl.Owner, reqPod: f.Pod, reqSeq: f.Seq, attempts: 1}
	rf := &Frame{Type: TRelayReq, Seq: rl.seq, Epoch: gr.epoch, Grant: gr.id,
		PK: f.PK, Salt: f.Salt, Ver: f.Ver, A: f.A, PA: f.PA, B: f.B, PB: f.PB,
		Pod: GlobalPod}
	b, err := rf.Encode(g.keys[cl.Owner])
	if err != nil {
		g.refuse(f.Pod, f.Seq, RefuseExec, 0)
		return
	}
	rl.frame = b
	g.relays[rl.seq] = rl
	g.replyCache[k] = nil // in-flight
	_ = g.h.Net.Send(g.node, int(cl.Owner)+1, b, 0)
	g.armRelayTimer(rl)
}

// armRelayTimer schedules the bounded retransmit/abort policy for one
// relay: up to relayAttempts sends relayTimeout apart, then a
// RefuseTimeout back to the initiator.
func (g *Global) armRelayTimer(rl *relay) {
	g.h.Sim.After(relayTimeout, func() {
		if rl.done {
			return
		}
		if rl.attempts < relayAttempts {
			rl.attempts++
			_ = g.h.Net.Send(g.node, int(rl.owner)+1, rl.frame, 0)
			g.armRelayTimer(rl)
			return
		}
		rl.done = true
		delete(g.relays, rl.seq)
		delete(g.replyCache, replyKey{rl.reqPod, rl.reqSeq}) // clear in-flight
		g.mRelayTO.Inc()
		g.refuse(rl.reqPod, rl.reqSeq, RefuseTimeout, 0)
	})
}

// finishRelay completes (RelayOK) or aborts (Refuse) an outstanding
// relay and answers the waiting initiator. Completions are cached for
// the initiator's retransmits; refusals are transient and are not.
func (g *Global) finishRelay(f *Frame) {
	rl := g.relays[f.Seq]
	if rl == nil || rl.done || rl.owner != f.Pod {
		g.mStray.Inc() // late duplicate of a settled relay
		return
	}
	rl.done = true
	delete(g.relays, rl.seq)
	k := replyKey{rl.reqPod, rl.reqSeq}
	if f.Type == TRefuse {
		delete(g.replyCache, k) // transient: a retried ExchReq re-relays
		g.mRefusals.Inc()
		g.reply(rl.reqPod, &Frame{Type: TRefuse, Hint: f.Hint, Seq: rl.reqSeq, Ver: f.Ver})
		return
	}
	if gr := g.grants[f.Grant]; gr != nil {
		gr.used = true
	}
	g.served++
	b := g.reply(rl.reqPod, &Frame{Type: TExchOK, Seq: rl.reqSeq, Epoch: f.Epoch,
		Grant: f.Grant, PK: f.PK, Salt: f.Salt, Ver: f.Ver})
	g.replyCache[k] = b
}

// itoa is a tiny allocation-light strconv.Itoa for small positive ints.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	return fmt.Sprintf("%d", n)
}

// compile-time guard: relay timers must outpace neither the client's
// per-try exchange window nor the WAN round trip they bound.
var _ = func() time.Duration {
	if relayTimeout*relayAttempts >= exchTimeout {
		panic("hierarchy: relay retry budget must fit inside one exchange try")
	}
	return 0
}()
