// Package netcache is a full-pipeline miniature of NetCache (Jin et al.,
// SOSP 2017), the in-network key-value cache of the paper's Table I. The
// switch serves hot keys from an exact-match cache table and counts missed
// keys in a count-min sketch held in registers; the controller periodically
// reads the sketch over C-DP (authenticated register reads of the row
// counters), promotes the hottest keys into the cache, and clears the
// statistics — exactly the update/report loop the paper's adversary
// targets. A compromised switch OS that deflates the reported counters
// keeps hot keys out of the cache, "inflating the time to retrieve the hot
// key value"; P4Auth detects the tampering and the controller retains the
// previous cache contents.
package netcache

import (
	"errors"
	"fmt"
	"sort"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/sketch"
	"p4auth/internal/switchos"
)

// Packet-type tag for query packets.
const PTypeQuery = 0xC0

// Ports: queries arrive on 1 and are answered there on a hit; misses go to
// the storage server on 2.
const (
	ClientPort = 1
	ServerPort = 2
)

// Register and table names.
const (
	TableCache  = "nc_cache"
	RegHits     = "nc_hits"
	RegMisses   = "nc_misses"
	RegSlotHits = "nc_slot_hits"
	ActionHit   = "nc_hit"
)

// Params configures the cache.
type Params struct {
	CacheSlots int
	CMSRows    int
	CMSCols    int
	Secure     bool
	// Name identifies the switch at its controller; empty means the
	// historical "cache". Fleet deployments run one instance per pod and
	// need distinct names within a shared controller namespace.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (p Params) name() string {
	if p.Name == "" {
		return "cache"
	}
	return p.Name
}

// DefaultParams sizes a small demonstration cache.
func DefaultParams(secure bool) Params {
	return Params{CacheSlots: 8, CMSRows: 2, CMSCols: 512, Secure: secure}
}

// System is a running NetCache deployment.
type System struct {
	Params Params
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg    core.Config
	CMS    *sketch.CMS
	Mirror *sketch.Mirror

	// cached maps a cached key to its hit-counter slot.
	cached map[uint32]int
	// SkippedEpochs counts controller epochs abandoned due to tampering.
	SkippedEpochs int
	// Epochs counts completed cache-update epochs.
	Epochs int
}

func buildProgram(p Params) (*pisa.Program, *sketch.CMS, core.Config, error) {
	cms, err := sketch.NewCMS("nc_cms", p.CMSRows, p.CMSCols)
	if err != nil {
		return nil, nil, core.Config{}, err
	}
	prog := &pisa.Program{
		Name: "netcache",
		Headers: []*pisa.HeaderDef{
			core.PTypeHeader(),
			{Name: "nq", Fields: []pisa.FieldDef{
				{Name: "key", Width: 32},
				{Name: "value", Width: 64},
				{Name: "hit", Width: 8},
			}},
		},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeQuery: "nc_query"}},
			{Name: "nc_query", Extract: "nq"},
		},
		DeparseOrder: []string{core.HdrPType, "nq"},
		Metadata: []pisa.FieldDef{
			{Name: "nc_found", Width: 8},
			{Name: "nc_slot_old", Width: 32},
		},
		Actions: []*pisa.Action{
			// A hit serves the value and charges the slot's hit counter —
			// the per-key statistics NetCache keeps for cached keys (the
			// sketch only ever sees misses).
			{Name: ActionHit, Params: []pisa.FieldDef{
				{Name: "value", Width: 64},
				{Name: "slot", Width: 16},
			}, Body: []pisa.Op{
				pisa.Set(pisa.F("nq", "value"), pisa.R(pisa.F(pisa.ParamHeader, "value"))),
				pisa.Set(pisa.F(pisa.MetaHeader, "nc_found"), pisa.C(1)),
				pisa.RegRMW(pisa.F(pisa.MetaHeader, "nc_slot_old"), RegSlotHits,
					pisa.R(pisa.F(pisa.ParamHeader, "slot")), pisa.RMWAdd, pisa.C(1)),
			}},
		},
		Tables: []*pisa.Table{
			{Name: TableCache,
				Keys:    []pisa.TableKey{{Field: pisa.F("nq", "key"), Match: pisa.MatchExact}},
				Size:    p.CacheSlots,
				Actions: []string{ActionHit}},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegHits, Width: 64, Entries: 1},
			{Name: RegMisses, Width: 64, Entries: 1},
			{Name: RegSlotHits, Width: 32, Entries: p.CacheSlots},
		},
	}
	cms.AddToProgram(prog)

	key := pisa.R(pisa.F("nq", "key"))
	queryOps := []pisa.Op{
		pisa.Set(pisa.F(pisa.MetaHeader, "nc_found"), pisa.C(0)),
		pisa.Apply(TableCache),
		pisa.If(pisa.Eq(pisa.R(pisa.F(pisa.MetaHeader, "nc_found")), pisa.C(1)),
			// Hit: answer from the switch.
			[]pisa.Op{
				pisa.RegRMW(pisa.F(pisa.MetaHeader, "nc_found"), RegHits, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
				pisa.Set(pisa.F("nq", "hit"), pisa.C(1)),
				pisa.Forward(pisa.C(ClientPort)),
			},
			// Miss: count the key, forward to storage.
			append(append([]pisa.Op{}, cms.UpdateOps(key)...),
				pisa.RegRMW(pisa.F(pisa.MetaHeader, "nc_found"), RegMisses, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
				pisa.Forward(pisa.C(ServerPort)),
			),
		),
	}
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("nq"), queryOps)}

	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Insecure = !p.Secure
	exposed := append(cms.RegisterNames(), RegHits, RegMisses, RegSlotHits)
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, nil, cfg, err
	}
	return prog, cms, cfg, nil
}

// New deploys the cache switch and its controller.
func New(p Params) (*System, error) {
	prog, cms, cfg, err := buildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0x7ACE+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	exposed := append(cms.RegisterNames(), RegHits, RegMisses, RegSlotHits)
	if err := core.InstallRegMap(sw, host.Info, exposed); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0x7ACF + p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &System{
		Params: p,
		Host:   host,
		Ctrl:   ctrl,
		Cfg:    cfg,
		CMS:    cms,
		Mirror: sketch.NewMirror(cms),
		cached: make(map[uint32]int),
	}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

var queryDef = &pisa.HeaderDef{Name: "nq", Fields: []pisa.FieldDef{
	{Name: "key", Width: 32}, {Name: "value", Width: 64}, {Name: "hit", Width: 8},
}}

// Query sends one read for key into the pipeline; it reports whether the
// switch served it.
func (s *System) Query(key uint32) (hit bool, err error) {
	body, err := pisa.PackHeader(queryDef, []uint64{uint64(key), 0, 0})
	if err != nil {
		return false, err
	}
	pkt := append([]byte{PTypeQuery}, body...)
	res, err := s.Host.NetworkPacket(ClientPort, pkt)
	if err != nil {
		return false, err
	}
	for _, em := range res.NetOut {
		if em.Port == ClientPort {
			return true, nil
		}
	}
	return false, nil
}

// readReg reads one register entry over the variant's C-DP path.
func (s *System) readReg(name string, index uint32) (uint64, error) {
	if s.Params.Secure {
		v, _, err := s.Ctrl.ReadRegister(s.Params.name(), name, index)
		return v, err
	}
	v, _, err := s.Ctrl.ReadRegisterInsecure(s.Params.name(), name, index)
	return v, err
}

// readEstimate fetches a key's sketch estimate over authenticated C-DP
// register reads (the report path the paper's adversary alters).
func (s *System) readEstimate(key uint32) (uint64, error) {
	min := ^uint64(0)
	for r, idx := range s.Mirror.Indexes(key) {
		v, err := s.readReg(fmt.Sprintf("%s_row%d", s.CMS.Name, r), uint32(idx))
		if err != nil {
			return 0, err
		}
		if v < min {
			min = v
		}
	}
	return min, nil
}

// UpdateEpoch runs one controller cycle over the candidate key set: read
// per-key estimates, install the hottest keys into the cache table, and
// clear the statistics. On tamper detection the cache is left untouched
// (and the epoch counted as skipped).
func (s *System) UpdateEpoch(candidates []uint32) error {
	type scored struct {
		key uint32
		est uint64
	}
	scores := make([]scored, 0, len(candidates))
	for _, k := range candidates {
		var est uint64
		var err error
		if slot, ok := s.cached[k]; ok {
			// Cached keys never miss; their demand lives in the per-slot
			// hit counters (read over the same authenticated C-DP path).
			est, err = s.readReg(RegSlotHits, uint32(slot))
		} else {
			est, err = s.readEstimate(k)
		}
		if err != nil {
			if errors.Is(err, controller.ErrTampered) {
				s.SkippedEpochs++
				return nil
			}
			return err
		}
		scores = append(scores, scored{k, est})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].est > scores[j].est })

	// Rebuild the cache with the top keys (values come from the storage
	// tier; modeled as key-derived).
	if err := s.Host.SW.ClearTable(TableCache); err != nil {
		return err
	}
	s.cached = make(map[uint32]int)
	for i := 0; i < len(scores) && i < s.Params.CacheSlots; i++ {
		k := scores[i].key
		if err := s.Host.SW.InsertEntry(TableCache, pisa.Entry{
			Key:    []pisa.KeyMatch{pisa.EKey(uint64(k))},
			Action: ActionHit,
			Params: []uint64{uint64(k)*2 + 1, uint64(i)},
		}); err != nil {
			return err
		}
		s.cached[k] = i
	}
	// Reset the per-slot hit counters for the new window.
	for i := 0; i < s.Params.CacheSlots; i++ {
		if err := s.Host.SW.RegisterWrite(RegSlotHits, i, 0); err != nil {
			return err
		}
	}
	// Clear statistics for the next window (driver path, like the paper's
	// periodic clears — the report path above is the attacked one).
	if err := s.Mirror.Clear(s.Host.SW); err != nil {
		return err
	}
	s.Epochs++
	return nil
}

// HitRate reads the hit/miss counters.
func (s *System) HitRate() (float64, error) {
	h, err := s.Host.SW.RegisterRead(RegHits, 0)
	if err != nil {
		return 0, err
	}
	m, err := s.Host.SW.RegisterRead(RegMisses, 0)
	if err != nil {
		return 0, err
	}
	if h+m == 0 {
		return 0, nil
	}
	return float64(h) / float64(h+m), nil
}

// ResetCounters zeroes the hit/miss counters (between measurement phases).
func (s *System) ResetCounters() error {
	if err := s.Host.SW.RegisterWrite(RegHits, 0, 0); err != nil {
		return err
	}
	return s.Host.SW.RegisterWrite(RegMisses, 0, 0)
}

// InstallStatDeflater installs the paper's adversary: a switch-OS hook
// that deflates reported sketch counters above `floor` so hot keys look
// cold to the controller.
func (s *System) InstallStatDeflater(floor uint64) error {
	rowIDs := make(map[uint32]bool, s.CMS.Rows+1)
	for _, name := range append(s.CMS.RegisterNames(), RegSlotHits) {
		ri, err := s.Host.Info.RegisterByName(name)
		if err != nil {
			return err
		}
		rowIDs[ri.ID] = true
	}
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketIn: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgAck {
				return data
			}
			if rowIDs[m.Reg.RegID] && m.Reg.Value > floor {
				m.Reg.Value = 0 // hot keys read as never-queried
				out, eerr := m.Encode()
				if eerr != nil {
					return data
				}
				return out
			}
			return data
		},
	})
}
