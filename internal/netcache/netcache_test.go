package netcache

import (
	"testing"
)

const keySpace = 64

// zipfQueries issues n queries with key k drawn proportional to 1/(k+1).
func zipfQueries(t *testing.T, s *System, n int) {
	t.Helper()
	// Deterministic round-robin expansion of the Zipf weights.
	for i := 0; i < n; {
		for k := uint32(0); k < keySpace && i < n; k++ {
			reps := keySpace / (int(k) + 1)
			for r := 0; r < reps && i < n; r++ {
				if _, err := s.Query(k); err != nil {
					t.Fatal(err)
				}
				i++
			}
		}
	}
}

func candidates() []uint32 {
	// The controller's candidate set, deliberately ordered cold-first so a
	// tie after tampering favors the attacker.
	out := make([]uint32, keySpace)
	for i := range out {
		out[i] = uint32(keySpace - 1 - i)
	}
	return out
}

// runScenario: warm stats -> clean epoch -> (maybe attack) -> stats ->
// second epoch -> measure hit rate over a final query phase.
func runScenario(t *testing.T, secure, attacked bool) (*System, float64) {
	t.Helper()
	s, err := New(DefaultParams(secure))
	if err != nil {
		t.Fatal(err)
	}
	zipfQueries(t, s, 1500)
	if err := s.UpdateEpoch(candidates()); err != nil {
		t.Fatal(err)
	}
	if attacked {
		if err := s.InstallStatDeflater(3); err != nil {
			t.Fatal(err)
		}
	}
	zipfQueries(t, s, 1500)
	if err := s.UpdateEpoch(candidates()); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetCounters(); err != nil {
		t.Fatal(err)
	}
	zipfQueries(t, s, 1500)
	rate, err := s.HitRate()
	if err != nil {
		t.Fatal(err)
	}
	return s, rate
}

func TestCleanCacheServesHotKeys(t *testing.T) {
	s, rate := runScenario(t, true, false)
	if rate < 0.45 {
		t.Fatalf("clean hit rate %.2f, want the hot-key majority", rate)
	}
	if s.Epochs != 2 || s.SkippedEpochs != 0 {
		t.Errorf("epochs=%d skipped=%d", s.Epochs, s.SkippedEpochs)
	}
	// The hottest key must be cached.
	if _, ok := s.cached[0]; !ok {
		t.Error("key 0 (hottest) not cached")
	}
}

func TestAttackEvictsHotKeysWithoutP4Auth(t *testing.T) {
	_, clean := runScenario(t, false, false)
	_, attacked := runScenario(t, false, true)
	if attacked > clean/2 {
		t.Fatalf("attacked hit rate %.2f vs clean %.2f: attack ineffective", attacked, clean)
	}
}

func TestP4AuthPreservesCacheUnderAttack(t *testing.T) {
	s, rate := runScenario(t, true, true)
	if s.SkippedEpochs == 0 {
		t.Fatal("no epochs skipped — tampering undetected")
	}
	// The first (clean) epoch's cache contents survive; the hit rate stays
	// near the clean level.
	if rate < 0.45 {
		t.Fatalf("protected hit rate %.2f collapsed", rate)
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}

func TestPipelineHitMissCountsConsistent(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	// Nothing cached: all misses.
	for k := uint32(0); k < 10; k++ {
		hit, err := s.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("key %d hit with an empty cache", k)
		}
	}
	if r, _ := s.HitRate(); r != 0 {
		t.Fatalf("hit rate %.2f with empty cache", r)
	}
	// Sketch counted each key once (pipeline CMS agrees with the mirror).
	for k := uint32(0); k < 10; k++ {
		est, err := s.Mirror.Estimate(s.Host.SW, k)
		if err != nil {
			t.Fatal(err)
		}
		if est < 1 {
			t.Errorf("key %d estimate %d, want >=1", k, est)
		}
	}
}

func TestEstimateOverCDPMatchesDriver(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Query(42); err != nil {
			t.Fatal(err)
		}
	}
	viaCDP, err := s.readEstimate(42)
	if err != nil {
		t.Fatal(err)
	}
	viaDriver, err := s.Mirror.Estimate(s.Host.SW, 42)
	if err != nil {
		t.Fatal(err)
	}
	if viaCDP != viaDriver || viaCDP < 7 {
		t.Fatalf("C-DP estimate %d, driver %d, true 7", viaCDP, viaDriver)
	}
}
