package statestore

import (
	"reflect"
	"testing"
)

// FuzzDecodeLease: the controller-ownership lease record (PALS). Same
// discipline as the core codec targets — arbitrary bytes must never
// panic, and any accepted input must survive an encode/decode round
// trip unchanged. The lease is the fencing root of the HA design, so a
// decoder confusion here would be a split-brain primitive.
func FuzzDecodeLease(f *testing.F) {
	for _, l := range []*Lease{
		{},
		{Holder: "ctl-a", Epoch: 1, GrantedNs: 12345, TTLNs: 5_000_000},
		{Holder: "b", Epoch: ^uint64(0), GrantedNs: ^uint64(0), TTLNs: ^uint64(0)},
	} {
		f.Add(l.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte("PALS"))
	f.Add([]byte("PALS\x01\x00\x00"))
	// Length-field edge cases: a claimed 0xFFFF-byte holder over a short
	// body, a zero-length claim over a long body (the shape the old
	// silent-truncation bug would have produced for a 65536-byte
	// holder), and a max-epoch grant about to overflow the fence.
	f.Add([]byte("PALS\x01\xff\xffshort"))
	f.Add(append([]byte("PALS\x01\x00\x00"), make([]byte, 64)...))
	f.Add((&Lease{Holder: "edge", Epoch: ^uint64(0) - 1, GrantedNs: 1, TTLNs: 1}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := DecodeLease(data)
		if err != nil {
			return
		}
		l2, err := DecodeLease(l.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(l, l2) {
			t.Fatalf("round trip changed lease:\n  %+v\n  %+v", l, l2)
		}
	})
}
