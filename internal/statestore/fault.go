package statestore

// FaultStore: the seeded fault-injection wrapper that makes the store a
// first-class fault domain. Every other fault surface in the repo (link
// taps, crash schedules, partitions) already injects deterministically
// from a seed; the statestore was the one silent single point of failure
// no harness could shake. FaultStore wraps any Store (and its Swapper,
// when present) and injects, per operation:
//
//   - unavailability windows scheduled in virtual time (ErrUnavailable);
//   - transient I/O errors, either probabilistic (seeded) or forced for
//     the next N operations (FailNext);
//   - torn reads: Load returns deterministic garbage bytes instead of
//     the stored value (the CRC-armoured codecs must reject them);
//   - forced CAS lost races: CompareAndSwap reports false without
//     touching the record (LoseNextCAS) — the only way to exercise the
//     lost-race paths of sequential, single-threaded chaos schedules;
//   - virtual-clock latency charged against an advancing clock.
//
// A pre-operation Hook lets tests interleave work *inside* an operation
// (e.g. a concurrent Acquire between a Resign's read and its CAS), which
// is how single-threaded deterministic harnesses model true races.
//
// All randomness comes from one xorshift stream seeded at construction:
// equal seeds and equal operation sequences produce equal fault
// schedules, so chaos traces stay bit-identical per seed.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrUnavailable is the injected (or real) backend-outage error: the
// store exists but cannot currently serve. Distinct from ErrNotFound —
// a caller must never treat an outage as an absent key.
var ErrUnavailable = errors.New("statestore: backend unavailable")

// FaultClock is the minimal clock FaultStore schedules outages and
// charges latency against. netsim.Sim satisfies it.
type FaultClock interface {
	Now() time.Duration
}

// FaultAdvancer is the optional extension used to charge per-operation
// latency by advancing virtual time. netsim.Sim satisfies it.
type FaultAdvancer interface {
	Advance(d time.Duration)
}

// Op names one store operation class for hooks and stats.
type Op string

// Operation classes observed by Hook and counted in FaultStats.
const (
	OpSave   Op = "save"
	OpLoad   Op = "load"
	OpDelete Op = "delete"
	OpKeys   Op = "keys"
	OpCAS    Op = "cas"
)

// FaultConfig parameterizes the probabilistic part of the injection.
// All probabilities are in [0,1] and drawn from the seeded stream in a
// fixed per-operation order, so equal configs replay identically.
type FaultConfig struct {
	// Seed drives every probabilistic choice and the torn-read garbage.
	Seed uint64
	// ErrProb is the per-operation transient I/O error probability.
	ErrProb float64
	// TornReadProb is the per-Load probability of returning garbage
	// bytes instead of the stored value.
	TornReadProb float64
	// CASLoseProb is the per-CompareAndSwap probability of reporting a
	// lost race without touching the record.
	CASLoseProb float64
	// Latency, when non-zero and the clock supports Advance, is charged
	// against virtual time on every operation.
	Latency time.Duration
}

// FaultStats counts what the wrapper actually injected and passed.
type FaultStats struct {
	// Ops counts operations that reached the wrapper, per class.
	Ops map[Op]int
	// Outages counts operations refused inside an unavailability window.
	Outages int
	// Errors counts injected transient I/O errors (forced + random).
	Errors int
	// TornReads counts Loads answered with garbage.
	TornReads int
	// LostCAS counts CompareAndSwap calls forced to report a lost race.
	LostCAS int
}

// outageWindow is one scheduled unavailability span [From, To) in
// virtual time.
type outageWindow struct {
	from, to time.Duration
}

// FaultStore implements Store (and Swapper, delegating to the wrapped
// store's) with seeded fault injection. Safe for concurrent use; the
// deterministic harnesses drive it single-threaded.
type FaultStore struct {
	raw   Store
	swap  Swapper // nil when raw does not support CAS
	clock FaultClock

	mu       sync.Mutex
	cfg      FaultConfig
	rngState uint64
	outages  []outageWindow
	failNext int
	loseCAS  int
	hook     func(op Op, key string)
	stats    FaultStats
}

// NewFaultStore wraps raw. The clock may be nil when no outage windows
// or latency are used (purely forced/probabilistic injection).
func NewFaultStore(raw Store, clock FaultClock, cfg FaultConfig) *FaultStore {
	f := &FaultStore{raw: raw, clock: clock, cfg: cfg, rngState: cfg.Seed ^ 0x9E3779B97F4A7C15}
	if f.rngState == 0 {
		f.rngState = 0x2545F4914F6CDD1D
	}
	if sw, ok := raw.(Swapper); ok {
		f.swap = sw
	}
	f.stats.Ops = make(map[Op]int)
	return f
}

// SetHook installs fn to run before every operation touches the wrapped
// store (after outage/error injection decided to let it through). The
// hook may operate on the RAW store — that is the point: it models a
// concurrent actor slipping in between a caller's read and its write.
// Pass nil to remove.
func (f *FaultStore) SetHook(fn func(op Op, key string)) {
	f.mu.Lock()
	f.hook = fn
	f.mu.Unlock()
}

// ScheduleOutage makes every operation in virtual-time window
// [from, to) fail with ErrUnavailable. Windows may overlap; they are
// never removed (chaos schedules are append-only).
func (f *FaultStore) ScheduleOutage(from, to time.Duration) error {
	if f.clock == nil {
		return fmt.Errorf("statestore: outage windows need a clock")
	}
	if to <= from {
		return fmt.Errorf("statestore: outage window [%v,%v) is empty", from, to)
	}
	f.mu.Lock()
	f.outages = append(f.outages, outageWindow{from: from, to: to})
	f.mu.Unlock()
	return nil
}

// FailNext forces the next n operations to fail with a transient I/O
// error, before any dice are rolled.
func (f *FaultStore) FailNext(n int) {
	f.mu.Lock()
	f.failNext = n
	f.mu.Unlock()
}

// LoseNextCAS forces the next n CompareAndSwap calls to report a lost
// race (false, nil) without touching the record.
func (f *FaultStore) LoseNextCAS(n int) {
	f.mu.Lock()
	f.loseCAS = n
	f.mu.Unlock()
}

// Stats returns a copy of the injection counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Ops = make(map[Op]int, len(f.stats.Ops))
	for k, v := range f.stats.Ops {
		s.Ops[k] = v
	}
	return s
}

// next is the xorshift64* stream behind every probabilistic choice.
// Requires f.mu.
func (f *FaultStore) next() uint64 {
	f.rngState ^= f.rngState << 13
	f.rngState ^= f.rngState >> 7
	f.rngState ^= f.rngState << 17
	return f.rngState * 0x2545F4914F6CDD1D
}

// roll draws one uniform [0,1) sample. Requires f.mu.
func (f *FaultStore) roll() float64 {
	return float64(f.next()>>11) / float64(1<<53)
}

// gate runs the common pre-operation injection: latency, outage
// windows, forced failures, probabilistic transient errors, then the
// hook. It returns a non-nil error when the operation must fail, and
// the hook to run (outside the lock) when it may proceed.
func (f *FaultStore) gate(op Op, key string) (func(op Op, key string), error) {
	f.mu.Lock()
	f.stats.Ops[op]++
	if f.cfg.Latency > 0 {
		if adv, ok := f.clock.(FaultAdvancer); ok {
			adv.Advance(f.cfg.Latency)
		}
	}
	if f.clock != nil && len(f.outages) > 0 {
		now := f.clock.Now()
		for _, w := range f.outages {
			if now >= w.from && now < w.to {
				f.stats.Outages++
				f.mu.Unlock()
				return nil, fmt.Errorf("%w: injected outage at t=%v (%s %s)", ErrUnavailable, now, op, key)
			}
		}
	}
	if f.failNext > 0 {
		f.failNext--
		f.stats.Errors++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: injected transient error (%s %s)", ErrUnavailable, op, key)
	}
	if f.cfg.ErrProb > 0 && f.roll() < f.cfg.ErrProb {
		f.stats.Errors++
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: injected transient error (%s %s)", ErrUnavailable, op, key)
	}
	hook := f.hook
	f.mu.Unlock()
	return hook, nil
}

// Save implements Store.
func (f *FaultStore) Save(key string, value []byte) error {
	hook, err := f.gate(OpSave, key)
	if err != nil {
		return err
	}
	if hook != nil {
		hook(OpSave, key)
	}
	return f.raw.Save(key, value)
}

// Load implements Store, optionally answering with deterministic torn
// garbage instead of the stored bytes.
func (f *FaultStore) Load(key string) ([]byte, error) {
	hook, err := f.gate(OpLoad, key)
	if err != nil {
		return nil, err
	}
	if hook != nil {
		hook(OpLoad, key)
	}
	v, err := f.raw.Load(key)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	torn := f.cfg.TornReadProb > 0 && f.roll() < f.cfg.TornReadProb
	var garbage []byte
	if torn {
		f.stats.TornReads++
		// Same length as the real value, derived from the stream: long
		// enough to look plausible, never CRC-consistent by accident in
		// practice — the codecs must reject it, not the test rig.
		garbage = make([]byte, len(v))
		for i := range garbage {
			garbage[i] = byte(f.next())
		}
	}
	f.mu.Unlock()
	if torn {
		return garbage, nil
	}
	return v, nil
}

// Delete implements Store.
func (f *FaultStore) Delete(key string) error {
	hook, err := f.gate(OpDelete, key)
	if err != nil {
		return err
	}
	if hook != nil {
		hook(OpDelete, key)
	}
	return f.raw.Delete(key)
}

// Keys implements Store.
func (f *FaultStore) Keys(prefix string) ([]string, error) {
	hook, err := f.gate(OpKeys, prefix)
	if err != nil {
		return nil, err
	}
	if hook != nil {
		hook(OpKeys, prefix)
	}
	return f.raw.Keys(prefix)
}

// CompareAndSwap implements Swapper when the wrapped store does. A
// forced or rolled lost race reports (false, nil) without touching the
// record — indistinguishable, by design, from losing for real.
func (f *FaultStore) CompareAndSwap(key string, prev, next []byte) (bool, error) {
	if f.swap == nil {
		return false, fmt.Errorf("statestore: wrapped store %T does not support CompareAndSwap", f.raw)
	}
	hook, err := f.gate(OpCAS, key)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	lose := false
	if f.loseCAS > 0 {
		f.loseCAS--
		lose = true
	} else if f.cfg.CASLoseProb > 0 && f.roll() < f.cfg.CASLoseProb {
		lose = true
	}
	if lose {
		f.stats.LostCAS++
	}
	f.mu.Unlock()
	if hook != nil {
		hook(OpCAS, key)
	}
	if lose {
		return false, nil
	}
	return f.swap.CompareAndSwap(key, prev, next)
}
