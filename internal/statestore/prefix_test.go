package statestore

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestPrefixIsolation(t *testing.T) {
	raw := NewMem()
	p0 := MustPrefix(raw, "pod0")
	p1 := MustPrefix(raw, "pod1/")

	if err := p0.Save(LeaseKey, []byte("alpha")); err != nil {
		t.Fatalf("p0 save: %v", err)
	}
	if err := p1.Save(LeaseKey, []byte("beta")); err != nil {
		t.Fatalf("p1 save: %v", err)
	}
	v0, err := p0.Load(LeaseKey)
	if err != nil || string(v0) != "alpha" {
		t.Fatalf("p0 lease = %q, %v; want alpha", v0, err)
	}
	v1, err := p1.Load(LeaseKey)
	if err != nil || string(v1) != "beta" {
		t.Fatalf("p1 lease = %q, %v; want beta", v1, err)
	}
	// The raw store sees both under distinct roots.
	if v, err := raw.Load("pod0/" + LeaseKey); err != nil || string(v) != "alpha" {
		t.Fatalf("raw pod0 lease = %q, %v", v, err)
	}
	if v, err := raw.Load("pod1/" + LeaseKey); err != nil || string(v) != "beta" {
		t.Fatalf("raw pod1 lease = %q, %v", v, err)
	}
	// Deleting in one view leaves the other intact.
	if err := p0.Delete(LeaseKey); err != nil {
		t.Fatalf("p0 delete: %v", err)
	}
	if _, err := p0.Load(LeaseKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("p0 lease after delete: err=%v, want ErrNotFound", err)
	}
	if v, err := p1.Load(LeaseKey); err != nil || string(v) != "beta" {
		t.Fatalf("p1 lease after p0 delete = %q, %v", v, err)
	}
}

func TestPrefixKeysStripped(t *testing.T) {
	raw := NewMem()
	p := MustPrefix(raw, "global")
	for _, k := range []string{"wal/0001", "wal/0002", "ctl/snap"} {
		if err := p.Save(k, []byte(k)); err != nil {
			t.Fatalf("save %s: %v", k, err)
		}
	}
	// Sibling namespace noise must not leak into the view.
	if err := raw.Save("pod0/wal/0001", []byte("x")); err != nil {
		t.Fatalf("raw save: %v", err)
	}
	keys, err := p.Keys("wal/")
	if err != nil {
		t.Fatalf("keys: %v", err)
	}
	want := []string{"wal/0001", "wal/0002"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	// Returned keys are loadable through the view.
	for _, k := range keys {
		if v, err := p.Load(k); err != nil || string(v) != k {
			t.Fatalf("load %s = %q, %v", k, v, err)
		}
	}
}

func TestPrefixCAS(t *testing.T) {
	raw := NewMem()
	p0 := MustPrefix(raw, "pod0")
	p1 := MustPrefix(raw, "pod1")

	ok, err := p0.CompareAndSwap(LeaseKey, nil, []byte("l0"))
	if err != nil || !ok {
		t.Fatalf("p0 initial CAS: ok=%v err=%v", ok, err)
	}
	// Same key in the sibling namespace is still absent.
	ok, err = p1.CompareAndSwap(LeaseKey, nil, []byte("l1"))
	if err != nil || !ok {
		t.Fatalf("p1 initial CAS: ok=%v err=%v", ok, err)
	}
	// Stale prev loses in its own namespace only.
	ok, err = p0.CompareAndSwap(LeaseKey, []byte("wrong"), []byte("x"))
	if err != nil || ok {
		t.Fatalf("p0 stale CAS: ok=%v err=%v, want lost race", ok, err)
	}
	ok, err = p0.CompareAndSwap(LeaseKey, []byte("l0"), []byte("l0b"))
	if err != nil || !ok {
		t.Fatalf("p0 CAS update: ok=%v err=%v", ok, err)
	}
	if v, _ := p1.Load(LeaseKey); !bytes.Equal(v, []byte("l1")) {
		t.Fatalf("p1 lease perturbed by p0 CAS: %q", v)
	}
}

func TestPrefixCASUnsupported(t *testing.T) {
	p := MustPrefix(casless{NewMem()}, "pod0")
	if _, err := p.CompareAndSwap(LeaseKey, nil, []byte("x")); err == nil {
		t.Fatalf("CAS over a CAS-less store must error, got nil")
	}
}

// casless hides Mem's Swapper implementation.
type casless struct{ s *Mem }

func (c casless) Save(key string, value []byte) error { return c.s.Save(key, value) }
func (c casless) Load(key string) ([]byte, error)     { return c.s.Load(key) }
func (c casless) Delete(key string) error             { return c.s.Delete(key) }
func (c casless) Keys(prefix string) ([]string, error) {
	return c.s.Keys(prefix)
}

func TestPrefixValidation(t *testing.T) {
	if _, err := Prefix(NewMem(), ""); err == nil {
		t.Fatalf("empty prefix accepted")
	}
	if _, err := Prefix(NewMem(), "bad prefix"); err == nil {
		t.Fatalf("invalid prefix accepted")
	}
	p := MustPrefix(NewMem(), "ok")
	if err := p.Save("../escape", []byte("x")); err == nil {
		t.Fatalf("path escape accepted")
	}
}
