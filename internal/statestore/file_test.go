package statestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestFileCrashDuringRename models a writer that died between CreateTemp
// and Rename: the orphaned temp file must not shadow the previous value,
// must not surface in Keys, and must not block later writes — this is
// the window the standby's tailer rides through on every active-side
// snapshot.
func TestFileCrashDuringRename(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("ctl/s1", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// The crash artifacts: an empty temp and a half-written temp in the
	// same directory the key lives in.
	for _, junk := range [][]byte{nil, []byte("half-writ")} {
		f, err := os.CreateTemp(filepath.Join(dir, "ctl"), ".tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(junk); err != nil {
			t.Fatal(err)
		}
		f.Close() // no rename: the writer died here
	}
	got, err := s.Load("ctl/s1")
	if err != nil || string(got) != "good" {
		t.Fatalf("Load after aborted rename = (%q, %v), want the previous value", got, err)
	}
	keys, err := s.Keys("ctl/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "ctl/s1" {
		t.Fatalf("Keys sees crash litter: %v", keys)
	}
	tl := NewTailer(s, "ctl/")
	ch, err := tl.Poll()
	if err != nil || len(ch) != 1 || ch[0].Key != "ctl/s1" {
		t.Fatalf("Tailer sees crash litter: (%v, %v)", ch, err)
	}
	if err := s.Save("ctl/s1", []byte("after")); err != nil {
		t.Fatalf("Save after crash litter: %v", err)
	}
	if got, _ := s.Load("ctl/s1"); string(got) != "after" {
		t.Fatalf("post-crash Save not visible: %q", got)
	}
}

// TestFileTornFinalWriteDetected: if a non-atomic writer ever truncates
// the final file (rename is atomic on POSIX, but the codec is the second
// line of defence by contract), the CRC armour must refuse the bytes.
func TestFileTornFinalWriteDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	full := (&Lease{Holder: "ctl-a", Epoch: 9, GrantedNs: 1, TTLNs: 2}).Encode()
	if err := s.Save(LeaseKey, full); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write by hand, bypassing Save's atomicity.
	p := filepath.Join(dir, filepath.FromSlash(LeaseKey))
	if err := os.WriteFile(p, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(LeaseKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLease(got); err == nil {
		t.Fatal("torn lease record decoded successfully")
	}
}

// TestFileConcurrentReaderWhileWriter is the standby's steady state: one
// goroutine rewriting keys (the active persisting snapshots and lease
// renewals) while readers Load and a Tailer polls. Every observed value
// must be a complete write — PALS decode proves integrity, and the
// epochs a single reader observes must be non-decreasing because Save
// replaces whole values under the store lock.
func TestFileConcurrentReaderWhileWriter(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const writes = 200
	if err := s.Save(LeaseKey, (&Lease{Holder: "w", Epoch: 0}).Encode()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i := uint64(1); i <= writes; i++ {
			if err := s.Save(LeaseKey, (&Lease{Holder: "w", Epoch: i}).Encode()); err != nil {
				t.Error(err)
				return
			}
			if i%10 == 0 { // interleave deletes+recreates of a sibling key
				if err := s.Save("ha/aux", []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if err := s.Delete("ha/aux"); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				b, err := s.Load(LeaseKey)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue
					}
					t.Error(err)
					return
				}
				l, err := DecodeLease(b)
				if err != nil {
					t.Errorf("reader saw a torn value: %v", err)
					return
				}
				if l.Epoch < last {
					t.Errorf("reader saw epoch regress %d -> %d", last, l.Epoch)
					return
				}
				last = l.Epoch
			}
		}()
	}
	wg.Add(1)
	go func() { // tailer
		defer wg.Done()
		tl := NewTailer(s, "ha/")
		var last uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			ch, err := tl.Poll()
			if err != nil {
				t.Error(err)
				return
			}
			for _, c := range ch {
				if c.Key != LeaseKey || c.Value == nil {
					continue
				}
				l, err := DecodeLease(c.Value)
				if err != nil {
					t.Errorf("tailer saw a torn value: %v", err)
					return
				}
				if l.Epoch < last {
					t.Errorf("tailer saw epoch regress %d -> %d", last, l.Epoch)
					return
				}
				last = l.Epoch
			}
		}
	}()
	wg.Wait()
	final, err := s.Load(LeaseKey)
	if err != nil {
		t.Fatal(err)
	}
	l, err := DecodeLease(final)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != writes {
		t.Fatalf("final epoch = %d, want %d", l.Epoch, writes)
	}
	// The writer's temp files must all be gone.
	if !bytes.Equal(final, (&Lease{Holder: "w", Epoch: writes}).Encode()) {
		t.Fatal("final value is not the last write")
	}
}
