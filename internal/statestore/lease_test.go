package statestore

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func TestLeaseRoundTrip(t *testing.T) {
	for _, l := range []*Lease{
		{},
		{Holder: "ctl-a", Epoch: 1, GrantedNs: 1000, TTLNs: 5_000_000},
		{Holder: "a-very-long-replica-name-with-dashes", Epoch: ^uint64(0), GrantedNs: ^uint64(0), TTLNs: 1},
	} {
		got, err := DecodeLease(l.Encode())
		if err != nil {
			t.Fatalf("decode of %+v: %v", l, err)
		}
		if !reflect.DeepEqual(l, got) {
			t.Fatalf("round trip changed lease:\n  %+v\n  %+v", l, got)
		}
	}
}

func TestLeaseDecodeRejects(t *testing.T) {
	good := (&Lease{Holder: "ctl-a", Epoch: 3, GrantedNs: 7, TTLNs: 9}).Encode()
	cases := map[string][]byte{
		"empty":      {},
		"short":      good[:8],
		"bad magic":  append([]byte("PXLS"), good[4:]...),
		"bad ver":    append(append([]byte{}, good[:4]...), append([]byte{9}, good[5:]...)...),
		"truncated":  good[:len(good)-6],
		"trailing":   append(append([]byte{}, good...), 0),
		"flipped":    flipByte(good, 10),
		"masked crc": flipByte(good, len(good)-1),
	}
	for name, b := range cases {
		if _, err := DecodeLease(b); err == nil {
			t.Errorf("%s: decode accepted corrupted record", name)
		}
	}
	if _, err := DecodeLease(good); err != nil {
		t.Fatalf("control: good record rejected: %v", err)
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestLeaseExpiresSaturates(t *testing.T) {
	l := &Lease{GrantedNs: ^uint64(0) - 5, TTLNs: 100}
	if got := l.ExpiresNs(); got != ^uint64(0) {
		t.Fatalf("ExpiresNs overflowed to %d", got)
	}
	l = &Lease{GrantedNs: 10, TTLNs: 5}
	if got := l.ExpiresNs(); got != 15 {
		t.Fatalf("ExpiresNs = %d, want 15", got)
	}
}

// casContract exercises the conditional-write semantics both backends
// must share.
func casContract(t *testing.T, s interface {
	Store
	Swapper
}) {
	t.Helper()
	a := (&Lease{Holder: "a", Epoch: 1}).Encode()
	b := (&Lease{Holder: "b", Epoch: 2}).Encode()

	// prev=nil on a present key must refuse.
	if ok, err := s.CompareAndSwap("ha/lease", nil, a); err != nil || !ok {
		t.Fatalf("create CAS = (%v, %v), want (true, nil)", ok, err)
	}
	if ok, err := s.CompareAndSwap("ha/lease", nil, b); err != nil || ok {
		t.Fatalf("create CAS over existing key = (%v, %v), want (false, nil)", ok, err)
	}
	// Wrong prev must refuse without writing.
	if ok, err := s.CompareAndSwap("ha/lease", b, b); err != nil || ok {
		t.Fatalf("CAS with wrong prev = (%v, %v), want (false, nil)", ok, err)
	}
	if got, _ := s.Load("ha/lease"); !bytes.Equal(got, a) {
		t.Fatal("failed CAS mutated the stored value")
	}
	// Matching prev swaps.
	if ok, err := s.CompareAndSwap("ha/lease", a, b); err != nil || !ok {
		t.Fatalf("CAS with matching prev = (%v, %v), want (true, nil)", ok, err)
	}
	if got, _ := s.Load("ha/lease"); !bytes.Equal(got, b) {
		t.Fatal("successful CAS did not install the new value")
	}
	// Non-nil prev on an absent key must refuse.
	if ok, err := s.CompareAndSwap("ha/other", a, b); err != nil || ok {
		t.Fatalf("CAS on absent key = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := s.CompareAndSwap("bad key!", nil, a); err == nil || ok {
		t.Fatal("CAS accepted an invalid key")
	}
}

func TestMemCompareAndSwap(t *testing.T) { casContract(t, NewMem()) }

func TestFileCompareAndSwap(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	casContract(t, s)
}

// TestCASContention races goroutines through load-CAS-retry loops; every
// increment must land exactly once.
func TestCASContention(t *testing.T) {
	for _, mk := range []func(t *testing.T) interface {
		Store
		Swapper
	}{
		func(t *testing.T) interface {
			Store
			Swapper
		} {
			return NewMem()
		},
		func(t *testing.T) interface {
			Store
			Swapper
		} {
			s, err := NewFile(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		s := mk(t)
		const workers, rounds = 4, 50
		if ok, err := s.CompareAndSwap(LeaseKey, nil, (&Lease{Epoch: 0}).Encode()); err != nil || !ok {
			t.Fatal("seed CAS failed")
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					for {
						cur, err := s.Load(LeaseKey)
						if err != nil {
							t.Error(err)
							return
						}
						l, err := DecodeLease(cur)
						if err != nil {
							t.Errorf("torn read: %v", err)
							return
						}
						next := (&Lease{Epoch: l.Epoch + 1}).Encode()
						ok, err := s.CompareAndSwap(LeaseKey, cur, next)
						if err != nil {
							t.Error(err)
							return
						}
						if ok {
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		final, err := s.Load(LeaseKey)
		if err != nil {
			t.Fatal(err)
		}
		l, err := DecodeLease(final)
		if err != nil {
			t.Fatal(err)
		}
		if l.Epoch != workers*rounds {
			t.Fatalf("lost updates: epoch = %d, want %d", l.Epoch, workers*rounds)
		}
	}
}

func TestTailer(t *testing.T) {
	s := NewMem()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Save("ctl/s1", []byte("snap1")))
	must(s.Save("ctl/s2", []byte("snap2")))
	must(s.Save("other/x", []byte("ignored")))

	tl := NewTailer(s, "ctl/")
	ch, err := tl.Poll()
	must(err)
	if len(ch) != 2 || ch[0].Key != "ctl/s1" || ch[1].Key != "ctl/s2" {
		t.Fatalf("first poll = %v, want the two ctl/ keys in order", ch)
	}
	if string(ch[0].Value) != "snap1" {
		t.Fatalf("first poll value = %q", ch[0].Value)
	}

	// No mutation: no changes — including a rewrite of identical bytes.
	must(s.Save("ctl/s1", []byte("snap1")))
	ch, err = tl.Poll()
	must(err)
	if len(ch) != 0 {
		t.Fatalf("idle poll = %v, want none", ch)
	}

	// Update + create + delete, one poll, deterministic order.
	must(s.Save("ctl/s1", []byte("snap1b")))
	must(s.Save("ctl/s0", []byte("snap0")))
	must(s.Delete("ctl/s2"))
	ch, err = tl.Poll()
	must(err)
	if len(ch) != 3 {
		t.Fatalf("poll = %v, want 3 changes", ch)
	}
	if ch[0].Key != "ctl/s0" || ch[1].Key != "ctl/s1" || ch[2].Key != "ctl/s2" {
		t.Fatalf("poll order = %v", ch)
	}
	if ch[2].Value != nil {
		t.Fatal("deletion change carries a value")
	}
	if tl.Seen() != 2 {
		t.Fatalf("Seen = %d, want 2", tl.Seen())
	}
}
