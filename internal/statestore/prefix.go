package statestore

import (
	"fmt"
	"strings"
)

// PrefixStore presents a sub-namespace of an underlying Store as a
// complete store of its own: every key the caller uses is transparently
// rooted under a fixed prefix, and keys returned by Keys have the prefix
// stripped. Two PrefixStore views with distinct prefixes over the same
// backing store are fully independent — same well-known keys (the lease
// record, ctl/ and wal/ trees), zero collisions — which is how the
// controller hierarchy gives every pod replica group and the global
// broker tier an independent WAL/lease prefix inside one shared durable
// store.
//
// If the backing store implements Swapper, the view does too, so a
// prefixed view can carry a PALS lease.
type PrefixStore struct {
	raw    Store
	swap   Swapper // nil when raw does not support CAS
	prefix string  // always ends in "/"
}

// Prefix returns a view of raw rooted at the given prefix. The prefix
// must be a valid key path (one or more [A-Za-z0-9._-] segments); a
// trailing slash is optional.
func Prefix(raw Store, prefix string) (*PrefixStore, error) {
	trimmed := strings.TrimSuffix(prefix, "/")
	if err := ValidateKey(trimmed); err != nil {
		return nil, fmt.Errorf("statestore: invalid prefix %q: %v", prefix, err)
	}
	p := &PrefixStore{raw: raw, prefix: trimmed + "/"}
	if sw, ok := raw.(Swapper); ok {
		p.swap = sw
	}
	return p, nil
}

// MustPrefix is Prefix that panics on error, for topology builders.
func MustPrefix(raw Store, prefix string) *PrefixStore {
	p, err := Prefix(raw, prefix)
	if err != nil {
		panic(err)
	}
	return p
}

// Root returns the view's prefix, with the trailing slash.
func (p *PrefixStore) Root() string { return p.prefix }

// Save implements Store.
func (p *PrefixStore) Save(key string, value []byte) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	return p.raw.Save(p.prefix+key, value)
}

// Load implements Store.
func (p *PrefixStore) Load(key string) ([]byte, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	return p.raw.Load(p.prefix + key)
}

// Delete implements Store.
func (p *PrefixStore) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	return p.raw.Delete(p.prefix + key)
}

// Keys implements Store: it lists keys under the view's namespace with
// the view prefix stripped, so results are valid arguments to Load.
func (p *PrefixStore) Keys(prefix string) ([]string, error) {
	keys, err := p.raw.Keys(p.prefix + prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, strings.TrimPrefix(k, p.prefix))
	}
	return out, nil
}

// CompareAndSwap implements Swapper when the backing store does; on a
// CAS-less backing store it reports an error rather than silently
// losing atomicity.
func (p *PrefixStore) CompareAndSwap(key string, prev, next []byte) (bool, error) {
	if p.swap == nil {
		return false, fmt.Errorf("statestore: backing store of prefix %q does not support CompareAndSwap", p.prefix)
	}
	if err := ValidateKey(key); err != nil {
		return false, err
	}
	return p.swap.CompareAndSwap(p.prefix+key, prev, next)
}
