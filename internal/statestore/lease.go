package statestore

// The controller-ownership lease record (PALS) and the polling tail API.
//
// High availability splits the controller into an active and a standby
// replica sharing one Store. Ownership is a single lease record: whoever
// holds an unexpired lease with the highest epoch is the active. The
// record is tiny and rewritten often (renewals), so it gets its own
// CRC-armoured codec in the same magic+version+body+CRC32 shape as the
// core PAKS/PAWJ family — a torn or corrupted lease must read as "no
// lease", never as someone else's grant.
//
// The epoch is the fence: it increments on every acquisition (never on
// renewal), and every signed wire send by a replica re-checks that the
// stored record still names it at its epoch. A deposed active — even one
// that is alive and mid-batch — fails that check and its writes are
// refused before they reach the wire.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// LeaseKey is the well-known store key of the controller lease record.
const LeaseKey = "ha/lease"

// MaxLeaseHolderLen is the longest holder name a PALS record can carry:
// the codec's length field is 16 bits. Writers must validate before
// encoding (ha.NewLeaseManager does); Encode refuses loudly rather than
// wrapping the length field into a record that decodes as a different
// holder.
const MaxLeaseHolderLen = 65535

// leaseMagic is "PALS" (P4Auth Lease State).
const leaseMagic = 0x50414C53

const leaseVersion = 1

// Lease is one controller-ownership grant.
type Lease struct {
	// Holder names the replica the lease was granted to.
	Holder string
	// Epoch is the fencing epoch: monotone across acquisitions, stable
	// across renewals. A write stamped with epoch e is valid only while
	// the stored lease still carries epoch e.
	Epoch uint64
	// GrantedNs is the (virtual- or wall-) clock time of the grant or
	// last renewal, in nanoseconds.
	GrantedNs uint64
	// TTLNs is the validity window: the lease is expired once the clock
	// passes GrantedNs+TTLNs and may then be claimed by another replica.
	TTLNs uint64
}

// ExpiresNs returns the end of the validity window, saturating on
// overflow (a forged or fuzzed record must not wrap into the past).
func (l *Lease) ExpiresNs() uint64 {
	if l.TTLNs > ^uint64(0)-l.GrantedNs {
		return ^uint64(0)
	}
	return l.GrantedNs + l.TTLNs
}

// Dump renders the lease in the operator format used by p4auth-inspect.
func (l *Lease) Dump() string {
	return fmt.Sprintf("lease holder=%s epoch=%d granted=%dns ttl=%dns expires=%dns",
		l.Holder, l.Epoch, l.GrantedNs, l.TTLNs, l.ExpiresNs())
}

// Encode renders the lease in the PALS format:
//
//	magic "PALS" | version | holder (len16+bytes) | epoch | grantedNs | ttlNs | CRC32
//
// A holder longer than MaxLeaseHolderLen cannot be represented — the
// 16-bit length field would wrap and the record would carry a silently
// mangled identity. That is a writer bug, not an input condition
// (NewLeaseManager validates names), so Encode panics instead of
// producing a corrupt fencing root.
func (l *Lease) Encode() []byte {
	if len(l.Holder) > MaxLeaseHolderLen {
		panic(fmt.Sprintf("statestore: lease holder is %d bytes, max %d", len(l.Holder), MaxLeaseHolderLen))
	}
	b := make([]byte, 0, 5+2+len(l.Holder)+24+4)
	b = binary.BigEndian.AppendUint32(b, leaseMagic)
	b = append(b, leaseVersion)
	b = binary.BigEndian.AppendUint16(b, uint16(len(l.Holder)))
	b = append(b, l.Holder...)
	b = binary.BigEndian.AppendUint64(b, l.Epoch)
	b = binary.BigEndian.AppendUint64(b, l.GrantedNs)
	b = binary.BigEndian.AppendUint64(b, l.TTLNs)
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// DecodeLease parses a PALS record, rejecting torn, truncated, trailing-
// garbage, or checksum-failing input.
func DecodeLease(b []byte) (*Lease, error) {
	if len(b) < 9 {
		return nil, fmt.Errorf("statestore: lease record too short (%d bytes)", len(b))
	}
	if got := binary.BigEndian.Uint32(b); got != leaseMagic {
		return nil, fmt.Errorf("statestore: lease record has magic %#x, want %#x", got, uint32(leaseMagic))
	}
	if b[4] != leaseVersion {
		return nil, fmt.Errorf("statestore: lease format version %d not supported (want %d)", b[4], leaseVersion)
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("statestore: lease record checksum mismatch (torn or corrupted)")
	}
	p := body[5:]
	if len(p) < 2 {
		return nil, fmt.Errorf("statestore: lease record truncated")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) != n+24 {
		return nil, fmt.Errorf("statestore: lease record body is %d bytes, want %d", len(p), n+24)
	}
	l := &Lease{Holder: string(p[:n])}
	p = p[n:]
	l.Epoch = binary.BigEndian.Uint64(p)
	l.GrantedNs = binary.BigEndian.Uint64(p[8:])
	l.TTLNs = binary.BigEndian.Uint64(p[16:])
	return l, nil
}

// Swapper is the optional conditional-write extension of Store, the
// primitive lease acquisition is built on. Both bundled implementations
// provide it.
type Swapper interface {
	// CompareAndSwap atomically replaces key's value with next if and
	// only if the current value equals prev; prev == nil means the key
	// must be absent. It reports whether the swap happened. A false
	// return with nil error is a lost race, not a failure.
	CompareAndSwap(key string, prev, next []byte) (bool, error)
}

// CompareAndSwap implements Swapper.
func (s *Mem) CompareAndSwap(key string, prev, next []byte) (bool, error) {
	if err := ValidateKey(key); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.m[key]
	if prev == nil {
		if ok {
			return false, nil
		}
	} else if !ok || !bytes.Equal(cur, prev) {
		return false, nil
	}
	s.m[key] = append([]byte(nil), next...)
	s.saves++
	return true, nil
}

// CompareAndSwap implements Swapper. The read-compare-rename sequence
// runs under the store mutex, so two replicas racing through the same
// File store serialize here; the write itself keeps the atomic
// temp+rename discipline of Save.
func (s *File) CompareAndSwap(key string, prev, next []byte) (bool, error) {
	if err := ValidateKey(key); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.readLocked(key)
	if err != nil {
		return false, err
	}
	if prev == nil {
		if cur != nil {
			return false, nil
		}
	} else if cur == nil || !bytes.Equal(cur, prev) {
		return false, nil
	}
	if err := s.writeLocked(key, next); err != nil {
		return false, err
	}
	return true, nil
}

// Change is one mutation observed by a Tailer between two polls.
type Change struct {
	// Key is the changed store key.
	Key string
	// Value is the new content, or nil when the key was deleted.
	Value []byte
}

// Tailer incrementally follows every key under a prefix — the standby
// replica's view onto the active's snapshots and WAL. It is a polling
// design on purpose: the Store interface stays a dumb byte store (any
// backend qualifies), and a deterministic simulation can drive polls
// from the virtual clock. Changes are detected by content signature
// (length + CRC32), so a rewrite of identical bytes is — correctly —
// not a change.
type Tailer struct {
	st     Store
	prefix string
	seen   map[string]valueSig
}

type valueSig struct {
	n   int
	crc uint32
}

func sigOf(v []byte) valueSig { return valueSig{n: len(v), crc: crc32.ChecksumIEEE(v)} }

// NewTailer returns a Tailer over every key with the given prefix. The
// first Poll reports the entire existing prefix contents as changes.
func NewTailer(st Store, prefix string) *Tailer {
	return &Tailer{st: st, prefix: prefix, seen: make(map[string]valueSig)}
}

// Poll returns the changes since the previous Poll, sorted by key with
// deletions last — a deterministic order, as chaos replay requires. A
// key that vanishes between the listing and the read (ErrNotFound) is
// reported on the next poll instead; a torn read cannot happen (Save is
// atomic per key). Any other Load failure is a real I/O error and is
// surfaced to the caller — a standby that silently skipped records
// during a store brown-out would promote over a hole in its tail.
func (t *Tailer) Poll() ([]Change, error) {
	keys, err := t.st.Keys(t.prefix)
	if err != nil {
		return nil, err
	}
	var out []Change
	live := make(map[string]bool, len(keys))
	for _, k := range keys {
		v, err := t.st.Load(k)
		if errors.Is(err, ErrNotFound) {
			continue // deleted mid-poll; picked up next time
		}
		if err != nil {
			return nil, fmt.Errorf("statestore: tail %s: %w", k, err)
		}
		live[k] = true
		sig := sigOf(v)
		if old, ok := t.seen[k]; ok && old == sig {
			continue
		}
		t.seen[k] = sig
		out = append(out, Change{Key: k, Value: v})
	}
	gone := make([]string, 0)
	for k := range t.seen {
		if !live[k] {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		delete(t.seen, k)
		out = append(out, Change{Key: k})
	}
	return out, nil
}

// Seen reports how many keys the tailer currently tracks.
func (t *Tailer) Seen() int { return len(t.seen) }
