// Package statestore is the durable key-value substrate behind P4Auth's
// crash-survival layer: keystore snapshots, register write-ahead journal
// entries, and device register images are persisted here so a controller
// or switch-agent restart can warm-recover instead of falling back to the
// compile-time K_seed (§VI-A makes re-seeding expensive by design: the
// seed ships inside the switch binary).
//
// The interface is a flat, small key-value store with atomic whole-value
// writes. Two implementations are provided: Mem (for simulations and
// tests, including deterministic chaos schedules) and File (one file per
// key under a directory, written atomically via rename, for real
// deployments).
package statestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Load for a key that was never saved (or was
// deleted).
var ErrNotFound = errors.New("statestore: key not found")

// Store is a durable key-value store. Save must be atomic per key: a
// crash during Save leaves either the previous value or the new one,
// never a torn write (the snapshot codecs carry checksums as a second
// line of defence). Keys are slash-separated paths restricted to
// [A-Za-z0-9._-] per segment, so they map onto filenames.
type Store interface {
	// Save durably writes value under key, replacing any previous value.
	Save(key string, value []byte) error
	// Load returns the value under key, or ErrNotFound.
	Load(key string) ([]byte, error)
	// Delete removes key; deleting an absent key is a no-op.
	Delete(key string) error
	// Keys returns all stored keys with the given prefix, sorted.
	Keys(prefix string) ([]string, error)
}

// ValidateKey enforces the portable key syntax shared by all
// implementations.
func ValidateKey(key string) error {
	if key == "" {
		return fmt.Errorf("statestore: empty key")
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("statestore: key %q has an invalid path segment", key)
		}
		for _, r := range seg {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
				r == '.', r == '_', r == '-':
			default:
				return fmt.Errorf("statestore: key %q contains invalid character %q", key, r)
			}
		}
	}
	return nil
}

// Mem is an in-memory Store. It is safe for concurrent use and copies
// values on both Save and Load, so callers can never alias stored bytes.
// A Mem store survives a *simulated* crash (the process stays up while a
// modeled node restarts), which is exactly what the chaos harness needs.
type Mem struct {
	mu sync.Mutex
	m  map[string][]byte
	// saves counts successful Save calls, for tests asserting persistence
	// cadence.
	saves int
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[string][]byte)}
}

// Save implements Store.
func (s *Mem) Save(key string, value []byte) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), value...)
	s.saves++
	return nil
}

// Load implements Store.
func (s *Mem) Load(key string) ([]byte, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), v...), nil
}

// Delete implements Store.
func (s *Mem) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// Keys implements Store.
func (s *Mem) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Saves reports how many Save calls have completed.
func (s *Mem) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

// File is a directory-backed Store: each key maps to a file (slashes
// become subdirectories). Writes go to a temporary file in the same
// directory and are renamed into place, so a crash mid-write never
// corrupts the previous value.
type File struct {
	dir string
	mu  sync.Mutex
}

// NewFile returns a Store rooted at dir, creating it if needed.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	return &File{dir: dir}, nil
}

func (s *File) path(key string) string {
	return filepath.Join(s.dir, filepath.FromSlash(key))
}

// Save implements Store.
func (s *File) Save(key string, value []byte) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeLocked(key, value)
}

// writeLocked performs the atomic temp+rename write. Requires s.mu.
func (s *File) writeLocked(key string, value []byte) error {
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".tmp-*")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(value); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("statestore: %w", err)
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *File) Load(key string) ([]byte, error) {
	if err := ValidateKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := s.readLocked(key)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return b, nil
}

// readLocked returns the key's bytes, nil for an absent key, and an
// error only for real I/O failures. Requires s.mu.
func (s *File) readLocked(key string) ([]byte, error) {
	b, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	return b, nil
}

// Delete implements Store.
func (s *File) Delete(key string) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// Keys implements Store.
func (s *File) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	err := filepath.Walk(s.dir, func(p string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasPrefix(filepath.Base(p), ".tmp-") {
			return nil
		}
		rel, err := filepath.Rel(s.dir, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	sort.Strings(out)
	return out, nil
}
