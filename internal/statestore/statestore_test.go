package statestore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// storeContract exercises the behaviours every Store implementation must
// share.
func storeContract(t *testing.T, s Store) {
	t.Helper()

	if _, err := s.Load("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Save("a/b/key-1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("a/b/key-2", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("a/b/key-1", []byte("v1b")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("a/b/key-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1b" {
		t.Fatalf("Load after overwrite = %q, want v1b", got)
	}
	keys, err := s.Keys("a/b/")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a/b/key-1", "a/b/key-2"}; !reflect.DeepEqual(keys, want) {
		t.Fatalf("Keys = %v, want %v", keys, want)
	}
	if err := s.Delete("a/b/key-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a/b/key-1"); err != nil {
		t.Fatalf("double delete should be a no-op, got %v", err)
	}
	if _, err := s.Load("a/b/key-1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete = %v, want ErrNotFound", err)
	}

	for _, bad := range []string{"", "a//b", "../x", "a/./b", "sp ace", "semi;colon"} {
		if err := s.Save(bad, []byte("x")); err == nil {
			t.Errorf("Save(%q) accepted an invalid key", bad)
		}
	}
}

func TestMemStore(t *testing.T) {
	storeContract(t, NewMem())
}

func TestFileStore(t *testing.T) {
	s, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

func TestMemStoreCopiesValues(t *testing.T) {
	s := NewMem()
	v := []byte("abc")
	if err := s.Save("k", v); err != nil {
		t.Fatal(err)
	}
	v[0] = 'X'
	got, err := s.Load("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("stored value aliased caller buffer: %q", got)
	}
	got[1] = 'Y'
	again, _ := s.Load("k")
	if string(again) != "abc" {
		t.Fatalf("loaded value aliased store buffer: %q", again)
	}
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("ctl/s1", []byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	// A process restart is a fresh File over the same directory.
	s2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load("ctl/s1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "snapshot" {
		t.Fatalf("reopened store returned %q", got)
	}
}

func TestFileStoreIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A crash mid-Save leaves a temp file behind; it must not surface as
	// a key.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := s.Keys("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"k1"}) {
		t.Fatalf("Keys = %v, want [k1]", keys)
	}
}
