package statestore

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fclock is a hand-advanced FaultClock + FaultAdvancer.
type fclock struct{ d time.Duration }

func (c *fclock) Now() time.Duration      { return c.d }
func (c *fclock) Advance(d time.Duration) { c.d += d }

func TestFaultStorePassThrough(t *testing.T) {
	f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 1})
	if err := f.Save("a/b", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := f.Load("a/b")
	if err != nil || string(v) != "v" {
		t.Fatalf("Load = (%q, %v)", v, err)
	}
	keys, err := f.Keys("a/")
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = (%v, %v)", keys, err)
	}
	if err := f.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Load("a/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete = %v, want ErrNotFound", err)
	}
	st := f.Stats()
	if st.Ops[OpSave] != 1 || st.Ops[OpLoad] != 2 || st.Ops[OpDelete] != 1 || st.Ops[OpKeys] != 1 {
		t.Fatalf("op stats = %+v", st.Ops)
	}
	if st.Errors+st.Outages+st.TornReads+st.LostCAS != 0 {
		t.Fatalf("clean run injected faults: %+v", st)
	}
}

func TestFaultStoreOutageWindow(t *testing.T) {
	clk := &fclock{}
	f := NewFaultStore(NewMem(), clk, FaultConfig{Seed: 2})
	if err := f.Save("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleOutage(10*time.Millisecond, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Before the window: served.
	if _, err := f.Load("k"); err != nil {
		t.Fatalf("pre-window Load: %v", err)
	}
	// Inside: every operation class refused with ErrUnavailable, and the
	// outage must never masquerade as an absent key.
	clk.d = 15 * time.Millisecond
	if _, err := f.Load("k"); !errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound) {
		t.Fatalf("in-window Load = %v, want ErrUnavailable (not ErrNotFound)", err)
	}
	if err := f.Save("k", []byte("w")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("in-window Save = %v", err)
	}
	if _, err := f.Keys(""); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("in-window Keys = %v", err)
	}
	if _, err := f.CompareAndSwap("k", nil, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("in-window CAS = %v", err)
	}
	// After: served again, previous value intact (the refused Save never
	// reached the backing store).
	clk.d = 25 * time.Millisecond
	v, err := f.Load("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("post-window Load = (%q, %v), want the pre-outage value", v, err)
	}
	if got := f.Stats().Outages; got != 4 {
		t.Fatalf("outage count = %d, want 4", got)
	}
	if err := f.ScheduleOutage(5, 5); err == nil {
		t.Fatal("empty outage window accepted")
	}
}

func TestFaultStoreFailNext(t *testing.T) {
	f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 3})
	if err := f.Save("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	f.FailNext(2)
	if _, err := f.Load("k"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("forced error #1 = %v", err)
	}
	if err := f.Save("k", []byte("w")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("forced error #2 = %v", err)
	}
	if _, err := f.Load("k"); err != nil {
		t.Fatalf("post-forcing Load: %v", err)
	}
	if got := f.Stats().Errors; got != 2 {
		t.Fatalf("error count = %d, want 2", got)
	}
}

// TestFaultStoreTornRead: garbage reads must be rejected by the CRC
// armour of the codecs, never decoded into someone else's lease.
func TestFaultStoreTornRead(t *testing.T) {
	f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 4, TornReadProb: 1})
	l := &Lease{Holder: "ctl-a", Epoch: 3, GrantedNs: 7, TTLNs: 9}
	if err := f.Save(LeaseKey, l.Encode()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		raw, err := f.Load(LeaseKey)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeLease(raw); err == nil {
			t.Fatalf("torn read #%d decoded as a valid lease", i)
		}
	}
	if got := f.Stats().TornReads; got != 32 {
		t.Fatalf("torn-read count = %d, want 32", got)
	}
}

func TestFaultStoreLoseNextCAS(t *testing.T) {
	f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 5})
	a := (&Lease{Holder: "a", Epoch: 1}).Encode()
	f.LoseNextCAS(1)
	ok, err := f.CompareAndSwap(LeaseKey, nil, a)
	if err != nil || ok {
		t.Fatalf("forced-lose CAS = (%v, %v), want (false, nil)", ok, err)
	}
	if _, err := f.Load(LeaseKey); !errors.Is(err, ErrNotFound) {
		t.Fatal("lost CAS touched the record")
	}
	ok, err = f.CompareAndSwap(LeaseKey, nil, a)
	if err != nil || !ok {
		t.Fatalf("post-forcing CAS = (%v, %v), want (true, nil)", ok, err)
	}
	if got := f.Stats().LostCAS; got != 1 {
		t.Fatalf("lost-CAS count = %d, want 1", got)
	}
}

// TestFaultStoreHook: the pre-operation hook models a concurrent actor
// slipping in between a caller's read and its conditional write.
func TestFaultStoreHook(t *testing.T) {
	raw := NewMem()
	f := NewFaultStore(raw, nil, FaultConfig{Seed: 6})
	a := (&Lease{Holder: "a", Epoch: 1}).Encode()
	b := (&Lease{Holder: "b", Epoch: 2}).Encode()
	if err := raw.Save(LeaseKey, a); err != nil {
		t.Fatal(err)
	}
	fired := 0
	f.SetHook(func(op Op, key string) {
		if op != OpCAS || key != LeaseKey {
			return
		}
		fired++
		f.SetHook(nil) // fire once; the hook's own writes must not recurse
		if err := raw.Save(LeaseKey, b); err != nil {
			t.Error(err)
		}
	})
	// The caller read `a`, but by CAS time the hook has installed `b`:
	// a genuine lost race, produced deterministically.
	ok, err := f.CompareAndSwap(LeaseKey, a, a)
	if err != nil || ok {
		t.Fatalf("raced CAS = (%v, %v), want (false, nil)", ok, err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times, want 1", fired)
	}
	got, err := f.Load(LeaseKey)
	if err != nil {
		t.Fatal(err)
	}
	if l, err := DecodeLease(got); err != nil || l.Holder != "b" {
		t.Fatalf("usurper's record = (%+v, %v), want holder b untouched", l, err)
	}
}

// TestFaultStoreDeterminism: equal seeds and operation sequences must
// inject identical fault schedules.
func TestFaultStoreDeterminism(t *testing.T) {
	runOnce := func() (errs, torn int) {
		f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 0xC0FFEE, ErrProb: 0.3, TornReadProb: 0.3})
		_ = f.Save("k", []byte("v"))
		for i := 0; i < 200; i++ {
			if _, err := f.Load("k"); err != nil {
				errs++
			}
		}
		st := f.Stats()
		return errs, st.TornReads
	}
	e1, t1 := runOnce()
	e2, t2 := runOnce()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("fault schedules diverged: (%d,%d) vs (%d,%d)", e1, t1, e2, t2)
	}
	if e1 == 0 || t1 == 0 {
		t.Fatalf("probabilistic injection never fired: errs=%d torn=%d", e1, t1)
	}
}

func TestFaultStoreLatencyAdvancesClock(t *testing.T) {
	clk := &fclock{}
	f := NewFaultStore(NewMem(), clk, FaultConfig{Seed: 7, Latency: time.Millisecond})
	_ = f.Save("k", []byte("v"))
	if _, err := f.Load("k"); err != nil {
		t.Fatal(err)
	}
	if clk.d != 2*time.Millisecond {
		t.Fatalf("clock advanced %v, want 2ms (one per op)", clk.d)
	}
}

func TestFaultStoreCASWithoutSwapper(t *testing.T) {
	// A raw store without CompareAndSwap: the wrapper must refuse, not
	// silently pretend.
	f := NewFaultStore(noSwapStore{NewMem()}, nil, FaultConfig{})
	if _, err := f.CompareAndSwap("k", nil, nil); err == nil {
		t.Fatal("CAS over a non-Swapper store succeeded")
	}
}

// noSwapStore hides Mem's Swapper.
type noSwapStore struct{ *Mem }

func (noSwapStore) CompareAndSwap() {} // shadow with a different signature

// TestTailerSurfacesLoadErrors is the regression for the bug where Poll
// swallowed every Load error as "deleted mid-poll": a store brown-out
// must surface to the caller, while a genuine mid-poll deletion still
// skips silently.
func TestTailerSurfacesLoadErrors(t *testing.T) {
	f := NewFaultStore(NewMem(), nil, FaultConfig{Seed: 8})
	if err := f.Save("ctl/s1", []byte("snap")); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(f, "ctl/")

	// Keys succeeds, the Load behind it fails: surfaced, not skipped.
	// (The hook runs after the current op's injection gate, so arming
	// FailNext from the Keys hook makes exactly the following Load fail.)
	f.SetHook(func(op Op, key string) {
		if op == OpKeys {
			f.FailNext(1)
			f.SetHook(nil)
		}
	})
	if _, err := tl.Poll(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Poll over failing Load = %v, want ErrUnavailable surfaced", err)
	}
	// The failed poll must not have marked the record seen.
	ch, err := tl.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || ch[0].Key != "ctl/s1" {
		t.Fatalf("post-error poll = %v, want the record delivered", ch)
	}

	// Control: a key deleted between the listing and the read is still a
	// silent skip (ErrNotFound), reported as a deletion next time.
	raw := NewMem()
	if err := raw.Save("ctl/s2", []byte("snap")); err != nil {
		t.Fatal(err)
	}
	f2 := NewFaultStore(raw, nil, FaultConfig{Seed: 9})
	tl2 := NewTailer(f2, "ctl/")
	f2.SetHook(func(op Op, key string) {
		if op == OpLoad && key == "ctl/s2" {
			f2.SetHook(nil)
			_ = raw.Delete("ctl/s2")
		}
	})
	ch, err = tl2.Poll()
	if err != nil {
		t.Fatalf("mid-poll deletion surfaced as error: %v", err)
	}
	if len(ch) != 0 {
		t.Fatalf("mid-poll deletion poll = %v, want none", ch)
	}
}

// TestLeaseEncodeRefusesOversizedHolder: the 16-bit length field must
// never wrap into a record naming a different holder.
func TestLeaseEncodeRefusesOversizedHolder(t *testing.T) {
	l := &Lease{Holder: strings.Repeat("x", MaxLeaseHolderLen+1)}
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of oversized holder did not panic")
		}
	}()
	l.Encode()
}

// TestLeaseEncodeMaxHolder: exactly MaxLeaseHolderLen still round-trips.
func TestLeaseEncodeMaxHolder(t *testing.T) {
	l := &Lease{Holder: strings.Repeat("h", MaxLeaseHolderLen), Epoch: 1}
	got, err := DecodeLease(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Holder != l.Holder || got.Epoch != 1 {
		t.Fatal("max-length holder mangled in round trip")
	}
}
