// Package p4rt models the P4Runtime-facing plumbing of a programmable
// switch: the p4info catalog that names data-plane objects (registers get
// numeric IDs the controller uses and names the SDK resolves), and the
// binary framing of the control channel (register RPCs, PacketOut,
// PacketIn).
//
// The real protocol is protobuf over gRPC; this model keeps the same
// roles — IDs vs names, per-field request composition, stream messages
// wrapping opaque packets — with a compact deterministic encoding, so the
// relative costs of composing reads (index only) versus writes (index and
// data) remain visible, which is what Fig. 18/19 of the paper measures.
package p4rt

import (
	"encoding/binary"
	"fmt"

	"p4auth/internal/pisa"
)

// RegisterInfo describes one register in p4info.
type RegisterInfo struct {
	ID      uint32
	Name    string
	Width   int
	Entries int
}

// P4Info is the compiled program's object catalog.
type P4Info struct {
	Program   string
	Registers []RegisterInfo

	byID   map[uint32]*RegisterInfo
	byName map[string]*RegisterInfo
}

// registerIDBase matches the P4Runtime convention of prefixing object IDs
// with a resource-type byte.
const registerIDBase = 0x05000000

// InfoFromProgram builds p4info for a pisa program, assigning register IDs
// deterministically in declaration order.
func InfoFromProgram(prog *pisa.Program) *P4Info {
	info := &P4Info{
		Program: prog.Name,
		byID:    make(map[uint32]*RegisterInfo),
		byName:  make(map[string]*RegisterInfo),
	}
	for i, r := range prog.Registers {
		info.Registers = append(info.Registers, RegisterInfo{
			ID:      registerIDBase + uint32(i) + 1,
			Name:    r.Name,
			Width:   r.Width,
			Entries: r.Entries,
		})
	}
	for i := range info.Registers {
		ri := &info.Registers[i]
		info.byID[ri.ID] = ri
		info.byName[ri.Name] = ri
	}
	return info
}

// RegisterByID resolves a register ID, as the switch SDK does.
func (p *P4Info) RegisterByID(id uint32) (*RegisterInfo, error) {
	ri, ok := p.byID[id]
	if !ok {
		return nil, fmt.Errorf("p4rt: unknown register id %#x", id)
	}
	return ri, nil
}

// RegisterByName resolves a register name, as the controller does when it
// loads p4info.
func (p *P4Info) RegisterByName(name string) (*RegisterInfo, error) {
	ri, ok := p.byName[name]
	if !ok {
		return nil, fmt.Errorf("p4rt: unknown register %q", name)
	}
	return ri, nil
}

// MsgType tags a stream message.
type MsgType uint8

// Stream message types.
const (
	MsgRegisterWrite MsgType = iota + 1
	MsgRegisterRead
	MsgReadResponse
	MsgWriteResponse
	MsgPacketOut
	MsgPacketIn
)

// Message is one frame on the controller-switch stream.
type Message struct {
	Type MsgType
	// Register RPC fields.
	RegID uint32
	Index uint32
	Value uint64
	OK    bool
	// PacketOut/PacketIn payload.
	Payload []byte
}

const headerLen = 1 + 4 // type + payload length

// Encode serializes the message (fixed header, then typed body).
func (m *Message) Encode() []byte {
	var body []byte
	switch m.Type {
	case MsgRegisterWrite:
		body = make([]byte, 16)
		binary.BigEndian.PutUint32(body[0:4], m.RegID)
		binary.BigEndian.PutUint32(body[4:8], m.Index)
		binary.BigEndian.PutUint64(body[8:16], m.Value)
	case MsgRegisterRead:
		body = make([]byte, 8)
		binary.BigEndian.PutUint32(body[0:4], m.RegID)
		binary.BigEndian.PutUint32(body[4:8], m.Index)
	case MsgReadResponse:
		body = make([]byte, 9)
		binary.BigEndian.PutUint64(body[0:8], m.Value)
		if m.OK {
			body[8] = 1
		}
	case MsgWriteResponse:
		body = make([]byte, 1)
		if m.OK {
			body[0] = 1
		}
	case MsgPacketOut, MsgPacketIn:
		body = m.Payload
	}
	out := make([]byte, headerLen+len(body))
	out[0] = byte(m.Type)
	binary.BigEndian.PutUint32(out[1:5], uint32(len(body)))
	copy(out[headerLen:], body)
	return out
}

// Decode parses one frame.
func Decode(data []byte) (*Message, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("p4rt: frame too short (%d bytes)", len(data))
	}
	m := &Message{Type: MsgType(data[0])}
	n := binary.BigEndian.Uint32(data[1:5])
	body := data[headerLen:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("p4rt: frame length %d, header says %d", len(body), n)
	}
	switch m.Type {
	case MsgRegisterWrite:
		if len(body) != 16 {
			return nil, fmt.Errorf("p4rt: register write body %d bytes, want 16", len(body))
		}
		m.RegID = binary.BigEndian.Uint32(body[0:4])
		m.Index = binary.BigEndian.Uint32(body[4:8])
		m.Value = binary.BigEndian.Uint64(body[8:16])
	case MsgRegisterRead:
		if len(body) != 8 {
			return nil, fmt.Errorf("p4rt: register read body %d bytes, want 8", len(body))
		}
		m.RegID = binary.BigEndian.Uint32(body[0:4])
		m.Index = binary.BigEndian.Uint32(body[4:8])
	case MsgReadResponse:
		if len(body) != 9 {
			return nil, fmt.Errorf("p4rt: read response body %d bytes, want 9", len(body))
		}
		m.Value = binary.BigEndian.Uint64(body[0:8])
		m.OK = body[8] == 1
	case MsgWriteResponse:
		if len(body) != 1 {
			return nil, fmt.Errorf("p4rt: write response body %d bytes, want 1", len(body))
		}
		m.OK = body[0] == 1
	case MsgPacketOut, MsgPacketIn:
		m.Payload = append([]byte(nil), body...)
	default:
		return nil, fmt.Errorf("p4rt: unknown message type %d", data[0])
	}
	return m, nil
}
