package p4rt

import (
	"bytes"
	"testing"
	"testing/quick"

	"p4auth/internal/pisa"
)

func testProgram() *pisa.Program {
	return &pisa.Program{
		Name: "p",
		Registers: []*pisa.RegisterDef{
			{Name: "lat_path1", Width: 32, Entries: 16},
			{Name: "lat_path2", Width: 32, Entries: 16},
			{Name: "keys", Width: 64, Entries: 33},
		},
	}
}

func TestInfoFromProgram(t *testing.T) {
	info := InfoFromProgram(testProgram())
	if len(info.Registers) != 3 {
		t.Fatalf("got %d registers", len(info.Registers))
	}
	ri, err := info.RegisterByName("keys")
	if err != nil {
		t.Fatal(err)
	}
	if ri.Width != 64 || ri.Entries != 33 {
		t.Errorf("keys info = %+v", ri)
	}
	back, err := info.RegisterByID(ri.ID)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "keys" {
		t.Errorf("round trip by id gave %q", back.Name)
	}
	if _, err := info.RegisterByID(0xdead); err == nil {
		t.Error("expected unknown-id error")
	}
	if _, err := info.RegisterByName("ghost"); err == nil {
		t.Error("expected unknown-name error")
	}
}

func TestInfoIDsDeterministic(t *testing.T) {
	a := InfoFromProgram(testProgram())
	b := InfoFromProgram(testProgram())
	for i := range a.Registers {
		if a.Registers[i].ID != b.Registers[i].ID {
			t.Fatal("register IDs are not deterministic")
		}
	}
	seen := map[uint32]bool{}
	for _, r := range a.Registers {
		if seen[r.ID] {
			t.Fatal("duplicate register ID")
		}
		seen[r.ID] = true
	}
}

func TestMessageRoundtrips(t *testing.T) {
	msgs := []Message{
		{Type: MsgRegisterWrite, RegID: 0x05000001, Index: 3, Value: 0xdeadbeefcafef00d},
		{Type: MsgRegisterRead, RegID: 0x05000002, Index: 9},
		{Type: MsgReadResponse, Value: 42, OK: true},
		{Type: MsgReadResponse, Value: 0, OK: false},
		{Type: MsgWriteResponse, OK: true},
		{Type: MsgPacketOut, Payload: []byte{1, 2, 3, 4}},
		{Type: MsgPacketIn, Payload: nil},
	}
	for _, m := range msgs {
		m := m
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if got.Type != m.Type || got.RegID != m.RegID || got.Index != m.Index ||
			got.Value != m.Value || got.OK != m.OK || !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("roundtrip mismatch: sent %+v, got %+v", m, got)
		}
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	cases := [][]byte{
		nil,
		{1},
		{99, 0, 0, 0, 0}, // unknown type
		{byte(MsgRegisterWrite), 0, 0, 0, 3, 1, 2, 3}, // wrong body size
		func() []byte { // header/body length mismatch
			b := (&Message{Type: MsgPacketOut, Payload: []byte{1, 2}}).Encode()
			return b[:len(b)-1]
		}(),
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
}

func TestPacketPayloadRoundtripQuick(t *testing.T) {
	f := func(payload []byte) bool {
		m := Message{Type: MsgPacketOut, Payload: payload}
		got, err := Decode(m.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	m := Message{Type: MsgPacketIn, Payload: []byte{5, 6, 7}}
	enc := m.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc[headerLen] = 0xFF
	if got.Payload[0] != 5 {
		t.Error("decoded payload aliases the input frame")
	}
}
