package silkroad

import (
	"testing"

	"p4auth/internal/core"
	"p4auth/internal/switchos"
)

// TestNamedSeededInstances deploys two balancers with distinct fleet
// names and seeds side by side and runs the full migration on each —
// the per-pod parameterization the fleet harness relies on.
func TestNamedSeededInstances(t *testing.T) {
	for i, name := range []string{"lb-p0", "lb-p1"} {
		p := DefaultParams(true)
		p.Name = name
		p.Seed = uint64(i)*0x1000 + 1
		if p.name() != name {
			t.Fatalf("name() = %q, want %q", p.name(), name)
		}
		s, err := New(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.BeginMigration(); err != nil {
			t.Fatalf("%s: begin: %v", name, err)
		}
		if pool, err := s.Packet(7, true); err != nil || pool != 0 {
			t.Fatalf("%s: transit conn: pool=%d err=%v", name, pool, err)
		}
		if err := s.FinishMigration(); err != nil {
			t.Fatalf("%s: finish: %v", name, err)
		}
		if pool, err := s.Packet(9, true); err != nil || pool != 1 {
			t.Fatalf("%s: post-migration conn: pool=%d err=%v", name, pool, err)
		}
		if s.TamperedWrites != 0 {
			t.Errorf("%s: clean run flagged %d writes", name, s.TamperedWrites)
		}
	}
}

// TestTamperedBeginMigrationDetected flips the values of the C-DP writes
// that OPEN the migration window (the complement of the clear
// suppressor). P4Auth must reject both writes, count them, and leave the
// data plane serving the old pool.
func TestTamperedBeginMigrationDetected(t *testing.T) {
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint32]bool{}
	for _, name := range []string{RegMigrating, RegPoolVer} {
		ri, err := s.Host.Info.RegisterByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ids[ri.ID] = true
	}
	err = s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, derr := core.DecodeMessage(data)
			if derr != nil || m.Reg == nil || m.MsgType != core.MsgWriteReq {
				return data
			}
			if ids[m.Reg.RegID] {
				m.Reg.Value ^= 1
				if out, eerr := m.Encode(); eerr == nil {
					return out
				}
			}
			return data
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMigration(); err != nil {
		t.Fatalf("begin under tamper: %v", err)
	}
	if s.TamperedWrites != 2 {
		t.Fatalf("detected %d tampered writes, want 2", s.TamperedWrites)
	}
	// Both writes were rejected: the window never opened, version stays 0.
	if pool, err := s.Packet(5, true); err != nil || pool != 0 {
		t.Fatalf("conn after rejected migration: pool=%d err=%v", pool, err)
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}
