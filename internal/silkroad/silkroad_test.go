package silkroad

import (
	"testing"
)

// runMigration drives the paper's scenario: established traffic, a pool
// migration with connections arriving mid-window, completion, then fresh
// connections — whose pool assignment is the Table I metric.
func runMigration(t *testing.T, secure, attacked bool) (*System, float64) {
	t.Helper()
	s, err := New(DefaultParams(secure))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-migration: connections 1..20 served by the old pool (version 0).
	for c := uint32(1); c <= 20; c++ {
		if pool, err := s.Packet(c, true); err != nil || pool != 0 {
			t.Fatalf("pre-migration conn %d: pool=%d err=%v", c, pool, err)
		}
	}
	if attacked {
		if err := s.InstallClearSuppressor(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.BeginMigration(); err != nil {
		t.Fatal(err)
	}
	// Mid-window arrivals 100..119: pinned to the old pool via the transit
	// filter.
	for c := uint32(100); c < 120; c++ {
		if pool, err := s.Packet(c, true); err != nil || pool != 0 {
			t.Fatalf("transit conn %d: pool=%d err=%v", c, pool, err)
		}
	}
	if err := s.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetCounters(); err != nil {
		t.Fatal(err)
	}
	// Post-migration: fresh connections 200..299 must land on the new pool.
	for c := uint32(200); c < 300; c++ {
		if _, err := s.Packet(c, true); err != nil {
			t.Fatal(err)
		}
	}
	old, new, err := s.Served()
	if err != nil {
		t.Fatal(err)
	}
	return s, float64(old) / float64(old+new)
}

func TestMigrationCompletesCleanly(t *testing.T) {
	s, wrongFrac := runMigration(t, true, false)
	if wrongFrac != 0 {
		t.Fatalf("%.2f of fresh connections hit the retired pool on a clean run", wrongFrac)
	}
	if s.TamperedWrites != 0 {
		t.Errorf("clean run flagged %d writes", s.TamperedWrites)
	}
}

func TestClearSuppressionPinsTrafficToOldPool(t *testing.T) {
	_, wrongFrac := runMigration(t, false, true)
	// With the migration window held open, every fresh SYN joins the
	// transit set and is pinned to the retired pool — the "wrong VIP".
	if wrongFrac < 0.95 {
		t.Fatalf("only %.2f pinned to the retired pool; attack ineffective", wrongFrac)
	}
}

func TestP4AuthDetectsAndCompletesMigration(t *testing.T) {
	s, wrongFrac := runMigration(t, true, true)
	if s.TamperedWrites == 0 {
		t.Fatal("no tampered writes detected")
	}
	if wrongFrac != 0 {
		t.Fatalf("%.2f of fresh connections hit the retired pool under P4Auth", wrongFrac)
	}
	if len(s.Ctrl.Alerts()) == 0 {
		t.Error("no alerts recorded")
	}
}

func TestTransitPinningSurvivesMigrationEnd(t *testing.T) {
	// Connections recorded in the transit window stay pinned to the old
	// pool for their lifetime even after the filter is cleared? No — the
	// real SilkRoad moves them into the connection table first; in this
	// miniature the clear happens after they are migrated, so their later
	// packets follow the new pool. What must hold: DURING the window,
	// non-SYN packets of transit connections stay on the old pool.
	s, err := New(DefaultParams(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginMigration(); err != nil {
		t.Fatal(err)
	}
	if pool, err := s.Packet(77, true); err != nil || pool != 0 {
		t.Fatalf("transit SYN: pool=%d err=%v", pool, err)
	}
	// Follow-up (non-SYN) packets during the window: old pool.
	for i := 0; i < 5; i++ {
		pool, err := s.Packet(77, false)
		if err != nil {
			t.Fatal(err)
		}
		if pool != 0 {
			t.Fatalf("transit follow-up served by pool %d", pool)
		}
	}
	// A non-transit established connection (never inserted) follows the
	// current version.
	if pool, err := s.Packet(88, false); err != nil || pool != 1 {
		t.Fatalf("non-transit conn: pool=%d err=%v", pool, err)
	}
	if err := s.FinishMigration(); err != nil {
		t.Fatal(err)
	}
	if pool, err := s.Packet(99, true); err != nil || pool != 1 {
		t.Fatalf("post-migration conn: pool=%d err=%v", pool, err)
	}
}
