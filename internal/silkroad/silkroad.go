// Package silkroad is a full-pipeline miniature of SilkRoad (Miao et al.,
// SIGCOMM 2017), the in-switch stateful layer-4 load balancer of the
// paper's Table I. During a DIP-pool update, connections that arrive in
// the transition window are recorded in a transit bloom filter held in
// registers and pinned to the OLD pool version for their lifetime; once
// the pending connections have been migrated, the controller clears the
// filter and ends the migration over C-DP — the exact update message the
// paper's adversary suppresses so that "the data plane uses the wrong VIP
// during LB". With P4Auth the tampered write is detected and the operator
// completes the migration through a quarantined path.
package silkroad

import (
	"errors"

	"p4auth/internal/controller"
	"p4auth/internal/core"
	"p4auth/internal/crypto"
	"p4auth/internal/pisa"
	"p4auth/internal/sketch"
	"p4auth/internal/switchos"
)

// PTypeConn tags connection packets.
const PTypeConn = 0xE0

// Ports.
const (
	ClientPort = 1
	PoolPort   = 2
)

// Register names.
const (
	RegMigrating = "sr_migrating" // 1 while a pool update is in flight
	RegPoolVer   = "sr_pool_ver"  // current DIP pool version
	RegOldServed = "sr_old_served"
	RegNewServed = "sr_new_served"
)

// Params configures the system.
type Params struct {
	BloomHashes int
	BloomBits   int
	Secure      bool
	// Name identifies the switch at its controller; empty means the
	// historical "lb". Fleet deployments run one instance per pod and
	// need distinct names within a shared controller namespace.
	Name string
	// Seed perturbs the switch and controller PRNGs; zero keeps the
	// historical seeds, so existing runs are unchanged.
	Seed uint64
}

// name returns the effective switch name.
func (p Params) name() string {
	if p.Name == "" {
		return "lb"
	}
	return p.Name
}

// DefaultParams sizes a demonstration balancer.
func DefaultParams(secure bool) Params {
	return Params{BloomHashes: 3, BloomBits: 2048, Secure: secure}
}

// System is a running SilkRoad deployment.
type System struct {
	Params Params
	Host   *switchos.Host
	Ctrl   *controller.Controller
	// Cfg is the P4Auth core configuration the switch booted with;
	// exported so a recovery path can re-Register the switch at a fresh
	// controller after a controller kill.
	Cfg    core.Config
	Bloom  *sketch.Bloom
	Mirror *sketch.BloomMirror

	// TamperedWrites counts C-DP writes the controller saw rejected.
	TamperedWrites int
}

var connDef = &pisa.HeaderDef{Name: "conn", Fields: []pisa.FieldDef{
	{Name: "id", Width: 32},
	{Name: "syn", Width: 8},
	{Name: "dip_pool", Width: 8}, // stamped by the switch: pool that served it
}}

func buildProgram(p Params) (*pisa.Program, *sketch.Bloom, core.Config, error) {
	bloom, err := sketch.NewBloom("sr_transit", p.BloomHashes, p.BloomBits)
	if err != nil {
		return nil, nil, core.Config{}, err
	}
	prog := &pisa.Program{
		Name:    "silkroad",
		Headers: []*pisa.HeaderDef{core.PTypeHeader(), connDef},
		Parser: []pisa.ParserState{
			{Name: pisa.ParserStart, Extract: core.HdrPType,
				Select:      pisa.F(core.HdrPType, "v"),
				Transitions: map[uint64]string{PTypeConn: "sr_conn"}},
			{Name: "sr_conn", Extract: "conn"},
		},
		DeparseOrder: []string{core.HdrPType, "conn"},
		Metadata: []pisa.FieldDef{
			{Name: "sr_mig", Width: 8},
			{Name: "sr_ver", Width: 8},
			{Name: "sr_pin_old", Width: 8},
		},
		Registers: []*pisa.RegisterDef{
			{Name: RegMigrating, Width: 8, Entries: 1},
			{Name: RegPoolVer, Width: 8, Entries: 1},
			{Name: RegOldServed, Width: 64, Entries: 1},
			{Name: RegNewServed, Width: 64, Entries: 1},
		},
	}
	bloom.AddToProgram(prog)

	key := pisa.R(pisa.F("conn", "id"))
	m := func(f string) pisa.FieldRef { return pisa.F(pisa.MetaHeader, f) }
	connOps := []pisa.Op{
		pisa.RegRead(m("sr_mig"), RegMigrating, pisa.C(0)),
		pisa.RegRead(m("sr_ver"), RegPoolVer, pisa.C(0)),
		pisa.Set(m("sr_pin_old"), pisa.C(0)),
		// New connections arriving mid-migration join the transit set.
		pisa.If(pisa.Eq(pisa.R(pisa.F("conn", "syn")), pisa.C(1)),
			[]pisa.Op{
				pisa.If(pisa.Eq(pisa.R(m("sr_mig")), pisa.C(1)),
					append(bloom.InsertOps(key), pisa.Set(m("sr_pin_old"), pisa.C(1)))),
			},
			// Established connections: pinned to the old pool iff in the
			// transit set.
			append(bloom.TestOps(key), pisa.If(pisa.Eq(pisa.R(m(bloom.HitMeta())), pisa.C(1)), []pisa.Op{
				pisa.Set(m("sr_pin_old"), pisa.C(1)),
			})),
		),
		// Serve: pinned-old or pre-migration version 0 -> old pool.
		pisa.If(pisa.Eq(pisa.R(m("sr_pin_old")), pisa.C(1)), []pisa.Op{pisa.Set(m("sr_ver"), pisa.C(0))}),
		pisa.If(pisa.Eq(pisa.R(m("sr_ver")), pisa.C(0)),
			[]pisa.Op{
				pisa.Set(pisa.F("conn", "dip_pool"), pisa.C(0)),
				pisa.RegRMW(m("sr_mig"), RegOldServed, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
			},
			[]pisa.Op{
				pisa.Set(pisa.F("conn", "dip_pool"), pisa.C(1)),
				pisa.RegRMW(m("sr_mig"), RegNewServed, pisa.C(0), pisa.RMWAdd, pisa.C(1)),
			},
		),
		pisa.Forward(pisa.C(PoolPort)),
	}
	prog.Control = []pisa.Op{pisa.If(pisa.Valid("conn"), connOps)}

	cfg := core.DefaultConfig(4, core.DigestCRC32)
	cfg.Insecure = !p.Secure
	exposed := append(bloom.RegisterNames(), RegMigrating, RegPoolVer, RegOldServed, RegNewServed)
	if err := core.AddToProgram(prog, cfg, core.Integration{Exposed: exposed}); err != nil {
		return nil, nil, cfg, err
	}
	return prog, bloom, cfg, nil
}

// New deploys the balancer.
func New(p Params) (*System, error) {
	prog, bloom, cfg, err := buildProgram(p)
	if err != nil {
		return nil, err
	}
	sw, err := pisa.NewSwitch(prog, pisa.TofinoProfile(), pisa.WithRandom(crypto.NewSeededRand(0x511C+p.Seed)))
	if err != nil {
		return nil, err
	}
	if err := core.Boot(sw, cfg); err != nil {
		return nil, err
	}
	host := switchos.NewHost(p.name(), sw, switchos.DefaultCosts())
	exposed := append(bloom.RegisterNames(), RegMigrating, RegPoolVer, RegOldServed, RegNewServed)
	if err := core.InstallRegMap(sw, host.Info, exposed); err != nil {
		return nil, err
	}
	ctrl := controller.New(crypto.NewSeededRand(0x511D+p.Seed))
	if err := ctrl.Register(p.name(), host, cfg, 0); err != nil {
		return nil, err
	}
	s := &System{Params: p, Host: host, Ctrl: ctrl, Cfg: cfg, Bloom: bloom, Mirror: sketch.NewBloomMirror(bloom)}
	if p.Secure {
		if _, err := ctrl.LocalKeyInit(p.name()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Packet sends one connection packet through the pipeline and returns the
// pool (0=old, 1=new) that served it.
func (s *System) Packet(conn uint32, syn bool) (pool int, err error) {
	synV := uint64(0)
	if syn {
		synV = 1
	}
	body, err := pisa.PackHeader(connDef, []uint64{uint64(conn), synV, 0})
	if err != nil {
		return 0, err
	}
	pkt := append([]byte{PTypeConn}, body...)
	res, err := s.Host.NetworkPacket(ClientPort, pkt)
	if err != nil {
		return 0, err
	}
	for _, em := range res.NetOut {
		if em.Port == PoolPort {
			vals, err := pisa.UnpackHeader(connDef, em.Data[1:])
			if err != nil {
				return 0, err
			}
			return int(vals[2]), nil
		}
	}
	return 0, errors.New("silkroad: packet not served")
}

func (s *System) write(name string, index uint32, v uint64) error {
	var err error
	if s.Params.Secure {
		_, err = s.Ctrl.WriteRegister(s.Params.name(), name, index, v)
	} else {
		_, err = s.Ctrl.WriteRegisterInsecure(s.Params.name(), name, index, v)
	}
	return err
}

// BeginMigration opens the transition window and switches the pool
// version (both over C-DP).
func (s *System) BeginMigration() error {
	if err := s.write(RegMigrating, 0, 1); err != nil && !errors.Is(err, controller.ErrTampered) {
		return err
	} else if errors.Is(err, controller.ErrTampered) {
		s.TamperedWrites++
	}
	if err := s.write(RegPoolVer, 0, 1); err != nil && !errors.Is(err, controller.ErrTampered) {
		return err
	} else if errors.Is(err, controller.ErrTampered) {
		s.TamperedWrites++
	}
	return nil
}

// FinishMigration clears the transit filter and closes the window — the
// C-DP update the paper's adversary targets. On detection the controller
// finishes through the quarantined (direct driver) path, the paper's
// operator response.
func (s *System) FinishMigration() error {
	tampered := false
	// Clear the transit filter bits.
	for _, name := range s.Bloom.RegisterNames() {
		for i := 0; i < s.Bloom.Bits; i++ {
			if err := s.write(name, uint32(i), 0); err != nil {
				if errors.Is(err, controller.ErrTampered) {
					s.TamperedWrites++
					tampered = true
					break
				}
				return err
			}
		}
		if tampered {
			break
		}
	}
	if !tampered {
		if err := s.write(RegMigrating, 0, 0); err != nil {
			if errors.Is(err, controller.ErrTampered) {
				s.TamperedWrites++
				tampered = true
			} else {
				return err
			}
		}
	}
	if tampered && s.Params.Secure {
		// Detected: complete through the quarantined driver path.
		if err := s.Mirror.Clear(s.Host.SW); err != nil {
			return err
		}
		return s.Host.SW.RegisterWrite(RegMigrating, 0, 0)
	}
	return nil
}

// Served reports how many packets each pool version served.
func (s *System) Served() (old, new uint64, err error) {
	old, err = s.Host.SW.RegisterRead(RegOldServed, 0)
	if err != nil {
		return 0, 0, err
	}
	new, err = s.Host.SW.RegisterRead(RegNewServed, 0)
	return old, new, err
}

// ResetCounters zeroes the served counters.
func (s *System) ResetCounters() error {
	if err := s.Host.SW.RegisterWrite(RegOldServed, 0, 0); err != nil {
		return err
	}
	return s.Host.SW.RegisterWrite(RegNewServed, 0, 0)
}

// InstallClearSuppressor installs the paper's adversary: C-DP writes that
// would end the migration (clear transit bits, reset the migrating flag)
// are rewritten so the data plane keeps the old pool live.
func (s *System) InstallClearSuppressor() error {
	ids := map[uint32]bool{}
	for _, name := range append(s.Bloom.RegisterNames(), RegMigrating) {
		ri, err := s.Host.Info.RegisterByName(name)
		if err != nil {
			return err
		}
		ids[ri.ID] = true
	}
	return s.Host.Install(switchos.BoundaryAgentSDK, &switchos.Hooks{
		OnPacketOut: func(data []byte) []byte {
			m, err := core.DecodeMessage(data)
			if err != nil || m.Reg == nil || m.MsgType != core.MsgWriteReq {
				return data
			}
			if ids[m.Reg.RegID] && m.Reg.Value == 0 {
				m.Reg.Value = 1 // keep the transit state alive
				out, eerr := m.Encode()
				if eerr != nil {
					return data
				}
				return out
			}
			return data
		},
	})
}
